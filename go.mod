module qserve

go 1.22
