// Scaling: the paper's headline experiment in miniature — how many
// players each server configuration supports, on the simulated
// 8-hardware-context machine. Prints the Fig 5/6 response-rate series
// and the supported-player summary.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"qserve/internal/experiments"
	"qserve/internal/locking"
	"qserve/internal/simserver"
)

func main() {
	opts := experiments.Options{DurationS: 5, Seed: 1}

	fmt.Println("response time (ms) by configuration and player count")
	fmt.Println("players | seq    | 2T-cons | 4T-cons | 8T-cons | 8T-opt")
	fmt.Println("--------+--------+---------+---------+---------+-------")
	for _, players := range []int{64, 96, 128, 144, 160} {
		fmt.Printf("%7d |", players)
		for _, cfg := range []simserver.Config{
			mk(opts, players, 1, true, nil),
			mk(opts, players, 2, false, locking.Conservative{}),
			mk(opts, players, 4, false, locking.Conservative{}),
			mk(opts, players, 8, false, locking.Conservative{}),
			mk(opts, players, 8, false, locking.Optimized{}),
		} {
			res, err := simserver.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %6.1f |", res.ResponseTimeMs())
		}
		fmt.Println()
	}

	fmt.Println()
	out, err := experiments.Saturation(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

func mk(o experiments.Options, players, threads int, seq bool, strat locking.Strategy) simserver.Config {
	return simserver.Config{
		MapConfig:  experiments.PaperMapConfig(o.Seed),
		Players:    players,
		Threads:    threads,
		Sequential: seq,
		Strategy:   strat,
		DurationS:  o.DurationS,
		Seed:       o.Seed,
	}
}
