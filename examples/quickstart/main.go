// Quickstart: a complete game session in one process — generate a map,
// start the sequential server on an in-memory network, connect a handful
// of automatic players, play for a few seconds, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

func main() {
	// 1. A world: procedural 16-room deathmatch map plus game state.
	mapCfg := worldmap.DefaultConfig()
	mapCfg.Rows, mapCfg.Cols = 4, 4
	mapCfg.Name = "gen-dm16"
	m, err := worldmap.Generate(mapCfg)
	if err != nil {
		log.Fatal(err)
	}
	world, err := game.NewWorld(game.Config{Map: m, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 2. An in-memory packet network and the sequential server engine.
	net := transport.NewNetwork(transport.NetworkConfig{})
	port, err := net.Listen("server:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.NewSequential(server.Config{
		World: world,
		Conns: []transport.Conn{port},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	// 3. Eight automatic players.
	var bots []*botclient.Bot
	for i := 0; i < 8; i++ {
		conn, err := net.Listen("")
		if err != nil {
			log.Fatal(err)
		}
		bot, err := botclient.New(botclient.Config{
			Name:   fmt.Sprintf("bot-%d", i),
			Conn:   conn,
			Server: transport.MemAddr("server:0"),
			Map:    m,
			Seed:   int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := bot.Connect(); err != nil {
			log.Fatal(err)
		}
		bots = append(bots, bot)
	}
	fmt.Printf("%d bots connected to map %q (%d rooms)\n", len(bots), m.Name, len(m.Rooms))

	// 4. Play: drive each bot at 30 fps for three seconds of game time,
	// compressed (no need to sleep a full frame between steps).
	for frame := 0; frame < 90; frame++ {
		for _, b := range bots {
			b.Step()
		}
		time.Sleep(3 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	for _, b := range bots {
		b.Step() // final drain
	}
	srv.Stop()

	// 5. Results.
	fmt.Printf("server: %d frames, %d replies\n", srv.Frames(), srv.Replies())
	fmt.Printf("server time breakdown: %s\n", srv.Breakdowns()[0].String())
	for i, b := range bots {
		fmt.Printf("bot %d: %3d snapshots, moved %6.0f units, response %5.1fms avg\n",
			i, b.Snapshots, b.Moved, b.Resp.MeanLatencyMs())
	}
}
