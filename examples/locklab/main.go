// Locklab: a side-by-side comparison of the region-locking strategies on
// one fixed workload (8 threads, 160 players): how much time goes to
// lock synchronization, how it splits between leaf and parent areanodes,
// and what the client experiences. This is the §4.3 story in one table.
//
//	go run ./examples/locklab
package main

import (
	"fmt"
	"log"

	"qserve/internal/experiments"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/simserver"
)

func main() {
	const players, threads = 160, 8
	opts := experiments.Options{DurationS: 8, Seed: 1}

	fmt.Printf("locking strategies at %d players on %d threads\n\n", players, threads)
	fmt.Println("strategy      | lock%  | leaf/parent | wait%  | resp ms | p95 ms | replies/s | leaves/req")
	fmt.Println("--------------+--------+-------------+--------+---------+--------+-----------+-----------")
	for _, strat := range []locking.Strategy{locking.Conservative{}, locking.Optimized{}} {
		cfg := simserver.Config{
			MapConfig: experiments.PaperMapConfig(opts.Seed),
			Players:   players,
			Threads:   threads,
			Strategy:  strat,
			DurationS: opts.DurationS,
			Seed:      opts.Seed,
		}
		res, err := simserver.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		bd := res.Avg
		leafShare := 0.0
		if t := bd.LeafLockNs + bd.ParentLockNs; t > 0 {
			leafShare = 100 * float64(bd.LeafLockNs) / float64(t)
		}
		fmt.Printf("%-13s | %5.1f%% | %4.0f%%/%3.0f%%  | %5.1f%% | %7.1f | %6.1f | %9.1f | %9.2f\n",
			strat.Name(),
			bd.Percent(metrics.CompLock),
			leafShare, 100-leafShare,
			bd.Percent(metrics.CompIntraWait)+bd.Percent(metrics.CompInterWait),
			res.ResponseTimeMs(),
			res.Resp.P95Ms(),
			res.ResponseRate(),
			res.Locks.AvgDistinctLeavesPerRequest(),
		)
	}

	fmt.Println("\nthe directional/expanded regions of the optimized strategy release")
	fmt.Println("the whole-map serialization the conservative baseline pays on every")
	fmt.Println("long-range interaction (paper sec 4.3).")
}
