// Deathmatch: a full live session over real UDP sockets — the parallel
// server with optimized region locking hosting 24 bots that navigate,
// fight, pick up items, and teleport, with a scoreboard at the end.
// Everything runs in one process, but over the loopback network with the
// complete wire protocol, exactly as a distributed deployment would.
//
//	go run ./examples/deathmatch
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

const (
	numBots  = 24
	threads  = 4
	playTime = 5 * time.Second
)

func main() {
	mapCfg := worldmap.DefaultConfig()
	mapCfg.Rows, mapCfg.Cols = 4, 4
	mapCfg.Name = "gen-dm16"
	mapCfg.Seed = 11
	mapCfg.DoorProb = 0.5 // animated doors on half the doorways
	m, err := worldmap.Generate(mapCfg)
	if err != nil {
		log.Fatal(err)
	}
	world, err := game.NewWorld(game.Config{Map: m, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// One UDP port per server thread.
	conns := make([]transport.Conn, threads)
	for i := range conns {
		c, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		conns[i] = c
	}
	srv, err := server.NewParallel(server.Config{
		World:      world,
		Conns:      conns,
		Threads:    threads,
		Strategy:   locking.Optimized{},
		MaxClients: numBots,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	fmt.Printf("deathmatch on %q: %d threads, base port %s\n",
		m.Name, threads, conns[0].LocalAddr())

	// Connect the bots over UDP.
	bots := make([]*botclient.Bot, numBots)
	for i := range bots {
		conn, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srvAddr, err := transport.ResolveLike(conn, conns[0].LocalAddr().String())
		if err != nil {
			log.Fatal(err)
		}
		bots[i], err = botclient.New(botclient.Config{
			Name:     fmt.Sprintf("player-%02d", i),
			Conn:     conn,
			Server:   srvAddr,
			Map:      m,
			Seed:     int64(i * 13),
			FireProb: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := bots[i].Connect(); err != nil {
			log.Fatalf("bot %d: %v", i, err)
		}
	}
	fmt.Printf("%d players joined; fighting for %s ...\n", numBots, playTime)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, b := range bots {
		wg.Add(1)
		go func(b *botclient.Bot) {
			defer wg.Done()
			b.Run(stop)
		}(b)
	}
	time.Sleep(playTime)
	close(stop)
	wg.Wait()
	srv.Stop()

	// Scoreboard.
	type row struct {
		name          string
		kills, deaths int64
		resp          float64
	}
	rows := make([]row, numBots)
	var agg metrics.ResponseStats
	for i, b := range bots {
		rows[i] = row{
			name:   fmt.Sprintf("player-%02d", i),
			kills:  b.Kills,
			deaths: b.Deaths,
			resp:   b.Resp.MeanLatencyMs(),
		}
		agg.Merge(b.Resp)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].kills > rows[b].kills })
	fmt.Println("\n  scoreboard")
	fmt.Println("  name        kills  deaths  resp(ms)")
	for _, r := range rows[:8] {
		fmt.Printf("  %-10s  %5d  %6d  %8.1f\n", r.name, r.kills, r.deaths, r.resp)
	}
	fmt.Printf("\nserver: %d frames, %d replies over %s\n",
		srv.Frames(), srv.Replies(), srv.Duration().Truncate(time.Millisecond))
	avg := metrics.MergeThreads(srv.Breakdowns())
	fmt.Printf("avg thread breakdown: %s\n", avg.String())
	fmt.Printf("overall response: %.1f replies/s, %.1fms mean\n",
		float64(agg.Replies)/playTime.Seconds(), agg.MeanLatencyMs())
}
