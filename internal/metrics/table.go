package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables for the benchmark harness — the
// "same rows/series the paper reports" in plain-text form.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatted from values: strings pass through,
// float64 renders with one decimal, ints plainly.
func (t *Table) AddRowf(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.1f", x)
		case int:
			row[i] = fmt.Sprintf("%d", x)
		case int64:
			row[i] = fmt.Sprintf("%d", x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces the aligned table text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a 0..100 percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F1 formats a float with one decimal place.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimal places.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats a float with three decimals (sub-millisecond latencies).
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }
