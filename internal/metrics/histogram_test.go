package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestHistogramQuantilesMatchSorting(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var h LatencyHist
	var samples []float64
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies from 0.5ms to 500ms.
		s := 0.0005 * math.Pow(1000, r.Float64())
		samples = append(samples, s)
		h.Record(s)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		approx := h.Quantile(q)
		// Log-binned: within one bin width (~12%) of the exact value.
		if approx < exact*0.85 || approx > exact*1.18 {
			t.Errorf("q%.2f: approx %.4f vs exact %.4f", q, approx, exact)
		}
	}
	if h.N() != 20000 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramEdges(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.P95() != 0 {
		t.Error("empty histogram quantile not zero")
	}
	h.Record(0)   // below range: clamps to first bin
	h.Record(1e6) // absurd: clamps to last bin
	h.Record(-1)  // negative: clamps to first bin
	if h.N() != 3 {
		t.Errorf("N = %d", h.N())
	}
	if q := h.Quantile(0); q <= 0 {
		t.Errorf("q0 = %v", q)
	}
	if h.Quantile(1.5) < h.Quantile(-0.5) {
		t.Error("clamped quantile args inverted")
	}
	if !strings.Contains(h.String(), "p95") {
		t.Errorf("String() = %q", h.String())
	}
	var empty LatencyHist
	if empty.String() != "latency: no samples" {
		t.Errorf("empty String() = %q", empty.String())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole LatencyHist
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		s := 0.001 + r.Float64()*0.1
		whole.Record(s)
		if i%2 == 0 {
			a.Record(s)
		} else {
			b.Record(s)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for _, q := range []float64{0.25, 0.5, 0.9} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.2f differs after merge", q)
		}
	}
}

func TestResponseStatsRecordFeedsBothViews(t *testing.T) {
	var r ResponseStats
	for _, s := range []float64{0.010, 0.020, 0.030, 0.200} {
		r.Record(s)
	}
	if r.Latency.N() != 4 || r.Hist.N() != 4 {
		t.Fatalf("views out of sync: %d vs %d", r.Latency.N(), r.Hist.N())
	}
	if r.P95Ms() < r.MeanLatencyMs() {
		t.Errorf("p95 %.1f below mean %.1f for tailed data", r.P95Ms(), r.MeanLatencyMs())
	}
}
