package metrics

import (
	"fmt"
	"math"
	"strings"
)

// LatencyHist is a fixed-size logarithmic histogram of latencies, used
// for percentile reporting (mean response time hides the tail that
// players actually feel as lag). Bins span 0.1ms to ~100s with ~12% bin
// width; memory is constant and recording is allocation-free.
type LatencyHist struct {
	counts [128]int64
	total  int64
}

const (
	histMinSeconds = 1e-4 // 0.1ms
	histBinsPerDec = 21   // bins per decade (~12% resolution)
)

func histBin(seconds float64) int {
	if seconds <= histMinSeconds {
		return 0
	}
	b := int(math.Log10(seconds/histMinSeconds) * histBinsPerDec)
	if b < 0 {
		b = 0
	}
	if b >= len(LatencyHist{}.counts) {
		b = len(LatencyHist{}.counts) - 1
	}
	return b
}

// binLow returns the lower bound of bin b in seconds.
func histBinLow(b int) float64 {
	return histMinSeconds * math.Pow(10, float64(b)/histBinsPerDec)
}

// Record adds one latency sample in seconds.
func (h *LatencyHist) Record(seconds float64) {
	h.counts[histBin(seconds)]++
	h.total++
}

// N returns the sample count.
func (h *LatencyHist) N() int64 { return h.total }

// Quantile returns the approximate q-quantile (0..1) in seconds, using
// the geometric midpoint of the containing bin.
func (h *LatencyHist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank definition: the smallest sample with at least q of the
	// mass at or below it, so small-n tails resolve to the max sample.
	rank := int64(math.Ceil(q*float64(h.total))) - 1
	if rank < 0 {
		rank = 0
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum > rank {
			lo := histBinLow(b)
			hi := histBinLow(b + 1)
			return math.Sqrt(lo * hi)
		}
	}
	return histBinLow(len(h.counts) - 1)
}

// P50, P95, and P99 return common percentiles in milliseconds.
func (h *LatencyHist) P50() float64 { return h.Quantile(0.50) * 1000 }

// P95 returns the 95th percentile in milliseconds.
func (h *LatencyHist) P95() float64 { return h.Quantile(0.95) * 1000 }

// P99 returns the 99th percentile in milliseconds.
func (h *LatencyHist) P99() float64 { return h.Quantile(0.99) * 1000 }

// Merge combines another histogram into this one.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
}

// String renders a compact summary.
func (h *LatencyHist) String() string {
	if h.total == 0 {
		return "latency: no samples"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "latency p50=%.1fms p95=%.1fms p99=%.1fms (n=%d)",
		h.P50(), h.P95(), h.P99(), h.total)
	return b.String()
}
