package metrics

import (
	"qserve/internal/stats"
)

// FrameRecord captures one server frame's activity for the §4.2/§5
// analyses: how many requests each thread processed and which leaf
// areanodes each thread locked. Leaf sets are bitmasks over leaf
// ordinals, which caps instrumented trees at 64 leaves (depth 6) — ample
// for the paper's 3..63-node sweep.
type FrameRecord struct {
	Frame        uint64
	Participants int
	// RequestsByThread[i] is the number of requests thread i processed
	// this frame (0 for threads that missed the frame).
	RequestsByThread []int
	// LeafLocksByThread[i] is the set of leaf ordinals thread i locked.
	LeafLocksByThread []uint64
	// LeafLockOps counts total leaf lock acquisitions this frame,
	// including re-locks.
	LeafLockOps int
	// ExecNsByThread[i] is the execute-phase (CompExec) time thread i
	// spent this frame — the quantity the load balancer equalizes.
	ExecNsByThread []int64
	// Migrations is how many clients the balancer moved at this frame's
	// barrier.
	Migrations int
	// ShedLevel is the overload ladder's level during this frame (0 =
	// full service, 1 = far clients at half snapshot rate, 2 = entity
	// caps, 3 = new connections refused).
	ShedLevel int
}

// FrameLog accumulates frame records and derives the paper's per-frame
// statistics. Not safe for concurrent use; engines log from the master
// thread at frame end.
type FrameLog struct {
	Frames []FrameRecord
	leaves int
}

// NewFrameLog creates a log for a tree with the given leaf count.
func NewFrameLog(numLeaves int) *FrameLog {
	return &FrameLog{leaves: numLeaves}
}

// Append records one frame.
func (l *FrameLog) Append(rec FrameRecord) { l.Frames = append(l.Frames, rec) }

// NumLeaves returns the instrumented leaf count.
func (l *FrameLog) NumLeaves() int { return l.leaves }

// RequestsPerThreadPerFrame returns the mean requests processed per
// participating thread per frame — the §5.2 "4, 2.5, and 1.5 requests
// per thread" statistic.
func (l *FrameLog) RequestsPerThreadPerFrame() float64 {
	var w stats.Welford
	for _, f := range l.Frames {
		for _, r := range f.RequestsByThread {
			w.Add(float64(r))
		}
	}
	return w.Mean()
}

// ImbalanceStats returns the mean and standard deviation of the per-frame
// spread (max−min) in requests per thread — the paper's "one thread
// services 3.3 more requests than the other ... standard deviation is
// 2.5" measurement. Frames with fewer than two threads are skipped.
func (l *FrameLog) ImbalanceStats() (mean, stddev float64) {
	var diffs []float64
	for _, f := range l.Frames {
		if len(f.RequestsByThread) < 2 {
			continue
		}
		mn, mx := f.RequestsByThread[0], f.RequestsByThread[0]
		for _, r := range f.RequestsByThread[1:] {
			if r < mn {
				mn = r
			}
			if r > mx {
				mx = r
			}
		}
		diffs = append(diffs, float64(mx-mn))
	}
	return stats.Mean(diffs), stats.StdDev(diffs)
}

// SharedLeafFraction returns the average fraction (0..1) of the world's
// leaves locked by at least two distinct threads within the same frame —
// Fig. 7(c).
func (l *FrameLog) SharedLeafFraction() float64 {
	if l.leaves == 0 {
		return 0
	}
	var w stats.Welford
	for _, f := range l.Frames {
		var once, twice uint64
		for _, set := range f.LeafLocksByThread {
			twice |= once & set
			once |= set
		}
		w.Add(float64(popcount(twice)) / float64(l.leaves))
	}
	return w.Mean()
}

// TouchedLeafFraction returns the average fraction of leaves locked by
// any thread per frame — the §5.1 "region of the map accessed per frame"
// measurement.
func (l *FrameLog) TouchedLeafFraction() float64 {
	if l.leaves == 0 {
		return 0
	}
	var w stats.Welford
	for _, f := range l.Frames {
		var any uint64
		for _, set := range f.LeafLocksByThread {
			any |= set
		}
		w.Add(float64(popcount(any)) / float64(l.leaves))
	}
	return w.Mean()
}

// LockOpsPerLeafPerFrame returns the average number of leaf lock
// operations per leaf per frame — the §5.1 "each leaf is locked between
// zero and 20 times" measurement.
func (l *FrameLog) LockOpsPerLeafPerFrame() float64 {
	if l.leaves == 0 {
		return 0
	}
	var w stats.Welford
	for _, f := range l.Frames {
		w.Add(float64(f.LeafLockOps) / float64(l.leaves))
	}
	return w.Mean()
}

// ExecLoadRatio aggregates execute-phase time per thread across the whole
// run and returns max/mean over the thread slots — the skew statistic the
// load balancer targets. A perfectly balanced run returns 1; a run where
// one thread does all the exec work on t threads returns t. Returns 0
// when no exec time was recorded.
func (l *FrameLog) ExecLoadRatio() float64 {
	var per []int64
	for _, f := range l.Frames {
		for i, ns := range f.ExecNsByThread {
			for len(per) <= i {
				per = append(per, 0)
			}
			per[i] += ns
		}
	}
	if len(per) == 0 {
		return 0
	}
	var total, max int64
	for _, v := range per {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(per))
	return float64(max) / mean
}

// TotalMigrations sums balancer migrations over the run.
func (l *FrameLog) TotalMigrations() int {
	n := 0
	for _, f := range l.Frames {
		n += f.Migrations
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ResponseStats aggregates the paper's two high-level metrics: response
// rate (replies/sec across the run) and response time (request→reply
// latency averaged over all clients).
type ResponseStats struct {
	Replies   int64
	DurationS float64
	Latency   stats.Welford // seconds
	Hist      LatencyHist   // percentile view of the same samples
}

// Rate returns replies per second.
func (r *ResponseStats) Rate() float64 {
	if r.DurationS == 0 {
		return 0
	}
	return float64(r.Replies) / r.DurationS
}

// MeanLatencyMs returns the average response time in milliseconds.
func (r *ResponseStats) MeanLatencyMs() float64 { return r.Latency.Mean() * 1000 }

// Record adds one response-time sample in seconds to both views.
func (r *ResponseStats) Record(seconds float64) {
	r.Latency.Add(seconds)
	r.Hist.Record(seconds)
}

// P95Ms returns the 95th-percentile response time in milliseconds.
func (r *ResponseStats) P95Ms() float64 { return r.Hist.P95() }

// Merge combines another accumulator (for multi-client aggregation).
func (r *ResponseStats) Merge(o ResponseStats) {
	r.Replies += o.Replies
	if o.DurationS > r.DurationS {
		r.DurationS = o.DurationS
	}
	r.Latency.Merge(o.Latency)
	r.Hist.Merge(&o.Hist)
}
