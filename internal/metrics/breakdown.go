// Package metrics defines the measurement vocabulary of the reproduction:
// the per-thread execution-time breakdown from the paper's §4 ("Exec",
// "Lock", "Receive", "Reply", "Intra-frame wait", "Inter-frame wait",
// "Idle", plus the world-update component), lock-time attribution to leaf
// versus parent areanodes, per-frame activity records, and the response
// rate/time summaries used to compare server configurations. Both
// execution engines — the live goroutine server and the virtual-time
// simulator — emit these structures, so every experiment renders through
// the same reporting code.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Component indexes the execution-time breakdown, matching the paper's
// definitions verbatim (§4, "Our execution time breakdowns ...").
type Component int

const (
	// CompExec is time spent processing requests (move execution), net of
	// lock overhead.
	CompExec Component = iota
	// CompLock is lock synchronization overhead during request
	// processing (areanode locking; all other lock overheads are <2% and
	// folded into their phases, as in the paper).
	CompLock
	// CompRecv is time receiving and parsing requests.
	CompRecv
	// CompReply is the full reply processing phase: forming and sending
	// replies.
	CompReply
	// CompIntraWait is time waiting at the barrier between request and
	// reply phases for other threads to drain their queues.
	CompIntraWait
	// CompInterWait is time waiting between frames: for the master's
	// world update, or for the current frame to end after missing it.
	CompInterWait
	// CompIdle is time blocked in select with no work.
	CompIdle
	// CompWorld is the world physics update (master thread only).
	CompWorld

	// NumComponents is the breakdown arity.
	NumComponents
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case CompExec:
		return "exec"
	case CompLock:
		return "lock"
	case CompRecv:
		return "receive"
	case CompReply:
		return "reply"
	case CompIntraWait:
		return "intra-wait"
	case CompInterWait:
		return "inter-wait"
	case CompIdle:
		return "idle"
	case CompWorld:
		return "world"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// Breakdown accumulates nanoseconds per component for one thread.
type Breakdown struct {
	Ns [NumComponents]int64

	// Lock time attribution for Fig. 7(a).
	LeafLockNs   int64
	ParentLockNs int64

	// Reply-phase volume counters: the T/Tx phase dominates frame time at
	// high player counts (§4, Fig. 4–5), so reports pair its time share
	// with how much data it moved and how often its scratch buffers had to
	// grow (steady state: zero — the pipeline is allocation-free).
	ReplyBytes     int64
	ReplyDatagrams int64
	ReplyAllocs    int64

	// Reply sub-phase timers (both inside CompReply, not additional
	// components): SnapBuildNs is this thread's share of the shared
	// per-frame visibility-index/state-cache build — for parallel engines
	// it is acquire wall time, including any wait for peers' shards —
	// and SnapMergeNs is time assembling per-client visible sets from the
	// index (or the naive scan when the index is disabled). Their ratio
	// to CompReply shows how much of the reply phase the frame-coherent
	// cache removed from the per-client path.
	SnapBuildNs int64
	SnapMergeNs int64

	// ExecCmds counts move commands executed in the request phase. The
	// load balancer divides CompExec time by it to reason about per-client
	// cost, and reports use it to normalize exec time per command.
	ExecCmds int64

	// Work-stealing execution counters: Steals is the number of requests
	// this thread executed on behalf of another thread's client, StealsNs
	// the execution time it spent doing so (a subset of CompExec — stolen
	// work is still exec time), and StealConflicts the number of times a
	// steal attempt parked because the request's region was contended
	// (the conflict-aware scheduler then picked different work).
	Steals         int64
	StealsNs       int64
	StealConflicts int64

	// Robustness counters from the failure-model layer: panics contained
	// by the per-thread recover wrappers, wedged-phase detections by the
	// frame watchdog, replies and entities shed by the overload ladder,
	// connection attempts refused while overloaded, and datagrams lost to
	// mux receive-queue overflow.
	PanicsRecovered int64
	WedgesDetected  int64
	RepliesShed     int64
	EntitiesCapped  int64
	BusyRejects     int64
	MuxDrops        int64

	// Durability counters (DESIGN.md §12): checkpoints captured at the
	// reply barrier and their serialization time (barrier-side only — the
	// file write happens off-thread), bytes split by full vs. delta
	// images so the delta compression ratio is reportable, captures
	// skipped because the flusher still owned every buffer, and the
	// one-time cost of crash recovery (restore + redo-log tail) when the
	// engine was seeded from a checkpoint.
	Checkpoints          int64
	CheckpointNs         int64
	CheckpointBytes      int64
	CheckpointFullBytes  int64
	CheckpointDeltaBytes int64
	CheckpointSkips      int64
	RecoveryNs           int64
}

// Add accumulates o into b.
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b.Ns {
		b.Ns[i] += o.Ns[i]
	}
	b.LeafLockNs += o.LeafLockNs
	b.ParentLockNs += o.ParentLockNs
	b.ReplyBytes += o.ReplyBytes
	b.ReplyDatagrams += o.ReplyDatagrams
	b.ReplyAllocs += o.ReplyAllocs
	b.SnapBuildNs += o.SnapBuildNs
	b.SnapMergeNs += o.SnapMergeNs
	b.ExecCmds += o.ExecCmds
	b.Steals += o.Steals
	b.StealsNs += o.StealsNs
	b.StealConflicts += o.StealConflicts
	b.PanicsRecovered += o.PanicsRecovered
	b.WedgesDetected += o.WedgesDetected
	b.RepliesShed += o.RepliesShed
	b.EntitiesCapped += o.EntitiesCapped
	b.BusyRejects += o.BusyRejects
	b.MuxDrops += o.MuxDrops
	b.Checkpoints += o.Checkpoints
	b.CheckpointNs += o.CheckpointNs
	b.CheckpointBytes += o.CheckpointBytes
	b.CheckpointFullBytes += o.CheckpointFullBytes
	b.CheckpointDeltaBytes += o.CheckpointDeltaBytes
	b.CheckpointSkips += o.CheckpointSkips
	b.RecoveryNs += o.RecoveryNs
}

// Charge adds ns to a component.
func (b *Breakdown) Charge(c Component, ns int64) { b.Ns[c] += ns }

// ChargeLock adds lock wait+overhead time, attributed to leaf or parent
// areanode locking.
func (b *Breakdown) ChargeLock(ns int64, leaf bool) {
	b.Ns[CompLock] += ns
	if leaf {
		b.LeafLockNs += ns
	} else {
		b.ParentLockNs += ns
	}
}

// Total returns the sum over all components.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, v := range b.Ns {
		t += v
	}
	return t
}

// NonIdle returns the total excluding idle time.
func (b *Breakdown) NonIdle() int64 { return b.Total() - b.Ns[CompIdle] }

// Busy returns time doing useful or overhead work: total minus idle and
// both wait components — the paper's "workload" for balance analysis
// ("including all components of execution time except for idle and wait
// times").
func (b *Breakdown) Busy() int64 {
	return b.Total() - b.Ns[CompIdle] - b.Ns[CompIntraWait] - b.Ns[CompInterWait]
}

// Percent returns component c as a percentage of the total (0 when the
// total is zero).
func (b *Breakdown) Percent(c Component) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(b.Ns[c]) / float64(t)
}

// String renders a compact single-line summary.
func (b *Breakdown) String() string {
	var parts []string
	for c := Component(0); c < NumComponents; c++ {
		if b.Ns[c] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%.1f%%", c, b.Percent(c)))
		}
	}
	return strings.Join(parts, " ")
}

// Scale multiplies every component by f (used to normalize runs of
// different durations).
func (b *Breakdown) Scale(f float64) {
	for i := range b.Ns {
		b.Ns[i] = int64(float64(b.Ns[i]) * f)
	}
	b.LeafLockNs = int64(float64(b.LeafLockNs) * f)
	b.ParentLockNs = int64(float64(b.ParentLockNs) * f)
	b.ReplyBytes = int64(float64(b.ReplyBytes) * f)
	b.ReplyDatagrams = int64(float64(b.ReplyDatagrams) * f)
	b.ReplyAllocs = int64(float64(b.ReplyAllocs) * f)
	b.SnapBuildNs = int64(float64(b.SnapBuildNs) * f)
	b.SnapMergeNs = int64(float64(b.SnapMergeNs) * f)
	b.ExecCmds = int64(float64(b.ExecCmds) * f)
	b.Steals = int64(float64(b.Steals) * f)
	b.StealsNs = int64(float64(b.StealsNs) * f)
	b.StealConflicts = int64(float64(b.StealConflicts) * f)
	b.PanicsRecovered = int64(float64(b.PanicsRecovered) * f)
	b.WedgesDetected = int64(float64(b.WedgesDetected) * f)
	b.RepliesShed = int64(float64(b.RepliesShed) * f)
	b.EntitiesCapped = int64(float64(b.EntitiesCapped) * f)
	b.BusyRejects = int64(float64(b.BusyRejects) * f)
	b.MuxDrops = int64(float64(b.MuxDrops) * f)
	b.Checkpoints = int64(float64(b.Checkpoints) * f)
	b.CheckpointNs = int64(float64(b.CheckpointNs) * f)
	b.CheckpointBytes = int64(float64(b.CheckpointBytes) * f)
	b.CheckpointFullBytes = int64(float64(b.CheckpointFullBytes) * f)
	b.CheckpointDeltaBytes = int64(float64(b.CheckpointDeltaBytes) * f)
	b.CheckpointSkips = int64(float64(b.CheckpointSkips) * f)
	b.RecoveryNs = int64(float64(b.RecoveryNs) * f)
}

// DeltaRatio returns delta-checkpoint bytes as a fraction of full-
// checkpoint bytes — how much the incremental encoding compresses the
// durability stream (0 when no full image was written).
func (b *Breakdown) DeltaRatio() float64 {
	if b.CheckpointFullBytes == 0 {
		return 0
	}
	return float64(b.CheckpointDeltaBytes) / float64(b.CheckpointFullBytes)
}

// BytesPerReply returns the average datagram size of the reply phase, or
// 0 when no replies were sent.
func (b *Breakdown) BytesPerReply() float64 {
	if b.ReplyDatagrams == 0 {
		return 0
	}
	return float64(b.ReplyBytes) / float64(b.ReplyDatagrams)
}

// MergeThreads averages per-thread breakdowns into the "average execution
// time breakdown" the paper's figures plot.
func MergeThreads(threads []Breakdown) Breakdown {
	var avg Breakdown
	if len(threads) == 0 {
		return avg
	}
	for i := range threads {
		avg.Add(&threads[i])
	}
	n := float64(len(threads))
	avg.Scale(1 / n)
	return avg
}

// Dur formats nanoseconds as a duration string for reports.
func Dur(ns int64) string { return time.Duration(ns).Truncate(time.Microsecond).String() }
