package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Charge(CompExec, 600)
	b.Charge(CompRecv, 100)
	b.Charge(CompReply, 200)
	b.Charge(CompIdle, 100)
	b.ChargeLock(50, true)
	b.ChargeLock(25, false)
	b.Charge(CompIntraWait, 10)
	b.Charge(CompInterWait, 15)

	if got := b.Total(); got != 600+100+200+100+75+10+15 {
		t.Errorf("Total = %d", got)
	}
	if got := b.NonIdle(); got != b.Total()-100 {
		t.Errorf("NonIdle = %d", got)
	}
	if got := b.Busy(); got != b.Total()-100-10-15 {
		t.Errorf("Busy = %d", got)
	}
	if b.Ns[CompLock] != 75 || b.LeafLockNs != 50 || b.ParentLockNs != 25 {
		t.Errorf("lock attribution: %d/%d/%d", b.Ns[CompLock], b.LeafLockNs, b.ParentLockNs)
	}
	if p := b.Percent(CompExec); math.Abs(p-100*600/1100.0) > 1e-9 {
		t.Errorf("Percent = %v", p)
	}
}

func TestBreakdownAddAndScale(t *testing.T) {
	var a, b Breakdown
	a.Charge(CompExec, 100)
	a.ChargeLock(40, true)
	b.Charge(CompExec, 50)
	b.ChargeLock(10, false)
	a.Add(&b)
	if a.Ns[CompExec] != 150 || a.Ns[CompLock] != 50 || a.LeafLockNs != 40 || a.ParentLockNs != 10 {
		t.Errorf("Add: %+v", a)
	}
	a.Scale(0.5)
	if a.Ns[CompExec] != 75 || a.LeafLockNs != 20 {
		t.Errorf("Scale: %+v", a)
	}
}

func TestMergeThreads(t *testing.T) {
	threads := make([]Breakdown, 4)
	for i := range threads {
		threads[i].Charge(CompExec, int64(100*(i+1)))
	}
	avg := MergeThreads(threads)
	if avg.Ns[CompExec] != 250 {
		t.Errorf("avg exec = %d", avg.Ns[CompExec])
	}
	if empty := MergeThreads(nil); empty.Total() != 0 {
		t.Error("empty merge not zero")
	}
}

func TestComponentStrings(t *testing.T) {
	for c := Component(0); c < NumComponents; c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "component(") {
			t.Errorf("component %d stringer: %q", c, s)
		}
	}
	var b Breakdown
	b.Charge(CompExec, 100)
	if !strings.Contains(b.String(), "exec") {
		t.Errorf("breakdown string: %q", b.String())
	}
}

func TestFrameLogRequestsAndImbalance(t *testing.T) {
	l := NewFrameLog(16)
	// Two threads: 5 and 2 requests, then 3 and 3.
	l.Append(FrameRecord{Frame: 1, RequestsByThread: []int{5, 2}})
	l.Append(FrameRecord{Frame: 2, RequestsByThread: []int{3, 3}})
	if got := l.RequestsPerThreadPerFrame(); math.Abs(got-3.25) > 1e-9 {
		t.Errorf("requests/thread/frame = %v", got)
	}
	mean, sd := l.ImbalanceStats()
	if math.Abs(mean-1.5) > 1e-9 {
		t.Errorf("imbalance mean = %v", mean)
	}
	if math.Abs(sd-1.5) > 1e-9 {
		t.Errorf("imbalance stddev = %v", sd)
	}
}

func TestFrameLogLeafSharing(t *testing.T) {
	l := NewFrameLog(4)
	// Frame 1: threads lock {0,1} and {1,2}: leaf 1 shared -> 1/4.
	l.Append(FrameRecord{
		LeafLocksByThread: []uint64{0b0011, 0b0110},
		LeafLockOps:       6,
	})
	// Frame 2: disjoint {0} and {3}: none shared.
	l.Append(FrameRecord{
		LeafLocksByThread: []uint64{0b0001, 0b1000},
		LeafLockOps:       2,
	})
	if got := l.SharedLeafFraction(); math.Abs(got-0.125) > 1e-9 {
		t.Errorf("shared fraction = %v", got)
	}
	if got := l.TouchedLeafFraction(); math.Abs(got-(0.75+0.5)/2) > 1e-9 {
		t.Errorf("touched fraction = %v", got)
	}
	if got := l.LockOpsPerLeafPerFrame(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("lock ops per leaf = %v", got)
	}
}

func TestFrameLogEmpty(t *testing.T) {
	l := NewFrameLog(0)
	if l.SharedLeafFraction() != 0 || l.TouchedLeafFraction() != 0 || l.LockOpsPerLeafPerFrame() != 0 {
		t.Error("zero-leaf log should report zeros")
	}
	l2 := NewFrameLog(8)
	m, sd := l2.ImbalanceStats()
	if m != 0 || sd != 0 {
		t.Error("empty log imbalance should be zero")
	}
}

func TestResponseStats(t *testing.T) {
	var r ResponseStats
	r.Replies = 3000
	r.DurationS = 10
	r.Latency.Add(0.050)
	r.Latency.Add(0.150)
	if r.Rate() != 300 {
		t.Errorf("rate = %v", r.Rate())
	}
	if got := r.MeanLatencyMs(); math.Abs(got-100) > 1e-9 {
		t.Errorf("latency = %v ms", got)
	}
	var o ResponseStats
	o.Replies = 1000
	o.DurationS = 8
	o.Latency.Add(0.1)
	r.Merge(o)
	if r.Replies != 4000 || r.DurationS != 10 || r.Latency.N() != 3 {
		t.Errorf("merge: %+v", r)
	}
	var zero ResponseStats
	if zero.Rate() != 0 {
		t.Error("zero-duration rate")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Demo", Header: []string{"players", "rate", "note"}}
	tb.AddRow("64", "812.5", "ok")
	tb.AddRowf(128, 423.75, "saturated")
	out := tb.Render()
	if !strings.Contains(out, "## Demo") || !strings.Contains(out, "players") {
		t.Errorf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the first column width.
	if !strings.Contains(lines[3], "64") || !strings.Contains(lines[4], "423.8") {
		t.Errorf("rows wrong:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if Pct(12.345) != "12.3%" || F1(1.25) != "1.2" || F2(1.257) != "1.26" {
		t.Error("format helpers wrong")
	}
	if Dur(1500000) == "" {
		t.Error("Dur empty")
	}
}
