// Package geom provides the small 3-D math kernel used throughout qserve:
// vectors, axis-aligned boxes, planes, view angles, and the
// segment/box intersection primitives the collision and areanode layers
// are built on.
//
// Conventions follow the Quake engine that the reproduced paper studies:
// x and y span the ground plane, z is up, angles are degrees with
// (pitch, yaw, roll) ordering, and distances are world units
// (a player is 32 units wide and 56 units tall).
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in world space.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and o.
func (v Vec3) Mul(o Vec3) Vec3 { return Vec3{v.X * o.X, v.Y * o.Y, v.Z * o.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// LenSq returns the squared length of v; cheaper than Len for comparisons.
func (v Vec3) LenSq() float64 { return v.Dot(v) }

// Dist returns the distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Len() }

// DistSq returns the squared distance between v and o.
func (v Vec3) DistSq(o Vec3) float64 { return v.Sub(o).LenSq() }

// Norm returns v scaled to unit length, or the zero vector if v is zero.
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l == 0 {
		return Vec3{}
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates from v to o by t in [0,1].
func (v Vec3) Lerp(o Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (o.X-v.X)*t,
		v.Y + (o.Y-v.Y)*t,
		v.Z + (o.Z-v.Z)*t,
	}
}

// MA returns v + dir*scale ("multiply-add"), the Quake VectorMA idiom.
func (v Vec3) MA(scale float64, dir Vec3) Vec3 {
	return Vec3{v.X + scale*dir.X, v.Y + scale*dir.Y, v.Z + scale*dir.Z}
}

// Min returns the component-wise minimum of v and o.
func (v Vec3) Min(o Vec3) Vec3 {
	return Vec3{math.Min(v.X, o.X), math.Min(v.Y, o.Y), math.Min(v.Z, o.Z)}
}

// Max returns the component-wise maximum of v and o.
func (v Vec3) Max(o Vec3) Vec3 {
	return Vec3{math.Max(v.X, o.X), math.Max(v.Y, o.Y), math.Max(v.Z, o.Z)}
}

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// Axis returns component i of v (0=X, 1=Y, 2=Z).
func (v Vec3) Axis(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// SetAxis returns a copy of v with component i replaced by val.
func (v Vec3) SetAxis(i int, val float64) Vec3 {
	switch i {
	case 0:
		v.X = val
	case 1:
		v.Y = val
	default:
		v.Z = val
	}
	return v
}

// Flat returns v with its Z component zeroed, projecting it onto the
// ground plane.
func (v Vec3) Flat() Vec3 { return Vec3{v.X, v.Y, 0} }

// IsZero reports whether all components are exactly zero.
func (v Vec3) IsZero() bool { return v.X == 0 && v.Y == 0 && v.Z == 0 }

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// NearEq reports whether v and o differ by at most eps in every component.
func (v Vec3) NearEq(o Vec3, eps float64) bool {
	return math.Abs(v.X-o.X) <= eps && math.Abs(v.Y-o.Y) <= eps && math.Abs(v.Z-o.Z) <= eps
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.2f %.2f %.2f)", v.X, v.Y, v.Z) }

// ClampLen returns v truncated to at most maxLen without changing its
// direction.
func (v Vec3) ClampLen(maxLen float64) Vec3 {
	l := v.Len()
	if l <= maxLen || l == 0 {
		return v
	}
	return v.Scale(maxLen / l)
}
