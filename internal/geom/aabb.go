package geom

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box, the universal spatial currency of
// the server: brush geometry, entity hulls, move bounding boxes, and
// areanode volumes are all AABBs.
//
// A box is well-formed when Min <= Max component-wise. The zero AABB is the
// degenerate point box at the origin.
type AABB struct {
	Min, Max Vec3
}

// Box constructs an AABB from two opposite corners, normalizing the
// ordering so the result is well-formed regardless of argument order.
func Box(a, b Vec3) AABB { return AABB{a.Min(b), a.Max(b)} }

// BoxAt constructs an AABB centered at pos with half extents he.
func BoxAt(pos, he Vec3) AABB { return AABB{pos.Sub(he), pos.Add(he)} }

// BoxHull constructs an entity-style AABB: origin plus relative mins/maxs,
// the Quake edict absmin/absmax idiom.
func BoxHull(origin, mins, maxs Vec3) AABB {
	return AABB{origin.Add(mins), origin.Add(maxs)}
}

// Center returns the centroid of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box dimensions along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// HalfExtents returns half the box dimensions along each axis.
func (b AABB) HalfExtents() Vec3 { return b.Size().Scale(0.5) }

// Volume returns the enclosed volume.
func (b AABB) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// IsValid reports whether Min <= Max on every axis.
func (b AABB) IsValid() bool {
	return b.Min.X <= b.Max.X && b.Min.Y <= b.Max.Y && b.Min.Z <= b.Max.Z
}

// Contains reports whether point p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// ContainsStrict reports whether p lies strictly inside b (not on a face).
func (b AABB) ContainsStrict(p Vec3) bool {
	return p.X > b.Min.X && p.X < b.Max.X &&
		p.Y > b.Min.Y && p.Y < b.Max.Y &&
		p.Z > b.Min.Z && p.Z < b.Max.Z
}

// ContainsBox reports whether o lies entirely within b.
func (b AABB) ContainsBox(o AABB) bool {
	return b.Contains(o.Min) && b.Contains(o.Max)
}

// Intersects reports whether b and o overlap, touching faces included.
// This is the test the areanode traversal and the paper's
// "objects intersecting the motion's bounding box" step perform.
func (b AABB) Intersects(o AABB) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// IntersectsStrict reports whether b and o overlap with positive volume
// (touching faces excluded).
func (b AABB) IntersectsStrict(o AABB) bool {
	return b.Min.X < o.Max.X && b.Max.X > o.Min.X &&
		b.Min.Y < o.Max.Y && b.Max.Y > o.Min.Y &&
		b.Min.Z < o.Max.Z && b.Max.Z > o.Min.Z
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{b.Min.Min(o.Min), b.Max.Max(o.Max)}
}

// UnionPoint returns the smallest box containing b and point p.
func (b AABB) UnionPoint(p Vec3) AABB {
	return AABB{b.Min.Min(p), b.Max.Max(p)}
}

// Intersection returns the overlap of b and o. The result is not valid
// (Min > Max somewhere) when the boxes are disjoint; callers should check
// IsValid when disjointness is possible.
func (b AABB) Intersection(o AABB) AABB {
	return AABB{b.Min.Max(o.Min), b.Max.Min(o.Max)}
}

// Expand returns b grown outward by r on every face. Negative r shrinks;
// the result may become invalid when shrinking past the center.
func (b AABB) Expand(r float64) AABB {
	d := Vec3{r, r, r}
	return AABB{b.Min.Sub(d), b.Max.Add(d)}
}

// ExpandVec returns b grown outward by he per axis. This implements the
// Minkowski expansion used to reduce swept-box traces to segment traces.
func (b AABB) ExpandVec(he Vec3) AABB {
	return AABB{b.Min.Sub(he), b.Max.Add(he)}
}

// Translate returns b shifted by d.
func (b AABB) Translate(d Vec3) AABB {
	return AABB{b.Min.Add(d), b.Max.Add(d)}
}

// ClampPoint returns the point inside b closest to p.
func (b AABB) ClampPoint(p Vec3) Vec3 {
	return p.Max(b.Min).Min(b.Max)
}

// DistSqToPoint returns the squared distance from p to the closest point
// of b (zero when p is inside).
func (b AABB) DistSqToPoint(p Vec3) float64 {
	return b.ClampPoint(p).DistSq(p)
}

// SweepBounds returns the bounding box of box b translated from its current
// position to position +delta: the union of start and end boxes. This is
// the "bounding box of the player's motion" from the paper's move
// execution (§2.3).
func (b AABB) SweepBounds(delta Vec3) AABB {
	return b.Union(b.Translate(delta))
}

// IntersectSegment intersects the segment from a to c with the box using
// the slab method. It reports whether the segment hits the box, the entry
// parameter t in [0,1], and the outward normal of the face crossed at
// entry. A segment starting inside the box reports a hit at t=0 with a
// zero normal.
func (b AABB) IntersectSegment(a, c Vec3) (hit bool, t float64, normal Vec3) {
	if b.Contains(a) {
		return true, 0, Vec3{}
	}
	d := c.Sub(a)
	tEnter, tExit := 0.0, 1.0
	enterAxis, enterSign := -1, 0.0
	for i := 0; i < 3; i++ {
		av, dv := a.Axis(i), d.Axis(i)
		mn, mx := b.Min.Axis(i), b.Max.Axis(i)
		if dv == 0 {
			if av < mn || av > mx {
				return false, 0, Vec3{}
			}
			continue
		}
		inv := 1 / dv
		t0 := (mn - av) * inv
		t1 := (mx - av) * inv
		sign := -1.0
		if t0 > t1 {
			t0, t1 = t1, t0
			sign = 1.0
		}
		if t0 > tEnter {
			tEnter = t0
			enterAxis, enterSign = i, sign
		}
		if t1 < tExit {
			tExit = t1
		}
		if tEnter > tExit {
			return false, 0, Vec3{}
		}
	}
	if enterAxis < 0 {
		// Degenerate: a is inside after all (numerical edge); treat as t=0.
		return true, 0, Vec3{}
	}
	normal = Vec3{}.SetAxis(enterAxis, enterSign)
	return true, tEnter, normal
}

// Corner returns corner i (0..7) of the box, with bit 0 selecting max X,
// bit 1 max Y, bit 2 max Z.
func (b AABB) Corner(i int) Vec3 {
	p := b.Min
	if i&1 != 0 {
		p.X = b.Max.X
	}
	if i&2 != 0 {
		p.Y = b.Max.Y
	}
	if i&4 != 0 {
		p.Z = b.Max.Z
	}
	return p
}

// LongestAxis returns the axis index (0, 1, or 2) along which b is largest.
func (b AABB) LongestAxis() int {
	s := b.Size()
	if s.X >= s.Y && s.X >= s.Z {
		return 0
	}
	if s.Y >= s.Z {
		return 1
	}
	return 2
}

// String implements fmt.Stringer.
func (b AABB) String() string { return fmt.Sprintf("[%v %v]", b.Min, b.Max) }

// Inf returns the box covering all of space; useful as an identity for
// Intersection or as a "lock everything" region.
func Inf() AABB {
	inf := math.Inf(1)
	return AABB{Vec3{-inf, -inf, -inf}, Vec3{inf, inf, inf}}
}

// Empty returns an inverted box that acts as the identity for Union.
func Empty() AABB {
	inf := math.Inf(1)
	return AABB{Vec3{inf, inf, inf}, Vec3{-inf, -inf, -inf}}
}
