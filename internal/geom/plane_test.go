package geom

import (
	"math/rand"
	"testing"
)

func TestSidePoint(t *testing.T) {
	pl := AxisPlane{Axis: 0, Dist: 5}
	if pl.SidePoint(V(6, 0, 0)) != SideFront {
		t.Error("point in front misclassified")
	}
	if pl.SidePoint(V(4, 0, 0)) != SideBack {
		t.Error("point behind misclassified")
	}
	if pl.SidePoint(V(5, 0, 0)) != SideFront {
		t.Error("on-plane point should classify front (>= rule)")
	}
}

func TestSideBox(t *testing.T) {
	pl := AxisPlane{Axis: 1, Dist: 0}
	if got := pl.SideBox(Box(V(0, 1, 0), V(1, 5, 1))); got != SideFront {
		t.Errorf("front box = %d", got)
	}
	if got := pl.SideBox(Box(V(0, -5, 0), V(1, -1, 1))); got != SideBack {
		t.Errorf("back box = %d", got)
	}
	if got := pl.SideBox(Box(V(0, -1, 0), V(1, 1, 1))); got != SideCross {
		t.Errorf("crossing box = %d", got)
	}
	// Touching the plane from the front is front, not crossing: this is
	// the areanode link rule.
	if got := pl.SideBox(Box(V(0, 0, 0), V(1, 5, 1))); got != SideFront {
		t.Errorf("touching-front box = %d", got)
	}
	if got := pl.SideBox(Box(V(0, -5, 0), V(1, 0, 1))); got != SideBack {
		t.Errorf("touching-back box = %d", got)
	}
}

func TestSideBoxConsistentWithCorners(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		b := randomBox(r)
		pl := AxisPlane{Axis: r.Intn(3), Dist: (r.Float64() - 0.5) * 2000}
		got := pl.SideBox(b)
		allFront := b.Min.Axis(pl.Axis) >= pl.Dist
		allBack := b.Max.Axis(pl.Axis) <= pl.Dist
		switch {
		case allFront && got != SideFront:
			t.Fatalf("case %d: want front", i)
		case allBack && !allFront && got != SideBack:
			t.Fatalf("case %d: want back", i)
		case !allFront && !allBack && got != SideCross:
			t.Fatalf("case %d: want cross", i)
		}
	}
}

func TestSplitBox(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))
	pl := AxisPlane{Axis: 0, Dist: 4}
	front, back := pl.SplitBox(b)
	if front.Min != V(4, 0, 0) || front.Max != V(10, 10, 10) {
		t.Errorf("front = %v", front)
	}
	if back.Min != V(0, 0, 0) || back.Max != V(4, 10, 10) {
		t.Errorf("back = %v", back)
	}
	// Plane outside the box clamps to a face.
	pl = AxisPlane{Axis: 0, Dist: 20}
	front, back = pl.SplitBox(b)
	if back != b {
		t.Errorf("back should equal original box, got %v", back)
	}
	if front.Volume() != 0 {
		t.Errorf("front should be degenerate, got %v", front)
	}
}
