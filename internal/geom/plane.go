package geom

// AxisPlane is an axis-aligned splitting plane: all points p with
// p.Axis(Axis) == Dist. The areanode tree (and the collide tree's interior
// nodes) partition space exclusively with planes of this form, as in the
// engine the paper studies, where areanode splits alternate between the
// x and y axes.
type AxisPlane struct {
	Axis int     // 0 = x, 1 = y, 2 = z
	Dist float64 // plane position along Axis
}

// Side classification results for SideBox.
const (
	SideFront = 1 << iota // entirely on the >= Dist side
	SideBack              // entirely on the <= Dist side
	SideCross = SideFront | SideBack
)

// SidePoint returns SideFront if p is on or beyond the plane in the
// positive axis direction, SideBack otherwise.
func (pl AxisPlane) SidePoint(p Vec3) int {
	if p.Axis(pl.Axis) >= pl.Dist {
		return SideFront
	}
	return SideBack
}

// SideBox classifies box b against the plane: SideFront when entirely in
// front, SideBack when entirely behind, SideCross when it straddles the
// plane. Boxes touching the plane from one side are not considered
// crossing — this matches the engine's areanode link rule, where an object
// is pushed to a child if it fits entirely within the child's closed
// half-space.
func (pl AxisPlane) SideBox(b AABB) int {
	if b.Min.Axis(pl.Axis) >= pl.Dist {
		return SideFront
	}
	if b.Max.Axis(pl.Axis) <= pl.Dist {
		return SideBack
	}
	return SideCross
}

// SplitBox cuts box b along the plane, returning the front and back
// pieces. When b does not straddle the plane one result equals b and the
// other is the degenerate sliver at the plane.
func (pl AxisPlane) SplitBox(b AABB) (front, back AABB) {
	front, back = b, b
	front.Min = front.Min.SetAxis(pl.Axis, clamp(pl.Dist, b.Min.Axis(pl.Axis), b.Max.Axis(pl.Axis)))
	back.Max = back.Max.SetAxis(pl.Axis, clamp(pl.Dist, b.Min.Axis(pl.Axis), b.Max.Axis(pl.Axis)))
	return front, back
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
