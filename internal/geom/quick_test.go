package geom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomVec(r *rand.Rand) Vec3 {
	return Vec3{
		(r.Float64() - 0.5) * 2000,
		(r.Float64() - 0.5) * 2000,
		(r.Float64() - 0.5) * 2000,
	}
}

func randomBox(r *rand.Rand) AABB {
	return Box(randomVec(r), randomVec(r))
}

var (
	vecType = reflect.TypeOf(Vec3{})
	boxType = reflect.TypeOf(AABB{})
)

// quickCheck runs testing/quick on a property function whose parameters
// may be Vec3, AABB, or float64, generating moderate-magnitude values so
// floating-point comparisons stay well-conditioned.
func quickCheck(t *testing.T, f any) {
	t.Helper()
	ft := reflect.TypeOf(f)
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				switch ft.In(i) {
				case vecType:
					vals[i] = reflect.ValueOf(randomVec(r))
				case boxType:
					vals[i] = reflect.ValueOf(randomBox(r))
				default:
					vals[i] = reflect.ValueOf((r.Float64() - 0.5) * 2000)
				}
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// quickVecCfg is retained for tests that call quick.Check directly with
// all-Vec3 signatures.
func quickVecCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randomVec(r))
			}
		},
	}
}
