package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxNormalizesCorners(t *testing.T) {
	b := Box(V(5, -1, 3), V(-2, 4, 0))
	if !b.IsValid() {
		t.Fatalf("Box produced invalid AABB: %v", b)
	}
	if b.Min != V(-2, -1, 0) || b.Max != V(5, 4, 3) {
		t.Errorf("Box = %v", b)
	}
}

func TestBoxAtAndHull(t *testing.T) {
	b := BoxAt(V(10, 10, 10), V(2, 3, 4))
	if b.Min != V(8, 7, 6) || b.Max != V(12, 13, 14) {
		t.Errorf("BoxAt = %v", b)
	}
	h := BoxHull(V(100, 0, 0), V(-16, -16, -24), V(16, 16, 32))
	if h.Min != V(84, -16, -24) || h.Max != V(116, 16, 32) {
		t.Errorf("BoxHull = %v", h)
	}
}

func TestContainsAndIntersects(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))
	if !b.Contains(V(5, 5, 5)) || !b.Contains(V(0, 0, 0)) || !b.Contains(V(10, 10, 10)) {
		t.Error("Contains failed on interior/boundary points")
	}
	if b.Contains(V(11, 5, 5)) {
		t.Error("Contains accepted outside point")
	}
	if b.ContainsStrict(V(0, 5, 5)) {
		t.Error("ContainsStrict accepted boundary point")
	}
	o := Box(V(10, 10, 10), V(20, 20, 20)) // touches at a corner
	if !b.Intersects(o) {
		t.Error("Intersects should include touching boxes")
	}
	if b.IntersectsStrict(o) {
		t.Error("IntersectsStrict should exclude touching boxes")
	}
	far := Box(V(50, 50, 50), V(60, 60, 60))
	if b.Intersects(far) {
		t.Error("Intersects accepted disjoint boxes")
	}
}

func TestUnionProperties(t *testing.T) {
	quickCheck(t, func(a, b AABB) bool {
		u := a.Union(b)
		return u.ContainsBox(a) && u.ContainsBox(b) && u.IsValid()
	})
}

func TestIntersectionProperties(t *testing.T) {
	quickCheck(t, func(a, b AABB) bool {
		x := a.Intersection(b)
		if !a.Intersects(b) {
			return !x.IsValid() || x.Volume() == 0
		}
		// Every point of the intersection is in both boxes: check corners.
		for i := 0; i < 8; i++ {
			p := x.Corner(i)
			if !a.Contains(p) || !b.Contains(p) {
				return false
			}
		}
		return true
	})
}

func TestExpandTranslate(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))
	e := b.Expand(2)
	if e.Min != V(-2, -2, -2) || e.Max != V(12, 12, 12) {
		t.Errorf("Expand = %v", e)
	}
	tr := b.Translate(V(1, 2, 3))
	if tr.Min != V(1, 2, 3) || tr.Max != V(11, 12, 13) {
		t.Errorf("Translate = %v", tr)
	}
	ev := b.ExpandVec(V(1, 0, 2))
	if ev.Min != V(-1, 0, -2) || ev.Max != V(11, 10, 12) {
		t.Errorf("ExpandVec = %v", ev)
	}
}

func TestSweepBounds(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	s := b.SweepBounds(V(10, 0, -5))
	if s.Min != V(0, 0, -5) || s.Max != V(12, 2, 2) {
		t.Errorf("SweepBounds = %v", s)
	}
	quickCheck(t, func(b AABB, d Vec3) bool {
		s := b.SweepBounds(d)
		return s.ContainsBox(b) && s.ContainsBox(b.Translate(d))
	})
}

func TestClampPoint(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))
	if got := b.ClampPoint(V(-5, 5, 20)); got != V(0, 5, 10) {
		t.Errorf("ClampPoint = %v", got)
	}
	quickCheck(t, func(b AABB, p Vec3) bool {
		c := b.ClampPoint(p)
		return b.Contains(c)
	})
}

func TestDistSqToPoint(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))
	if got := b.DistSqToPoint(V(5, 5, 5)); got != 0 {
		t.Errorf("inside point dist = %v", got)
	}
	if got := b.DistSqToPoint(V(13, 14, 10)); got != 9+16 {
		t.Errorf("outside point dist = %v", got)
	}
}

func TestIntersectSegmentBasic(t *testing.T) {
	b := Box(V(0, 0, 0), V(10, 10, 10))

	hit, tt, n := b.IntersectSegment(V(-5, 5, 5), V(15, 5, 5))
	if !hit || math.Abs(tt-0.25) > eps || n != V(-1, 0, 0) {
		t.Errorf("x-crossing: hit=%v t=%v n=%v", hit, tt, n)
	}

	hit, tt, _ = b.IntersectSegment(V(5, 5, 5), V(20, 5, 5))
	if !hit || tt != 0 {
		t.Errorf("start-inside: hit=%v t=%v", hit, tt)
	}

	hit, _, _ = b.IntersectSegment(V(-5, 20, 5), V(15, 20, 5))
	if hit {
		t.Error("miss reported as hit")
	}

	// Segment ending before the box.
	hit, _, _ = b.IntersectSegment(V(-10, 5, 5), V(-2, 5, 5))
	if hit {
		t.Error("short segment reported as hit")
	}

	// Entry through the top face.
	hit, _, n = b.IntersectSegment(V(5, 5, 20), V(5, 5, 5))
	if !hit || n != V(0, 0, 1) {
		t.Errorf("top entry normal = %v", n)
	}
}

// TestIntersectSegmentMatchesSampling cross-validates the slab test
// against dense point sampling along random segments.
func TestIntersectSegmentMatchesSampling(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := randomBox(r)
		a, c := randomVec(r), randomVec(r)
		hit, tt, _ := b.IntersectSegment(a, c)

		sampledHit := false
		sampledT := 1.0
		const steps = 400
		for s := 0; s <= steps; s++ {
			f := float64(s) / steps
			if b.Contains(a.Lerp(c, f)) {
				sampledHit = true
				sampledT = f
				break
			}
		}
		if hit != sampledHit {
			// Tolerate grazing hits the sampler can miss on box faces.
			if hit && tt > 0 {
				p := a.Lerp(c, tt)
				if b.Expand(1e-6).Contains(p) {
					continue
				}
			}
			t.Fatalf("case %d: slab hit=%v sampling hit=%v box=%v seg=%v->%v", i, hit, sampledHit, b, a, c)
		}
		if hit && math.Abs(tt-sampledT) > 2.0/steps+1e-9 {
			t.Fatalf("case %d: slab t=%v sampled t=%v", i, tt, sampledT)
		}
	}
}

func TestCorner(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 2, 3))
	want := []Vec3{
		{0, 0, 0}, {1, 0, 0}, {0, 2, 0}, {1, 2, 0},
		{0, 0, 3}, {1, 0, 3}, {0, 2, 3}, {1, 2, 3},
	}
	for i, w := range want {
		if got := b.Corner(i); got != w {
			t.Errorf("Corner(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestLongestAxis(t *testing.T) {
	if got := Box(V(0, 0, 0), V(10, 5, 5)).LongestAxis(); got != 0 {
		t.Errorf("LongestAxis x = %d", got)
	}
	if got := Box(V(0, 0, 0), V(5, 10, 5)).LongestAxis(); got != 1 {
		t.Errorf("LongestAxis y = %d", got)
	}
	if got := Box(V(0, 0, 0), V(5, 5, 10)).LongestAxis(); got != 2 {
		t.Errorf("LongestAxis z = %d", got)
	}
}

func TestInfEmptyIdentities(t *testing.T) {
	b := Box(V(-3, 2, 1), V(9, 4, 7))
	if got := Empty().Union(b); got != b {
		t.Errorf("Empty is not a Union identity: %v", got)
	}
	if got := Inf().Intersection(b); got != b {
		t.Errorf("Inf is not an Intersection identity: %v", got)
	}
	if !Inf().ContainsBox(b) {
		t.Error("Inf does not contain arbitrary boxes")
	}
}

func TestVolumeAndCenter(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 3, 4))
	if b.Volume() != 24 {
		t.Errorf("Volume = %v", b.Volume())
	}
	if b.Center() != V(1, 1.5, 2) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.HalfExtents() != V(1, 1.5, 2) {
		t.Errorf("HalfExtents = %v", b.HalfExtents())
	}
}
