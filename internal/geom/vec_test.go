package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := V(3, 4, 0).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := V(3, 4, 0).LenSq(); got != 25 {
		t.Errorf("LenSq = %v", got)
	}
}

func TestVecAxisAccess(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Axis(i); got != want {
			t.Errorf("Axis(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.SetAxis(1, 42); got != V(7, 42, 9) {
		t.Errorf("SetAxis = %v", got)
	}
	// SetAxis must not mutate the receiver (value semantics).
	if v != V(7, 8, 9) {
		t.Errorf("SetAxis mutated receiver: %v", v)
	}
}

func TestCrossProperties(t *testing.T) {
	f := func(a, b Vec3) bool {
		c := a.Cross(b)
		// Cross product is orthogonal to both operands.
		return math.Abs(c.Dot(a)) < 1e-4 && math.Abs(c.Dot(b)) < 1e-4
	}
	if err := quick.Check(f, quickVecCfg()); err != nil {
		t.Error(err)
	}
}

func TestDotCommutative(t *testing.T) {
	f := func(a, b Vec3) bool { return a.Dot(b) == b.Dot(a) }
	if err := quick.Check(f, quickVecCfg()); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b Vec3) bool { return a.Add(b).Sub(b).NearEq(a, 1e-6) }
	if err := quick.Check(f, quickVecCfg()); err != nil {
		t.Error(err)
	}
}

func TestNormLength(t *testing.T) {
	f := func(a Vec3) bool {
		n := a.Norm()
		if a.IsZero() {
			return n.IsZero()
		}
		return math.Abs(n.Len()-1) < 1e-9
	}
	if err := quick.Check(f, quickVecCfg()); err != nil {
		t.Error(err)
	}
	if !V(0, 0, 0).Norm().IsZero() {
		t.Error("Norm of zero vector should be zero")
	}
}

func TestLerpEndpoints(t *testing.T) {
	f := func(a, b Vec3) bool {
		return a.Lerp(b, 0).NearEq(a, eps) && a.Lerp(b, 1).NearEq(b, 1e-6)
	}
	if err := quick.Check(f, quickVecCfg()); err != nil {
		t.Error(err)
	}
}

func TestMA(t *testing.T) {
	got := V(1, 1, 1).MA(3, V(0, 2, 0))
	if got != V(1, 7, 1) {
		t.Errorf("MA = %v", got)
	}
}

func TestMinMaxAbs(t *testing.T) {
	a, b := V(1, -5, 3), V(-2, 4, 3)
	if got := a.Min(b); got != V(-2, -5, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(1, 4, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := V(-1, 2, -3).Abs(); got != V(1, 2, 3) {
		t.Errorf("Abs = %v", got)
	}
}

func TestClampLen(t *testing.T) {
	v := V(30, 40, 0) // length 50
	c := v.ClampLen(5)
	if math.Abs(c.Len()-5) > eps {
		t.Errorf("ClampLen length = %v", c.Len())
	}
	if !c.Norm().NearEq(v.Norm(), eps) {
		t.Error("ClampLen changed direction")
	}
	if got := V(1, 0, 0).ClampLen(5); got != V(1, 0, 0) {
		t.Errorf("ClampLen should not grow short vectors, got %v", got)
	}
	if got := (Vec3{}).ClampLen(5); !got.IsZero() {
		t.Errorf("ClampLen of zero = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestFlat(t *testing.T) {
	if got := V(1, 2, 3).Flat(); got != V(1, 2, 0) {
		t.Errorf("Flat = %v", got)
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(a, b Vec3) bool {
		return math.Abs(a.Dist(b)-b.Dist(a)) < eps &&
			math.Abs(a.DistSq(b)-a.Dist(b)*a.Dist(b)) < 1e-3
	}
	if err := quick.Check(f, quickVecCfg()); err != nil {
		t.Error(err)
	}
}
