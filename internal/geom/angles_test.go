package geom

import (
	"math"
	"testing"
)

func TestAngleVectorsCardinal(t *testing.T) {
	cases := []struct {
		angles  Vec3
		forward Vec3
	}{
		{V(0, 0, 0), V(1, 0, 0)},
		{V(0, 90, 0), V(0, 1, 0)},
		{V(0, 180, 0), V(-1, 0, 0)},
		{V(0, 270, 0), V(0, -1, 0)},
		{V(-90, 0, 0), V(0, 0, 1)}, // looking straight up
		{V(90, 0, 0), V(0, 0, -1)}, // looking straight down
	}
	for _, c := range cases {
		f, _, _ := AngleVectors(c.angles)
		if !f.NearEq(c.forward, 1e-9) {
			t.Errorf("AngleVectors(%v) forward = %v, want %v", c.angles, f, c.forward)
		}
	}
}

func TestAngleVectorsOrthonormal(t *testing.T) {
	for yaw := 0.0; yaw < 360; yaw += 15 {
		for pitch := -85.0; pitch <= 85; pitch += 17 {
			f, r, u := AngleVectors(V(pitch, yaw, 0))
			for name, v := range map[string]Vec3{"forward": f, "right": r, "up": u} {
				if math.Abs(v.Len()-1) > 1e-9 {
					t.Fatalf("%s not unit at pitch=%v yaw=%v: len=%v", name, pitch, yaw, v.Len())
				}
			}
			if math.Abs(f.Dot(r)) > 1e-9 || math.Abs(f.Dot(u)) > 1e-9 || math.Abs(r.Dot(u)) > 1e-9 {
				t.Fatalf("basis not orthogonal at pitch=%v yaw=%v", pitch, yaw)
			}
		}
	}
}

func TestVecToAnglesRoundTrip(t *testing.T) {
	for yaw := 0.0; yaw < 360; yaw += 30 {
		for pitch := -80.0; pitch <= 80; pitch += 20 {
			f := Forward(V(pitch, yaw, 0))
			a := VecToAngles(f)
			f2 := Forward(a)
			if !f.NearEq(f2, 1e-9) {
				t.Errorf("round trip failed: pitch=%v yaw=%v -> %v -> %v", pitch, yaw, a, f2)
			}
		}
	}
}

func TestVecToAnglesVertical(t *testing.T) {
	if got := VecToAngles(V(0, 0, 5)); got != V(-90, 0, 0) {
		t.Errorf("straight up = %v", got)
	}
	if got := VecToAngles(V(0, 0, -5)); got != V(90, 0, 0) {
		t.Errorf("straight down = %v", got)
	}
	if got := VecToAngles(Vec3{}); got != (Vec3{}) {
		t.Errorf("zero vector = %v", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := map[float64]float64{
		0: 0, 360: 0, 370: 10, -10: 350, 720: 0, -350: 10,
	}
	for in, want := range cases {
		if got := NormalizeAngle(in); math.Abs(got-want) > eps {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestAngleDelta(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 10, 10},
		{10, 0, -10},
		{350, 10, 20},
		{10, 350, -20},
		{0, 180, 180},
		{90, 270, 180},
	}
	for _, c := range cases {
		if got := AngleDelta(c.a, c.b); math.Abs(got-c.want) > eps {
			t.Errorf("AngleDelta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for d := -360.0; d <= 360; d += 7.5 {
		if got := Rad2Deg(Deg2Rad(d)); math.Abs(got-d) > 1e-9 {
			t.Errorf("deg->rad->deg %v = %v", d, got)
		}
	}
}
