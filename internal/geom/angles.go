package geom

import "math"

// Angles follow the Quake convention: a Vec3 holding degrees with
// X = pitch (negative looks up), Y = yaw (counter-clockwise around +Z,
// 0 along +X), Z = roll. The protocol transmits them as 16-bit fixed
// point; see package protocol.

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// AngleVectors derives the forward, right, and up unit vectors from view
// angles, mirroring the engine routine of the same name. The server uses
// the forward vector to orient move commands and weapon fire.
func AngleVectors(angles Vec3) (forward, right, up Vec3) {
	yaw := Deg2Rad(angles.Y)
	pitch := Deg2Rad(angles.X)
	roll := Deg2Rad(angles.Z)

	sy, cy := math.Sincos(yaw)
	sp, cp := math.Sincos(pitch)
	sr, cr := math.Sincos(roll)

	forward = Vec3{cp * cy, cp * sy, -sp}
	right = Vec3{
		-sr*sp*cy + cr*sy,
		-sr*sp*sy - cr*cy,
		-sr * cp,
	}
	right = right.Neg()
	up = Vec3{
		cr*sp*cy + sr*sy,
		cr*sp*sy - sr*cy,
		cr * cp,
	}
	return forward, right, up
}

// Forward returns just the forward vector for the given view angles.
func Forward(angles Vec3) Vec3 {
	f, _, _ := AngleVectors(angles)
	return f
}

// VecToAngles converts a direction vector to view angles (pitch and yaw;
// roll is always zero), the inverse of AngleVectors' forward output.
func VecToAngles(dir Vec3) Vec3 {
	if dir.X == 0 && dir.Y == 0 {
		if dir.Z > 0 {
			return Vec3{-90, 0, 0}
		}
		if dir.Z < 0 {
			return Vec3{90, 0, 0}
		}
		return Vec3{}
	}
	yaw := Rad2Deg(math.Atan2(dir.Y, dir.X))
	flat := math.Hypot(dir.X, dir.Y)
	pitch := -Rad2Deg(math.Atan2(dir.Z, flat))
	return Vec3{pitch, NormalizeAngle(yaw), 0}
}

// NormalizeAngle wraps a degree angle into [0, 360).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 360)
	if a < 0 {
		a += 360
	}
	return a
}

// AngleDelta returns the shortest signed difference b-a in degrees,
// in (-180, 180].
func AngleDelta(a, b float64) float64 {
	d := math.Mod(b-a, 360)
	if d > 180 {
		d -= 360
	}
	if d <= -180 {
		d += 360
	}
	return d
}
