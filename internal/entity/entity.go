// Package entity defines the dynamic game objects ("edicts" in engine
// terms) and the fixed-capacity table that owns them. Entities are plain
// data; behaviour lives in package game, and spatial indexing in package
// areanode via the embedded link handle.
package entity

import (
	"qserve/internal/areanode"
	"qserve/internal/geom"
	"qserve/internal/worldmap"
)

// ID indexes an entity in its Table. Valid IDs are >= 0; None marks the
// absence of an entity.
type ID int32

// None is the null entity ID.
const None ID = -1

// Class discriminates entity behaviour.
type Class uint8

// Entity classes. The set mirrors what the paper's move execution
// touches: players, pickups (short-range interactions), projectiles
// (long-range interactions completed during world physics), and
// teleporters (moves that relink entities far away).
const (
	ClassNone Class = iota
	ClassPlayer
	ClassItem
	ClassProjectile
	ClassTeleporter
	ClassCorpse
	ClassDoor
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassPlayer:
		return "player"
	case ClassItem:
		return "item"
	case ClassProjectile:
		return "projectile"
	case ClassTeleporter:
		return "teleporter"
	case ClassCorpse:
		return "corpse"
	case ClassDoor:
		return "door"
	default:
		return "invalid"
	}
}

// Standard hull sizes, in world units, relative to the entity origin.
// Player dimensions are the engine's: 32 wide, 56 tall, origin 24 above
// the feet.
var (
	PlayerMins = geom.V(-16, -16, -24) //qvet:allow=globalstate hull constant, immutable by convention
	PlayerMaxs = geom.V(16, 16, 32)    //qvet:allow=globalstate hull constant, immutable by convention

	ItemMins = geom.V(-12, -12, -16) //qvet:allow=globalstate hull constant, immutable by convention
	ItemMaxs = geom.V(12, 12, 16)    //qvet:allow=globalstate hull constant, immutable by convention

	ProjectileMins = geom.V(-4, -4, -4) //qvet:allow=globalstate hull constant, immutable by convention
	ProjectileMaxs = geom.V(4, 4, 4)    //qvet:allow=globalstate hull constant, immutable by convention
)

// Entity is one dynamic game object. All fields are owned by whichever
// server thread holds the region lock covering the entity, per the
// paper's synchronization protocol; the entity itself carries no locks.
type Entity struct {
	ID     ID
	Class  Class
	Active bool

	// Kinematics.
	Origin   geom.Vec3
	Velocity geom.Vec3
	Angles   geom.Vec3 // pitch/yaw/roll, degrees
	Mins     geom.Vec3 // hull min corner relative to Origin
	Maxs     geom.Vec3 // hull max corner relative to Origin
	OnGround bool

	// Vitals (players and corpses).
	Health int
	Armor  int
	Frags  int
	Deaths int

	// Inventory (players).
	Weapon     uint8 // current weapon index
	Weapons    uint16
	Ammo       int
	HasPowerup bool
	// PowerupUntil is the server time the powerup wears off.
	PowerupUntil float64

	// Item fields.
	ItemClass worldmap.ItemClass
	ItemSpawn int     // index into the map's item spawn list, -1 otherwise
	RespawnAt float64 // server time when a taken item reappears

	// Projectile fields.
	Owner  ID      // shooter
	Damage int     // on impact
	DieAt  float64 // flight time limit

	// Player/corpse respawn bookkeeping.
	RespawnTime float64

	// RefireAt is the earliest server time the player may fire again.
	RefireAt float64

	// NextThink schedules world-physics-phase processing; zero = never.
	NextThink float64

	// RoomID caches the map room containing Origin; -1 when unknown.
	// Reply processing uses it for visibility filtering.
	RoomID int

	// SnapEligible marks entities that belong in client snapshots:
	// active, not a teleporter trigger, and (for items) currently linked.
	// Table.Alloc/Free and the game link/unlink paths maintain it, so
	// eligibility is decided once per state change instead of once per
	// client per frame. The visibility index is built from this flag.
	SnapEligible bool

	// ModelFrame is an opaque animation counter carried to clients.
	ModelFrame uint8

	// Link is the areanode handle. game relinks it on every move.
	Link areanode.Item
}

// AbsBox returns the entity's absolute bounding box.
func (e *Entity) AbsBox() geom.AABB {
	return geom.BoxHull(e.Origin, e.Mins, e.Maxs)
}

// HalfExtents returns the hull half extents for swept-box traces.
func (e *Entity) HalfExtents() geom.Vec3 {
	return e.Maxs.Sub(e.Mins).Scale(0.5)
}

// HullCenter returns the center of the hull in absolute coordinates;
// traces operate on centers while game logic works with origins.
func (e *Entity) HullCenter() geom.Vec3 {
	return e.Origin.Add(e.Mins.Add(e.Maxs).Scale(0.5))
}

// CenterOffset is HullCenter minus Origin; constant per hull.
func (e *Entity) CenterOffset() geom.Vec3 {
	return e.Mins.Add(e.Maxs).Scale(0.5)
}

// Alive reports whether a player entity is alive.
func (e *Entity) Alive() bool {
	return e.Active && e.Class == ClassPlayer && e.Health > 0
}

// IsSolidToMovement reports whether other entities collide with e.
// Items, teleporter triggers, and projectiles are touch volumes only.
func (e *Entity) IsSolidToMovement() bool {
	switch e.Class {
	case ClassPlayer:
		return e.Health > 0
	case ClassDoor:
		return true
	default:
		return false
	}
}
