package entity

import (
	"math/rand"
	"testing"

	"qserve/internal/areanode"
	"qserve/internal/geom"
)

func TestAllocBasics(t *testing.T) {
	tb := NewTable(8)
	if tb.Capacity() != 8 || tb.Active() != 0 {
		t.Fatalf("fresh table: cap=%d active=%d", tb.Capacity(), tb.Active())
	}
	e := tb.Alloc(ClassPlayer)
	if e == nil || !e.Active || e.Class != ClassPlayer {
		t.Fatalf("alloc = %+v", e)
	}
	if e.ID != 0 || e.ItemSpawn != -1 || e.RoomID != -1 || e.Owner != None {
		t.Errorf("alloc defaults wrong: %+v", e)
	}
	if tb.Active() != 1 || tb.HighWater() != 1 {
		t.Errorf("active=%d highwater=%d", tb.Active(), tb.HighWater())
	}
}

func TestAllocExhaustion(t *testing.T) {
	tb := NewTable(3)
	for i := 0; i < 3; i++ {
		if tb.Alloc(ClassItem) == nil {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if tb.Alloc(ClassItem) != nil {
		t.Error("alloc beyond capacity succeeded")
	}
	tb.Free(1)
	e := tb.Alloc(ClassProjectile)
	if e == nil || e.ID != 1 {
		t.Errorf("freed slot not reused: %+v", e)
	}
}

func TestFreeResetsAndIgnoresDouble(t *testing.T) {
	tb := NewTable(4)
	e := tb.Alloc(ClassPlayer)
	e.Health = 100
	id := e.ID
	tb.Free(id)
	if e.Active || e.Class != ClassNone {
		t.Errorf("free did not deactivate: %+v", e)
	}
	if tb.Active() != 0 {
		t.Errorf("active = %d", tb.Active())
	}
	tb.Free(id)     // double free: no-op
	tb.Free(ID(99)) // out of range: no-op
	tb.Free(None)   // null: no-op
	if tb.Active() != 0 || len(tb.free) != 1 {
		t.Errorf("double free corrupted free list: active=%d free=%d", tb.Active(), len(tb.free))
	}
}

func TestFreeLinkedPanics(t *testing.T) {
	tb := NewTable(4)
	e := tb.Alloc(ClassItem)
	e.Origin = geom.V(50, 50, 50)
	e.Mins, e.Maxs = ItemMins, ItemMaxs
	tr := areanode.NewTree(geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 100)), 1)
	tr.Link(&e.Link, e.AbsBox())
	defer func() {
		if recover() == nil {
			t.Error("freeing a linked entity did not panic")
		}
	}()
	tb.Free(e.ID)
}

func TestGetOutOfRange(t *testing.T) {
	tb := NewTable(2)
	if tb.Get(-1) != nil || tb.Get(2) != nil || tb.Get(None) != nil {
		t.Error("out-of-range Get returned non-nil")
	}
}

func TestForEachAndClassQueries(t *testing.T) {
	tb := NewTable(16)
	for i := 0; i < 4; i++ {
		tb.Alloc(ClassPlayer)
	}
	for i := 0; i < 3; i++ {
		tb.Alloc(ClassItem)
	}
	p := tb.Alloc(ClassProjectile)
	tb.Free(p.ID)

	var order []ID
	tb.ForEach(func(e *Entity) { order = append(order, e.ID) })
	if len(order) != 7 {
		t.Fatalf("ForEach visited %d, want 7", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatal("ForEach not in ID order")
		}
	}
	if got := tb.CountClass(ClassPlayer); got != 4 {
		t.Errorf("CountClass(player) = %d", got)
	}
	if got := tb.CountClass(ClassProjectile); got != 0 {
		t.Errorf("CountClass(projectile) = %d", got)
	}
	n := 0
	tb.ForEachClass(ClassItem, func(e *Entity) {
		if e.Class != ClassItem {
			t.Errorf("wrong class in ForEachClass: %v", e.Class)
		}
		n++
	})
	if n != 3 {
		t.Errorf("ForEachClass visited %d", n)
	}
}

func TestChurnKeepsInvariants(t *testing.T) {
	tb := NewTable(64)
	r := rand.New(rand.NewSource(3))
	live := map[ID]bool{}
	for op := 0; op < 10000; op++ {
		if r.Intn(2) == 0 {
			if e := tb.Alloc(Class(1 + r.Intn(4))); e != nil {
				if live[e.ID] {
					t.Fatalf("alloc returned live ID %d", e.ID)
				}
				live[e.ID] = true
			}
		} else if len(live) > 0 {
			for id := range live {
				tb.Free(id)
				delete(live, id)
				break
			}
		}
		if tb.Active() != len(live) {
			t.Fatalf("active=%d tracked=%d", tb.Active(), len(live))
		}
	}
}

func TestEntityGeometryHelpers(t *testing.T) {
	e := Entity{
		Origin: geom.V(100, 200, 50),
		Mins:   PlayerMins,
		Maxs:   PlayerMaxs,
	}
	box := e.AbsBox()
	if box.Min != geom.V(84, 184, 26) || box.Max != geom.V(116, 216, 82) {
		t.Errorf("AbsBox = %v", box)
	}
	if he := e.HalfExtents(); he != geom.V(16, 16, 28) {
		t.Errorf("HalfExtents = %v", he)
	}
	if off := e.CenterOffset(); off != geom.V(0, 0, 4) {
		t.Errorf("CenterOffset = %v", off)
	}
	if c := e.HullCenter(); c != geom.V(100, 200, 54) {
		t.Errorf("HullCenter = %v", c)
	}
}

func TestAliveAndSolid(t *testing.T) {
	e := Entity{Active: true, Class: ClassPlayer, Health: 100}
	if !e.Alive() || !e.IsSolidToMovement() {
		t.Error("healthy player should be alive and solid")
	}
	e.Health = 0
	if e.Alive() || e.IsSolidToMovement() {
		t.Error("dead player should be neither alive nor solid")
	}
	item := Entity{Active: true, Class: ClassItem, Health: 1}
	if item.Alive() || item.IsSolidToMovement() {
		t.Error("items are not alive and not solid")
	}
}

func TestClassString(t *testing.T) {
	for c := ClassNone; c <= ClassCorpse; c++ {
		if c.String() == "" || c.String() == "invalid" {
			t.Errorf("class %d stringer broken: %q", c, c.String())
		}
	}
	if Class(99).String() != "invalid" {
		t.Error("unknown class stringer")
	}
}

func TestNewTablePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(0) did not panic")
		}
	}()
	NewTable(0)
}
