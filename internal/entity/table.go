package entity

import "fmt"

// Table is a fixed-capacity entity arena with free-list reuse, mirroring
// the engine's edict array. Pointers returned by Get and Alloc remain
// valid for the table's lifetime (the backing array never reallocates).
//
// The table itself is not synchronized: allocation and freeing happen in
// phases where the executing thread has exclusive access (world physics
// runs on the master thread; spawning during request processing happens
// under the region locks covering the affected area, with ID allocation
// serialized by the caller).
type Table struct {
	ents   []Entity
	free   []ID
	active int
	// highWater is one past the largest ID ever allocated, bounding scans.
	highWater int
}

// NewTable creates a table with the given capacity.
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		panic(fmt.Sprintf("entity: capacity %d must be positive", capacity))
	}
	return &Table{ents: make([]Entity, capacity)}
}

// Capacity returns the table's fixed capacity.
func (t *Table) Capacity() int { return len(t.ents) }

// Active returns the number of live entities.
func (t *Table) Active() int { return t.active }

// HighWater returns one past the largest ID ever allocated.
func (t *Table) HighWater() int { return t.highWater }

// Alloc returns a fresh entity of the given class, reusing freed slots
// first. It returns nil when the table is full.
func (t *Table) Alloc(class Class) *Entity {
	var id ID
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		if t.highWater >= len(t.ents) {
			return nil
		}
		id = ID(t.highWater)
		t.highWater++
	}
	e := &t.ents[id]
	*e = Entity{
		ID:        id,
		Class:     class,
		Active:    true,
		ItemSpawn: -1,
		RoomID:    -1,
		Owner:     None,
	}
	t.active++
	return e
}

// Free returns an entity slot to the free list. The caller must have
// unlinked it from the areanode tree first; Free panics on a still-linked
// entity because a dangling spatial link is unrecoverable corruption.
func (t *Table) Free(id ID) {
	e := t.Get(id)
	if e == nil || !e.Active {
		return
	}
	if e.Link.Linked() {
		panic(fmt.Sprintf("entity: freeing linked entity %d (%v)", id, e.Class))
	}
	e.Active = false
	e.Class = ClassNone
	t.free = append(t.free, id)
	t.active--
}

// Get returns the entity with the given ID, or nil for out-of-range IDs.
// The result may be inactive; callers check Active when it matters.
func (t *Table) Get(id ID) *Entity {
	if id < 0 || int(id) >= len(t.ents) {
		return nil
	}
	return &t.ents[id]
}

// ForEach calls fn for every active entity in ID order.
func (t *Table) ForEach(fn func(*Entity)) {
	for i := 0; i < t.highWater; i++ {
		if e := &t.ents[i]; e.Active {
			fn(e)
		}
	}
}

// ForEachClass calls fn for every active entity of the given class.
func (t *Table) ForEachClass(class Class, fn func(*Entity)) {
	for i := 0; i < t.highWater; i++ {
		if e := &t.ents[i]; e.Active && e.Class == class {
			fn(e)
		}
	}
}

// CountClass returns the number of active entities of the given class.
func (t *Table) CountClass(class Class) int {
	n := 0
	for i := 0; i < t.highWater; i++ {
		if e := &t.ents[i]; e.Active && e.Class == class {
			n++
		}
	}
	return n
}
