package entity

import (
	"fmt"
	"sort"
)

// Table is a fixed-capacity entity arena with free-list reuse, mirroring
// the engine's edict array. Pointers returned by Get and Alloc remain
// valid for the table's lifetime (the backing array never reallocates).
//
// The table itself is not synchronized: allocation and freeing happen in
// phases where the executing thread has exclusive access (world physics
// runs on the master thread; spawning during request processing happens
// under the region locks covering the affected area, with ID allocation
// serialized by the caller). The active-ID index below is maintained
// under the same discipline, so readers ordered after an Alloc/Free by
// the frame barriers always see a consistent list.
type Table struct {
	ents []Entity
	free []ID
	// actIDs is the live entity IDs in ascending order — the iteration
	// index ForEach/Range/ActiveIDs walk, so sparse tables never pay for
	// free-list holes up to the high-water mark. Preallocated to capacity
	// so maintenance never allocates.
	actIDs []ID
	active int
	// highWater is one past the largest ID ever allocated, bounding scans.
	highWater int
}

// NewTable creates a table with the given capacity.
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		panic(fmt.Sprintf("entity: capacity %d must be positive", capacity))
	}
	return &Table{
		ents:   make([]Entity, capacity),
		actIDs: make([]ID, 0, capacity),
	}
}

// Capacity returns the table's fixed capacity.
func (t *Table) Capacity() int { return len(t.ents) }

// Active returns the number of live entities.
func (t *Table) Active() int { return t.active }

// HighWater returns one past the largest ID ever allocated.
func (t *Table) HighWater() int { return t.highWater }

// Alloc returns a fresh entity of the given class, reusing freed slots
// first. It returns nil when the table is full.
func (t *Table) Alloc(class Class) *Entity {
	var id ID
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		if t.highWater >= len(t.ents) {
			return nil
		}
		id = ID(t.highWater)
		t.highWater++
	}
	e := &t.ents[id]
	*e = Entity{
		ID:        id,
		Class:     class,
		Active:    true,
		ItemSpawn: -1,
		RoomID:    -1,
		Owner:     None,
		// Snapshot eligibility is a property of the class and link state,
		// maintained here and at link/unlink time instead of being
		// re-derived per client per frame: teleporters are static map
		// triggers and never appear in snapshots; items become eligible
		// when linked (an unlinked item is taken, awaiting respawn).
		SnapEligible: class != ClassTeleporter && class != ClassItem,
	}
	t.insertActive(id)
	t.active++
	return e
}

// Free returns an entity slot to the free list. The caller must have
// unlinked it from the areanode tree first; Free panics on a still-linked
// entity because a dangling spatial link is unrecoverable corruption.
func (t *Table) Free(id ID) {
	e := t.Get(id)
	if e == nil || !e.Active {
		return
	}
	if e.Link.Linked() {
		panic(fmt.Sprintf("entity: freeing linked entity %d (%v)", id, e.Class))
	}
	e.Active = false
	e.Class = ClassNone
	e.SnapEligible = false
	t.free = append(t.free, id)
	t.removeActive(id)
	t.active--
}

// insertActive adds id to the sorted active index. Fresh high-water IDs
// append in O(1); free-list reuse inserts by binary search.
func (t *Table) insertActive(id ID) {
	ids := t.actIDs
	if n := len(ids); n == 0 || ids[n-1] < id {
		t.actIDs = append(ids, id)
		return
	}
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= id })
	t.actIDs = append(ids, 0)
	copy(t.actIDs[i+1:], t.actIDs[i:])
	t.actIDs[i] = id
}

// removeActive deletes id from the sorted active index.
func (t *Table) removeActive(id ID) {
	ids := t.actIDs
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= id })
	if i >= len(ids) || ids[i] != id {
		return
	}
	copy(ids[i:], ids[i+1:])
	t.actIDs = ids[:len(ids)-1]
}

// FreeList returns the free-list slots in stack order (the next Alloc
// pops the last element). The slice is the table's internal state:
// callers must not modify it, and it is valid only until the next Alloc
// or Free. Checkpointing serializes it so a restored table hands out
// recycled IDs in exactly the order the original would have.
func (t *Table) FreeList() []ID { return t.free }

// Reset clears every slot, the free list, and the high-water mark,
// returning the table to its just-constructed state. Restore-only: the
// caller must have unlinked every entity first (a linked entity here is
// the same unrecoverable corruption Free panics on).
func (t *Table) Reset() {
	for i := 0; i < t.highWater; i++ {
		if t.ents[i].Link.Linked() {
			panic(fmt.Sprintf("entity: resetting table with linked entity %d (%v)", i, t.ents[i].Class))
		}
		t.ents[i] = Entity{ID: ID(i)}
	}
	t.free = t.free[:0]
	t.actIDs = t.actIDs[:0]
	t.active = 0
	t.highWater = 0
}

// Materialize activates the exact slot id — the restore-path counterpart
// of Alloc, which picks the slot itself. The slot's fields are zeroed
// (the caller fills them from a checkpoint record); the high-water mark
// grows to cover id. It returns nil when id is out of range or the slot
// is already active.
func (t *Table) Materialize(id ID) *Entity {
	if id < 0 || int(id) >= len(t.ents) {
		return nil
	}
	e := &t.ents[id]
	if e.Active {
		return nil
	}
	*e = Entity{ID: id, Active: true}
	if int(id) >= t.highWater {
		t.highWater = int(id) + 1
	}
	t.insertActive(id)
	t.active++
	return e
}

// SetFreeState installs a checkpointed free list (in stack order) and
// high-water mark after the active entities have been materialized. It
// validates that the two exactly tile the sub-high-water slots: every
// inactive slot below highWater appears in free once, no active slot
// does, and nothing points past highWater. Any violation leaves the
// table untouched and returns an error — a corrupt checkpoint must not
// half-apply.
func (t *Table) SetFreeState(free []ID, highWater int) error {
	if highWater < t.highWater {
		return fmt.Errorf("entity: free-state high water %d below materialized high water %d", highWater, t.highWater)
	}
	if highWater > len(t.ents) {
		return fmt.Errorf("entity: free-state high water %d exceeds capacity %d", highWater, len(t.ents))
	}
	if t.active+len(free) != highWater {
		return fmt.Errorf("entity: %d active + %d free does not tile %d slots", t.active, len(free), highWater)
	}
	seen := make(map[ID]bool, len(free))
	for _, id := range free {
		if id < 0 || int(id) >= highWater {
			return fmt.Errorf("entity: free slot %d outside high water %d", id, highWater)
		}
		if t.ents[id].Active {
			return fmt.Errorf("entity: free slot %d is active", id)
		}
		if seen[id] {
			return fmt.Errorf("entity: free slot %d listed twice", id)
		}
		seen[id] = true
	}
	t.free = append(t.free[:0], free...)
	t.highWater = highWater
	return nil
}

// Get returns the entity with the given ID, or nil for out-of-range IDs.
// The result may be inactive; callers check Active when it matters.
func (t *Table) Get(id ID) *Entity {
	if id < 0 || int(id) >= len(t.ents) {
		return nil
	}
	return &t.ents[id]
}

// ActiveIDs returns the live entity IDs in ascending order. The slice is
// the table's internal index: callers must not modify it, and it is valid
// only until the next Alloc or Free — a loop that may allocate or free
// mid-walk (world physics) copies it into a scratch slice first.
func (t *Table) ActiveIDs() []ID { return t.actIDs }

// Range calls fn for every active entity in ID order until fn returns
// false. fn must not allocate or free entities; use a copy of ActiveIDs
// for mutating walks.
func (t *Table) Range(fn func(*Entity) bool) {
	for _, id := range t.actIDs {
		if !fn(&t.ents[id]) {
			return
		}
	}
}

// ForEach calls fn for every active entity in ID order. fn must not
// allocate or free entities.
func (t *Table) ForEach(fn func(*Entity)) {
	for _, id := range t.actIDs {
		fn(&t.ents[id])
	}
}

// ForEachClass calls fn for every active entity of the given class, in ID
// order. fn must not allocate or free entities.
func (t *Table) ForEachClass(class Class, fn func(*Entity)) {
	for _, id := range t.actIDs {
		if e := &t.ents[id]; e.Class == class {
			fn(e)
		}
	}
}

// CountClass returns the number of active entities of the given class.
func (t *Table) CountClass(class Class) int {
	n := 0
	for _, id := range t.actIDs {
		if t.ents[id].Class == class {
			n++
		}
	}
	return n
}
