package areanode_test

import (
	"fmt"

	"qserve/internal/areanode"
	"qserve/internal/geom"
)

// Example demonstrates the tree's role in move execution: link objects,
// then collect everything a move's bounding box may interact with.
func Example() {
	world := geom.Box(geom.V(0, 0, 0), geom.V(1024, 1024, 256))
	tree := areanode.NewTree(world, areanode.DefaultDepth)
	fmt.Printf("%d areanodes, %d leaves\n", tree.NumNodes(), tree.NumLeaves())

	// Link two objects: one inside a leaf, one crossing the root plane.
	var inLeaf, crossing areanode.Item
	inLeaf.ID = 1
	tree.Link(&inLeaf, geom.BoxAt(geom.V(100, 100, 50), geom.V(16, 16, 28)))
	crossing.ID = 2
	tree.Link(&crossing, geom.BoxAt(geom.V(512, 300, 50), geom.V(16, 16, 28)))

	fmt.Printf("object 1 at node %d (leaf: %v)\n",
		inLeaf.NodeIndex(), tree.Node(inLeaf.NodeIndex()).IsLeaf())
	fmt.Printf("object 2 at node %d (leaf: %v)\n",
		crossing.NodeIndex(), tree.Node(crossing.NodeIndex()).IsLeaf())

	// A move near object 1 collects it (and only it).
	moveBox := geom.BoxAt(geom.V(120, 110, 50), geom.V(60, 60, 60))
	tree.CollectBox(moveBox, nil, func(it *areanode.Item) bool {
		fmt.Printf("move may interact with object %d\n", it.ID)
		return true
	}, nil)

	// The leaves to lock for that move, in deadlock-free order.
	leaves := tree.LeavesTouching(moveBox, nil)
	fmt.Printf("leaves to lock: %d\n", len(leaves))

	// Output:
	// 31 areanodes, 16 leaves
	// object 1 at node 30 (leaf: true)
	// object 2 at node 0 (leaf: false)
	// move may interact with object 1
	// leaves to lock: 1
	_ = leaves
}
