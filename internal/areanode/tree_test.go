package areanode

import (
	"math/rand"
	"sort"
	"testing"

	"qserve/internal/geom"
)

func worldBounds() geom.AABB {
	return geom.Box(geom.V(-16, -16, -16), geom.V(1616, 1616, 208))
}

func TestTreeShape(t *testing.T) {
	for depth := 0; depth <= 6; depth++ {
		tr := NewTree(worldBounds(), depth)
		wantNodes := 1<<(depth+1) - 1
		wantLeaves := 1 << depth
		if tr.NumNodes() != wantNodes {
			t.Errorf("depth %d: nodes = %d, want %d", depth, tr.NumNodes(), wantNodes)
		}
		if tr.NumLeaves() != wantLeaves {
			t.Errorf("depth %d: leaves = %d, want %d", depth, tr.NumLeaves(), wantLeaves)
		}
		if tr.Depth() != depth {
			t.Errorf("Depth() = %d", tr.Depth())
		}
	}
	// The paper's default: depth 4 → 31 areanodes, 16 leaves.
	tr := NewTree(worldBounds(), DefaultDepth)
	if tr.NumNodes() != 31 || tr.NumLeaves() != 16 {
		t.Errorf("default tree: %d nodes / %d leaves, want 31/16", tr.NumNodes(), tr.NumLeaves())
	}
}

func TestTreeSplitsAlternateAxesEqualHalves(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	var walk func(ni int32, wantAxis int)
	walk = func(ni int32, wantAxis int) {
		n := tr.Node(ni)
		if n.IsLeaf() {
			return
		}
		if n.Plane.Axis != wantAxis {
			t.Fatalf("node %d splits axis %d, want %d", ni, n.Plane.Axis, wantAxis)
		}
		if n.Plane.Axis == 2 {
			t.Fatalf("node %d splits on z", ni)
		}
		mid := n.Bounds.Center().Axis(n.Plane.Axis)
		if n.Plane.Dist != mid {
			t.Fatalf("node %d split at %v, want midpoint %v", ni, n.Plane.Dist, mid)
		}
		f, b := tr.Node(n.Children[0]), tr.Node(n.Children[1])
		if f.Bounds.Volume() != b.Bounds.Volume() {
			t.Fatalf("node %d children have unequal volumes", ni)
		}
		// Children keep the full world height.
		if f.Bounds.Min.Z != n.Bounds.Min.Z || f.Bounds.Max.Z != n.Bounds.Max.Z {
			t.Fatalf("node %d child z-range shrunk", ni)
		}
		walk(n.Children[0], 1-wantAxis)
		walk(n.Children[1], 1-wantAxis)
	}
	walk(0, 0)
}

func TestLeavesPartitionWorld(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	var total float64
	for i := 0; i < tr.NumLeaves(); i++ {
		n := tr.Node(tr.LeafNode(int32(i)))
		if !n.IsLeaf() || n.LeafOrdinal != int32(i) {
			t.Fatalf("leaf bookkeeping broken at ordinal %d", i)
		}
		total += n.Bounds.Volume()
	}
	if w := worldBounds().Volume(); total != w {
		t.Errorf("leaf volumes sum to %v, want %v", total, w)
	}
}

func randomItemBox(r *rand.Rand, world geom.AABB) geom.AABB {
	span := world.Size()
	c := geom.V(
		world.Min.X+r.Float64()*span.X,
		world.Min.Y+r.Float64()*span.Y,
		world.Min.Z+r.Float64()*span.Z,
	)
	he := geom.V(1+r.Float64()*40, 1+r.Float64()*40, 1+r.Float64()*40)
	return geom.BoxAt(c, he)
}

// TestLinkPlacementInvariant: an item links at the deepest node reachable
// by whole-side descents — equivalently, its box is contained in that
// node's half-space chain and (if interior) crosses that node's plane.
func TestLinkPlacementInvariant(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		it := &Item{ID: int32(i)}
		box := randomItemBox(r, worldBounds())
		tr.Link(it, box)
		ni := it.NodeIndex()
		if ni < 0 {
			t.Fatal("item not linked")
		}
		n := tr.Node(ni)
		if !n.IsLeaf() && n.Plane.SideBox(box) != geom.SideCross {
			t.Fatalf("item %d linked at interior node %d but does not cross its plane", i, ni)
		}
		// Every ancestor's plane must have the box wholly on the side
		// leading to this node.
		child := ni
		for p := n.Parent; p >= 0; p = tr.Node(p).Parent {
			pn := tr.Node(p)
			side := pn.Plane.SideBox(box)
			if side == geom.SideCross {
				t.Fatalf("item %d: ancestor %d crossed but item linked deeper at %d", i, p, ni)
			}
			wantChild := pn.Children[0]
			if side == geom.SideBack {
				wantChild = pn.Children[1]
			}
			if wantChild != child {
				t.Fatalf("item %d: descent inconsistent at ancestor %d", i, p)
			}
			child = p
		}
		tr.Unlink(it)
	}
	if tr.TotalLinked() != 0 {
		t.Errorf("TotalLinked = %d after unlinking everything", tr.TotalLinked())
	}
}

func TestLinkUnlinkListIntegrity(t *testing.T) {
	tr := NewTree(worldBounds(), 3)
	r := rand.New(rand.NewSource(4))
	items := make([]*Item, 300)
	for i := range items {
		items[i] = &Item{ID: int32(i)}
		tr.Link(items[i], randomItemBox(r, worldBounds()))
	}
	if tr.TotalLinked() != len(items) {
		t.Fatalf("TotalLinked = %d, want %d", tr.TotalLinked(), len(items))
	}
	// Random churn: relink and unlink repeatedly.
	for op := 0; op < 5000; op++ {
		it := items[r.Intn(len(items))]
		switch r.Intn(3) {
		case 0:
			tr.Link(it, randomItemBox(r, worldBounds()))
		case 1:
			tr.Unlink(it)
		case 2:
			tr.Unlink(it)
			tr.Unlink(it) // double unlink must be a no-op
		}
	}
	// Count by walking all lists and compare with TotalLinked.
	seen := make(map[int32]int)
	for ni := int32(0); ni < int32(tr.NumNodes()); ni++ {
		n := tr.Node(ni)
		count := 0
		tr.CollectBox(n.Bounds, nil, func(it *Item) bool { count++; return true }, nil)
		_ = count
		s := &n.sentinel
		for it := s.next; it != s; it = it.next {
			seen[it.ID]++
			if it.NodeIndex() != ni {
				t.Fatalf("item %d in list of node %d but records node %d", it.ID, ni, it.NodeIndex())
			}
		}
	}
	linked := 0
	for _, it := range items {
		if it.Linked() {
			linked++
			if seen[it.ID] != 1 {
				t.Fatalf("linked item %d appears %d times in lists", it.ID, seen[it.ID])
			}
		} else if seen[it.ID] != 0 {
			t.Fatalf("unlinked item %d still in a list", it.ID)
		}
	}
	if linked != tr.TotalLinked() {
		t.Fatalf("TotalLinked=%d, walked=%d", tr.TotalLinked(), linked)
	}
}

// TestCollectBoxMatchesBruteForce: CollectBox must return exactly the
// linked items whose boxes intersect the query (it is precise for our
// axis-plane descent, and at minimum a superset per the paper).
func TestCollectBoxMatchesBruteForce(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	r := rand.New(rand.NewSource(6))
	var items []*Item
	for i := 0; i < 400; i++ {
		it := &Item{ID: int32(i)}
		tr.Link(it, randomItemBox(r, worldBounds()))
		items = append(items, it)
	}
	for q := 0; q < 500; q++ {
		query := randomItemBox(r, worldBounds())
		want := map[int32]bool{}
		for _, it := range items {
			if it.Box.Intersects(query) {
				want[it.ID] = true
			}
		}
		got := map[int32]bool{}
		var st TraversalStats
		tr.CollectBox(query, nil, func(it *Item) bool {
			if got[it.ID] {
				t.Fatalf("item %d visited twice", it.ID)
			}
			got[it.ID] = true
			return true
		}, &st)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d items, want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d: missing item %d", q, id)
			}
		}
		if st.ItemsMatched != len(got) || st.NodesVisited == 0 {
			t.Fatalf("stats inconsistent: %+v", st)
		}
	}
}

func TestCollectBoxEarlyStop(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	for i := 0; i < 50; i++ {
		it := &Item{ID: int32(i)}
		tr.Link(it, geom.BoxAt(geom.V(800, 800, 100), geom.V(5, 5, 5)))
	}
	visits := 0
	tr.CollectBox(worldBounds(), nil, func(it *Item) bool {
		visits++
		return visits < 10
	}, nil)
	if visits != 10 {
		t.Errorf("early stop visited %d items", visits)
	}
}

func TestCollectBoxGuard(t *testing.T) {
	tr := NewTree(worldBounds(), 2)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		it := &Item{ID: int32(i)}
		tr.Link(it, randomItemBox(r, worldBounds()))
	}
	guardedNodes := map[int32]int{}
	leafFlags := map[int32]bool{}
	guard := func(node int32, isLeaf bool, scan func()) {
		guardedNodes[node]++
		leafFlags[node] = isLeaf
		scan()
	}
	count := 0
	tr.CollectBox(worldBounds(), guard, func(*Item) bool { count++; return true }, nil)
	if count != 100 {
		t.Errorf("guarded collect returned %d of 100", count)
	}
	// A world-sized query visits every node exactly once.
	if len(guardedNodes) != tr.NumNodes() {
		t.Errorf("guard called on %d nodes, want %d", len(guardedNodes), tr.NumNodes())
	}
	for ni, isLeaf := range leafFlags {
		if tr.Node(ni).IsLeaf() != isLeaf {
			t.Errorf("node %d leaf flag mismatch", ni)
		}
	}
}

func TestLeavesTouching(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	// World box touches all leaves.
	all := tr.LeavesTouching(worldBounds(), nil)
	if len(all) != tr.NumLeaves() {
		t.Fatalf("world query touches %d leaves, want %d", len(all), tr.NumLeaves())
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("leaf set not in ascending node order")
	}

	// A point-sized box in a leaf interior touches exactly one leaf.
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 1000; i++ {
		box := randomItemBox(r, worldBounds())
		leaves := tr.LeavesTouching(box, nil)
		if len(leaves) == 0 {
			t.Fatal("box touches no leaves")
		}
		if !sort.SliceIsSorted(leaves, func(a, b int) bool { return leaves[a] < leaves[b] }) {
			t.Fatal("leaf lock order not ascending")
		}
		// Every returned leaf must intersect the box, and every leaf
		// intersecting the box must be returned.
		got := map[int32]bool{}
		for _, ni := range leaves {
			got[ni] = true
			if !tr.Node(ni).Bounds.Intersects(box) {
				t.Fatalf("leaf %d returned but does not intersect", ni)
			}
		}
		for li := 0; li < tr.NumLeaves(); li++ {
			ni := tr.LeafNode(int32(li))
			if tr.Node(ni).Bounds.IntersectsStrict(box) && !got[ni] {
				t.Fatalf("leaf %d intersects but missing", ni)
			}
		}
	}
}

func TestLeafContaining(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	r := rand.New(rand.NewSource(12))
	w := worldBounds()
	for i := 0; i < 2000; i++ {
		p := geom.V(
			w.Min.X+r.Float64()*(w.Max.X-w.Min.X),
			w.Min.Y+r.Float64()*(w.Max.Y-w.Min.Y),
			w.Min.Z+r.Float64()*(w.Max.Z-w.Min.Z),
		)
		ni := tr.LeafContaining(p)
		n := tr.Node(ni)
		if !n.IsLeaf() {
			t.Fatal("LeafContaining returned interior node")
		}
		if !n.Bounds.Contains(p) {
			t.Fatalf("point %v not in returned leaf %v", p, n.Bounds)
		}
	}
}

func TestRootCrossersStayAtRoot(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	root := tr.Node(0)
	// A box straddling the root plane links at the root.
	mid := root.Plane.Dist
	box := geom.Box(
		geom.V(mid-10, 100, 0),
		geom.V(mid+10, 150, 50),
	)
	it := &Item{ID: 1}
	tr.Link(it, box)
	if it.NodeIndex() != 0 {
		t.Errorf("root-crossing item linked at node %d", it.NodeIndex())
	}
	if root.Count() != 1 {
		t.Errorf("root count = %d", root.Count())
	}
}

func TestDepthForNodeBudget(t *testing.T) {
	cases := map[int]int{
		3: 1, 7: 2, 15: 3, 31: 4, 63: 5,
		4: 1, 30: 3, 62: 4, 127: 6, 1: 0, 2: 0,
	}
	for budget, want := range cases {
		if got := DepthForNodeBudget(budget); got != want {
			t.Errorf("DepthForNodeBudget(%d) = %d, want %d", budget, got, want)
		}
	}
}

func TestRelinkMovesItem(t *testing.T) {
	tr := NewTree(worldBounds(), 4)
	it := &Item{ID: 7}
	boxA := geom.BoxAt(geom.V(100, 100, 50), geom.V(10, 10, 10))
	boxB := geom.BoxAt(geom.V(1500, 1500, 50), geom.V(10, 10, 10))
	tr.Link(it, boxA)
	nodeA := it.NodeIndex()
	tr.Link(it, boxB) // relink without explicit unlink
	nodeB := it.NodeIndex()
	if nodeA == nodeB {
		t.Error("relink across the world kept the same node")
	}
	if tr.TotalLinked() != 1 {
		t.Errorf("TotalLinked = %d after relink", tr.TotalLinked())
	}
}

func TestZeroDepthTree(t *testing.T) {
	tr := NewTree(worldBounds(), 0)
	if tr.NumNodes() != 1 || tr.NumLeaves() != 1 {
		t.Fatalf("depth-0 tree: %d nodes %d leaves", tr.NumNodes(), tr.NumLeaves())
	}
	it := &Item{}
	tr.Link(it, geom.BoxAt(geom.V(5, 5, 5), geom.V(1, 1, 1)))
	if it.NodeIndex() != 0 {
		t.Error("item not linked at sole node")
	}
	leaves := tr.LeavesTouching(geom.BoxAt(geom.V(5, 5, 5), geom.V(1, 1, 1)), nil)
	if len(leaves) != 1 || leaves[0] != 0 {
		t.Errorf("leaves = %v", leaves)
	}
}

func TestCheckFinite(t *testing.T) {
	if !checkFinite(worldBounds()) {
		t.Error("finite box reported non-finite")
	}
}

func BenchmarkLink(b *testing.B) {
	tr := NewTree(worldBounds(), 4)
	r := rand.New(rand.NewSource(1))
	boxes := make([]geom.AABB, 1024)
	for i := range boxes {
		boxes[i] = randomItemBox(r, worldBounds())
	}
	it := &Item{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Link(it, boxes[i%len(boxes)])
	}
}

func BenchmarkCollectBox(b *testing.B) {
	tr := NewTree(worldBounds(), 4)
	r := rand.New(rand.NewSource(1))
	items := make([]Item, 160)
	for i := range items {
		items[i].ID = int32(i)
		tr.Link(&items[i], randomItemBox(r, worldBounds()))
	}
	query := geom.BoxAt(geom.V(800, 800, 100), geom.V(120, 120, 60))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CollectBox(query, nil, func(*Item) bool { return true }, nil)
	}
}

func BenchmarkLeavesTouching(b *testing.B) {
	tr := NewTree(worldBounds(), 4)
	query := geom.BoxAt(geom.V(800, 800, 100), geom.V(120, 120, 60))
	buf := make([]int32, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.LeavesTouching(query, buf[:0])
	}
}
