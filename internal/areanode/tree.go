// Package areanode implements the areanode tree from the paper's §2.2: a
// balanced binary partition of the map's full volume, splitting the world
// in equal halves along alternating x/y axes. Every node owns a list of
// the game objects whose boxes it fully contains but whose children's
// volumes do not — an object crossing a division plane links to the
// deepest common ancestor instead of a leaf.
//
// The tree serves two roles, exactly as in the paper:
//
//   - a query accelerator: CollectBox enumerates all objects that may
//     intersect a move's bounding box by walking only the intersecting
//     subtrees (the paper's move-execution step 2);
//   - the unit of region locking: the parallel server locks the leaf
//     areanodes a move's bounding box touches for the duration of the
//     move, plus parent nodes transiently while scanning their lists
//     (§3.3). The lock objects themselves live with the execution engine
//     (real mutexes in the live server, virtual locks in the simulated
//     machine); this package supplies the region→leaf-set mapping and the
//     consistent ordering that makes lock acquisition deadlock-free.
//
// The default depth is 4, "leading to a total of 31 areanodes, 16 of
// which are leafs", and the experiment in Fig. 7(b) varies it.
package areanode

import (
	"fmt"
	"math"

	"qserve/internal/geom"
)

// DefaultDepth is the leaf depth used by the original server: 2^4 = 16
// leaves, 31 nodes total.
const DefaultDepth = 4

// Item is the linkage handle embedded in every game entity. The zero
// value is unlinked. An Item must not be shared between trees.
type Item struct {
	// ID identifies the owning entity; opaque to this package but carried
	// for diagnostics and stable ordering in tests.
	ID int32
	// Box is the entity's absolute bounding box as of the last Link.
	Box geom.AABB
	// Owner points back to the owning entity (avoids a map lookup on
	// collect). Typed as any to keep this package dependency-free.
	Owner any

	node       int32 // node index the item is linked under, -1 if none
	prev, next *Item // intrusive circular list with per-node sentinels
}

// Linked reports whether the item is currently linked into a tree.
func (it *Item) Linked() bool { return it.node >= 0 && it.prev != nil }

// NodeIndex returns the node the item is linked under, or -1.
func (it *Item) NodeIndex() int32 {
	if !it.Linked() {
		return -1
	}
	return it.node
}

// Node is one areanode. Exported fields are immutable after NewTree.
type Node struct {
	Plane    geom.AxisPlane
	Bounds   geom.AABB
	Parent   int32
	Children [2]int32 // front, back; -1 for leaves
	Depth    int
	// LeafOrdinal numbers leaves 0..NumLeaves-1 in construction order;
	// -1 for interior nodes.
	LeafOrdinal int32

	sentinel Item // head of this node's object list
	count    int  // list length, maintained for stats
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Children[0] < 0 }

// Count returns the number of items currently linked at this node.
func (n *Node) Count() int { return n.count }

// Tree is the areanode tree. Structure is immutable after construction;
// the per-node object lists are mutated by Link/Unlink. The tree itself
// performs no locking — callers serialize access per the paper's region
// locking protocol (see package locking).
type Tree struct {
	nodes  []Node
	leaves []int32 // node indices of leaves, in ordinal order (ascending)
	bounds geom.AABB
	depth  int
}

// NewTree builds a tree of the given leaf depth over the world bounds.
// Depth 0 yields a single leaf (no partitioning); depth 4 is the engine
// default. Splits alternate x then y, always in equal halves, and never
// split z: "this is a 2D structure, with all areanodes having the same
// height, which is the height of the entire world".
func NewTree(bounds geom.AABB, depth int) *Tree {
	if depth < 0 {
		panic(fmt.Sprintf("areanode: negative depth %d", depth))
	}
	if !bounds.IsValid() {
		panic(fmt.Sprintf("areanode: invalid bounds %v", bounds))
	}
	t := &Tree{bounds: bounds, depth: depth}
	total := 1<<(depth+1) - 1
	t.nodes = make([]Node, 0, total)
	t.build(bounds, 0, -1, 0)
	// Initialize list sentinels after the slice stops growing so the
	// pointers stay valid.
	for i := range t.nodes {
		s := &t.nodes[i].sentinel
		s.prev, s.next = s, s
		s.node = int32(i)
		if t.nodes[i].IsLeaf() {
			t.nodes[i].LeafOrdinal = int32(len(t.leaves))
			t.leaves = append(t.leaves, int32(i))
		} else {
			t.nodes[i].LeafOrdinal = -1
		}
	}
	return t
}

func (t *Tree) build(bounds geom.AABB, depth int, parent int32, axis int) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, Node{
		Bounds:   bounds,
		Parent:   parent,
		Children: [2]int32{-1, -1},
		Depth:    depth,
	})
	if depth == t.depth {
		return self
	}
	pl := geom.AxisPlane{
		Axis: axis,
		Dist: bounds.Center().Axis(axis),
	}
	front, back := pl.SplitBox(bounds)
	t.nodes[self].Plane = pl
	f := t.build(front, depth+1, self, 1-axis)
	b := t.build(back, depth+1, self, 1-axis)
	t.nodes[self].Children = [2]int32{f, b}
	return self
}

// Depth returns the leaf depth the tree was built with.
func (t *Tree) Depth() int { return t.depth }

// Bounds returns the world volume the tree partitions.
func (t *Tree) Bounds() geom.AABB { return t.bounds }

// NumNodes returns the total areanode count (2^(depth+1) − 1).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the leaf count (2^depth).
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// Node returns node i. The pointer remains valid for the tree's lifetime.
func (t *Tree) Node(i int32) *Node { return &t.nodes[i] }

// LeafNode returns the node index of leaf ordinal i.
func (t *Tree) LeafNode(ordinal int32) int32 { return t.leaves[ordinal] }

// Link inserts the item at the deepest node whose half-space walk fully
// contains box — the engine's SV_LinkEdict placement rule: descend while
// the box lies entirely on one side of the node's plane; stop at the
// first crossing node or at a leaf.
//
// Link is safe only when the caller has exclusive access to every node
// list the item may join or leave (single-threaded phases, or a region
// lock over the whole map). Concurrent movers must use LinkGuarded.
func (t *Tree) Link(it *Item, box geom.AABB) {
	t.LinkGuarded(it, box, nil)
}

// LinkGuarded is Link with the intrusive-list mutation wrapped in guard,
// the same NodeGuard contract CollectBox uses: region-locked leaves scan
// (here: splice) directly, while interior nodes take their lock
// transiently for the splice — without this, two movers whose regions
// share only an ancestor can corrupt that ancestor's list. A nil guard
// splices directly.
func (t *Tree) LinkGuarded(it *Item, box geom.AABB, guard NodeGuard) {
	if it.Linked() {
		t.UnlinkGuarded(it, guard)
	}
	it.Box = box
	ni := int32(0)
	for {
		n := &t.nodes[ni]
		if n.IsLeaf() {
			break
		}
		switch n.Plane.SideBox(box) {
		case geom.SideFront:
			ni = n.Children[0]
		case geom.SideBack:
			ni = n.Children[1]
		default:
			// Crossing: link here.
			goto done
		}
	}
done:
	n := &t.nodes[ni]
	insert := func() {
		s := &n.sentinel
		it.node = ni
		it.next = s.next
		it.prev = s
		s.next.prev = it
		s.next = it
		n.count++
	}
	if guard != nil {
		guard(ni, n.IsLeaf(), insert)
	} else {
		insert()
	}
}

// Unlink removes the item from the tree. Unlinking an unlinked item is a
// no-op, matching the engine's SV_UnlinkEdict tolerance. Like Link, it
// requires exclusive access to the item's node list; concurrent movers
// use UnlinkGuarded.
func (t *Tree) Unlink(it *Item) {
	t.UnlinkGuarded(it, nil)
}

// UnlinkGuarded is Unlink with the list splice wrapped in guard (see
// LinkGuarded). A nil guard splices directly.
func (t *Tree) UnlinkGuarded(it *Item, guard NodeGuard) {
	if !it.Linked() {
		return
	}
	ni := it.node
	n := &t.nodes[ni]
	splice := func() {
		n.count--
		it.prev.next = it.next
		it.next.prev = it.prev
		it.prev, it.next = nil, nil
		it.node = -1
	}
	if guard != nil {
		guard(ni, n.IsLeaf(), splice)
	} else {
		splice()
	}
}

// TraversalStats counts the work of a CollectBox call, feeding both the
// live profiler and the simulated-machine cost model.
type TraversalStats struct {
	NodesVisited int // areanodes whose lists were scanned
	ItemsChecked int // box-overlap tests against linked objects
	ItemsMatched int // objects passed to the visitor
}

// Add accumulates o into s.
func (s *TraversalStats) Add(o TraversalStats) {
	s.NodesVisited += o.NodesVisited
	s.ItemsChecked += o.ItemsChecked
	s.ItemsMatched += o.ItemsMatched
}

// NodeGuard wraps the scan of one node's object list. The parallel server
// passes a guard that takes the node's lock around scan() for interior
// (parent) nodes — the paper's transient parent locking — and relies on
// the already-held region locks for leaves. A nil guard scans directly.
type NodeGuard func(node int32, isLeaf bool, scan func())

// CollectBox visits every linked item whose box intersects the query box,
// walking only subtrees the box touches — the paper's move-execution
// traversal (§2.3 step 2). The visitor returns false to stop early.
// Items linked at the root are always scanned, "since all moves intersect
// with the entire world".
func (t *Tree) CollectBox(box geom.AABB, guard NodeGuard, visit func(*Item) bool, st *TraversalStats) {
	t.collect(0, box, guard, visit, st)
}

func (t *Tree) collect(ni int32, box geom.AABB, guard NodeGuard, visit func(*Item) bool, st *TraversalStats) bool {
	n := &t.nodes[ni]
	if st != nil {
		st.NodesVisited++
	}
	cont := true
	scan := func() {
		s := &n.sentinel
		for it := s.next; it != s; it = it.next {
			if st != nil {
				st.ItemsChecked++
			}
			if it.Box.Intersects(box) {
				if st != nil {
					st.ItemsMatched++
				}
				if !visit(it) {
					cont = false
					return
				}
			}
		}
	}
	if guard != nil {
		guard(ni, n.IsLeaf(), scan)
	} else {
		scan()
	}
	if !cont || n.IsLeaf() {
		return cont
	}
	side := n.Plane.SideBox(box)
	if side&geom.SideFront != 0 {
		if !t.collect(n.Children[0], box, guard, visit, st) {
			return false
		}
	}
	if side&geom.SideBack != 0 {
		if !t.collect(n.Children[1], box, guard, visit, st) {
			return false
		}
	}
	return true
}

// LeavesTouching appends to buf the node indices of all leaves whose
// volumes intersect box, in ascending node-index order — the canonical
// lock-acquisition order that rules out cycles ("locking is always
// performed in the same order"). The returned slice aliases buf's array
// when capacity allows.
func (t *Tree) LeavesTouching(box geom.AABB, buf []int32) []int32 {
	return t.leavesTouching(0, box, buf)
}

func (t *Tree) leavesTouching(ni int32, box geom.AABB, buf []int32) []int32 {
	n := &t.nodes[ni]
	if n.IsLeaf() {
		return append(buf, ni)
	}
	side := n.Plane.SideBox(box)
	if side&geom.SideFront != 0 {
		buf = t.leavesTouching(n.Children[0], box, buf)
	}
	if side&geom.SideBack != 0 {
		buf = t.leavesTouching(n.Children[1], box, buf)
	}
	return buf
}

// LeafContaining returns the node index of the leaf containing point p.
// Points on division planes resolve to the front side.
func (t *Tree) LeafContaining(p geom.Vec3) int32 {
	ni := int32(0)
	for {
		n := &t.nodes[ni]
		if n.IsLeaf() {
			return ni
		}
		if n.Plane.SidePoint(p) == geom.SideFront {
			ni = n.Children[0]
		} else {
			ni = n.Children[1]
		}
	}
}

// TotalLinked returns the number of items linked anywhere in the tree.
func (t *Tree) TotalLinked() int {
	total := 0
	for i := range t.nodes {
		total += t.nodes[i].count
	}
	return total
}

// CountAt returns how many items are linked at each node, indexed by node
// index — the distribution Fig. 2 illustrates.
func (t *Tree) CountAt() []int {
	out := make([]int, len(t.nodes))
	for i := range t.nodes {
		out[i] = t.nodes[i].count
	}
	return out
}

// DepthForNodeBudget returns the largest leaf depth whose total node
// count does not exceed totalNodes — the inverse of the Fig. 7(b) x-axis
// ("we vary the total number of areanodes in the tree from 3 to 63").
func DepthForNodeBudget(totalNodes int) int {
	d := 0
	for (1<<(d+2))-1 <= totalNodes {
		d++
	}
	return d
}

// checkFinite guards against NaN boxes poisoning the tree; exposed via
// Link in debug builds only. Kept for tests.
func checkFinite(b geom.AABB) bool {
	return b.Min.IsFinite() && b.Max.IsFinite() &&
		!math.IsNaN(b.Min.X) && !math.IsNaN(b.Max.X)
}
