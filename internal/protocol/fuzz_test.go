package protocol

import (
	"bytes"
	"testing"

	"qserve/internal/geom"
)

// FuzzDecode drives the datagram parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode successfully
// (decode ∘ encode is total on the accepted set).
func FuzzDecode(f *testing.F) {
	// Seed the corpus with one valid datagram of each message type.
	seedMsgs := []any{
		&Connect{Name: "seed", FrameMs: 33, ProtocolVer: Version},
		&Move{Seq: 7, Cmd: MoveCmd{Forward: 320, Msec: 33}},
		&Disconnect{},
		&Ping{Nonce: 99},
		&Accept{ClientID: 1, EntityID: 2, MapName: "m", Addr: "a:1"},
		&Reject{Reason: "full"},
		&Disconnected{Reason: "bye"},
		&Pong{Nonce: 3},
		&Snapshot{
			Frame: 1,
			You:   PlayerState{Origin: geom.V(1, 2, 3), Health: 100},
			Delta: []EntityDelta{
				{ID: 5, Bits: DNew, State: EntityState{ID: 5, X: 8, Yaw: 4}},
				{ID: 9, Bits: DRemove},
			},
			Events: []GameEvent{{Kind: 1, Actor: 2, Subject: 3}},
		},
	}
	for _, m := range seedMsgs {
		var w Writer
		if err := Encode(&w, m); err != nil {
			f.Fatal(err)
		}
		f.Add(w.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{Magic, Version})
	f.Add([]byte{Magic, Version, uint8(TSnapshot), 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted messages must round-trip through the encoder.
		var w Writer
		if err := Encode(&w, msg); err != nil {
			t.Fatalf("accepted message %T does not re-encode: %v", msg, err)
		}
		if _, err := Decode(w.Bytes()); err != nil {
			t.Fatalf("re-encoded %T does not re-decode: %v", msg, err)
		}
	})
}

// FuzzDecodeReusedBuffer proves decoding is safe under buffer reuse: a
// datagram arriving in a recycled receive buffer still holding bytes from
// a previous, longer datagram must decode exactly as it would from a
// pristine buffer. The decoder must never read past the length it is
// handed, so stale trailing bytes (simulated here with a 0xA5 poison
// fill — deliberately the protocol Magic byte, the worst-case stale
// content) can neither change acceptance nor leak into decoded fields.
func FuzzDecodeReusedBuffer(f *testing.F) {
	seed := [][]byte{
		{},
		{Magic, Version},
		{Magic, Version, uint8(TMove), 1, 0, 0, 0},
	}
	{
		var w Writer
		if err := Encode(&w, &Move{Seq: 7, Ack: 3, Cmd: MoveCmd{Forward: 320, Msec: 33}}); err != nil {
			f.Fatal(err)
		}
		seed = append(seed, w.Bytes())
	}
	for _, s := range seed {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Pristine decode: data in a buffer of exactly its own length.
		pristine := append([]byte(nil), data...)
		wantMsg, wantErr := Decode(pristine)

		// Reused-buffer decode: the same bytes copied into the front of a
		// larger buffer whose tail is poisoned with stale content, sliced
		// to the datagram length — the shape every pooled recv path
		// produces.
		reused := make([]byte, len(data)+64)
		for i := range reused {
			reused[i] = Magic // worst-case stale byte
		}
		copy(reused, data)
		gotMsg, gotErr := Decode(reused[:len(data)])

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("acceptance differs under buffer reuse: pristine err=%v, reused err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		// Both accepted: the decoded messages must encode identically.
		var ww, gw Writer
		if err := Encode(&ww, wantMsg); err != nil {
			t.Fatalf("pristine message %T does not re-encode: %v", wantMsg, err)
		}
		if err := Encode(&gw, gotMsg); err != nil {
			t.Fatalf("reused-buffer message %T does not re-encode: %v", gotMsg, err)
		}
		if !bytes.Equal(ww.Bytes(), gw.Bytes()) {
			t.Fatalf("decoded message differs under buffer reuse:\npristine: %x\nreused:   %x", ww.Bytes(), gw.Bytes())
		}
	})
}
