package protocol

import (
	"testing"

	"qserve/internal/geom"
)

// FuzzDecode drives the datagram parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode successfully
// (decode ∘ encode is total on the accepted set).
func FuzzDecode(f *testing.F) {
	// Seed the corpus with one valid datagram of each message type.
	seedMsgs := []any{
		&Connect{Name: "seed", FrameMs: 33, ProtocolVer: Version},
		&Move{Seq: 7, Cmd: MoveCmd{Forward: 320, Msec: 33}},
		&Disconnect{},
		&Ping{Nonce: 99},
		&Accept{ClientID: 1, EntityID: 2, MapName: "m", Addr: "a:1"},
		&Reject{Reason: "full"},
		&Disconnected{Reason: "bye"},
		&Pong{Nonce: 3},
		&Snapshot{
			Frame: 1,
			You:   PlayerState{Origin: geom.V(1, 2, 3), Health: 100},
			Delta: []EntityDelta{
				{ID: 5, Bits: DNew, State: EntityState{ID: 5, X: 8, Yaw: 4}},
				{ID: 9, Bits: DRemove},
			},
			Events: []GameEvent{{Kind: 1, Actor: 2, Subject: 3}},
		},
	}
	for _, m := range seedMsgs {
		var w Writer
		if err := Encode(&w, m); err != nil {
			f.Fatal(err)
		}
		f.Add(w.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{Magic, Version})
	f.Add([]byte{Magic, Version, uint8(TSnapshot), 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted messages must round-trip through the encoder.
		var w Writer
		if err := Encode(&w, msg); err != nil {
			t.Fatalf("accepted message %T does not re-encode: %v", msg, err)
		}
		if _, err := Decode(w.Bytes()); err != nil {
			t.Fatalf("re-encoded %T does not re-decode: %v", msg, err)
		}
	})
}
