package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"qserve/internal/geom"
	"qserve/internal/transport"
)

// corpusMsgs returns one valid instance of every message type, for
// corruption-corpus generation.
func corpusMsgs() []any {
	return []any{
		&Connect{Name: "seed", FrameMs: 33, ProtocolVer: Version},
		&Move{Seq: 7, Ack: 3, Cmd: MoveCmd{Forward: 320, Msec: 33}},
		&Disconnect{},
		&Ping{Nonce: 99},
		&Accept{ClientID: 1, EntityID: 2, MapName: "m", Addr: "a:1"},
		&Reject{Reason: "full"},
		&Disconnected{Reason: "bye"},
		&Pong{Nonce: 3},
		&Snapshot{
			Frame:     4,
			BaseFrame: 3,
			You:       PlayerState{Origin: geom.V(1, 2, 3), Health: 100},
			Delta: []EntityDelta{
				{ID: 5, Bits: DNew, State: EntityState{ID: 5, X: 8, Yaw: 4}},
				{ID: 7, Bits: DOrigin | DYaw, State: EntityState{ID: 7, X: 1, Y: 2, Z: 3, Yaw: 9}},
				{ID: 9, Bits: DRemove},
			},
			Events: []GameEvent{{Kind: 1, Actor: 2, Subject: 3}},
		},
	}
}

// FuzzDecode drives the datagram parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode successfully
// (decode ∘ encode is total on the accepted set).
func FuzzDecode(f *testing.F) {
	// Seed the corpus with one valid datagram of each message type.
	seedMsgs := []any{
		&Connect{Name: "seed", FrameMs: 33, ProtocolVer: Version},
		&Move{Seq: 7, Cmd: MoveCmd{Forward: 320, Msec: 33}},
		&Disconnect{},
		&Ping{Nonce: 99},
		&Accept{ClientID: 1, EntityID: 2, MapName: "m", Addr: "a:1"},
		&Reject{Reason: "full"},
		&Disconnected{Reason: "bye"},
		&Pong{Nonce: 3},
		&Snapshot{
			Frame: 1,
			You:   PlayerState{Origin: geom.V(1, 2, 3), Health: 100},
			Delta: []EntityDelta{
				{ID: 5, Bits: DNew, State: EntityState{ID: 5, X: 8, Yaw: 4}},
				{ID: 9, Bits: DRemove},
			},
			Events: []GameEvent{{Kind: 1, Actor: 2, Subject: 3}},
		},
	}
	for _, m := range seedMsgs {
		var w Writer
		if err := Encode(&w, m); err != nil {
			f.Fatal(err)
		}
		f.Add(w.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{Magic, Version})
	f.Add([]byte{Magic, Version, uint8(TSnapshot), 0, 0, 0, 0})

	// Injector-produced corruption corpus: every valid message, bit-
	// flipped and truncated the way transport.FaultConn mangles datagrams
	// in the chaos tests. Deterministic, so the corpus is stable.
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for _, m := range corpusMsgs() {
		var w Writer
		if err := Encode(&w, m); err != nil {
			f.Fatal(err)
		}
		valid := w.Bytes()
		for v := 0; v < 8; v++ {
			flipped := append([]byte(nil), valid...)
			bit := rng.Intn(len(flipped) * 8)
			flipped[bit/8] ^= 1 << uint(bit%8)
			f.Add(flipped)
		}
		for v := 0; v < 4 && len(valid) > 1; v++ {
			f.Add(append([]byte(nil), valid[:1+rng.Intn(len(valid)-1)]...))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted messages must round-trip through the encoder.
		var w Writer
		if err := Encode(&w, msg); err != nil {
			t.Fatalf("accepted message %T does not re-encode: %v", msg, err)
		}
		if _, err := Decode(w.Bytes()); err != nil {
			t.Fatalf("re-encoded %T does not re-decode: %v", msg, err)
		}
	})
}

// FuzzDecodeReusedBuffer proves decoding is safe under buffer reuse: a
// datagram arriving in a recycled receive buffer still holding bytes from
// a previous, longer datagram must decode exactly as it would from a
// pristine buffer. The decoder must never read past the length it is
// handed, so stale trailing bytes (simulated here with a 0xA5 poison
// fill — deliberately the protocol Magic byte, the worst-case stale
// content) can neither change acceptance nor leak into decoded fields.
func FuzzDecodeReusedBuffer(f *testing.F) {
	seed := [][]byte{
		{},
		{Magic, Version},
		{Magic, Version, uint8(TMove), 1, 0, 0, 0},
	}
	{
		var w Writer
		if err := Encode(&w, &Move{Seq: 7, Ack: 3, Cmd: MoveCmd{Forward: 320, Msec: 33}}); err != nil {
			f.Fatal(err)
		}
		seed = append(seed, w.Bytes())
	}
	for _, s := range seed {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Pristine decode: data in a buffer of exactly its own length.
		pristine := append([]byte(nil), data...)
		wantMsg, wantErr := Decode(pristine)

		// Reused-buffer decode: the same bytes copied into the front of a
		// larger buffer whose tail is poisoned with stale content, sliced
		// to the datagram length — the shape every pooled recv path
		// produces.
		reused := make([]byte, len(data)+64)
		for i := range reused {
			reused[i] = Magic // worst-case stale byte
		}
		copy(reused, data)
		gotMsg, gotErr := Decode(reused[:len(data)])

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("acceptance differs under buffer reuse: pristine err=%v, reused err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		// Both accepted: the decoded messages must encode identically.
		var ww, gw Writer
		if err := Encode(&ww, wantMsg); err != nil {
			t.Fatalf("pristine message %T does not re-encode: %v", wantMsg, err)
		}
		if err := Encode(&gw, gotMsg); err != nil {
			t.Fatalf("reused-buffer message %T does not re-encode: %v", gotMsg, err)
		}
		if !bytes.Equal(ww.Bytes(), gw.Bytes()) {
			t.Fatalf("decoded message differs under buffer reuse:\npristine: %x\nreused:   %x", ww.Bytes(), gw.Bytes())
		}
	})
}

// TestDecodeSurvivesFaultInjector runs every message type through a
// corrupting, truncating fault conn for many rounds: whatever arrives
// must either decode or error — never panic. This is the live-wire
// version of the corruption corpus above.
func TestDecodeSurvivesFaultInjector(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	rx, err := net.Listen("rx")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := net.Listen("tx")
	if err != nil {
		t.Fatal(err)
	}
	fc := transport.NewFaultConn(tx, transport.FaultConfig{
		Seed:         1,
		CorruptProb:  0.7,
		TruncateProb: 0.4,
		DupProb:      0.2,
	})
	msgs := corpusMsgs()
	var w Writer
	buf := make([]byte, transport.MaxDatagram)
	decoded, rejected := 0, 0
	for round := 0; round < 200; round++ {
		for _, m := range msgs {
			w.Reset()
			if err := Encode(&w, m); err != nil {
				t.Fatal(err)
			}
			if err := fc.Send(rx.LocalAddr(), w.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
		for {
			n, _, err := rx.Recv(buf, 0)
			if err != nil {
				break
			}
			if _, derr := Decode(buf[:n]); derr != nil {
				rejected++
			} else {
				decoded++
			}
		}
	}
	if rejected == 0 {
		t.Fatal("corruption rates high enough that some datagrams must be rejected")
	}
	if decoded == 0 {
		t.Fatal("some datagrams should survive intact")
	}
	st := fc.Stats()
	if st.Corrupted == 0 || st.Truncated == 0 {
		t.Fatalf("injector idle: %+v", st)
	}
}

// TestDecodeRejectsTrailingBytes pins the strict-framing rule: one
// datagram is exactly one message.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	for _, m := range corpusMsgs() {
		var w Writer
		if err := Encode(&w, m); err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(w.Bytes()); err != nil {
			t.Fatalf("valid %T rejected: %v", m, err)
		}
		// Re-checksum the padded datagram so the trailer is valid and the
		// framing check — not the checksum — is what rejects it.
		padded := append(append([]byte(nil), w.Bytes()[:len(w.Bytes())-2]...), 0x00)
		var pw Writer
		pw.Buf = padded
		pw.U16(wireSum(padded))
		if _, err := Decode(pw.Bytes()); err != ErrTrailing {
			t.Fatalf("padded %T: err = %v, want ErrTrailing", m, err)
		}
		// And a flipped bit with the stale checksum must be caught as
		// corruption.
		flipped := append([]byte(nil), w.Bytes()...)
		flipped[3] ^= 0x10
		if _, err := Decode(flipped); err != ErrChecksum {
			t.Fatalf("bit-flipped %T: err = %v, want ErrChecksum", m, err)
		}
	}
}

// TestSnapshotBaseFrameRoundTrip pins the v2 wire field.
func TestSnapshotBaseFrameRoundTrip(t *testing.T) {
	var w Writer
	in := &Snapshot{Frame: 10, BaseFrame: 8, AckSeq: 5}
	if err := Encode(&w, in); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := out.(*Snapshot)
	if !ok || snap.BaseFrame != 8 || snap.Frame != 10 {
		t.Fatalf("round trip got %+v", out)
	}
}
