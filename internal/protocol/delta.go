package protocol

import (
	"fmt"
	"sort"

	"qserve/internal/geom"
)

// EntityState is the wire-visible state of one entity, quantized. States
// are compared field-wise for delta compression, so the struct must stay
// directly comparable.
//
//qvet:wire=wire3
//qvet:wire=qckp
type EntityState struct {
	// The id is not its own wire field: snapshots carry it once, in
	// EntityDelta.ID, and decodeDeltas copies it back in.
	//qvet:allow=wirecheck carried by EntityDelta.ID, reconstructed on decode
	ID      uint16
	Class   uint8
	X, Y, Z int16 // fixed-point origin (CoordScale)
	Yaw     uint8 // angle in 256ths of a turn
	Frame   uint8 // animation frame
	Effects uint8 // muzzle flash, powerup glow, ...
}

// Origin returns the dequantized position.
func (s *EntityState) Origin() geom.Vec3 { return DequantizeVec(s.X, s.Y, s.Z) }

// SetOrigin quantizes and stores a position.
func (s *EntityState) SetOrigin(v geom.Vec3) { s.X, s.Y, s.Z = QuantizeVec(v) }

// YawDegrees returns the dequantized yaw.
func (s *EntityState) YawDegrees() float64 { return float64(s.Yaw) * 360 / 256 }

// SetYaw quantizes and stores a yaw angle in degrees.
func (s *EntityState) SetYaw(deg float64) {
	s.Yaw = uint8(int(geom.NormalizeAngle(deg)*256/360) & 0xFF)
}

// Delta field bits.
const (
	DOrigin uint8 = 1 << iota
	DYaw
	DFrame
	DEffects
	DClass
	DRemove // entity left the client's visible set
	DNew    // entity entered the visible set: full state follows
)

// EntityDelta is one entry of a snapshot's entity list.
//
//qvet:wire=wire3
type EntityDelta struct {
	ID    uint16
	Bits  uint8
	State EntityState // fields valid per Bits; complete when DNew
}

// maxSnapshotEntities bounds decoder allocation against malicious
// counts.
const maxSnapshotEntities = 4096

// DeltaEntities computes the delta list transforming prev into cur. Both
// slices must be sorted by ID (as BuildSnapshot emits them); the output
// is also ID-sorted. Unchanged entities produce no entry — the bandwidth
// saving that lets "a single 100 MBit Ethernet interface support large
// numbers of players".
func DeltaEntities(prev, cur []EntityState) []EntityDelta {
	return AppendDeltaEntities(nil, prev, cur)
}

// AppendDeltaEntities is DeltaEntities appending into dst, so reply
// pipelines can reuse one delta buffer across clients and frames instead
// of allocating per call. dst may be nil; cur and prev must not alias
// dst's backing array.
func AppendDeltaEntities(dst []EntityDelta, prev, cur []EntityState) []EntityDelta {
	out := dst
	i, j := 0, 0
	for i < len(prev) || j < len(cur) {
		switch {
		case j >= len(cur) || (i < len(prev) && prev[i].ID < cur[j].ID):
			out = append(out, EntityDelta{ID: prev[i].ID, Bits: DRemove})
			i++
		case i >= len(prev) || cur[j].ID < prev[i].ID:
			out = append(out, EntityDelta{ID: cur[j].ID, Bits: DNew, State: cur[j]})
			j++
		default:
			p, c := prev[i], cur[j]
			var bits uint8
			if p.X != c.X || p.Y != c.Y || p.Z != c.Z {
				bits |= DOrigin
			}
			if p.Yaw != c.Yaw {
				bits |= DYaw
			}
			if p.Frame != c.Frame {
				bits |= DFrame
			}
			if p.Effects != c.Effects {
				bits |= DEffects
			}
			if p.Class != c.Class {
				bits |= DClass
			}
			if bits != 0 {
				out = append(out, EntityDelta{ID: c.ID, Bits: bits, State: c})
			}
			i++
			j++
		}
	}
	return out
}

// ApplyDelta reconstructs the new entity list from the previous one and a
// delta list. prev must be ID-sorted; the result is ID-sorted.
func ApplyDelta(prev []EntityState, deltas []EntityDelta) ([]EntityState, error) {
	byID := make(map[uint16]EntityState, len(prev)+len(deltas))
	for _, s := range prev {
		byID[s.ID] = s
	}
	for _, d := range deltas {
		switch {
		case d.Bits&DRemove != 0:
			delete(byID, d.ID)
		case d.Bits&DNew != 0:
			s := d.State
			s.ID = d.ID
			byID[d.ID] = s
		default:
			s, ok := byID[d.ID]
			if !ok {
				return nil, fmt.Errorf("protocol: delta for unknown entity %d", d.ID)
			}
			if d.Bits&DOrigin != 0 {
				s.X, s.Y, s.Z = d.State.X, d.State.Y, d.State.Z
			}
			if d.Bits&DYaw != 0 {
				s.Yaw = d.State.Yaw
			}
			if d.Bits&DFrame != 0 {
				s.Frame = d.State.Frame
			}
			if d.Bits&DEffects != 0 {
				s.Effects = d.State.Effects
			}
			if d.Bits&DClass != 0 {
				s.Class = d.State.Class
			}
			byID[d.ID] = s
		}
	}
	out := make([]EntityState, 0, len(byID))
	for _, s := range byID {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

func encodeDeltas(w *Writer, deltas []EntityDelta) {
	w.U16(uint16(len(deltas)))
	for i := range deltas {
		d := &deltas[i]
		w.U16(d.ID)
		w.U8(d.Bits)
		if d.Bits&DRemove != 0 {
			continue
		}
		if d.Bits&(DNew|DOrigin) != 0 {
			w.I16(d.State.X)
			w.I16(d.State.Y)
			w.I16(d.State.Z)
		}
		if d.Bits&(DNew|DYaw) != 0 {
			w.U8(d.State.Yaw)
		}
		if d.Bits&(DNew|DFrame) != 0 {
			w.U8(d.State.Frame)
		}
		if d.Bits&(DNew|DEffects) != 0 {
			w.U8(d.State.Effects)
		}
		if d.Bits&(DNew|DClass) != 0 {
			w.U8(d.State.Class)
		}
	}
}

func decodeDeltas(r *Reader) ([]EntityDelta, error) {
	n := int(r.U16())
	if n > maxSnapshotEntities {
		return nil, fmt.Errorf("protocol: snapshot entity count %d exceeds limit", n)
	}
	out := make([]EntityDelta, 0, n)
	for k := 0; k < n; k++ {
		var d EntityDelta
		d.ID = r.U16()
		d.Bits = r.U8()
		d.State.ID = d.ID
		if d.Bits&DRemove == 0 {
			if d.Bits&(DNew|DOrigin) != 0 {
				d.State.X = r.I16()
				d.State.Y = r.I16()
				d.State.Z = r.I16()
			}
			if d.Bits&(DNew|DYaw) != 0 {
				d.State.Yaw = r.U8()
			}
			if d.Bits&(DNew|DFrame) != 0 {
				d.State.Frame = r.U8()
			}
			if d.Bits&(DNew|DEffects) != 0 {
				d.State.Effects = r.U8()
			}
			if d.Bits&(DNew|DClass) != 0 {
				d.State.Class = r.U8()
			}
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		out = append(out, d)
	}
	return out, nil
}
