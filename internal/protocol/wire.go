// Package protocol defines qserve's binary wire format: the client move
// command stream and the server's delta-compressed entity snapshots,
// modelled on the QuakeWorld protocol the paper's server speaks. All
// encoding is little-endian, one message per UDP datagram.
//
// Decoders are total: any byte string either decodes or returns an error;
// malformed input never panics and never allocates unboundedly.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic and Version open every datagram. Version 2 added the snapshot
// BaseFrame field, which lets clients detect delta-chain breaks caused
// by packet loss instead of silently corrupting their entity tables.
// Version 3 appended a 16-bit checksum trailer to every datagram, so
// bit-level corruption is rejected at decode instead of being accepted
// as a structurally valid message with garbage fields (a corrupted Move
// sequence number or a corrupted-but-consistent Snapshot would
// otherwise poison per-client state silently).
const (
	Magic uint8 = 0xA5
	//qvet:wire=wire3 version
	Version uint8 = 3
)

// ErrChecksum reports a datagram whose checksum trailer does not match
// its contents: in-flight corruption.
var ErrChecksum = errors.New("protocol: checksum mismatch")

// ErrTruncated reports a datagram shorter than its contents require.
var ErrTruncated = errors.New("protocol: truncated message")

// ErrTrailing reports a datagram longer than its contents: a message
// followed by extra bytes. A bit flip in an embedded count or length
// prefix can shrink how much of the datagram the parser consumes while
// the prefix still parses; rejecting trailing garbage keeps such
// corruption from being half-accepted.
var ErrTrailing = errors.New("protocol: trailing bytes after message")

// ErrBadMagic reports a datagram that is not a qserve packet.
var ErrBadMagic = errors.New("protocol: bad magic or version")

// Writer appends primitive values to a byte slice. The zero value with a
// pre-allocated Buf is ready to use; Bytes returns the built message.
type Writer struct {
	Buf []byte
}

// Bytes returns the accumulated message.
func (w *Writer) Bytes() []byte { return w.Buf }

// Reset truncates the writer for reuse, keeping capacity.
func (w *Writer) Reset() { w.Buf = w.Buf[:0] }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.Buf = append(w.Buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.Buf = binary.LittleEndian.AppendUint16(w.Buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.Buf = binary.LittleEndian.AppendUint32(w.Buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.Buf = binary.LittleEndian.AppendUint64(w.Buf, v) }

// I16 appends a little-endian int16.
func (w *Writer) I16(v int16) { w.U16(uint16(v)) }

// I32 appends a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F32 appends a little-endian float32.
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// String appends a length-prefixed (uint8) string, truncating to 255
// bytes.
func (w *Writer) String(s string) {
	if len(s) > 255 {
		s = s[:255]
	}
	w.U8(uint8(len(s)))
	w.Buf = append(w.Buf, s...)
}

// Reader consumes primitive values from a byte slice, latching the first
// error; all subsequent reads return zero values.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps data for reading.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I16 reads a little-endian int16.
func (r *Reader) I16() int16 { return int16(r.U16()) }

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F32 reads a little-endian float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U8())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Expect consumes one byte and errors unless it equals v.
func (r *Reader) Expect(v uint8) {
	if got := r.U8(); r.err == nil && got != v {
		r.err = fmt.Errorf("protocol: expected byte %#x, got %#x", v, got)
	}
}
