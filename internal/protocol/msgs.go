package protocol

import (
	"encoding/binary"
	"fmt"

	"qserve/internal/geom"
)

// MsgType tags each datagram.
type MsgType uint8

// Message types. Client→server types are low, server→client high.
const (
	TConnect    MsgType = 1 // client: join the game
	TMove       MsgType = 2 // client: move command (the gameplay request)
	TDisconnect MsgType = 3 // client: leave
	TPing       MsgType = 4 // client: latency probe

	TAccept       MsgType = 64 // server: connection accepted
	TSnapshot     MsgType = 65 // server: world update reply
	TDisconnected MsgType = 66 // server: connection closed
	TPong         MsgType = 67 // server: latency probe reply
	TReject       MsgType = 68 // server: connection refused
)

// Button bits in MoveCmd.Buttons.
const (
	BtnFire uint8 = 1 << iota
	BtnJump
	BtnUse
)

// MoveCmd is the wire form of the paper's move request (§2.3): view
// angles, motion indicators, action flags, and the duration "the command
// is to be applied in milliseconds" (~30ms for 30fps clients).
//
//qvet:wire=wire3
//qvet:wire=qrpl
type MoveCmd struct {
	Pitch   int16 // view pitch, 16-bit angle units (65536 per turn)
	Yaw     int16 // view yaw
	Forward int16 // forward speed indicator, units/s
	Side    int16 // sideways speed indicator
	Up      int16 // vertical speed indicator
	Buttons uint8
	Impulse uint8 // weapon selection / item switch
	Msec    uint8 // duration to apply, ms
}

// AngleToWire quantizes a degree angle to 16-bit wire units.
func AngleToWire(deg float64) int16 {
	return int16(int32(deg*65536/360) & 0xFFFF)
}

// WireToAngle expands a wire angle back to degrees in [0, 360).
func WireToAngle(w int16) float64 {
	return geom.NormalizeAngle(float64(uint16(w)) * 360 / 65536)
}

// ViewAngles converts the command's wire angles to a geom angle vector.
func (c *MoveCmd) ViewAngles() geom.Vec3 {
	pitch := WireToAngle(c.Pitch)
	if pitch > 180 {
		pitch -= 360
	}
	return geom.V(pitch, WireToAngle(c.Yaw), 0)
}

// CoordScale is the fixed-point scale for entity coordinates: 1/8 unit
// resolution in an int16, the engine's 13.3 format.
const CoordScale = 8

// QuantizeCoord converts a world coordinate to wire fixed point,
// saturating at the int16 range.
func QuantizeCoord(v float64) int16 {
	q := v * CoordScale
	if q > 32767 {
		return 32767
	}
	if q < -32768 {
		return -32768
	}
	return int16(q)
}

// DequantizeCoord converts wire fixed point back to a world coordinate.
func DequantizeCoord(q int16) float64 { return float64(q) / CoordScale }

// QuantizeVec quantizes all three components.
func QuantizeVec(v geom.Vec3) (x, y, z int16) {
	return QuantizeCoord(v.X), QuantizeCoord(v.Y), QuantizeCoord(v.Z)
}

// DequantizeVec expands three wire coordinates.
func DequantizeVec(x, y, z int16) geom.Vec3 {
	return geom.V(DequantizeCoord(x), DequantizeCoord(y), DequantizeCoord(z))
}

// Connect is the session-join request.
//
//qvet:wire=wire3
type Connect struct {
	Name        string
	FrameMs     uint8 // client frame duration (30-40ms per the paper)
	ProtocolVer uint8
	// Match names the instance the client wants to join when the server
	// runs a match manager (DESIGN.md §13). Empty means "assign me": the
	// lobby picks a match. Single-match servers ignore it.
	Match string
}

// Move wraps a MoveCmd with sequencing.
//
//qvet:wire=wire3
type Move struct {
	Seq uint32 // client's request sequence number
	Ack uint32 // latest server frame the client has seen
	Cmd MoveCmd
}

// Disconnect is the session-leave notice.
type Disconnect struct{}

// Ping is a latency probe.
//
//qvet:wire=wire3
type Ping struct{ Nonce uint64 }

// Accept confirms a connection.
//
//qvet:wire=wire3
type Accept struct {
	ClientID uint16
	EntityID int32
	MapName  string
	// Addr tells the client which endpoint its owning server thread
	// listens on: "a server appears to clients as one IP address and a
	// range of UDP ports" (§3.1). Clients send all subsequent messages
	// there.
	Addr string
}

// Reject refuses a connection.
//
//qvet:wire=wire3
type Reject struct{ Reason string }

// PlayerState is the client's own authoritative state in a snapshot.
//
//qvet:wire=wire3
type PlayerState struct {
	Origin   geom.Vec3
	Velocity geom.Vec3
	Health   int16
	Armor    int16
	Ammo     int16
	Weapon   uint8
	Frags    int16
	Flags    uint8
}

// PlayerState flags.
const (
	PFOnGround uint8 = 1 << iota
	PFDead
	PFPowerup
)

// GameEvent is a broadcast game occurrence (kill, pickup, teleport)
// delivered to every client from the server's global state buffer.
//
//qvet:wire=wire3
type GameEvent struct {
	Kind    uint8
	Actor   uint16
	Subject uint16
	X, Y, Z int16 // quantized location, when meaningful
}

// maxSnapshotEvents bounds the per-snapshot event list so a snapshot
// with a full visible-entity set still fits one MaxDatagram-sized UDP
// payload; excess events are dropped oldest-first by the encoder, as the
// original engine drops unreliable datagram content under pressure.
const maxSnapshotEvents = 64

// Snapshot is the server's reply to a move request: the client's own
// state, delta-encoded visible entities, and the frame's broadcast
// events.
//
//qvet:wire=wire3
type Snapshot struct {
	Frame  uint32 // server frame number
	AckSeq uint32 // client request sequence this replies to
	// BaseFrame tags the baseline Delta is relative to: Frame+1 of the
	// snapshot that established it, or 0 when there is no baseline (the
	// delta carries full entity state and the client must reset its
	// table before applying). A client whose own table tag differs from
	// BaseFrame has missed a snapshot — applying the delta would corrupt
	// its table silently — and must discard it and request a resync.
	BaseFrame  uint32
	ServerTime uint32 // server clock, ms
	You        PlayerState
	Delta      []EntityDelta
	Events     []GameEvent
}

// Disconnected closes a session from the server side.
//
//qvet:wire=wire3
type Disconnected struct{ Reason string }

// Pong answers a Ping.
//
//qvet:wire=wire3
type Pong struct{ Nonce uint64 }

// wireSum is the 16-bit datagram checksum: FNV-1a folded to 16 bits.
// It detects every single-bit flip and all but ~1/65536 of multi-bit
// corruption, and costs one pass over the datagram with no allocation.
func wireSum(data []byte) uint16 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return uint16(h ^ h>>16)
}

// Fold16 exposes the wire checksum fold for other length-prefixed
// formats: the replay log (internal/replay) reuses it for its header
// and per-record checksums so both framings share one corruption model.
func Fold16(data []byte) uint16 { return wireSum(data) }

// Encode serializes any message type into w, including the datagram
// header and the trailing checksum.
//
//qvet:wire=wire3 encode
func Encode(w *Writer, msg any) error {
	start := len(w.Buf)
	w.U8(Magic)
	w.U8(Version)
	switch m := msg.(type) {
	case *Connect:
		w.U8(uint8(TConnect))
		w.String(m.Name)
		w.U8(m.FrameMs)
		w.U8(m.ProtocolVer)
		w.String(m.Match)
	case *Move:
		w.U8(uint8(TMove))
		w.U32(m.Seq)
		w.U32(m.Ack)
		encodeMoveCmd(w, &m.Cmd)
	case *Disconnect:
		w.U8(uint8(TDisconnect))
	case *Ping:
		w.U8(uint8(TPing))
		w.U64(m.Nonce)
	case *Accept:
		w.U8(uint8(TAccept))
		w.U16(m.ClientID)
		w.I32(m.EntityID)
		w.String(m.MapName)
		w.String(m.Addr)
	case *Reject:
		w.U8(uint8(TReject))
		w.String(m.Reason)
	case *Snapshot:
		w.U8(uint8(TSnapshot))
		w.U32(m.Frame)
		w.U32(m.AckSeq)
		w.U32(m.BaseFrame)
		w.U32(m.ServerTime)
		encodePlayerState(w, &m.You)
		encodeDeltas(w, m.Delta)
		encodeEvents(w, m.Events)
	case *Disconnected:
		w.U8(uint8(TDisconnected))
		w.String(m.Reason)
	case *Pong:
		w.U8(uint8(TPong))
		w.U64(m.Nonce)
	default:
		return fmt.Errorf("protocol: cannot encode %T", msg)
	}
	w.U16(wireSum(w.Buf[start:]))
	return nil
}

// Decode parses a datagram into one of the message structs above. The
// checksum trailer is verified first: a mismatch means the datagram was
// corrupted in flight, and parsing it could yield a structurally valid
// message carrying garbage (a wild Move sequence, a forged Disconnect,
// a Snapshot whose delta chain looks intact) — rejected wholesale.
//
//qvet:wire=wire3 decode
func Decode(data []byte) (any, error) {
	if len(data) < 5 { // magic + version + type + checksum
		return nil, ErrTruncated
	}
	body := data[:len(data)-2]
	if binary.LittleEndian.Uint16(data[len(data)-2:]) != wireSum(body) {
		return nil, ErrChecksum
	}
	r := NewReader(body)
	if r.U8() != Magic || r.U8() != Version {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, ErrBadMagic
	}
	t := MsgType(r.U8())
	var msg any
	switch t {
	case TConnect:
		m := &Connect{}
		m.Name = r.String()
		m.FrameMs = r.U8()
		m.ProtocolVer = r.U8()
		m.Match = r.String()
		msg = m
	case TMove:
		m := &Move{}
		m.Seq = r.U32()
		m.Ack = r.U32()
		decodeMoveCmd(r, &m.Cmd)
		msg = m
	case TDisconnect:
		msg = &Disconnect{}
	case TPing:
		msg = &Ping{Nonce: r.U64()}
	case TAccept:
		m := &Accept{}
		m.ClientID = r.U16()
		m.EntityID = r.I32()
		m.MapName = r.String()
		m.Addr = r.String()
		msg = m
	case TReject:
		msg = &Reject{Reason: r.String()}
	case TSnapshot:
		m := &Snapshot{}
		m.Frame = r.U32()
		m.AckSeq = r.U32()
		m.BaseFrame = r.U32()
		m.ServerTime = r.U32()
		decodePlayerState(r, &m.You)
		var err error
		m.Delta, err = decodeDeltas(r)
		if err != nil {
			return nil, err
		}
		m.Events = decodeEvents(r)
		msg = m
	case TDisconnected:
		msg = &Disconnected{Reason: r.String()}
	case TPong:
		msg = &Pong{Nonce: r.U64()}
	default:
		return nil, fmt.Errorf("protocol: unknown message type %d", t)
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Remaining() > 0 {
		// Strict framing: a datagram is exactly one message. Trailing
		// bytes mean corruption (e.g. a bit-flipped count shrank the
		// parsed region) — reject rather than half-accept.
		return nil, ErrTrailing
	}
	return msg, nil
}

func encodeMoveCmd(w *Writer, c *MoveCmd) {
	w.I16(c.Pitch)
	w.I16(c.Yaw)
	w.I16(c.Forward)
	w.I16(c.Side)
	w.I16(c.Up)
	w.U8(c.Buttons)
	w.U8(c.Impulse)
	w.U8(c.Msec)
}

func decodeMoveCmd(r *Reader, c *MoveCmd) {
	c.Pitch = r.I16()
	c.Yaw = r.I16()
	c.Forward = r.I16()
	c.Side = r.I16()
	c.Up = r.I16()
	c.Buttons = r.U8()
	c.Impulse = r.U8()
	c.Msec = r.U8()
}

func encodeEvents(w *Writer, events []GameEvent) {
	if len(events) > maxSnapshotEvents {
		events = events[len(events)-maxSnapshotEvents:]
	}
	w.U8(uint8(len(events)))
	for _, e := range events {
		w.U8(e.Kind)
		w.U16(e.Actor)
		w.U16(e.Subject)
		w.I16(e.X)
		w.I16(e.Y)
		w.I16(e.Z)
	}
}

func decodeEvents(r *Reader) []GameEvent {
	n := int(r.U8())
	if n == 0 {
		return nil
	}
	out := make([]GameEvent, 0, n)
	for i := 0; i < n; i++ {
		var e GameEvent
		e.Kind = r.U8()
		e.Actor = r.U16()
		e.Subject = r.U16()
		e.X = r.I16()
		e.Y = r.I16()
		e.Z = r.I16()
		if r.Err() != nil {
			return nil
		}
		out = append(out, e)
	}
	return out
}

func encodePlayerState(w *Writer, p *PlayerState) {
	x, y, z := QuantizeVec(p.Origin)
	w.I16(x)
	w.I16(y)
	w.I16(z)
	vx, vy, vz := QuantizeVec(p.Velocity)
	w.I16(vx)
	w.I16(vy)
	w.I16(vz)
	w.I16(p.Health)
	w.I16(p.Armor)
	w.I16(p.Ammo)
	w.U8(p.Weapon)
	w.I16(p.Frags)
	w.U8(p.Flags)
}

func decodePlayerState(r *Reader, p *PlayerState) {
	p.Origin = DequantizeVec(r.I16(), r.I16(), r.I16())
	p.Velocity = DequantizeVec(r.I16(), r.I16(), r.I16())
	p.Health = r.I16()
	p.Armor = r.I16()
	p.Ammo = r.I16()
	p.Weapon = r.U8()
	p.Frags = r.I16()
	p.Flags = r.U8()
}
