package protocol

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"qserve/internal/geom"
)

func TestWriterReaderPrimitives(t *testing.T) {
	var w Writer
	w.U8(0xAB)
	w.U16(0x1234)
	w.U32(0xDEADBEEF)
	w.U64(0x0102030405060708)
	w.I16(-42)
	w.I32(-100000)
	w.F32(3.5)
	w.String("hello")

	r := NewReader(w.Bytes())
	if r.U8() != 0xAB || r.U16() != 0x1234 || r.U32() != 0xDEADBEEF ||
		r.U64() != 0x0102030405060708 || r.I16() != -42 || r.I32() != -100000 {
		t.Fatal("primitive round trip failed")
	}
	if r.F32() != 3.5 {
		t.Error("float round trip failed")
	}
	if r.String() != "hello" {
		t.Error("string round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Errorf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.U32()
	if r.Err() != ErrTruncated {
		t.Errorf("err = %v", r.Err())
	}
	// Subsequent reads keep returning zeros without panicking.
	if r.U64() != 0 || r.String() != "" {
		t.Error("post-error reads returned data")
	}
}

func TestReaderExpect(t *testing.T) {
	r := NewReader([]byte{7})
	r.Expect(7)
	if r.Err() != nil {
		t.Errorf("Expect match errored: %v", r.Err())
	}
	r2 := NewReader([]byte{7})
	r2.Expect(8)
	if r2.Err() == nil {
		t.Error("Expect mismatch did not error")
	}
}

func TestWriterStringTruncation(t *testing.T) {
	var w Writer
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	w.String(string(long))
	r := NewReader(w.Bytes())
	if got := r.String(); len(got) != 255 {
		t.Errorf("string length = %d, want 255", len(got))
	}
}

func TestAngleWireRoundTrip(t *testing.T) {
	for deg := 0.0; deg < 360; deg += 0.25 {
		w := AngleToWire(deg)
		back := WireToAngle(w)
		diff := math.Abs(geom.AngleDelta(deg, back))
		if diff > 360.0/65536+1e-9 {
			t.Fatalf("angle %v -> %v, diff %v", deg, back, diff)
		}
	}
}

func TestCoordQuantization(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 100.125, -2047.875, 2000.0625} {
		q := QuantizeCoord(v)
		back := DequantizeCoord(q)
		if math.Abs(back-v) > 1.0/CoordScale {
			t.Errorf("coord %v -> %v", v, back)
		}
	}
	if QuantizeCoord(1e9) != 32767 || QuantizeCoord(-1e9) != -32768 {
		t.Error("quantization does not saturate")
	}
}

func TestMoveCmdViewAngles(t *testing.T) {
	c := MoveCmd{Pitch: AngleToWire(-30), Yaw: AngleToWire(135)}
	a := c.ViewAngles()
	if math.Abs(a.X-(-30)) > 0.01 || math.Abs(a.Y-135) > 0.01 {
		t.Errorf("ViewAngles = %v", a)
	}
}

func encodeDecode(t *testing.T, msg any) any {
	t.Helper()
	var w Writer
	if err := Encode(&w, msg); err != nil {
		t.Fatalf("Encode(%T): %v", msg, err)
	}
	got, err := Decode(w.Bytes())
	if err != nil {
		t.Fatalf("Decode(%T): %v", msg, err)
	}
	return got
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []any{
		&Connect{Name: "bot-7", FrameMs: 33, ProtocolVer: 1},
		&Move{Seq: 12345, Ack: 999, Cmd: MoveCmd{
			Pitch: -100, Yaw: 5000, Forward: 320, Side: -100, Up: 25,
			Buttons: BtnFire | BtnJump, Impulse: 3, Msec: 33,
		}},
		&Disconnect{},
		&Ping{Nonce: 0xCAFEBABE12345678},
		&Accept{ClientID: 17, EntityID: 42, MapName: "gen-dm36", Addr: "127.0.0.1:27501"},
		&Reject{Reason: "server full"},
		&Disconnected{Reason: "timeout"},
		&Pong{Nonce: 77},
		&Snapshot{
			Frame: 100, AckSeq: 12345, ServerTime: 65000,
			You: PlayerState{
				Origin:   geom.V(100.125, -20.5, 48),
				Velocity: geom.V(320, 0, -100),
				Health:   75, Armor: 50, Ammo: 23, Weapon: 2, Frags: 7,
				Flags: PFOnGround,
			},
			Delta: []EntityDelta{
				{ID: 3, Bits: DNew, State: EntityState{ID: 3, Class: 1, X: 800, Y: 1600, Z: 200, Yaw: 128, Frame: 2, Effects: 1}},
				{ID: 5, Bits: DOrigin | DYaw, State: EntityState{ID: 5, X: 80, Y: 160, Z: 20, Yaw: 64}},
				{ID: 9, Bits: DRemove},
			},
		},
	}
	for _, msg := range msgs {
		got := encodeDecode(t, msg)
		if !reflect.DeepEqual(normalizeMsg(got), normalizeMsg(msg)) {
			t.Errorf("round trip %T:\n got  %+v\n want %+v", msg, got, msg)
		}
	}
}

// normalizeMsg re-quantizes float fields so DeepEqual compares wire
// precision, not raw floats.
func normalizeMsg(m any) any {
	if s, ok := m.(*Snapshot); ok {
		c := *s
		c.You.Origin = DequantizeVec(QuantizeVec(s.You.Origin))
		c.You.Velocity = DequantizeVec(QuantizeVec(s.You.Velocity))
		// Delta states for non-new entries only carry the flagged fields;
		// zero the rest for comparison.
		for i := range c.Delta {
			d := &c.Delta[i]
			if d.Bits&(DRemove) != 0 {
				d.State = EntityState{ID: d.ID}
				continue
			}
			if d.Bits&DNew != 0 {
				continue
			}
			masked := EntityState{ID: d.ID}
			if d.Bits&DOrigin != 0 {
				masked.X, masked.Y, masked.Z = d.State.X, d.State.Y, d.State.Z
			}
			if d.Bits&DYaw != 0 {
				masked.Yaw = d.State.Yaw
			}
			if d.Bits&DFrame != 0 {
				masked.Frame = d.State.Frame
			}
			if d.Bits&DEffects != 0 {
				masked.Effects = d.State.Effects
			}
			if d.Bits&DClass != 0 {
				masked.Class = d.State.Class
			}
			d.State = masked
		}
		return &c
	}
	return m
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1},
		{Magic},
		{Magic, Version},               // missing type
		{Magic, Version, 200},          // unknown type
		{0x00, Version, uint8(TPing)},  // bad magic
		{Magic, 99, uint8(TPing)},      // bad version
		{Magic, Version, uint8(TMove)}, // truncated move
		{Magic, Version, uint8(TSnapshot), 1, 2},
	}
	// The raw cases above mostly die on the checksum; re-checksum them so
	// the header and body validation they target is what rejects them.
	for _, data := range cases {
		if len(data) < 3 {
			continue
		}
		var w Writer
		w.Buf = append(w.Buf[:0], data...)
		w.U16(wireSum(data))
		cases = append(cases, append([]byte(nil), w.Bytes()...))
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: garbage decoded successfully", i)
		}
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 20000; i++ {
		n := r.Intn(64)
		data := make([]byte, n)
		r.Read(data)
		if r.Intn(2) == 0 && n >= 3 {
			// Bias toward valid headers to exercise body parsing.
			data[0] = Magic
			data[1] = Version
		}
		Decode(data) // must not panic
	}
}

func TestDecodeSnapshotEntityCountLimit(t *testing.T) {
	var w Writer
	w.U8(Magic)
	w.U8(Version)
	w.U8(uint8(TSnapshot))
	w.U32(1)
	w.U32(1)
	w.U32(1)
	encodePlayerState(&w, &PlayerState{})
	w.U16(65535) // absurd entity count
	w.U16(wireSum(w.Bytes()))
	if _, err := Decode(w.Bytes()); err == nil {
		t.Error("oversized entity count accepted")
	}
}

func randomEntityState(r *rand.Rand, id uint16) EntityState {
	return EntityState{
		ID:      id,
		Class:   uint8(r.Intn(5)),
		X:       int16(r.Intn(30000) - 15000),
		Y:       int16(r.Intn(30000) - 15000),
		Z:       int16(r.Intn(3000)),
		Yaw:     uint8(r.Intn(256)),
		Frame:   uint8(r.Intn(16)),
		Effects: uint8(r.Intn(4)),
	}
}

func randomEntityList(r *rand.Rand) []EntityState {
	n := r.Intn(40)
	var out []EntityState
	id := uint16(1)
	for i := 0; i < n; i++ {
		id += uint16(1 + r.Intn(5))
		out = append(out, randomEntityState(r, id))
	}
	return out
}

// TestDeltaRoundTripProperty: ApplyDelta(prev, DeltaEntities(prev, cur))
// must reconstruct cur exactly, for random list pairs including entity
// appearance, disappearance, and field churn.
func TestDeltaRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		prev := randomEntityList(r)
		// Derive cur from prev: mutate some, drop some, add some.
		var cur []EntityState
		for _, s := range prev {
			switch r.Intn(4) {
			case 0: // drop
			case 1: // mutate
				m := s
				m.X += int16(r.Intn(100) - 50)
				m.Frame = uint8(r.Intn(16))
				cur = append(cur, m)
			default: // keep
				cur = append(cur, s)
			}
		}
		maxID := uint16(1)
		if len(prev) > 0 {
			maxID = prev[len(prev)-1].ID + 1
		}
		for i := 0; i < r.Intn(5); i++ {
			cur = append(cur, randomEntityState(r, maxID+uint16(i*3)))
		}

		deltas := DeltaEntities(prev, cur)
		got, err := ApplyDelta(prev, deltas)
		if err != nil {
			t.Fatalf("trial %d: ApplyDelta: %v", trial, err)
		}
		if !reflect.DeepEqual(got, cur) && !(len(got) == 0 && len(cur) == 0) {
			t.Fatalf("trial %d:\nprev %v\ncur  %v\ngot  %v\ndelta %v", trial, prev, cur, got, deltas)
		}

		// And the wire round trip of the deltas themselves.
		var w Writer
		encodeDeltas(&w, deltas)
		back, err := decodeDeltas(NewReader(w.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: decodeDeltas: %v", trial, err)
		}
		got2, err := ApplyDelta(prev, back)
		if err != nil {
			t.Fatalf("trial %d: ApplyDelta(wire): %v", trial, err)
		}
		if !reflect.DeepEqual(got2, got) {
			t.Fatalf("trial %d: wire round trip diverged", trial)
		}
	}
}

func TestDeltaUnchangedIsEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	list := randomEntityList(r)
	if d := DeltaEntities(list, list); len(d) != 0 {
		t.Errorf("identical lists produced %d deltas", len(d))
	}
}

func TestApplyDeltaUnknownEntity(t *testing.T) {
	deltas := []EntityDelta{{ID: 99, Bits: DOrigin}}
	if _, err := ApplyDelta(nil, deltas); err == nil {
		t.Error("delta against unknown entity accepted")
	}
}

func TestEntityStateHelpers(t *testing.T) {
	var s EntityState
	s.SetOrigin(geom.V(100.125, -32.5, 48))
	if got := s.Origin(); !got.NearEq(geom.V(100.125, -32.5, 48), 1.0/CoordScale) {
		t.Errorf("origin round trip = %v", got)
	}
	s.SetYaw(90)
	if math.Abs(s.YawDegrees()-90) > 360.0/256 {
		t.Errorf("yaw round trip = %v", s.YawDegrees())
	}
	s.SetYaw(-45) // negative angles normalize
	if math.Abs(geom.AngleDelta(s.YawDegrees(), 315)) > 360.0/256 {
		t.Errorf("negative yaw = %v", s.YawDegrees())
	}
}

func TestEncodeUnknownType(t *testing.T) {
	var w Writer
	if err := Encode(&w, struct{}{}); err == nil {
		t.Error("unknown message type encoded")
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.U32(42)
	w.Reset()
	if len(w.Bytes()) != 0 {
		t.Error("reset did not clear")
	}
	w.U8(1)
	if len(w.Bytes()) != 1 {
		t.Error("writer unusable after reset")
	}
}

func BenchmarkEncodeSnapshot(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	prev := randomEntityList(r)
	cur := append([]EntityState(nil), prev...)
	for i := range cur {
		cur[i].X += 8
	}
	snap := &Snapshot{Frame: 1, Delta: DeltaEntities(prev, cur)}
	var w Writer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		Encode(&w, snap)
	}
}

func BenchmarkDecodeSnapshot(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	prev := randomEntityList(r)
	cur := append([]EntityState(nil), prev...)
	for i := range cur {
		cur[i].X += 8
	}
	snap := &Snapshot{Frame: 1, Delta: DeltaEntities(prev, cur)}
	var w Writer
	Encode(&w, snap)
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
