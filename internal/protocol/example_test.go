package protocol_test

import (
	"fmt"

	"qserve/internal/geom"
	"qserve/internal/protocol"
)

// Example encodes a move command into a datagram and decodes it back —
// the request half of the wire protocol.
func ExampleEncode() {
	move := &protocol.Move{
		Seq: 42,
		Cmd: protocol.MoveCmd{
			Yaw:     protocol.AngleToWire(90),
			Forward: 320,
			Buttons: protocol.BtnFire,
			Msec:    33,
		},
	}
	var w protocol.Writer
	if err := protocol.Encode(&w, move); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("datagram: %d bytes\n", len(w.Bytes()))

	msg, err := protocol.Decode(w.Bytes())
	if err != nil {
		fmt.Println(err)
		return
	}
	back := msg.(*protocol.Move)
	fmt.Printf("seq=%d yaw=%.0f forward=%d firing=%v msec=%d\n",
		back.Seq, back.Cmd.ViewAngles().Y, back.Cmd.Forward,
		back.Cmd.Buttons&protocol.BtnFire != 0, back.Cmd.Msec)

	// Output:
	// datagram: 26 bytes
	// seq=42 yaw=90 forward=320 firing=true msec=33
}

// ExampleDeltaEntities shows the snapshot compression: only changed
// entities cross the wire.
func ExampleDeltaEntities() {
	var a, b protocol.EntityState
	a.ID, b.ID = 1, 2
	a.SetOrigin(geom.V(100, 100, 50))
	b.SetOrigin(geom.V(200, 200, 50))
	prev := []protocol.EntityState{a, b}

	// Entity 1 moves; entity 2 is unchanged; entity 3 appears.
	moved := a
	moved.SetOrigin(geom.V(108, 100, 50))
	var c protocol.EntityState
	c.ID = 3
	c.SetOrigin(geom.V(300, 300, 50))
	cur := []protocol.EntityState{moved, b, c}

	deltas := protocol.DeltaEntities(prev, cur)
	for _, d := range deltas {
		switch {
		case d.Bits&protocol.DNew != 0:
			fmt.Printf("entity %d: new\n", d.ID)
		case d.Bits&protocol.DRemove != 0:
			fmt.Printf("entity %d: removed\n", d.ID)
		default:
			fmt.Printf("entity %d: updated\n", d.ID)
		}
	}

	restored, _ := protocol.ApplyDelta(prev, deltas)
	fmt.Printf("reconstructed %d entities\n", len(restored))

	// Output:
	// entity 1: updated
	// entity 3: new
	// reconstructed 3 entities
}
