package conformance

import (
	"fmt"
	"sync"
	"testing"

	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/protocol"
	"qserve/internal/replay"
	"qserve/internal/worldmap"
)

// The record/replay conformance arm extends TestCrossEngineConformance
// to INTERACTING workloads. The separated scenario above must avoid all
// player contact because free-running engines may interleave interacting
// commands differently; record/replay removes that restriction — the log
// fixes one global commit order and every engine must reproduce it
// bit-for-bit (DESIGN.md §11). Here players fight at close quarters:
// combat damage, projectiles, and deaths flow through the recorded
// stream, and the entity tables must still converge to one digest on
// every engine × thread count × balancing × stealing.

var (
	rrOnce sync.Once
	rrLog  *replay.Log
	rrRes  *replay.Result
	rrErr  error
)

func recordedBrawl(t *testing.T) (*replay.Log, *replay.Result) {
	t.Helper()
	rrOnce.Do(func() {
		m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
		if err != nil {
			rrErr = err
			return
		}
		const players = 6
		yaw := make([]int16, players)
		for i := range yaw {
			from := m.Spawns[i].Pos
			to := m.Spawns[(i+1)%players].Pos
			yaw[i] = protocol.AngleToWire(geom.VecToAngles(to.Sub(from)).Y)
		}
		rrLog, rrRes, rrErr = replay.RecordSession(m, 1337,
			replay.LiveConfig{Threads: 8, Balance: true, Stealing: true},
			replay.SessionScript{
				Players: players,
				Moves:   40,
				TickNs:  33_000_000,
				Cmd: func(idx int, seq int64) protocol.MoveCmd {
					cmd := protocol.MoveCmd{Yaw: yaw[idx], Forward: 100, Msec: 33}
					if (seq/4)%2 == 1 {
						cmd.Forward = -100
					}
					if seq == 1 && idx%2 == 0 {
						cmd.Impulse = 2
					}
					if seq%3 == int64(idx%3) {
						cmd.Buttons |= protocol.BtnFire
					}
					return cmd
				},
			})
	})
	if rrErr != nil {
		t.Fatal(rrErr)
	}
	return rrLog, rrRes
}

// TestRecordReplayConformance records one interacting brawl on the
// widest live configuration and replays it through the full engine
// matrix, asserting bit-identical entity tables everywhere and
// bit-identical reply streams on the live engines.
func TestRecordReplayConformance(t *testing.T) {
	lg, rec := recordedBrawl(t)

	// The brawl must actually interact, or this arm proves nothing
	// beyond the separated scenario.
	damaged := false
	rec.World.Ents.ForEachClass(entity.ClassPlayer, func(e *entity.Entity) {
		if e.Health < 100 || e.Deaths > 0 {
			damaged = true
		}
	})
	if !damaged {
		t.Fatal("brawl scenario produced no damage; the interaction claim is untested")
	}
	if !rec.EndDigestMatch {
		t.Fatal("recording does not match its own end digest")
	}

	t.Run("live-sequential", func(t *testing.T) {
		assertReplayMatches(t, lg, rec, replay.LiveConfig{Threads: 0})
	})
	for _, threads := range []int{2, 4, 8} {
		for _, balanced := range []bool{false, true} {
			for _, stealing := range []bool{false, true} {
				lc := replay.LiveConfig{Threads: threads, Balance: balanced, Stealing: stealing}
				t.Run(fmt.Sprintf("live-parallel/threads=%d/balance=%v/steal=%v", threads, balanced, stealing), func(t *testing.T) {
					assertReplayMatches(t, lg, rec, lc)
				})
				t.Run(fmt.Sprintf("des/threads=%d/balance=%v/steal=%v", threads, balanced, stealing), func(t *testing.T) {
					res, err := replay.ReplayDES(lg, lc)
					if err != nil {
						t.Fatal(err)
					}
					if res.TableDigest != rec.TableDigest {
						t.Fatalf("DES entity table diverged: recorded %016x, got %016x", rec.TableDigest, res.TableDigest)
					}
					if !res.EndDigestMatch {
						t.Fatal("DES replay does not match the log's end digest")
					}
				})
			}
		}
	}
	t.Run("des/sequential", func(t *testing.T) {
		res, err := replay.ReplayDES(lg, replay.LiveConfig{Threads: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.TableDigest != rec.TableDigest {
			t.Fatalf("sequential DES diverged: recorded %016x, got %016x", rec.TableDigest, res.TableDigest)
		}
	})
}

func assertReplayMatches(t *testing.T, lg *replay.Log, rec *replay.Result, lc replay.LiveConfig) {
	t.Helper()
	res, err := replay.ReplayLive(lg, lc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TableDigest != rec.TableDigest {
		t.Fatalf("entity table diverged: recorded %016x, got %016x", rec.TableDigest, res.TableDigest)
	}
	if res.StreamDigest != rec.StreamDigest {
		t.Fatalf("reply stream diverged: recorded %016x, got %016x", rec.StreamDigest, res.StreamDigest)
	}
	if !res.EndDigestMatch {
		t.Fatal("replay does not match the log's end digest")
	}
	if res.IDMismatches != 0 {
		t.Fatalf("%d entity-ID mismatches in a lockstep-recorded log", res.IDMismatches)
	}
}
