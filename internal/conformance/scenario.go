// Package conformance proves that the three engines — sequential live,
// parallel live (mem transport), and discrete-event (simserver) —
// compute the same game. One seeded scenario (a map, a deterministic
// per-client move script, N moves per client) is driven through each
// engine and the end-of-run player entity tables must match exactly:
// positions, velocities, health, inventories, frag counts.
//
// Bit-exact equality across engines with different threading, frame
// composition, and clocks is only possible because the scenario is
// constructed to make every player's state a pure function of its own
// move sequence: players oscillate near their separated spawns (never
// interacting with each other, items, teleporters, or door triggers),
// move duration comes from the command's Msec rather than wall time,
// and nothing fires. BuildScenario *asserts* the separation invariants
// rather than assuming them, scanning map seeds until one satisfies
// all of them. The per-run sanity check that no player drifted outside
// its assumed reach box lives in the test driver.
//
// The suite is the regression net under the dynamic load balancer: a
// migration moves a client's thread ownership, endpoint routing, and
// reply baseline, and none of that may change game outcomes. The
// table runs every engine with balancing off and with the balancer
// forced to migrate every frame.
package conformance

import (
	"fmt"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/geom"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// reachRadius is how far from its spawn point a scripted player is
// assumed to get. Wish speed is |Forward| = 80 units/s and each command
// lasts 33ms, reversing every three commands, so the excursion is a few
// units plus acceleration overshoot; 40 leaves a ~4x margin while still
// letting the default map's rooms hold a separated spawn. Separation
// margins below are derived from it; the test driver checks the
// assumption against actual end positions.
const reachRadius = 40

// Scenario is one fully-specified conformance run.
type Scenario struct {
	Map       *worldmap.Map
	WorldSeed int64
	Players   int
	Moves     int
}

// Script returns client idx's move number seq (0-based). The command
// depends only on (idx, seq): fixed per-client yaw, forward speed
// oscillating ±80 with period 6, fixed 33ms duration, no buttons.
func (s *Scenario) Script(idx int, seq int64) protocol.MoveCmd {
	fwd := int16(80)
	if (seq/3)%2 == 1 {
		fwd = -80
	}
	return protocol.MoveCmd{
		Yaw:     protocol.AngleToWire(float64((idx * 53) % 360)),
		Forward: fwd,
		Msec:    33,
	}
}

// PlayerState is the comparable end-of-run state of one player.
type PlayerState struct {
	ID         entity.ID
	Origin     geom.Vec3
	Velocity   geom.Vec3
	Angles     geom.Vec3
	OnGround   bool
	Health     int
	Armor      int
	Frags      int
	Deaths     int
	Weapon     uint8
	Weapons    uint16
	Ammo       int
	HasPowerup bool
	RoomID     int
	ModelFrame uint8
}

// PlayerTable extracts the player rows from a world, in entity-ID order
// (spawn order, identical across engines because every driver admits
// players sequentially).
func (s *Scenario) PlayerTable(w *game.World) []PlayerState {
	var out []PlayerState
	w.Ents.ForEachClass(entity.ClassPlayer, func(e *entity.Entity) {
		out = append(out, PlayerState{
			ID:         e.ID,
			Origin:     e.Origin,
			Velocity:   e.Velocity,
			Angles:     e.Angles,
			OnGround:   e.OnGround,
			Health:     e.Health,
			Armor:      e.Armor,
			Frags:      e.Frags,
			Deaths:     e.Deaths,
			Weapon:     e.Weapon,
			Weapons:    e.Weapons,
			Ammo:       e.Ammo,
			HasPowerup: e.HasPowerup,
			RoomID:     e.RoomID,
			ModelFrame: e.ModelFrame,
		})
	})
	for i := 1; i < len(out); i++ { // ForEachClass visits in ID order already; keep it proven
		if out[i].ID < out[i-1].ID {
			panic("conformance: entity table not in ID order")
		}
	}
	return out
}

// BuildScenario finds a map whose first `players` spawn points satisfy
// every separation invariant the script's determinism argument needs,
// and returns the scenario. It scans generation seeds; failing to find
// one within the scan budget is an error (it would mean the map
// generator's layout changed enough to need new margins, not a flaky
// environment).
func BuildScenario(players, moves int) (*Scenario, error) {
	base := worldmap.DefaultConfig()
	// The scenario must not touch pickups or teleporters, and with ~3
	// random items per room almost every spawn would sit within reach of
	// one — so generate the conformance map without them. checkSeparation
	// still verifies the resulting map (and doors, which stay in).
	base.ItemsPerRoom = 0
	base.TeleporterPairs = 0
	var lastErr error
	for seed := int64(1); seed <= 64; seed++ {
		cfg := base
		cfg.Seed = seed
		m, err := worldmap.Generate(cfg)
		if err != nil {
			lastErr = err
			continue
		}
		if err := checkSeparation(m, players); err != nil {
			lastErr = fmt.Errorf("map seed %d: %w", seed, err)
			continue
		}
		return &Scenario{Map: m, WorldSeed: 1000 + seed, Players: players, Moves: moves}, nil
	}
	return nil, fmt.Errorf("conformance: no map seed in scan budget satisfies separation: last: %w", lastErr)
}

// checkSeparation verifies that each of the first `players` spawns,
// expanded by the assumed reach, stays clear of every interaction the
// scenario must not trigger.
func checkSeparation(m *worldmap.Map, players int) error {
	if len(m.Spawns) < players {
		return fmt.Errorf("map has %d spawns, need %d", len(m.Spawns), players)
	}
	reach := make([]geom.AABB, players)
	for i := 0; i < players; i++ {
		sp := m.Spawns[i]
		// Players spawn slightly above the point and drop to the floor;
		// expanding the hull box by reachRadius covers both the drop and
		// the scripted oscillation.
		hull := geom.BoxHull(sp.Pos, entity.PlayerMins, entity.PlayerMaxs)
		reach[i] = hull.Expand(reachRadius)
	}
	for i := 0; i < players; i++ {
		for j := i + 1; j < players; j++ {
			if reach[i].Intersects(reach[j]) {
				return fmt.Errorf("players %d and %d can reach each other", i, j)
			}
		}
		for k, item := range m.Items {
			box := geom.BoxHull(item.Pos, entity.ItemMins, entity.ItemMaxs)
			if reach[i].Intersects(box) {
				return fmt.Errorf("player %d can reach item %d", i, k)
			}
		}
		for k, tp := range m.Teleporters {
			if reach[i].Intersects(tp.Trigger) {
				return fmt.Errorf("player %d can reach teleporter %d", i, k)
			}
		}
		for k, d := range m.Doors {
			trigger := d.Panel.Expand(d.TriggerRadius)
			if reach[i].Intersects(trigger) {
				return fmt.Errorf("player %d can trigger door %d", i, k)
			}
		}
	}
	return nil
}

// Diff returns a human-readable description of the first differences
// between two player tables, or "" when identical.
func Diff(want, got []PlayerState) string {
	if len(want) != len(got) {
		return fmt.Sprintf("player count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("player %d:\n  want %+v\n  got  %+v", i, want[i], got[i])
		}
	}
	return ""
}
