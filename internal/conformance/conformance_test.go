package conformance

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qserve/internal/balance"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/simserver"
	"qserve/internal/transport"
)

const (
	confPlayers = 6
	confMoves   = 60
)

var (
	scOnce sync.Once
	scVal  *Scenario
	scErr  error
)

func scenario(t *testing.T) *Scenario {
	t.Helper()
	scOnce.Do(func() { scVal, scErr = BuildScenario(confPlayers, confMoves) })
	if scErr != nil {
		t.Fatal(scErr)
	}
	return scVal
}

// forcedBalance migrates every frame: the strongest exercise of the
// migration machinery the conformance claim must survive.
func forcedBalance() balance.Policy {
	return balance.Policy{Enabled: true, EveryFrame: true, MaxMigrations: 4}
}

// lockClient is a raw-protocol lockstep client: send one move, wait for
// its acknowledging snapshot, repeat. At most one command is ever in
// flight, so engine-side frame composition cannot reorder a client's
// own moves.
type lockClient struct {
	idx    int
	conn   transport.Conn
	server transport.Addr
	buf    []byte
	w      protocol.Writer
}

func (lc *lockClient) send(t *testing.T, msg any) {
	t.Helper()
	lc.w.Reset()
	if err := protocol.Encode(&lc.w, msg); err != nil {
		t.Fatalf("client %d: encode: %v", lc.idx, err)
	}
	if err := lc.conn.Send(lc.server, lc.w.Bytes()); err != nil {
		t.Fatalf("client %d: send: %v", lc.idx, err)
	}
}

func (lc *lockClient) connect(t *testing.T) {
	t.Helper()
	lc.send(t, &protocol.Connect{Name: fmt.Sprintf("conf-%d", lc.idx), FrameMs: 33, ProtocolVer: protocol.Version})
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, _, err := lc.conn.Recv(lc.buf, time.Until(deadline))
		if err != nil {
			t.Fatalf("client %d: connect: %v", lc.idx, err)
		}
		msg, err := protocol.Decode(lc.buf[:n])
		if err != nil {
			continue
		}
		switch m := msg.(type) {
		case *protocol.Accept:
			addr, err := transport.ResolveLike(lc.conn, m.Addr)
			if err != nil {
				t.Fatalf("client %d: bad accept addr %q: %v", lc.idx, m.Addr, err)
			}
			lc.server = addr
			return
		case *protocol.Reject:
			t.Fatalf("client %d: rejected: %s", lc.idx, m.Reason)
		}
	}
}

func (lc *lockClient) awaitAck(t *testing.T, seq uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, _, err := lc.conn.Recv(lc.buf, time.Until(deadline))
		if err != nil {
			t.Fatalf("client %d: waiting for ack of seq %d: %v", lc.idx, seq, err)
		}
		msg, err := protocol.Decode(lc.buf[:n])
		if err != nil {
			continue
		}
		if snap, ok := msg.(*protocol.Snapshot); ok && snap.AckSeq == seq {
			return
		}
	}
}

type liveEngine interface {
	Start()
	Stop()
}

// runLive drives the scenario through a live engine over the mem
// transport. threads == 0 selects the sequential engine; stealing turns
// on the work-stealing request scheduler.
func runLive(t *testing.T, sc *Scenario, threads int, pol balance.Policy, stealing bool) []PlayerState {
	t.Helper()
	world, err := game.NewWorld(game.Config{Map: sc.Map, Seed: sc.WorldSeed})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	nConns := threads
	if nConns == 0 {
		nConns = 1
	}
	conns := make([]transport.Conn, nConns)
	for i := range conns {
		c, err := net.Listen(fmt.Sprintf("srv:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	cfg := server.Config{
		World:         world,
		Conns:         conns,
		Threads:       threads,
		MaxClients:    sc.Players + 2,
		SelectTimeout: 2 * time.Millisecond,
		Balance:       pol,
		Stealing:      stealing,
	}
	var eng liveEngine
	var par *server.Parallel
	if threads == 0 {
		seq, err := server.NewSequential(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng = seq
	} else {
		par, err = server.NewParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng = par
	}
	eng.Start()
	defer eng.Stop()

	clients := make([]*lockClient, sc.Players)
	for i := range clients {
		conn, err := net.Listen(fmt.Sprintf("conf-bot:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = &lockClient{
			idx:    i,
			conn:   conn,
			server: transport.MemAddr("srv:0"),
			buf:    make([]byte, 4*transport.MaxDatagram),
		}
		// Sequential admission: entity IDs must follow client index in
		// every engine.
		clients[i].connect(t)
	}
	for k := 0; k < sc.Moves; k++ {
		seq := uint32(k + 1)
		for i, lc := range clients {
			lc.send(t, &protocol.Move{Seq: seq, Cmd: sc.Script(i, int64(k))})
		}
		for _, lc := range clients {
			lc.awaitAck(t, seq)
		}
	}
	eng.Stop()
	if par != nil && pol.Enabled {
		if par.Migrations() == 0 {
			t.Fatal("balance-on run performed no migrations: the conformance table is not exercising migration")
		}
	}
	return sc.PlayerTable(world)
}

// runDES drives the scenario through the discrete-event engine.
func runDES(t *testing.T, sc *Scenario, threads int, sequential bool, pol balance.Policy, stealing bool) []PlayerState {
	t.Helper()
	res, err := simserver.Run(simserver.Config{
		Map:           sc.Map,
		Players:       sc.Players,
		Threads:       threads,
		Sequential:    sequential,
		Seed:          sc.WorldSeed,
		DurationS:     4,
		ClientFrameMs: 33,
		Script:        sc.Script,
		MaxMoves:      int64(sc.Moves),
		Balance:       pol,
		Stealing:      stealing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != int64(sc.Players*sc.Moves) {
		t.Fatalf("DES executed %d requests, want %d", res.Requests, sc.Players*sc.Moves)
	}
	if pol.Enabled && res.Migrations == 0 {
		t.Fatal("balance-on DES run performed no migrations")
	}
	return sc.PlayerTable(res.World)
}

// TestCrossEngineConformance is the headline test: one seeded scenario
// through every engine × {2,4,8} threads × {balance off, balancer
// forced to migrate every frame} must yield identical end-of-run player
// tables. The live sequential engine is the reference.
func TestCrossEngineConformance(t *testing.T) {
	sc := scenario(t)
	want := runLive(t, sc, 0, balance.Policy{}, false)
	if len(want) != sc.Players {
		t.Fatalf("reference run has %d players, want %d", len(want), sc.Players)
	}
	for i, p := range want {
		// The scenario argument requires players to stay inside the reach
		// boxes the separation check used; verify, don't assume.
		sp := sc.Map.Spawns[i].Pos
		if d := p.Origin.Sub(sp).Flat().Len(); d > reachRadius-16 {
			t.Fatalf("player %d drifted %.1f units from spawn; reach margin %d is unsound", i, d, reachRadius)
		}
		if p.Health != 100 || p.Deaths != 0 {
			t.Fatalf("player %d took damage (health=%d deaths=%d); scenario is not interaction-free", i, p.Health, p.Deaths)
		}
	}

	for _, threads := range []int{2, 4, 8} {
		for _, balanced := range []bool{false, true} {
			for _, stealing := range []bool{false, true} {
				pol := balance.Policy{}
				if balanced {
					pol = forcedBalance()
				}
				threads, pol, stealing := threads, pol, stealing
				t.Run(fmt.Sprintf("live-parallel/threads=%d/balance=%v/steal=%v", threads, balanced, stealing), func(t *testing.T) {
					got := runLive(t, sc, threads, pol, stealing)
					if d := Diff(want, got); d != "" {
						t.Fatalf("parallel live diverged from sequential reference:\n%s", d)
					}
				})
				t.Run(fmt.Sprintf("des/threads=%d/balance=%v/steal=%v", threads, balanced, stealing), func(t *testing.T) {
					got := runDES(t, sc, threads, false, pol, stealing)
					if d := Diff(want, got); d != "" {
						t.Fatalf("DES diverged from sequential reference:\n%s", d)
					}
				})
			}
		}
	}
	t.Run("des/sequential", func(t *testing.T) {
		got := runDES(t, sc, 1, true, balance.Policy{}, false)
		if d := Diff(want, got); d != "" {
			t.Fatalf("sequential DES diverged from sequential reference:\n%s", d)
		}
	})
}

// TestScenarioSeparationIsChecked documents that BuildScenario fails
// loudly when asked for more separated players than the map can offer,
// instead of silently producing an interacting scenario.
func TestScenarioSeparationIsChecked(t *testing.T) {
	if _, err := BuildScenario(10_000, 1); err == nil {
		t.Fatal("BuildScenario accepted an impossible separation request")
	}
}
