package physics

import (
	"math"
	"math/rand"
	"testing"

	"qserve/internal/collide"
	"qserve/internal/geom"
	"qserve/internal/worldmap"
)

// testEnv builds a collision world and a hull trace function for the
// standard player hull.
func testEnv(t testing.TB) (*collide.Tree, *worldmap.Map, TraceFunc) {
	t.Helper()
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	boxes := make([]geom.AABB, len(m.Brushes))
	for i, b := range m.Brushes {
		boxes[i] = b.Box
	}
	tree := collide.NewTree(boxes, m.Bounds)
	he := geom.V(16, 16, 28)
	off := geom.V(0, 0, 4) // hull center offset for mins(-24)/maxs(+32)
	trace := func(a, b geom.Vec3) collide.Trace {
		tr := tree.TraceBox(a.Add(off), b.Add(off), he, nil)
		tr.End = tr.End.Sub(off)
		return tr
	}
	return tree, m, trace
}

func standAt(m *worldmap.Map, room int) geom.Vec3 {
	c := m.Rooms[room].Bounds.Center()
	c.Z = 25
	return c
}

func TestFallToGround(t *testing.T) {
	_, m, trace := testEnv(t)
	st := &State{Origin: standAt(m, 0).Add(geom.V(0, 0, 80))}
	p := DefaultParams()
	landed := false
	for i := 0; i < 200; i++ {
		PlayerMove(p, trace, st, Cmd{}, 0.03)
		if st.OnGround {
			landed = true
			break
		}
	}
	if !landed {
		t.Fatalf("never landed; origin=%v", st.Origin)
	}
	// Feet (origin-24) should rest essentially on the floor plane z=0.
	if feet := st.Origin.Z - 24; feet < -0.5 || feet > 2 {
		t.Errorf("resting feet height = %v", feet)
	}
	if st.Velocity.Z != 0 {
		t.Errorf("vertical velocity after landing = %v", st.Velocity.Z)
	}
}

func TestWalkAcceleratesToMaxSpeed(t *testing.T) {
	_, m, trace := testEnv(t)
	st := &State{Origin: standAt(m, 0), OnGround: true}
	p := DefaultParams()
	cmd := Cmd{WishDir: geom.V(1, 0, 0), WishSpeed: p.MaxSpeed}
	for i := 0; i < 100; i++ {
		PlayerMove(p, trace, st, cmd, 0.03)
	}
	speed := st.Velocity.Flat().Len()
	if speed < p.MaxSpeed*0.9 || speed > p.MaxSpeed*1.01 {
		t.Errorf("cruise speed = %v, want ~%v", speed, p.MaxSpeed)
	}
}

func TestFrictionStopsPlayer(t *testing.T) {
	_, m, trace := testEnv(t)
	st := &State{Origin: standAt(m, 0), OnGround: true, Velocity: geom.V(300, 0, 0)}
	p := DefaultParams()
	for i := 0; i < 100; i++ {
		PlayerMove(p, trace, st, Cmd{}, 0.03)
	}
	if s := st.Velocity.Flat().Len(); s > 1 {
		t.Errorf("speed after coasting = %v, want ~0", s)
	}
}

func TestWallBlocksAndSlides(t *testing.T) {
	_, m, trace := testEnv(t)
	p := DefaultParams()
	// Sprint diagonally into the west outer wall: x motion must stop at
	// the wall, y motion must continue (slide).
	st := &State{Origin: standAt(m, 0), OnGround: true}
	cmd := Cmd{WishDir: geom.V(-1, 0.3, 0).Norm(), WishSpeed: p.MaxSpeed}
	var firstBlocked geom.Vec3
	for i := 0; i < 200; i++ {
		res := PlayerMove(p, trace, st, cmd, 0.03)
		if res.Blocked && firstBlocked.IsZero() {
			firstBlocked = st.Origin
		}
	}
	// The hull must never leave the world or enter the wall: hull min x
	// >= interior min (0) within epsilon.
	if st.Origin.X-16 < -0.1 {
		t.Errorf("player penetrated west wall: origin=%v", st.Origin)
	}
	if firstBlocked.IsZero() {
		t.Fatal("never hit the wall")
	}
	if st.Origin.Y <= firstBlocked.Y {
		t.Errorf("no slide along wall: y stayed at %v", st.Origin.Y)
	}
}

func TestJumpLeavesGroundAndLands(t *testing.T) {
	_, m, trace := testEnv(t)
	p := DefaultParams()
	st := &State{Origin: standAt(m, 0), OnGround: true}
	res := PlayerMove(p, trace, st, Cmd{Jump: true}, 0.03)
	if !res.Jumped {
		t.Fatal("jump not initiated")
	}
	if st.OnGround {
		t.Fatal("still on ground immediately after jump")
	}
	peak := st.Origin.Z
	landed := false
	for i := 0; i < 300; i++ {
		PlayerMove(p, trace, st, Cmd{}, 0.03)
		peak = math.Max(peak, st.Origin.Z)
		if st.OnGround {
			landed = true
			break
		}
	}
	if !landed {
		t.Fatal("never landed after jump")
	}
	if rise := peak - 25; rise < 20 {
		t.Errorf("jump rise = %v units, too small", rise)
	}
	// Ceiling is at 192; head (origin+32) must stay below it.
	if peak+32 > 192.1 {
		t.Errorf("jump peak %v penetrates ceiling", peak)
	}
}

// TestNeverEndsInSolid is the core safety property: random movement
// commands never leave the hull embedded in world geometry.
func TestNeverEndsInSolid(t *testing.T) {
	tree, m, trace := testEnv(t)
	p := DefaultParams()
	r := rand.New(rand.NewSource(21))
	he := geom.V(16, 16, 28)
	off := geom.V(0, 0, 4)
	for trial := 0; trial < 20; trial++ {
		st := &State{Origin: standAt(m, r.Intn(len(m.Rooms)))}
		for step := 0; step < 150; step++ {
			yaw := r.Float64() * 360
			dir := geom.Forward(geom.V(0, yaw, 0))
			cmd := Cmd{WishDir: dir, WishSpeed: p.MaxSpeed, Jump: r.Intn(10) == 0}
			PlayerMove(p, trace, st, cmd, 0.01+r.Float64()*0.05)
			hull := geom.BoxAt(st.Origin.Add(off), he)
			if tree.BoxSolid(hull.Expand(-0.1), nil) {
				t.Fatalf("trial %d step %d: hull %v in solid", trial, step, hull)
			}
			if !m.Bounds.Contains(st.Origin) {
				t.Fatalf("trial %d step %d: escaped world at %v", trial, step, st.Origin)
			}
		}
	}
}

func TestSpeedNeverExceedsClamp(t *testing.T) {
	_, m, trace := testEnv(t)
	p := DefaultParams()
	st := &State{Origin: standAt(m, 0), Velocity: geom.V(5000, -9000, 4000)}
	PlayerMove(p, trace, st, Cmd{}, 0.03)
	v := st.Velocity.Abs()
	if v.X > p.MaxVelocity || v.Y > p.MaxVelocity || v.Z > p.MaxVelocity+p.Gravity {
		t.Errorf("velocity %v exceeds clamp", st.Velocity)
	}
}

func TestAirControlWeakerThanGround(t *testing.T) {
	_, m, trace := testEnv(t)
	p := DefaultParams()
	cmd := Cmd{WishDir: geom.V(1, 0, 0), WishSpeed: p.MaxSpeed}

	ground := &State{Origin: standAt(m, 0), OnGround: true}
	PlayerMove(p, trace, ground, cmd, 0.03)

	air := &State{Origin: standAt(m, 0).Add(geom.V(0, 0, 60))}
	PlayerMove(p, trace, air, cmd, 0.03)

	if air.Velocity.X >= ground.Velocity.X {
		t.Errorf("air accel %v >= ground accel %v", air.Velocity.X, ground.Velocity.X)
	}
}

func TestZeroDtIsNoOp(t *testing.T) {
	_, m, trace := testEnv(t)
	st := &State{Origin: standAt(m, 0), Velocity: geom.V(100, 0, 0), OnGround: true}
	before := *st
	res := PlayerMove(DefaultParams(), trace, st, Cmd{WishDir: geom.V(1, 0, 0), WishSpeed: 320}, 0)
	if *st != before || res.Traces != 0 {
		t.Errorf("zero-dt move changed state: %+v", st)
	}
}

func TestProjectileHitsWall(t *testing.T) {
	tree, m, _ := testEnv(t)
	he := geom.V(4, 4, 4)
	trace := func(a, b geom.Vec3) collide.Trace {
		return tree.TraceBox(a, b, he, nil)
	}
	c := standAt(m, 0)
	c.Z = 60
	st := &State{Origin: c, Velocity: geom.V(-2000, 0, 0)} // into the west wall
	var hit bool
	for i := 0; i < 50; i++ {
		fr := ProjectileMove(0, trace, st, 0.03)
		if fr.Trace.Hit {
			hit = true
			if fr.Trace.Normal != geom.V(1, 0, 0) {
				t.Errorf("impact normal = %v", fr.Trace.Normal)
			}
			break
		}
	}
	if !hit {
		t.Fatal("projectile never hit the wall")
	}
	if st.Origin.X-4 < -0.2 {
		t.Errorf("projectile penetrated wall: %v", st.Origin)
	}
}

func TestProjectileGravityArcs(t *testing.T) {
	tree, m, _ := testEnv(t)
	trace := func(a, b geom.Vec3) collide.Trace {
		return tree.TraceBox(a, b, geom.V(4, 4, 4), nil)
	}
	c := standAt(m, 0)
	c.Z = 100
	st := &State{Origin: c, Velocity: geom.V(50, 0, 0)}
	ProjectileMove(800, trace, st, 0.1)
	if st.Velocity.Z >= 0 {
		t.Error("gravity did not pull projectile down")
	}
}

func TestMaxMoveDistance(t *testing.T) {
	p := DefaultParams()
	d30 := MaxMoveDistance(p, 30)
	if d30 < p.MaxSpeed*0.03 {
		t.Errorf("30ms distance %v below horizontal bound", d30)
	}
	d100 := MaxMoveDistance(p, 100)
	if d100 <= d30 {
		t.Error("move distance not monotone in duration")
	}
}

func TestClipVelocityRemovesNormalComponent(t *testing.T) {
	v := geom.V(100, 50, -30)
	n := geom.V(0, 0, 1)
	c := clipVelocity(v, n)
	if c.Dot(n) < -1e-9 {
		t.Errorf("clipped velocity still into plane: %v", c)
	}
	if math.Abs(c.X-100) > 1e-9 || math.Abs(c.Y-50) > 1e-9 {
		t.Errorf("tangential components changed: %v", c)
	}
}

func TestClipAgainstCrease(t *testing.T) {
	// Two walls meeting at a right angle: velocity into the corner must
	// not retain any component into either plane.
	planes := []geom.Vec3{{X: 1}, {Y: 1}}
	v := geom.V(-100, -100, 0)
	c := clipAgainstPlanes(v, planes)
	if c.Dot(planes[0]) < -1e-9 || c.Dot(planes[1]) < -1e-9 {
		t.Errorf("crease clip leaves penetration: %v", c)
	}
}

func BenchmarkPlayerMove(b *testing.B) {
	_, m, trace := testEnv(b)
	p := DefaultParams()
	st := &State{Origin: standAt(m, 0), OnGround: true}
	cmd := Cmd{WishDir: geom.V(1, 0.2, 0).Norm(), WishSpeed: p.MaxSpeed}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlayerMove(p, trace, st, cmd, 0.03)
		if i%100 == 99 {
			st.Origin = standAt(m, 0) // reset to avoid drifting into walls
			st.Velocity = geom.Vec3{}
		}
	}
}
