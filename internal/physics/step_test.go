package physics

import (
	"testing"

	"qserve/internal/collide"
	"qserve/internal/geom"
)

// stairEnv builds a hand-made world: a floor with a low ledge (stairs)
// and a tall wall, to exercise the step-up path directly.
func stairEnv(ledgeHeight float64) (*collide.Tree, TraceFunc) {
	brushes := []geom.AABB{
		// Floor.
		geom.Box(geom.V(-512, -512, -16), geom.V(512, 512, 0)),
		// Ledge starting at x=100.
		geom.Box(geom.V(100, -512, 0), geom.V(512, 512, ledgeHeight)),
		// Tall wall at x=400.
		geom.Box(geom.V(400, -512, 0), geom.V(416, 512, 512)),
	}
	bounds := geom.Box(geom.V(-512, -512, -16), geom.V(512, 512, 512))
	tree := collide.NewTree(brushes, bounds)
	he := geom.V(16, 16, 28)
	off := geom.V(0, 0, 4)
	trace := func(a, b geom.Vec3) collide.Trace {
		tr := tree.TraceBox(a.Add(off), b.Add(off), he, nil)
		tr.End = tr.End.Sub(off)
		return tr
	}
	return tree, trace
}

func TestStepUpLowLedge(t *testing.T) {
	p := DefaultParams()
	_, trace := stairEnv(12) // below StepHeight (18)
	st := &State{Origin: geom.V(0, 0, 25), OnGround: true}
	cmd := Cmd{WishDir: geom.V(1, 0, 0), WishSpeed: p.MaxSpeed}
	stepped := false
	for i := 0; i < 120; i++ {
		res := PlayerMove(p, trace, st, cmd, 0.03)
		stepped = stepped || res.Stepped
		if st.Origin.X > 200 {
			break
		}
	}
	if st.Origin.X < 150 {
		t.Fatalf("player stuck before the ledge at %v", st.Origin)
	}
	// Standing on top of the ledge: feet at ledge height.
	if feet := st.Origin.Z - 24; feet < 11 || feet > 14 {
		t.Errorf("feet at %v after stepping 12-unit ledge", feet)
	}
	if !stepped {
		t.Error("step-up path never taken")
	}
}

func TestNoStepUpHighLedge(t *testing.T) {
	p := DefaultParams()
	_, trace := stairEnv(40) // far above StepHeight
	st := &State{Origin: geom.V(0, 0, 25), OnGround: true}
	cmd := Cmd{WishDir: geom.V(1, 0, 0), WishSpeed: p.MaxSpeed}
	for i := 0; i < 120; i++ {
		PlayerMove(p, trace, st, cmd, 0.03)
	}
	// Blocked at the ledge face (x=100 minus half hull).
	if st.Origin.X > 100 {
		t.Errorf("player climbed a 40-unit ledge: %v", st.Origin)
	}
	// But can jump onto it.
	st.Velocity = geom.Vec3{}
	jumped := false
	for i := 0; i < 200; i++ {
		c := cmd
		if st.OnGround && !jumped {
			c.Jump = true
		}
		res := PlayerMove(p, trace, st, c, 0.03)
		jumped = jumped || res.Jumped
		if st.Origin.X > 140 && st.OnGround {
			break
		}
	}
	if st.Origin.X < 110 || st.Origin.Z-24 < 38 {
		t.Errorf("jump onto ledge failed: %v", st.Origin)
	}
}

func TestWalkIntoTallWallStops(t *testing.T) {
	p := DefaultParams()
	_, trace := stairEnv(12)
	st := &State{Origin: geom.V(300, 0, 25+12), OnGround: true}
	cmd := Cmd{WishDir: geom.V(1, 0, 0), WishSpeed: p.MaxSpeed}
	for i := 0; i < 150; i++ {
		PlayerMove(p, trace, st, cmd, 0.03)
	}
	// The wall front face is at x=400; hull half width 16.
	if st.Origin.X > 384.5 {
		t.Errorf("player inside wall: %v", st.Origin)
	}
	if st.Origin.X < 380 {
		t.Errorf("player stopped far from wall: %v", st.Origin)
	}
}
