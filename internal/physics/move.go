// Package physics simulates entity motion: the player movement model
// (friction, acceleration, gravity, jumping, and the clip-and-slide
// collision response of the engine's SV_FlyMove/PM_* family) and
// projectile flight. It is deliberately independent of entities and game
// rules — callers supply a TraceFunc that sweeps the moving hull against
// whatever should block it (world brushes plus solid entities), which is
// how the game layer injects areanode-collected obstacles.
package physics

import (
	"math"

	"qserve/internal/collide"
	"qserve/internal/geom"
)

// Params are the movement tuning constants. Defaults mirror QuakeWorld's
// server settings.
type Params struct {
	Gravity       float64 // units/s²
	MaxSpeed      float64 // ground speed cap, units/s
	Accelerate    float64 // ground acceleration gain, 1/s
	AirAccelerate float64 // air acceleration gain, 1/s
	Friction      float64 // ground friction, 1/s
	StopSpeed     float64 // friction's low-speed rounding floor
	JumpSpeed     float64 // upward velocity applied by a jump
	StepHeight    float64 // max ledge height walked up automatically
	MaxVelocity   float64 // hard component clamp
}

// DefaultParams returns the QuakeWorld-flavoured defaults.
func DefaultParams() Params {
	return Params{
		Gravity:       800,
		MaxSpeed:      320,
		Accelerate:    10,
		AirAccelerate: 0.7,
		Friction:      6,
		StopSpeed:     100,
		JumpSpeed:     270,
		StepHeight:    18,
		MaxVelocity:   2000,
	}
}

// TraceFunc sweeps the moving entity's hull from origin a to origin b and
// reports the first blocking contact. Implementations must apply the same
// boundary semantics as collide.Tree.TraceBox.
type TraceFunc func(a, b geom.Vec3) collide.Trace

// State is the mutable kinematic state threaded through a move.
type State struct {
	Origin   geom.Vec3
	Velocity geom.Vec3
	OnGround bool
}

// Cmd is the movement intent extracted from a client move command:
// the wish direction in world space (already rotated by the view angles),
// the wish speed, and the jump flag.
type Cmd struct {
	WishDir   geom.Vec3 // unit vector, z component ignored for ground moves
	WishSpeed float64
	Jump      bool
}

// Result reports what a move did, including the work counters the cost
// model charges for.
type Result struct {
	Traces     int  // hull sweeps performed
	ClipPlanes int  // velocity clips applied
	Jumped     bool // a jump was initiated
	Blocked    bool // motion ended against geometry
	Stepped    bool // the step-up path was taken
}

const (
	maxClipPlanes  = 5
	overClip       = 1.001 // slight overbounce, as in the engine
	groundProbe    = 2.0   // downward distance checked for ground support
	minWalkNormalZ = 0.7   // steepest slope that counts as ground
)

// PlayerMove advances a player hull by dt seconds under the given command.
// It mutates st in place and returns the move's work summary. The trace
// function must sweep this player's hull and skip the player itself.
func PlayerMove(p Params, trace TraceFunc, st *State, cmd Cmd, dt float64) Result {
	var res Result
	if dt <= 0 {
		return res
	}

	if st.OnGround {
		applyFriction(p, st, dt)
	}
	accelerate(p, st, cmd, dt)

	if cmd.Jump && st.OnGround {
		st.Velocity.Z = p.JumpSpeed
		st.OnGround = false
		res.Jumped = true
	}
	if !st.OnGround {
		st.Velocity.Z -= p.Gravity * dt
	}
	clampVelocity(p, st)

	slideMove(p, trace, st, dt, &res)
	categorizePosition(trace, st, &res)
	return res
}

// applyFriction decays horizontal velocity as in SV_Friction.
func applyFriction(p Params, st *State, dt float64) {
	speed := st.Velocity.Flat().Len()
	if speed < 1 {
		st.Velocity.X = 0
		st.Velocity.Y = 0
		return
	}
	control := speed
	if control < p.StopSpeed {
		control = p.StopSpeed
	}
	newSpeed := speed - control*p.Friction*dt
	if newSpeed < 0 {
		newSpeed = 0
	}
	scale := newSpeed / speed
	st.Velocity.X *= scale
	st.Velocity.Y *= scale
}

// accelerate adds velocity toward the wish direction, capped by the
// projection test that gives Quake movement its feel.
func accelerate(p Params, st *State, cmd Cmd, dt float64) {
	wish := cmd.WishDir.Flat().Norm()
	if wish.IsZero() || cmd.WishSpeed <= 0 {
		return
	}
	wishSpeed := math.Min(cmd.WishSpeed, p.MaxSpeed)
	gain := p.Accelerate
	if !st.OnGround {
		gain = p.AirAccelerate
		// Air control caps the projected speed much lower.
		if wishSpeed > 30 {
			wishSpeed = 30
		}
	}
	current := st.Velocity.Dot(wish)
	add := wishSpeed - current
	if add <= 0 {
		return
	}
	accel := gain * p.MaxSpeed * dt
	if accel > add {
		accel = add
	}
	st.Velocity = st.Velocity.MA(accel, wish)
}

func clampVelocity(p Params, st *State) {
	v := &st.Velocity
	for i := 0; i < 3; i++ {
		c := v.Axis(i)
		if c > p.MaxVelocity {
			*v = v.SetAxis(i, p.MaxVelocity)
		} else if c < -p.MaxVelocity {
			*v = v.SetAxis(i, -p.MaxVelocity)
		}
	}
}

// slideMove advances the origin, clipping velocity against each plane hit
// (SV_FlyMove), with one step-up attempt when ground motion is blocked.
func slideMove(p Params, trace TraceFunc, st *State, dt float64, res *Result) {
	timeLeft := dt
	planes := make([]geom.Vec3, 0, maxClipPlanes)
	startedOnGround := st.OnGround

	for bump := 0; bump < maxClipPlanes && timeLeft > 1e-9; bump++ {
		if st.Velocity.IsZero() {
			break
		}
		end := st.Origin.MA(timeLeft, st.Velocity)
		tr := trace(st.Origin, end)
		res.Traces++

		if tr.StartSolid {
			// Stuck: zero velocity and give up; categorize will sort out
			// ground state. This matches the engine's conservative
			// handling of emergency cases.
			st.Velocity = geom.Vec3{}
			res.Blocked = true
			return
		}
		st.Origin = tr.End
		if !tr.Hit {
			return // moved the full distance
		}
		res.Blocked = true
		timeLeft *= 1 - tr.Fraction

		// Try stepping over low obstacles when walking into a wall.
		if startedOnGround && tr.Normal.Z < minWalkNormalZ && tr.Normal.Z > -0.1 && !res.Stepped {
			if tryStep(p, trace, st, timeLeft, res) {
				res.Stepped = true
				continue
			}
		}

		planes = append(planes, tr.Normal)
		clipped := clipAgainstPlanes(st.Velocity, planes)
		st.Velocity = clipped
		res.ClipPlanes++
	}
}

// tryStep attempts the classic step-up: nudge up by StepHeight, move
// forward for the remaining time, then settle back down. Returns true
// when the step made forward progress.
func tryStep(p Params, trace TraceFunc, st *State, timeLeft float64, res *Result) bool {
	saved := *st

	up := trace(st.Origin, st.Origin.Add(geom.V(0, 0, p.StepHeight)))
	res.Traces++
	if up.Hit {
		return false
	}
	fwdEnd := up.End.MA(timeLeft, geom.V(st.Velocity.X, st.Velocity.Y, 0).Norm().Scale(st.Velocity.Flat().Len()))
	fwd := trace(up.End, fwdEnd)
	res.Traces++
	down := trace(fwd.End, fwd.End.Sub(geom.V(0, 0, p.StepHeight+groundProbe)))
	res.Traces++

	if down.Hit && down.Normal.Z >= minWalkNormalZ {
		movedSq := fwd.End.Flat().Sub(saved.Origin.Flat()).LenSq()
		if movedSq > 1e-6 {
			st.Origin = down.End
			return true
		}
	}
	*st = saved
	return false
}

// clipAgainstPlanes removes the velocity components pointing into any of
// the accumulated clip planes. With two non-parallel planes it slides
// along their crease; with more it stops, as in the engine.
func clipAgainstPlanes(vel geom.Vec3, planes []geom.Vec3) geom.Vec3 {
	for i := range planes {
		v := clipVelocity(vel, planes[i])
		ok := true
		for j := range planes {
			if j != i && v.Dot(planes[j]) < 0 {
				ok = false
				break
			}
		}
		if ok {
			return v
		}
	}
	if len(planes) == 2 {
		crease := planes[0].Cross(planes[1]).Norm()
		return crease.Scale(vel.Dot(crease))
	}
	return geom.Vec3{}
}

// clipVelocity projects out the component of v into the plane normal with
// a slight overbounce.
func clipVelocity(v, normal geom.Vec3) geom.Vec3 {
	backoff := v.Dot(normal) * overClip
	return v.Sub(normal.Scale(backoff))
}

// categorizePosition probes downward to set the on-ground flag, the
// PM_CategorizePosition step.
func categorizePosition(trace TraceFunc, st *State, res *Result) {
	if st.Velocity.Z > 180 {
		// Moving up fast (jump launch): definitely airborne.
		st.OnGround = false
		return
	}
	tr := trace(st.Origin, st.Origin.Sub(geom.V(0, 0, groundProbe)))
	res.Traces++
	if tr.Hit && !tr.StartSolid && tr.Normal.Z >= minWalkNormalZ {
		st.OnGround = true
		// Snap to the ground and cancel vertical velocity, including the
		// small upward residue the overclip bounce leaves after landing.
		st.Origin = tr.End
		if st.Velocity.Z < 1 {
			st.Velocity.Z = 0
		}
	} else {
		st.OnGround = false
	}
}

// FlyResult reports a projectile integration step.
type FlyResult struct {
	Trace  collide.Trace
	Traces int
}

// ProjectileMove advances a projectile by dt with optional gravity and
// returns the first impact, if any. Projectiles do not slide: they stop
// (and the game layer detonates them) at the first contact.
func ProjectileMove(gravity float64, trace TraceFunc, st *State, dt float64) FlyResult {
	st.Velocity.Z -= gravity * dt
	end := st.Origin.MA(dt, st.Velocity)
	tr := trace(st.Origin, end)
	st.Origin = tr.End
	return FlyResult{Trace: tr, Traces: 1}
}

// MaxMoveDistance returns the farthest a player can travel in one move
// command of duration msec, used to size move bounding boxes (§2.3: "the
// maximum possible distance a player can travel in a single move").
// Vertical travel is bounded by jump impulse plus gravity fall.
func MaxMoveDistance(p Params, msec float64) float64 {
	dt := msec / 1000
	horizontal := p.MaxSpeed * dt
	vertical := math.Max(p.JumpSpeed*dt, 0.5*p.Gravity*dt*dt+p.MaxVelocity*dt*0.25)
	return math.Max(horizontal, vertical)
}
