package checkpoint

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// literalCheckpoint builds a small, valid full checkpoint by hand, for
// format tests that need precise control over every section.
func literalCheckpoint(t testing.TB) *Checkpoint {
	t.Helper()
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	ents := []EntityRec{
		{ID: 0, Class: 1, Flags: FlagOnGround | FlagLinked, Health: 100, Armor: 50, Weapon: 2, Weapons: 0b111, Ammo: 25, RoomID: 1},
		{ID: 2, Class: 3, Flags: FlagSnapEligible, ItemClass: 2, ItemSpawn: 4, RespawnAt: 12.5},
	}
	ck := &Checkpoint{
		WorldSeed:    7,
		ProtoVer:     protocol.Version,
		Map:          m,
		Frame:        120,
		WorldTime:    3.96,
		SpawnCursor:  2,
		HighWater:    3,
		Capacity:     64,
		TreeDepth:    2,
		NextClientID: 5,
		JoinIdx:      4,
		RecItems:     987,
		Full:         true,
		Entities:     ents,
		Free:         []uint32{1},
		Clients: []ClientRec{
			{ID: 1, EntID: 0, Thread: 0, LastSeq: 44, RepliedFrame: 119, LoadNs: 80_000,
				Name: "alice", Addr: "bot:1", BaselineTag: 120,
				Baseline: []protocol.EntityState{{ID: 2, Class: 3, X: 5, Y: -9, Z: 1, Yaw: 3, Frame: 1, Effects: 4}}},
			{ID: 3, EntID: 2, Thread: 1, Name: "bob", Addr: "bot:3", Baseline: []protocol.EntityState{}},
		},
	}
	ck.Digest = DigestEntities(ck.WorldTime, ents)
	return ck
}

// TestEncodeDecodeIdentity pins Encode∘Decode as the identity, both on
// the byte level (re-encoding a decoded checkpoint reproduces the input
// exactly) and on the field level.
func TestEncodeDecodeIdentity(t *testing.T) {
	ck := literalCheckpoint(t)
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(data), len(data2))
	}
	if got.Frame != ck.Frame || got.WorldTime != ck.WorldTime || got.SpawnCursor != ck.SpawnCursor ||
		got.HighWater != ck.HighWater || got.Capacity != ck.Capacity || got.TreeDepth != ck.TreeDepth ||
		got.NextClientID != ck.NextClientID || got.JoinIdx != ck.JoinIdx || got.RecItems != ck.RecItems ||
		got.Full != ck.Full || got.WorldSeed != ck.WorldSeed || got.Digest != ck.Digest {
		t.Fatalf("meta fields did not round-trip:\n got %+v\nwant %+v", got, ck)
	}
	if !reflect.DeepEqual(got.Entities, ck.Entities) {
		t.Fatalf("entity section did not round-trip")
	}
	if !reflect.DeepEqual(got.Free, ck.Free) {
		t.Fatalf("free section did not round-trip: %v vs %v", got.Free, ck.Free)
	}
	if !reflect.DeepEqual(got.Clients, ck.Clients) {
		t.Fatalf("client section did not round-trip:\n got %+v\nwant %+v", got.Clients, ck.Clients)
	}
	if err := got.VerifyDigest(); err != nil {
		t.Fatal(err)
	}
}

// TestMerge reconstructs a full image from a base plus a delta and
// checks the replace/insert/remove cases entity by entity.
func TestMerge(t *testing.T) {
	base := literalCheckpoint(t)
	changed := base.Entities[0]
	changed.Health = 40
	changed.Origin.X = 99
	inserted := EntityRec{ID: 3, Class: 4, Owner: -1, Damage: 20, DieAt: 5.5}
	delta := &Checkpoint{
		WorldSeed: base.WorldSeed, ProtoVer: base.ProtoVer, Map: base.Map,
		Frame: 150, WorldTime: 4.95, SpawnCursor: 3,
		HighWater: 4, Capacity: 64, TreeDepth: 2,
		NextClientID: 6, JoinIdx: 5, RecItems: 1200,
		Full: false, BaseFrame: base.Frame,
		Entities: []EntityRec{changed, inserted},
		Gone:     []uint32{2},
		Free:     []uint32{1, 2},
		Clients:  base.Clients[:1],
	}
	wantEnts := []EntityRec{changed, inserted}
	delta.Digest = DigestEntities(delta.WorldTime, wantEnts)

	// Round-trip the delta through its encoding first: Gone records only
	// exist on this path.
	data, err := delta.Encode()
	if err != nil {
		t.Fatal(err)
	}
	delta, err = Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	merged, err := Merge(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Full || merged.BaseFrame != 0 {
		t.Fatalf("merge result not a full image: full=%v base=%d", merged.Full, merged.BaseFrame)
	}
	if merged.Frame != delta.Frame || merged.WorldTime != delta.WorldTime {
		t.Fatalf("merge did not take the delta's meta")
	}
	if !reflect.DeepEqual(merged.Entities, wantEnts) {
		t.Fatalf("merged entities wrong:\n got %+v\nwant %+v", merged.Entities, wantEnts)
	}
	if err := merged.VerifyDigest(); err != nil {
		t.Fatal(err)
	}

	// Mismatched pairings must be refused.
	if _, err := Merge(delta, delta); err == nil {
		t.Fatal("merge accepted a delta as base")
	}
	if _, err := Merge(base, base); err == nil {
		t.Fatal("merge accepted a full image as delta")
	}
	wrong := *delta
	wrong.BaseFrame = base.Frame + 1
	if _, err := Merge(base, &wrong); err == nil {
		t.Fatal("merge accepted a delta based on a different frame")
	}
}

// TestDecodeRejects feeds Decode structurally invalid checkpoints —
// encodable but semantically broken — and requires an error for each.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(ck *Checkpoint)
		want error
	}{
		{"entities out of order", func(ck *Checkpoint) {
			ck.Entities[0].ID, ck.Entities[1].ID = ck.Entities[1].ID, ck.Entities[0].ID
		}, ErrOutOfOrder},
		{"entity past capacity", func(ck *Checkpoint) {
			ck.Capacity = 2
			ck.HighWater = 2
		}, ErrBadRecord},
		{"free id above high water", func(ck *Checkpoint) {
			ck.Free = []uint32{40}
		}, ErrBadRecord},
		{"free id twice", func(ck *Checkpoint) {
			ck.HighWater = 4
			ck.Free = []uint32{1, 1}
		}, ErrBadRecord},
		{"free id active", func(ck *Checkpoint) {
			ck.Free = []uint32{2}
		}, ErrBadRecord},
		{"full with gone ids", func(ck *Checkpoint) {
			ck.Gone = []uint32{1}
		}, ErrBadRecord},
		{"tiling mismatch", func(ck *Checkpoint) {
			ck.HighWater = 5
			ck.Capacity = 64
		}, ErrBadRecord},
		{"clients out of order", func(ck *Checkpoint) {
			ck.Clients[0].ID, ck.Clients[1].ID = ck.Clients[1].ID, ck.Clients[0].ID
		}, ErrOutOfOrder},
		{"zero capacity", func(ck *Checkpoint) {
			ck.Capacity = 0
		}, ErrBadRecord},
		{"full naming a base frame", func(ck *Checkpoint) {
			ck.BaseFrame = 77
		}, ErrBadRecord},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck := literalCheckpoint(t)
			tc.mut(ck)
			data, err := ck.Encode()
			if err != nil {
				t.Fatalf("encode refused before decode could: %v", err)
			}
			_, err = Decode(data)
			if err == nil {
				t.Fatal("decode accepted an invalid checkpoint")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("wrong error class: got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeTotal exercises framing-level corruption: every strict
// prefix must error, and no single-bit flip may panic or half-apply.
func TestDecodeTotal(t *testing.T) {
	ck := literalCheckpoint(t)
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Stride through the larger files (the embedded map JSON dominates)
	// but cover the structural region around every record boundary.
	stride := 1
	if len(data) > 4096 {
		stride = 37
	}
	for cut := 0; cut < len(data); cut += stride {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte file", cut, len(data))
		}
	}
	for pos := 0; pos < len(data); pos += stride {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on bit flip at %d: %v", pos, r)
				}
			}()
			// A 16-bit fold cannot detect every flip; the contract is no
			// panic and no invalid result, not guaranteed detection.
			if got, err := Decode(mut); err == nil {
				if verr := got.validate(); verr != nil {
					t.Fatalf("bit flip at %d decoded to an invalid checkpoint: %v", pos, verr)
				}
			}
		}()
	}

	if _, err := Decode([]byte("QRPL")); !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("bad magic: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[4], bad[5] = 0xFF, 0x7F
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("future version accepted: %v", err)
	}
	trailing := append(append([]byte(nil), data...), data[len(data)-20:]...)
	if _, err := Decode(trailing); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("records after end marker accepted: %v", err)
	}
}

func TestFileNameParse(t *testing.T) {
	for _, tc := range []struct {
		frame uint64
		full  bool
	}{{0, true}, {120, false}, {1 << 40, true}} {
		frame, full, ok := parseFileName(FileName(tc.frame, tc.full))
		if !ok || frame != tc.frame || full != tc.full {
			t.Fatalf("FileName(%d,%v) did not parse back: %d %v %v", tc.frame, tc.full, frame, full, ok)
		}
	}
	for _, bad := range []string{"ckpt-12-full.qrl", "snap-12-full.qck", "ckpt-x-full.qck", "ckpt-12.qck"} {
		if _, _, ok := parseFileName(bad); ok {
			t.Fatalf("parsed junk name %q", bad)
		}
	}
}
