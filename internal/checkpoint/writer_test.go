package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// TestWriterFullCapture captures a live world and checks the decoded
// file against the world field by field.
func TestWriterFullCapture(t *testing.T) {
	world, m, ids := liveWorld(t)
	dir := t.TempDir()
	wr, err := NewWriter(Config{Dir: dir, WorldSeed: 7, Map: m})
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{Frame: 30, RecItems: 123, JoinIdx: 4, NextClientID: 3}
	clients := sampleClients(ids)
	st := capture(t, wr, world, meta, clients)
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatal("first capture was not a full image")
	}

	ck, err := ReadFile(filepath.Join(dir, FileName(30, true)))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Frame != meta.Frame || ck.RecItems != meta.RecItems ||
		ck.JoinIdx != meta.JoinIdx || ck.NextClientID != meta.NextClientID {
		t.Fatalf("meta counters wrong: %+v", ck)
	}
	if ck.WorldSeed != 7 || ck.ProtoVer != protocol.Version {
		t.Fatalf("header wrong: seed %d proto %d", ck.WorldSeed, ck.ProtoVer)
	}
	if ck.WorldTime != world.Time || ck.SpawnCursor != world.SpawnCursor() ||
		ck.HighWater != world.Ents.HighWater() || ck.Capacity != world.Ents.Capacity() ||
		ck.TreeDepth != world.Tree.Depth() {
		t.Fatalf("world geometry wrong: %+v", ck)
	}
	if want := snapshotRecs(world); !reflect.DeepEqual(ck.Entities, want) {
		t.Fatalf("entity section diverges from the live table: %d vs %d records", len(ck.Entities), len(want))
	}
	if len(ck.Free) != len(world.Ents.FreeList()) {
		t.Fatalf("free list wrong: %d vs %d", len(ck.Free), len(world.Ents.FreeList()))
	}
	if !reflect.DeepEqual(ck.Clients, clients) {
		t.Fatalf("client section did not round-trip:\n got %+v\nwant %+v", ck.Clients, clients)
	}
	if err := ck.VerifyDigest(); err != nil {
		t.Fatal(err)
	}
	if ck.Digest != worldDigest(world) {
		t.Fatalf("digest %016x does not match the live world's %016x", ck.Digest, worldDigest(world))
	}
}

// TestWriterDeltaCadence drives the full/delta rotation and checks that
// every intermediate state recovers exactly through LoadLatest.
func TestWriterDeltaCadence(t *testing.T) {
	world, m, ids := liveWorld(t)
	dir := t.TempDir()
	wr, err := NewWriter(Config{Dir: dir, WorldSeed: 7, Map: m, DeltaEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer wr.Close()

	wantFull := []bool{true, false, false, true, false}
	frame := uint64(30)
	for i, wf := range wantFull {
		st := capture(t, wr, world, Meta{Frame: frame}, sampleClients(ids))
		if st.Full != wf {
			t.Fatalf("capture %d: full=%v, want %v", i, st.Full, wf)
		}
		waitFile(t, filepath.Join(dir, FileName(frame, wf)))

		ck, err := LoadLatest(dir)
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		if ck.Frame != frame {
			t.Fatalf("capture %d: LoadLatest found frame %d, want %d", i, ck.Frame, frame)
		}
		if ck.Digest != worldDigest(world) {
			t.Fatalf("capture %d: recovered digest diverges", i)
		}
		restored, err := ck.RestoreWorld()
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		if worldDigest(restored) != worldDigest(world) {
			t.Fatalf("capture %d: restored world diverges", i)
		}

		stepWorld(world, ids, int(frame), int(frame)+10)
		frame += 10
	}
	if err := wr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoredWorldEvolves is the recovery-line claim: a restored world
// does not just match the original at the capture point, it evolves
// identically under identical inputs (gameplay is rule-driven, no
// hidden state outside the checkpoint).
func TestRestoredWorldEvolves(t *testing.T) {
	world, m, ids := liveWorld(t)
	dir := t.TempDir()
	captureToFile(t, world, m, ids, dir, 30)
	ck, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ck.RestoreWorld()
	if err != nil {
		t.Fatal(err)
	}
	stepWorld(world, ids, 30, 80)
	stepWorld(restored, ids, 30, 80)
	if worldDigest(restored) != worldDigest(world) {
		t.Fatalf("restored world diverged after 50 frames: %016x vs %016x",
			worldDigest(restored), worldDigest(world))
	}
}

// TestWriterSkipWhenBusy starves the writer of encode buffers and
// checks that a due capture skips — counted, non-blocking — instead of
// stalling the frame.
func TestWriterSkipWhenBusy(t *testing.T) {
	world, m, _ := liveWorld(t)
	dir := t.TempDir()
	wr, err := NewWriter(Config{Dir: dir, WorldSeed: 7, Map: m, Interval: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer wr.Close()

	if wr.Due(0) || wr.Due(15) || !wr.Due(10) || !wr.Due(20) {
		t.Fatal("Due cadence wrong")
	}

	b1, b2 := <-wr.free, <-wr.free // simulate the flusher owning both buffers
	if wr.Begin(world, Meta{Frame: 10}) {
		t.Fatal("Begin succeeded with no free buffer")
	}
	wr.AddClient(ClientRec{ID: 1}) // must be a no-op
	if st := wr.Commit(); st != (Stats{}) {
		t.Fatalf("Commit after a skipped Begin returned %+v", st)
	}
	if wr.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", wr.Skipped())
	}
	wr.free <- b1
	wr.free <- b2
	if !wr.Begin(world, Meta{Frame: 20}) {
		t.Fatal("Begin failed after buffers returned")
	}
	wr.Commit()
	waitFile(t, filepath.Join(dir, FileName(20, true)))
}

// TestLoadLatestFallsBack corrupts newer files and checks recovery
// degrades to the newest still-valid state instead of failing.
func TestLoadLatestFallsBack(t *testing.T) {
	world, m, ids := liveWorld(t)
	dir := t.TempDir()
	wr, err := NewWriter(Config{Dir: dir, WorldSeed: 7, Map: m, DeltaEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	capture(t, wr, world, Meta{Frame: 30}, nil)
	digest30 := worldDigest(world)
	stepWorld(world, ids, 30, 40)
	capture(t, wr, world, Meta{Frame: 40}, nil) // delta on the frame-30 base
	digest40 := worldDigest(world)
	stepWorld(world, ids, 40, 50)
	capture(t, wr, world, Meta{Frame: 50}, nil) // delta on the frame-30 base
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn newest delta: fall back to the frame-40 delta.
	p50 := filepath.Join(dir, FileName(50, false))
	data, err := os.ReadFile(p50)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p50, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Frame != 40 || ck.Digest != digest40 {
		t.Fatalf("expected frame 40 fallback, got frame %d", ck.Frame)
	}

	// Bit-rotted base image: its deltas are unrecoverable too, but the
	// base name pattern still sorts below — nothing valid remains except
	// nothing. Restore the base and instead delete the deltas to check
	// the full image alone recovers.
	if err := os.Remove(filepath.Join(dir, FileName(40, false))); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(p50); err != nil {
		t.Fatal(err)
	}
	ck, err = LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Frame != 30 || ck.Digest != digest30 {
		t.Fatalf("expected frame 30 fallback, got frame %d", ck.Frame)
	}

	// A delta whose base full image is corrupt is skipped even though the
	// delta itself is pristine.
	base := filepath.Join(dir, FileName(30, true))
	data, err = os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLatest(dir); err == nil {
		t.Fatal("LoadLatest succeeded with every file corrupt")
	}
}

// TestWriterCaptureAllocs is the CI gate on the barrier-side capture
// path: steady-state Begin/AddClient/Commit must not allocate. The
// writer's flusher is replaced by an allocation-free drainer that skips
// the file write, so the measurement isolates the capture path.
func TestWriterCaptureAllocs(t *testing.T) {
	world, m, ids := liveWorld(t)
	clients := sampleClients(ids)
	wr := newDrainedWriter(t, m)

	run := func() {
		for !wr.Begin(world, Meta{Frame: 30, RecItems: 5, JoinIdx: 3, NextClientID: 3}) {
			runtime.Gosched() // the drainer owns both buffers for an instant
		}
		for _, c := range clients {
			wr.AddClient(c)
		}
		wr.Commit()
	}
	run() // warm-up: grows cur and the encode scratch
	run() // warm-up: grows base (the record buffers swap on full captures)

	if allocs := testing.AllocsPerRun(32, run); allocs != 0 {
		t.Fatalf("capture path allocates: %.1f allocs/op", allocs)
	}
}

// newDrainedWriter builds a writer whose flush requests are drained by
// an allocation-free goroutine that returns buffers without touching
// the filesystem.
func newDrainedWriter(t testing.TB, m *worldmap.Map) *Writer {
	t.Helper()
	var mb bytes.Buffer
	if err := m.Save(&mb); err != nil {
		t.Fatal(err)
	}
	w := &Writer{
		cfg:    Config{Dir: t.TempDir(), WorldSeed: 7},
		header: appendHeader(nil, 7, protocol.Version, mb.Bytes()),
		free:   make(chan []byte, 2),
		reqs:   make(chan flushReq, 2),
		done:   make(chan struct{}),
	}
	w.free <- make([]byte, 0, len(w.header)+1<<16)
	w.free <- make([]byte, 0, len(w.header)+1<<16)
	go func() {
		for req := range w.reqs {
			w.free <- req.buf
		}
	}()
	return w
}

// BenchmarkWriterCapture measures the barrier-side cost of one full
// capture of a small live world — the ns/op is what the reply barrier
// pays; the file write is off-thread.
func BenchmarkWriterCapture(b *testing.B) {
	world, m, ids := liveWorld(b)
	clients := sampleClients(ids)
	wr := newDrainedWriter(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !wr.Begin(world, Meta{Frame: uint64(30 + i)}) {
			runtime.Gosched()
		}
		for _, c := range clients {
			wr.AddClient(c)
		}
		wr.Commit()
	}
}
