package checkpoint

import "math"

// The digest here is the same fold as replay.TableDigest, over entity
// records instead of live entities. It is duplicated rather than
// imported because the dependency arrow points the other way — replay
// builds servers (and thus imports this package for recovery), so
// checkpoint cannot import replay. TestDigestMatchesReplay in the replay
// package pins the two folds together bit for bit.

type fnv64 uint64

const fnv64Offset fnv64 = 14695981039346656037
const fnv64Prime fnv64 = 1099511628211

func (h fnv64) byte(b byte) fnv64 {
	h ^= fnv64(b)
	return h * fnv64Prime
}

func (h fnv64) u64(v uint64) fnv64 {
	for i := 0; i < 8; i++ {
		h = h.byte(byte(v >> (8 * i)))
	}
	return h
}

func (h fnv64) u32(v uint32) fnv64 {
	for i := 0; i < 4; i++ {
		h = h.byte(byte(v >> (8 * i)))
	}
	return h
}

func (h fnv64) i64(v int64) fnv64   { return h.u64(uint64(v)) }
func (h fnv64) f64(v float64) fnv64 { return h.u64(math.Float64bits(v)) }
func (h fnv64) bool(v bool) fnv64 {
	if v {
		return h.byte(1)
	}
	return h.byte(0)
}

// foldEntity folds one record exactly as replay.TableDigest folds the
// corresponding live entity: same fields, same order, same widths.
func (h fnv64) foldEntity(e *EntityRec) fnv64 {
	h = h.u32(e.ID)
	h = h.byte(e.Class)
	h = h.f64(e.Origin.X).f64(e.Origin.Y).f64(e.Origin.Z)
	h = h.f64(e.Velocity.X).f64(e.Velocity.Y).f64(e.Velocity.Z)
	h = h.f64(e.Angles.X).f64(e.Angles.Y).f64(e.Angles.Z)
	h = h.bool(e.Flags&FlagOnGround != 0)
	h = h.i64(e.Health).i64(e.Armor)
	h = h.i64(e.Frags).i64(e.Deaths)
	h = h.byte(e.Weapon).u32(uint32(e.Weapons)).i64(e.Ammo)
	h = h.bool(e.Flags&FlagHasPowerup != 0).f64(e.PowerupUntil)
	h = h.byte(e.ItemClass).i64(e.ItemSpawn).f64(e.RespawnAt)
	h = h.u32(uint32(e.Owner)).i64(e.Damage).f64(e.DieAt)
	h = h.f64(e.RespawnTime).f64(e.RefireAt).f64(e.NextThink)
	return h
}

// DigestEntities folds a world clock and a full entity-record set (in
// ascending ID order, as the Entities section is stored) into the world
// digest — equal to replay.TableDigest of the world those records
// restore.
//
//qvet:det
func DigestEntities(worldTime float64, ents []EntityRec) uint64 {
	h := fnv64Offset
	h = h.f64(worldTime)
	for i := range ents {
		h = h.foldEntity(&ents[i])
	}
	return uint64(h)
}
