package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/worldmap"
)

// RestoreWorld rebuilds a world from a full checkpoint: NewWorld from
// the embedded map (deriving the static collision tree and visibility
// tables as usual), then the mutable state — entity table, areanode
// links, free list, clock, spawn cursor — installed verbatim from the
// records. The restored world's digest is verified against the recorded
// one before it is returned, so a checkpoint that decodes cleanly but
// would not reproduce the captured world is rejected rather than served.
func (ck *Checkpoint) RestoreWorld() (*game.World, error) {
	if !ck.Full {
		return nil, fmt.Errorf("checkpoint: cannot restore from a delta (merge with its base first)")
	}
	w, err := game.NewWorld(game.Config{
		Map:           ck.Map,
		AreanodeDepth: ck.TreeDepth,
		MaxEntities:   ck.Capacity,
		Seed:          ck.WorldSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: rebuilding world: %w", err)
	}
	w.ResetEntities()
	for i := range ck.Entities {
		rec := &ck.Entities[i]
		err := w.RestoreEntity(entity.ID(rec.ID), rec.Flags&FlagLinked != 0, func(e *entity.Entity) {
			fillEntity(e, rec)
		})
		if err != nil {
			return nil, err
		}
	}
	free := make([]entity.ID, len(ck.Free))
	for i, id := range ck.Free {
		free[i] = entity.ID(id)
	}
	if err := w.Ents.SetFreeState(free, ck.HighWater); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w.Time = ck.WorldTime
	w.SetSpawnCursor(ck.SpawnCursor)
	if got := DigestEntities(w.Time, ck.Entities); got != ck.Digest {
		return nil, fmt.Errorf("%w: restored world folds %016x, checkpoint recorded %016x", ErrDigest, got, ck.Digest)
	}
	return w, nil
}

// fillEntity is the inverse of recFromEntity: install a record's fields
// on a freshly materialized entity. Link state is handled by the caller.
func fillEntity(e *entity.Entity, rec *EntityRec) {
	e.Class = entity.Class(rec.Class)
	e.Origin = rec.Origin
	e.Velocity = rec.Velocity
	e.Angles = rec.Angles
	e.Mins = rec.Mins
	e.Maxs = rec.Maxs
	e.OnGround = rec.Flags&FlagOnGround != 0
	e.Health = int(rec.Health)
	e.Armor = int(rec.Armor)
	e.Frags = int(rec.Frags)
	e.Deaths = int(rec.Deaths)
	e.Weapon = rec.Weapon
	e.Weapons = rec.Weapons
	e.Ammo = int(rec.Ammo)
	e.HasPowerup = rec.Flags&FlagHasPowerup != 0
	e.PowerupUntil = rec.PowerupUntil
	e.ItemClass = worldmap.ItemClass(rec.ItemClass)
	e.ItemSpawn = int(rec.ItemSpawn)
	e.RespawnAt = rec.RespawnAt
	e.Owner = entity.ID(rec.Owner)
	e.Damage = int(rec.Damage)
	e.DieAt = rec.DieAt
	e.RespawnTime = rec.RespawnTime
	e.RefireAt = rec.RefireAt
	e.NextThink = rec.NextThink
	e.RoomID = int(rec.RoomID)
	e.SnapEligible = rec.Flags&FlagSnapEligible != 0
	e.ModelFrame = rec.ModelFrame
}

// FileInfo describes one checkpoint file found in a directory.
type FileInfo struct {
	Path  string
	Frame uint64
	Full  bool
}

// ListDir returns the checkpoint files in dir, oldest first. Files whose
// names don't match the writer's pattern are ignored.
func ListDir(dir string) ([]FileInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []FileInfo
	for _, de := range entries {
		name := de.Name()
		frame, full, ok := parseFileName(name)
		if !ok {
			continue
		}
		out = append(out, FileInfo{Path: filepath.Join(dir, name), Frame: frame, Full: full})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frame != out[j].Frame {
			return out[i].Frame < out[j].Frame
		}
		return !out[i].Full && out[j].Full // full sorts before the delta of the same frame
	})
	return out, nil
}

func parseFileName(name string) (frame uint64, full bool, ok bool) {
	rest, found := strings.CutPrefix(name, "ckpt-")
	if !found {
		return 0, false, false
	}
	switch {
	case strings.HasSuffix(rest, "-full.qck"):
		full = true
		rest = strings.TrimSuffix(rest, "-full.qck")
	case strings.HasSuffix(rest, "-delta.qck"):
		rest = strings.TrimSuffix(rest, "-delta.qck")
	default:
		return 0, false, false
	}
	frame, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false, false
	}
	return frame, full, true
}

// LoadLatest finds the newest recoverable state in dir: the
// highest-frame checkpoint that decodes, validates, and — for a delta —
// has a decodable base full image to merge with. Corrupt or torn files
// (a kill -9 can leave at most a .tmp, never a torn final name, but
// disks misbehave) are skipped in favor of older ones. The returned
// checkpoint is always a verified full image.
func LoadLatest(dir string) (*Checkpoint, error) {
	files, err := ListDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("checkpoint: no checkpoint files in %s", dir)
	}
	var lastErr error
	// fulls caches decoded full images by frame for delta merging.
	fulls := make(map[uint64]*Checkpoint)
	decodeFull := func(frame uint64) *Checkpoint {
		if ck, ok := fulls[frame]; ok {
			return ck
		}
		for _, fi := range files {
			if fi.Frame == frame && fi.Full {
				ck, err := ReadFile(fi.Path)
				if err != nil {
					lastErr = fmt.Errorf("%s: %w", fi.Path, err)
					break
				}
				fulls[frame] = ck
				return ck
			}
		}
		fulls[frame] = nil
		return nil
	}
	for i := len(files) - 1; i >= 0; i-- {
		fi := files[i]
		ck, err := ReadFile(fi.Path)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", fi.Path, err)
			continue
		}
		if !ck.Full {
			base := decodeFull(ck.BaseFrame)
			if base == nil {
				continue
			}
			merged, err := Merge(base, ck)
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", fi.Path, err)
				continue
			}
			ck = merged
		}
		if err := ck.VerifyDigest(); err != nil {
			lastErr = fmt.Errorf("%s: %w", fi.Path, err)
			continue
		}
		return ck, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("checkpoint: no valid checkpoint in %s (last error: %w)", dir, lastErr)
	}
	return nil, fmt.Errorf("checkpoint: no valid checkpoint in %s", dir)
}
