package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"
)

// FuzzDecodeCheckpoint drives Decode with arbitrary bytes. The
// decoder's contract (see Decode): any input — truncated, bit-flipped,
// reordered, adversarial — yields an error or a fully validated
// Checkpoint, and NEVER panics or half-applies. The seed corpus is
// writer-produced (a real full image, a real delta, and structured
// mutations of both), so coverage starts deep inside the record framing
// rather than at the magic check.
func FuzzDecodeCheckpoint(f *testing.F) {
	world, m, ids := liveWorld(f)
	dir := f.TempDir()
	wr, err := NewWriter(Config{Dir: dir, WorldSeed: 7, Map: m, DeltaEvery: 4})
	if err != nil {
		f.Fatal(err)
	}
	capture(f, wr, world, Meta{Frame: 30, RecItems: 12}, sampleClients(ids))
	stepWorld(world, ids, 30, 40)
	capture(f, wr, world, Meta{Frame: 40, RecItems: 24}, sampleClients(ids))
	if err := wr.Close(); err != nil {
		f.Fatal(err)
	}
	full, err := readSeed(dir, 30, true)
	if err != nil {
		f.Fatal(err)
	}
	delta, err := readSeed(dir, 40, false)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(full)
	f.Add(delta)
	f.Add(full[:len(full)/2])    // truncated mid-stream
	f.Add(full[:7])              // truncated header
	f.Add([]byte{})              // empty
	f.Add([]byte("QCKP"))        // magic only
	f.Add(bytes.Repeat(full, 2)) // records after end marker
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x40 // flipped bit mid-file
	f.Add(corrupt)
	swapped := append([]byte(nil), full...)
	swapped[4], swapped[5] = 2, 0 // future version
	f.Add(swapped)
	spliced := append(append([]byte(nil), full[:len(full)-30]...), delta[len(delta)-30:]...)
	f.Add(spliced) // one file's body, another's tail

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if got != nil {
				t.Fatal("Decode returned both a checkpoint and an error")
			}
			return
		}
		// A successfully decoded checkpoint is valid by construction and
		// must survive a re-encode/decode cycle with identical content.
		// (Byte identity is not required here: the decoder accepts any
		// id-chunk sizes, the encoder normalizes them.)
		if verr := got.validate(); verr != nil {
			t.Fatalf("Decode returned an invalid checkpoint: %v", verr)
		}
		out, err := got.Encode()
		if err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if !reflect.DeepEqual(back.Entities, got.Entities) ||
			!reflect.DeepEqual(back.Gone, got.Gone) ||
			!reflect.DeepEqual(back.Free, got.Free) ||
			!reflect.DeepEqual(back.Clients, got.Clients) ||
			back.Digest != got.Digest || back.Frame != got.Frame {
			t.Fatal("re-encode changed checkpoint content")
		}
	})
}

func readSeed(dir string, frame uint64, full bool) ([]byte, error) {
	files, err := ListDir(dir)
	if err != nil {
		return nil, err
	}
	for _, fi := range files {
		if fi.Frame == frame && fi.Full == full {
			return os.ReadFile(fi.Path)
		}
	}
	return nil, fmt.Errorf("no seed checkpoint for frame %d full=%v", frame, full)
}
