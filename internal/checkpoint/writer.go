package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// Default cadence for servers that enable checkpointing without picking
// one: a full/delta rotation of one full image per eight deltas, with a
// capture every 120 frames (4s at the 30fps server rate) — frequent
// enough that the redo tail stays short, rare enough that the capture
// cost vanishes in the frame budget (<2% gated by TestCheckpointOverheadDES).
const (
	DefaultInterval   = 120
	DefaultDeltaEvery = 8
)

// Config parameterizes a Writer.
type Config struct {
	// Dir is the checkpoint directory; files are written as
	// ckpt-<frame>-full.qck / ckpt-<frame>-delta.qck via atomic rename.
	Dir string
	// Interval is the capture cadence in frames (capture when
	// frame%Interval == 0). Zero disables Due (manual captures only).
	Interval uint64
	// DeltaEvery is the number of delta checkpoints between full images;
	// zero means every checkpoint is full.
	DeltaEvery int
	// WorldSeed and Map go into the file header so recovery can rebuild
	// the world from the checkpoint alone.
	WorldSeed int64
	Map       *worldmap.Map
}

// Meta carries the engine-side counters a capture must record alongside
// the world: the completed frame, the replay-log item count at the
// barrier (the redo-log cut point), and the client-id/join allocation
// state.
type Meta struct {
	Frame        uint64
	RecItems     uint64
	JoinIdx      int
	NextClientID uint16
}

// Stats summarizes one committed capture.
type Stats struct {
	Bytes    int
	Full     bool
	Entities int // records emitted (changed+new for a delta)
	Gone     int
}

type flushReq struct {
	buf   []byte
	frame uint64
	full  bool
}

// Writer captures checkpoints at the reply barrier. The capture path —
// Begin, AddClient per client, Commit — encodes into a preallocated
// buffer and hands it to a background flusher goroutine; steady-state it
// performs zero heap allocations (gated by BenchmarkWriterCapture), so
// the barrier pays only the serialization walk. If the flusher still
// owns every buffer when a capture comes due, the capture is skipped and
// counted rather than blocking the frame.
type Writer struct {
	cfg    Config
	header []byte // precomputed magic+version+header record

	// Double-buffered encode targets: capture takes a buffer from free,
	// the flusher returns it after the rename.
	free chan []byte
	reqs chan flushReq
	done chan struct{}

	// base is the last full image's entity records (ascending ID), the
	// diff target for delta captures; cur is the scratch the next full
	// image builds into before the two swap.
	base      []EntityRec
	cur       []EntityRec
	baseTime  float64
	baseFrame uint64
	haveBase  bool
	gone      []uint32

	// In-flight capture state between Begin and Commit.
	buf       []byte
	enc       protocol.Writer
	digest    fnv64
	meta      Meta
	full      bool
	capturing bool
	nEnts     int
	nFree     int
	nClients  int

	captures uint64 // committed captures, for the full/delta cadence
	skipped  uint64

	mu       sync.Mutex
	flushErr error

	closeOnce sync.Once
}

// NewWriter builds a Writer and starts its flusher. The header (with the
// embedded map) is encoded once here; captures only copy it.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("checkpoint: no directory")
	}
	if cfg.Map == nil {
		return nil, fmt.Errorf("checkpoint: no map")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var mb bytes.Buffer
	if err := cfg.Map.Save(&mb); err != nil {
		return nil, fmt.Errorf("checkpoint: serializing map: %w", err)
	}
	w := &Writer{
		cfg:    cfg,
		header: appendHeader(nil, cfg.WorldSeed, protocol.Version, mb.Bytes()),
		free:   make(chan []byte, 2),
		reqs:   make(chan flushReq, 2),
		done:   make(chan struct{}),
	}
	w.free <- make([]byte, 0, len(w.header)+4096)
	w.free <- make([]byte, 0, len(w.header)+4096)
	go w.flusher()
	return w, nil
}

// Due reports whether a capture is scheduled for the just-completed
// frame.
func (w *Writer) Due(frame uint64) bool {
	return w.cfg.Interval > 0 && frame > 0 && frame%w.cfg.Interval == 0
}

// Skipped returns how many due captures were dropped because the
// flusher still owned every buffer.
func (w *Writer) Skipped() uint64 { return w.skipped }

// Err returns the first flush error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushErr
}

// Begin starts a capture of world at the reply barrier. It encodes the
// header, meta, entity, gone and free-list sections; the caller then
// feeds every connected client through AddClient (ascending client id)
// and seals the file with Commit. Returns false — capture skipped — when
// no encode buffer is free. The world must be frame-stable for the whole
// Begin..Commit window (the reply phase guarantees this).
//
//qvet:phase=reply
//qvet:noalloc
func (w *Writer) Begin(world *game.World, meta Meta) bool {
	var buf []byte
	select {
	case buf = <-w.free:
	default:
		w.skipped++
		w.capturing = false
		return false
	}

	w.meta = meta
	w.full = !w.haveBase || w.cfg.DeltaEvery <= 0 || w.captures%uint64(w.cfg.DeltaEvery+1) == 0
	w.buf = append(buf[:0], w.header...)
	w.digest = fnv64Offset.f64(world.Time)
	w.nEnts, w.nFree, w.nClients = 0, 0, 0
	w.gone = w.gone[:0]
	w.cur = w.cur[:0]

	// Meta record.
	p := &w.enc
	p.Reset()
	p.U64(meta.Frame)
	wF64(p, world.Time)
	p.U32(uint32(world.SpawnCursor()))
	p.U32(uint32(world.Ents.HighWater()))
	p.U32(uint32(world.Ents.Capacity()))
	p.U8(uint8(world.Tree.Depth()))
	p.U16(meta.NextClientID)
	p.U32(uint32(meta.JoinIdx))
	p.U64(meta.RecItems)
	if w.full {
		p.U8(1)
		p.U64(0)
	} else {
		p.U8(0)
		p.U64(w.baseFrame)
	}
	w.appendRecord(CkMeta)

	// Entity section: walk the live table in ID order, folding the
	// digest over every entity; full captures emit and retain every
	// record, deltas emit only records differing from the base image and
	// collect base IDs no longer live. The ForEach closure does not
	// escape, so it stays off the heap.
	if w.full {
		world.Ents.ForEach(func(e *entity.Entity) {
			var rec EntityRec
			recFromEntity(e, &rec)
			w.digest = w.digest.foldEntity(&rec)
			w.cur = append(w.cur, rec)
			p.Reset()
			encodeEntity(p, &rec)
			w.appendRecord(CkEntity)
			w.nEnts++
		})
		w.base, w.cur = w.cur, w.base
		w.baseTime = world.Time
		w.baseFrame = meta.Frame
		w.haveBase = true
	} else {
		bi := 0
		world.Ents.ForEach(func(e *entity.Entity) {
			var rec EntityRec
			recFromEntity(e, &rec)
			w.digest = w.digest.foldEntity(&rec)
			for bi < len(w.base) && w.base[bi].ID < rec.ID {
				w.gone = append(w.gone, w.base[bi].ID)
				bi++
			}
			changed := true
			if bi < len(w.base) && w.base[bi].ID == rec.ID {
				changed = rec != w.base[bi]
				bi++
			}
			if changed {
				p.Reset()
				encodeEntity(p, &rec)
				w.appendRecord(CkEntity)
				w.nEnts++
			}
		})
		for ; bi < len(w.base); bi++ {
			w.gone = append(w.gone, w.base[bi].ID)
		}
	}

	// Gone and free-list sections, chunked under the record size cap.
	w.appendIDChunks(CkGone, w.gone)
	free := world.Ents.FreeList()
	w.nFree = len(free)
	for start := 0; start < len(free); start += freeChunk {
		chunk := free[start:min(start+freeChunk, len(free))]
		p.Reset()
		p.U16(uint16(len(chunk)))
		for _, id := range chunk {
			p.U32(uint32(id))
		}
		w.appendRecord(CkFree)
	}

	w.capturing = true
	return true
}

func (w *Writer) appendIDChunks(kind uint8, ids []uint32) {
	for start := 0; start < len(ids); start += freeChunk {
		chunk := ids[start:min(start+freeChunk, len(ids))]
		w.enc.Reset()
		w.enc.U16(uint16(len(chunk)))
		for _, id := range chunk {
			w.enc.U32(id)
		}
		w.appendRecord(kind)
	}
}

// appendRecord frames w.enc.Buf as one record of the given kind onto the
// capture buffer. Payloads are bounded by construction (freeChunk,
// maxBaseline), so the u16 length cannot overflow.
func (w *Writer) appendRecord(kind uint8) {
	payload := w.enc.Buf
	if len(payload) > maxRecordPayload {
		//qvet:allow=noalloc unreachable-by-construction panic formatting
		panic(fmt.Sprintf("checkpoint: record kind %d payload %d bytes", kind, len(payload)))
	}
	start := len(w.buf)
	w.buf = append(w.buf, kind)
	w.buf = append(w.buf, byte(len(payload)), byte(len(payload)>>8))
	w.buf = append(w.buf, payload...)
	sum := protocol.Fold16(w.buf[start:])
	w.buf = append(w.buf, byte(sum), byte(sum>>8))
}

// AddClient appends one client record to the in-flight capture. Callers
// feed clients in ascending client-id order. No-op when Begin skipped.
//
//qvet:phase=reply
//qvet:noalloc
func (w *Writer) AddClient(rec ClientRec) {
	if !w.capturing {
		return
	}
	if len(rec.Baseline) > maxBaseline {
		rec.Baseline = rec.Baseline[:maxBaseline]
	}
	p := &w.enc
	p.Reset()
	encodeClient(p, &rec)
	w.appendRecord(CkClient)
	w.nClients++
}

// Commit seals the capture — end record with section counts and the
// world digest — and hands the buffer to the flusher. Returns the
// capture's stats; zero Stats when Begin skipped.
//
//qvet:phase=reply
//qvet:noalloc
func (w *Writer) Commit() Stats {
	if !w.capturing {
		return Stats{}
	}
	w.capturing = false
	p := &w.enc
	p.Reset()
	p.U32(uint32(w.nEnts))
	p.U32(uint32(len(w.gone)))
	p.U32(uint32(w.nFree))
	p.U32(uint32(w.nClients))
	p.U64(uint64(w.digest))
	w.appendRecord(CkEnd)

	st := Stats{Bytes: len(w.buf), Full: w.full, Entities: w.nEnts, Gone: len(w.gone)}
	w.captures++
	// Never blocks: reqs has the same capacity as free, and this buffer
	// was taken from free.
	w.reqs <- flushReq{buf: w.buf, frame: w.meta.Frame, full: w.full}
	w.buf = nil
	return st
}

// FileName returns the on-disk name for a capture of the given frame.
func FileName(frame uint64, full bool) string {
	kind := "delta"
	if full {
		kind = "full"
	}
	return fmt.Sprintf("ckpt-%016d-%s.qck", frame, kind)
}

func (w *Writer) flusher() {
	defer close(w.done)
	for req := range w.reqs {
		path := filepath.Join(w.cfg.Dir, FileName(req.frame, req.full))
		if err := atomicWrite(path, req.buf); err != nil {
			w.mu.Lock()
			if w.flushErr == nil {
				w.flushErr = err
			}
			w.mu.Unlock()
		}
		w.free <- req.buf
	}
}

// Close drains the flusher and returns the first flush error. Safe to
// call more than once; the writer must not be used afterwards.
func (w *Writer) Close() error {
	w.closeOnce.Do(func() {
		close(w.reqs)
		<-w.done
	})
	return w.Err()
}

// recFromEntity packs a live entity into its checkpoint record.
func recFromEntity(e *entity.Entity, rec *EntityRec) {
	rec.ID = uint32(e.ID)
	rec.Class = uint8(e.Class)
	rec.Flags = 0
	if e.OnGround {
		rec.Flags |= FlagOnGround
	}
	if e.HasPowerup {
		rec.Flags |= FlagHasPowerup
	}
	if e.SnapEligible {
		rec.Flags |= FlagSnapEligible
	}
	if e.Link.Linked() {
		rec.Flags |= FlagLinked
	}
	rec.Origin = e.Origin
	rec.Velocity = e.Velocity
	rec.Angles = e.Angles
	rec.Mins = e.Mins
	rec.Maxs = e.Maxs
	rec.Health = int64(e.Health)
	rec.Armor = int64(e.Armor)
	rec.Frags = int64(e.Frags)
	rec.Deaths = int64(e.Deaths)
	rec.Weapon = e.Weapon
	rec.Weapons = e.Weapons
	rec.Ammo = int64(e.Ammo)
	rec.PowerupUntil = e.PowerupUntil
	rec.ItemClass = uint8(e.ItemClass)
	rec.ItemSpawn = int64(e.ItemSpawn)
	rec.RespawnAt = e.RespawnAt
	rec.Owner = int32(e.Owner)
	rec.Damage = int64(e.Damage)
	rec.DieAt = e.DieAt
	rec.RespawnTime = e.RespawnTime
	rec.RefireAt = e.RefireAt
	rec.NextThink = e.NextThink
	rec.RoomID = int32(e.RoomID)
	rec.ModelFrame = e.ModelFrame
}
