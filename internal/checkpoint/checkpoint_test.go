package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// liveWorld builds an arena world with three players driven through
// enough frames to scatter positions, projectiles, and item state, plus
// a free-list hole from a removed player — the state shapes a checkpoint
// must carry.
func liveWorld(t testing.TB) (*game.World, *worldmap.Map, []entity.ID) {
	t.Helper()
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := game.NewWorld(game.Config{Map: m, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	players := make([]*entity.Entity, 0, 4)
	for i := 0; i < 4; i++ {
		e, err := w.SpawnPlayer()
		if err != nil {
			t.Fatal(err)
		}
		players = append(players, e)
	}
	ids := make([]entity.ID, 0, 3)
	stepWorld(w, []entity.ID{players[0].ID, players[1].ID, players[2].ID, players[3].ID}, 0, 30)
	w.RemovePlayer(players[3].ID)
	for _, e := range players[:3] {
		ids = append(ids, e.ID)
	}
	return w, m, ids
}

// stepWorld advances frames [from, to) with a fixed deterministic move
// script, so a restored world can be driven through the identical
// trajectory as the original.
func stepWorld(w *game.World, ids []entity.ID, from, to int) {
	lc := &game.LockContext{}
	for f := from; f < to; f++ {
		for pi, id := range ids {
			e := w.Ents.Get(id)
			if e == nil {
				continue
			}
			cmd := protocol.MoveCmd{
				Forward: 320,
				Side:    int16((f%5 - 2) * 60),
				Yaw:     protocol.AngleToWire(float64((pi*120 + f*7) % 360)),
				Buttons: uint8(f % 2),
				Msec:    16,
			}
			w.ExecuteMove(e, &cmd, lc)
		}
		w.RunWorldFrame(0.033)
	}
}

// snapshotRecs packs the live entity table into records, for comparing
// world states without going through a file.
func snapshotRecs(w *game.World) []EntityRec {
	var recs []EntityRec
	w.Ents.ForEach(func(e *entity.Entity) {
		var rec EntityRec
		recFromEntity(e, &rec)
		recs = append(recs, rec)
	})
	return recs
}

func worldDigest(w *game.World) uint64 {
	return DigestEntities(w.Time, snapshotRecs(w))
}

// sampleClients builds client records pointing at the given player
// entities, with small quantized baselines.
func sampleClients(ids []entity.ID) []ClientRec {
	out := make([]ClientRec, 0, len(ids))
	for i, id := range ids {
		out = append(out, ClientRec{
			ID:           uint16(i),
			EntID:        int32(id),
			Thread:       uint8(i % 2),
			LastSeq:      uint32(100 + i),
			RepliedFrame: uint32(30 + i),
			LoadNs:       int64(50_000 * (i + 1)),
			Name:         "player-" + string(rune('a'+i)),
			Addr:         "bot:" + string(rune('0'+i)),
			BaselineTag:  uint32(31 + i),
			Baseline: []protocol.EntityState{
				{ID: uint16(id), Class: 1, X: int16(10 * i), Y: -3, Z: 7, Yaw: 12, Frame: 1, Effects: 2},
				{ID: uint16(id) + 8, Class: 3, X: 100, Y: 50},
			},
		})
	}
	return out
}

// capture runs one Begin/AddClient/Commit cycle, waiting out the
// flusher if it still owns both buffers from earlier captures.
func capture(t testing.TB, w *Writer, world *game.World, meta Meta, clients []ClientRec) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !w.Begin(world, meta) {
		if time.Now().After(deadline) {
			t.Fatalf("capture of frame %d skipped for 5s", meta.Frame)
		}
		time.Sleep(time.Millisecond)
	}
	for _, c := range clients {
		w.AddClient(c)
	}
	return w.Commit()
}

// waitFile waits for the flusher's atomic rename to land.
func waitFile(t testing.TB, path string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("checkpoint file %s never appeared", path)
}

func captureToFile(t testing.TB, world *game.World, m *worldmap.Map, ids []entity.ID, dir string, frame uint64) string {
	t.Helper()
	wr, err := NewWriter(Config{Dir: dir, WorldSeed: 7, Map: m})
	if err != nil {
		t.Fatal(err)
	}
	capture(t, wr, world, Meta{Frame: frame, RecItems: 40, JoinIdx: 4, NextClientID: 3}, sampleClients(ids))
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, FileName(frame, true))
}
