// Package checkpoint implements durable world state for the game server
// (DESIGN.md §12): frame-barrier checkpoints of the entity table, the
// per-client delta baselines, balance assignments and frame/seq
// counters, written through an allocation-free capture path at the reply
// barrier — where the phase discipline makes the entity table read-only —
// and flushed to an atomic-rename, checksummed on-disk format by a
// background goroutine. Incremental (delta) checkpoints carry only the
// entities that changed against the last full image, mirroring the wire
// protocol's DNew/DChange/DRemove discipline at full float64 precision.
//
// A checkpoint is the recovery line; the replay log (internal/replay) is
// the redo log: recovery cold-starts a world from the newest valid
// checkpoint and replays the `.qrl` tail recorded since it to reach the
// exact pre-crash frame (replay.Recover).
package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"

	"qserve/internal/geom"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// Checkpoint file layout (all integers little-endian), mirroring the
// `.qrl` conventions of internal/replay:
//
//	magic   "QCKP"
//	version u16 (currently 1)
//	header record: [len u32][payload][sum u16]
//	    payload: worldSeed i64, protoVer u8, mapJSON bytes
//	records: [kind u8][len u16][payload][sum u16] ...
//
// Each sum is the wire v3 FNV-1a 16-bit fold (protocol.Fold16) over
// everything preceding it in the record, framing included. The map is
// embedded so recovery needs nothing but the checkpoint file. The record
// stream is strictly ordered: one CkMeta, the entity records in
// ascending ID order, the gone-ID records (delta only), the free-list
// records, the client records in ascending client-id order, and one
// CkEnd carrying the section counts and the post-state world digest.

// Record kinds.
const (
	CkMeta   uint8 = 1 // frame counters, world clock, table geometry
	CkEntity uint8 = 2 // one full-precision entity record
	CkGone   uint8 = 3 // delta only: entity IDs removed since the base image
	CkFree   uint8 = 4 // free-list IDs in stack order (chunked)
	CkClient uint8 = 5 // one client: identity, seq state, delta baseline
	CkEnd    uint8 = 6 // section counts + world digest
)

// FormatVersion is the current checkpoint format version.
//
//qvet:wire=qckp version
const FormatVersion = 1

//qvet:allow=globalstate written-once format magic, never mutated
var ckMagic = [4]byte{'Q', 'C', 'K', 'P'}

// Decode errors. All are wrapped with position context; none of the
// decode paths panic, whatever the input, and on error the returned
// Checkpoint is nil — a corrupt file never half-applies.
var (
	ErrBadMagic   = errors.New("checkpoint: not a checkpoint (bad magic)")
	ErrBadVersion = errors.New("checkpoint: unsupported format version")
	ErrTruncated  = errors.New("checkpoint: truncated file")
	ErrChecksum   = errors.New("checkpoint: record checksum mismatch")
	ErrBadRecord  = errors.New("checkpoint: malformed record")
	ErrOutOfOrder = errors.New("checkpoint: record out of order")
	ErrDigest     = errors.New("checkpoint: world digest mismatch")
	ErrTooLarge   = errors.New("checkpoint: exceeds size limits")
)

// EntityRec is one entity's checkpointed state at full precision — the
// raw float64 fields, not the quantized wire form, because the recovery
// contract is bit-identity of the restored table (replay.TableDigest).
// The struct is flat and comparable: the delta capture diffs records
// with ==, and the writer's retained base image packs into one slice.
//
//qvet:wire=qckp
type EntityRec struct {
	ID    uint32
	Class uint8
	Flags uint8 // FlagOnGround | FlagHasPowerup | FlagSnapEligible | FlagLinked

	Origin, Velocity, Angles geom.Vec3
	Mins, Maxs               geom.Vec3

	Health, Armor, Frags, Deaths int64

	Weapon       uint8
	Weapons      uint16
	Ammo         int64
	PowerupUntil float64

	ItemClass uint8
	ItemSpawn int64
	RespawnAt float64

	Owner  int32
	Damage int64
	DieAt  float64

	RespawnTime, RefireAt, NextThink float64

	RoomID     int32
	ModelFrame uint8
}

// EntityRec flag bits.
const (
	FlagOnGround uint8 = 1 << iota
	FlagHasPowerup
	FlagSnapEligible
	FlagLinked
)

// ClientRec is one connected client's checkpointed state: identity and
// reconnect matching keys, the owning thread (the balance assignment),
// sequence/reply counters, the balancer's load estimate, and the delta
// baseline in the wire's quantized form.
//
//qvet:wire=qckp
type ClientRec struct {
	ID           uint16
	EntID        int32
	Thread       uint8
	LastSeq      uint32
	RepliedFrame uint32
	LoadNs       int64
	Name         string
	Addr         string
	BaselineTag  uint32
	Baseline     []protocol.EntityState
}

// Checkpoint is a fully decoded checkpoint.
//
//qvet:wire=qckp
type Checkpoint struct {
	WorldSeed int64
	ProtoVer  uint8
	// Map is the session's world map, embedded so recovery needs nothing
	// but the file.
	Map *worldmap.Map
	// mapJSON caches the exact serialized form for re-encoding.
	mapJSON []byte

	// Frame is the last completed frame the checkpoint covers.
	Frame uint64
	// WorldTime is the world clock at capture.
	WorldTime float64
	// SpawnCursor is the spawn-point rotation cursor.
	SpawnCursor int
	// HighWater and Capacity are the entity table's geometry; TreeDepth
	// is the areanode leaf depth — all three must be restored exactly or
	// post-recovery evolution diverges from the no-crash world.
	HighWater int
	Capacity  int
	TreeDepth int
	// NextClientID and JoinIdx restore client-id allocation and the
	// static-assignment join counter.
	NextClientID uint16
	JoinIdx      int
	// RecItems is the replay-log item count at capture: a redo log
	// recorded alongside this checkpoint replays items[RecItems:] to roll
	// forward (replay.Recover).
	RecItems uint64
	// Full distinguishes full images from deltas; a delta's BaseFrame
	// names the full checkpoint it diffs against.
	Full      bool
	BaseFrame uint64

	// Entities is the entity section in ascending ID order: every active
	// entity for a full checkpoint, the changed-or-new ones for a delta.
	Entities []EntityRec
	// Gone lists entity IDs removed since the base image (delta only).
	Gone []uint32
	// Free is the entity free list in stack order.
	Free []uint32
	// Clients is the connected-client section in ascending id order.
	Clients []ClientRec

	// Digest is the post-state world digest (replay.TableDigest of the
	// world this checkpoint reconstructs — for a delta, after merging).
	Digest uint64
}

// Size bounds: structural limits a corrupted length field cannot push
// past, far above anything the engine emits.
const (
	maxRecordPayload = 1<<16 - 1
	maxMapJSON       = 64 << 20
	maxEntities      = 1 << 20
	maxFreeIDs       = 1 << 20
	maxClients       = 1 << 16
	maxBaseline      = 4096 // mirrors the wire's snapshot entity bound
)

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func wF64(w *protocol.Writer, v float64) { w.U64(math.Float64bits(v)) }
func rF64(r *protocol.Reader) float64    { return math.Float64frombits(r.U64()) }

func wVec(w *protocol.Writer, v geom.Vec3) {
	wF64(w, v.X)
	wF64(w, v.Y)
	wF64(w, v.Z)
}

func rVec(r *protocol.Reader) geom.Vec3 {
	return geom.Vec3{X: rF64(r), Y: rF64(r), Z: rF64(r)}
}

// appendHeader appends the magic, version, and checksummed header record
// (worldSeed, protoVer, map JSON) to dst.
func appendHeader(dst []byte, worldSeed int64, protoVer uint8, mapJSON []byte) []byte {
	w := protocol.Writer{Buf: dst}
	w.Buf = append(w.Buf, ckMagic[:]...)
	w.U16(FormatVersion)
	hdrStart := len(w.Buf)
	w.U32(0) // length placeholder
	w.I64(worldSeed)
	w.U8(protoVer)
	w.Buf = append(w.Buf, mapJSON...)
	putU32(w.Buf[hdrStart:], uint32(len(w.Buf)-hdrStart-4))
	w.U16(protocol.Fold16(w.Buf[hdrStart:]))
	return w.Buf
}

// frameRecord frames one record: kind, u16 length, payload, Fold16 sum.
func frameRecord(dst []byte, kind uint8, payload []byte) ([]byte, error) {
	if len(payload) > maxRecordPayload {
		return dst, fmt.Errorf("%w: record payload %d bytes", ErrTooLarge, len(payload))
	}
	start := len(dst)
	dst = append(dst, kind)
	dst = append(dst, byte(len(payload)), byte(len(payload)>>8))
	dst = append(dst, payload...)
	sum := protocol.Fold16(dst[start:])
	dst = append(dst, byte(sum), byte(sum>>8))
	return dst, nil
}

func encodeMeta(p *protocol.Writer, ck *Checkpoint) {
	p.U64(ck.Frame)
	wF64(p, ck.WorldTime)
	p.U32(uint32(ck.SpawnCursor))
	p.U32(uint32(ck.HighWater))
	p.U32(uint32(ck.Capacity))
	p.U8(uint8(ck.TreeDepth))
	p.U16(ck.NextClientID)
	p.U32(uint32(ck.JoinIdx))
	p.U64(ck.RecItems)
	if ck.Full {
		p.U8(1)
	} else {
		p.U8(0)
	}
	p.U64(ck.BaseFrame)
}

func decodeMeta(r *protocol.Reader, ck *Checkpoint) error {
	ck.Frame = r.U64()
	ck.WorldTime = rF64(r)
	ck.SpawnCursor = int(r.U32())
	ck.HighWater = int(r.U32())
	ck.Capacity = int(r.U32())
	ck.TreeDepth = int(r.U8())
	ck.NextClientID = r.U16()
	ck.JoinIdx = int(r.U32())
	ck.RecItems = r.U64()
	full := r.U8()
	ck.BaseFrame = r.U64()
	if full > 1 {
		return fmt.Errorf("%w: meta full flag %d", ErrBadRecord, full)
	}
	ck.Full = full == 1
	if ck.Full && ck.BaseFrame != 0 {
		return fmt.Errorf("%w: full checkpoint names base frame %d", ErrBadRecord, ck.BaseFrame)
	}
	if ck.Capacity <= 0 || ck.Capacity > maxEntities {
		return fmt.Errorf("%w: capacity %d", ErrBadRecord, ck.Capacity)
	}
	if ck.HighWater < 0 || ck.HighWater > ck.Capacity {
		return fmt.Errorf("%w: high water %d over capacity %d", ErrBadRecord, ck.HighWater, ck.Capacity)
	}
	if ck.TreeDepth > 31 {
		return fmt.Errorf("%w: areanode depth %d", ErrBadRecord, ck.TreeDepth)
	}
	return nil
}

func encodeEntity(p *protocol.Writer, e *EntityRec) {
	p.U32(e.ID)
	p.U8(e.Class)
	p.U8(e.Flags)
	wVec(p, e.Origin)
	wVec(p, e.Velocity)
	wVec(p, e.Angles)
	wVec(p, e.Mins)
	wVec(p, e.Maxs)
	p.I64(e.Health)
	p.I64(e.Armor)
	p.I64(e.Frags)
	p.I64(e.Deaths)
	p.U8(e.Weapon)
	p.U16(e.Weapons)
	p.I64(e.Ammo)
	wF64(p, e.PowerupUntil)
	p.U8(e.ItemClass)
	p.I64(e.ItemSpawn)
	wF64(p, e.RespawnAt)
	p.I32(e.Owner)
	p.I64(e.Damage)
	wF64(p, e.DieAt)
	wF64(p, e.RespawnTime)
	wF64(p, e.RefireAt)
	wF64(p, e.NextThink)
	p.I32(e.RoomID)
	p.U8(e.ModelFrame)
}

func decodeEntity(r *protocol.Reader, e *EntityRec) {
	e.ID = r.U32()
	e.Class = r.U8()
	e.Flags = r.U8()
	e.Origin = rVec(r)
	e.Velocity = rVec(r)
	e.Angles = rVec(r)
	e.Mins = rVec(r)
	e.Maxs = rVec(r)
	e.Health = r.I64()
	e.Armor = r.I64()
	e.Frags = r.I64()
	e.Deaths = r.I64()
	e.Weapon = r.U8()
	e.Weapons = r.U16()
	e.Ammo = r.I64()
	e.PowerupUntil = rF64(r)
	e.ItemClass = r.U8()
	e.ItemSpawn = r.I64()
	e.RespawnAt = rF64(r)
	e.Owner = r.I32()
	e.Damage = r.I64()
	e.DieAt = rF64(r)
	e.RespawnTime = rF64(r)
	e.RefireAt = rF64(r)
	e.NextThink = rF64(r)
	e.RoomID = r.I32()
	e.ModelFrame = r.U8()
}

func encodeClient(p *protocol.Writer, c *ClientRec) {
	p.U16(c.ID)
	p.I32(c.EntID)
	p.U8(c.Thread)
	p.U32(c.LastSeq)
	p.U32(c.RepliedFrame)
	p.I64(c.LoadNs)
	p.String(c.Name)
	p.String(c.Addr)
	p.U32(c.BaselineTag)
	p.U16(uint16(len(c.Baseline)))
	for i := range c.Baseline {
		st := &c.Baseline[i]
		p.U16(st.ID)
		p.U8(st.Class)
		p.I16(st.X)
		p.I16(st.Y)
		p.I16(st.Z)
		p.U8(st.Yaw)
		p.U8(st.Frame)
		p.U8(st.Effects)
	}
}

func decodeClient(r *protocol.Reader, c *ClientRec) error {
	c.ID = r.U16()
	c.EntID = r.I32()
	c.Thread = r.U8()
	c.LastSeq = r.U32()
	c.RepliedFrame = r.U32()
	c.LoadNs = r.I64()
	c.Name = r.String()
	c.Addr = r.String()
	c.BaselineTag = r.U32()
	n := int(r.U16())
	if n > maxBaseline {
		return fmt.Errorf("%w: client %d baseline of %d states", ErrBadRecord, c.ID, n)
	}
	if r.Err() != nil {
		return nil // latched; caller reports
	}
	c.Baseline = make([]protocol.EntityState, n)
	for i := range c.Baseline {
		st := &c.Baseline[i]
		st.ID = r.U16()
		st.Class = r.U8()
		st.X = r.I16()
		st.Y = r.I16()
		st.Z = r.I16()
		st.Yaw = r.U8()
		st.Frame = r.U8()
		st.Effects = r.U8()
	}
	return nil
}

// freeChunk bounds how many IDs one CkFree/CkGone record carries, so the
// payload stays within the u16 length field.
const freeChunk = 8192

// Encode serializes the checkpoint. The inverse of Decode; the map blob
// is carried verbatim, so Encode∘Decode is the identity on the byte
// level.
//
//qvet:det
//qvet:wire=qckp encode
func (ck *Checkpoint) Encode() ([]byte, error) {
	mapJSON := ck.mapJSON
	if mapJSON == nil {
		if ck.Map == nil {
			return nil, fmt.Errorf("checkpoint: no map")
		}
		var mb bytes.Buffer
		if err := ck.Map.Save(&mb); err != nil {
			return nil, fmt.Errorf("checkpoint: serializing map: %w", err)
		}
		mapJSON = mb.Bytes()
	}

	buf := make([]byte, 0, 256+len(mapJSON)+len(ck.Entities)*280+len(ck.Clients)*64)
	buf = appendHeader(buf, ck.WorldSeed, ck.ProtoVer, mapJSON)

	var p protocol.Writer
	p.Buf = make([]byte, 0, 512)
	var err error

	encodeMeta(&p, ck)
	if buf, err = frameRecord(buf, CkMeta, p.Buf); err != nil {
		return nil, err
	}
	for i := range ck.Entities {
		p.Reset()
		encodeEntity(&p, &ck.Entities[i])
		if buf, err = frameRecord(buf, CkEntity, p.Buf); err != nil {
			return nil, err
		}
	}
	// Section order matters: the decoder rejects a Gone record after the
	// Free section has opened.
	for _, sec := range [2]struct {
		kind uint8
		ids  []uint32
	}{{CkGone, ck.Gone}, {CkFree, ck.Free}} {
		for start := 0; start < len(sec.ids); start += freeChunk {
			chunk := sec.ids[start:min(start+freeChunk, len(sec.ids))]
			p.Reset()
			p.U16(uint16(len(chunk)))
			for _, id := range chunk {
				p.U32(id)
			}
			if buf, err = frameRecord(buf, sec.kind, p.Buf); err != nil {
				return nil, err
			}
		}
	}
	for i := range ck.Clients {
		p.Reset()
		encodeClient(&p, &ck.Clients[i])
		if buf, err = frameRecord(buf, CkClient, p.Buf); err != nil {
			return nil, err
		}
	}
	p.Reset()
	p.U32(uint32(len(ck.Entities)))
	p.U32(uint32(len(ck.Gone)))
	p.U32(uint32(len(ck.Free)))
	p.U32(uint32(len(ck.Clients)))
	p.U64(ck.Digest)
	if buf, err = frameRecord(buf, CkEnd, p.Buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Decode parses a complete checkpoint. It is total: any input —
// truncated, bit-flipped, reordered, or adversarial — yields an error,
// never a panic, and on error the returned Checkpoint is nil.
//
//qvet:wire=qckp decode
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckMagic)+2 {
		return nil, ErrTruncated
	}
	if !bytes.Equal(data[:4], ckMagic[:]) {
		return nil, ErrBadMagic
	}
	version := uint16(data[4]) | uint16(data[5])<<8
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	pos := 6

	// Header record: [len u32][payload][sum u16].
	if len(data)-pos < 4 {
		return nil, fmt.Errorf("%w: header length", ErrTruncated)
	}
	hlen := int(uint32(data[pos]) | uint32(data[pos+1])<<8 | uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24)
	if hlen < 9 || hlen > maxMapJSON {
		return nil, fmt.Errorf("%w: header payload %d bytes", ErrBadRecord, hlen)
	}
	if len(data)-pos < 4+hlen+2 {
		return nil, fmt.Errorf("%w: header body", ErrTruncated)
	}
	framed := data[pos : pos+4+hlen]
	sum := uint16(data[pos+4+hlen]) | uint16(data[pos+4+hlen+1])<<8
	if protocol.Fold16(framed) != sum {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	hr := protocol.NewReader(framed[4:])
	ck := &Checkpoint{}
	ck.WorldSeed = hr.I64()
	ck.ProtoVer = hr.U8()
	mapJSON := framed[4+9:]
	m, err := worldmap.Load(bytes.NewReader(mapJSON))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: embedded map: %w", err)
	}
	ck.Map = m
	ck.mapJSON = append([]byte(nil), mapJSON...)
	pos += 4 + hlen + 2

	// Body records, in strict section order.
	const (
		secMeta = iota
		secEntities
		secGone
		secFree
		secClients
		secEnd
	)
	sec := secMeta
	sawEnd := false
	var endEnts, endGone, endFree, endClients uint32
	for pos < len(data) {
		if sawEnd {
			return nil, fmt.Errorf("%w: records after end marker", ErrOutOfOrder)
		}
		if len(data)-pos < 3 {
			return nil, fmt.Errorf("%w: record header at %d", ErrTruncated, pos)
		}
		kind := data[pos]
		plen := int(uint16(data[pos+1]) | uint16(data[pos+2])<<8)
		if len(data)-pos < 3+plen+2 {
			return nil, fmt.Errorf("%w: record body at %d", ErrTruncated, pos)
		}
		framed := data[pos : pos+3+plen]
		rsum := uint16(data[pos+3+plen]) | uint16(data[pos+3+plen+1])<<8
		if protocol.Fold16(framed) != rsum {
			return nil, fmt.Errorf("%w: record at %d", ErrChecksum, pos)
		}
		r := protocol.NewReader(framed[3:])

		// Section transitions only move forward.
		want := func(s int) error {
			if sec > s {
				return fmt.Errorf("%w: kind %d at %d after its section closed", ErrOutOfOrder, kind, pos)
			}
			sec = s
			return nil
		}
		switch kind {
		case CkMeta:
			if sec != secMeta {
				return nil, fmt.Errorf("%w: duplicate meta at %d", ErrOutOfOrder, pos)
			}
			if err := decodeMeta(r, ck); err != nil {
				return nil, fmt.Errorf("%w (at %d)", err, pos)
			}
			sec = secEntities
		case CkEntity:
			if sec == secMeta {
				return nil, fmt.Errorf("%w: entity before meta", ErrOutOfOrder)
			}
			if err := want(secEntities); err != nil {
				return nil, err
			}
			if len(ck.Entities) >= maxEntities {
				return nil, fmt.Errorf("%w: over %d entities", ErrTooLarge, maxEntities)
			}
			var e EntityRec
			decodeEntity(r, &e)
			if n := len(ck.Entities); n > 0 && ck.Entities[n-1].ID >= e.ID {
				return nil, fmt.Errorf("%w: entity %d not above %d", ErrOutOfOrder, e.ID, ck.Entities[n-1].ID)
			}
			if int(e.ID) >= ck.Capacity {
				return nil, fmt.Errorf("%w: entity %d past capacity %d", ErrBadRecord, e.ID, ck.Capacity)
			}
			ck.Entities = append(ck.Entities, e)
		case CkGone, CkFree:
			if sec == secMeta {
				return nil, fmt.Errorf("%w: ids before meta", ErrOutOfOrder)
			}
			s, dst, lim := secGone, &ck.Gone, maxEntities
			if kind == CkFree {
				s, dst, lim = secFree, &ck.Free, maxFreeIDs
			}
			if err := want(s); err != nil {
				return nil, err
			}
			n := int(r.U16())
			for i := 0; i < n; i++ {
				id := r.U32()
				if r.Err() != nil {
					break
				}
				if len(*dst) >= lim {
					return nil, fmt.Errorf("%w: over %d ids", ErrTooLarge, lim)
				}
				if int(id) >= ck.Capacity {
					return nil, fmt.Errorf("%w: id %d past capacity %d", ErrBadRecord, id, ck.Capacity)
				}
				*dst = append(*dst, id)
			}
		case CkClient:
			if sec == secMeta {
				return nil, fmt.Errorf("%w: client before meta", ErrOutOfOrder)
			}
			if err := want(secClients); err != nil {
				return nil, err
			}
			if len(ck.Clients) >= maxClients {
				return nil, fmt.Errorf("%w: over %d clients", ErrTooLarge, maxClients)
			}
			var c ClientRec
			if err := decodeClient(r, &c); err != nil {
				return nil, fmt.Errorf("%w (at %d)", err, pos)
			}
			if n := len(ck.Clients); n > 0 && ck.Clients[n-1].ID >= c.ID {
				return nil, fmt.Errorf("%w: client %d not above %d", ErrOutOfOrder, c.ID, ck.Clients[n-1].ID)
			}
			ck.Clients = append(ck.Clients, c)
		case CkEnd:
			if sec == secMeta {
				return nil, fmt.Errorf("%w: end before meta", ErrOutOfOrder)
			}
			sec = secEnd
			endEnts = r.U32()
			endGone = r.U32()
			endFree = r.U32()
			endClients = r.U32()
			ck.Digest = r.U64()
			sawEnd = true
		default:
			return nil, fmt.Errorf("%w: unknown kind %d at %d", ErrBadRecord, kind, pos)
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: kind %d payload at %d: %v", ErrBadRecord, kind, pos, r.Err())
		}
		if r.Remaining() != 0 {
			return nil, fmt.Errorf("%w: kind %d has %d trailing payload bytes at %d", ErrBadRecord, kind, r.Remaining(), pos)
		}
		pos += 3 + plen + 2
	}
	if !sawEnd {
		return nil, fmt.Errorf("%w: no end record", ErrTruncated)
	}
	if int(endEnts) != len(ck.Entities) || int(endGone) != len(ck.Gone) ||
		int(endFree) != len(ck.Free) || int(endClients) != len(ck.Clients) {
		return nil, fmt.Errorf("%w: end counts %d/%d/%d/%d vs sections %d/%d/%d/%d",
			ErrBadRecord, endEnts, endGone, endFree, endClients,
			len(ck.Entities), len(ck.Gone), len(ck.Free), len(ck.Clients))
	}
	if err := ck.validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// validate performs the semantic checks beyond framing: section contents
// must describe a table that can actually be rebuilt.
func (ck *Checkpoint) validate() error {
	seen := make(map[uint32]bool, len(ck.Free))
	active := make(map[uint32]bool, len(ck.Entities))
	for i := range ck.Entities {
		if int(ck.Entities[i].ID) >= ck.HighWater {
			return fmt.Errorf("%w: entity %d above high water %d", ErrBadRecord, ck.Entities[i].ID, ck.HighWater)
		}
		active[ck.Entities[i].ID] = true
	}
	for _, id := range ck.Free {
		if int(id) >= ck.HighWater {
			return fmt.Errorf("%w: free id %d above high water %d", ErrBadRecord, id, ck.HighWater)
		}
		if seen[id] {
			return fmt.Errorf("%w: free id %d listed twice", ErrBadRecord, id)
		}
		if ck.Full && active[id] {
			return fmt.Errorf("%w: free id %d is active", ErrBadRecord, id)
		}
		seen[id] = true
	}
	if ck.Full {
		if len(ck.Gone) > 0 {
			return fmt.Errorf("%w: full checkpoint carries gone ids", ErrBadRecord)
		}
		if len(ck.Entities)+len(ck.Free) != ck.HighWater {
			return fmt.Errorf("%w: %d entities + %d free does not tile high water %d",
				ErrBadRecord, len(ck.Entities), len(ck.Free), ck.HighWater)
		}
	}
	for i := 1; i < len(ck.Gone); i++ {
		if ck.Gone[i-1] >= ck.Gone[i] {
			return fmt.Errorf("%w: gone ids not ascending", ErrOutOfOrder)
		}
	}
	return nil
}

// Merge applies a delta checkpoint to its base full image, returning the
// reconstructed full checkpoint. The delta's meta, free list, clients,
// and digest are authoritative; the entity set is the base's with the
// delta's records replacing or inserting and the gone IDs removed.
func Merge(base, delta *Checkpoint) (*Checkpoint, error) {
	if !base.Full {
		return nil, fmt.Errorf("%w: merge base is not a full checkpoint", ErrBadRecord)
	}
	if delta.Full {
		return nil, fmt.Errorf("%w: merge delta is a full checkpoint", ErrBadRecord)
	}
	if delta.BaseFrame != base.Frame {
		return nil, fmt.Errorf("%w: delta bases frame %d, image is frame %d", ErrBadRecord, delta.BaseFrame, base.Frame)
	}
	out := *delta
	out.Full = true
	out.BaseFrame = 0
	gone := make(map[uint32]bool, len(delta.Gone))
	for _, id := range delta.Gone {
		gone[id] = true
	}
	merged := make([]EntityRec, 0, len(base.Entities)+len(delta.Entities))
	bi, di := 0, 0
	for bi < len(base.Entities) || di < len(delta.Entities) {
		switch {
		case di >= len(delta.Entities) || (bi < len(base.Entities) && base.Entities[bi].ID < delta.Entities[di].ID):
			if !gone[base.Entities[bi].ID] {
				merged = append(merged, base.Entities[bi])
			}
			bi++
		case bi >= len(base.Entities) || delta.Entities[di].ID < base.Entities[bi].ID:
			merged = append(merged, delta.Entities[di])
			di++
		default: // equal IDs: delta replaces
			merged = append(merged, delta.Entities[di])
			bi++
			di++
		}
	}
	out.Entities = merged
	out.Gone = nil
	if err := out.validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// VerifyDigest recomputes the world digest from a full checkpoint's
// entity section and compares it to the recorded one. Deltas must be
// merged first.
func (ck *Checkpoint) VerifyDigest() error {
	if !ck.Full {
		return fmt.Errorf("checkpoint: cannot verify a delta standalone (merge with its base first)")
	}
	if got := DigestEntities(ck.WorldTime, ck.Entities); got != ck.Digest {
		return fmt.Errorf("%w: computed %016x, recorded %016x", ErrDigest, got, ck.Digest)
	}
	return nil
}

// WriteFile encodes the checkpoint to path via write-to-temp plus
// atomic rename, so a crash mid-write never leaves a torn file under the
// final name.
func (ck *Checkpoint) WriteFile(path string) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	return atomicWrite(path, data)
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile decodes a checkpoint from path.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
