// Package collide answers solid-geometry queries against a map's brush
// set: point contents, segment traces, and swept-box traces. It plays the
// role of the Quake engine's BSP hull clipping, which the paper's move
// execution uses to simulate player motion against the world.
//
// The structure is a kd-tree over the brush AABBs with axis-aligned
// median splits (the same flavour of binary space partition the original
// maps use, built over our box-shaped brushes). Brushes straddling a
// split plane are referenced by both children. Queries report work
// counters (nodes visited, brush tests) that the cost model uses to
// charge virtual time in the simulated-machine engine.
package collide

import (
	"sort"

	"qserve/internal/geom"
)

// Tree is an immutable spatial index over a map's solid brushes. It is
// safe for concurrent use by multiple goroutines once built.
type Tree struct {
	brushes []geom.AABB
	nodes   []node
	bounds  geom.AABB
}

type node struct {
	plane    geom.AxisPlane
	children [2]int32 // front, back; -1 when leaf
	brushes  []int32  // leaf payload
}

const (
	leafTarget = 4  // split until a node holds at most this many brushes
	maxDepth   = 16 // hard cap against pathological duplication
)

// Work accumulates query effort. The same counters feed both profiling
// and the discrete-event cost model.
type Work struct {
	Nodes      int // tree nodes visited
	BrushTests int // brush slab tests performed
}

// Add accumulates o into w.
func (w *Work) Add(o Work) {
	w.Nodes += o.Nodes
	w.BrushTests += o.BrushTests
}

// NewTree builds the index. The brush slice is copied; the caller may
// reuse it.
func NewTree(brushes []geom.AABB, bounds geom.AABB) *Tree {
	t := &Tree{
		brushes: append([]geom.AABB(nil), brushes...),
		bounds:  bounds,
	}
	all := make([]int32, len(brushes))
	for i := range all {
		all[i] = int32(i)
	}
	t.build(all, bounds, 0)
	return t
}

// build constructs the subtree for the given brush subset and returns its
// node index.
func (t *Tree) build(idx []int32, bounds geom.AABB, depth int) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{children: [2]int32{-1, -1}})

	if len(idx) <= leafTarget || depth >= maxDepth {
		t.nodes[self].brushes = idx
		return self
	}

	axis := bounds.LongestAxis()
	dist := medianCenter(t.brushes, idx, axis)
	pl := geom.AxisPlane{Axis: axis, Dist: dist}

	var front, back []int32
	for _, bi := range idx {
		switch pl.SideBox(t.brushes[bi]) {
		case geom.SideFront:
			front = append(front, bi)
		case geom.SideBack:
			back = append(back, bi)
		default:
			front = append(front, bi)
			back = append(back, bi)
		}
	}
	// Degenerate split: all brushes land on one side (including via
	// duplication). Fall back to a leaf to guarantee termination.
	if len(front) == len(idx) && len(back) == len(idx) ||
		len(front) == 0 || len(back) == 0 {
		t.nodes[self].brushes = idx
		return self
	}

	fb, bb := pl.SplitBox(bounds)
	t.nodes[self].plane = pl
	fi := t.build(front, fb, depth+1)
	bi := t.build(back, bb, depth+1)
	t.nodes[self].children = [2]int32{fi, bi}
	return self
}

// medianCenter returns the median brush-center coordinate along axis,
// the split position heuristic.
func medianCenter(brushes []geom.AABB, idx []int32, axis int) float64 {
	cs := make([]float64, len(idx))
	for i, bi := range idx {
		cs[i] = brushes[bi].Center().Axis(axis)
	}
	sort.Float64s(cs)
	return cs[len(cs)/2]
}

// Bounds returns the world volume the tree covers.
func (t *Tree) Bounds() geom.AABB { return t.bounds }

// NumBrushes returns the number of indexed brushes.
func (t *Tree) NumBrushes() int { return len(t.brushes) }

// NumNodes returns the number of tree nodes (diagnostics).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// PointSolid reports whether p is strictly inside any solid brush.
// Points exactly on a brush face are not solid, so entities resting on
// surfaces do not register as stuck.
func (t *Tree) PointSolid(p geom.Vec3, w *Work) bool {
	ni := int32(0)
	for {
		n := &t.nodes[ni]
		if w != nil {
			w.Nodes++
		}
		if n.children[0] < 0 {
			for _, bi := range n.brushes {
				if w != nil {
					w.BrushTests++
				}
				if t.brushes[bi].ContainsStrict(p) {
					return true
				}
			}
			return false
		}
		if n.plane.SidePoint(p) == geom.SideFront {
			ni = n.children[0]
		} else {
			ni = n.children[1]
		}
	}
}

// BoxSolid reports whether box strictly overlaps any solid brush, used
// for spawn-point and teleport-destination validation.
func (t *Tree) BoxSolid(box geom.AABB, w *Work) bool {
	found := false
	t.walkBox(0, box, w, func(bi int32) bool {
		if t.brushes[bi].IntersectsStrict(box) {
			found = true
			return false
		}
		return true
	})
	return found
}

// walkBox visits every brush whose node region intersects box, calling fn
// until it returns false. Brushes may be visited more than once when they
// straddle split planes; callers must tolerate duplicates.
func (t *Tree) walkBox(ni int32, box geom.AABB, w *Work, fn func(int32) bool) bool {
	n := &t.nodes[ni]
	if w != nil {
		w.Nodes++
	}
	if n.children[0] < 0 {
		for _, bi := range n.brushes {
			if w != nil {
				w.BrushTests++
			}
			if !fn(bi) {
				return false
			}
		}
		return true
	}
	side := n.plane.SideBox(box)
	if side&geom.SideFront != 0 {
		if !t.walkBox(n.children[0], box, w, fn) {
			return false
		}
	}
	if side&geom.SideBack != 0 {
		if !t.walkBox(n.children[1], box, w, fn) {
			return false
		}
	}
	return true
}
