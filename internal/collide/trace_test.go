package collide

import (
	"math"
	"math/rand"
	"testing"

	"qserve/internal/geom"
	"qserve/internal/worldmap"
)

func testTree(t testing.TB) (*Tree, *worldmap.Map) {
	t.Helper()
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	boxes := make([]geom.AABB, len(m.Brushes))
	for i, b := range m.Brushes {
		boxes[i] = b.Box
	}
	return NewTree(boxes, m.Bounds), m
}

func TestTreeBuild(t *testing.T) {
	tr, m := testTree(t)
	if tr.NumBrushes() != len(m.Brushes) {
		t.Errorf("NumBrushes = %d, want %d", tr.NumBrushes(), len(m.Brushes))
	}
	if tr.NumNodes() < 2 {
		t.Errorf("tree did not split: %d nodes", tr.NumNodes())
	}
	if tr.Bounds() != m.Bounds {
		t.Errorf("Bounds = %v", tr.Bounds())
	}
}

func TestPointSolid(t *testing.T) {
	tr, m := testTree(t)
	var w Work

	// Below the floor is solid.
	if !tr.PointSolid(geom.V(100, 100, -8), &w) {
		t.Error("point inside floor not solid")
	}
	// Room centers are open space.
	for _, r := range m.Rooms {
		if tr.PointSolid(r.Bounds.Center(), &w) {
			t.Errorf("room %d center reported solid", r.ID)
		}
	}
	// Exactly on the floor surface is not solid (resting rule).
	if tr.PointSolid(geom.V(100, 100, 0), &w) {
		t.Error("point on floor surface reported solid")
	}
	if w.Nodes == 0 || w.BrushTests == 0 {
		t.Error("work counters not accumulated")
	}
	// Nil work pointer must be accepted.
	_ = tr.PointSolid(geom.V(1, 1, 1), nil)
}

func TestBoxSolid(t *testing.T) {
	tr, m := testTree(t)
	room := m.Rooms[0].Bounds
	openBox := geom.BoxAt(room.Center(), geom.V(16, 16, 28))
	if tr.BoxSolid(openBox, nil) {
		t.Error("box in open room reported solid")
	}
	wallBox := geom.BoxAt(geom.V(100, 100, -8), geom.V(4, 4, 4))
	if !tr.BoxSolid(wallBox, nil) {
		t.Error("box in floor not reported solid")
	}
	// Touching the floor from above is not solid overlap.
	touching := geom.Box(geom.V(90, 90, 0), geom.V(110, 110, 20))
	if tr.BoxSolid(touching, nil) {
		t.Error("box resting on floor reported solid")
	}
}

func TestTraceSegmentHitsWalls(t *testing.T) {
	tr, m := testTree(t)
	c := m.Rooms[0].Bounds.Center()

	// Straight down into the floor.
	res := tr.TraceSegment(c, geom.V(c.X, c.Y, -100), nil)
	if !res.Hit {
		t.Fatal("downward trace missed the floor")
	}
	if res.Normal != geom.V(0, 0, 1) {
		t.Errorf("floor normal = %v", res.Normal)
	}
	if math.Abs(res.End.Z-0) > 2*surfaceEpsilon+1e-9 {
		t.Errorf("trace stopped at z=%v, want ~0", res.End.Z)
	}
	if res.Fraction <= 0 || res.Fraction >= 1 {
		t.Errorf("fraction = %v", res.Fraction)
	}

	// Within the open room: no hit.
	res = tr.TraceSegment(c, c.Add(geom.V(20, 20, 20)), nil)
	if res.Hit {
		t.Errorf("open-space trace hit brush %d", res.Brush)
	}
	if res.Fraction != 1 || res.End != c.Add(geom.V(20, 20, 20)) {
		t.Errorf("open-space trace end = %v fraction = %v", res.End, res.Fraction)
	}

	// Far beyond the outer wall: must stop inside the world.
	res = tr.TraceSegment(c, c.Add(geom.V(1e6, 0, 0)), nil)
	if !res.Hit {
		t.Fatal("horizontal trace escaped the world")
	}
	if !m.Bounds.Contains(res.End) {
		t.Errorf("trace end %v outside world", res.End)
	}
}

func TestTraceConsecutiveNotStartSolid(t *testing.T) {
	tr, m := testTree(t)
	c := m.Rooms[0].Bounds.Center()
	res := tr.TraceSegment(c, geom.V(c.X, c.Y, -100), nil)
	if !res.Hit || res.StartSolid {
		t.Fatalf("setup trace: %+v", res)
	}
	// Trace again from the stop point: the epsilon pullback must keep us
	// out of the floor.
	res2 := tr.TraceSegment(res.End, geom.V(res.End.X, res.End.Y, -100), nil)
	if res2.StartSolid {
		t.Error("second trace started solid — epsilon pullback failed")
	}
	if !res2.Hit {
		t.Error("second trace should still hit the floor")
	}
	// And tracing away from the surface must be free.
	res3 := tr.TraceSegment(res.End, res.End.Add(geom.V(0, 0, 50)), nil)
	if res3.Hit {
		t.Errorf("trace away from floor hit: %+v", res3)
	}
}

func TestTraceBoxDoorway(t *testing.T) {
	tr, m := testTree(t)
	if len(m.Portals) == 0 {
		t.Skip("no portals")
	}
	p := m.Portals[0]
	a := m.Rooms[p.RoomA].Bounds.Center()
	b := m.Rooms[p.RoomB].Bounds.Center()
	// Trace at standing height: box top must clear the 112-unit doorway.
	a.Z = 53
	b.Z = 53
	door := p.Bounds.Center()

	// A player-sized box fits through the 64-unit doorway.
	playerHE := geom.V(16, 16, 24)
	t1 := tr.TraceBox(a, geom.V(door.X, door.Y, a.Z), playerHE, nil)
	if t1.Hit {
		t.Errorf("player box blocked reaching doorway: %+v", t1)
	}
	// A box wider than the doorway cannot pass the wall plane.
	fatHE := geom.V(40, 40, 24)
	t2 := tr.TraceBox(a, b, fatHE, nil)
	if !t2.Hit {
		t.Error("oversized box passed through doorway")
	}
}

func TestTraceBoxStartSolid(t *testing.T) {
	tr, _ := testTree(t)
	inWall := geom.V(100, 100, -8)
	res := tr.TraceBox(inWall, inWall.Add(geom.V(10, 0, 0)), geom.V(4, 4, 4), nil)
	if !res.StartSolid || !res.Hit || res.Fraction != 0 {
		t.Errorf("start-solid trace = %+v", res)
	}
	if res.End != inWall {
		t.Errorf("start-solid end = %v, want start", res.End)
	}
}

func TestTraceZeroLength(t *testing.T) {
	tr, m := testTree(t)
	c := m.Rooms[0].Bounds.Center()
	res := tr.TraceSegment(c, c, nil)
	if res.Hit || res.Fraction != 1 {
		t.Errorf("zero-length open trace = %+v", res)
	}
}

// TestTraceMatchesBruteForce cross-validates the tree traversal against a
// linear scan over all brushes with the same per-brush test.
func TestTraceMatchesBruteForce(t *testing.T) {
	tr, m := testTree(t)
	boxes := make([]geom.AABB, len(m.Brushes))
	for i, b := range m.Brushes {
		boxes[i] = b.Box
	}

	brute := func(a, b geom.Vec3, he geom.Vec3) (bool, float64, bool) {
		hit := false
		best := math.Inf(1)
		for _, bb := range boxes {
			eb := bb.ExpandVec(he)
			h, tt, _, ss := traceExpandedBrush(eb, a, b)
			if ss {
				return true, 0, true
			}
			if h && tt < best {
				best = tt
				hit = true
			}
		}
		return hit, best, false
	}

	r := rand.New(rand.NewSource(11))
	randPt := func() geom.Vec3 {
		return geom.V(
			m.Bounds.Min.X+r.Float64()*(m.Bounds.Max.X-m.Bounds.Min.X),
			m.Bounds.Min.Y+r.Float64()*(m.Bounds.Max.Y-m.Bounds.Min.Y),
			m.Bounds.Min.Z+r.Float64()*(m.Bounds.Max.Z-m.Bounds.Min.Z),
		)
	}
	hes := []geom.Vec3{{}, {X: 16, Y: 16, Z: 24}, {X: 2, Y: 2, Z: 2}}
	for i := 0; i < 3000; i++ {
		a, b := randPt(), randPt()
		he := hes[i%len(hes)]
		want, wantT, wantSS := brute(a, b, he)
		got := tr.TraceBox(a, b, he, nil)
		if wantSS {
			if !got.StartSolid {
				t.Fatalf("case %d: brute start-solid, tree %+v (a=%v b=%v he=%v)", i, got, a, b, he)
			}
			continue
		}
		if got.StartSolid {
			t.Fatalf("case %d: tree start-solid, brute not (a=%v b=%v he=%v)", i, a, b, he)
		}
		if got.Hit != want {
			t.Fatalf("case %d: tree hit=%v brute hit=%v (a=%v b=%v he=%v)", i, got.Hit, want, a, b, he)
		}
		if want {
			// Compare raw hit parameter: reconstruct from fraction+epsilon,
			// tolerating the clamp to zero for hits closer than the pullback.
			dir := b.Sub(a)
			length := dir.Len()
			rawT := got.Fraction
			if length > 0 {
				rawT = got.Fraction + surfaceEpsilon/length
			}
			clampedZero := got.Fraction == 0 && length > 0 && wantT <= surfaceEpsilon/length
			if !clampedZero && math.Abs(rawT-wantT) > 1e-6 && math.Abs(got.Fraction-wantT) > 1e-6 {
				t.Fatalf("case %d: tree t=%v brute t=%v", i, rawT, wantT)
			}
		}
	}
}

func TestWorkCountersInTraces(t *testing.T) {
	tr, m := testTree(t)
	var w Work
	c := m.Rooms[0].Bounds.Center()
	tr.TraceSegment(c, c.Add(geom.V(500, 0, 0)), &w)
	if w.Nodes == 0 {
		t.Error("trace visited no nodes")
	}
	before := w
	tr.TraceSegment(c, c.Add(geom.V(500, 0, 0)), &w)
	if w.Nodes <= before.Nodes {
		t.Error("work counters should accumulate across calls")
	}
	var sum Work
	sum.Add(w)
	sum.Add(before)
	if sum.Nodes != w.Nodes+before.Nodes || sum.BrushTests != w.BrushTests+before.BrushTests {
		t.Error("Work.Add arithmetic wrong")
	}
}

func TestDegenerateTreeSingleBrush(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10))
	tr := NewTree([]geom.AABB{b}, b.Expand(100))
	if !tr.PointSolid(geom.V(5, 5, 5), nil) {
		t.Error("point in single brush not solid")
	}
	res := tr.TraceSegment(geom.V(-50, 5, 5), geom.V(50, 5, 5), nil)
	if !res.Hit || res.Normal != geom.V(-1, 0, 0) {
		t.Errorf("single brush trace = %+v", res)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := NewTree(nil, geom.Box(geom.V(-100, -100, -100), geom.V(100, 100, 100)))
	if tr.PointSolid(geom.V(0, 0, 0), nil) {
		t.Error("empty tree reports solid")
	}
	res := tr.TraceSegment(geom.V(-50, 0, 0), geom.V(50, 0, 0), nil)
	if res.Hit {
		t.Error("empty tree trace hit something")
	}
}

func BenchmarkTraceBox(b *testing.B) {
	tr, m := testTree(b)
	c := m.Rooms[0].Bounds.Center()
	he := geom.V(16, 16, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TraceBox(c, c.Add(geom.V(300, 120, 0)), he, nil)
	}
}

func BenchmarkPointSolid(b *testing.B) {
	tr, m := testTree(b)
	c := m.Rooms[3].Bounds.Center()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PointSolid(c, nil)
	}
}
