package collide

import (
	"math"

	"qserve/internal/geom"
)

// Trace is the result of sweeping a point or box through the world. The
// semantics mirror the engine's trace structure: Fraction is how far the
// motion got before hitting something (1 = full distance), End is the
// final position, Normal is the surface normal at the hit, and StartSolid
// flags a sweep that began inside solid geometry.
type Trace struct {
	Fraction   float64
	End        geom.Vec3
	Normal     geom.Vec3
	Brush      int // index of the brush hit, -1 if none
	Hit        bool
	StartSolid bool
}

// surfaceEpsilon keeps trace endpoints a hair in front of surfaces so
// successive traces never start embedded in the wall they just hit. The
// value matches Quake's DIST_EPSILON.
const surfaceEpsilon = 0.03125

// TraceSegment sweeps the point a to b and returns the first hit.
func (t *Tree) TraceSegment(a, b geom.Vec3, w *Work) Trace {
	return t.TraceBox(a, b, geom.Vec3{}, w)
}

// TraceBox sweeps a box with the given half extents from a to b (the box
// is centered on these points) and returns the first hit. The sweep is
// performed as a segment trace against brushes expanded by the half
// extents (the Minkowski-sum reduction).
func (t *Tree) TraceBox(a, b geom.Vec3, halfExt geom.Vec3, w *Work) Trace {
	tr := Trace{Fraction: 1, End: b, Brush: -1}
	sweep := geom.Box(a, b).ExpandVec(halfExt).Expand(surfaceEpsilon)

	bestT := math.Inf(1)
	t.walkBox(0, sweep, w, func(bi int32) bool {
		eb := t.brushes[bi].ExpandVec(halfExt)
		hit, tt, n, startSolid := traceExpandedBrush(eb, a, b)
		if startSolid {
			tr.StartSolid = true
			tr.Hit = true
			tr.Fraction = 0
			tr.End = a
			tr.Normal = geom.Vec3{}
			tr.Brush = int(bi)
			bestT = 0
			return true // keep scanning: other brushes may also be solid, but result stands
		}
		if hit && tt < bestT {
			bestT = tt
			tr.Hit = true
			tr.Normal = n
			tr.Brush = int(bi)
		}
		return true
	})

	if tr.StartSolid {
		return tr
	}
	if tr.Hit {
		dir := b.Sub(a)
		length := dir.Len()
		frac := bestT
		if length > 0 {
			// Pull the endpoint back by surfaceEpsilon along the motion.
			frac = bestT - surfaceEpsilon/length
			if frac < 0 {
				frac = 0
			}
		}
		tr.Fraction = frac
		tr.End = a.Lerp(b, frac)
	}
	return tr
}

// TraceBoxAgainst sweeps a box with half extents he from a to b against a
// single obstacle box, with the same boundary semantics as tree traces.
// The game layer uses it to clip player motion against other entities
// collected from the areanode tree.
func TraceBoxAgainst(obstacle geom.AABB, a, b, he geom.Vec3) Trace {
	tr := Trace{Fraction: 1, End: b, Brush: -1}
	eb := obstacle.ExpandVec(he)
	hit, tt, n, startSolid := traceExpandedBrush(eb, a, b)
	if startSolid {
		return Trace{Fraction: 0, End: a, Brush: -1, Hit: true, StartSolid: true}
	}
	if !hit {
		return tr
	}
	dir := b.Sub(a)
	length := dir.Len()
	frac := tt
	if length > 0 {
		frac = tt - surfaceEpsilon/length
		if frac < 0 {
			frac = 0
		}
	}
	return Trace{Fraction: frac, End: a.Lerp(b, frac), Normal: n, Brush: -1, Hit: true}
}

// traceExpandedBrush slab-tests the segment a→b against box eb.
//
// Boundary rules matter for movement quality:
//   - a strictly inside eb: start solid;
//   - a touching a face while moving away or parallel: no hit (lets
//     entities slide along and leave surfaces they rest on);
//   - a touching a face while moving in: hit at t=0 (walls block).
func traceExpandedBrush(eb geom.AABB, a, b geom.Vec3) (hit bool, t float64, normal geom.Vec3, startSolid bool) {
	if eb.ContainsStrict(a) {
		return true, 0, geom.Vec3{}, true
	}
	d := b.Sub(a)
	tEnter, tExit := math.Inf(-1), math.Inf(1)
	enterAxis, enterSign := -1, 0.0
	for i := 0; i < 3; i++ {
		av, dv := a.Axis(i), d.Axis(i)
		mn, mx := eb.Min.Axis(i), eb.Max.Axis(i)
		if dv == 0 {
			if av <= mn || av >= mx {
				// Outside or exactly on this slab with no motion along
				// it: can only touch, never penetrate.
				return false, 0, geom.Vec3{}, false
			}
			continue
		}
		inv := 1 / dv
		t0 := (mn - av) * inv
		t1 := (mx - av) * inv
		sign := -1.0
		if t0 > t1 {
			t0, t1 = t1, t0
			sign = 1.0
		}
		if t0 > tEnter {
			tEnter = t0
			enterAxis, enterSign = i, sign
		}
		if t1 < tExit {
			tExit = t1
		}
	}
	// Positive-measure overlap with the motion interval is required:
	// touching at a single parameter value is not a hit.
	if enterAxis < 0 || tEnter >= tExit || tEnter > 1 || tExit <= 0 || tEnter < 0 {
		return false, 0, geom.Vec3{}, false
	}
	normal = geom.Vec3{}.SetAxis(enterAxis, enterSign)
	return true, tEnter, normal, false
}
