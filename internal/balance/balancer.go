// Package balance implements the dynamic client→thread load balancer
// shared by the live parallel engine (internal/server) and the
// discrete-event engine (internal/simserver).
//
// The paper assigns clients to threads statically ("block" assignment)
// and observes that receive/execute-phase imbalance caps scaling well
// before 8 contexts. The balancer recovers that loss with cheap periodic
// rebalancing: each engine accumulates a decayed per-client execute-phase
// cost (nanoseconds of ExecuteMove work), and at the frame barrier —
// after every participant has sent its replies, the only point where no
// region locks are held and no command is in flight — the frame master
// re-plans the assignment with a greedy longest-processing-time (LPT)
// heuristic and migrates whole clients between threads.
//
// The planner is deliberately engine-agnostic: it sees only client loads
// and current thread assignments and emits a migration list. Everything
// stateful about a migration (endpoint routing, reply baseline, ownership
// checks) is the engine's job.
package balance

import "sort"

// Defaults for Policy fields left zero.
const (
	// DefaultThreshold is the max/mean execute-load ratio above which a
	// frame counts as imbalanced. 1.25 tolerates the jitter of normal
	// workloads while catching the ~2x skew of a crowded room.
	DefaultThreshold = 1.25
	// DefaultHotFrames is how many consecutive imbalanced frames must be
	// observed before a rebalance triggers (hysteresis, so one slow frame
	// does not thrash assignments).
	DefaultHotFrames = 3
	// DefaultMaxMigrations caps clients moved per rebalance, bounding the
	// per-frame cost of re-routing and keeping convergence incremental.
	DefaultMaxMigrations = 4
)

// Policy configures the balancer.
type Policy struct {
	// Enabled turns dynamic rebalancing on.
	Enabled bool
	// Threshold is the max/mean per-thread execute-load ratio that marks
	// a frame imbalanced. Default DefaultThreshold.
	Threshold float64
	// HotFrames is the number of consecutive imbalanced frames required
	// before migrating. Default DefaultHotFrames.
	HotFrames int
	// MaxMigrations caps migrations per rebalance. Default
	// DefaultMaxMigrations.
	MaxMigrations int
	// EveryFrame is a testing knob: skip the threshold/hysteresis gate
	// and re-plan every frame, forcing at least one migration per plan
	// (rotating a client if the LPT plan is already balanced). The race
	// stress test uses it to maximize migration churn; it is not meant
	// for production configs.
	EveryFrame bool
}

func (p Policy) fill() Policy {
	if p.Threshold <= 1 {
		p.Threshold = DefaultThreshold
	}
	if p.HotFrames <= 0 {
		p.HotFrames = DefaultHotFrames
	}
	if p.MaxMigrations <= 0 {
		p.MaxMigrations = DefaultMaxMigrations
	}
	return p
}

// Migration says: move the client at index Client (in the slices passed
// to Plan) from thread From to thread To.
type Migration struct {
	Client   int
	From, To int
}

// Balancer holds the hysteresis state and counters. One per engine; Plan
// is called by the frame master only, so it needs no locking.
type Balancer struct {
	Policy Policy

	// Rebalances counts plans that passed the trigger gate; Migrated
	// counts clients actually moved.
	Rebalances int64
	Migrated   int64

	hot int // consecutive imbalanced frames seen

	// Plan scratch, reused across frames.
	bins   []int64
	order  []int
	target []int
	out    []Migration
}

// New creates a balancer with defaults filled in.
func New(p Policy) *Balancer {
	return &Balancer{Policy: p.fill()}
}

// Plan decides this frame's migrations. loads[i] is client i's decayed
// execute-phase cost, threads[i] its current thread; numThreads is the
// worker count. The returned slice is owned by the balancer and valid
// until the next Plan call.
//
// The plan is deterministic: clients are LPT-assigned in (load desc,
// index asc) order, ties between destination bins break toward the
// client's current thread (no gratuitous churn) and then toward the
// lowest thread index. Clients with zero recorded load never move — they
// cost nothing where they are, and moving them would invalidate nothing
// but still churn routing.
func (b *Balancer) Plan(loads []int64, threads []int, numThreads int) []Migration {
	if numThreads < 2 || len(loads) == 0 || len(loads) != len(threads) {
		return nil
	}
	p := b.Policy

	// Per-thread totals under the current assignment.
	b.bins = b.bins[:0]
	for t := 0; t < numThreads; t++ {
		b.bins = append(b.bins, 0)
	}
	var total, maxBin int64
	for i, l := range loads {
		if t := threads[i]; t >= 0 && t < numThreads {
			b.bins[t] += l
		}
		total += l
	}
	for _, v := range b.bins {
		if v > maxBin {
			maxBin = v
		}
	}

	if !p.EveryFrame {
		mean := float64(total) / float64(numThreads)
		if mean <= 0 || float64(maxBin) < p.Threshold*mean {
			b.hot = 0
			return nil
		}
		b.hot++
		if b.hot < p.HotFrames {
			return nil
		}
	}
	b.hot = 0
	b.Rebalances++

	// LPT: heaviest client first into the least-loaded bin.
	b.order = b.order[:0]
	for i, l := range loads {
		if l > 0 {
			b.order = append(b.order, i)
		}
	}
	sort.Slice(b.order, func(a, c int) bool {
		ia, ic := b.order[a], b.order[c]
		if loads[ia] != loads[ic] {
			return loads[ia] > loads[ic]
		}
		return ia < ic
	})

	if cap(b.target) < len(loads) {
		b.target = make([]int, len(loads))
	}
	b.target = b.target[:len(loads)]
	fill := b.bins
	for i := range fill {
		fill[i] = 0
	}
	for _, ci := range b.order {
		best := 0
		for t := 1; t < numThreads; t++ {
			if fill[t] < fill[best] {
				best = t
			}
		}
		// Prefer staying put when the current thread ties the minimum.
		if cur := threads[ci]; cur >= 0 && cur < numThreads && fill[cur] == fill[best] {
			best = cur
		}
		b.target[ci] = best
		fill[best] += loads[ci]
	}

	b.out = b.out[:0]
	for _, ci := range b.order { // heaviest-first, so the cap keeps the big wins
		if len(b.out) >= p.MaxMigrations {
			break
		}
		if to := b.target[ci]; to != threads[ci] {
			b.out = append(b.out, Migration{Client: ci, From: threads[ci], To: to})
		}
	}
	if p.EveryFrame && len(b.out) == 0 {
		// Forced churn for stress testing: rotate the first client.
		from := threads[0]
		b.out = append(b.out, Migration{Client: 0, From: from, To: (from + 1) % numThreads})
	}
	b.Migrated += int64(len(b.out))
	return b.out
}
