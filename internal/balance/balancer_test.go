package balance

import (
	"reflect"
	"testing"
)

// plan with EveryFrame so the trigger gate does not interfere with
// assignment-shape tests.
func planNow(t *testing.T, loads []int64, threads []int, n int) []Migration {
	t.Helper()
	b := New(Policy{Enabled: true, EveryFrame: true, MaxMigrations: 1 << 30})
	return append([]Migration(nil), b.Plan(loads, threads, n)...)
}

func TestPlanLPTSplitsSkewedLoad(t *testing.T) {
	// All six clients on thread 0; LPT over two threads must split them
	// 10+2+2 / 9+2+2.
	loads := []int64{10, 9, 2, 2, 2, 2}
	threads := []int{0, 0, 0, 0, 0, 0}
	migs := planNow(t, loads, threads, 2)
	want := []Migration{{Client: 1, From: 0, To: 1}, {Client: 2, From: 0, To: 1}, {Client: 4, From: 0, To: 1}}
	if !reflect.DeepEqual(migs, want) {
		t.Fatalf("plan = %v, want %v", migs, want)
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	loads := []int64{7, 7, 7, 3, 3, 3, 1, 1}
	threads := []int{0, 0, 1, 1, 2, 2, 3, 3}
	first := planNow(t, loads, threads, 4)
	for i := 0; i < 10; i++ {
		if got := planNow(t, loads, threads, 4); !reflect.DeepEqual(got, first) {
			t.Fatalf("plan %d = %v, differs from first %v", i, got, first)
		}
	}
}

func TestPlanBalancedLoadDoesNotChurn(t *testing.T) {
	// A perfectly balanced assignment re-plans to itself: the stay-put
	// tie-break must keep every client on its thread.
	loads := []int64{5, 5, 5, 5}
	threads := []int{0, 1, 2, 3}
	b := New(Policy{Enabled: true, Threshold: 1.01, HotFrames: 1})
	if migs := b.Plan(loads, threads, 4); len(migs) != 0 {
		t.Fatalf("balanced load produced migrations: %v", migs)
	}
}

func TestPlanZeroLoadClientsNeverMove(t *testing.T) {
	loads := []int64{100, 0, 0, 0}
	threads := []int{0, 0, 0, 0}
	migs := planNow(t, loads, threads, 4)
	for _, m := range migs {
		if loads[m.Client] == 0 {
			t.Fatalf("migrated zero-load client %d", m.Client)
		}
	}
}

func TestPlanHysteresis(t *testing.T) {
	b := New(Policy{Enabled: true, Threshold: 1.25, HotFrames: 3})
	skew := []int64{10, 10, 10, 10}
	all0 := []int{0, 0, 0, 0}
	// Two hot frames: below HotFrames, no plan yet.
	for i := 0; i < 2; i++ {
		if migs := b.Plan(skew, all0, 2); len(migs) != 0 {
			t.Fatalf("frame %d: migrated before HotFrames elapsed: %v", i, migs)
		}
	}
	// A balanced frame resets the streak.
	if migs := b.Plan([]int64{10, 10, 10, 10}, []int{0, 1, 0, 1}, 2); len(migs) != 0 {
		t.Fatalf("balanced frame migrated: %v", migs)
	}
	for i := 0; i < 2; i++ {
		if migs := b.Plan(skew, all0, 2); len(migs) != 0 {
			t.Fatalf("post-reset frame %d migrated early: %v", i, migs)
		}
	}
	// Third consecutive hot frame fires.
	if migs := b.Plan(skew, all0, 2); len(migs) == 0 {
		t.Fatal("third consecutive hot frame did not rebalance")
	}
	if b.Rebalances != 1 {
		t.Fatalf("Rebalances = %d, want 1", b.Rebalances)
	}
}

func TestPlanMigrationCap(t *testing.T) {
	loads := make([]int64, 32)
	threads := make([]int, 32)
	for i := range loads {
		loads[i] = 10
	}
	b := New(Policy{Enabled: true, EveryFrame: true, MaxMigrations: 4})
	if migs := b.Plan(loads, threads, 8); len(migs) > 4 {
		t.Fatalf("cap violated: %d migrations", len(migs))
	}
}

func TestEveryFrameForcesChurn(t *testing.T) {
	// Already balanced: LPT finds nothing, EveryFrame still rotates one
	// client so migration machinery is exercised.
	b := New(Policy{Enabled: true, EveryFrame: true})
	migs := b.Plan([]int64{5, 5}, []int{0, 1}, 2)
	if len(migs) != 1 {
		t.Fatalf("forced churn produced %d migrations, want 1", len(migs))
	}
	if migs[0].From == migs[0].To {
		t.Fatalf("forced churn is a no-op: %v", migs[0])
	}
}

func TestPlanDegenerateInputs(t *testing.T) {
	b := New(Policy{Enabled: true, EveryFrame: true})
	if migs := b.Plan(nil, nil, 4); migs != nil {
		t.Fatalf("empty plan = %v", migs)
	}
	if migs := b.Plan([]int64{1}, []int{0}, 1); migs != nil {
		t.Fatalf("single-thread plan = %v", migs)
	}
	if migs := b.Plan([]int64{1, 2}, []int{0}, 2); migs != nil {
		t.Fatalf("mismatched-length plan = %v", migs)
	}
}

func TestPlanConvergesOverFrames(t *testing.T) {
	// Iterating plan+apply with a small cap must converge: eventually the
	// max/mean ratio of a heavily skewed start drops under the threshold
	// and planning stops.
	b := New(Policy{Enabled: true, Threshold: 1.25, HotFrames: 1, MaxMigrations: 2})
	loads := make([]int64, 24)
	threads := make([]int, 24)
	for i := range loads {
		loads[i] = int64(1 + i%5)
	}
	moved := 0
	for frame := 0; frame < 100; frame++ {
		migs := b.Plan(loads, threads, 4)
		if len(migs) == 0 && frame > 0 {
			if moved == 0 {
				t.Fatal("skewed start produced no migrations at all")
			}
			return // converged
		}
		for _, m := range migs {
			threads[m.Client] = m.To
			moved++
		}
	}
	t.Fatal("plan/apply loop did not converge in 100 frames")
}
