// Package transport abstracts the datagram layer under the server and its
// clients. Two implementations exist:
//
//   - UDPConn wraps a real UDP socket, for deployments matching the
//     paper's testbed (a server machine and a LAN of client machines);
//   - Network/MemConn is an in-process packet network with optional
//     seeded latency, jitter, and loss, used by tests, examples, and the
//     benchmark harness so experiments are deterministic and run anywhere.
//
// The Conn interface mirrors how the engine uses sockets: blocking
// receive with a timeout (the select(2) idiom in the paper's Figure 1)
// and connectionless sends.
package transport

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Addr identifies a transport endpoint. Implementations must be usable as
// map keys via String().
type Addr interface {
	Network() string
	String() string
}

// Errors returned by Conn implementations.
var (
	// ErrTimeout reports that Recv's timeout expired with no packet.
	ErrTimeout = errors.New("transport: receive timeout")
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("transport: connection closed")
	// ErrUnknownAddr reports a send to an address with no listener; the
	// in-memory network surfaces this where UDP would silently drop.
	ErrUnknownAddr = errors.New("transport: unknown destination")
)

// MaxDatagram is the largest payload a Conn must carry. It matches a
// conventional safe UDP MTU budget.
const MaxDatagram = 1400

// Conn is one endpoint (one UDP port). Implementations are safe for one
// concurrent reader and any number of senders.
//
// Buffer ownership contract: Send copies (or hands to the kernel) the
// payload before returning, and never retains or mutates data — the
// caller may reuse the slice immediately, which is what lets the server's
// reply pipeline encode every datagram into one per-thread scratch
// buffer. Symmetrically, Recv owns buf only for the duration of the
// call: on return the datagram has been fully copied into buf[:n] and no
// internal reference to buf remains. Internal packet buffers (MemConn
// pools them) never alias caller memory in either direction.
type Conn interface {
	// Send transmits data to the destination. The data slice is not
	// retained — it is free for reuse as soon as Send returns.
	Send(to Addr, data []byte) error
	// Recv blocks up to timeout for a datagram, copying it into buf and
	// returning its length and source. A negative timeout blocks
	// indefinitely; zero polls. Returns ErrTimeout on expiry. Only
	// buf[:n] is written; bytes beyond n keep their previous content, so
	// callers reusing one receive buffer must bound reads by n.
	Recv(buf []byte, timeout time.Duration) (int, Addr, error)
	// LocalAddr returns this endpoint's address.
	LocalAddr() Addr
	// Close releases the endpoint; pending and future Recvs return
	// ErrClosed.
	Close() error
}

// ResolveLike parses an address string into the Addr family of the given
// connection: MemAddr for in-memory endpoints, *net.UDPAddr for UDP.
// Clients use it to interpret the server's Accept.Addr field.
func ResolveLike(c Conn, s string) (Addr, error) {
	switch cc := c.(type) {
	case *MemConn:
		return MemAddr(s), nil
	case *MuxPort:
		return muxResolve(cc, s)
	case *FaultConn:
		return ResolveLike(cc.inner, s)
	case *UDPConn:
		ua, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}
		return ua, nil
	default:
		return nil, fmt.Errorf("transport: cannot resolve %q for %T", s, c)
	}
}

// UDPConn adapts a real UDP socket to Conn.
type UDPConn struct {
	pc *net.UDPConn
}

// ListenUDP opens a UDP endpoint on the given address ("127.0.0.1:0"
// picks a free port).
func ListenUDP(addr string) (*UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &UDPConn{pc: pc}, nil
}

// Send implements Conn.
func (c *UDPConn) Send(to Addr, data []byte) error {
	ua, ok := to.(*net.UDPAddr)
	if !ok {
		ra, err := net.ResolveUDPAddr("udp", to.String())
		if err != nil {
			return fmt.Errorf("transport: bad udp addr %q: %w", to.String(), err)
		}
		ua = ra
	}
	_, err := c.pc.WriteToUDP(data, ua)
	return err
}

// Recv implements Conn.
func (c *UDPConn) Recv(buf []byte, timeout time.Duration) (int, Addr, error) {
	var deadline time.Time
	if timeout == 0 {
		// A zero (poll) timeout must still read already-queued datagrams.
		// Go's poller fails reads immediately once the deadline has
		// passed, without attempting the syscall, so an exact-now
		// deadline would never deliver; a hair of slack keeps poll
		// semantics while letting ready data through.
		timeout = 100 * time.Microsecond
	}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := c.pc.SetReadDeadline(deadline); err != nil {
		return 0, nil, err
	}
	n, from, err := c.pc.ReadFromUDP(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return 0, nil, ErrTimeout
		}
		if errors.Is(err, net.ErrClosed) {
			return 0, nil, ErrClosed
		}
		return 0, nil, err
	}
	return n, from, nil
}

// LocalAddr implements Conn.
func (c *UDPConn) LocalAddr() Addr { return c.pc.LocalAddr().(*net.UDPAddr) }

// Close implements Conn.
func (c *UDPConn) Close() error { return c.pc.Close() }
