package transport

import (
	"bytes"
	"testing"
	"time"
)

func faultPair(t *testing.T, cfg FaultConfig) (*FaultConn, *MemConn) {
	t.Helper()
	net := NewNetwork(NetworkConfig{})
	sender, err := net.Listen("sender")
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := net.Listen("receiver")
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultConn(sender, cfg), receiver
}

func recvAll(t *testing.T, c Conn, wait time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.Now().Add(wait)
	buf := make([]byte, MaxDatagram)
	for {
		n, _, err := c.Recv(buf, time.Until(deadline))
		if err != nil {
			return out
		}
		out = append(out, append([]byte(nil), buf[:n]...))
	}
}

func TestFaultConnPassthrough(t *testing.T) {
	fc, rx := faultPair(t, FaultConfig{})
	msg := []byte("hello")
	if err := fc.Send(rx.LocalAddr(), msg); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, rx, 50*time.Millisecond)
	if len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Fatalf("passthrough got %q", got)
	}
}

func TestFaultConnDrop(t *testing.T) {
	fc, rx := faultPair(t, FaultConfig{Seed: 1, DropProb: 1})
	for i := 0; i < 10; i++ {
		if err := fc.Send(rx.LocalAddr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := recvAll(t, rx, 20*time.Millisecond); len(got) != 0 {
		t.Fatalf("expected all dropped, got %d", len(got))
	}
	if st := fc.Stats(); st.Dropped != 10 {
		t.Fatalf("dropped counter = %d, want 10", st.Dropped)
	}
}

func TestFaultConnDuplicate(t *testing.T) {
	fc, rx := faultPair(t, FaultConfig{Seed: 1, DupProb: 1})
	if err := fc.Send(rx.LocalAddr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, rx, 50*time.Millisecond); len(got) != 2 {
		t.Fatalf("expected duplicate delivery, got %d datagrams", len(got))
	}
}

func TestFaultConnReorder(t *testing.T) {
	fc, rx := faultPair(t, FaultConfig{Seed: 1, ReorderProb: 1})
	// Every datagram is held back and released by the next send, so a
	// stream a,b,c,d arrives b,a,d,c.
	for _, b := range []byte{'a', 'b', 'c', 'd'} {
		if err := fc.Send(rx.LocalAddr(), []byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	got := recvAll(t, rx, 50*time.Millisecond)
	if len(got) != 4 {
		t.Fatalf("got %d datagrams, want 4", len(got))
	}
	seq := []byte{got[0][0], got[1][0], got[2][0], got[3][0]}
	if !bytes.Equal(seq, []byte("badc")) {
		t.Fatalf("reorder sequence = %q, want badc", seq)
	}
}

func TestFaultConnCorruptAndTruncate(t *testing.T) {
	orig := bytes.Repeat([]byte{0xAA}, 64)

	fc, rx := faultPair(t, FaultConfig{Seed: 3, CorruptProb: 1})
	if err := fc.Send(rx.LocalAddr(), orig); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, rx, 50*time.Millisecond)
	if len(got) != 1 || bytes.Equal(got[0], orig) {
		t.Fatalf("corruption did not change payload")
	}
	diff := 0
	for i := range orig {
		if got[0][i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want 1 (single bit flip)", diff)
	}
	if !bytes.Equal(orig, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("corruption mutated the caller's buffer")
	}

	ft, rx2 := faultPair(t, FaultConfig{Seed: 3, TruncateProb: 1})
	if err := ft.Send(rx2.LocalAddr(), orig); err != nil {
		t.Fatal(err)
	}
	got = recvAll(t, rx2, 50*time.Millisecond)
	if len(got) != 1 || len(got[0]) >= len(orig) || len(got[0]) < 1 {
		t.Fatalf("truncation produced %d bytes from %d", len(got[0]), len(orig))
	}
}

func TestFaultConnDelay(t *testing.T) {
	fc, rx := faultPair(t, FaultConfig{Seed: 1, DelayProb: 1, Delay: 30 * time.Millisecond})
	t0 := time.Now()
	if err := fc.Send(rx.LocalAddr(), []byte("late")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, MaxDatagram)
	n, _, err := rx.Recv(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < 25*time.Millisecond {
		t.Fatalf("delayed datagram arrived after %v, want >= ~30ms", el)
	}
	if string(buf[:n]) != "late" {
		t.Fatalf("payload %q", buf[:n])
	}
}

func TestFaultConnRecvSideDrop(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	tx, _ := net.Listen("tx")
	inner, _ := net.Listen("rx")
	frx := NewFaultConn(inner, FaultConfig{Seed: 9, DropProb: 1})
	for i := 0; i < 5; i++ {
		if err := tx.Send(inner.LocalAddr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, MaxDatagram)
	if _, _, err := frx.Recv(buf, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("recv-side drop: err = %v, want ErrTimeout", err)
	}
	if st := frx.Stats(); st.Dropped == 0 {
		t.Fatal("recv-side drops not counted")
	}
}

func TestFaultConnSetConfigRuntime(t *testing.T) {
	fc, rx := faultPair(t, FaultConfig{Seed: 1, DropProb: 1})
	_ = fc.Send(rx.LocalAddr(), []byte("lost"))
	fc.SetConfig(FaultConfig{}) // chaos off
	if err := fc.Send(rx.LocalAddr(), []byte("kept")); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, rx, 50*time.Millisecond)
	if len(got) != 1 || string(got[0]) != "kept" {
		t.Fatalf("after SetConfig got %q", got)
	}
}

func TestFaultConnDeterministic(t *testing.T) {
	run := func() FaultStats {
		fc, rx := faultPair(t, FaultConfig{
			Seed: 42, DropProb: 0.3, DupProb: 0.2, CorruptProb: 0.2, TruncateProb: 0.1,
		})
		payload := bytes.Repeat([]byte{0x5A}, 32)
		for i := 0; i < 200; i++ {
			_ = fc.Send(rx.LocalAddr(), payload)
		}
		return fc.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault stream not deterministic: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 || a.Corrupted == 0 || a.Truncated == 0 {
		t.Fatalf("expected every fault class to fire: %+v", a)
	}
}

func TestFaultNetworkWrapsEveryEndpoint(t *testing.T) {
	fn := NewFaultNetwork(NewNetwork(NetworkConfig{}), FaultConfig{Seed: 7, DropProb: 1})
	a, err := fn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fn.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Send(b.LocalAddr(), []byte("x"))
	if st := fn.Stats(); st.Dropped != 1 {
		t.Fatalf("aggregate drops = %d, want 1", st.Dropped)
	}
	fn.SetConfig(FaultConfig{Seed: 7})
	if err := a.Send(b.LocalAddr(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, _, err := b.Recv(buf, 50*time.Millisecond); err != nil || string(buf[:n]) != "y" {
		t.Fatalf("after SetConfig: n=%d err=%v", n, err)
	}
}

func TestFaultConnResolveLike(t *testing.T) {
	fc, _ := faultPair(t, FaultConfig{})
	addr, err := ResolveLike(fc, "somewhere")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := addr.(MemAddr); !ok {
		t.Fatalf("ResolveLike through FaultConn returned %T", addr)
	}
}

// TestFaultConnFastPathAllocFree pins the tentpole guarantee: with all
// rates zero the injector adds zero allocations per send/recv round trip
// over what the bare conn costs, so wrapping a conn in tests and benches
// cannot perturb the reply pipeline's zero-alloc gate. (The bare MemConn
// round trip itself boxes two Addr interface values; the injector must
// add nothing on top.)
func TestFaultConnFastPathAllocFree(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 128)
	drain := make([]byte, MaxDatagram)
	measure := func(tx Conn, rx Conn) float64 {
		to := rx.LocalAddr()
		for i := 0; i < 16; i++ { // warm the pools
			_ = tx.Send(to, payload)
			_, _, _ = rx.Recv(drain, 0)
		}
		return testing.AllocsPerRun(200, func() {
			_ = tx.Send(to, payload)
			_, _, _ = rx.Recv(drain, 0)
		})
	}
	net := NewNetwork(NetworkConfig{})
	bareTx, _ := net.Listen("bare-tx")
	bareRx, _ := net.Listen("bare-rx")
	bare := measure(bareTx, bareRx)

	fc, rx := faultPair(t, FaultConfig{})
	wrapped := measure(fc, NewFaultConn(rx, FaultConfig{}))
	if wrapped > bare {
		t.Fatalf("fault-free path allocates %.1f/op vs bare %.1f/op, want no overhead", wrapped, bare)
	}
}

func TestMuxOverflowCounted(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	under, _ := net.Listen("under")
	m := NewMux([]Conn{under})
	defer m.Close()
	port := m.Port(0)
	// Fill the port queue past capacity via Forward (synchronous, no pump
	// race): muxQueueLen fits, the rest must drop and be counted.
	src := MemAddr("flood")
	payload := []byte("p")
	for i := 0; i < muxQueueLen+10; i++ {
		m.Forward(0, payload, src)
	}
	if got := m.Drops(); got != 10 {
		t.Fatalf("mux drops = %d, want 10", got)
	}
	if port.Pending() != muxQueueLen {
		t.Fatalf("pending = %d, want %d", port.Pending(), muxQueueLen)
	}
}

// nopConn is an inner Conn that does nothing, so the benchmark below
// measures the fault injector's own overhead in isolation.
type nopConn struct{ addr Addr }

func (n *nopConn) Send(to Addr, data []byte) error                           { return nil }
func (n *nopConn) Recv(buf []byte, timeout time.Duration) (int, Addr, error) { return 0, n.addr, nil }
func (n *nopConn) LocalAddr() Addr                                           { return n.addr }
func (n *nopConn) Close() error                                              { return nil }

// BenchmarkFaultConnPassthrough pins the zero-rate fast path: with all
// rates zero a FaultConn must add no allocations and no locking beyond
// one atomic load per operation, so wrapping production conns in the
// injector (as qserved's -fault* flags do) costs nothing when idle.
// CI's allocation gate expects 0 allocs/op here.
func BenchmarkFaultConnPassthrough(b *testing.B) {
	fc := NewFaultConn(&nopConn{addr: MemAddr("nop")}, FaultConfig{})
	var to Addr = MemAddr("peer") // box once: the interface conversion is the caller's cost
	data := make([]byte, 64)
	buf := make([]byte, MaxDatagram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fc.Send(to, data); err != nil {
			b.Fatal(err)
		}
		if _, _, err := fc.Recv(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
