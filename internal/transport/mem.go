package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// MemAddr is an in-memory network address.
type MemAddr string

// Network implements Addr.
func (MemAddr) Network() string { return "mem" }

// String implements Addr.
func (a MemAddr) String() string { return string(a) }

// NetworkConfig tunes the simulated link every in-memory packet crosses.
// The zero value is a perfect network: instant, lossless delivery.
type NetworkConfig struct {
	// Latency is the fixed one-way delivery delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// LossProb drops each packet independently with this probability.
	LossProb float64
	// Seed makes jitter and loss deterministic.
	Seed int64
	// QueueLen bounds each endpoint's receive queue; packets beyond it
	// are dropped, modelling socket buffer overflow. Default 512.
	QueueLen int
}

// Network is an in-process packet switch connecting MemConns. It is safe
// for concurrent use.
type Network struct {
	mu     sync.Mutex
	ports  map[MemAddr]*MemConn
	rng    *rand.Rand
	cfg    NetworkConfig
	nextID int

	// Stats.
	sent, delivered, dropped int64
}

// NewNetwork creates a switch with the given link characteristics.
func NewNetwork(cfg NetworkConfig) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 512
	}
	return &Network{
		ports: make(map[MemAddr]*MemConn),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
	}
}

// Stats reports packets sent, delivered, and dropped since creation.
func (n *Network) Stats() (sent, delivered, dropped int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.delivered, n.dropped
}

// pktBuf wraps a pooled payload buffer. The pointer wrapper keeps
// sync.Pool round-trips allocation-free (storing a bare []byte in the
// pool would box the slice header on every Put).
type pktBuf struct {
	b []byte
}

//qvet:allow=globalstate process-wide datagram buffer pool by design; holds no game state
var pktPool = sync.Pool{
	New: func() any { return &pktBuf{b: make([]byte, 0, MaxDatagram)} },
}

type memPacket struct {
	buf  *pktBuf // pooled; returned after the payload is copied out or dropped
	from MemAddr
}

// release returns the packet's buffer to the pool. Every delivery path —
// received, queue overflow, closed endpoint — must call it exactly once.
func (p memPacket) release() {
	if p.buf != nil {
		pktPool.Put(p.buf)
	}
}

// MemConn is one endpoint of a Network.
type MemConn struct {
	net   *Network
	addr  MemAddr
	queue chan memPacket

	closeOnce sync.Once
	closed    chan struct{}
}

// Listen opens an endpoint with the given name; an empty name allocates
// one. It fails if the name is taken.
func (n *Network) Listen(name string) (*MemConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr := MemAddr(name)
	if name == "" {
		n.nextID++
		addr = MemAddr(fmt.Sprintf("mem:%d", n.nextID))
	}
	if _, taken := n.ports[addr]; taken {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	c := &MemConn{
		net:    n,
		addr:   addr,
		queue:  make(chan memPacket, n.cfg.QueueLen),
		closed: make(chan struct{}),
	}
	n.ports[addr] = c
	return c, nil
}

// Send implements Conn.
func (c *MemConn) Send(to Addr, data []byte) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	n := c.net
	n.mu.Lock()
	n.sent++
	dst, ok := n.ports[MemAddr(to.String())]
	if !ok {
		n.dropped++
		n.mu.Unlock()
		return ErrUnknownAddr
	}
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.dropped++
		n.mu.Unlock()
		return nil // lost in transit: sender cannot tell, as with UDP
	}
	delay := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	n.mu.Unlock()

	// Copy the payload into a pooled buffer before returning: the Conn
	// contract lets the caller reuse data immediately.
	pb := pktPool.Get().(*pktBuf)
	pb.b = append(pb.b[:0], data...)
	pkt := memPacket{buf: pb, from: c.addr}
	if delay <= 0 {
		dst.deliver(pkt)
		return nil
	}
	time.AfterFunc(delay, func() { dst.deliver(pkt) })
	return nil
}

func (c *MemConn) deliver(pkt memPacket) {
	n := c.net
	select {
	case <-c.closed:
		n.mu.Lock()
		n.dropped++
		n.mu.Unlock()
		pkt.release()
		return
	default:
	}
	select {
	case c.queue <- pkt:
		n.mu.Lock()
		n.delivered++
		n.mu.Unlock()
	default:
		// Receive queue overflow: drop, as a full socket buffer would.
		n.mu.Lock()
		n.dropped++
		n.mu.Unlock()
		pkt.release()
	}
}

// Recv implements Conn.
func (c *MemConn) Recv(buf []byte, timeout time.Duration) (int, Addr, error) {
	// Fast path: packet already queued.
	select {
	case pkt := <-c.queue:
		return copyPacket(buf, pkt)
	case <-c.closed:
		return 0, nil, ErrClosed
	default:
	}
	if timeout == 0 {
		return 0, nil, ErrTimeout
	}
	if timeout < 0 {
		select {
		case pkt := <-c.queue:
			return copyPacket(buf, pkt)
		case <-c.closed:
			return 0, nil, ErrClosed
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case pkt := <-c.queue:
		return copyPacket(buf, pkt)
	case <-c.closed:
		return 0, nil, ErrClosed
	case <-timer.C:
		return 0, nil, ErrTimeout
	}
}

func copyPacket(buf []byte, pkt memPacket) (int, Addr, error) {
	n := copy(buf, pkt.buf.b)
	pkt.release()
	return n, pkt.from, nil
}

// Pending returns the number of queued datagrams (diagnostics).
func (c *MemConn) Pending() int { return len(c.queue) }

// LocalAddr implements Conn.
func (c *MemConn) LocalAddr() Addr { return c.addr }

// Close implements Conn.
func (c *MemConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		n := c.net
		n.mu.Lock()
		delete(n.ports, c.addr)
		n.mu.Unlock()
	})
	return nil
}
