package transport

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig sets the per-datagram fault rates of a FaultConn. All
// probabilities are independent per datagram; a datagram may be both
// corrupted and duplicated. The zero value injects nothing.
type FaultConfig struct {
	// Seed makes the fault stream deterministic.
	Seed int64
	// DropProb silently discards the datagram.
	DropProb float64
	// DupProb transmits the datagram twice.
	DupProb float64
	// ReorderProb holds the datagram back and transmits it after the
	// next one, swapping adjacent datagrams.
	ReorderProb float64
	// CorruptProb flips one random bit of the payload.
	CorruptProb float64
	// TruncateProb cuts the payload at a random length.
	TruncateProb float64
	// DelayProb delays the datagram by Delay.
	DelayProb float64
	// Delay is the added latency for delayed datagrams.
	Delay time.Duration
}

// active reports whether any fault can fire.
func (c *FaultConfig) active() bool {
	return c.DropProb > 0 || c.DupProb > 0 || c.ReorderProb > 0 ||
		c.CorruptProb > 0 || c.TruncateProb > 0 || c.DelayProb > 0
}

// FaultStats counts injected faults since creation.
type FaultStats struct {
	Dropped, Duplicated, Reordered, Corrupted, Truncated, Delayed int64
}

// FaultConn wraps a Conn with a deterministic, seedable fault injector:
// datagrams passing through are dropped, duplicated, reordered, delayed,
// truncated, or bit-flipped per the configured rates. Send-side faults
// cover the full set; Recv applies drop and corruption (the inbound
// faults a wrapped peer cannot inject). Rates are runtime-settable via
// SetConfig, so a test can run a chaos phase and then settle with a
// perfect link.
//
// The non-faulty fast path (all rates zero) adds no allocations and no
// locking beyond one atomic load, preserving the reply pipeline's
// zero-alloc guarantee.
type FaultConn struct {
	inner Conn

	// enabled caches cfg.active() so the fast path is one atomic load.
	enabled atomic.Bool

	mu   sync.Mutex
	cfg  FaultConfig
	rng  *rand.Rand
	held *pktBuf // reorder hold-back slot (send side)

	stats struct {
		dropped, duplicated, reordered, corrupted, truncated, delayed atomic.Int64
	}
}

// NewFaultConn wraps inner with the given fault profile.
func NewFaultConn(inner Conn, cfg FaultConfig) *FaultConn {
	f := &FaultConn{inner: inner}
	f.SetConfig(cfg)
	return f
}

// SetConfig replaces the fault profile (and reseeds the fault stream).
// Safe to call concurrently with Send/Recv.
func (f *FaultConn) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.rng = rand.New(rand.NewSource(cfg.Seed))
	f.mu.Unlock()
	f.enabled.Store(cfg.active())
}

// Stats returns the fault counters.
func (f *FaultConn) Stats() FaultStats {
	return FaultStats{
		Dropped:    f.stats.dropped.Load(),
		Duplicated: f.stats.duplicated.Load(),
		Reordered:  f.stats.reordered.Load(),
		Corrupted:  f.stats.corrupted.Load(),
		Truncated:  f.stats.truncated.Load(),
		Delayed:    f.stats.delayed.Load(),
	}
}

// Inner returns the wrapped Conn.
func (f *FaultConn) Inner() Conn { return f.inner }

// Send implements Conn, injecting send-side faults.
//
//qvet:noalloc
func (f *FaultConn) Send(to Addr, data []byte) error {
	if !f.enabled.Load() {
		return f.inner.Send(to, data)
	}
	f.mu.Lock()
	cfg := f.cfg
	roll := func(p float64) bool { return p > 0 && f.rng.Float64() < p }

	if roll(cfg.DropProb) {
		f.mu.Unlock()
		f.stats.dropped.Add(1)
		return nil // lost in transit: sender cannot tell, as with UDP
	}

	// Mutating faults work on a pooled copy so the caller's buffer is
	// never touched (the Conn contract).
	payload := data
	var pb *pktBuf
	if roll(cfg.TruncateProb) && len(payload) > 1 {
		pb = pktPool.Get().(*pktBuf)
		pb.b = append(pb.b[:0], payload...)
		pb.b = pb.b[:1+f.rng.Intn(len(pb.b)-1)]
		payload = pb.b
		f.stats.truncated.Add(1)
	}
	if roll(cfg.CorruptProb) && len(payload) > 0 {
		if pb == nil {
			pb = pktPool.Get().(*pktBuf)
			pb.b = append(pb.b[:0], payload...)
			payload = pb.b
		}
		bit := f.rng.Intn(len(payload) * 8)
		payload[bit/8] ^= 1 << uint(bit%8)
		f.stats.corrupted.Add(1)
	}

	dup := roll(cfg.DupProb)
	if dup {
		f.stats.duplicated.Add(1)
	}

	// Reorder: swap this datagram with the next one through the conn.
	// While one is held back, the next Send releases it afterwards.
	if f.held != nil {
		heldPb := f.held
		f.held = nil
		f.mu.Unlock()
		err := f.transmit(to, payload, dup, cfg)
		_ = f.inner.Send(to, heldPb.b)
		pktPool.Put(heldPb)
		f.releaseCopy(pb)
		return err
	}
	if roll(cfg.ReorderProb) {
		if pb == nil {
			pb = pktPool.Get().(*pktBuf)
			pb.b = append(pb.b[:0], payload...)
		}
		f.held = pb
		f.mu.Unlock()
		f.stats.reordered.Add(1)
		return nil
	}
	f.mu.Unlock()

	err := f.transmit(to, payload, dup, cfg)
	f.releaseCopy(pb)
	return err
}

// transmit performs the actual send(s), applying the delay fault.
func (f *FaultConn) transmit(to Addr, payload []byte, dup bool, cfg FaultConfig) error {
	delay := false
	if cfg.DelayProb > 0 && cfg.Delay > 0 {
		f.mu.Lock()
		delay = f.rng.Float64() < cfg.DelayProb
		f.mu.Unlock()
	}
	if delay {
		f.stats.delayed.Add(1)
		pb := pktPool.Get().(*pktBuf)
		pb.b = append(pb.b[:0], payload...)
		inner, d := f.inner, cfg.Delay
		// The timer closure escapes by design: delay injection is a test
		// fault mode, never active on the steady-state path.
		//qvet:allow=noalloc delay-injection timer closure
		time.AfterFunc(d, func() {
			_ = inner.Send(to, pb.b)
			if dup {
				_ = inner.Send(to, pb.b)
			}
			pktPool.Put(pb)
		})
		return nil
	}
	err := f.inner.Send(to, payload)
	if dup {
		_ = f.inner.Send(to, payload)
	}
	return err
}

func (f *FaultConn) releaseCopy(pb *pktBuf) {
	if pb != nil {
		pktPool.Put(pb)
	}
}

// Recv implements Conn, injecting receive-side drop and corruption.
//
//qvet:noalloc
func (f *FaultConn) Recv(buf []byte, timeout time.Duration) (int, Addr, error) {
	if !f.enabled.Load() {
		return f.inner.Recv(buf, timeout)
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		n, from, err := f.inner.Recv(buf, timeout)
		if err != nil {
			return n, from, err
		}
		f.mu.Lock()
		cfg := f.cfg
		drop := cfg.DropProb > 0 && f.rng.Float64() < cfg.DropProb
		corrupt := !drop && cfg.CorruptProb > 0 && n > 0 && f.rng.Float64() < cfg.CorruptProb
		var bit int
		if corrupt {
			bit = f.rng.Intn(n * 8)
		}
		f.mu.Unlock()
		if corrupt {
			buf[bit/8] ^= 1 << uint(bit%8)
			f.stats.corrupted.Add(1)
		}
		if !drop {
			return n, from, nil
		}
		f.stats.dropped.Add(1)
		// Dropped on arrival: wait out the remaining timeout for another.
		if timeout == 0 {
			return 0, nil, ErrTimeout
		}
		if timeout > 0 {
			timeout = time.Until(deadline)
			if timeout <= 0 {
				return 0, nil, ErrTimeout
			}
		}
	}
}

// LocalAddr implements Conn.
func (f *FaultConn) LocalAddr() Addr { return f.inner.LocalAddr() }

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }

var _ Conn = (*FaultConn)(nil)

// FaultNetwork wraps a Network so every endpoint it opens carries the
// same fault profile — a one-call chaos fabric for tests and benches.
// Each endpoint gets an independent fault stream derived from the base
// seed, so per-conn behavior is deterministic regardless of goroutine
// interleaving.
type FaultNetwork struct {
	net *Network
	cfg FaultConfig

	mu     sync.Mutex
	opened int64
	conns  []*FaultConn
}

// NewFaultNetwork wraps net with the given fault profile.
func NewFaultNetwork(net *Network, cfg FaultConfig) *FaultNetwork {
	return &FaultNetwork{net: net, cfg: cfg}
}

// Listen opens a fault-injecting endpoint on the underlying network.
func (fn *FaultNetwork) Listen(name string) (*FaultConn, error) {
	inner, err := fn.net.Listen(name)
	if err != nil {
		return nil, err
	}
	fn.mu.Lock()
	fn.opened++
	cfg := fn.cfg
	cfg.Seed = fn.cfg.Seed*31 + fn.opened
	fc := NewFaultConn(inner, cfg)
	fn.conns = append(fn.conns, fc)
	fn.mu.Unlock()
	return fc, nil
}

// SetConfig swaps the fault profile on every endpoint opened so far and
// on endpoints opened later. Rate changes keep each conn's derived seed.
func (fn *FaultNetwork) SetConfig(cfg FaultConfig) {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	fn.cfg = cfg
	for i, fc := range fn.conns {
		c := cfg
		c.Seed = cfg.Seed*31 + int64(i) + 1
		fc.SetConfig(c)
	}
}

// Stats sums fault counters across all endpoints.
func (fn *FaultNetwork) Stats() FaultStats {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	var total FaultStats
	for _, fc := range fn.conns {
		st := fc.Stats()
		total.Dropped += st.Dropped
		total.Duplicated += st.Duplicated
		total.Reordered += st.Reordered
		total.Corrupted += st.Corrupted
		total.Truncated += st.Truncated
		total.Delayed += st.Delayed
	}
	return total
}

// clamp01 bounds a probability to [0, 1] (flag parsing convenience).
func clamp01(p float64) float64 {
	if math.IsNaN(p) || p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Clamped returns cfg with every probability bounded to [0, 1].
func (c FaultConfig) Clamped() FaultConfig {
	c.DropProb = clamp01(c.DropProb)
	c.DupProb = clamp01(c.DupProb)
	c.ReorderProb = clamp01(c.ReorderProb)
	c.CorruptProb = clamp01(c.CorruptProb)
	c.TruncateProb = clamp01(c.TruncateProb)
	c.DelayProb = clamp01(c.DelayProb)
	return c
}
