package transport

import (
	"sync"
	"testing"
	"time"
)

func TestMemBasicDelivery(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.LocalAddr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	got, from, err := b.Recv(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:got]) != "hello" {
		t.Errorf("payload = %q", buf[:got])
	}
	if from.String() != "a" {
		t.Errorf("from = %v", from)
	}
}

func TestMemAutoAddressAllocation(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	c1, _ := n.Listen("")
	c2, _ := n.Listen("")
	if c1.LocalAddr().String() == c2.LocalAddr().String() {
		t.Error("auto-allocated addresses collide")
	}
	if _, err := n.Listen(c1.LocalAddr().String()); err == nil {
		t.Error("duplicate listen accepted")
	}
}

func TestMemTimeoutSemantics(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	c, _ := n.Listen("x")
	buf := make([]byte, 16)

	// Zero timeout: immediate poll.
	start := time.Now()
	_, _, err := c.Recv(buf, 0)
	if err != ErrTimeout {
		t.Errorf("poll err = %v", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("poll blocked")
	}

	// Short timeout expires.
	start = time.Now()
	_, _, err = c.Recv(buf, 30*time.Millisecond)
	if err != ErrTimeout {
		t.Errorf("timed recv err = %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("timeout returned early after %v", d)
	}
}

func TestMemBlockingRecvWakesOnSend(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, _, err := b.Recv(buf, -1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Send(b.LocalAddr(), []byte("wake"))
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking recv never woke")
	}
}

func TestMemCloseUnblocksRecv(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	c, _ := n.Listen("c")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, _, err := c.Recv(buf, -1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock recv")
	}
	// Double close is safe; sends after close fail.
	c.Close()
	if err := c.Send(MemAddr("c"), []byte("x")); err != ErrClosed {
		t.Errorf("send after close err = %v", err)
	}
}

func TestMemUnknownDestination(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a, _ := n.Listen("a")
	if err := a.Send(MemAddr("ghost"), []byte("x")); err != ErrUnknownAddr {
		t.Errorf("err = %v", err)
	}
}

func TestMemLatency(t *testing.T) {
	n := NewNetwork(NetworkConfig{Latency: 50 * time.Millisecond})
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	start := time.Now()
	a.Send(b.LocalAddr(), []byte("slow"))
	buf := make([]byte, 16)
	_, _, err := b.Recv(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~50ms", d)
	}
}

func TestMemLoss(t *testing.T) {
	n := NewNetwork(NetworkConfig{LossProb: 1.0, Seed: 1})
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	for i := 0; i < 20; i++ {
		if err := a.Send(b.LocalAddr(), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 16)
	if _, _, err := b.Recv(buf, 20*time.Millisecond); err != ErrTimeout {
		t.Errorf("lossy recv err = %v", err)
	}
	sent, delivered, dropped := n.Stats()
	if sent != 20 || delivered != 0 || dropped != 20 {
		t.Errorf("stats = %d/%d/%d", sent, delivered, dropped)
	}
}

func TestMemQueueOverflow(t *testing.T) {
	n := NewNetwork(NetworkConfig{QueueLen: 4})
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	for i := 0; i < 10; i++ {
		a.Send(b.LocalAddr(), []byte{byte(i)})
	}
	if b.Pending() != 4 {
		t.Errorf("queue holds %d, want 4", b.Pending())
	}
	_, delivered, dropped := func() (int64, int64, int64) { return n.Stats() }()
	if delivered != 4 || dropped != 6 {
		t.Errorf("delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestMemPayloadIsolation(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	payload := []byte("mutate me")
	a.Send(b.LocalAddr(), payload)
	payload[0] = 'X' // sender reuses its buffer
	buf := make([]byte, 64)
	got, _, _ := b.Recv(buf, time.Second)
	if string(buf[:got]) != "mutate me" {
		t.Errorf("payload aliased sender buffer: %q", buf[:got])
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	n := NewNetwork(NetworkConfig{QueueLen: 4096})
	dst, _ := n.Listen("dst")
	const senders, per = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, _ := n.Listen("")
			for i := 0; i < per; i++ {
				c.Send(dst.LocalAddr(), []byte{byte(id)})
			}
		}(s)
	}
	wg.Wait()
	count := 0
	buf := make([]byte, 16)
	for {
		_, _, err := dst.Recv(buf, 0)
		if err != nil {
			break
		}
		count++
	}
	if count != senders*per {
		t.Errorf("received %d of %d", count, senders*per)
	}
}

func TestUDPLoopback(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP available: %v", err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.LocalAddr(), []byte("over udp")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, from, err := b.Recv(buf, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "over udp" {
		t.Errorf("payload = %q", buf[:n])
	}
	if from.String() != a.LocalAddr().String() {
		t.Errorf("from = %v, want %v", from, a.LocalAddr())
	}

	// Timeout semantics.
	if _, _, err := b.Recv(buf, 20*time.Millisecond); err != ErrTimeout {
		t.Errorf("udp timeout err = %v", err)
	}

	// Close unblocks.
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Recv(buf, -1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("closed udp recv err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("udp close did not unblock recv")
	}
}

func BenchmarkMemSendRecv(b *testing.B) {
	n := NewNetwork(NetworkConfig{QueueLen: 8})
	src, _ := n.Listen("src")
	dst, _ := n.Listen("dst")
	payload := make([]byte, 64)
	buf := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(dst.LocalAddr(), payload)
		dst.Recv(buf, 0)
	}
}
