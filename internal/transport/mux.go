package transport

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// Mux fans a server's N thread endpoints into N routable ports so the
// load balancer can migrate a client between threads without the client
// noticing. The paper's static design hands each thread its own UDP
// endpoint and clients keep sending to the endpoint named in Accept;
// once clients migrate, a datagram can arrive at the endpoint of a
// thread that no longer owns the sender. The Mux sits between the real
// endpoints and the worker threads: one pump goroutine per underlying
// conn drains datagrams and enqueues each onto the port chosen by a
// source-address routing table (defaulting to the arrival endpoint's own
// port, which reproduces the static behavior exactly).
//
// The frame master updates routes at the rebalance barrier; Forward lets
// a worker bounce an already-received datagram to the owning thread's
// port, so commands in flight across a migration are executed rather
// than dropped.
//
// The Mux does not own the underlying conns: Close stops the pumps but
// leaves the conns open for their creator to close.
type Mux struct {
	conns []Conn
	ports []*MuxPort

	mu    sync.Mutex
	route map[string]int // source address → port index

	// drops counts datagrams lost to port-queue overflow; the pre-fix
	// behavior dropped them silently, hiding receive-queue pressure from
	// every report. dropsBySrc drives the sampled per-client log.
	drops      atomic.Int64
	dropsBySrc map[string]int64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// muxDropLogSample is the per-client sampling rate of the overflow log:
// the first drop for a source logs immediately, then one line per this
// many further drops, so a flooding client cannot flood the log too.
const muxDropLogSample = 1024

// muxPumpTick bounds how long a pump blocks in Recv before re-checking
// for shutdown, so Close returns promptly without closing the conns.
const muxPumpTick = 20 * time.Millisecond

// muxQueueLen bounds each port's receive queue; overflow drops, as a
// full socket buffer would.
const muxQueueLen = 1024

// NewMux wraps conns and starts one pump goroutine per conn.
func NewMux(conns []Conn) *Mux {
	m := &Mux{
		conns:      conns,
		ports:      make([]*MuxPort, len(conns)),
		route:      make(map[string]int),
		dropsBySrc: make(map[string]int64),
		stop:       make(chan struct{}),
	}
	for i, c := range conns {
		m.ports[i] = &MuxPort{
			mux:   m,
			inner: c,
			queue: make(chan memPacket, muxQueueLen),
		}
	}
	for i := range conns {
		m.wg.Add(1)
		go m.pump(i)
	}
	return m
}

// Port returns the routable Conn for worker i.
func (m *Mux) Port(i int) *MuxPort {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ports[i]
}

// AddPort appends a new routable port at runtime and returns its index
// and Conn. The port sends through the first underlying endpoint (a
// match-manager deployment runs one socket shared by every match), and
// receives whatever the routing table directs at it. Safe to call
// concurrently with pumps; existing port indices never change.
func (m *Mux) AddPort() (int, *MuxPort) {
	p := &MuxPort{
		mux:   m,
		inner: m.conns[0],
		queue: make(chan memPacket, muxQueueLen),
	}
	m.mu.Lock()
	idx := len(m.ports)
	m.ports = append(m.ports, p)
	m.mu.Unlock()
	return idx, p
}

// Route directs future datagrams from addr to the given port. Safe to
// call concurrently with pumps (connect handling) and from the frame
// master (migration).
func (m *Mux) Route(addr Addr, port int) {
	m.mu.Lock()
	if port >= 0 && port < len(m.ports) {
		m.route[addr.String()] = port
	}
	m.mu.Unlock()
}

// Unroute forgets a source address (client disconnected or evicted);
// its datagrams fall back to arrival-endpoint routing.
func (m *Mux) Unroute(addr Addr) {
	m.mu.Lock()
	delete(m.route, addr.String())
	delete(m.dropsBySrc, addr.String())
	m.mu.Unlock()
}

// Forward re-injects an already-received datagram into another port's
// queue, preserving the original source address. Workers use it when a
// datagram for a migrated client arrives before the client's routing
// update takes effect. The data is copied; the caller may reuse it.
func (m *Mux) Forward(port int, data []byte, from Addr) {
	m.mu.Lock()
	var dst *MuxPort
	if port >= 0 && port < len(m.ports) {
		dst = m.ports[port]
	}
	m.mu.Unlock()
	if dst == nil {
		return
	}
	pb := pktPool.Get().(*pktBuf)
	pb.b = append(pb.b[:0], data...)
	dst.enqueue(memPacket{buf: pb, from: MemAddr(from.String())})
}

// Close stops the pump goroutines and wakes any blocked port Recv. The
// underlying conns are left open.
func (m *Mux) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		m.wg.Wait()
	})
}

// pump drains endpoint i into the per-port receive queues for the
// lifetime of the mux; its steady-state loop allocates nothing.
//
//qvet:noalloc
func (m *Mux) pump(i int) {
	defer m.wg.Done()
	//qvet:allow=noalloc one receive buffer per pump goroutine, at startup
	buf := make([]byte, MaxDatagram)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		n, from, err := m.conns[i].Recv(buf, muxPumpTick)
		if err == ErrTimeout {
			continue
		}
		if err != nil {
			return // conn closed out from under us
		}
		m.mu.Lock()
		port, ok := m.route[from.String()]
		if !ok {
			port = i // unknown sender: static behavior, arrival endpoint's thread
		}
		var dst *MuxPort
		if port >= 0 && port < len(m.ports) {
			dst = m.ports[port]
		}
		m.mu.Unlock()
		if dst == nil {
			continue
		}
		pb := pktPool.Get().(*pktBuf)
		pb.b = append(pb.b[:0], buf[:n]...)
		dst.enqueue(memPacket{buf: pb, from: MemAddr(from.String())})
	}
}

// MuxPort is one worker-facing Conn of a Mux.
type MuxPort struct {
	mux   *Mux
	inner Conn
	queue chan memPacket
}

// enqueue delivers one pumped datagram to this port's receive queue.
// The fast path (queue accepts) is allocation-free; only the sampled
// overflow log on the drop path allocates.
//
//qvet:noalloc
func (p *MuxPort) enqueue(pkt memPacket) {
	select {
	case p.queue <- pkt:
	default:
		// Receive-queue overflow: the datagram is lost, as with a full
		// socket buffer — but never silently. The counter feeds the
		// engine's metrics and the sampled log names the flooding source.
		from := string(pkt.from)
		pkt.release()
		p.mux.drops.Add(1)
		p.mux.mu.Lock()
		p.mux.dropsBySrc[from]++
		n := p.mux.dropsBySrc[from]
		p.mux.mu.Unlock()
		if n == 1 || n%muxDropLogSample == 0 {
			//qvet:allow=noalloc sampled overflow log; drop path only
			log.Printf("transport: mux queue overflow, dropped datagram from %s (%d total from this source)", from, n)
		}
	}
}

// Drops returns the number of datagrams lost to port-queue overflow.
func (m *Mux) Drops() int64 { return m.drops.Load() }

// Send implements Conn, transmitting from the port's own endpoint so
// replies carry the address the client expects.
func (p *MuxPort) Send(to Addr, data []byte) error { return p.inner.Send(to, data) }

// Recv implements Conn with the standard timeout semantics.
func (p *MuxPort) Recv(buf []byte, timeout time.Duration) (int, Addr, error) {
	select {
	case pkt := <-p.queue:
		return copyPacket(buf, pkt)
	case <-p.mux.stop:
		return 0, nil, ErrClosed
	default:
	}
	if timeout == 0 {
		return 0, nil, ErrTimeout
	}
	if timeout < 0 {
		select {
		case pkt := <-p.queue:
			return copyPacket(buf, pkt)
		case <-p.mux.stop:
			return 0, nil, ErrClosed
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case pkt := <-p.queue:
		return copyPacket(buf, pkt)
	case <-p.mux.stop:
		return 0, nil, ErrClosed
	case <-timer.C:
		return 0, nil, ErrTimeout
	}
}

// LocalAddr implements Conn; it names the underlying endpoint, so
// Accept messages keep advertising real client-visible addresses.
func (p *MuxPort) LocalAddr() Addr { return p.inner.LocalAddr() }

// Close implements Conn. Ports close with their Mux, not individually.
func (p *MuxPort) Close() error { return nil }

// Pending returns the number of queued datagrams (diagnostics).
func (p *MuxPort) Pending() int { return len(p.queue) }

var _ Conn = (*MuxPort)(nil)

// muxResolve keeps ResolveLike working through a Mux: addresses are
// resolved against the underlying endpoint's transport.
func muxResolve(p *MuxPort, s string) (Addr, error) {
	if p.inner == nil {
		return nil, fmt.Errorf("transport: mux port has no inner conn")
	}
	return ResolveLike(p.inner, s)
}
