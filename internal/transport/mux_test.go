package transport

import (
	"testing"
	"time"
)

func newMuxRig(t *testing.T, n int) (*Network, []*MemConn, *Mux) {
	t.Helper()
	net := NewNetwork(NetworkConfig{})
	conns := make([]*MemConn, n)
	iconns := make([]Conn, n)
	for i := range conns {
		c, err := net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		iconns[i] = c
	}
	mux := NewMux(iconns)
	t.Cleanup(mux.Close)
	return net, conns, mux
}

func recvFrom(t *testing.T, p *MuxPort) (string, string) {
	t.Helper()
	buf := make([]byte, MaxDatagram)
	n, from, err := p.Recv(buf, time.Second)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return string(buf[:n]), from.String()
}

func TestMuxDefaultRoutingFollowsArrivalEndpoint(t *testing.T) {
	net, conns, mux := newMuxRig(t, 2)
	cl, err := net.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(conns[1].LocalAddr(), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	data, from := recvFrom(t, mux.Port(1))
	if data != "hi" || from != "client" {
		t.Fatalf("port 1 got (%q, %q), want (hi, client)", data, from)
	}
	if n := mux.Port(0).Pending(); n != 0 {
		t.Fatalf("port 0 has %d stray datagrams", n)
	}
}

func TestMuxRouteRedirectsAndUnrouteRestores(t *testing.T) {
	net, conns, mux := newMuxRig(t, 2)
	cl, err := net.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	mux.Route(MemAddr("client"), 0)
	// Client still sends to endpoint 1 — the route must win.
	if err := cl.Send(conns[1].LocalAddr(), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if data, _ := recvFrom(t, mux.Port(0)); data != "a" {
		t.Fatalf("routed datagram = %q, want a", data)
	}
	mux.Unroute(MemAddr("client"))
	if err := cl.Send(conns[1].LocalAddr(), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if data, _ := recvFrom(t, mux.Port(1)); data != "b" {
		t.Fatalf("unrouted datagram = %q, want b on arrival port", data)
	}
}

func TestMuxForwardPreservesSource(t *testing.T) {
	_, _, mux := newMuxRig(t, 2)
	payload := []byte("move")
	mux.Forward(1, payload, MemAddr("client"))
	payload[0] = 'X' // caller may reuse the buffer immediately
	data, from := recvFrom(t, mux.Port(1))
	if data != "move" || from != "client" {
		t.Fatalf("forwarded datagram = (%q, %q), want (move, client)", data, from)
	}
}

func TestMuxSendUsesOwnEndpoint(t *testing.T) {
	net, conns, mux := newMuxRig(t, 2)
	cl, err := net.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	if err := mux.Port(1).Send(MemAddr("client"), []byte("snap")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, MaxDatagram)
	n, from, err := cl.Recv(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "snap" || from.String() != conns[1].LocalAddr().String() {
		t.Fatalf("client got (%q, %q), want (snap, %q)", buf[:n], from, conns[1].LocalAddr())
	}
}

func TestMuxCloseUnblocksRecvAndKeepsConnsOpen(t *testing.T) {
	net, conns, mux := newMuxRig(t, 1)
	done := make(chan error, 1)
	go func() {
		_, _, err := mux.Port(0).Recv(make([]byte, MaxDatagram), -1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	mux.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Recv after Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	// Underlying conn still usable.
	cl, err := net.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(conns[0].LocalAddr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, MaxDatagram)
	if _, _, err := conns[0].Recv(buf, time.Second); err != nil {
		t.Fatalf("underlying conn closed by mux: %v", err)
	}
}

func TestResolveLikeThroughMuxPort(t *testing.T) {
	_, _, mux := newMuxRig(t, 1)
	addr, err := ResolveLike(mux.Port(0), "somewhere")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := addr.(MemAddr); !ok {
		t.Fatalf("resolved %T, want MemAddr", addr)
	}
}
