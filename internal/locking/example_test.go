package locking_test

import (
	"fmt"

	"qserve/internal/areanode"
	"qserve/internal/geom"
	"qserve/internal/locking"
)

// Example shows the region-locking protocol for one move: size the
// region with a strategy, acquire the leaf set in canonical order, do
// the work, release.
func Example() {
	world := geom.Box(geom.V(0, 0, 0), geom.V(1024, 1024, 256))
	tree := areanode.NewTree(world, areanode.DefaultDepth)
	locker := &locking.RegionLocker{
		Tree:     tree,
		Provider: locking.NewMutexProvider(tree.NumNodes()),
	}

	req := locking.Request{
		Start:   geom.V(100, 100, 50),
		MoveBox: geom.BoxAt(geom.V(100, 100, 50), geom.V(40, 40, 60)),
		AimDir:  geom.V(1, 0, 0),
		Range:   160,
	}

	for _, strat := range []locking.Strategy{locking.Conservative{}, locking.Optimized{}} {
		var stats locking.AcquireStats
		region := strat.Region(world, req, locking.KindLongRangeImmediate)
		guard := locker.Acquire(region, &stats)
		fmt.Printf("%s long-range: %d of %d leaves locked\n",
			strat.Name(), stats.DistinctLeaves, tree.NumLeaves())
		guard.Release()
	}

	// Output:
	// conservative long-range: 16 of 16 leaves locked
	// optimized long-range: 4 of 16 leaves locked
}
