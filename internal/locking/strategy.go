// Package locking implements the paper's region-based synchronization
// over the areanode tree (§3.3) and its game-knowledge optimizations
// (§4.3):
//
//   - a move locks the leaf areanodes its bounding box touches, always in
//     ascending node order (deadlock freedom by global ordering);
//   - parent areanodes are locked only transiently, around scans of their
//     object lists, "an artifact of the server design";
//   - the baseline Conservative strategy locks a slightly enlarged region
//     for short-range interactions and the entire map for long-range
//     interactions;
//   - the Optimized strategy replaces whole-map locking with expanded
//     bounding-box locks (objects finished later by world physics) and
//     directional bounding-box locks (objects fully simulated during
//     request processing).
//
// The package is engine-agnostic: a Provider supplies the per-node lock
// primitive, which is a real sync.Mutex array in the live server and a
// virtual-time lock in the simulated machine, so both engines execute the
// identical protocol.
package locking

import (
	"math"

	"qserve/internal/areanode"
	"qserve/internal/geom"
)

// Kind classifies the interaction a lock region covers, after the paper's
// two-component breakdown of move execution.
type Kind int

const (
	// KindShortRange covers player figure motion: the move's own
	// bounding box.
	KindShortRange Kind = iota
	// KindLongRangeDeferred covers objects "partly simulated during
	// request processing and then ... completed during the world physics
	// processing phase" (the paper's first long-range type). Optimized
	// locking uses an expanded bounding box sized by the object's maximum
	// interaction range during request processing.
	KindLongRangeDeferred
	// KindLongRangeImmediate covers objects "fully simulated during
	// request processing" (the second type). Optimized locking uses a
	// directional bounding box from the player to the end of the world.
	KindLongRangeImmediate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindShortRange:
		return "short-range"
	case KindLongRangeDeferred:
		return "long-range-deferred"
	case KindLongRangeImmediate:
		return "long-range-immediate"
	default:
		return "unknown"
	}
}

// Request carries the geometric facts a strategy needs to size a lock
// region.
type Request struct {
	// Start is the player's position when the command executes.
	Start geom.Vec3
	// MoveBox bounds the player's possible motion this move (§2.3 step 1).
	MoveBox geom.AABB
	// AimDir is the unit fire direction for long-range interactions.
	AimDir geom.Vec3
	// Range is the object-dependent maximum interaction distance during
	// request processing, used by expanded locking.
	Range float64
}

// Strategy maps a request component to the world region that must be
// locked before simulating it.
type Strategy interface {
	// Name identifies the strategy in reports ("conservative",
	// "optimized").
	Name() string
	// Region returns the box to lock. world is the full map volume.
	Region(world geom.AABB, req Request, kind Kind) geom.AABB
}

// shortRangeMargin enlarges short-range regions slightly beyond the move
// box: the paper's baseline is "somewhat conservative ... we lock a
// slightly larger region than necessary for short-range interactions".
const shortRangeMargin = 16.0

// Conservative is the paper's baseline scheme: enlarged short-range
// regions, whole-map locking for every long-range interaction.
type Conservative struct{}

// Name implements Strategy.
func (Conservative) Name() string { return "conservative" }

// Region implements Strategy.
func (Conservative) Region(world geom.AABB, req Request, kind Kind) geom.AABB {
	if kind == KindShortRange {
		return req.MoveBox.Expand(shortRangeMargin)
	}
	return world
}

// Optimized is the §4.3 scheme using game-specific knowledge for
// long-range interactions.
type Optimized struct{}

// Name implements Strategy.
func (Optimized) Name() string { return "optimized" }

// Region implements Strategy.
func (Optimized) Region(world geom.AABB, req Request, kind Kind) geom.AABB {
	switch kind {
	case KindShortRange:
		return req.MoveBox.Expand(shortRangeMargin)
	case KindLongRangeDeferred:
		// Expanded bounding-box locking: "we increase the extent of the
		// region to lock outwards in every direction by an amount that
		// depends on the object."
		r := req.Range
		if r <= 0 {
			r = shortRangeMargin
		}
		return clampToWorld(req.MoveBox.Expand(r), world)
	default:
		// Directional bounding-box locking: "we extend a bounding-box
		// from the player to the end of the world in the direction the
		// object is being simulated."
		return clampToWorld(DirectionalBox(world, req.Start, req.AimDir, shortRangeMargin), world)
	}
}

// DirectionalBox builds the box from start to the world boundary along
// dir, expanded by margin in every direction. A zero direction degrades
// to the whole world (safe fallback).
func DirectionalBox(world geom.AABB, start, dir geom.Vec3, margin float64) geom.AABB {
	d := dir.Norm()
	if d.IsZero() {
		return world
	}
	// Distance to exit the world along d.
	exitT := math.Inf(1)
	for i := 0; i < 3; i++ {
		dv := d.Axis(i)
		if dv == 0 {
			continue
		}
		var boundary float64
		if dv > 0 {
			boundary = world.Max.Axis(i)
		} else {
			boundary = world.Min.Axis(i)
		}
		t := (boundary - start.Axis(i)) / dv
		if t >= 0 && t < exitT {
			exitT = t
		}
	}
	if math.IsInf(exitT, 1) {
		return world
	}
	end := start.MA(exitT, d)
	return geom.Box(start, end).Expand(margin)
}

func clampToWorld(b, world geom.AABB) geom.AABB {
	x := b.Intersection(world)
	if !x.IsValid() {
		return world
	}
	return x
}

// Provider supplies blocking per-areanode lock primitives. Node indices
// are areanode tree node indices. Implementations attribute wait time
// themselves (real time in the live engine, virtual time in the
// simulator).
type Provider interface {
	LockNode(node int32)
	UnlockNode(node int32)
}

// TryProvider extends Provider with a non-blocking acquisition attempt.
// Work-stealing execution probes it through RegionLocker.TryAcquire so a
// thief can park a request whose region is contended instead of queueing
// behind the holder.
type TryProvider interface {
	Provider
	// TryLockNode acquires node if it is free and reports success. It
	// never blocks.
	TryLockNode(node int32) bool
}

// AcquireStats counts lock protocol operations for one request, feeding
// the Fig. 7 analyses.
type AcquireStats struct {
	LeafLockOps    int // leaf lock acquisitions, including re-locks across components
	DistinctLeaves int // distinct leaves locked by this request
	ParentLockOps  int // transient parent (interior node) lock acquisitions
}

// Add accumulates o into s.
func (s *AcquireStats) Add(o AcquireStats) {
	s.LeafLockOps += o.LeafLockOps
	s.DistinctLeaves += o.DistinctLeaves
	s.ParentLockOps += o.ParentLockOps
}

// RegionLocker executes the locking protocol for one server thread. It is
// not itself safe for concurrent use: each server thread owns one.
type RegionLocker struct {
	Tree     *areanode.Tree
	Provider Provider

	leafBuf []int32
	// held records every node currently locked through this locker, in
	// acquisition order. Game code releases guards explicitly (not always
	// via defer), so a panic mid-move can strand locks; the server's
	// panic-containment path calls ReleaseAll to unwind them instead of
	// deadlocking the next thread that touches the region.
	held []int32

	// guardFn caches the NodeGuard closure handed out by ParentGuard so
	// the per-frame scan path does not allocate a fresh closure per call.
	// guardStats is the stats sink the cached closure reads through; the
	// locker is single-threaded, so swapping it per ParentGuard call is
	// safe.
	guardFn    areanode.NodeGuard
	guardStats *AcquireStats
}

// popHeld removes the most recent occurrence of node from the held log.
func (rl *RegionLocker) popHeld(node int32) {
	for i := len(rl.held) - 1; i >= 0; i-- {
		if rl.held[i] == node {
			rl.held = append(rl.held[:i], rl.held[i+1:]...)
			return
		}
	}
}

// ReleaseAll force-unlocks every node still held through this locker, in
// reverse acquisition order, and returns how many it released. It is the
// panic-recovery escape hatch: after a recover() the thread's guards may
// never get their Release calls, and this restores the provider to a
// clean state. Zero in normal operation.
func (rl *RegionLocker) ReleaseAll() int {
	n := len(rl.held)
	for i := n - 1; i >= 0; i-- {
		rl.Provider.UnlockNode(rl.held[i])
	}
	rl.held = rl.held[:0]
	return n
}

// Guard represents a held set of leaf locks. Release unlocks in reverse
// acquisition order.
type Guard struct {
	rl     *RegionLocker
	leaves []int32
	region geom.AABB
}

// Acquire locks, in ascending node order, every leaf whose volume touches
// region, and returns the guard plus the count of leaves locked. The
// ascending order is the global order that makes the protocol
// deadlock-free across threads.
func (rl *RegionLocker) Acquire(region geom.AABB, stats *AcquireStats) Guard {
	rl.leafBuf = rl.Tree.LeavesTouching(region, rl.leafBuf[:0])
	for _, ni := range rl.leafBuf {
		rl.Provider.LockNode(ni)
		rl.held = append(rl.held, ni)
	}
	if stats != nil {
		stats.LeafLockOps += len(rl.leafBuf)
		stats.DistinctLeaves = len(rl.leafBuf)
	}
	leaves := append([]int32(nil), rl.leafBuf...)
	return Guard{rl: rl, leaves: leaves, region: region}
}

// TryAcquire attempts Acquire without blocking. It probes each leaf in
// the same ascending node order; on the first busy leaf it unlocks
// everything taken so far (in reverse order) and reports failure, leaving
// the provider exactly as it found it. It requires a TryProvider; with a
// blocking-only provider it degrades to Acquire (ok is always true), so
// callers can enable stealing unconditionally.
func (rl *RegionLocker) TryAcquire(region geom.AABB, stats *AcquireStats) (Guard, bool) {
	tp, hasTry := rl.Provider.(TryProvider)
	if !hasTry {
		return rl.Acquire(region, stats), true
	}
	rl.leafBuf = rl.Tree.LeavesTouching(region, rl.leafBuf[:0])
	for i, ni := range rl.leafBuf {
		if tp.TryLockNode(ni) {
			rl.held = append(rl.held, ni)
			continue
		}
		// Conflict: roll back in reverse acquisition order.
		for j := i - 1; j >= 0; j-- {
			rl.Provider.UnlockNode(rl.leafBuf[j])
			rl.popHeld(rl.leafBuf[j])
		}
		if stats != nil {
			// Count the probe work that was wasted: each leaf we touched,
			// plus the one that refused us.
			stats.LeafLockOps += i + 1
		}
		return Guard{}, false
	}
	if stats != nil {
		stats.LeafLockOps += len(rl.leafBuf)
		stats.DistinctLeaves = len(rl.leafBuf)
	}
	leaves := append([]int32(nil), rl.leafBuf...)
	return Guard{rl: rl, leaves: leaves, region: region}, true
}

// Leaves returns the node indices of the held leaves (ascending).
func (g *Guard) Leaves() []int32 { return g.leaves }

// Region returns the region the guard covers.
func (g *Guard) Region() geom.AABB { return g.region }

// Covers reports whether the guard's leaf set covers box, i.e. every leaf
// the box touches is held. Game code uses it to assert queries stay
// within the locked region.
func (g *Guard) Covers(box geom.AABB) bool {
	needed := g.rl.Tree.LeavesTouching(box, nil)
	held := make(map[int32]bool, len(g.leaves))
	for _, ni := range g.leaves {
		held[ni] = true
	}
	for _, ni := range needed {
		if !held[ni] {
			return false
		}
	}
	return true
}

// Release unlocks all held leaves in reverse order. Releasing an empty or
// already-released guard is a no-op.
func (g *Guard) Release() {
	for i := len(g.leaves) - 1; i >= 0; i-- {
		g.rl.Provider.UnlockNode(g.leaves[i])
		g.rl.popHeld(g.leaves[i])
	}
	g.leaves = nil
}

// ParentGuard returns an areanode.NodeGuard that transiently locks
// interior nodes around their list scans — the paper's parent areanode
// locking — while scanning leaf lists directly (their locks are already
// held via Acquire). Since only one parent areanode is locked at a time,
// "there are no deadlock issues when locking parent areanodes".
func (rl *RegionLocker) ParentGuard(stats *AcquireStats) areanode.NodeGuard {
	rl.guardStats = stats
	if rl.guardFn == nil {
		// Built once per locker: the closure captures only rl and reads
		// the stats sink through rl.guardStats, so handing out a guard
		// every frame stays allocation-free.
		rl.guardFn = func(node int32, isLeaf bool, scan func()) {
			if isLeaf {
				scan()
				return
			}
			rl.Provider.LockNode(node)
			rl.held = append(rl.held, node)
			if s := rl.guardStats; s != nil {
				s.ParentLockOps++
			}
			// Deferred so a panic inside the scan still releases the interior
			// node (and removes it from the held log before any ReleaseAll).
			defer func() {
				rl.Provider.UnlockNode(node)
				rl.popHeld(node)
			}()
			scan()
		}
	}
	return rl.guardFn
}

// MutexProvider is the live-engine Provider: one mutex per areanode.
type MutexProvider struct {
	locks []nodeMutex
}

// nodeMutex pads to a cache line to avoid false sharing between adjacent
// node locks under contention.
type nodeMutex struct {
	mu chanMutex
	_  [40]byte
}

// chanMutex is a simple channel-based mutex; unlike sync.Mutex it lets
// the live engine instrument wait time without extra allocation, and its
// FIFO-ish queueing matches the simulator's lock model more closely.
type chanMutex struct {
	ch chan struct{}
}

func (m *chanMutex) init() { m.ch = make(chan struct{}, 1) }

func (m *chanMutex) Lock()   { m.ch <- struct{}{} }
func (m *chanMutex) Unlock() { <-m.ch }

// TryLock acquires the mutex if free and reports success.
func (m *chanMutex) TryLock() bool {
	select {
	case m.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// NewMutexProvider creates a provider with one lock per tree node.
func NewMutexProvider(numNodes int) *MutexProvider {
	p := &MutexProvider{locks: make([]nodeMutex, numNodes)}
	for i := range p.locks {
		p.locks[i].mu.init()
	}
	return p
}

// LockNode implements Provider.
func (p *MutexProvider) LockNode(node int32) { p.locks[node].mu.Lock() }

// UnlockNode implements Provider.
func (p *MutexProvider) UnlockNode(node int32) { p.locks[node].mu.Unlock() }

// TryLockNode implements TryProvider.
func (p *MutexProvider) TryLockNode(node int32) bool { return p.locks[node].mu.TryLock() }

// NopProvider performs no locking; the sequential server uses it so the
// same game code runs lock-free single-threaded.
type NopProvider struct{}

// LockNode implements Provider.
func (NopProvider) LockNode(int32) {}

// UnlockNode implements Provider.
func (NopProvider) UnlockNode(int32) {}
