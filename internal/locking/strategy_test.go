package locking

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qserve/internal/areanode"
	"qserve/internal/geom"
)

func world() geom.AABB {
	return geom.Box(geom.V(-16, -16, -16), geom.V(1616, 1616, 208))
}

func sampleReq() Request {
	start := geom.V(800, 800, 50)
	return Request{
		Start:   start,
		MoveBox: geom.BoxAt(start, geom.V(30, 30, 40)),
		AimDir:  geom.V(1, 0, 0),
		Range:   120,
	}
}

func TestConservativeRegions(t *testing.T) {
	var s Conservative
	if s.Name() != "conservative" {
		t.Errorf("name = %q", s.Name())
	}
	req := sampleReq()
	short := s.Region(world(), req, KindShortRange)
	if !short.ContainsBox(req.MoveBox) {
		t.Error("short-range region does not contain move box")
	}
	if short.Volume() <= req.MoveBox.Volume() {
		t.Error("short-range region not enlarged")
	}
	if got := s.Region(world(), req, KindLongRangeDeferred); got != world() {
		t.Errorf("deferred long-range should lock whole map, got %v", got)
	}
	if got := s.Region(world(), req, KindLongRangeImmediate); got != world() {
		t.Errorf("immediate long-range should lock whole map, got %v", got)
	}
}

func TestOptimizedRegions(t *testing.T) {
	var s Optimized
	if s.Name() != "optimized" {
		t.Errorf("name = %q", s.Name())
	}
	req := sampleReq()
	w := world()

	short := s.Region(w, req, KindShortRange)
	if !short.ContainsBox(req.MoveBox) {
		t.Error("short region must contain move box")
	}

	exp := s.Region(w, req, KindLongRangeDeferred)
	if !exp.ContainsBox(req.MoveBox) {
		t.Error("expanded region must contain move box")
	}
	if exp == w {
		t.Error("expanded locking degenerated to whole map")
	}
	// Expansion amount follows Range.
	if exp.Min.X > req.MoveBox.Min.X-req.Range+1 {
		t.Errorf("expansion too small: %v", exp)
	}

	dir := s.Region(w, req, KindLongRangeImmediate)
	if !dir.Contains(req.Start) {
		t.Error("directional region must contain the player")
	}
	if dir == w {
		t.Error("directional locking degenerated to whole map for axis aim")
	}
	// Aiming +x from the center: region must reach the east boundary but
	// not the west one.
	if dir.Max.X < w.Max.X-1 {
		t.Errorf("directional region does not reach world edge: %v", dir)
	}
	if dir.Min.X < w.Min.X+100 {
		t.Errorf("directional region extends too far backwards: %v", dir)
	}
}

func TestOptimizedSmallerThanConservative(t *testing.T) {
	var c Conservative
	var o Optimized
	w := world()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		start := geom.V(r.Float64()*1500, r.Float64()*1500, 50)
		req := Request{
			Start:   start,
			MoveBox: geom.BoxAt(start, geom.V(30, 30, 40)),
			AimDir:  geom.Forward(geom.V(0, r.Float64()*360, 0)),
			Range:   60 + r.Float64()*200,
		}
		for _, kind := range []Kind{KindLongRangeDeferred, KindLongRangeImmediate} {
			cv := c.Region(w, req, kind).Volume()
			ov := o.Region(w, req, kind).Volume()
			if ov > cv+1e-6 {
				t.Fatalf("optimized region larger than conservative for %v", kind)
			}
		}
	}
}

func TestDirectionalBoxProperties(t *testing.T) {
	w := world()
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		start := geom.V(
			w.Min.X+r.Float64()*(w.Max.X-w.Min.X),
			w.Min.Y+r.Float64()*(w.Max.Y-w.Min.Y),
			w.Min.Z+r.Float64()*(w.Max.Z-w.Min.Z),
		)
		dir := geom.Forward(geom.V(r.Float64()*120-60, r.Float64()*360, 0))
		box := DirectionalBox(w, start, dir, 16)
		if !box.Contains(start) {
			t.Fatalf("directional box misses start: %v %v", start, box)
		}
		// The exit point along dir must be inside the (expanded) box.
		end := box.ClampPoint(start.MA(1e6, dir))
		if !box.Contains(end) {
			t.Fatalf("directional box misses ray: %v", box)
		}
	}
	// Degenerate direction falls back to the whole world.
	if got := DirectionalBox(w, geom.V(0, 0, 0), geom.Vec3{}, 16); got != w {
		t.Errorf("zero-direction box = %v", got)
	}
}

// TestDirectionalCornerCaveat reproduces the paper's observation: aiming
// across the world diagonal makes directional locking cover most of the
// map, while aiming at a nearby wall covers little.
func TestDirectionalCornerCaveat(t *testing.T) {
	w := world()
	nearWall := DirectionalBox(w, geom.V(100, 800, 50), geom.V(-1, 0, 0), 16)
	acrossMap := DirectionalBox(w, geom.V(100, 100, 50), geom.V(1, 1, 0).Norm(), 16)
	if nearWall.Volume() >= acrossMap.Volume() {
		t.Errorf("near-wall volume %v should be far below diagonal volume %v",
			nearWall.Volume(), acrossMap.Volume())
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindShortRange, KindLongRangeDeferred, KindLongRangeImmediate} {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d stringer broken", k)
		}
	}
	if Kind(42).String() != "unknown" {
		t.Error("unknown kind stringer")
	}
}

func TestAcquireReleaseOrdering(t *testing.T) {
	tr := areanode.NewTree(world(), areanode.DefaultDepth)
	var seq []int32
	rec := recordingProvider{events: &seq}
	rl := &RegionLocker{Tree: tr, Provider: &rec}

	var stats AcquireStats
	g := rl.Acquire(world(), &stats)
	if stats.DistinctLeaves != tr.NumLeaves() || stats.LeafLockOps != tr.NumLeaves() {
		t.Errorf("stats = %+v, want all %d leaves", stats, tr.NumLeaves())
	}
	if len(g.Leaves()) != tr.NumLeaves() {
		t.Fatalf("guard holds %d leaves", len(g.Leaves()))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			t.Fatal("lock acquisition not in ascending node order")
		}
	}
	locks := len(seq)
	g.Release()
	if len(seq) != 2*locks {
		t.Fatalf("release performed %d unlocks, want %d", len(seq)-locks, locks)
	}
	// Unlocks in reverse order.
	for i := 0; i < locks; i++ {
		if seq[locks+i] != seq[locks-1-i] {
			t.Fatal("release order not reverse of acquire order")
		}
	}
	g.Release() // second release is a no-op
	if len(seq) != 2*locks {
		t.Error("double release performed extra unlocks")
	}
}

type recordingProvider struct {
	events *[]int32
}

func (p *recordingProvider) LockNode(n int32)   { *p.events = append(*p.events, n) }
func (p *recordingProvider) UnlockNode(n int32) { *p.events = append(*p.events, n) }

func TestGuardCovers(t *testing.T) {
	tr := areanode.NewTree(world(), areanode.DefaultDepth)
	rl := &RegionLocker{Tree: tr, Provider: NopProvider{}}
	small := geom.BoxAt(geom.V(100, 100, 50), geom.V(20, 20, 20))
	g := rl.Acquire(small, nil)
	if !g.Covers(small) {
		t.Error("guard does not cover its own region")
	}
	if g.Covers(world()) {
		t.Error("small guard claims to cover the world")
	}
	g.Release()
}

func TestParentGuardLocksInteriorOnly(t *testing.T) {
	tr := areanode.NewTree(world(), 2)
	var seq []int32
	rec := recordingProvider{events: &seq}
	rl := &RegionLocker{Tree: tr, Provider: &rec}
	var stats AcquireStats
	guard := rl.ParentGuard(&stats)

	// Link items at root (crossing) and in a leaf.
	rootItem := &areanode.Item{ID: 1}
	mid := tr.Node(0).Plane.Dist
	tr.Link(rootItem, geom.Box(geom.V(mid-5, 100, 0), geom.V(mid+5, 120, 20)))
	leafItem := &areanode.Item{ID: 2}
	tr.Link(leafItem, geom.BoxAt(geom.V(100, 100, 50), geom.V(5, 5, 5)))

	visited := 0
	tr.CollectBox(world(), guard, func(*areanode.Item) bool { visited++; return true }, nil)
	if visited != 2 {
		t.Errorf("collected %d items", visited)
	}
	// Every guard event must be an interior node, each locked and
	// unlocked (paired).
	if len(seq)%2 != 0 {
		t.Fatalf("unpaired lock events: %v", seq)
	}
	interior := tr.NumNodes() - tr.NumLeaves()
	if stats.ParentLockOps != interior {
		t.Errorf("parent lock ops = %d, want %d (world query scans all interiors)", stats.ParentLockOps, interior)
	}
	for i := 0; i < len(seq); i += 2 {
		if seq[i] != seq[i+1] {
			t.Fatalf("parent lock %d not released before next: %v", seq[i], seq)
		}
		if tr.Node(seq[i]).IsLeaf() {
			t.Fatalf("leaf %d locked by parent guard", seq[i])
		}
	}
}

// TestConcurrentMutualExclusion drives many goroutines acquiring
// overlapping regions through a MutexProvider and verifies (a) no
// deadlock, (b) no two goroutines hold the same leaf simultaneously.
func TestConcurrentMutualExclusion(t *testing.T) {
	tr := areanode.NewTree(world(), areanode.DefaultDepth)
	prov := NewMutexProvider(tr.NumNodes())
	holders := make([]atomic.Int32, tr.NumNodes())

	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	errCh := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rl := &RegionLocker{Tree: tr, Provider: prov}
			r := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < iters; i++ {
				c := geom.V(r.Float64()*1600, r.Float64()*1600, 50)
				region := geom.BoxAt(c, geom.V(50+r.Float64()*400, 50+r.Float64()*400, 60))
				guard := rl.Acquire(region, nil)
				for _, ni := range guard.Leaves() {
					if holders[ni].Add(1) != 1 {
						errCh <- "two holders on one leaf"
					}
				}
				time.Sleep(time.Microsecond)
				for _, ni := range guard.Leaves() {
					holders[ni].Add(-1)
				}
				guard.Release()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case msg := <-errCh:
		t.Fatal(msg)
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: goroutines did not finish")
	}
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
}

func TestAcquireStatsAdd(t *testing.T) {
	a := AcquireStats{LeafLockOps: 1, DistinctLeaves: 2, ParentLockOps: 3}
	b := AcquireStats{LeafLockOps: 10, DistinctLeaves: 20, ParentLockOps: 30}
	a.Add(b)
	if a != (AcquireStats{LeafLockOps: 11, DistinctLeaves: 22, ParentLockOps: 33}) {
		t.Errorf("Add = %+v", a)
	}
}

func BenchmarkAcquireRelease(b *testing.B) {
	tr := areanode.NewTree(world(), areanode.DefaultDepth)
	prov := NewMutexProvider(tr.NumNodes())
	rl := &RegionLocker{Tree: tr, Provider: prov}
	region := geom.BoxAt(geom.V(800, 800, 50), geom.V(120, 120, 60))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := rl.Acquire(region, nil)
		g.Release()
	}
}

func TestTryAcquireSuccessAndConflict(t *testing.T) {
	tr := areanode.NewTree(world(), areanode.DefaultDepth)
	p := NewMutexProvider(tr.NumNodes())
	rl := &RegionLocker{Tree: tr, Provider: p}

	small := geom.BoxAt(geom.V(100, 100, 50), geom.V(20, 20, 20))
	var stats AcquireStats
	g, ok := rl.TryAcquire(small, &stats)
	if !ok {
		t.Fatal("TryAcquire failed on uncontended locks")
	}
	if len(g.Leaves()) == 0 || stats.DistinctLeaves != len(g.Leaves()) {
		t.Fatalf("guard leaves=%d stats=%+v", len(g.Leaves()), stats)
	}
	// A second locker over the same provider must be refused while the
	// guard holds, and succeed after release.
	rl2 := &RegionLocker{Tree: tr, Provider: p}
	if _, ok := rl2.TryAcquire(small, nil); ok {
		t.Fatal("TryAcquire succeeded on a held region")
	}
	g.Release()
	g2, ok := rl2.TryAcquire(small, nil)
	if !ok {
		t.Fatal("TryAcquire failed after the region was released")
	}
	g2.Release()
}

func TestTryAcquireRollsBackOnConflict(t *testing.T) {
	tr := areanode.NewTree(world(), areanode.DefaultDepth)
	p := NewMutexProvider(tr.NumNodes())
	rl := &RegionLocker{Tree: tr, Provider: p}

	region := geom.BoxAt(geom.V(800, 800, 50), geom.V(400, 400, 50))
	leaves := tr.LeavesTouching(region, nil)
	if len(leaves) < 2 {
		t.Fatalf("test region touches %d leaves, need >= 2 for a rollback", len(leaves))
	}
	// Pre-lock the last leaf in ascending order: TryAcquire takes every
	// earlier leaf first, so refusal happens with the most state to undo.
	last := leaves[len(leaves)-1]
	p.LockNode(last)

	var stats AcquireStats
	if _, ok := rl.TryAcquire(region, &stats); ok {
		t.Fatal("TryAcquire succeeded over a pre-locked leaf")
	}
	if want := len(leaves); stats.LeafLockOps != want {
		t.Errorf("probe ops = %d, want %d (each earlier leaf plus the refusal)", stats.LeafLockOps, want)
	}
	if n := rl.ReleaseAll(); n != 0 {
		t.Errorf("locker still held %d leaves after a failed TryAcquire", n)
	}
	// Every leaf but the pre-locked one must be free again.
	for _, ni := range leaves[:len(leaves)-1] {
		if !p.TryLockNode(ni) {
			t.Fatalf("leaf %d left locked after rollback", ni)
		}
		p.UnlockNode(ni)
	}
	if p.TryLockNode(last) {
		t.Fatal("rollback unlocked the conflicting leaf it never acquired")
	}
	p.UnlockNode(last)
}

func TestTryAcquireDegradesWithoutTryProvider(t *testing.T) {
	tr := areanode.NewTree(world(), areanode.DefaultDepth)
	var seq []int32
	rl := &RegionLocker{Tree: tr, Provider: &recordingProvider{events: &seq}}
	small := geom.BoxAt(geom.V(100, 100, 50), geom.V(20, 20, 20))
	g, ok := rl.TryAcquire(small, nil)
	if !ok {
		t.Fatal("TryAcquire with a blocking-only provider must degrade to Acquire")
	}
	g.Release()
}

func TestChanMutexTryLock(t *testing.T) {
	var m chanMutex
	m.init()
	if !m.TryLock() {
		t.Fatal("TryLock failed on a free mutex")
	}
	if m.TryLock() {
		t.Fatal("TryLock succeeded on a held mutex")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock failed after unlock")
	}
	m.Unlock()
}
