package locking

import (
	"math/rand"
	"sync"
	"testing"

	"qserve/internal/areanode"
	"qserve/internal/geom"
)

// propWorld is the map volume the property tests randomize over: the
// footprint of the default 6x6 generated map.
func propWorld() geom.AABB {
	return geom.Box(geom.V(0, 0, 0), geom.V(1600, 1600, 256))
}

// randRequest builds a random but realistic move: a start point inside
// the world, a swept bounding box for up to maxDist units of motion of a
// player-sized hull, a random aim direction, and an object interaction
// range.
func randRequest(rng *rand.Rand, world geom.AABB) Request {
	sz := world.Size()
	start := geom.V(
		world.Min.X+rng.Float64()*sz.X,
		world.Min.Y+rng.Float64()*sz.Y,
		world.Min.Z+rng.Float64()*sz.Z,
	)
	const maxDist = 64.0
	dir := randDir(rng)
	end := start.MA(rng.Float64()*maxDist, dir)
	hull := geom.V(16, 16, 32)
	moveBox := geom.Box(start, end).ExpandVec(hull)
	return Request{
		Start:   start,
		MoveBox: moveBox,
		AimDir:  randDir(rng),
		Range:   rng.Float64() * 300,
	}
}

func randDir(rng *rand.Rand) geom.Vec3 {
	for {
		v := geom.V(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1)
		if l := v.Len(); l > 1e-6 && l <= 1 {
			return v.Scale(1 / l)
		}
	}
}

// TestRegionCoversSweptBox is the core safety property of every locking
// strategy: whatever region a strategy returns for a request, the leaf
// set acquired for that region must cover the geometry the engine will
// actually touch while simulating it — the swept move box for short- and
// deferred-kind interactions, and the aim ray out to the world boundary
// for immediate long-range interactions. A strategy violating this would
// let a request mutate entities in leaves it does not hold.
func TestRegionCoversSweptBox(t *testing.T) {
	world := propWorld()
	strategies := []Strategy{Conservative{}, Optimized{}}
	kinds := []Kind{KindShortRange, KindLongRangeDeferred, KindLongRangeImmediate}

	for _, depth := range []int{3, 4, 5} {
		tree := areanode.NewTree(world, depth)
		rl := &RegionLocker{Tree: tree, Provider: NopProvider{}}
		rng := rand.New(rand.NewSource(int64(1000 + depth)))
		for iter := 0; iter < 2000; iter++ {
			req := randRequest(rng, world)
			for _, strat := range strategies {
				for _, kind := range kinds {
					region := strat.Region(world, req, kind)
					guard := rl.Acquire(region, nil)

					// The in-world part of the swept move box must be held
					// for every kind: even a long-range interaction starts at
					// the player's own figure.
					sweep := req.MoveBox.Intersection(world)
					if kind != KindLongRangeImmediate && sweep.IsValid() && !guard.Covers(sweep) {
						t.Fatalf("depth=%d iter=%d %s/%s: region %v does not cover swept box %v",
							depth, iter, strat.Name(), kind, region, sweep)
					}
					if kind == KindLongRangeImmediate {
						// The object is fully simulated now: every point of
						// the aim ray from the player to the world boundary
						// must be in a held leaf.
						if !rayCovered(tree, &guard, world, req.Start, req.AimDir) {
							t.Fatalf("depth=%d iter=%d %s/%s: region %v does not cover aim ray from %v along %v",
								depth, iter, strat.Name(), kind, region, req.Start, req.AimDir)
						}
					}
					guard.Release()
				}
			}
		}
	}
}

// rayCovered samples the ray from start along dir until it exits the
// world and checks each sample's leaf is held.
func rayCovered(tree *areanode.Tree, g *Guard, world geom.AABB, start, dir geom.Vec3) bool {
	held := make(map[int32]bool, len(g.Leaves()))
	for _, ni := range g.Leaves() {
		held[ni] = true
	}
	diag := world.Size().Len()
	for t := 0.0; t <= diag; t += 8 {
		p := start.MA(t, dir)
		if !world.Contains(p) {
			return true // left the world: nothing further to simulate
		}
		if !held[tree.LeafContaining(p)] {
			return false
		}
	}
	return true
}

// TestDirectionalBoxDegeneratesSafely pins the documented fallback: a
// zero aim direction must lock the whole world, never a sliver.
func TestDirectionalBoxDegeneratesSafely(t *testing.T) {
	world := propWorld()
	got := DirectionalBox(world, world.Center(), geom.V(0, 0, 0), shortRangeMargin)
	if got != world {
		t.Fatalf("zero-direction directional box = %v, want whole world %v", got, world)
	}
	// A start outside the world pointing away never re-enters: the
	// fallback must again be the whole world, not an inverted box.
	out := geom.V(world.Max.X+100, world.Max.Y+100, world.Max.Z+100)
	got = DirectionalBox(world, out, geom.V(1, 0, 0).Norm(), shortRangeMargin)
	if !got.IsValid() {
		t.Fatalf("directional box from outside the world is invalid: %v", got)
	}
}

// TestOrderedAcquisitionNoDeadlock exercises the protocol's deadlock-
// freedom claim: leaves are always locked in ascending node order, so
// any number of threads acquiring arbitrarily overlapping regions (with
// interleaved whole-world locks for maximum contention) must make
// progress. Run under -race this also checks the provider's memory
// discipline. A deadlock shows up as the test timing out.
func TestOrderedAcquisitionNoDeadlock(t *testing.T) {
	world := propWorld()
	tree := areanode.NewTree(world, 5)
	provider := NewMutexProvider(tree.NumNodes())
	strategies := []Strategy{Conservative{}, Optimized{}}
	kinds := []Kind{KindShortRange, KindLongRangeDeferred, KindLongRangeImmediate}

	const goroutines = 8
	const iters = 400
	shared := make([]int64, tree.NumNodes()) // written under leaf locks
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rl := &RegionLocker{Tree: tree, Provider: provider}
			rng := rand.New(rand.NewSource(int64(7000 + id)))
			for i := 0; i < iters; i++ {
				req := randRequest(rng, world)
				strat := strategies[rng.Intn(len(strategies))]
				kind := kinds[rng.Intn(len(kinds))]
				region := strat.Region(world, req, kind)
				if i%17 == 0 {
					region = world // periodic whole-map lock, maximal overlap
				}
				var stats AcquireStats
				guard := rl.Acquire(region, &stats)
				if stats.LeafLockOps != len(guard.Leaves()) {
					t.Errorf("stats count %d != held leaves %d", stats.LeafLockOps, len(guard.Leaves()))
				}
				for _, ni := range guard.Leaves() {
					shared[ni]++ // race detector proves mutual exclusion
				}
				// Parent guards nest under held leaf locks without ordering
				// constraints (one interior node at a time).
				tree.CollectBox(region, rl.ParentGuard(&stats), func(*areanode.Item) bool { return true }, nil)
				guard.Release()
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, v := range shared {
		total += v
	}
	if total == 0 {
		t.Fatal("no leaf was ever locked; the rig is not exercising the protocol")
	}
}
