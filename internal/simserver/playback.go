package simserver

import (
	"fmt"
	"time"

	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/sim"
)

// Playback replays a recorded input stream (internal/replay) through the
// discrete-event engine. Items are driven strictly in log order with at
// most one in flight server-wide: a client's move is offered to its
// owning thread's port only when the move is the cursor item and the
// previous item has committed, so the DES commit order IS the log order
// — the same global-lockstep discipline the live replayer uses, which is
// what makes DES world evolution bit-comparable with every live engine's
// replay of the same log (DESIGN.md §11).
//
// Control items (ticks, connects, disconnects) arrive on thread 0 and
// execute inline in its request phase. That is safe precisely because of
// the lockstep gating: when a control item is offered, no move is
// mid-execution anywhere (the cursor only moved past the previous item
// at its commit), no reply phase is running (request and reply phases of
// a frame are barrier-separated, and frames are global), and the
// discrete-event machine runs one context at a time — so SpawnPlayer,
// RemovePlayer, and RunWorldFrame mutate the world exclusively.
type Playback struct {
	// Items is the recorded stream in commit order.
	Items []PlayItem
	// Clients is the dense-client-index space size: every PlayItem.Client
	// is < Clients.
	Clients int
}

// PlayKind discriminates playback items.
type PlayKind uint8

const (
	// PlayTick runs one world-physics update with the recorded dt.
	PlayTick PlayKind = iota + 1
	// PlayMove executes one recorded move command for one client.
	PlayMove
	// PlayConnect spawns a recorded client's player entity.
	PlayConnect
	// PlayDisconnect removes a recorded client's player entity.
	PlayDisconnect
)

// PlayItem is one recorded input.
type PlayItem struct {
	Kind PlayKind
	// Client is a dense index (assigned in first-connect order by the
	// log converter); meaningful for Move/Connect/Disconnect.
	Client int
	// DtNs is the world tick's duration (PlayTick).
	DtNs int64
	// Seq is the recorded wire sequence number (PlayMove), carried so a
	// re-recording of the playback reproduces the original log.
	Seq uint32
	// Cmd is the move command (PlayMove).
	Cmd protocol.MoveCmd
	// Name is the recorded join name (PlayConnect).
	Name string
}

// Virtual arrival pacing of playback items. The absolute values are
// arbitrary — lockstep gating, not arrival times, serializes the run —
// they only need to be strictly increasing (sources must be
// nondecreasing) and cheap to skip when the engine's clock runs ahead.
const (
	playBaseNs = 1_000_000 // first item arrives at 1ms
	playGapNs  = 50_000    // 50µs apart
	// playItemBudgetNs is the virtual-time allowance per item in the
	// run-end backstop. Lockstep gating means nearly every item pays a
	// full frame of reply/barrier overhead (~1.5ms virtual with 16
	// clients), far beyond the 50µs arrival gap, so the backstop must
	// scale with the stream length; the normal exit is the drained
	// cursor, long before the backstop.
	playItemBudgetNs = 10_000_000
	// playDrainSlackNs pads the run-end backstop past the last arrival
	// so short streams still get a generous drain window; Run fails
	// loudly if the cursor did not reach the end.
	playDrainSlackNs = 10_000_000_000
)

// playControl is the arrival payload of a non-move playback item.
type playControl struct{ idx int }

// playbackState is the engine's cursor over the playback stream.
type playbackState struct {
	pb       *Playback
	cursor   int
	inFlight bool
	byClient []*simClient // dense index → live client, nil when not connected
	err      error
}

func (ps *playbackState) at(i int) int64 { return playBaseNs + int64(i)*playGapNs }

// commit retires the in-flight item and exposes the next one.
func (ps *playbackState) commit() {
	ps.inFlight = false
	ps.cursor++
}

// drained reports that every item has committed (or the stream was
// failed): the run's normal end condition. Workers exit at the next
// frame boundary instead of idling out the virtual-time backstop.
func (ps *playbackState) drained() bool {
	return ps.cursor >= len(ps.pb.Items) && !ps.inFlight
}

func (ps *playbackState) fail(err error) {
	if ps.err == nil {
		ps.err = err
	}
	// Stop offering items; every port reads Infinity and the run drains
	// to its end, where Run reports the failure.
	ps.cursor = len(ps.pb.Items)
	ps.inFlight = false
}

// peek implements the playback half of clientPort.Peek: the cursor item
// is offered to exactly one thread — the move's owner, or thread 0 for
// control items — and only while nothing is in flight.
func (ps *playbackState) peek(thread int) int64 {
	if ps.inFlight || ps.cursor >= len(ps.pb.Items) {
		return sim.Infinity
	}
	it := &ps.pb.Items[ps.cursor]
	if it.Kind == PlayMove {
		c := ps.byClient[it.Client]
		if c != nil && c.thread == thread {
			return ps.at(ps.cursor)
		}
		return sim.Infinity
	}
	if thread == 0 {
		return ps.at(ps.cursor)
	}
	return sim.Infinity
}

// pop implements the playback half of clientPort.Pop. Only valid after
// peek returned a finite time for this thread; the item stays in flight
// (gating every port to Infinity) until its commit.
func (ps *playbackState) pop() sim.Arrival {
	it := &ps.pb.Items[ps.cursor]
	ps.inFlight = true
	if it.Kind == PlayMove {
		return sim.Arrival{
			At:      ps.at(ps.cursor),
			Payload: &simRequest{client: ps.byClient[it.Client], seq: int64(ps.cursor)},
		}
	}
	return sim.Arrival{At: ps.at(ps.cursor), Payload: &playControl{idx: ps.cursor}}
}

// moveSeq returns the wire sequence number the Record tap logs for a
// committed move: the recorded one under playback, the 1-based source
// sequence otherwise (matching the live lockstep drivers' convention).
func (e *engine) moveSeq(seq int64) uint32 {
	if e.pbs != nil {
		return e.pbs.pb.Items[seq].Seq
	}
	return uint32(seq + 1)
}

// playControl executes one non-move playback item inline in thread 0's
// request phase (see the Playback doc for why this is exclusive).
func (e *engine) playControl(p *sim.Proc, pc *playControl) {
	ps := e.pbs
	it := &ps.pb.Items[pc.idx]
	switch it.Kind {
	case PlayTick:
		// Exactly the recorded dt, converted with the same
		// Duration.Seconds() rounding the live engines use, so the world
		// integrates the identical float64 step.
		res := e.world.RunWorldFrame(time.Duration(it.DtNs).Seconds())
		p.Advance(e.model.WorldCost(res.Work))
		e.frameEvents += len(res.Events)
		if r := e.cfg.Record; r != nil {
			r.RecordTick(it.DtNs)
		}
	case PlayConnect:
		ent, err := e.world.SpawnPlayer()
		if err != nil {
			ps.fail(fmt.Errorf("playback item %d: connect: %w", pc.idx, err))
			return
		}
		thread := server.BlockAssign(it.Client, e.cfg.Threads, ps.pb.Clients)
		c := &simClient{idx: it.Client, thread: thread, ent: ent}
		e.clients = append(e.clients, c)
		e.byThread[thread] = append(e.byThread[thread], c)
		ps.byClient[it.Client] = c
		if r := e.cfg.Record; r != nil {
			r.RecordConnect(uint16(it.Client), int32(ent.ID), thread, it.Name)
		}
	case PlayDisconnect:
		c := ps.byClient[it.Client]
		if c == nil {
			ps.fail(fmt.Errorf("playback item %d: disconnect of unconnected client %d", pc.idx, it.Client))
			return
		}
		e.world.RemovePlayer(c.ent.ID)
		c.pending = false
		ps.byClient[it.Client] = nil
		e.byThread[c.thread] = removeClient(e.byThread[c.thread], c)
		e.clients = removeClient(e.clients, c)
		if r := e.cfg.Record; r != nil {
			r.RecordDisconnect(uint16(it.Client), server.DiscReasonClient)
		}
	default:
		ps.fail(fmt.Errorf("playback item %d: unhandled kind %d", pc.idx, it.Kind))
		return
	}
	ps.commit()
}

// removeClient splices c out of a client slice, preserving order.
func removeClient(cs []*simClient, c *simClient) []*simClient {
	for i, x := range cs {
		if x == c {
			return append(cs[:i], cs[i+1:]...)
		}
	}
	return cs
}

// handleArrival dispatches one port arrival: playback control items run
// inline, move requests go through the configured scheduler.
func (e *engine) handleArrival(p *sim.Proc, arr sim.Arrival) {
	if pc, ok := arr.Payload.(*playControl); ok {
		e.playControl(p, pc)
		return
	}
	req := arr.Payload.(*simRequest)
	if e.stealing() {
		e.poolRequest(p, req, arr.At)
	} else {
		e.processRequest(p, req, arr.At)
	}
}
