package simserver

import "qserve/internal/sim"

// Frame roles and phases mirror the live engine's frame controller
// (internal/server/framectl.go); here the monitor is plain data because
// exactly one simulated context executes at a time — blocking is
// p.Wait() and signalling is machine.Wake at the waker's virtual clock.
type frameRole int

const (
	roleMissed frameRole = iota
	roleMaster
	roleWorker
)

const (
	stIdle int = iota
	stWorld
	stRequest
	stReply
)

type simFrameCtl struct {
	e *engine

	state        int
	frame        uint64
	participants []int
	reqDone      int
	repDone      int

	waitingOpen  []*sim.Proc
	waitingReply []*sim.Proc
	waitingEnd   []*sim.Proc
	masterProc   *sim.Proc
	masterAsleep bool

	// globalLock serializes the global state buffer (§3.3).
	globalLock sim.Lock
}

// join mirrors frameCtl.join: first context in an idle machine masters
// the new frame; contexts arriving during the world update participate;
// later arrivals miss the frame.
func (fc *simFrameCtl) join(p *sim.Proc) frameRole {
	switch fc.state {
	case stIdle:
		fc.state = stWorld
		fc.participants = fc.participants[:0]
		fc.participants = append(fc.participants, p.ID)
		fc.reqDone, fc.repDone = 0, 0
		fc.masterProc = p
		fc.masterAsleep = false
		return roleMaster
	case stWorld:
		fc.participants = append(fc.participants, p.ID)
		return roleWorker
	default:
		return roleMissed
	}
}

func (fc *simFrameCtl) waitFrameEnd(p *sim.Proc) {
	if fc.state == stIdle {
		return
	}
	fc.waitingEnd = append(fc.waitingEnd, p)
	p.Wait()
}

func (fc *simFrameCtl) openRequests(p *sim.Proc) {
	fc.state = stRequest
	for _, w := range fc.waitingOpen {
		fc.e.machine.Wake(w, p.Now())
	}
	fc.waitingOpen = fc.waitingOpen[:0]
}

func (fc *simFrameCtl) waitRequestsOpen(p *sim.Proc) {
	if fc.state != stWorld {
		return
	}
	fc.waitingOpen = append(fc.waitingOpen, p)
	p.Wait()
}

func (fc *simFrameCtl) doneRequests(p *sim.Proc) {
	fc.reqDone++
	if fc.reqDone == len(fc.participants) {
		fc.state = stReply
		for _, w := range fc.waitingReply {
			fc.e.machine.Wake(w, p.Now())
		}
		fc.waitingReply = fc.waitingReply[:0]
		return
	}
	fc.waitingReply = append(fc.waitingReply, p)
	p.Wait()
}

func (fc *simFrameCtl) doneReply(p *sim.Proc) {
	fc.repDone++
	if fc.masterAsleep && fc.repDone == len(fc.participants) {
		fc.masterAsleep = false
		fc.e.machine.Wake(fc.masterProc, p.Now())
	}
}

func (fc *simFrameCtl) waitAllReplied(p *sim.Proc) {
	if fc.repDone == len(fc.participants) {
		return
	}
	fc.masterAsleep = true
	p.Wait()
}

func (fc *simFrameCtl) endFrame(p *sim.Proc) {
	fc.state = stIdle
	fc.frame++
	for _, w := range fc.waitingEnd {
		fc.e.machine.Wake(w, p.Now())
	}
	fc.waitingEnd = fc.waitingEnd[:0]
}
