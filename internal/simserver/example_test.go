package simserver_test

import (
	"fmt"

	"qserve/internal/locking"
	"qserve/internal/simserver"
)

// Example runs a small deterministic experiment on the simulated
// machine: 32 players on a 2-thread server for two virtual seconds.
func Example() {
	res, err := simserver.Run(simserver.Config{
		Players:   32,
		Threads:   2,
		Strategy:  locking.Optimized{},
		DurationS: 2,
		Seed:      1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("players=%d threads=%d strategy=%s\n", res.Players, res.Threads, res.Strategy)
	fmt.Printf("every request answered: %v\n", res.Resp.Replies == res.Requests)
	fmt.Printf("response under one client frame: %v\n", res.ResponseTimeMs() < 33)

	// Output:
	// players=32 threads=2 strategy=optimized
	// every request answered: true
	// response under one client frame: true
}
