// Package simserver runs the parallel (or sequential) game server on the
// simulated machine of package sim, reproducing the paper's experiments:
// the same phase orchestration, master election, and region-locking
// protocol as the live engine in package server, but with time charged by
// the cost model instead of wall clocks. Runs are deterministic, so every
// figure regenerates exactly.
package simserver

import (
	"fmt"

	"qserve/internal/balance"
	"qserve/internal/checkpoint"
	"qserve/internal/costmodel"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/worldmap"
)

// Config parameterizes one simulated run.
type Config struct {
	// World, when non-nil, is used directly instead of being constructed
	// from Map/MapConfig — the crash-recovery path feeds a restored world
	// (checkpoint.RestoreWorld) here so a DES run can resume a recovered
	// session. The caller is responsible for sizing its entity table.
	World *game.World
	// Map, when non-nil, is used directly (e.g. an arena from
	// worldmap.GenerateArena); otherwise MapConfig generates the world.
	Map *worldmap.Map
	// MapConfig generates the world; DefaultConfig when zero-valued.
	MapConfig worldmap.Config
	// Players is the number of automatic players.
	Players int
	// Threads is the server thread count. Ignored when Sequential.
	Threads int
	// Sequential selects the unmodified single-threaded server: one
	// context, no locking, no region bookkeeping (§4.1's baseline).
	Sequential bool
	// Machine is the simulated hardware; costmodel.PaperMachine by
	// default.
	Machine costmodel.MachineConfig
	// Strategy is the region-lock scheme; locking.Conservative by
	// default.
	Strategy locking.Strategy
	// Model prices operations; costmodel.Default by default.
	Model costmodel.Model
	// DurationS is the virtual run length in seconds. The paper runs two
	// minutes; ten seconds reproduces the same steady-state statistics.
	DurationS float64
	// ClientFrameMs is the client frame duration (30 fps ⇒ ~33ms).
	ClientFrameMs float64
	// AreanodeDepth overrides the tree depth (default 4 ⇒ 31 nodes).
	AreanodeDepth int
	// NetDelayNs is the one-way client↔server latency added to response
	// times (LAN-scale by default).
	NetDelayNs int64
	// Seed drives map generation fallback, client staggering, and bot
	// behaviour.
	Seed int64

	// Assign selects the client→thread policy. The paper uses static
	// block assignment; AssignRegion implements its §5.1 future-work
	// suggestion ("dynamically assigning threads to players taking into
	// account the region they are located may reduce contention").
	Assign AssignPolicy
	// ReassignEveryS is the dynamic policy's reassignment period in
	// virtual seconds (default 1).
	ReassignEveryS float64
	// BatchDelayNs implements the §5.2 future-work suggestion ("the
	// frame master thread can wait for a period of time before starting
	// the frame"): the master idles this long after its triggering
	// packet, letting more threads and requests join the frame.
	BatchDelayNs int64

	// LossProb drops each inbound move request with this probability —
	// the simulated counterpart of the live transport's fault injector,
	// for studying how throughput degrades on a lossy network. Lost
	// requests cost the server nothing (they vanish upstream) and the
	// affected client simply misses one reply.
	LossProb float64

	// TraceFrames, when positive, records per-thread phase spans for the
	// first N frames into Result.Trace — the raw material for a Figure-3
	// style execution timeline.
	TraceFrames int

	// Balance configures dynamic client→thread rebalancing at the frame
	// barrier (see internal/balance). Off by default; independent of
	// Assign, which only picks the initial placement.
	Balance balance.Policy
	// Cluster pins the first N players to the map's first room: they
	// steer back whenever they stray, so request density — and execute
	// cost — stays concentrated there. This is the skewed workload of the
	// balancing experiment ("all bots clustered in one room").
	Cluster int
	// Script, when set, replaces the bot policy: client idx's move number
	// seq (0-based) is whatever the script returns. Used by the
	// cross-engine conformance suite to drive identical inputs through
	// every engine.
	Script func(clientIdx int, seq int64) protocol.MoveCmd
	// MaxMoves, when positive, ends each client's request stream after
	// that many moves (the run still lasts DurationS so in-flight frames
	// drain). With Script this makes runs exactly reproducible move for
	// move.
	MaxMoves int64

	// IndexedSnapshots charges the reply phase as the frame-coherent
	// visibility index (one shared build per frame, per-client Considered
	// shrunk to the candidate set) instead of the paper server's naive
	// per-client full-table scan. Off by default: the paper-reproduction
	// figures model the published server, and — like batching, dynamic
	// region assignment, and load balancing — the improvement is an
	// opt-in ablation arm (`qbench -exp visibility`). Wire output is
	// byte-identical either way; only the charged costs differ. (The
	// *live* engines always use the index: identical bytes, strictly
	// less wall time.)
	IndexedSnapshots bool

	// Playback, when non-nil, replays a recorded input stream instead of
	// running bot clients: players spawn from recorded connects, moves
	// replay in log order with one item in flight server-wide, and world
	// physics runs exactly the recorded tick dts (see internal/replay
	// and DESIGN.md §11). Players/Script/MaxMoves/LossProb are ignored;
	// the run ends when the stream drains.
	Playback *Playback
	// Record, when non-nil, receives the run's deterministic input
	// stream (committed moves, world ticks, spawns, migrations) exactly
	// as the live engines' Config.Record does, so DES sessions can be
	// captured and replayed too.
	Record server.Recorder

	// Checkpoint, when non-nil, captures durable world checkpoints at the
	// frame barrier exactly as the live engines' server.Config.Checkpoint
	// does (DESIGN.md §12). The barrier-side serialization is charged to
	// the master's frame time via Model.CheckpointCost; the file write is
	// off-thread in the live engines and free here.
	Checkpoint *checkpoint.Writer

	// Stealing enables the conflict-aware work-stealing request
	// scheduler: workers pool their clients' move commands per frame,
	// drain their own pool first, then steal pending entries from other
	// threads' pools; a stolen (or pooled) request whose first region
	// acquisition is contended parks and the worker takes a
	// non-conflicting entry instead of queueing on the lock. Off by
	// default — the paper-reproduction figures model static execution,
	// and the lock-wall study (`qbench -exp lockwall`) is the A/B arm.
	// Per-client request order is preserved (see DESIGN.md §10), so
	// script-driven runs stay move-for-move comparable.
	Stealing bool
}

// PhaseSpan is one traced interval of a thread's execution.
type PhaseSpan struct {
	Thread  int
	Phase   string // "world", "requests", "reply", "wait-open", "barrier", "wait-end", "idle"
	StartNs int64
	EndNs   int64
}

// AssignPolicy selects how players map to server threads.
type AssignPolicy int

const (
	// AssignBlock is the paper's static block assignment (§3.1).
	AssignBlock AssignPolicy = iota
	// AssignRoundRobin interleaves players across threads statically.
	AssignRoundRobin
	// AssignRegion periodically repartitions players across threads by
	// their current map region (areanode leaf order), the paper's
	// proposed contention-reducing policy.
	AssignRegion
)

// String implements fmt.Stringer.
func (a AssignPolicy) String() string {
	switch a {
	case AssignBlock:
		return "block"
	case AssignRoundRobin:
		return "roundrobin"
	case AssignRegion:
		return "region-dynamic"
	default:
		return "unknown"
	}
}

func (c *Config) fill() error {
	if c.Players <= 0 && c.Playback == nil {
		return fmt.Errorf("simserver: need players")
	}
	if c.Sequential {
		c.Threads = 1
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Map == nil && c.MapConfig.Rows == 0 {
		c.MapConfig = worldmap.DefaultConfig()
		c.MapConfig.Seed = c.Seed + 1
	}
	if c.Machine.Cores == 0 {
		c.Machine = costmodel.PaperMachine()
	}
	if c.Strategy == nil {
		c.Strategy = locking.Conservative{}
	}
	if c.Model == (costmodel.Model{}) {
		c.Model = costmodel.Default()
	}
	if c.DurationS <= 0 {
		c.DurationS = 10
	}
	if c.ClientFrameMs <= 0 {
		c.ClientFrameMs = 33
	}
	if c.NetDelayNs <= 0 {
		c.NetDelayNs = 150_000 // 0.15ms one way: switched 100Mbit LAN
	}
	if c.ReassignEveryS <= 0 {
		c.ReassignEveryS = 1
	}
	if c.LossProb < 0 {
		c.LossProb = 0
	} else if c.LossProb > 1 {
		c.LossProb = 1
	}
	return nil
}

// LockAggregate summarizes lock-protocol activity across a run.
type LockAggregate struct {
	Moves          int64 // requests executed
	LeafLockOps    int64 // leaf acquisitions including re-locks
	ParentLockOps  int64
	DistinctLeaves int64 // sum over requests of distinct leaves locked
}

// AvgDistinctLeavesPerRequest returns the Fig. 7(b) metric.
func (l *LockAggregate) AvgDistinctLeavesPerRequest() float64 {
	if l.Moves == 0 {
		return 0
	}
	return float64(l.DistinctLeaves) / float64(l.Moves)
}

// RelockFraction returns the share of leaf lock operations that re-locked
// an already-counted leaf within one request (§5.1: "At 31 and 63
// areanodes, 40% and 30% of leaves are relocked").
func (l *LockAggregate) RelockFraction() float64 {
	if l.LeafLockOps == 0 {
		return 0
	}
	return 1 - float64(l.DistinctLeaves)/float64(l.LeafLockOps)
}

// Result is one simulated run's complete measurement set.
type Result struct {
	Players    int
	Threads    int
	Sequential bool
	Strategy   string
	NumLeaves  int
	DurationS  float64

	PerThread []metrics.Breakdown
	Avg       metrics.Breakdown
	Trace     []PhaseSpan
	FrameLog  *metrics.FrameLog
	Resp      metrics.ResponseStats
	Locks     LockAggregate

	Frames   uint64
	Requests int64
	// LostRequests counts requests dropped by the simulated lossy
	// network (Config.LossProb).
	LostRequests int64
	// Migrations counts balancer-driven client→thread moves.
	Migrations int64

	// World is the final game state, exposed so the conformance suite can
	// compare end-of-run entity tables across engines.
	World *game.World
}

// ResponseRate returns replies/sec — the paper's primary throughput
// metric.
func (r *Result) ResponseRate() float64 { return r.Resp.Rate() }

// ResponseTimeMs returns the mean request→reply latency in ms.
func (r *Result) ResponseTimeMs() float64 { return r.Resp.MeanLatencyMs() }
