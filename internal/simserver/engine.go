package simserver

import (
	"fmt"
	"math/bits"
	"math/rand"

	"qserve/internal/balance"
	"qserve/internal/botclient"
	"qserve/internal/checkpoint"
	"qserve/internal/costmodel"
	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/geom"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/sim"
	"qserve/internal/worldmap"
)

// selectTimeoutNs is the virtual select timeout; like the live engine's,
// it only bounds how often an idle thread re-checks for shutdown.
const selectTimeoutNs = 5_000_000

// minWorldTickNs rate-limits the world-physics phase, as QuakeWorld's
// sv_mintic does: a frame whose master finds less than this much game
// time elapsed skips the physics update (the P stage costs nothing),
// keeping world processing under 5% of execution time at every player
// count, as the paper's baseline measurements report.
const minWorldTickNs = 12_000_000

// simClient is one automatic player: its entity, owning thread, pending
// reply state, and bot policy. Clients are not simulated contexts — their
// compute happens on client machines the server never sees — so they
// exist only as arrival streams plus decision functions.
type simClient struct {
	idx    int
	thread int
	ent    *entity.Entity
	nav    *botclient.Navigator
	rng    *rand.Rand
	src    *sim.PeriodicSource

	pending     bool
	lastArrival int64
	backlog     int // queued broadcast events awaiting the next reply
	replied     uint64
	baseline    server.Baseline // delta baseline, advanced by the pooled reply path

	// loadNs is the decayed execute-phase cost the balancer equalizes;
	// home/pinned implement the clustered skewed workload (Config.Cluster).
	loadNs int64
	home   geom.Vec3
	pinned bool

	// Work-stealing state (Config.Stealing). claimed marks an entry of
	// this client mid-execution, so pool scans skip the client and
	// per-client order is preserved; lastMask is the leaf mask of the
	// client's last committed move, the steal scans' conflict hint.
	claimed  bool
	lastMask uint64
}

type simRequest struct {
	client *simClient
	seq    int64
}

// worker is one simulated server thread's bookkeeping.
type simWorker struct {
	frameReqs    int
	frameMask    uint64
	frameLockOps int
	frameExecNs  int64
	// poolIdx stamps pooled entries with their arrival order under the
	// stealing scheduler (commit-order bookkeeping; reset per frame).
	poolIdx int
}

type engine struct {
	cfg   Config
	world *game.World
	model *costmodel.Model

	machine   *sim.Sim
	ports     []*clientPort
	clients   []*simClient
	byThread  [][]*simClient
	nodeLocks []sim.Lock
	workers   []simWorker
	bds       []metrics.Breakdown
	replies   []server.ReplyScratch // per-thread pooled reply pipelines

	fc simFrameCtl

	// Work-stealing pools (Config.Stealing): per-thread entry queues,
	// per-thread counts of pooled-but-uncommitted entries, and the leaf
	// mask each thread is currently executing in (the steal scans'
	// conflict-avoidance signal). Nil when stealing is off.
	stealQ      []desQueue
	outstanding []int
	activeMask  []uint64

	// Frame-coherent visibility index, built once per frame by the first
	// thread to enter its reply phase (procs run one at a time, so the
	// frame stamp needs no synchronization). Only charged when
	// cfg.IndexedSnapshots opts in (the visibility A/B study).
	vis      game.VisIndex
	visFrame uint64

	// pbs is non-nil when this run replays a recorded stream
	// (Config.Playback); it gates the ports to one in-flight item.
	pbs *playbackState

	frameEvents  int
	frameLog     *metrics.FrameLog
	resp         metrics.ResponseStats
	locks        LockAggregate
	requests     int64
	lost         int64
	lossRng      *rand.Rand
	lastWorldNs  int64
	lastReassign int64
	endNs        int64
	trace        []PhaseSpan

	// Dynamic load balancing (nil when cfg.Balance is off); touched only
	// from masterCleanup, which one context runs at a time.
	bal        *balance.Balancer
	migrations int64
	balLoads   []int64
	balThreads []int
}

// span records a traced phase interval while tracing is active.
func (e *engine) span(p *sim.Proc, phase string, startNs int64) {
	if e.cfg.TraceFrames <= 0 || e.fc.frame >= uint64(e.cfg.TraceFrames) {
		return
	}
	if p.Now() == startNs {
		return
	}
	e.trace = append(e.trace, PhaseSpan{
		Thread: p.ID, Phase: phase, StartNs: startNs, EndNs: p.Now(),
	})
}

// clientPort is one server thread's receive queue: the merged request
// streams of the clients *currently* assigned to the thread. Membership
// is consulted on every operation so the dynamic assignment policy can
// migrate clients between frames; pending requests follow the client to
// its new thread (the live protocol would re-home the socket on
// reassignment).
type clientPort struct {
	e      *engine
	thread int
}

// Peek implements sim.Source.
func (p *clientPort) Peek() int64 {
	if ps := p.e.pbs; ps != nil {
		return ps.peek(p.thread)
	}
	best := int64(sim.Infinity)
	for _, c := range p.e.byThread[p.thread] {
		if t := c.src.Peek(); t < best {
			best = t
		}
	}
	return best
}

// Pop implements sim.Source.
func (p *clientPort) Pop() sim.Arrival {
	if ps := p.e.pbs; ps != nil {
		return ps.pop()
	}
	best := int64(sim.Infinity)
	var pick *simClient
	for _, c := range p.e.byThread[p.thread] {
		if t := c.src.Peek(); t < best {
			best = t
			pick = c
		}
	}
	return pick.src.Pop()
}

// Run executes one simulated experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	world := cfg.World
	if world == nil {
		m := cfg.Map
		if m == nil {
			m = worldmap.MustGenerate(cfg.MapConfig)
		}
		maxEnts := len(m.Items) + len(m.Teleporters) + cfg.Players*4 + 64
		var err error
		world, err = game.NewWorld(game.Config{
			Map:           m,
			AreanodeDepth: cfg.AreanodeDepth,
			MaxEntities:   maxEnts,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
	}

	smt := 1.0
	cores := cfg.Threads
	if !cfg.Sequential && cfg.Threads > cfg.Machine.Cores {
		cores = cfg.Machine.Cores
		smt = cfg.Machine.SMTPenalty
	}
	memBeta := 0.0
	if !cfg.Sequential && cfg.Threads > 1 {
		memBeta = cfg.Machine.MemContention
	}
	e := &engine{
		cfg:      cfg,
		world:    world,
		model:    &cfg.Model,
		machine:  sim.New(sim.Config{Procs: cfg.Threads, Cores: cores, SMTPenalty: smt, MemBeta: memBeta}),
		workers:  make([]simWorker, cfg.Threads),
		bds:      make([]metrics.Breakdown, cfg.Threads),
		replies:  make([]server.ReplyScratch, cfg.Threads),
		frameLog: metrics.NewFrameLog(world.Tree.NumLeaves()),
		endNs:    int64(cfg.DurationS * 1e9),
	}
	e.nodeLocks = make([]sim.Lock, world.Tree.NumNodes())
	e.fc.e = e
	if cfg.Balance.Enabled && !cfg.Sequential && cfg.Threads > 1 {
		e.bal = balance.New(cfg.Balance)
	}
	if cfg.LossProb > 0 {
		e.lossRng = rand.New(rand.NewSource(cfg.Seed*7919 + 11))
	}
	if e.stealing() {
		e.stealQ = make([]desQueue, cfg.Threads)
		e.outstanding = make([]int, cfg.Threads)
		e.activeMask = make([]uint64, cfg.Threads)
	}
	if cfg.Playback != nil {
		e.pbs = &playbackState{
			pb:       cfg.Playback,
			byClient: make([]*simClient, cfg.Playback.Clients),
		}
		// The run lasts exactly as long as the stream needs — workers
		// exit when the cursor drains — with a generous scaled backstop
		// replacing DurationS so a stalled stream still terminates.
		e.endNs = e.pbs.at(len(cfg.Playback.Items)) +
			int64(len(cfg.Playback.Items))*playItemBudgetNs + playDrainSlackNs
	}

	if err := e.buildClients(); err != nil {
		return nil, err
	}
	if err := e.machine.Run(e.workerBody); err != nil {
		return nil, fmt.Errorf("simserver: %w", err)
	}
	if e.pbs != nil {
		if e.pbs.err != nil {
			return nil, fmt.Errorf("simserver: %w", e.pbs.err)
		}
		if e.pbs.cursor != len(cfg.Playback.Items) {
			return nil, fmt.Errorf("simserver: playback stalled at item %d of %d",
				e.pbs.cursor, len(cfg.Playback.Items))
		}
	}

	res := &Result{
		Trace:        e.trace,
		Players:      cfg.Players,
		Threads:      cfg.Threads,
		Sequential:   cfg.Sequential,
		Strategy:     cfg.Strategy.Name(),
		NumLeaves:    world.Tree.NumLeaves(),
		DurationS:    cfg.DurationS,
		PerThread:    e.bds,
		Avg:          metrics.MergeThreads(e.bds),
		FrameLog:     e.frameLog,
		Resp:         e.resp,
		Locks:        e.locks,
		Frames:       e.fc.frame,
		Requests:     e.requests,
		LostRequests: e.lost,
		Migrations:   e.migrations,
		World:        world,
	}
	res.Resp.DurationS = cfg.DurationS
	if cfg.Sequential {
		res.Strategy = "none"
	}
	return res, nil
}

// buildClients spawns the player entities and their request streams,
// statically block-assigned to threads with staggered start times
// ("clients send requests in an asynchronous manner").
func (e *engine) buildClients() error {
	cfg := e.cfg
	e.byThread = make([][]*simClient, cfg.Threads)
	e.ports = make([]*clientPort, cfg.Threads)
	for t := range e.ports {
		e.ports[t] = &clientPort{e: e, thread: t}
	}
	if e.pbs != nil {
		// Playback spawns clients from recorded connect items, in log
		// order, so entity IDs repeat the recorded session's.
		return nil
	}
	periodNs := int64(cfg.ClientFrameMs * 1e6)
	stagger := rand.New(rand.NewSource(cfg.Seed + 7))
	for i := 0; i < cfg.Players; i++ {
		ent, err := e.world.SpawnPlayer()
		if err != nil {
			return err
		}
		thread := server.BlockAssign(i, cfg.Threads, cfg.Players)
		if cfg.Assign == AssignRoundRobin {
			thread = server.RoundRobinAssign(i, cfg.Threads, cfg.Players)
		}
		c := &simClient{
			idx:    i,
			thread: thread,
			ent:    ent,
			nav:    botclient.NewNavigator(e.world.Map, rand.New(rand.NewSource(cfg.Seed+int64(i)*31+11))),
			rng:    rand.New(rand.NewSource(cfg.Seed + int64(i)*17 + 3)),
		}
		if i < cfg.Cluster && len(e.world.Map.Rooms) > 0 {
			c.pinned = true
			c.home = e.world.Map.Rooms[0].Bounds.Center()
		}
		start := stagger.Int63n(periodNs) + e.cfg.NetDelayNs
		end := e.endNs
		if cfg.MaxMoves > 0 {
			if lim := start + cfg.MaxMoves*periodNs; lim < end {
				end = lim
			}
		}
		c.src = &sim.PeriodicSource{
			Start:  start,
			Period: periodNs,
			End:    end,
			Make:   func(seq int64) any { return &simRequest{client: c, seq: seq} },
		}
		e.clients = append(e.clients, c)
		e.byThread[c.thread] = append(e.byThread[c.thread], c)
		if r := cfg.Record; r != nil {
			r.RecordConnect(uint16(i), int32(ent.ID), thread, fmt.Sprintf("sim-%d", i))
		}
	}
	return nil
}

// reassignByRegion implements the dynamic policy: order the players by
// their current areanode leaf (a space-filling walk of the tree) and
// hand each thread one contiguous chunk, so a thread's players cluster
// spatially and its region locks overlap less with other threads'.
func (e *engine) reassignByRegion() {
	order := make([]*simClient, len(e.clients))
	copy(order, e.clients)
	leafOf := func(c *simClient) int32 {
		return e.world.Tree.Node(e.world.Tree.LeafContaining(c.ent.Origin)).LeafOrdinal
	}
	sortClients(order, leafOf)
	for t := range e.byThread {
		e.byThread[t] = e.byThread[t][:0]
	}
	n := len(order)
	threads := len(e.byThread)
	for i, c := range order {
		t := i * threads / n
		c.thread = t
		e.byThread[t] = append(e.byThread[t], c)
	}
}

// sortClients orders clients by (leaf, idx) with a simple insertion sort
// (the slice is small and nearly sorted between epochs).
func sortClients(cs []*simClient, leafOf func(*simClient) int32) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			lj, lp := leafOf(cs[j]), leafOf(cs[j-1])
			if lj > lp || (lj == lp && cs[j].idx >= cs[j-1].idx) {
				break
			}
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// workerBody is Figure 3 on a simulated context.
func (e *engine) workerBody(p *sim.Proc) {
	bd := &e.bds[p.ID]
	for p.Now() < e.endNs {
		if e.pbs != nil && e.pbs.drained() {
			break
		}
		t0 := p.Now()
		arr, ok := p.Recv(e.ports[p.ID], selectTimeoutNs)
		bd.Charge(metrics.CompIdle, p.Now()-t0)
		e.span(p, "idle", t0)
		if !ok {
			continue
		}
		e.advance(p, e.model.SelectReturn, metrics.CompRecv)

		p.Sync()
		role := e.fc.join(p)
		for role == roleMissed {
			t0 = p.Now()
			e.fc.waitFrameEnd(p)
			bd.Charge(metrics.CompInterWait, p.Now()-t0)
			e.span(p, "wait-end", t0)
			p.Sync()
			role = e.fc.join(p)
		}

		if role == roleMaster {
			if d := e.cfg.BatchDelayNs; d > 0 {
				// Request batching (§5.2 future work): hold the frame
				// open so late threads and requests can join it. The
				// deliberate delay is idle time, not synchronization
				// wait — the master chooses to sit, as in select.
				t0 = p.Now()
				p.AdvanceTo(p.Now() + d)
				bd.Charge(metrics.CompIdle, p.Now()-t0)
			}
			t0 = p.Now()
			e.runWorld(p)
			bd.Charge(metrics.CompWorld, p.Now()-t0)
			e.span(p, "world", t0)
			e.fc.openRequests(p)
		} else {
			t0 = p.Now()
			e.fc.waitRequestsOpen(p)
			bd.Charge(metrics.CompInterWait, p.Now()-t0)
			e.span(p, "wait-open", t0)
		}

		w := &e.workers[p.ID]
		w.frameReqs, w.frameMask, w.frameLockOps, w.frameExecNs = 0, 0, 0, 0
		w.poolIdx = 0
		t0 = p.Now()
		if e.stealing() {
			// Pooled scheduler: receive everything queued, execute with
			// stealing, then re-poll — arrivals that landed while the
			// pool drained join this frame, exactly as the inline path's
			// drain loop admits them. (handleArrival pools moves and runs
			// playback control items inline.)
			e.handleArrival(p, arr)
			for {
				for {
					a, ok := p.Poll(e.ports[p.ID])
					if !ok {
						break
					}
					e.handleArrival(p, a)
				}
				e.runStealPhase(p)
				a, ok := p.Poll(e.ports[p.ID])
				if !ok {
					break
				}
				e.handleArrival(p, a)
			}
		} else {
			e.handleArrival(p, arr)
			for {
				a, ok := p.Poll(e.ports[p.ID])
				if !ok {
					break
				}
				e.handleArrival(p, a)
			}
		}
		e.span(p, "requests", t0)

		t0 = p.Now()
		e.fc.doneRequests(p)
		bd.Charge(metrics.CompIntraWait, p.Now()-t0)
		e.span(p, "barrier", t0)

		t0 = p.Now()
		e.sendReplies(p)
		bd.Charge(metrics.CompReply, p.Now()-t0)
		e.span(p, "reply", t0)
		e.fc.doneReply(p)

		if role == roleMaster {
			t0 = p.Now()
			e.fc.waitAllReplied(p)
			bd.Charge(metrics.CompInterWait, p.Now()-t0)
			e.masterCleanup(p)
			e.fc.endFrame(p)
		}
	}
}

// advance charges virtual time to a breakdown component; the charged
// amount includes any SMT inflation.
func (e *engine) advance(p *sim.Proc, ns int64, c metrics.Component) {
	t0 := p.Now()
	p.Advance(ns)
	e.bds[p.ID].Charge(c, p.Now()-t0)
}

// runWorld executes the master's world-physics phase: the per-frame
// preamble always runs (it is the window during which other threads can
// join the frame), while the physics tick is rate-limited by
// minWorldTickNs.
func (e *engine) runWorld(p *sim.Proc) {
	p.Advance(e.model.FramePreamble(e.world.Ents.Active()))
	if e.pbs != nil {
		// Playback: world physics is driven exclusively by recorded tick
		// items (playControl), never by elapsed virtual time — the same
		// substitution the live replayer makes through Config.Clock.
		return
	}
	elapsed := p.Now() - e.lastWorldNs
	if e.lastWorldNs != 0 && elapsed < minWorldTickNs {
		return
	}
	e.lastWorldNs = p.Now()
	res := e.world.RunWorldFrame(float64(elapsed) / 1e9)
	p.Advance(e.model.WorldCost(res.Work))
	e.frameEvents += len(res.Events)
	if r := e.cfg.Record; r != nil {
		r.RecordTick(elapsed)
	}
}

// processRequest executes one move command.
func (e *engine) processRequest(p *sim.Proc, req *simRequest, arrivedAt int64) {
	if e.lossRng != nil && e.pbs == nil && e.lossRng.Float64() < e.cfg.LossProb {
		// Lost upstream of the server: no receive cost, no execution; the
		// client misses one reply. (Procs run one at a time in the
		// discrete-event machine, so one engine-level stream stays
		// deterministic and leaves the bots' decision rngs untouched.)
		e.lost++
		return
	}
	e.requests++
	e.advance(p, e.model.RecvPacket, metrics.CompRecv)

	c := req.client
	cmd := c.decide(e, req.seq)

	bd := &e.bds[p.ID]
	execBefore := bd.Ns[metrics.CompExec]

	var stats locking.AcquireStats
	var mask uint64
	var res game.MoveResult
	if e.cfg.Sequential {
		t0 := p.Now()
		res = e.world.ExecuteMove(c.ent, &cmd, &game.LockContext{})
		p.Advance(e.model.MoveCost(res.Work))
		e.bds[p.ID].Charge(metrics.CompExec, p.Now()-t0)
	} else {
		held := int64(0)
		lc := game.LockContext{
			Locker: &locking.RegionLocker{
				Tree:     e.world.Tree,
				Provider: &simProvider{e: e, p: p},
			},
			Strategy: e.cfg.Strategy,
			Stats:    &stats,
			LeafMask: &mask,
			OnWork: func(wk game.Work) {
				ns := e.model.WorkCost(wk)
				held += ns
				e.advance(p, ns, metrics.CompExec)
			},
		}
		res = e.world.ExecuteMove(c.ent, &cmd, &lc)
		total := e.model.MoveCost(res.Work) + e.model.RegionOverhead(res.Work)
		if rest := total - held; rest > 0 {
			e.advance(p, rest, metrics.CompExec)
		}
	}

	// Per-client execute cost (this move's CompExec charge, which excludes
	// lock wait) feeds the balancer; measured before the global-buffer
	// append so broadcast pressure is not attributed to the mover.
	execDelta := bd.Ns[metrics.CompExec] - execBefore
	c.loadNs += execDelta
	bd.ExecCmds++

	if n := len(res.Events); n > 0 {
		// Global state buffer: a single lock serializes all accesses.
		e.globalBufferAppend(p, n)
	}

	c.pending = true
	c.lastArrival = arrivedAt
	if r := e.cfg.Record; r != nil {
		r.RecordMove(uint16(c.idx), e.moveSeq(req.seq), &cmd)
	}
	if e.pbs != nil {
		e.pbs.commit()
	}

	w := &e.workers[p.ID]
	w.frameExecNs += execDelta
	w.frameReqs++
	w.frameMask |= mask
	w.frameLockOps += stats.LeafLockOps

	e.locks.Moves++
	e.locks.LeafLockOps += int64(stats.LeafLockOps)
	e.locks.ParentLockOps += int64(stats.ParentLockOps)
	e.locks.DistinctLeaves += int64(bits.OnesCount64(mask))
}

func (e *engine) globalBufferAppend(p *sim.Proc, n int) {
	if !e.cfg.Sequential {
		e.fc.globalLock.Lock(p)
	}
	e.advance(p, e.model.GlobalBuffer*int64(n), metrics.CompExec)
	e.frameEvents += n
	if !e.cfg.Sequential {
		e.fc.globalLock.Unlock(p)
	}
}

// sendReplies forms replies for this thread's clients that requested
// during the frame. Snapshots run through the same pooled pipeline as
// the live engine, so the simulated breakdowns report real wire bytes
// and buffer growths next to virtual time. Events are modeled only as
// counts (no payloads), so the event lists are nil.
func (e *engine) sendReplies(p *sim.Proc) {
	rs := &e.replies[p.ID]
	bd := &e.bds[p.ID]

	// Build the frame's shared visibility index on the first thread to
	// reach its reply phase; later threads reuse it for free, mirroring
	// the live parallel engine's cooperative build. The builder pays the
	// once-per-frame cost from the model.
	var vi *game.VisIndex
	if e.cfg.IndexedSnapshots {
		if e.visFrame != e.fc.frame+1 {
			e.vis.Build(e.world)
			e.visFrame = e.fc.frame + 1
			build := e.model.SnapshotBuildCost(e.vis.Len())
			p.Advance(build)
			bd.SnapBuildNs += build
		}
		vi = &e.vis
	}

	for _, c := range e.byThread[p.ID] {
		if !c.pending {
			continue
		}
		c.pending = false
		data, st := rs.FormSnapshot(e.world, vi, c.ent, &c.baseline,
			uint32(e.fc.frame), 0, uint32(e.world.Time*1000), nil, nil, 0)
		events := c.backlog + e.frameEvents
		c.backlog = 0
		p.Advance(e.model.SnapshotCost(st.Work, events))
		bd.SnapMergeNs += int64(st.Work.Considered)*e.model.SnapConsider +
			int64(st.Work.Visible)*e.model.SnapVisible
		bd.ReplyBytes += int64(len(data))
		bd.ReplyDatagrams++
		bd.ReplyAllocs += int64(st.Allocs)
		c.replied = e.fc.frame + 1

		latNs := (p.Now() - c.lastArrival) + 2*e.cfg.NetDelayNs
		e.resp.Replies++
		e.resp.Record(float64(latNs) / 1e9)
	}
}

// masterCleanup distributes leftover events, logs the frame, and clears
// the global state buffer.
func (e *engine) masterCleanup(p *sim.Proc) {
	if e.frameEvents > 0 {
		for _, c := range e.clients {
			if c.replied != e.fc.frame+1 {
				c.backlog += e.frameEvents
			}
		}
		e.advance(p, e.model.GlobalBuffer, metrics.CompWorld)
	}
	e.frameEvents = 0

	// Dynamic assignment epoch (exclusive: all participants are past
	// their reply phases and non-participants never touch byThread).
	if e.cfg.Assign == AssignRegion && p.Now()-e.lastReassign >= int64(e.cfg.ReassignEveryS*1e9) {
		e.lastReassign = p.Now()
		e.reassignByRegion()
	}

	rec := metrics.FrameRecord{
		Frame:             e.fc.frame,
		Participants:      len(e.fc.participants),
		RequestsByThread:  make([]int, len(e.workers)),
		LeafLocksByThread: make([]uint64, len(e.workers)),
		ExecNsByThread:    make([]int64, len(e.workers)),
	}
	for _, wid := range e.fc.participants {
		rec.RequestsByThread[wid] = e.workers[wid].frameReqs
		rec.LeafLocksByThread[wid] = e.workers[wid].frameMask
		rec.LeafLockOps += e.workers[wid].frameLockOps
		rec.ExecNsByThread[wid] = e.workers[wid].frameExecNs
	}
	if e.bal != nil {
		rec.Migrations = e.rebalance()
	}
	e.frameLog.Append(rec)
	if r := e.cfg.Record; r != nil {
		r.RecordFrameEnd(e.fc.frame)
	}
	if wr := e.cfg.Checkpoint; wr != nil && wr.Due(e.fc.frame) {
		e.captureCheckpoint(p, wr)
	}
}

// captureCheckpoint mirrors the live engines' barrier capture on the
// simulated machine: the same Begin/AddClient/Commit cycle against the
// frame-stable world, after the frame's record taps so the redo-log cut
// names exactly the state the snapshot contains, with the serialization
// charged to the master's frame time by the cost model. Clients are
// visited in idx order, satisfying the format's ID-ascending rule.
func (e *engine) captureCheckpoint(p *sim.Proc, wr *checkpoint.Writer) {
	bd := &e.bds[p.ID]
	items := 0
	if ri, ok := e.cfg.Record.(interface{ Items() int }); ok {
		items = ri.Items()
	}
	meta := checkpoint.Meta{
		Frame:        e.fc.frame,
		RecItems:     uint64(items),
		JoinIdx:      len(e.clients),
		NextClientID: uint16(len(e.clients)),
	}
	if !wr.Begin(e.world, meta) {
		bd.CheckpointSkips++
		return
	}
	for _, c := range e.clients {
		wr.AddClient(checkpoint.ClientRec{
			ID:           uint16(c.idx),
			EntID:        int32(c.ent.ID),
			Thread:       uint8(c.thread),
			RepliedFrame: uint32(c.replied),
			LoadNs:       c.loadNs,
			BaselineTag:  c.baseline.Tag(),
			Baseline:     c.baseline.States(),
		})
	}
	st := wr.Commit()
	t0 := p.Now()
	p.Advance(e.model.CheckpointCost(st.Entities, st.Bytes))
	bd.Checkpoints++
	bd.CheckpointNs += p.Now() - t0
	bd.CheckpointBytes += int64(st.Bytes)
	if st.Full {
		bd.CheckpointFullBytes += int64(st.Bytes)
	} else {
		bd.CheckpointDeltaBytes += int64(st.Bytes)
	}
}

// rebalance mirrors the live engine's barrier rebalance: it runs in
// masterCleanup, where every participant is past its reply phase and no
// other context executes, so reassigning threads and rebuilding the
// per-thread membership lists is plain data manipulation. Pending
// requests follow the client through clientPort's dynamic membership
// scan, and the reply baseline travels with the simClient untouched.
func (e *engine) rebalance() int {
	loads, threads := e.balLoads[:0], e.balThreads[:0]
	for _, c := range e.clients { // idx order: deterministic plans
		loads = append(loads, c.loadNs)
		threads = append(threads, c.thread)
	}
	e.balLoads, e.balThreads = loads, threads

	migs := e.bal.Plan(loads, threads, len(e.workers))
	for _, mg := range migs {
		e.clients[mg.Client].thread = mg.To
		if r := e.cfg.Record; r != nil {
			r.RecordMigrate(uint16(e.clients[mg.Client].idx), mg.To)
		}
	}
	if len(migs) > 0 {
		for t := range e.byThread {
			e.byThread[t] = e.byThread[t][:0]
		}
		for _, c := range e.clients {
			e.byThread[c.thread] = append(e.byThread[c.thread], c)
		}
	}
	for _, c := range e.clients {
		c.loadNs >>= 1
	}
	e.migrations += int64(len(migs))
	return len(migs)
}

// decide produces the client's next move command: the conformance
// script when one is configured, otherwise the bot policy.
func (c *simClient) decide(e *engine, seq int64) protocol.MoveCmd {
	if e.pbs != nil {
		// seq is the playback cursor index of this move item.
		return e.pbs.pb.Items[seq].Cmd
	}
	if e.cfg.Script != nil {
		return e.cfg.Script(c.idx, seq)
	}
	var cmd protocol.MoveCmd
	cmd.Msec = uint8(e.cfg.ClientFrameMs)
	cmd.Forward = 320

	pos := c.ent.Origin
	target := c.nav.Steer(pos)
	wishYaw := geom.VecToAngles(target.Sub(pos)).Y

	// Nearest living enemy within engagement range.
	var nearest *entity.Entity
	bestD := 700.0 * 700.0
	for _, other := range e.clients {
		oe := other.ent
		if oe == c.ent || oe.Health <= 0 {
			continue
		}
		if d := pos.DistSq(oe.Origin); d < bestD {
			bestD = d
			nearest = oe
		}
	}
	if nearest != nil {
		wishYaw = geom.VecToAngles(nearest.Origin.Sub(pos)).Y
		if c.rng.Float64() < 0.15 {
			cmd.Buttons |= protocol.BtnFire
		}
		if c.rng.Float64() < 0.3 {
			cmd.Impulse = uint8(1 + c.rng.Intn(2))
		}
	}
	// Clustered workload: pinned clients head back to their home room
	// whenever they wander out of it, overriding navigation and combat
	// steering so the crowd never disperses.
	if c.pinned {
		if d := c.home.Sub(pos).Flat(); d.Len() > 96 {
			wishYaw = geom.VecToAngles(d).Y
		}
	}
	cmd.Yaw = protocol.AngleToWire(wishYaw)
	if c.rng.Float64() < 0.02 {
		cmd.Buttons |= protocol.BtnJump
	}
	return cmd
}

// simProvider adapts the virtual locks to the locking.Provider interface,
// charging queueing delay and acquisition overhead to the lock component
// with leaf/parent attribution.
type simProvider struct {
	e *engine
	p *sim.Proc
}

func (sp *simProvider) LockNode(n int32) {
	leaf := sp.e.world.Tree.Node(n).IsLeaf()
	wait := sp.e.nodeLocks[n].Lock(sp.p)
	sp.e.bds[sp.p.ID].ChargeLock(wait, leaf)
	t0 := sp.p.Now()
	sp.p.Advance(sp.e.model.LockAcquire)
	sp.e.bds[sp.p.ID].ChargeLock(sp.p.Now()-t0, leaf)
}

func (sp *simProvider) UnlockNode(n int32) {
	sp.e.nodeLocks[n].Unlock(sp.p)
}
