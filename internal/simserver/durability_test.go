package simserver

import (
	"testing"

	"qserve/internal/checkpoint"
	"qserve/internal/locking"
	"qserve/internal/worldmap"
)

// TestCheckpointOverheadDES is the CI gate on checkpoint cost at the
// default cadence: on the simulated machine — deterministic virtual
// time, so the gate cannot flake on a loaded CI host — the barrier-side
// capture charge must stay under 2% of the 33ms frame budget, and the
// full/delta rotation must actually engage. The companion live-side
// gate is TestWriterCaptureAllocs (zero allocations on the same path).
func TestCheckpointOverheadDES(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	wr, err := checkpoint.NewWriter(checkpoint.Config{
		Dir:        t.TempDir(),
		WorldSeed:  1,
		Map:        m,
		Interval:   checkpoint.DefaultInterval,
		DeltaEvery: checkpoint.DefaultDeltaEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Map:        m,
		Players:    64,
		Threads:    4,
		Strategy:   locking.Optimized{},
		DurationS:  10,
		Seed:       1,
		Checkpoint: wr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}

	var captures, ckNs, fullBytes, deltaBytes, skips int64
	for _, bd := range res.PerThread {
		captures += bd.Checkpoints
		ckNs += bd.CheckpointNs
		fullBytes += bd.CheckpointFullBytes
		deltaBytes += bd.CheckpointDeltaBytes
		skips += bd.CheckpointSkips
	}
	if captures < 2 {
		t.Fatalf("default cadence produced only %d captures in %d frames", captures, res.Frames)
	}
	if fullBytes == 0 || deltaBytes == 0 {
		t.Fatalf("full/delta rotation did not engage: %d full bytes, %d delta bytes", fullBytes, deltaBytes)
	}
	// skips are expected here and NOT gated: the DES compresses 10
	// virtual seconds into sub-second wall time, so the real file
	// flusher lags virtual cadence by construction. Live-side skip
	// semantics are covered by TestWriterSkipWhenBusy.
	_ = skips

	const frameBudgetNs = 33e6
	perCapture := float64(ckNs) / float64(captures)
	if share := perCapture / frameBudgetNs; share > 0.02 {
		t.Fatalf("checkpoint capture costs %.0f ns = %.1f%% of the 33ms frame budget (gate: 2%%)",
			perCapture, share*100)
	}
	t.Logf("%d captures, %.0f ns each (%.2f%% of frame budget), %d full + %d delta bytes",
		captures, perCapture, perCapture/frameBudgetNs*100, fullBytes, deltaBytes)
}
