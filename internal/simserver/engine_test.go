package simserver

import (
	"testing"

	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/worldmap"
)

// shortCfg returns a quick configuration for unit tests (2 virtual
// seconds is enough for dozens of frames).
func shortCfg(players, threads int) Config {
	return Config{
		Players:   players,
		Threads:   threads,
		DurationS: 2,
		Seed:      5,
	}
}

func TestSequentialRunBasics(t *testing.T) {
	cfg := shortCfg(16, 1)
	cfg.Sequential = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 || res.Requests == 0 {
		t.Fatalf("frames=%d requests=%d", res.Frames, res.Requests)
	}
	// 16 players at ~30 req/s for 2s ≈ 960 requests.
	if res.Requests < 800 || res.Requests > 1000 {
		t.Errorf("requests = %d, want ~960", res.Requests)
	}
	if res.Resp.Replies == 0 {
		t.Fatal("no replies")
	}
	bd := res.Avg
	if bd.Ns[metrics.CompExec] == 0 || bd.Ns[metrics.CompReply] == 0 || bd.Ns[metrics.CompWorld] == 0 {
		t.Errorf("breakdown missing components: %s", bd.String())
	}
	if bd.Ns[metrics.CompLock] != 0 {
		t.Errorf("sequential run charged lock time: %s", bd.String())
	}
	if res.Strategy != "none" {
		t.Errorf("strategy = %q", res.Strategy)
	}
	// Response time must be sane: at low load ≈ network + sub-frame
	// processing, well under 100ms.
	if ms := res.ResponseTimeMs(); ms <= 0 || ms > 100 {
		t.Errorf("response time = %v ms", ms)
	}
}

func TestParallelRunHasLockAndWaitTime(t *testing.T) {
	res, err := Run(shortCfg(32, 4))
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Avg
	if bd.Ns[metrics.CompLock] == 0 {
		t.Error("no lock time with conservative locking and 4 threads")
	}
	if bd.Ns[metrics.CompInterWait]+bd.Ns[metrics.CompIntraWait] == 0 {
		t.Error("no wait time at barriers")
	}
	if bd.LeafLockNs == 0 {
		t.Error("no leaf lock attribution")
	}
	if res.Locks.LeafLockOps == 0 || res.Locks.Moves == 0 {
		t.Errorf("lock aggregate empty: %+v", res.Locks)
	}
	if res.Locks.DistinctLeaves > res.Locks.LeafLockOps {
		t.Error("distinct leaves exceed lock ops")
	}
	if len(res.FrameLog.Frames) == 0 {
		t.Error("frame log empty")
	}
	if res.PerThread[0].Total() == 0 {
		t.Error("thread 0 breakdown empty")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(shortCfg(24, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortCfg(24, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Frames != b.Frames || a.Requests != b.Requests ||
		a.Resp.Replies != b.Resp.Replies {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.PerThread {
		if a.PerThread[i] != b.PerThread[i] {
			t.Fatalf("thread %d breakdown diverged", i)
		}
	}
	if a.ResponseTimeMs() != b.ResponseTimeMs() {
		t.Error("response times diverged")
	}
}

func TestOptimizedLockingReducesLockShare(t *testing.T) {
	base := shortCfg(96, 4)
	base.DurationS = 3
	cons, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	opt := base
	opt.Strategy = locking.Optimized{}
	optRes, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	consLock := cons.Avg.Percent(metrics.CompLock)
	optLock := optRes.Avg.Percent(metrics.CompLock)
	if optLock >= consLock {
		t.Errorf("optimized lock share %.1f%% >= conservative %.1f%%", optLock, consLock)
	}
}

func TestMoreThreadsMoreThroughputUnderLoad(t *testing.T) {
	mk := func(threads int) *Result {
		cfg := shortCfg(160, threads)
		cfg.DurationS = 3
		cfg.Strategy = locking.Optimized{}
		if threads == 0 {
			cfg.Sequential = true
			cfg.Threads = 1
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := mk(0)
	four := mk(4)
	// At 160 players the sequential server is saturated; four threads
	// must serve strictly more replies.
	if four.Resp.Replies <= seq.Resp.Replies {
		t.Errorf("4T replies %d <= sequential %d", four.Resp.Replies, seq.Resp.Replies)
	}
	if four.ResponseTimeMs() >= seq.ResponseTimeMs() {
		t.Errorf("4T response %.1fms >= sequential %.1fms",
			four.ResponseTimeMs(), seq.ResponseTimeMs())
	}
}

func TestBreakdownComponentsSumToDuration(t *testing.T) {
	res, err := Run(shortCfg(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Each thread's total accounted time must approximate the virtual
	// duration (threads start at 0 and run to ~end; slack for the final
	// partial frame and select quantization).
	for i, bd := range res.PerThread {
		total := float64(bd.Total()) / 1e9
		if total < res.DurationS*0.9 || total > res.DurationS*1.2 {
			t.Errorf("thread %d accounts %.2fs of %.0fs", i, total, res.DurationS)
		}
	}
}

func TestConfigValidationAndDefaults(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := Config{Players: 4, DurationS: 0.5}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 1 || res.NumLeaves != 16 {
		t.Errorf("defaults wrong: %+v", res)
	}
}

func TestAreanodeDepthSweep(t *testing.T) {
	for _, depth := range []int{1, 3, 5} {
		cfg := shortCfg(16, 2)
		cfg.AreanodeDepth = depth
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if res.NumLeaves != 1<<depth {
			t.Errorf("depth %d: leaves = %d", depth, res.NumLeaves)
		}
		if res.Locks.AvgDistinctLeavesPerRequest() <= 0 {
			t.Errorf("depth %d: no distinct leaf stat", depth)
		}
	}
}

func TestSMTModelMakes8ThreadsBarelyBetterThan4(t *testing.T) {
	mk := func(threads int) *Result {
		cfg := shortCfg(128, threads)
		cfg.DurationS = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	four := mk(4)
	eight := mk(8)
	// The paper: "using eight threads does not improve performance any
	// further". Allow 8T to be modestly better or slightly worse, but it
	// must not approach 2x.
	ratio := float64(eight.Resp.Replies) / float64(four.Resp.Replies)
	if ratio > 1.35 {
		t.Errorf("8T/4T reply ratio = %.2f; SMT model too optimistic", ratio)
	}
	if ratio < 0.6 {
		t.Errorf("8T/4T reply ratio = %.2f; SMT model too pessimistic", ratio)
	}
}

func TestDooredMapRunsOnSimServer(t *testing.T) {
	mc := worldmap.DefaultConfig()
	mc.Rows, mc.Cols = 4, 4
	mc.DoorProb = 1.0
	mc.Seed = 6
	m, err := worldmap.Generate(mc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Map: m, Players: 16, Threads: 2, DurationS: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp.Replies == 0 {
		t.Fatal("no replies on doored map")
	}
	// Doors animate in the world phase: the percentile view must also be
	// populated (Record path).
	if res.Resp.Hist.N() == 0 {
		t.Error("latency histogram empty")
	}
	if res.Resp.P95Ms() <= 0 {
		t.Error("p95 not computed")
	}
}
