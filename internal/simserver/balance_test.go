package simserver

import (
	"testing"

	"qserve/internal/balance"
)

// TestBalanceReducesExecSkew is the deterministic core of the qbench
// skewed-workload experiment (acceptance: ≥30% reduction in the max/mean
// execute-phase load ratio at 4+ threads). A quarter of the players are
// pinned to room 0; static block assignment lands them all on thread 0,
// and their elevated interaction cost (dense candidate sets) makes that
// thread's execute phase the frame's long pole.
func TestBalanceReducesExecSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulated runs")
	}
	base := Config{
		Players:   96,
		Threads:   4,
		DurationS: 4,
		Seed:      5,
		Cluster:   24,
	}
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Balance = balance.Policy{Enabled: true}
	res, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}

	rOff := off.FrameLog.ExecLoadRatio()
	rOn := res.FrameLog.ExecLoadRatio()
	t.Logf("exec max/mean: static=%.3f balanced=%.3f migrations=%d", rOff, rOn, res.Migrations)
	if rOff < 1.3 {
		t.Fatalf("clustered workload not skewed enough to test balancing: ratio %.3f", rOff)
	}
	if res.Migrations == 0 {
		t.Fatal("balancer never migrated despite skew")
	}
	reduction := (rOff - rOn) / rOff
	if reduction < 0.30 {
		t.Errorf("balance reduced exec skew by %.0f%%, want >= 30%% (%.3f -> %.3f)",
			reduction*100, rOff, rOn)
	}
}
