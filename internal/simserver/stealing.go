package simserver

import (
	"math/bits"

	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/sim"
)

// Work-stealing request execution on the simulated machine — the DES
// cost-model arm of the lock-wall study (Config.Stealing; the live
// counterpart is internal/server/stealing.go). The mechanics mirror the
// live scheduler exactly, but because the discrete-event machine runs one
// context at a time everything is plain data: no claim CAS, no pool
// mutex, no memory-model argument.
//
// Per frame, each thread pools its clients' arrivals as desEntry records
// (the move command is decided at receive time, so a parked retry replays
// the same command), then drains its own pool oldest-first, stealing from
// other threads' pools when its own runs dry. Fresh entries execute with
// LockContext.TryFirst: a contended first acquisition parks the entry
// back on its owner's pool instead of queueing on the lock; past
// maxStealParks parks the retry blocks. A thread leaves its request phase only when its own
// outstanding count reaches zero, so every pooled entry — including
// parked retries requeued by thieves — completes before the barrier, and
// reply phases always see a finished frame.
//
// Determinism: procs interleave in virtual-time order, scans are
// oldest-first with victims visited in a fixed rotation, and idle waits
// advance the clock by a fixed quantum, so the same configuration yields
// the same schedule, the same steal counts, and the same world. Per-client
// order is FIFO by construction (one entry per client per frame at most
// under the periodic sources, and scans take a client's oldest entry
// first regardless), so script-driven runs stay move-for-move identical
// to the static scheduler's.

// maxStealParks mirrors the live scheduler's park cap: a contended first
// acquisition may park and retry this many times before the entry falls
// back to a blocking acquire (see internal/server/stealing.go).
const maxStealParks = 12

// stealSpinNs is the virtual-time quantum an idle thread waits before
// re-checking for claimable or stealable work while entries it owns are
// still in flight on other threads. Charged as intra-frame wait: the
// thread is blocked on the frame's remaining request work.
const stealSpinNs = 1_000

// desEntry is one pooled move command awaiting execution.
type desEntry struct {
	c         *simClient
	cmd       protocol.MoveCmd
	seq       int64
	arrivedAt int64
	owner     int    // pooling thread: completion decrements its outstanding count
	idx       int    // arrival index on the owner, stamping commit order
	hint      uint64 // owner-recorded leaf mask of the client's last move (0 = none)
	parks     uint8  // times this entry parked on a contended first acquire
}

// desQueue is one thread's pool: a FIFO with a head index so pops are
// O(1) and the backing array is reused across frames.
type desQueue struct {
	q    []desEntry
	head int
}

func (q *desQueue) push(e desEntry) {
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	}
	q.q = append(q.q, e)
}

func (q *desQueue) empty() bool { return q.head == len(q.q) }

// take removes and returns the oldest eligible entry, mirroring the live
// pool's scan rules: entries whose leaf hint intersects avoid (regions
// other threads are executing right now) are skipped by owner and thief
// alike — deferring them until the conflicting execution ends touches no
// lock — and blocking-mode entries (parked maxStealParks times) are
// deferred too, with the owner falling back to them in a second pass once
// nothing else is claimable; a thief never takes them. Every skip blocks
// the entry's client for the rest of the scan so a later entry of the
// same client cannot overtake (per-client FIFO). Claimed clients — an
// entry mid-execution on another thread — are skipped unconditionally,
// which blocks every remaining entry of that client by definition.
func (q *desQueue) take(asThief bool, avoid uint64) (desEntry, bool) {
	if e, ok := q.takeScan(true, avoid); ok {
		return e, true
	}
	if asThief {
		return desEntry{}, false
	}
	return q.takeScan(false, avoid)
}

// takeScan is one pass of take.
func (q *desQueue) takeScan(deferBlocked bool, avoid uint64) (desEntry, bool) {
	var blocked []*simClient
scan:
	for i := q.head; i < len(q.q); i++ {
		e := q.q[i]
		if e.c.claimed {
			continue
		}
		for _, b := range blocked {
			if b == e.c {
				continue scan
			}
		}
		if (deferBlocked && e.parks >= maxStealParks) || e.hint&avoid != 0 {
			blocked = append(blocked, e.c)
			continue
		}
		e.c.claimed = true
		copy(q.q[q.head+1:i+1], q.q[q.head:i])
		q.q[q.head] = desEntry{}
		q.head++
		return e, true
	}
	return desEntry{}, false
}

// requeue returns a parked entry to the pool. If it is the client's only
// entry it goes to the tail (other clients' work runs first); otherwise
// it must go to the front to stay ahead of the client's younger entries.
func (q *desQueue) requeue(e desEntry) {
	for i := q.head; i < len(q.q); i++ {
		if q.q[i].c == e.c {
			if q.head > 0 {
				q.head--
				q.q[q.head] = e
			} else {
				q.q = append(q.q, desEntry{})
				copy(q.q[1:], q.q)
				q.q[0] = e
			}
			return
		}
	}
	q.push(e)
}

// stealing reports whether the pooled scheduler is active for this run.
func (e *engine) stealing() bool {
	return e.cfg.Stealing && !e.cfg.Sequential && e.cfg.Threads > 1
}

// poolRequest is the receive half of processRequest under stealing: it
// pays the receive cost, decides the command, and pools the entry for the
// execute loop. Loss and the request count are settled here, once — a
// parked retry is the same request, not a new one.
func (e *engine) poolRequest(p *sim.Proc, req *simRequest, arrivedAt int64) {
	if e.lossRng != nil && e.pbs == nil && e.lossRng.Float64() < e.cfg.LossProb {
		e.lost++
		return
	}
	e.requests++
	e.advance(p, e.model.RecvPacket, metrics.CompRecv)

	c := req.client
	w := &e.workers[p.ID]
	e.stealQ[p.ID].push(desEntry{
		c:         c,
		cmd:       c.decide(e, req.seq),
		seq:       req.seq,
		arrivedAt: arrivedAt,
		owner:     p.ID,
		idx:       w.poolIdx,
		hint:      c.lastMask,
	})
	w.poolIdx++
	e.outstanding[p.ID]++
}

// runStealPhase drains the thread's pooled work: own entries first, then
// steals. It returns only when every pooled entry frame-wide has
// committed — not just its own: while any thread still has uncommitted
// work this thread keeps scanning for steals instead of parking at the
// request barrier, converting the static design's barrier idle into
// execution. Waiting (for in-flight entries, or for victims that have
// not pooled their arrivals yet) advances the clock in stealSpinNs hops,
// charged as intra-frame wait.
func (e *engine) runStealPhase(p *sim.Proc) {
	for {
		if en, ok := e.stealQ[p.ID].take(false, e.avoidMask(p)); ok {
			e.execPooled(p, en)
			continue
		}
		if en, ok := e.stealFrom(p); ok {
			e.execPooled(p, en)
			continue
		}
		total := 0
		for _, n := range e.outstanding {
			total += n
		}
		if total == 0 {
			return
		}
		t0 := p.Now()
		p.AdvanceTo(p.Now() + stealSpinNs)
		e.bds[p.ID].Charge(metrics.CompIntraWait, p.Now()-t0)
	}
}

// avoidMask unions the leaf masks of the requests other threads are
// executing right now — the conflict-awareness input of every pool scan.
func (e *engine) avoidMask(p *sim.Proc) uint64 {
	var avoid uint64
	for i, m := range e.activeMask {
		if i != p.ID {
			avoid |= m
		}
	}
	return avoid
}

// stealFrom scans the other threads' pools in a fixed rotation starting
// after this thread, avoiding entries whose leaf hint intersects a region
// some other thread is executing in right now.
func (e *engine) stealFrom(p *sim.Proc) (desEntry, bool) {
	avoid := e.avoidMask(p)
	n := len(e.stealQ)
	for i := 1; i < n; i++ {
		if en, ok := e.stealQ[(p.ID+i)%n].take(true, avoid); ok {
			return en, true
		}
	}
	return desEntry{}, false
}

// execPooled is the execute half of processRequest under stealing: it
// runs one pooled entry with a non-blocking first acquisition (unless the
// entry already parked once), parking it back on its owner on contention.
func (e *engine) execPooled(p *sim.Proc, en desEntry) {
	c := en.c
	bd := &e.bds[p.ID]
	execBefore := bd.Ns[metrics.CompExec]

	var stats locking.AcquireStats
	var mask uint64
	held := int64(0)
	lc := game.LockContext{
		Locker: &locking.RegionLocker{
			Tree:     e.world.Tree,
			Provider: &simProvider{e: e, p: p},
		},
		Strategy: e.cfg.Strategy,
		Stats:    &stats,
		LeafMask: &mask,
		TryFirst: en.parks < maxStealParks,
		OnWork: func(wk game.Work) {
			ns := e.model.WorkCost(wk)
			held += ns
			e.advance(p, ns, metrics.CompExec)
		},
	}
	e.activeMask[p.ID] = en.hint
	res := e.world.ExecuteMove(c.ent, &en.cmd, &lc)
	e.activeMask[p.ID] = 0
	if res.Parked {
		// The region determination ran before the refused probe; the
		// probe itself was charged by TryLockNode. The retry recomputes
		// the region, so this charge does not double-count.
		e.advance(p, e.model.RegionOverhead(res.Work), metrics.CompExec)
		bd.StealConflicts++
		en.parks++
		e.stealQ[en.owner].requeue(en)
		c.claimed = false
		return
	}
	total := e.model.MoveCost(res.Work) + e.model.RegionOverhead(res.Work)
	if rest := total - held; rest > 0 {
		e.advance(p, rest, metrics.CompExec)
	}

	execDelta := bd.Ns[metrics.CompExec] - execBefore
	c.loadNs += execDelta
	bd.ExecCmds++
	if en.owner != p.ID {
		bd.Steals++
		bd.StealsNs += execDelta
	}

	if n := len(res.Events); n > 0 {
		e.globalBufferAppend(p, n)
	}

	c.pending = true
	c.lastArrival = en.arrivedAt
	if mask != 0 {
		c.lastMask = mask
	}
	// Commit point: the tap and the playback cursor advance belong here,
	// never on the park path above — a parked entry re-executes.
	if r := e.cfg.Record; r != nil {
		r.RecordMove(uint16(c.idx), e.moveSeq(en.seq), &en.cmd)
	}
	if e.pbs != nil {
		e.pbs.commit()
	}

	w := &e.workers[p.ID]
	w.frameExecNs += execDelta
	w.frameReqs++
	w.frameMask |= mask
	w.frameLockOps += stats.LeafLockOps

	e.locks.Moves++
	e.locks.LeafLockOps += int64(stats.LeafLockOps)
	e.locks.ParentLockOps += int64(stats.ParentLockOps)
	e.locks.DistinctLeaves += int64(bits.OnesCount64(mask))

	c.claimed = false
	e.outstanding[en.owner]--
}

// TryLockNode implements locking.TryProvider on the virtual locks: the
// probe syncs to virtual-time order and either takes the node or refuses
// without queueing. Both outcomes pay the acquisition overhead — a
// refused probe is real work the lock-wall study must see.
func (sp *simProvider) TryLockNode(n int32) bool {
	leaf := sp.e.world.Tree.Node(n).IsLeaf()
	ok := sp.e.nodeLocks[n].TryLock(sp.p)
	t0 := sp.p.Now()
	sp.p.Advance(sp.e.model.LockAcquire)
	sp.e.bds[sp.p.ID].ChargeLock(sp.p.Now()-t0, leaf)
	return ok
}
