package replay

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

var updateMinimal = flag.Bool("update-minimal", false, "regenerate testdata/minimal.qrl from the shrinker's output")

// failingSession records a long, mostly-idle two-player session with one
// buried event of interest: around the midpoint, player 0 switches to
// the railgun and snipes player 1 (standing at spawn) for railDamage=45,
// leaving them at 55 health. Everything else — dozens of ticks and idle
// moves on both sides — is noise the shrinker must strip away.
func failingSession(t *testing.T) *Log {
	t.Helper()
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	yaw := protocol.AngleToWire(geom.VecToAngles(m.Spawns[1].Pos.Sub(m.Spawns[0].Pos)).Y)
	lg, _, err := RecordSession(m, 11, LiveConfig{Threads: 2},
		SessionScript{
			Players: 2,
			Moves:   80,
			Cmd: func(idx int, seq int64) protocol.MoveCmd {
				cmd := protocol.MoveCmd{Msec: 33}
				if idx == 0 {
					cmd.Yaw = yaw
					if seq == 38 {
						cmd.Impulse = 2
					}
					if seq == 40 {
						cmd.Buttons = protocol.BtnFire
					}
				}
				return cmd
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// railHit is the failure predicate: replaying the log leaves some player
// at 55 health or worse (one railgun hit from full health).
func railHit(lg *Log) bool {
	res, err := ReplayLive(lg, LiveConfig{Threads: 0})
	if err != nil {
		return false
	}
	hit := false
	res.World.Ents.ForEachClass(entity.ClassPlayer, func(e *entity.Entity) {
		if e.Health <= 100-45 {
			hit = true
		}
	})
	return hit
}

func TestShrinkReducesFailingLog(t *testing.T) {
	lg := failingSession(t)
	if !railHit(lg) {
		t.Fatal("the injected rail hit did not land; the session script is broken")
	}
	shrunk, err := Shrink(lg, railHit)
	if err != nil {
		t.Fatal(err)
	}
	if !railHit(shrunk) {
		t.Fatal("shrunk log no longer reproduces the failure")
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk log does not validate: %v", err)
	}
	origTicks, gotTicks := lg.Ticks(), shrunk.Ticks()
	if gotTicks*10 > origTicks {
		t.Fatalf("shrinker kept %d of %d ticks; want ≥90%% reduction", gotTicks, origTicks)
	}
	origMoves, gotMoves := lg.Moves(), shrunk.Moves()
	if gotMoves*10 > origMoves {
		t.Fatalf("shrinker kept %d of %d moves; want ≥90%% reduction", gotMoves, origMoves)
	}
	t.Logf("shrunk %d ticks → %d, %d moves → %d, %d items → %d",
		origTicks, gotTicks, origMoves, gotMoves, len(lg.Items), len(shrunk.Items))

	// The shrunk log is still an ordinary log: it must survive the
	// encode/decode round trip and replay identically on other engines.
	data, err := shrunk.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !railHit(back) {
		t.Fatal("re-decoded shrunk log no longer reproduces the failure")
	}

	if *updateMinimal {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := shrunk.WriteFile(filepath.Join("testdata", "minimal.qrl")); err != nil {
			t.Fatal(err)
		}
		t.Log("wrote testdata/minimal.qrl")
	}
}

// TestMinimalLogRegression pins the checked-in shrinker output: the
// minimal reproducer must keep decoding, validating, and reproducing
// its failure — the rail hit — on every engine.
func TestMinimalLogRegression(t *testing.T) {
	lg, err := ReadFile(filepath.Join("testdata", "minimal.qrl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !railHit(lg) {
		t.Fatal("checked-in minimal log no longer reproduces the rail hit")
	}
	seq, err := ReplayLive(lg, LiveConfig{Threads: 0})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayLive(lg, LiveConfig{Threads: 4, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	des, err := ReplayDES(lg, LiveConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if seq.TableDigest != par.TableDigest || seq.TableDigest != des.TableDigest {
		t.Fatalf("minimal log diverges across engines: seq %016x par %016x des %016x",
			seq.TableDigest, par.TableDigest, des.TableDigest)
	}
}
