package replay

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// StreamRecorder is the durable sibling of Recorder: a server.Recorder
// that appends framed records to a `.qrl` file as the session runs
// instead of accumulating them in memory. It is the redo log of the
// durability design (DESIGN.md §12): the header hits the disk at open,
// and each frame's records are written out at the frame-end tap, so
// after a kill -9 the file holds a decodable prefix of the input stream
// up to (at worst) the frame in flight. The process page cache makes the
// write visible to a restarted process without fsync; surviving power
// loss is a documented non-goal.
//
// The tap costs are the same as Recorder's — one mutex and an append to
// a pre-grown buffer — plus one file write per frame, off the per-move
// path.
type StreamRecorder struct {
	mu       sync.Mutex
	f        *os.File
	pending  []byte // framed records since the last frame flush
	scratch  []byte // per-record payload encode buffer
	items    int64  // records appended (the checkpoint RecItems cut point)
	ticks    atomic.Int64
	lastShed int32
	err      error
}

// NewStreamRecorder creates path (truncating any previous file) and
// writes the log header immediately.
func NewStreamRecorder(path string, m *worldmap.Map, worldSeed int64) (*StreamRecorder, error) {
	lg := &Log{WorldSeed: worldSeed, ProtoVer: protocol.Version, Map: m}
	header, err := lg.Encode() // no items: magic + version + header record
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, fmt.Errorf("replay: writing log header: %w", err)
	}
	return &StreamRecorder{
		f:        f,
		pending:  make([]byte, 0, 1<<16),
		scratch:  make([]byte, 0, 32),
		lastShed: -1,
	}, nil
}

func (r *StreamRecorder) append(it Item) {
	r.mu.Lock()
	r.appendLocked(it)
	r.mu.Unlock()
}

func (r *StreamRecorder) appendLocked(it Item) {
	var err error
	r.pending, r.scratch, err = appendRecord(r.pending, r.scratch, &it)
	if err != nil && r.err == nil {
		r.err = err
		return
	}
	r.items++
}

// RecordTick implements server.Recorder.
func (r *StreamRecorder) RecordTick(dtNs int64) {
	r.append(Item{Kind: KindTick, DtNs: dtNs})
	r.ticks.Add(1)
}

// TickCount mirrors Recorder.TickCount.
func (r *StreamRecorder) TickCount() int64 { return r.ticks.Load() }

// RecordMove implements server.Recorder.
func (r *StreamRecorder) RecordMove(clientID uint16, seq uint32, cmd *protocol.MoveCmd) {
	r.append(Item{Kind: KindMove, Client: clientID, Seq: seq, Cmd: *cmd})
}

// RecordConnect implements server.Recorder.
func (r *StreamRecorder) RecordConnect(clientID uint16, entID int32, thread int, name string) {
	r.append(Item{Kind: KindConnect, Client: clientID, Ent: entID, Thread: uint8(thread), Name: name})
}

// RecordDisconnect implements server.Recorder.
func (r *StreamRecorder) RecordDisconnect(clientID uint16, reason uint8) {
	r.append(Item{Kind: KindDisconnect, Client: clientID, Reason: reason})
}

// RecordMigrate implements server.Recorder.
func (r *StreamRecorder) RecordMigrate(clientID uint16, to int) {
	r.append(Item{Kind: KindMigrate, Client: clientID, To: uint8(to)})
}

// RecordShed implements server.Recorder; only level changes are logged,
// matching Recorder so the two produce identical streams.
func (r *StreamRecorder) RecordShed(level int) {
	r.mu.Lock()
	if int32(level) != r.lastShed {
		r.lastShed = int32(level)
		r.appendLocked(Item{Kind: KindShed, Level: uint8(level)})
	}
	r.mu.Unlock()
}

// RecordFrameEnd implements server.Recorder and flushes the frame's
// records to the file — the durability point the checkpoint's RecItems
// cut refers to.
func (r *StreamRecorder) RecordFrameEnd(frame uint64) {
	r.mu.Lock()
	r.appendLocked(Item{Kind: KindFrame, Frame: frame})
	r.flushLocked()
	r.mu.Unlock()
}

func (r *StreamRecorder) flushLocked() {
	if len(r.pending) == 0 || r.f == nil {
		return
	}
	if _, err := r.f.Write(r.pending); err != nil && r.err == nil {
		r.err = fmt.Errorf("replay: writing log: %w", err)
	}
	r.pending = r.pending[:0]
}

// Items returns the number of records appended so far.
func (r *StreamRecorder) Items() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.items)
}

// Err returns the first write or encode error.
func (r *StreamRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes any buffered records and closes the file. The log stays
// headless (no end record): readers use DecodePrefix, which does not
// require one.
func (r *StreamRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return r.err
	}
	r.flushLocked()
	if err := r.f.Close(); err != nil && r.err == nil {
		r.err = err
	}
	r.f = nil
	return r.err
}

// DecodePrefix parses as much of a possibly torn log as is intact: the
// header must decode (a log whose header is damaged carries no usable
// information), but the record stream may stop mid-record — a kill -9
// can land between the frame flush and the next — and everything up to
// the first truncated or corrupt record is returned. The boundary is
// trustworthy because every record carries its own fold16: a torn tail
// cannot masquerade as a valid record. The second result is the number
// of trailing bytes that were dropped.
func DecodePrefix(data []byte) (*Log, int, error) {
	lg, err := Decode(data)
	if err == nil {
		return lg, 0, nil
	}
	// Walk records manually, keeping the valid prefix.
	if len(data) < len(logMagic)+2 {
		return nil, 0, ErrTruncated
	}
	if string(data[:4]) != string(logMagic[:]) {
		return nil, 0, ErrBadMagic
	}
	version := uint16(data[4]) | uint16(data[5])<<8
	if version != FormatVersion {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	pos := 6
	if len(data)-pos < 4 {
		return nil, 0, fmt.Errorf("%w: header length", ErrTruncated)
	}
	hlen := int(uint32(data[pos]) | uint32(data[pos+1])<<8 | uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24)
	if hlen < 9 || hlen > maxMapJSON || len(data)-pos < 4+hlen+2 {
		return nil, 0, fmt.Errorf("%w: header body", ErrTruncated)
	}
	headerEnd := pos + 4 + hlen + 2

	// Find the longest record-aligned prefix whose records all verify.
	cut := headerEnd
	p := headerEnd
	for p < len(data) {
		if len(data)-p < 3 {
			break
		}
		plen := int(uint16(data[p+1]) | uint16(data[p+2])<<8)
		if len(data)-p < 3+plen+2 {
			break
		}
		framed := data[p : p+3+plen]
		sum := uint16(data[p+3+plen]) | uint16(data[p+3+plen+1])<<8
		if protocol.Fold16(framed) != sum {
			break
		}
		_, end, err := decodeRecord(data[p], framed[3:])
		if err != nil {
			break
		}
		p += 3 + plen + 2
		cut = p
		if end {
			break // anything after an end marker is not part of the log
		}
	}
	lg, err = Decode(data[:cut])
	if err != nil {
		return nil, 0, err
	}
	return lg, len(data) - cut, nil
}

// ReadPrefixFile reads path and decodes its intact prefix.
func ReadPrefixFile(path string) (*Log, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return DecodePrefix(data)
}
