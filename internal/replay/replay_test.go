package replay

import (
	"sync"
	"testing"

	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// interactScript builds a deliberately interacting session on the given
// map: each player aims at the next player's spawn and fires — rockets
// and rails cross the arena, so combat damage enters the recorded state
// evolution. Between shots the players oscillate along their aim line.
// The determinism argument is NOT separation (as the conformance
// scenario's is) but the global-lockstep drive discipline: commit order
// equals log order, so interaction is fair game.
func interactScript(m *worldmap.Map, players int) func(idx int, seq int64) protocol.MoveCmd {
	yaw := make([]int16, players)
	for i := range yaw {
		from := m.Spawns[i].Pos
		to := m.Spawns[(i+1)%players].Pos
		yaw[i] = protocol.AngleToWire(geom.VecToAngles(to.Sub(from)).Y)
	}
	return func(idx int, seq int64) protocol.MoveCmd {
		cmd := protocol.MoveCmd{Yaw: yaw[idx], Forward: 80, Msec: 33}
		if (seq/3)%2 == 1 {
			cmd.Forward = -80
		}
		if seq == 1 && idx%2 == 1 {
			cmd.Impulse = 2 // odd players switch to the railgun: hitscan
		}
		if seq%4 == int64(idx%4) {
			cmd.Buttons |= protocol.BtnFire
		}
		if seq%16 == 9 {
			cmd.Buttons |= protocol.BtnJump
		}
		return cmd
	}
}

const (
	sessPlayers = 4
	sessMoves   = 48
)

var (
	sessOnce sync.Once
	sessLog  *Log
	sessRes  *Result
	sessErr  error
)

// recordedSession records the shared test session once: an interacting
// script captured on the widest live configuration (8 threads, forced
// balancing, work stealing) — the configuration most likely to expose
// ordering races if the recorder tapped anywhere but the commit points.
func recordedSession(t *testing.T) (*Log, *Result) {
	t.Helper()
	sessOnce.Do(func() {
		m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
		if err != nil {
			sessErr = err
			return
		}
		sessLog, sessRes, sessErr = RecordSession(m, 42,
			LiveConfig{Threads: 8, Balance: true, Stealing: true},
			SessionScript{
				Players: sessPlayers, Moves: sessMoves,
				Cmd:    interactScript(m, sessPlayers),
				TickNs: 33_000_000,
			})
	})
	if sessErr != nil {
		t.Fatal(sessErr)
	}
	return sessLog, sessRes
}

func TestRecordSessionProducesCompleteLog(t *testing.T) {
	lg, res := recordedSession(t)
	if got := lg.Moves(); got != sessPlayers*sessMoves {
		t.Fatalf("recorded %d moves, want %d", got, sessPlayers*sessMoves)
	}
	if got := lg.Ticks(); got != sessMoves {
		t.Fatalf("recorded %d ticks, want %d", got, sessMoves)
	}
	if got := len(lg.Clients()); got != sessPlayers {
		t.Fatalf("recorded %d clients, want %d", got, sessPlayers)
	}
	if !lg.HasEnd {
		t.Fatal("log has no end record")
	}
	if !res.EndDigestMatch {
		t.Fatal("recording session's own digest does not match its end record")
	}
	if err := lg.Validate(); err != nil {
		t.Fatalf("recorded log does not validate: %v", err)
	}
	// The session must actually interact, or the bit-identity claim
	// degenerates into the (already proven) separated-conformance one.
	damaged := false
	res.World.Ents.ForEachClass(entity.ClassPlayer, func(e *entity.Entity) {
		if e.Health < 100 || e.Deaths > 0 {
			damaged = true
		}
	})
	if !damaged {
		t.Fatal("interacting scenario produced no damage; combat never happened")
	}
}

// TestReplayBitIdentityAcrossLiveEngines is the tentpole claim: a
// session recorded on parallel 8T (balance+stealing) replays
// bit-identically — entity table AND reply streams — on the sequential
// engine and parallel {2,4,8}T with balancing and stealing toggled.
func TestReplayBitIdentityAcrossLiveEngines(t *testing.T) {
	lg, rec := recordedSession(t)
	configs := []LiveConfig{
		{Threads: 0},
		{Threads: 2}, {Threads: 2, Balance: true}, {Threads: 2, Stealing: true},
		{Threads: 4, Balance: true, Stealing: true},
		{Threads: 8}, {Threads: 8, Balance: true, Stealing: true},
	}
	for _, lc := range configs {
		lc := lc
		t.Run(lc.String(), func(t *testing.T) {
			res, err := ReplayLive(lg, lc)
			if err != nil {
				t.Fatal(err)
			}
			if res.TableDigest != rec.TableDigest {
				t.Fatalf("table digest diverged: recorded %016x, replay %016x", rec.TableDigest, res.TableDigest)
			}
			if res.StreamDigest != rec.StreamDigest {
				t.Fatalf("reply-stream digest diverged: recorded %016x, replay %016x", rec.StreamDigest, res.StreamDigest)
			}
			if !res.EndDigestMatch {
				t.Fatal("replay does not match the log's end digest")
			}
			if res.IDMismatches != 0 {
				t.Fatalf("%d entity-ID mismatches in a lockstep-recorded log", res.IDMismatches)
			}
			if res.Replies != sessPlayers*sessMoves {
				t.Fatalf("replay folded %d replies, want %d", res.Replies, sessPlayers*sessMoves)
			}
		})
	}
}

// TestReplayDESMatchesLive extends the claim to the third engine: the
// same log evolves the same entity table on the discrete-event server,
// sequential and parallel, balanced and stealing.
func TestReplayDESMatchesLive(t *testing.T) {
	lg, rec := recordedSession(t)
	configs := []LiveConfig{
		{Threads: 0},
		{Threads: 2}, {Threads: 4, Balance: true}, {Threads: 8, Stealing: true},
	}
	for _, lc := range configs {
		lc := lc
		t.Run("des-"+lc.String(), func(t *testing.T) {
			res, err := ReplayDES(lg, lc)
			if err != nil {
				t.Fatal(err)
			}
			if res.TableDigest != rec.TableDigest {
				t.Fatalf("DES table digest diverged: recorded %016x, got %016x", rec.TableDigest, res.TableDigest)
			}
			if !res.EndDigestMatch {
				t.Fatal("DES replay does not match the log's end digest")
			}
		})
	}
}

// TestReplayWithDisconnects drives connect/move/disconnect interleaving
// through the driver directly and checks the log replays everywhere,
// including the reconnect-after-disconnect path.
func TestReplayWithDisconnects(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newLiveDriver(m, 7, LiveConfig{Threads: 4, Balance: true}, rec, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer d.stop()
	a0, err := d.connectProbe("dis-0")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := d.connectProbe("dis-1")
	if err != nil {
		t.Fatal(err)
	}
	sc := interactScript(m, 2)
	for k := 0; k < 6; k++ {
		if err := d.tick(16_000_000); err != nil {
			t.Fatal(err)
		}
		cmd := sc(0, int64(k))
		if err := d.move(a0.ClientID, uint32(k+1), &cmd); err != nil {
			t.Fatal(err)
		}
		cmd = sc(1, int64(k))
		if err := d.move(a1.ClientID, uint32(k+1), &cmd); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.disconnect(a1.ClientID); err != nil {
		t.Fatal(err)
	}
	for k := 6; k < 10; k++ {
		if err := d.tick(16_000_000); err != nil {
			t.Fatal(err)
		}
		cmd := sc(0, int64(k))
		if err := d.move(a0.ClientID, uint32(k+1), &cmd); err != nil {
			t.Fatal(err)
		}
	}
	d.stop()
	lg := rec.Finish(d.world)
	want := TableDigest(d.world)

	for _, lc := range []LiveConfig{{Threads: 0}, {Threads: 4, Stealing: true}} {
		res, err := ReplayLive(lg, lc)
		if err != nil {
			t.Fatalf("%s: %v", lc, err)
		}
		if res.TableDigest != want {
			t.Fatalf("%s: table digest diverged after disconnects", lc)
		}
	}
	res, err := ReplayDES(lg, LiveConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TableDigest != want {
		t.Fatal("DES: table digest diverged after disconnects")
	}
}

// TestReplayIsRepeatable replays the same log twice on the same config
// and requires identical digests — determinism of the replayer itself.
func TestReplayIsRepeatable(t *testing.T) {
	lg, _ := recordedSession(t)
	a, err := ReplayLive(lg, LiveConfig{Threads: 4, Balance: true, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayLive(lg, LiveConfig{Threads: 4, Balance: true, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.TableDigest != b.TableDigest || a.StreamDigest != b.StreamDigest {
		t.Fatal("two replays of the same log diverged")
	}
}
