package replay

import (
	"bytes"
	"errors"
	"testing"

	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/worldmap"
)

func testLog(t *testing.T) *Log {
	t.Helper()
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &Log{
		WorldSeed: 99,
		ProtoVer:  protocol.Version,
		Map:       m,
		Items: []Item{
			{Kind: KindConnect, Client: 1, Ent: 3, Thread: 0, Name: "alice"},
			{Kind: KindConnect, Client: 2, Ent: 4, Thread: 1, Name: "bob"},
			{Kind: KindTick, DtNs: 16_000_000},
			{Kind: KindMove, Client: 1, Seq: 1, Cmd: protocol.MoveCmd{Yaw: 120, Forward: 240, Buttons: protocol.BtnFire, Msec: 33}},
			{Kind: KindMove, Client: 2, Seq: 1, Cmd: protocol.MoveCmd{Pitch: -45, Side: -100, Impulse: 2, Msec: 16}},
			{Kind: KindMigrate, Client: 2, To: 3},
			{Kind: KindShed, Level: 1},
			{Kind: KindFrame, Frame: 7},
			{Kind: KindTick, DtNs: 33_000_000},
			{Kind: KindMove, Client: 1, Seq: 2},
			{Kind: KindDisconnect, Client: 2, Reason: server.DiscReasonTimeout},
		},
		HasEnd:    true,
		EndFrames: 12,
		EndDigest: 0xDEADBEEFCAFE,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lg := testLog(t)
	data, err := lg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.WorldSeed != lg.WorldSeed || got.ProtoVer != lg.ProtoVer {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !got.HasEnd || got.EndFrames != lg.EndFrames || got.EndDigest != lg.EndDigest {
		t.Fatalf("end summary mismatch: %+v", got)
	}
	if len(got.Items) != len(lg.Items) {
		t.Fatalf("item count %d, want %d", len(got.Items), len(lg.Items))
	}
	for i := range lg.Items {
		if got.Items[i] != lg.Items[i] {
			t.Fatalf("item %d: got %+v, want %+v", i, got.Items[i], lg.Items[i])
		}
	}
	// Byte-level identity of the re-encode (the map blob is carried
	// verbatim on the decode side).
	again, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("Encode∘Decode is not the identity")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	lg := testLog(t)
	data, err := lg.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[4] = 0x77; return b }, ErrBadVersion},
		{"truncated header", func(b []byte) []byte { return b[:8] }, ErrTruncated},
		{"truncated mid-record", func(b []byte) []byte { return b[:len(b)-3] }, ErrTruncated},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)-10] ^= 0x01; return b }, ErrChecksum},
		{"flipped header bit", func(b []byte) []byte { b[20] ^= 0x01; return b }, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), data...))
			got, err := Decode(mut)
			if err == nil {
				t.Fatal("corrupted log decoded cleanly")
			}
			if got != nil {
				t.Fatal("error decode returned a non-nil log")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestValidateCatchesOrderingViolations(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(items ...Item) *Log { return &Log{Map: m, Items: items} }
	cases := []struct {
		name string
		lg   *Log
		ok   bool
	}{
		{"move before connect", mk(Item{Kind: KindMove, Client: 1, Seq: 1}), false},
		{"double connect", mk(
			Item{Kind: KindConnect, Client: 1},
			Item{Kind: KindConnect, Client: 1}), false},
		{"disconnect unconnected", mk(Item{Kind: KindDisconnect, Client: 1}), false},
		{"seq regress", mk(
			Item{Kind: KindConnect, Client: 1},
			Item{Kind: KindMove, Client: 1, Seq: 5},
			Item{Kind: KindMove, Client: 1, Seq: 4}), false},
		{"seq repeat", mk(
			Item{Kind: KindConnect, Client: 1},
			Item{Kind: KindMove, Client: 1, Seq: 5},
			Item{Kind: KindMove, Client: 1, Seq: 5}), false},
		{"seq window jump", mk(
			Item{Kind: KindConnect, Client: 1},
			Item{Kind: KindMove, Client: 1, Seq: 1},
			Item{Kind: KindMove, Client: 1, Seq: 1 + 1<<13}), false},
		{"clean stream", mk(
			Item{Kind: KindConnect, Client: 1},
			Item{Kind: KindMove, Client: 1, Seq: 1},
			Item{Kind: KindMove, Client: 1, Seq: 2},
			Item{Kind: KindDisconnect, Client: 1},
			Item{Kind: KindConnect, Client: 1},
			Item{Kind: KindMove, Client: 1, Seq: 3}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.lg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("valid log rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid log accepted")
			}
		})
	}
}

func TestWriteReadFile(t *testing.T) {
	lg := testLog(t)
	path := t.TempDir() + "/session.qrl"
	if err := lg.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(lg.Items) || got.EndDigest != lg.EndDigest {
		t.Fatal("file round trip lost records")
	}
}
