package replay

import (
	"fmt"
	"time"

	"qserve/internal/checkpoint"
	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/server"
)

// Recovery is the outcome of rolling a checkpoint forward through a redo
// log: the reconstructed world plus the client bookkeeping a restarted
// server needs to park the survivors for reconnection.
type Recovery struct {
	// World is the recovered world, bit-identical (TableDigest) to the
	// crashed server's world at the last durable frame.
	World *game.World
	// Checkpoint is the (merged, verified) checkpoint recovery started
	// from.
	Checkpoint *checkpoint.Checkpoint
	// Clients is the connected-client set at the recovered frame:
	// checkpointed clients, updated through the tail (new connects appear
	// with empty Addr, disconnected ones vanish, seqs advance).
	Clients []checkpoint.ClientRec
	// Frame is the last frame the tail completed (the checkpoint's frame
	// when the tail held none).
	Frames uint64
	// TailItems counts redo-log items applied past the checkpoint cut.
	TailItems int
	// TailDropped is the torn-tail byte count DecodePrefix discarded.
	TailDropped int
	// RecItems is the redo-log position the recovered state corresponds
	// to — a server resuming recording continues from here.
	RecItems uint64
	// JoinIdx and NextClientID resume the restarted server's allocation
	// counters: the checkpoint's values advanced by tail connects, so
	// post-restart joiners collide with neither a recycled entity slot
	// nor a surviving client's id.
	JoinIdx      int
	NextClientID uint16
}

// RestoreState packages the recovery for server.Config.Restore.
// recoveryNs is the measured restore + redo-tail wall time, surfaced in
// the restarted engine's metrics breakdown.
func (rv *Recovery) RestoreState(recoveryNs int64) *server.RestoreState {
	return &server.RestoreState{
		Frame:        rv.Frames,
		JoinIdx:      rv.JoinIdx,
		NextClientID: rv.NextClientID,
		Clients:      rv.Clients,
		RecoveryNs:   recoveryNs,
	}
}

// Recover rebuilds the pre-crash world: load the newest valid checkpoint
// in dir, restore its world, and — when tailLog is non-empty — apply the
// redo-log records past the checkpoint's cut point. The tail is applied
// single-threaded in log order, which reproduces the crashed server's
// commit order exactly (the log records commits, whatever interleaving
// produced them — DESIGN.md §11), so the recovered table digest matches
// the crashed server's at its last flushed frame.
//
// tailLog may be "" (checkpoint only) or name a `.qrl` file recorded by
// a StreamRecorder alongside the checkpoints; a torn tail (kill -9 mid
// flush) is cut at the last intact record.
func Recover(dir, tailLog string) (*Recovery, error) {
	ck, err := checkpoint.LoadLatest(dir)
	if err != nil {
		return nil, err
	}
	var lg *Log
	dropped := 0
	if tailLog != "" {
		lg, dropped, err = ReadPrefixFile(tailLog)
		if err != nil {
			return nil, fmt.Errorf("replay: redo log %s: %w", tailLog, err)
		}
	}
	return RecoverFrom(ck, lg, dropped)
}

// RecoverFrom rolls an already-loaded checkpoint forward through an
// already-decoded redo log (which may be nil).
func RecoverFrom(ck *checkpoint.Checkpoint, lg *Log, dropped int) (*Recovery, error) {
	w, err := ck.RestoreWorld()
	if err != nil {
		return nil, err
	}
	rv := &Recovery{
		World:        w,
		Checkpoint:   ck,
		Frames:       ck.Frame,
		TailDropped:  dropped,
		RecItems:     ck.RecItems,
		JoinIdx:      ck.JoinIdx,
		NextClientID: ck.NextClientID,
	}
	// Client set keyed by id; ents maps a client to its player entity.
	clients := make(map[uint16]checkpoint.ClientRec, len(ck.Clients))
	order := make([]uint16, 0, len(ck.Clients)+8)
	for _, c := range ck.Clients {
		clients[c.ID] = c
		order = append(order, c.ID)
	}
	if lg == nil {
		rv.Clients = orderedClients(clients, order)
		return rv, nil
	}
	if lg.WorldSeed != ck.WorldSeed {
		return nil, fmt.Errorf("replay: redo log seed %d does not match checkpoint seed %d", lg.WorldSeed, ck.WorldSeed)
	}
	if ck.RecItems > uint64(len(lg.Items)) {
		// The log is older than the checkpoint (e.g. rotated); nothing to
		// roll forward is fine, a log that ends before the checkpoint cut
		// with items missing is not distinguishable from that, so accept.
		rv.Clients = orderedClients(clients, order)
		return rv, nil
	}

	// The tail cannot be Validate()d like a standalone log: it contains
	// moves and disconnects of clients whose connects happened before the
	// cut. The checkpointed client set seeds the connected set instead.
	lc := &game.LockContext{}
	for i := int(ck.RecItems); i < len(lg.Items); i++ {
		it := &lg.Items[i]
		switch it.Kind {
		case KindTick:
			w.RunWorldFrame(time.Duration(it.DtNs).Seconds())
		case KindMove:
			rec, ok := clients[it.Client]
			if !ok {
				return nil, fmt.Errorf("replay: tail item %d: move of unknown client %d", i, it.Client)
			}
			ent := w.Ents.Get(entity.ID(rec.EntID))
			if ent == nil {
				return nil, fmt.Errorf("replay: tail item %d: client %d has no entity %d", i, it.Client, rec.EntID)
			}
			cmd := it.Cmd
			w.ExecuteMove(ent, &cmd, lc)
			if it.Seq != 0 {
				rec.LastSeq = it.Seq
				clients[it.Client] = rec
			}
		case KindConnect:
			if _, dup := clients[it.Client]; dup {
				return nil, fmt.Errorf("replay: tail item %d: client %d connects while connected", i, it.Client)
			}
			e, err := w.SpawnPlayer()
			if err != nil {
				return nil, fmt.Errorf("replay: tail item %d: %w", i, err)
			}
			if int32(e.ID) != it.Ent {
				return nil, fmt.Errorf("replay: tail item %d: connect of client %d spawned entity %d, log recorded %d",
					i, it.Client, e.ID, it.Ent)
			}
			clients[it.Client] = checkpoint.ClientRec{
				ID:     it.Client,
				EntID:  it.Ent,
				Thread: it.Thread,
				Name:   it.Name,
			}
			order = append(order, it.Client)
			rv.JoinIdx++
			if it.Client >= rv.NextClientID {
				rv.NextClientID = it.Client + 1
			}
		case KindDisconnect:
			rec, ok := clients[it.Client]
			if !ok {
				return nil, fmt.Errorf("replay: tail item %d: disconnect of unknown client %d", i, it.Client)
			}
			w.RemovePlayer(entity.ID(rec.EntID))
			delete(clients, it.Client)
		case KindMigrate:
			if rec, ok := clients[it.Client]; ok {
				rec.Thread = it.To
				clients[it.Client] = rec
			}
		case KindShed:
			// Scheduling decision; no world effect.
		case KindFrame:
			rv.Frames = it.Frame
		}
		rv.TailItems++
	}
	rv.RecItems = uint64(len(lg.Items))
	rv.Clients = orderedClients(clients, order)
	return rv, nil
}

func orderedClients(clients map[uint16]checkpoint.ClientRec, order []uint16) []checkpoint.ClientRec {
	out := make([]checkpoint.ClientRec, 0, len(clients))
	for _, id := range order {
		if c, ok := clients[id]; ok {
			out = append(out, c)
			delete(clients, id)
		}
	}
	return out
}
