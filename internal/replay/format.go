// Package replay implements deterministic record/replay for the game
// server: a Recorder that taps the frame pipeline's deterministic input
// stream (ticks, committed moves, connects/disconnects, migration and
// shed decisions) into a compact length-prefixed binary log, a Replayer
// that re-runs a log through any engine — sequential, parallel, or DES —
// and checks bit-identical world state and normalized reply streams, and
// a delta-debugging Shrinker that reduces a failing log to a minimal
// reproducer. See DESIGN.md §11 for the determinism contract.
package replay

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// Log file layout (all integers little-endian):
//
//	magic   "QRPL"
//	version u16 (currently 1)
//	header record: [len u32][payload][sum u16]
//	    payload: worldSeed i64, protoVer u8, mapJSON bytes
//	records: [kind u8][len u16][payload][sum u16] ...
//
// Each sum is the wire v3 FNV-1a 16-bit fold (protocol.Fold16) over
// everything that precedes it in the record, framing bytes included, so
// a flipped kind or length byte is caught exactly like flipped payload.
// The map is embedded as the qmap JSON serialization: replay must not
// depend on regenerating the map from a config (arena maps and
// hand-edited maps have no generator config).

// Record kinds.
const (
	KindTick       uint8 = 1 // world-physics step: dtNs i64
	KindMove       uint8 = 2 // committed move: client u16, seq u32, cmd (13 bytes)
	KindConnect    uint8 = 3 // admission: client u16, ent i32, thread u8, name string
	KindDisconnect uint8 = 4 // removal: client u16, reason u8
	KindMigrate    uint8 = 5 // balance decision: client u16, to u8
	KindShed       uint8 = 6 // overload ladder level: level u8
	KindFrame      uint8 = 7 // frame-end marker: frame u64
	KindEnd        uint8 = 8 // session end: frames u64, world digest u64
)

// FormatVersion is the current log format version.
//
//qvet:wire=qrpl version
const FormatVersion = 1

//qvet:allow=globalstate written-once format magic, never mutated
var logMagic = [4]byte{'Q', 'R', 'P', 'L'}

// Decode errors. All are wrapped with position context; none of the
// decode paths panic, whatever the input.
var (
	ErrBadMagic    = errors.New("replay: not a replay log (bad magic)")
	ErrBadVersion  = errors.New("replay: unsupported log version")
	ErrTruncated   = errors.New("replay: truncated log")
	ErrChecksum    = errors.New("replay: record checksum mismatch")
	ErrBadRecord   = errors.New("replay: malformed record")
	ErrOutOfOrder  = errors.New("replay: record out of order")
	ErrNoHeader    = errors.New("replay: missing header")
	ErrLogTooLarge = errors.New("replay: log exceeds size limits")
)

// Item is one decoded log record. Kind selects which fields are
// meaningful; the struct is flat (no interface, no pointer) so a log's
// items pack into one slice and the recorder appends without allocating.
//
//qvet:wire=qrpl
type Item struct {
	Kind   uint8
	Client uint16
	Thread uint8
	Reason uint8
	To     uint8
	Level  uint8
	Seq    uint32
	Ent    int32
	DtNs   int64
	Frame  uint64
	Cmd    protocol.MoveCmd
	Name   string
}

// Log is a fully decoded replay log.
//
//qvet:wire=qrpl
type Log struct {
	WorldSeed int64
	ProtoVer  uint8
	// Map is the session's world map, embedded in the log so a replay
	// needs nothing but the log file.
	Map *worldmap.Map
	// mapJSON caches the exact serialized form for re-encoding.
	mapJSON []byte
	Items   []Item
	// End-of-session summary, present when the recorder was finished
	// cleanly (HasEnd): total frames and the recording world's table
	// digest, the target a faithful replay must reproduce.
	HasEnd    bool
	EndFrames uint64
	EndDigest uint64
}

// Ticks counts the world-physics steps in the log — the "frame" count
// in the shrinker's reduction metric.
func (lg *Log) Ticks() int {
	n := 0
	for i := range lg.Items {
		if lg.Items[i].Kind == KindTick {
			n++
		}
	}
	return n
}

// Moves counts committed move records.
func (lg *Log) Moves() int {
	n := 0
	for i := range lg.Items {
		if lg.Items[i].Kind == KindMove {
			n++
		}
	}
	return n
}

// Clients returns the distinct client ids that connect in the log, in
// first-connect order.
func (lg *Log) Clients() []uint16 {
	seen := make(map[uint16]bool)
	var out []uint16
	for i := range lg.Items {
		it := &lg.Items[i]
		if it.Kind == KindConnect && !seen[it.Client] {
			seen[it.Client] = true
			out = append(out, it.Client)
		}
	}
	return out
}

// maxRecordPayload bounds one record's payload; the u16 length field
// enforces it structurally.
const maxRecordPayload = 1<<16 - 1

// maxMapJSON bounds the embedded map blob (default maps are ~100KB of
// JSON; 64MB is far past any map qmap can emit but small enough that a
// corrupted length field cannot drive a giant allocation).
const maxMapJSON = 64 << 20

// Encode serializes the log. The inverse of Decode; Encode∘Decode is
// the identity on the byte level (the map blob is carried verbatim).
//
//qvet:det
//qvet:wire=qrpl encode
func (lg *Log) Encode() ([]byte, error) {
	mapJSON := lg.mapJSON
	if mapJSON == nil {
		if lg.Map == nil {
			return nil, fmt.Errorf("replay: log has no map")
		}
		var mb bytes.Buffer
		if err := lg.Map.Save(&mb); err != nil {
			return nil, fmt.Errorf("replay: serializing map: %w", err)
		}
		mapJSON = mb.Bytes()
	}

	var w protocol.Writer
	w.Buf = make([]byte, 0, 64+len(mapJSON)+len(lg.Items)*16)
	w.Buf = append(w.Buf, logMagic[:]...)
	w.U16(FormatVersion)

	// Header record.
	hdrStart := len(w.Buf)
	w.U32(0) // length placeholder
	w.I64(lg.WorldSeed)
	w.U8(lg.ProtoVer)
	w.Buf = append(w.Buf, mapJSON...)
	putU32(w.Buf[hdrStart:], uint32(len(w.Buf)-hdrStart-4))
	w.U16(protocol.Fold16(w.Buf[hdrStart:]))

	scratch := make([]byte, 0, 32)
	for i := range lg.Items {
		var err error
		w.Buf, scratch, err = appendRecord(w.Buf, scratch, &lg.Items[i])
		if err != nil {
			return nil, err
		}
	}
	if lg.HasEnd {
		end := Item{Kind: KindEnd, Frame: lg.EndFrames, DtNs: int64(lg.EndDigest)}
		var err error
		w.Buf, scratch, err = appendRecord(w.Buf, scratch, &end)
		if err != nil {
			return nil, err
		}
	}
	return w.Buf, nil
}

// appendRecord appends one framed record to dst, using scratch for the
// payload encoding; returns the grown dst and scratch.
func appendRecord(dst, scratch []byte, it *Item) ([]byte, []byte, error) {
	p := protocol.Writer{Buf: scratch[:0]}
	switch it.Kind {
	case KindTick:
		p.I64(it.DtNs)
	case KindMove:
		p.U16(it.Client)
		p.U32(it.Seq)
		encodeCmd(&p, &it.Cmd)
	case KindConnect:
		p.U16(it.Client)
		p.I32(it.Ent)
		p.U8(it.Thread)
		p.String(it.Name)
	case KindDisconnect:
		p.U16(it.Client)
		p.U8(it.Reason)
	case KindMigrate:
		p.U16(it.Client)
		p.U8(it.To)
	case KindShed:
		p.U8(it.Level)
	case KindFrame:
		p.U64(it.Frame)
	case KindEnd:
		p.U64(it.Frame)        // total frames
		p.U64(uint64(it.DtNs)) // world digest (EndDigest aliased into DtNs)
	default:
		return dst, p.Buf, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, it.Kind)
	}
	if len(p.Buf) > maxRecordPayload {
		return dst, p.Buf, fmt.Errorf("%w: record payload %d bytes", ErrLogTooLarge, len(p.Buf))
	}
	start := len(dst)
	dst = append(dst, it.Kind)
	dst = append(dst, byte(len(p.Buf)), byte(len(p.Buf)>>8))
	dst = append(dst, p.Buf...)
	sum := protocol.Fold16(dst[start:])
	dst = append(dst, byte(sum), byte(sum>>8))
	return dst, p.Buf, nil
}

func encodeCmd(w *protocol.Writer, c *protocol.MoveCmd) {
	w.I16(c.Pitch)
	w.I16(c.Yaw)
	w.I16(c.Forward)
	w.I16(c.Side)
	w.I16(c.Up)
	w.U8(c.Buttons)
	w.U8(c.Impulse)
	w.U8(c.Msec)
}

func decodeCmd(r *protocol.Reader, c *protocol.MoveCmd) {
	c.Pitch = r.I16()
	c.Yaw = r.I16()
	c.Forward = r.I16()
	c.Side = r.I16()
	c.Up = r.I16()
	c.Buttons = r.U8()
	c.Impulse = r.U8()
	c.Msec = r.U8()
}

// Decode parses a complete log. It is total: any input — truncated,
// bit-flipped, reordered, or adversarial — yields an error, never a
// panic, and never a partially-poisoned Log (on error the returned Log
// is nil).
//
//qvet:wire=qrpl decode
func Decode(data []byte) (*Log, error) {
	if len(data) < len(logMagic)+2 {
		return nil, ErrTruncated
	}
	if !bytes.Equal(data[:4], logMagic[:]) {
		return nil, ErrBadMagic
	}
	version := uint16(data[4]) | uint16(data[5])<<8
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	pos := 6

	// Header record: [len u32][payload][sum u16].
	if len(data)-pos < 4 {
		return nil, fmt.Errorf("%w: header length", ErrTruncated)
	}
	hlen := int(uint32(data[pos]) | uint32(data[pos+1])<<8 | uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24)
	if hlen < 9 || hlen > maxMapJSON {
		return nil, fmt.Errorf("%w: header payload %d bytes", ErrBadRecord, hlen)
	}
	if len(data)-pos < 4+hlen+2 {
		return nil, fmt.Errorf("%w: header body", ErrTruncated)
	}
	framed := data[pos : pos+4+hlen]
	sum := uint16(data[pos+4+hlen]) | uint16(data[pos+4+hlen+1])<<8
	if protocol.Fold16(framed) != sum {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	hr := protocol.NewReader(framed[4:])
	lg := &Log{}
	lg.WorldSeed = hr.I64()
	lg.ProtoVer = hr.U8()
	mapJSON := framed[4+9:]
	m, err := worldmap.Load(bytes.NewReader(mapJSON))
	if err != nil {
		return nil, fmt.Errorf("replay: embedded map: %w", err)
	}
	lg.Map = m
	lg.mapJSON = append([]byte(nil), mapJSON...)
	pos += 4 + hlen + 2

	// Body records.
	sawEnd := false
	for pos < len(data) {
		if sawEnd {
			return nil, fmt.Errorf("%w: records after end marker", ErrOutOfOrder)
		}
		if len(data)-pos < 3 {
			return nil, fmt.Errorf("%w: record header at %d", ErrTruncated, pos)
		}
		kind := data[pos]
		plen := int(uint16(data[pos+1]) | uint16(data[pos+2])<<8)
		if len(data)-pos < 3+plen+2 {
			return nil, fmt.Errorf("%w: record body at %d", ErrTruncated, pos)
		}
		framed := data[pos : pos+3+plen]
		sum := uint16(data[pos+3+plen]) | uint16(data[pos+3+plen+1])<<8
		if protocol.Fold16(framed) != sum {
			return nil, fmt.Errorf("%w: record at %d", ErrChecksum, pos)
		}
		it, end, err := decodeRecord(kind, framed[3:])
		if err != nil {
			return nil, fmt.Errorf("%w (at %d)", err, pos)
		}
		if end {
			lg.HasEnd = true
			lg.EndFrames = it.Frame
			lg.EndDigest = uint64(it.DtNs)
			sawEnd = true
		} else {
			lg.Items = append(lg.Items, it)
		}
		pos += 3 + plen + 2
	}
	return lg, nil
}

// decodeRecord parses one record payload. end reports a KindEnd record,
// which is folded into the Log summary rather than the item stream.
func decodeRecord(kind uint8, payload []byte) (it Item, end bool, err error) {
	r := protocol.NewReader(payload)
	it.Kind = kind
	switch kind {
	case KindTick:
		it.DtNs = r.I64()
		if it.DtNs <= 0 {
			return it, false, fmt.Errorf("%w: non-positive tick dt", ErrBadRecord)
		}
	case KindMove:
		it.Client = r.U16()
		it.Seq = r.U32()
		decodeCmd(r, &it.Cmd)
	case KindConnect:
		it.Client = r.U16()
		it.Ent = r.I32()
		it.Thread = r.U8()
		it.Name = r.String()
	case KindDisconnect:
		it.Client = r.U16()
		it.Reason = r.U8()
	case KindMigrate:
		it.Client = r.U16()
		it.To = r.U8()
	case KindShed:
		it.Level = r.U8()
	case KindFrame:
		it.Frame = r.U64()
	case KindEnd:
		it.Frame = r.U64()
		it.DtNs = int64(r.U64())
		end = true
	default:
		return it, false, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, kind)
	}
	if r.Err() != nil {
		return it, false, fmt.Errorf("%w: kind %d payload: %v", ErrBadRecord, kind, r.Err())
	}
	if r.Remaining() != 0 {
		return it, false, fmt.Errorf("%w: kind %d has %d trailing payload bytes", ErrBadRecord, kind, r.Remaining())
	}
	return it, end, nil
}

// Validate checks the log's internal consistency beyond framing: every
// move/disconnect names a connected client, connects don't repeat while
// connected, and per-client move sequences advance within the live
// engines' acceptance window. The replayer runs it before driving an
// engine so a corrupt-but-well-framed log fails fast instead of hanging
// a lockstep await.
func (lg *Log) Validate() error {
	connected := make(map[uint16]bool)
	lastSeq := make(map[uint16]uint32)
	for i := range lg.Items {
		it := &lg.Items[i]
		switch it.Kind {
		case KindConnect:
			if connected[it.Client] {
				return fmt.Errorf("%w: item %d: client %d connects twice", ErrOutOfOrder, i, it.Client)
			}
			connected[it.Client] = true
		case KindDisconnect:
			if !connected[it.Client] {
				return fmt.Errorf("%w: item %d: disconnect of unconnected client %d", ErrOutOfOrder, i, it.Client)
			}
			delete(connected, it.Client)
		case KindMove:
			if !connected[it.Client] {
				return fmt.Errorf("%w: item %d: move of unconnected client %d", ErrOutOfOrder, i, it.Client)
			}
			if last, ok := lastSeq[it.Client]; ok && it.Seq != 0 {
				if it.Seq == last || int32(it.Seq-last) < 0 {
					return fmt.Errorf("%w: item %d: client %d seq %d not after %d", ErrOutOfOrder, i, it.Client, it.Seq, last)
				}
				if it.Seq-last > 1<<12 {
					return fmt.Errorf("%w: item %d: client %d seq jumps %d→%d past the acceptance window", ErrOutOfOrder, i, it.Client, last, it.Seq)
				}
			}
			if it.Seq != 0 {
				lastSeq[it.Client] = it.Seq
			}
		}
	}
	return nil
}

// WriteFile encodes the log to path.
func (lg *Log) WriteFile(path string) error {
	data, err := lg.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile decodes a log from path.
func ReadFile(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteTo implements io.WriterTo over the encoded form.
func (lg *Log) WriteTo(w io.Writer) (int64, error) {
	data, err := lg.Encode()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
