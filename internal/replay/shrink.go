package replay

import "fmt"

// Shrink delta-debugs a failing log down to a minimal reproducer. The
// failing predicate re-runs a candidate log (typically through ReplayLive
// or ReplayDES) and reports whether the failure of interest still
// reproduces; Shrink returns the smallest candidate it found for which
// the predicate stayed true. The reduction follows ddmin's structure at
// two granularities matched to the log's shape:
//
//  1. Frame spans: each world tick plus the moves committed after it
//     forms one span; spans are removed in ever-finer chunks.
//  2. Requests: the surviving moves are removed individually, then the
//     surviving ticks, then whole clients (a client's connect,
//     disconnect, and any remaining moves go together).
//
// Candidates stay structurally valid by construction: per-client move
// sequences are renumbered from 1 so Validate's monotonic-window check
// holds after arbitrary drops, scheduling annotations (frame markers,
// migrations, shed levels — replayers ignore them) are dropped outright,
// and the end-of-session summary is cleared (the original's digest no
// longer describes the mutated stream, and a failure predicate must not
// depend on it).
//
// The predicate must be deterministic — replay is, so any predicate
// computed from a replay result qualifies. A predicate that errors
// should return false (the candidate did not reproduce the failure);
// candidates Shrink builds always Validate, so replay errors indicate
// an environmental problem, not a malformed candidate.
func Shrink(lg *Log, failing func(*Log) bool) (*Log, error) {
	base := shrinkState{lg: lg, failing: failing}
	if !failing(base.candidate(nil)) {
		return nil, fmt.Errorf("replay: shrink: the original log does not reproduce the failure")
	}

	// Phase 1: tick-delimited spans.
	spans := base.spans()
	kept := ddmin(indices(len(spans)), func(keep []int) bool {
		drop := make(map[int]bool)
		for _, s := range complementOf(keep, len(spans)) {
			for _, idx := range spans[s] {
				drop[idx] = true
			}
		}
		return failing(base.candidate(drop))
	})
	drop := make(map[int]bool)
	for _, s := range complementOf(kept, len(spans)) {
		for _, idx := range spans[s] {
			drop[idx] = true
		}
	}

	// Phase 2: individual moves.
	base.minimizeKind(drop, KindMove)
	// Phase 3: individual ticks (a span survives as long as any of its
	// moves matters; its tick may still be droppable).
	base.minimizeKind(drop, KindTick)
	// Phase 4: whole clients.
	base.minimizeClients(drop)

	return base.candidate(drop), nil
}

// shrinkState carries the original log and predicate through the phases.
type shrinkState struct {
	lg      *Log
	failing func(*Log) bool
}

// spans groups item indices into tick-delimited frame spans: a span is
// one KindTick and every KindMove up to the next tick. Moves before the
// first tick form a leading tickless span. Other kinds are handled by
// candidate() and belong to no span.
func (s *shrinkState) spans() [][]int {
	var spans [][]int
	cur := -1
	for i := range s.lg.Items {
		switch s.lg.Items[i].Kind {
		case KindTick:
			spans = append(spans, []int{i})
			cur = len(spans) - 1
		case KindMove:
			if cur < 0 {
				spans = append(spans, nil)
				cur = 0
			}
			spans[cur] = append(spans[cur], i)
		}
	}
	return spans
}

// minimizeKind removes surviving items of one kind individually, in
// ddmin's shrinking-chunk order.
func (s *shrinkState) minimizeKind(drop map[int]bool, kind uint8) {
	var alive []int
	for i := range s.lg.Items {
		if s.lg.Items[i].Kind == kind && !drop[i] {
			alive = append(alive, i)
		}
	}
	kept := ddmin(indices(len(alive)), func(keep []int) bool {
		trial := cloneSet(drop)
		for _, u := range complementOf(keep, len(alive)) {
			trial[alive[u]] = true
		}
		return s.failing(s.candidate(trial))
	})
	for _, u := range complementOf(kept, len(alive)) {
		drop[alive[u]] = true
	}
}

// minimizeClients tries to remove each client entirely — its connect,
// disconnect, and any moves still alive — one at a time.
func (s *shrinkState) minimizeClients(drop map[int]bool) {
	byClient := make(map[uint16][]int)
	var order []uint16
	for i := range s.lg.Items {
		it := &s.lg.Items[i]
		switch it.Kind {
		case KindConnect, KindDisconnect, KindMove:
			if _, ok := byClient[it.Client]; !ok {
				order = append(order, it.Client)
			}
			byClient[it.Client] = append(byClient[it.Client], i)
		}
	}
	for _, c := range order {
		trial := cloneSet(drop)
		for _, idx := range byClient[c] {
			trial[idx] = true
		}
		if s.failing(s.candidate(trial)) {
			for _, idx := range byClient[c] {
				drop[idx] = true
			}
		}
	}
}

// candidate builds a structurally valid log from the original minus the
// dropped item set. Frame/migrate/shed annotations are always dropped;
// per-client move sequences are renumbered from 1; the end summary is
// cleared.
func (s *shrinkState) candidate(drop map[int]bool) *Log {
	out := &Log{
		WorldSeed: s.lg.WorldSeed,
		ProtoVer:  s.lg.ProtoVer,
		Map:       s.lg.Map,
		mapJSON:   s.lg.mapJSON,
	}
	seq := make(map[uint16]uint32)
	for i := range s.lg.Items {
		if drop[i] {
			continue
		}
		it := s.lg.Items[i]
		switch it.Kind {
		case KindFrame, KindMigrate, KindShed:
			continue
		case KindMove:
			seq[it.Client]++
			it.Seq = seq[it.Client]
		case KindDisconnect:
			// A reconnect under the same client id starts a fresh
			// sequence stream, exactly as the recorder saw it.
			delete(seq, it.Client)
		}
		out.Items = append(out.Items, it)
	}
	return out
}

// ddmin is the complement-reduction half of Zeller's delta debugging:
// split the surviving units into n chunks, try dropping each chunk; on
// success restart from the reduced set, otherwise double the
// granularity until single-unit chunks have all been tried.
func ddmin(units []int, pred func(keep []int) bool) []int {
	n := 2
	for len(units) >= 2 {
		chunk := (len(units) + n - 1) / n
		reduced := false
		for start := 0; start < len(units); start += chunk {
			end := start + chunk
			if end > len(units) {
				end = len(units)
			}
			keep := make([]int, 0, len(units)-(end-start))
			keep = append(keep, units[:start]...)
			keep = append(keep, units[end:]...)
			if len(keep) < len(units) && pred(keep) {
				units = keep
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(units) {
				break
			}
			n *= 2
			if n > len(units) {
				n = len(units)
			}
		}
	}
	if len(units) == 1 && pred(nil) {
		return nil
	}
	return units
}

// indices returns [0, 1, ... n-1].
func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// complementOf returns the unit numbers of [0,n) missing from keep,
// which must be sorted ascending (ddmin preserves order).
func complementOf(keep []int, n int) []int {
	out := make([]int, 0, n-len(keep))
	k := 0
	for i := 0; i < n; i++ {
		if k < len(keep) && keep[k] == i {
			k++
			continue
		}
		out = append(out, i)
	}
	return out
}

func cloneSet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
