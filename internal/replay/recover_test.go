package replay

import (
	"os"
	"path/filepath"
	"testing"

	"qserve/internal/checkpoint"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/simserver"
	"qserve/internal/worldmap"
)

// TestDigestMatchesReplay pins checkpoint.DigestEntities to TableDigest
// bit for bit: the two folds are duplicated across the packages (the
// import arrow points replay→checkpoint, so checkpoint cannot call
// TableDigest) and this test is the contract that keeps them identical.
func TestDigestMatchesReplay(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := game.NewWorld(game.Config{Map: m, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lc := &game.LockContext{}
	for i := 0; i < 3; i++ {
		e, err := w.SpawnPlayer()
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			cmd := protocol.MoveCmd{Forward: 300, Yaw: protocol.AngleToWire(float64(i*120 + f)), Buttons: 1, Msec: 16}
			w.ExecuteMove(e, &cmd, lc)
			w.RunWorldFrame(0.033)
		}
	}

	dir := t.TempDir()
	wr, err := checkpoint.NewWriter(checkpoint.Config{Dir: dir, WorldSeed: 11, Map: m})
	if err != nil {
		t.Fatal(err)
	}
	if !wr.Begin(w, checkpoint.Meta{Frame: 60}) {
		t.Fatal("capture skipped")
	}
	st := wr.Commit()
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Entities == 0 {
		t.Fatal("empty capture")
	}

	ck, err := checkpoint.ReadFile(filepath.Join(dir, checkpoint.FileName(60, true)))
	if err != nil {
		t.Fatal(err)
	}
	live := TableDigest(w)
	if ck.Digest != live {
		t.Fatalf("writer digest %016x != TableDigest %016x", ck.Digest, live)
	}
	if got := checkpoint.DigestEntities(ck.WorldTime, ck.Entities); got != live {
		t.Fatalf("DigestEntities %016x != TableDigest %016x — the two folds drifted apart", got, live)
	}

	// And the restored world folds identically under TableDigest too.
	rw, err := ck.RestoreWorld()
	if err != nil {
		t.Fatal(err)
	}
	if TableDigest(rw) != live {
		t.Fatalf("restored world folds %016x, live world %016x", TableDigest(rw), live)
	}
}

// recoverScript is the deterministic drive used by the recovery matrix.
func recoverScript() SessionScript {
	return SessionScript{
		Players: 6,
		Moves:   40,
		Cmd: func(player int, step int64) protocol.MoveCmd {
			return protocol.MoveCmd{
				Forward: 320,
				Side:    int16((step%7 - 3) * 50),
				Yaw:     protocol.AngleToWire(float64((player*60 + int(step)*11) % 360)),
				Buttons: uint8(step % 2),
				Msec:    16,
			}
		},
	}
}

// TestRecoverCrossEngine is the durability acceptance matrix: record a
// session on each live engine configuration with checkpointing on, then
// cold-start from the newest checkpoint in the directory plus the log
// as redo tail, and require the recovered world to fold to exactly the
// digest the session ended with. The tail replay crosses the engines'
// scheduling differences — the checkpoint cut can land anywhere — so
// passing here means checkpoint + redo log reconstruct the pre-crash
// state regardless of which engine produced it.
func TestRecoverCrossEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery matrix is a long test")
	}
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	const seed = int64(23)

	configs := []LiveConfig{
		{Threads: 0},
		{Threads: 2},
		{Threads: 4, Balance: true},
		{Threads: 4, Stealing: true},
		{Threads: 8, Balance: true, Stealing: true},
	}
	for _, lc := range configs {
		lc := lc
		t.Run(lc.String(), func(t *testing.T) {
			dir := t.TempDir()
			wr, err := checkpoint.NewWriter(checkpoint.Config{
				Dir: dir, WorldSeed: seed, Map: m, Interval: 8, DeltaEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			lc.Checkpoint = wr
			lg, res, err := RecordSession(m, seed, lc, recoverScript())
			if err != nil {
				t.Fatal(err)
			}
			if err := wr.Close(); err != nil {
				t.Fatal(err)
			}
			if !res.EndDigestMatch {
				t.Fatal("lockstep recording should match its own end digest")
			}

			// The recorded log doubles as the redo tail a StreamRecorder
			// would have left behind.
			data, err := lg.Encode()
			if err != nil {
				t.Fatal(err)
			}
			tail := filepath.Join(t.TempDir(), "session.qrl")
			if err := os.WriteFile(tail, data, 0o644); err != nil {
				t.Fatal(err)
			}

			rv, err := Recover(dir, tail)
			if err != nil {
				t.Fatal(err)
			}
			if got := TableDigest(rv.World); got != res.TableDigest {
				t.Fatalf("recovered world folds %016x, session ended at %016x (checkpoint frame %d, %d tail items)",
					got, res.TableDigest, rv.Checkpoint.Frame, rv.TailItems)
			}
			if rv.Checkpoint.Frame == 0 {
				t.Fatal("no checkpoint was ever captured")
			}
			t.Logf("%s: recovered from frame %d (+%d tail items, %d clients)",
				lc, rv.Checkpoint.Frame, rv.TailItems, len(rv.Clients))
		})
	}
}

// TestRecoverDES runs the recovery arm on the discrete-event engine: a
// deterministic playback run captures checkpoints and re-records its
// input stream; recovery from the newest checkpoint plus that stream
// must land on the DES run's exact final table.
func TestRecoverDES(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	const seed = int64(23)

	// A lockstep live session provides the input stream.
	lg, _, err := RecordSession(m, seed, LiveConfig{Threads: 2}, recoverScript())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ToPlayback(lg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	wr, err := checkpoint.NewWriter(checkpoint.Config{
		Dir: dir, WorldSeed: seed, Map: m, Interval: 10, DeltaEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(m, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simserver.Run(simserver.Config{
		Map:        m,
		Threads:    2,
		Seed:       seed,
		Playback:   pb,
		Record:     rec,
		Checkpoint: wr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	want := TableDigest(res.World)

	desLog := rec.Finish(res.World)
	data, err := desLog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tail := filepath.Join(t.TempDir(), "des.qrl")
	if err := os.WriteFile(tail, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rv, err := Recover(dir, tail)
	if err != nil {
		t.Fatal(err)
	}
	if got := TableDigest(rv.World); got != want {
		t.Fatalf("DES recovery folds %016x, run ended at %016x (checkpoint frame %d, %d tail items)",
			got, want, rv.Checkpoint.Frame, rv.TailItems)
	}
	if rv.Checkpoint.Frame == 0 {
		t.Fatal("the DES run never captured a checkpoint")
	}
	if res.Avg.Checkpoints == 0 || res.Avg.CheckpointBytes == 0 {
		t.Fatalf("DES breakdown did not account the captures: %+v", res.Avg)
	}
}
