package replay

import (
	"bytes"
	"testing"

	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// FuzzDecodeLog drives Decode with arbitrary bytes. The decoder's
// contract: any input — truncated, bit-flipped, reordered, adversarial —
// yields an error or a well-formed Log, and NEVER panics. The seed
// corpus is recorder-produced (a real session log plus structured
// mutations of it), so coverage starts deep inside the record framing
// rather than at the magic check.
func FuzzDecodeLog(f *testing.F) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		f.Fatal(err)
	}
	lg := &Log{
		WorldSeed: 5,
		ProtoVer:  protocol.Version,
		Map:       m,
		Items: []Item{
			{Kind: KindConnect, Client: 0, Ent: 1, Name: "fuzz"},
			{Kind: KindTick, DtNs: 16_000_000},
			{Kind: KindMove, Client: 0, Seq: 1, Cmd: protocol.MoveCmd{Forward: 100, Msec: 33}},
			{Kind: KindMigrate, Client: 0, To: 1},
			{Kind: KindShed, Level: 2},
			{Kind: KindFrame, Frame: 1},
			{Kind: KindDisconnect, Client: 0},
		},
		HasEnd:    true,
		EndFrames: 2,
		EndDigest: 42,
	}
	seed, err := lg.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])    // truncated mid-stream
	f.Add(seed[:7])              // truncated header
	f.Add([]byte{})              // empty
	f.Add([]byte("QRPL"))        // magic only
	f.Add(bytes.Repeat(seed, 2)) // records after end marker
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0x40 // flipped bit mid-log
	f.Add(corrupt)
	swapped := append([]byte(nil), seed...)
	swapped[4], swapped[5] = 2, 0 // future version
	f.Add(swapped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if got != nil {
				t.Fatal("Decode returned both a log and an error")
			}
			return
		}
		// A successfully decoded log must survive re-encoding, and the
		// re-encode must decode to the same item stream (the codec is a
		// bijection on its valid range).
		out, err := got.Encode()
		if err != nil {
			t.Fatalf("decoded log does not re-encode: %v", err)
		}
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded log does not decode: %v", err)
		}
		if len(back.Items) != len(got.Items) {
			t.Fatalf("re-encode changed item count: %d → %d", len(got.Items), len(back.Items))
		}
	})
}
