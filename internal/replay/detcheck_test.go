package replay

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestDeterminismAudit enforces the record/replay determinism contract
// (DESIGN.md §11) by shelling out to qvet's detcore analyzer, which
// walks the static call closure of every //qvet:det root — ExecuteMove,
// RunWorldFrame, the checkpoint/replay encoders, and the digest folds —
// and rejects wall-clock reads, process-global math/rand draws, and
// order-sensitive map iteration (DESIGN.md §9).
//
// This used to be a hand-rolled AST audit over a hard-coded package
// list; detcore subsumes it with a real type-checked callgraph, so the
// audited set now follows the code (any function the det roots reach)
// instead of a directory list that could silently go stale. Map order,
// which the old audit left to the dynamic digest comparison in
// TestReplayIsRepeatable, is now checked statically too.
func TestDeterminismAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go run")
	}
	toolsDir, err := filepath.Abs(filepath.Join("..", "..", "tools"))
	if err != nil {
		t.Fatal(err)
	}
	repoRoot := filepath.Dir(toolsDir)
	cmd := exec.Command("go", "run", "./qvet", "-C", repoRoot, "-checks=detcore", "./...")
	cmd.Dir = toolsDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("qvet -checks=detcore ./... failed:\n%s\nerror: %v", out, err)
	}
}
