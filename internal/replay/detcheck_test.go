package replay

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestDeterminismAudit statically enforces the record/replay determinism
// contract (DESIGN.md §11) on the world-evolution core: the packages
// whose code runs under ExecuteMove/RunWorldFrame must be pure functions
// of (world state, inputs, seed).
//
//   - No math/rand import at all in the core: randomness must come from
//     the world's seeded source, or not exist.
//   - No wall-clock reads (time.Now / time.Since / time.After / the
//     argless time.Tick family): frame logic gets dt as a parameter; the
//     engines read the clock once per frame through Config.Clock, which
//     the replayer virtualizes.
//   - worldmap may use math/rand (generation is seeded and the generated
//     map is embedded in every log), but only through explicit sources —
//     rand.New(rand.NewSource(seed)) — never the process-global one.
//
// Map-iteration order, the third classic nondeterminism source, is
// enforced dynamically: bit-identical digests across repeated replays
// (TestReplayIsRepeatable) diverge within a frame or two if any frame
// path ranges over a map.
func TestDeterminismAudit(t *testing.T) {
	root := "../.."
	core := []string{"game", "physics", "collide", "entity", "areanode", "geom"}
	for _, pkg := range core {
		auditDir(t, filepath.Join(root, "internal", pkg), auditRules{
			banRandImport: true,
			banWallClock:  true,
		})
	}
	auditDir(t, filepath.Join(root, "internal", "worldmap"), auditRules{
		banWallClock:  true,
		banGlobalRand: true,
		// New/NewSource build explicit seeded sources; Rand/Source are
		// type names in signatures, not draws from the global source.
		allowRandIdents: map[string]bool{"New": true, "NewSource": true, "Rand": true, "Source": true},
	})
}

type auditRules struct {
	banRandImport   bool
	banWallClock    bool
	banGlobalRand   bool
	allowRandIdents map[string]bool
}

var wallClockCalls = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

func auditDir(t *testing.T, dir string, rules auditRules) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	fset := token.NewFileSet()
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		// Track the local names the forbidden packages are imported
		// under, so aliased imports can't dodge the selector checks.
		timeNames := map[string]bool{}
		randNames := map[string]bool{}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			local := ""
			if imp.Name != nil {
				local = imp.Name.Name
			}
			switch p {
			case "math/rand", "math/rand/v2":
				if rules.banRandImport {
					t.Errorf("%s: imports %s — the deterministic core must draw randomness from the world seed", path, p)
				}
				if local == "" {
					local = "rand"
				}
				randNames[local] = true
			case "time":
				if local == "" {
					local = "time"
				}
				timeNames[local] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if rules.banWallClock && timeNames[id.Name] && wallClockCalls[sel.Sel.Name] {
				t.Errorf("%s: %s: calls %s.%s — frame logic must take dt as input (Config.Clock is the only clock read)",
					path, fset.Position(sel.Pos()), id.Name, sel.Sel.Name)
			}
			if rules.banGlobalRand && randNames[id.Name] && !rules.allowRandIdents[sel.Sel.Name] {
				t.Errorf("%s: %s: calls %s.%s — only explicit seeded sources (rand.New(rand.NewSource(seed))) are allowed",
					path, fset.Position(sel.Pos()), id.Name, sel.Sel.Name)
			}
			return true
		})
	}
}
