package replay

import (
	"fmt"

	"qserve/internal/balance"
	"qserve/internal/simserver"
)

// ToPlayback converts a validated log into the discrete-event engine's
// playback stream. Recorded client IDs become dense indices in
// first-connect order; a reconnect after a disconnect gets a fresh
// index (it is a fresh entity).
func ToPlayback(lg *Log) (*simserver.Playback, error) {
	if err := lg.Validate(); err != nil {
		return nil, err
	}
	pb := &simserver.Playback{Items: make([]simserver.PlayItem, 0, len(lg.Items))}
	idx := make(map[uint16]int)
	for i := range lg.Items {
		it := &lg.Items[i]
		switch it.Kind {
		case KindTick:
			pb.Items = append(pb.Items, simserver.PlayItem{Kind: simserver.PlayTick, DtNs: it.DtNs})
		case KindConnect:
			idx[it.Client] = pb.Clients
			pb.Items = append(pb.Items, simserver.PlayItem{
				Kind: simserver.PlayConnect, Client: pb.Clients, Name: it.Name,
			})
			pb.Clients++
		case KindMove:
			d, ok := idx[it.Client]
			if !ok {
				return nil, fmt.Errorf("replay: log item %d: move for unconnected client %d", i, it.Client)
			}
			pb.Items = append(pb.Items, simserver.PlayItem{
				Kind: simserver.PlayMove, Client: d, Seq: it.Seq, Cmd: it.Cmd,
			})
		case KindDisconnect:
			d, ok := idx[it.Client]
			if !ok {
				return nil, fmt.Errorf("replay: log item %d: disconnect for unconnected client %d", i, it.Client)
			}
			pb.Items = append(pb.Items, simserver.PlayItem{Kind: simserver.PlayDisconnect, Client: d})
			delete(idx, it.Client)
		case KindMigrate, KindShed, KindFrame:
			// Scheduling records; the DES makes its own decisions.
		}
	}
	return pb, nil
}

// ReplayDES re-runs a log through the discrete-event engine and digests
// the resulting world. threads == 0 selects the sequential DES arm. The
// DES has no wire, so only the entity-table digest is comparable with
// live replays — which is exactly the cross-engine claim: the same log
// must evolve the same world on every engine.
func ReplayDES(lg *Log, lc LiveConfig) (*Result, error) {
	pb, err := ToPlayback(lg)
	if err != nil {
		return nil, err
	}
	pol := balance.Policy{}
	if lc.Balance {
		pol = balance.Policy{Enabled: true, EveryFrame: true, MaxMigrations: 4}
	}
	threads := lc.Threads
	sequential := false
	if threads == 0 {
		threads = 1
		sequential = true
	}
	res, err := simserver.Run(simserver.Config{
		Map:           lg.Map,
		Players:       pb.Clients,
		Threads:       threads,
		Sequential:    sequential,
		Seed:          lg.WorldSeed,
		ClientFrameMs: 33,
		Playback:      pb,
		Balance:       pol,
		Stealing:      lc.Stealing,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Config: lc}
	out.TableDigest = TableDigest(res.World)
	out.EndDigestMatch = lg.HasEnd && lg.EndDigest == out.TableDigest
	out.World = res.World
	for i := range pb.Items {
		switch pb.Items[i].Kind {
		case simserver.PlayMove:
			out.Moves++
		case simserver.PlayTick:
			out.Ticks++
		}
	}
	return out, nil
}
