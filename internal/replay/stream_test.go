package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// tapScript drives the same sequence of recorder taps into any
// server.Recorder implementation.
func tapScript(r interface {
	RecordTick(int64)
	RecordMove(uint16, uint32, *protocol.MoveCmd)
	RecordConnect(uint16, int32, int, string)
	RecordDisconnect(uint16, uint8)
	RecordMigrate(uint16, int)
	RecordShed(int)
	RecordFrameEnd(uint64)
}) {
	r.RecordConnect(0, 1, 0, "alice")
	r.RecordConnect(1, 2, 1, "bob")
	for f := uint64(1); f <= 12; f++ {
		r.RecordTick(16_000_000)
		cmd := protocol.MoveCmd{Forward: 200, Yaw: int16(f * 100), Msec: 16}
		r.RecordMove(0, uint32(f), &cmd)
		cmd.Side = int16(f)
		r.RecordMove(1, uint32(f), &cmd)
		if f == 4 {
			r.RecordMigrate(1, 0)
		}
		if f == 6 {
			r.RecordShed(1)
			r.RecordShed(1) // duplicate level: must not be logged twice
		}
		r.RecordFrameEnd(f)
	}
	r.RecordDisconnect(1, 2)
	r.RecordFrameEnd(13)
}

// TestStreamRecorderMatchesRecorder drives identical taps through the
// in-memory Recorder and the durable StreamRecorder and requires the
// `.qrl` file to decode to the identical item stream — the stream
// recorder is a drop-in sibling, not a second format.
func TestStreamRecorderMatchesRecorder(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewRecorder(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.qrl")
	st, err := NewStreamRecorder(path, m, 9)
	if err != nil {
		t.Fatal(err)
	}
	tapScript(mem)
	tapScript(st)
	if mem.Items() != st.Items() || mem.TickCount() != st.TickCount() {
		t.Fatalf("tap counters diverge: %d/%d items, %d/%d ticks",
			mem.Items(), st.Items(), mem.TickCount(), st.TickCount())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	lg, dropped, err := ReadPrefixFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("clean close left %d dangling bytes", dropped)
	}
	memLog := mem.Finish(nil)
	if !reflect.DeepEqual(lg.Items, memLog.Items) {
		t.Fatalf("streams diverge: %d vs %d items", len(lg.Items), len(memLog.Items))
	}
	if lg.WorldSeed != 9 || lg.HasEnd {
		t.Fatalf("stream log header wrong: seed %d, hasEnd %v", lg.WorldSeed, lg.HasEnd)
	}
}

// TestDecodePrefixTorn cuts a streamed log at every byte offset past the
// header — the kill -9 cases — and requires DecodePrefix to return an
// item-aligned prefix of the original stream, never an error, a panic,
// or items that were not in the log.
func TestDecodePrefixTorn(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.qrl")
	st, err := NewStreamRecorder(path, m, 9)
	if err != nil {
		t.Fatal(err)
	}
	tapScript(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, dropped, err := DecodePrefix(data)
	if err != nil || dropped != 0 {
		t.Fatalf("full decode: %v (%d dropped)", err, dropped)
	}

	headerEnd := len(data) - streamBodyLen(t, data, len(full.Items))
	stride := 1
	if len(data)-headerEnd > 8192 {
		stride = 13
	}
	prevItems := 0
	for cut := headerEnd; cut <= len(data); cut += stride {
		lg, drop, err := DecodePrefix(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if drop != cut-alignedEnd(data, headerEnd, cut) {
			t.Fatalf("cut at %d: dropped %d bytes, expected %d", cut, drop, cut-alignedEnd(data, headerEnd, cut))
		}
		if len(lg.Items) < prevItems {
			t.Fatalf("cut at %d: prefix shrank from %d to %d items", cut, prevItems, len(lg.Items))
		}
		prevItems = len(lg.Items)
		if len(lg.Items) > 0 && !reflect.DeepEqual(lg.Items, full.Items[:len(lg.Items)]) {
			t.Fatalf("cut at %d: prefix is not a prefix", cut)
		}
	}
	if prevItems != len(full.Items) {
		t.Fatalf("full-length cut lost items: %d vs %d", prevItems, len(full.Items))
	}

	// Garbage appended past a valid stream is dropped, not decoded.
	garbage := append(append([]byte(nil), data...), 0xDE, 0xAD, 0xBE)
	lg, drop, err := DecodePrefix(garbage)
	if err != nil {
		t.Fatal(err)
	}
	if drop != 3 || len(lg.Items) != len(full.Items) {
		t.Fatalf("garbage tail: dropped %d, %d items", drop, len(lg.Items))
	}
}

// streamBodyLen computes the record-body byte length by re-walking the
// frame structure (header length is data-dependent via the embedded
// map).
func streamBodyLen(t *testing.T, data []byte, _ int) int {
	t.Helper()
	pos := 6
	hlen := int(uint32(data[pos]) | uint32(data[pos+1])<<8 | uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24)
	return len(data) - (pos + 4 + hlen + 2)
}

// alignedEnd returns the largest record-aligned offset ≤ cut.
func alignedEnd(data []byte, headerEnd, cut int) int {
	p := headerEnd
	for p < cut {
		if cut-p < 3 {
			return p
		}
		plen := int(uint16(data[p+1]) | uint16(data[p+2])<<8)
		if cut-p < 3+plen+2 {
			return p
		}
		p += 3 + plen + 2
	}
	return p
}

// TestStreamRecorderSurvivesTornTail is the end-to-end shape of the
// crash: append garbage (a torn in-flight frame) to a streamed log and
// check reading it back still yields every flushed frame.
func TestStreamRecorderSurvivesTornTail(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.qrl")
	st, err := NewStreamRecorder(path, m, 9)
	if err != nil {
		t.Fatal(err)
	}
	tapScript(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0x5A}, 17)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	lg, dropped, err := ReadPrefixFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("the torn tail was not detected")
	}
	if len(lg.Items) == 0 {
		t.Fatal("flushed frames were lost")
	}
}
