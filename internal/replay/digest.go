package replay

import (
	"math"

	"qserve/internal/entity"
	"qserve/internal/game"
)

// fnv64 is the 64-bit FNV-1a fold all replay digests use — the same
// hash family as the wire checksum, widened so a whole session's state
// folds without birthday trouble.
type fnv64 uint64

const fnv64Offset fnv64 = 14695981039346656037
const fnv64Prime fnv64 = 1099511628211

func (h fnv64) byte(b byte) fnv64 {
	h ^= fnv64(b)
	return h * fnv64Prime
}

func (h fnv64) u64(v uint64) fnv64 {
	for i := 0; i < 8; i++ {
		h = h.byte(byte(v >> (8 * i)))
	}
	return h
}

func (h fnv64) u32(v uint32) fnv64 {
	for i := 0; i < 4; i++ {
		h = h.byte(byte(v >> (8 * i)))
	}
	return h
}

func (h fnv64) i64(v int64) fnv64   { return h.u64(uint64(v)) }
func (h fnv64) f64(v float64) fnv64 { return h.u64(math.Float64bits(v)) }
func (h fnv64) bool(v bool) fnv64 {
	if v {
		return h.byte(1)
	}
	return h.byte(0)
}

func (h fnv64) bytes(b []byte) fnv64 {
	for _, c := range b {
		h = h.byte(c)
	}
	return h
}

// TableDigest folds the complete mutable world state — every active
// entity's fields in ID order, plus the world clock — into one 64-bit
// value. Two worlds with equal digests went through the same evolution
// bit for bit: positions and velocities are folded as raw float64 bits,
// so even a ULP of drift between engines is caught.
//
//qvet:det
func TableDigest(w *game.World) uint64 {
	h := fnv64Offset
	h = h.f64(w.Time)
	w.Ents.ForEach(func(e *entity.Entity) {
		h = h.u32(uint32(e.ID))
		h = h.byte(byte(e.Class))
		h = h.f64(e.Origin.X).f64(e.Origin.Y).f64(e.Origin.Z)
		h = h.f64(e.Velocity.X).f64(e.Velocity.Y).f64(e.Velocity.Z)
		h = h.f64(e.Angles.X).f64(e.Angles.Y).f64(e.Angles.Z)
		h = h.bool(e.OnGround)
		h = h.i64(int64(e.Health)).i64(int64(e.Armor))
		h = h.i64(int64(e.Frags)).i64(int64(e.Deaths))
		h = h.byte(e.Weapon).u32(uint32(e.Weapons)).i64(int64(e.Ammo))
		h = h.bool(e.HasPowerup).f64(e.PowerupUntil)
		h = h.byte(byte(e.ItemClass)).i64(int64(e.ItemSpawn)).f64(e.RespawnAt)
		h = h.u32(uint32(e.Owner)).i64(int64(e.Damage)).f64(e.DieAt)
		h = h.f64(e.RespawnTime).f64(e.RefireAt).f64(e.NextThink)
	})
	return uint64(h)
}

// streamDigest accumulates a client's normalized reply stream. Snapshot
// datagrams are folded raw — every byte the server sent — except the
// two fields that legitimately differ across engines while representing
// the same information:
//
//   - Frame: engines disagree on absolute frame numbers (a parallel
//     frame forms per datagram group, a DES frame per virtual-time
//     batch). It is rewritten to the client's reply ordinal.
//   - BaseFrame: names the snapshot that established the delta baseline
//     as Frame+1; rewritten through the same ordinal map.
//
// Everything else — AckSeq, ServerTime, the player state, the delta
// set, events, even field order — must match exactly or the digests
// diverge.
type streamDigest struct {
	h        fnv64
	replies  uint32
	frameOrd map[uint32]uint32 // recorded Frame+1 → reply ordinal
}

func newStreamDigest() *streamDigest {
	return &streamDigest{h: fnv64Offset, frameOrd: make(map[uint32]uint32)}
}

// Snapshot wire offsets (after the 3-byte magic/version/type prefix):
// Frame u32, AckSeq u32, BaseFrame u32, ServerTime u32, then state. The
// trailing 2 bytes are the wire checksum, excluded from the fold (it
// covers the raw Frame/BaseFrame values being rewritten).
const (
	snapFrameOff = 3
	snapBaseOff  = 11
	snapTailSum  = 2
)

// addSnapshot folds one received snapshot datagram. data is the raw
// datagram; frame and baseFrame are its decoded header fields.
func (sd *streamDigest) addSnapshot(data []byte, frame, baseFrame uint32) {
	sd.replies++
	ord := sd.replies
	sd.frameOrd[frame+1] = ord
	baseOrd := uint32(0)
	if baseFrame != 0 {
		baseOrd = sd.frameOrd[baseFrame] // 0 when unknown: still deterministic
	}
	for i, b := range data[:len(data)-snapTailSum] {
		switch {
		case i >= snapFrameOff && i < snapFrameOff+4:
			b = byte(ord >> (8 * (i - snapFrameOff)))
		case i >= snapBaseOff && i < snapBaseOff+4:
			b = byte(baseOrd >> (8 * (i - snapBaseOff)))
		}
		sd.h = sd.h.byte(b)
	}
}

func (sd *streamDigest) sum() uint64 { return uint64(sd.h) }

// combineStreams folds per-client stream digests, in recorded-client-id
// order, into the session stream digest.
func combineStreams(ids []uint16, digests map[uint16]uint64) uint64 {
	h := fnv64Offset
	for _, id := range ids {
		h = h.u32(uint32(id))
		h = h.u64(digests[id])
	}
	return uint64(h)
}
