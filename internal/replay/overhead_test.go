package replay

import (
	"testing"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// TestRecorderZeroAllocs gates the steady-state allocation contract: a
// reserved recorder's hot-path taps (move, tick, frame end) allocate
// nothing. This is what makes attaching a recorder to a production
// server free of GC pressure.
func TestRecorderZeroAllocs(t *testing.T) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 1000
	rec.Reserve(3 * rounds * 100)
	cmd := protocol.MoveCmd{Forward: 120, Yaw: 90, Msec: 33}
	var frame uint64
	allocs := testing.AllocsPerRun(rounds, func() {
		for i := 0; i < 100; i++ {
			rec.RecordMove(uint16(i&15), uint32(i), &cmd)
		}
		rec.RecordTick(16_000_000)
		rec.RecordFrameEnd(frame)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("recorder hot path allocates %.1f times per frame; want 0", allocs)
	}
}

// TestRecorderOverheadBudget gates the CPU contract: one RecordMove tap
// must cost under 5%% of the move execution it rides on, measured
// against ExecuteMove on a 96-player world (the paper's largest
// single-server population). The recorder is an append of a flat struct
// under an uncontended mutex — it measures around 0.1%% — so the 5%%
// gate has wide headroom against machine noise.
func TestRecorderOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	w, ents := bench96(t)
	cmd := protocol.MoveCmd{Forward: 240, Yaw: 45, Buttons: protocol.BtnFire, Msec: 33}

	moveNs := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ents[i%len(ents)]
			c := cmd
			c.Yaw = int16(i)
			w.ExecuteMove(e, &c, &game.LockContext{})
		}
	}).NsPerOp()

	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	tapNs := testing.Benchmark(func(b *testing.B) {
		rec, err := NewRecorder(m, 1)
		if err != nil {
			b.Fatal(err)
		}
		rec.Reserve(b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.RecordMove(uint16(i&63), uint32(i), &cmd)
		}
	}).NsPerOp()

	if moveNs <= 0 {
		t.Fatalf("degenerate ExecuteMove measurement: %d ns/op", moveNs)
	}
	pct := 100 * float64(tapNs) / float64(moveNs)
	t.Logf("RecordMove %d ns/op vs ExecuteMove %d ns/op on 96 players: %.2f%% overhead", tapNs, moveNs, pct)
	if pct >= 5 {
		t.Fatalf("recorder overhead %.2f%% of frame move cost; budget is 5%%", pct)
	}
}

// BenchmarkRecorderOverhead reports the raw tap cost for CI trending.
func BenchmarkRecorderOverhead(b *testing.B) {
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		b.Fatal(err)
	}
	rec, err := NewRecorder(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	rec.Reserve(b.N)
	cmd := protocol.MoveCmd{Forward: 120, Yaw: 90, Msec: 33}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.RecordMove(uint16(i&63), uint32(i), &cmd)
	}
}

// bench96 builds a 96-player world for the overhead measurements.
func bench96(t testing.TB) (*game.World, []*entity.Entity) {
	t.Helper()
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 3, MaxEntities: 96*4 + len(m.Items) + 64})
	if err != nil {
		t.Fatal(err)
	}
	ents := make([]*entity.Entity, 96)
	for i := range ents {
		e, err := w.SpawnPlayer()
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = e
	}
	return w, ents
}
