package replay

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"qserve/internal/balance"
	"qserve/internal/checkpoint"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// LiveConfig selects which live engine a replay (or recording session)
// runs on. Threads == 0 is the sequential engine; otherwise the
// parallel engine with that many workers. Balance forces the
// every-frame migration policy the conformance suite uses; Stealing
// turns on the work-stealing request scheduler. None of these may
// change what the world computes — that is exactly the claim a replay
// checks.
type LiveConfig struct {
	Threads  int
	Balance  bool
	Stealing bool

	// Checkpoint, when non-nil, is handed to the engine as
	// server.Config.Checkpoint, so the driven session captures durable
	// checkpoints at its frame barriers — the crash-recovery acceptance
	// arm records a session with this set and then recovers from the
	// newest checkpoint plus the log tail (DESIGN.md §12). Checkpointing
	// never changes what the world computes.
	Checkpoint *checkpoint.Writer
}

// String names the configuration the way the conformance tables do.
func (c LiveConfig) String() string {
	if c.Threads == 0 {
		return "sequential"
	}
	return fmt.Sprintf("parallel/threads=%d/balance=%v/steal=%v", c.Threads, c.Balance, c.Stealing)
}

// Result is what one replay run produced: the world-state digest, the
// normalized per-client reply-stream digest, and fidelity counters
// against the log's end record.
type Result struct {
	Config LiveConfig
	// TableDigest folds the final world state (see TableDigest).
	TableDigest uint64
	// StreamDigest folds every client's normalized reply stream in
	// recorded-client order.
	StreamDigest uint64
	// Replies is the total number of snapshots folded into StreamDigest.
	Replies int
	// Moves/Ticks count the log items actually driven.
	Moves int
	Ticks int
	// EndDigestMatch reports whether TableDigest equals the digest the
	// recorder stamped at capture time. True whenever the recording was
	// lockstep-driven; a free-running recording may have committed a
	// different (but equally legal) serialization than the one its log
	// preserves, so for those this is informational (DESIGN.md §11).
	EndDigestMatch bool
	// IDMismatches counts connects whose replayed entity ID differed
	// from the recorded one — same caveat as EndDigestMatch.
	IDMismatches int
	// World is the final world, for inspection beyond the digest.
	World *game.World
}

// replayAwait bounds how long the driver waits for any single engine
// response before declaring the replay wedged.
const replayAwait = 10 * time.Second

// tickPingLimit bounds the ping retries used to push a pending virtual
// tick through the engine's frame loop.
const tickPingLimit = 10000

// vclock is the injected frame-logic clock: a fixed base plus an
// atomically advanced offset. It only moves when the driver applies a
// recorded tick, so the engine's world physics runs exactly the
// recorded dts and nothing else.
type vclock struct {
	base time.Time
	off  atomic.Int64
}

func newVclock() *vclock {
	// Any fixed base works; engines only ever subtract two readings.
	return &vclock{base: time.Unix(1<<20, 0)}
}

func (v *vclock) now() time.Time   { return v.base.Add(time.Duration(v.off.Load())) }
func (v *vclock) advance(ns int64) { v.off.Add(ns) }

type liveEngine interface {
	Start()
	Stop()
}

// rclient is one lockstep protocol client: at most one request of its
// own ever in flight, every received snapshot folded into its stream
// digest.
type rclient struct {
	conn   transport.Conn
	server transport.Addr
	buf    []byte
	w      protocol.Writer
	sd     *streamDigest
	gone   bool
}

// liveDriver owns one live engine plus the lockstep clients driving it.
// Both the replayer and the recording session driver are thin loops
// over it; the driver enforces the global-lockstep discipline (one
// command in flight server-wide) that makes commit order equal drive
// order on every engine.
type liveDriver struct {
	world   *game.World
	net     *transport.Network
	eng     liveEngine
	vc      *vclock
	rec     *Recorder
	ctl     *rclient
	clients map[uint16]*rclient
	order   []uint16
	nonce   uint64
	conns   int
}

func newLiveDriver(m *worldmap.Map, seed int64, lc LiveConfig, rec *Recorder, maxClients int) (*liveDriver, error) {
	world, err := game.NewWorld(game.Config{Map: m, Seed: seed})
	if err != nil {
		return nil, err
	}
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	nConns := lc.Threads
	if nConns == 0 {
		nConns = 1
	}
	conns := make([]transport.Conn, nConns)
	for i := range conns {
		c, err := net.Listen(fmt.Sprintf("srv:%d", i))
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	pol := balance.Policy{}
	if lc.Balance {
		pol = balance.Policy{Enabled: true, EveryFrame: true, MaxMigrations: 4}
	}
	cfg := server.Config{
		World:         world,
		Conns:         conns,
		Threads:       lc.Threads,
		MaxClients:    maxClients,
		SelectTimeout: 2 * time.Millisecond,
		// The driver paces the session; wall-clock silence between
		// lockstep rounds must never evict a replayed client.
		ClientTimeout: time.Hour,
		Balance:       pol,
		Stealing:      lc.Stealing,
		Record:        rec,
		Checkpoint:    lc.Checkpoint,
		Clock:         nil,
	}
	vc := newVclock()
	cfg.Clock = vc.now
	var eng liveEngine
	if lc.Threads == 0 {
		eng, err = server.NewSequential(cfg)
	} else {
		eng, err = server.NewParallel(cfg)
	}
	if err != nil {
		return nil, err
	}
	ctlConn, err := net.Listen("rp-ctl")
	if err != nil {
		return nil, err
	}
	d := &liveDriver{
		world: world,
		net:   net,
		eng:   eng,
		vc:    vc,
		rec:   rec,
		ctl: &rclient{
			conn:   ctlConn,
			server: transport.MemAddr("srv:0"),
			buf:    make([]byte, 4*transport.MaxDatagram),
		},
		clients: make(map[uint16]*rclient),
	}
	d.eng.Start()
	return d, nil
}

func (d *liveDriver) stop() { d.eng.Stop() }

func (c *rclient) send(msg any) error {
	c.w.Reset()
	if err := protocol.Encode(&c.w, msg); err != nil {
		return err
	}
	return c.conn.Send(c.server, c.w.Bytes())
}

// recv returns the next decodable datagram before the deadline,
// skipping undecodable ones (none should occur on the mem transport).
func (c *rclient) recv(deadline time.Time) (any, error) {
	for {
		n, _, err := c.conn.Recv(c.buf, time.Until(deadline))
		if err != nil {
			return nil, err
		}
		msg, err := protocol.Decode(c.buf[:n])
		if err != nil {
			continue
		}
		if snap, ok := msg.(*protocol.Snapshot); ok && c.sd != nil {
			c.sd.addSnapshot(c.buf[:n], snap.Frame, snap.BaseFrame)
		}
		return msg, nil
	}
}

// connect joins a new lockstep client under the caller's key and
// returns the server's Accept.
func (d *liveDriver) connect(key uint16, name string) (*protocol.Accept, error) {
	conn, err := d.net.Listen(fmt.Sprintf("rp-bot:%d.%d", key, d.conns))
	if err != nil {
		return nil, err
	}
	d.conns++
	c := d.clients[key]
	if c == nil || !c.gone {
		if c != nil {
			return nil, fmt.Errorf("replay: client %d connected twice", key)
		}
		c = &rclient{sd: newStreamDigest()}
		d.clients[key] = c
		d.order = append(d.order, key)
	}
	// A reconnect under the same recorded key keeps its stream digest:
	// the replies are one continuous per-client stream.
	c.conn = conn
	c.server = transport.MemAddr("srv:0")
	c.buf = make([]byte, 4*transport.MaxDatagram)
	c.gone = false
	if err := c.send(&protocol.Connect{Name: name, FrameMs: 33, ProtocolVer: protocol.Version}); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(replayAwait)
	for {
		msg, err := c.recv(deadline)
		if err != nil {
			return nil, fmt.Errorf("replay: client %d connect: %w", key, err)
		}
		switch m := msg.(type) {
		case *protocol.Accept:
			addr, err := transport.ResolveLike(c.conn, m.Addr)
			if err != nil {
				return nil, fmt.Errorf("replay: client %d accept addr %q: %w", key, m.Addr, err)
			}
			c.server = addr
			return m, nil
		case *protocol.Reject:
			return nil, fmt.Errorf("replay: client %d rejected: %s", key, m.Reason)
		}
	}
}

// move sends one command and blocks until its acknowledging snapshot
// arrives (folding every snapshot received on the way).
func (d *liveDriver) move(key uint16, seq uint32, cmd *protocol.MoveCmd) error {
	c := d.clients[key]
	if c == nil || c.gone {
		return fmt.Errorf("replay: move for unconnected client %d", key)
	}
	// Ack 0 means "no delta information": it never triggers the
	// baseline-gap resync, whose threshold depends on absolute frame
	// numbers the engines do not agree on.
	if err := c.send(&protocol.Move{Seq: seq, Ack: 0, Cmd: *cmd}); err != nil {
		return err
	}
	deadline := time.Now().Add(replayAwait)
	for {
		msg, err := c.recv(deadline)
		if err != nil {
			return fmt.Errorf("replay: client %d awaiting ack of seq %d: %w", key, seq, err)
		}
		switch m := msg.(type) {
		case *protocol.Snapshot:
			if m.AckSeq == seq {
				return nil
			}
		case *protocol.Disconnected:
			return fmt.Errorf("replay: client %d evicted awaiting seq %d: %s", key, seq, m.Reason)
		}
	}
}

// disconnect retires a client and waits for the server's confirmation,
// so the entity removal has committed before the next log item runs.
func (d *liveDriver) disconnect(key uint16) error {
	c := d.clients[key]
	if c == nil || c.gone {
		return fmt.Errorf("replay: disconnect for unconnected client %d", key)
	}
	if err := c.send(&protocol.Disconnect{}); err != nil {
		return err
	}
	deadline := time.Now().Add(replayAwait)
	for {
		msg, err := c.recv(deadline)
		if err != nil {
			return fmt.Errorf("replay: client %d disconnect: %w", key, err)
		}
		if _, ok := msg.(*protocol.Disconnected); ok {
			c.gone = true
			return nil
		}
	}
}

// tick advances the virtual clock by dtNs and then drives the engine
// until the world update actually ran. A Pong alone does not prove the
// tick happened — ping and move datagrams drain in the same request
// phase, which runs after the frame's world-update stage — so the
// driver pings until the recorder's tick counter moves: the tick tap
// fires inside RunWorldFrame's caller, which is ordered before every
// later commit. Each recorded tick becomes exactly one RunWorldFrame
// call with exactly the recorded dt, preserving the original piecewise
// integration.
func (d *liveDriver) tick(dtNs int64) error {
	before := d.rec.TickCount()
	d.vc.advance(dtNs)
	deadline := time.Now().Add(replayAwait)
	for i := 0; i < tickPingLimit; i++ {
		d.nonce++
		if err := d.ctl.send(&protocol.Ping{Nonce: d.nonce}); err != nil {
			return err
		}
		for {
			msg, err := d.ctl.recv(deadline)
			if err != nil {
				return fmt.Errorf("replay: tick ping: %w", err)
			}
			if p, ok := msg.(*protocol.Pong); ok && p.Nonce == d.nonce {
				break
			}
		}
		if d.rec.TickCount() > before {
			return nil
		}
	}
	return errors.New("replay: world tick did not run after vclock advance")
}

// streams folds the per-client stream digests, in first-connect order,
// into the session stream digest, and returns the total reply count.
func (d *liveDriver) streams() (uint64, int) {
	digests := make(map[uint16]uint64, len(d.clients))
	replies := 0
	for key, c := range d.clients {
		digests[key] = c.sd.sum()
		replies += int(c.sd.replies)
	}
	return combineStreams(d.order, digests), replies
}

// ReplayLive re-runs a recorded log through one live engine
// configuration and digests what the run produced. The log's items are
// driven strictly in order with at most one command in flight
// server-wide, so the replayed commit order is the log order on every
// engine — sequential, parallel at any width, balanced or stealing —
// and two replays of the same log are bit-identical everywhere the
// wire can observe.
func ReplayLive(lg *Log, lc LiveConfig) (*Result, error) {
	if err := lg.Validate(); err != nil {
		return nil, err
	}
	// The replay records itself: the recorder doubles as the tick probe
	// the driver synchronizes on, and its log is the canonical
	// serialization of this replay.
	rec, err := NewRecorder(lg.Map, lg.WorldSeed)
	if err != nil {
		return nil, err
	}
	rec.Reserve(len(lg.Items) + len(lg.Items)/2)
	d, err := newLiveDriver(lg.Map, lg.WorldSeed, lc, rec, len(lg.Clients())+2)
	if err != nil {
		return nil, err
	}
	defer d.stop()

	res := &Result{Config: lc}
	for i := range lg.Items {
		it := &lg.Items[i]
		var err error
		switch it.Kind {
		case KindConnect:
			var acc *protocol.Accept
			acc, err = d.connect(it.Client, it.Name)
			if err == nil && acc.EntityID != it.Ent {
				res.IDMismatches++
			}
		case KindMove:
			err = d.move(it.Client, it.Seq, &it.Cmd)
			res.Moves++
		case KindDisconnect:
			// Every recorded removal — voluntary, timeout, or eviction —
			// replays as a clean disconnect: the world effect
			// (RemovePlayer at this point in the commit order) is
			// identical.
			err = d.disconnect(it.Client)
		case KindTick:
			err = d.tick(it.DtNs)
			res.Ticks++
		case KindMigrate, KindShed, KindFrame:
			// Scheduling decisions, not world inputs: the replay engine
			// makes its own. Recorded for diagnosis only.
		}
		if err != nil {
			return nil, fmt.Errorf("replay: item %d (%s): %w", i, kindName(it.Kind), err)
		}
	}
	d.stop()

	res.TableDigest = TableDigest(d.world)
	res.StreamDigest, res.Replies = d.streams()
	res.EndDigestMatch = lg.HasEnd && lg.EndDigest == res.TableDigest
	res.World = d.world
	return res, nil
}

// SessionScript describes a scripted lockstep session for RecordSession:
// Players clients connect in index order, then Moves rounds run, each
// round one virtual tick followed by one command per player (player i's
// step-k command is Cmd(i, k)).
type SessionScript struct {
	Players int
	Moves   int
	// Cmd returns player i's command at step k; required.
	Cmd func(player int, step int64) protocol.MoveCmd
	// Name returns player i's join name; defaults to "rec-i".
	Name func(player int) string
	// TickNs is the virtual dt per round; defaults to 16ms.
	TickNs int64
}

// RecordSession runs a scripted session against a live engine in global
// lockstep, recording it. Because the drive discipline keeps one
// command in flight server-wide, the recorded log's order IS the commit
// order, and the returned Result's digests are exactly what any replay
// of the log must reproduce — including on every other engine.
func RecordSession(m *worldmap.Map, seed int64, lc LiveConfig, sc SessionScript) (*Log, *Result, error) {
	if sc.Players <= 0 || sc.Cmd == nil {
		return nil, nil, errors.New("replay: RecordSession needs Players > 0 and a Cmd script")
	}
	tickNs := sc.TickNs
	if tickNs == 0 {
		tickNs = 16 * int64(time.Millisecond)
	}
	rec, err := NewRecorder(m, seed)
	if err != nil {
		return nil, nil, err
	}
	rec.Reserve(sc.Players*(sc.Moves+1) + sc.Moves + 16)
	d, err := newLiveDriver(m, seed, lc, rec, sc.Players+2)
	if err != nil {
		return nil, nil, err
	}
	defer d.stop()

	// Driver keys are the server-assigned client IDs — the same IDs the
	// recorder's taps log — so the stream digest here is keyed and
	// ordered identically to a future replay's.
	keys := make([]uint16, sc.Players)
	for i := 0; i < sc.Players; i++ {
		name := fmt.Sprintf("rec-%d", i)
		if sc.Name != nil {
			name = sc.Name(i)
		}
		// Two-phase join: learn the server-assigned ID from a probe key,
		// impossible without parsing Accept — so connect under a
		// provisional key and rebind.
		acc, err := d.connectProbe(name)
		if err != nil {
			return nil, nil, err
		}
		keys[i] = acc.ClientID
	}
	for k := 0; k < sc.Moves; k++ {
		if err := d.tick(tickNs); err != nil {
			return nil, nil, err
		}
		seq := uint32(k + 1)
		for i := 0; i < sc.Players; i++ {
			cmd := sc.Cmd(i, int64(k))
			if err := d.move(keys[i], seq, &cmd); err != nil {
				return nil, nil, err
			}
		}
	}
	d.stop()

	lg := rec.Finish(d.world)
	res := &Result{Config: lc}
	res.TableDigest = TableDigest(d.world)
	res.StreamDigest, res.Replies = d.streams()
	res.EndDigestMatch = lg.EndDigest == res.TableDigest
	res.Moves = sc.Players * sc.Moves
	res.Ticks = sc.Moves
	res.World = d.world
	return lg, res, nil
}

// connectProbe connects a client whose driver key must equal the
// server-assigned client ID (known only from the Accept). It reserves a
// provisional key, performs the handshake, then rebinds the client to
// its real ID.
func (d *liveDriver) connectProbe(name string) (*protocol.Accept, error) {
	// Provisional keys count down from the top of the ID space; server
	// IDs count up from 0, so they cannot collide in any realistic
	// session.
	prov := uint16(0xFFFF) - uint16(len(d.order))
	acc, err := d.connect(prov, name)
	if err != nil {
		return nil, err
	}
	c := d.clients[prov]
	delete(d.clients, prov)
	if _, dup := d.clients[acc.ClientID]; dup {
		return nil, fmt.Errorf("replay: server reissued live client ID %d", acc.ClientID)
	}
	d.clients[acc.ClientID] = c
	d.order[len(d.order)-1] = acc.ClientID
	return acc, nil
}

func kindName(k uint8) string {
	switch k {
	case KindTick:
		return "tick"
	case KindMove:
		return "move"
	case KindConnect:
		return "connect"
	case KindDisconnect:
		return "disconnect"
	case KindMigrate:
		return "migrate"
	case KindShed:
		return "shed"
	case KindFrame:
		return "frame"
	case KindEnd:
		return "end"
	}
	return fmt.Sprintf("kind-%d", k)
}
