package replay

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/checkpoint"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// TestCrashRecoverySoak is the durability headline: a parallel server
// runs the chaos soak — hostile link, injected mid-run panic — while
// streaming its redo log and capturing frame-barrier checkpoints, and is
// then killed abruptly. Only the on-disk artifacts survive: the
// checkpoint directory and a redo log with a torn tail (a kill -9
// mid-write, simulated by appending garbage and never closing the
// recorder). The claims:
//
//  1. Recovery lands exactly on the durable frontier: the world rebuilt
//     from the newest checkpoint plus the redo tail folds to the same
//     digest as a from-genesis replay of the durable log on every
//     engine — sequential, parallel (balance+stealing), and the DES.
//  2. The cut point doesn't matter: recovering from the OLDEST full
//     checkpoint (a much longer tail) converges on the same digest.
//  3. The restarted server serves the survivors: every client of the
//     crashed session reconnects by name, is resumed onto its exact
//     pre-crash entity, and moves again — while a newcomer joins
//     without colliding with any restored identity.
func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash recovery soak is a long test")
	}
	const (
		threads = 4
		numBots = 12
		steps   = 2000
	)

	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	qrl := filepath.Join(dir, "session.qrl")
	st, err := NewStreamRecorder(qrl, m, 42)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := checkpoint.NewWriter(checkpoint.Config{
		Dir: dir, WorldSeed: 42, Map: m, Interval: 150, DeltaEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	baseNet := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	fnet := transport.NewFaultNetwork(baseNet, transport.FaultConfig{
		Seed:        42,
		DropProb:    0.20,
		ReorderProb: 0.10,
		DupProb:     0.05,
		CorruptProb: 0.01,
	})
	conns := make([]transport.Conn, threads)
	for i := range conns {
		if conns[i], err = fnet.Listen(fmt.Sprintf("srv:%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var stepNo atomic.Int64
	var panicFired atomic.Bool
	cfg := server.Config{
		World:            w,
		Conns:            conns,
		Threads:          threads,
		Strategy:         locking.Optimized{},
		MaxClients:       numBots + 4,
		SelectTimeout:    2 * time.Millisecond,
		WatchdogDeadline: time.Second,
		QuarantineWedged: true,
		Record:           st,
		Checkpoint:       wr,
	}
	cfg.Hooks.PreExec = func(thread int, id uint16) {
		if stepNo.Load() >= steps/2 && panicFired.CompareAndSwap(false, true) {
			panic("crash-soak: injected fatal fault")
		}
	}
	par, err := server.NewParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par.Start()
	defer par.Stop()

	bots := make([]*botclient.Bot, numBots)
	for i := range bots {
		bc, err := fnet.Listen(fmt.Sprintf("bot:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		bots[i], err = botclient.New(botclient.Config{
			Name:   fmt.Sprintf("soak-%d", i),
			Conn:   bc,
			Server: transport.MemAddr("srv:0"),
			Map:    m,
			Seed:   int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := bots[i].Connect(); err != nil {
			t.Fatalf("bot %d connect: %v", i, err)
		}
	}
	for f := 0; f < steps; f++ {
		stepNo.Store(int64(f))
		for _, b := range bots {
			b.Step()
		}
		time.Sleep(time.Millisecond)
	}
	if !panicFired.Load() {
		t.Fatal("injected panic never fired")
	}

	// The kill -9. The engine halts; the stream recorder is deliberately
	// NOT closed (its buffered in-flight frame dies with the process —
	// only per-frame flushes are durable) and a torn write is left at the
	// log's end. The checkpoint writer is closed only to quiesce its
	// flusher goroutine before we read the directory: atomic rename means
	// a real crash leaves at most an orphaned .tmp, never a torn .qck
	// (torn/corrupt checkpoint fallback is covered by
	// TestLoadLatestFallsBack).
	par.Stop()
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(qrl, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0x5A}, 23)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Recovery: newest valid checkpoint + redo tail.
	recoverT0 := time.Now()
	rv, err := Recover(dir, qrl)
	if err != nil {
		t.Fatal(err)
	}
	recoveryNs := time.Since(recoverT0).Nanoseconds()
	if rv.Checkpoint.Frame == 0 {
		t.Fatal("no checkpoint was ever captured during the soak")
	}
	if rv.TailDropped != 23 {
		t.Fatalf("torn tail: dropped %d bytes, expected the 23 garbage bytes", rv.TailDropped)
	}
	recovered := TableDigest(rv.World)
	t.Logf("recovered from checkpoint frame %d (+%d tail items, %d clients, %d bytes torn)",
		rv.Checkpoint.Frame, rv.TailItems, len(rv.Clients), rv.TailDropped)

	// Claim 1: the durable log replayed from genesis on every engine
	// folds to the recovered digest.
	lg, _, err := ReadPrefixFile(qrl)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := ReplayLive(lg, LiveConfig{Threads: 0})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := ReplayLive(lg, LiveConfig{Threads: threads, Balance: true, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	desRes, err := ReplayDES(lg, LiveConfig{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != seqRes.TableDigest {
		t.Fatalf("recovery diverged from the sequential genesis replay: %016x vs %016x",
			recovered, seqRes.TableDigest)
	}
	if recovered != parRes.TableDigest || recovered != desRes.TableDigest {
		t.Fatalf("engines diverged: recovered %016x, parallel %016x, DES %016x",
			recovered, parRes.TableDigest, desRes.TableDigest)
	}

	// Claim 2: recovery is cut-independent — the oldest full image plus
	// its (long) tail lands on the same digest as the newest.
	files, err := checkpoint.ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var oldest *checkpoint.Checkpoint
	for _, fi := range files {
		if fi.Full {
			if oldest, err = checkpoint.ReadFile(fi.Path); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if oldest == nil {
		t.Fatal("no full checkpoint on disk")
	}
	rv2, err := RecoverFrom(oldest, lg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if TableDigest(rv2.World) != recovered {
		t.Fatalf("recovery from frame %d diverges from recovery from frame %d: %016x vs %016x",
			oldest.Frame, rv.Checkpoint.Frame, TableDigest(rv2.World), recovered)
	}
	if rv2.TailItems == 0 {
		t.Fatal("oldest-checkpoint recovery replayed no tail — the redo path went unexercised")
	}

	// Claim 3: restart and reconnect. Clean network — the crash took the
	// old bindings — and every survivor comes back by name.
	net2 := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	conns2 := make([]transport.Conn, threads)
	for i := range conns2 {
		if conns2[i], err = net2.Listen(fmt.Sprintf("srv:%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	par2, err := server.NewParallel(server.Config{
		World:         rv.World,
		Conns:         conns2,
		Threads:       threads,
		Strategy:      locking.Optimized{},
		MaxClients:    numBots + 4,
		SelectTimeout: 2 * time.Millisecond,
		Restore:       rv.RestoreState(recoveryNs),
	})
	if err != nil {
		t.Fatal(err)
	}
	par2.Start()
	defer par2.Stop()

	survivors := make([]*botclient.Bot, 0, len(rv.Clients))
	for i, rec := range rv.Clients {
		bc, err := net2.Listen(fmt.Sprintf("re:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := botclient.New(botclient.Config{
			Name:   rec.Name,
			Conn:   bc,
			Server: transport.MemAddr("srv:0"),
			Map:    m,
			Seed:   int64(200 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Connect(); err != nil {
			t.Fatalf("survivor %q reconnect: %v", rec.Name, err)
		}
		if b.EntityID() != rec.EntID {
			t.Fatalf("survivor %q resumed onto entity %d, pre-crash entity was %d",
				rec.Name, b.EntityID(), rec.EntID)
		}
		if b.ClientID() != rec.ID {
			t.Fatalf("survivor %q got client id %d, pre-crash id was %d",
				rec.Name, b.ClientID(), rec.ID)
		}
		survivors = append(survivors, b)
	}
	// And a newcomer must not collide with any restored identity.
	nc, err := net2.Listen("re:new")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := botclient.New(botclient.Config{
		Name: "newcomer", Conn: nc, Server: transport.MemAddr("srv:0"), Map: m, Seed: 999,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Connect(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range rv.Clients {
		if fresh.EntityID() == rec.EntID || fresh.ClientID() == rec.ID {
			t.Fatalf("newcomer collided with survivor %q (entity %d, client %d)",
				rec.Name, fresh.EntityID(), fresh.ClientID())
		}
	}
	all := append(survivors, fresh)
	for f := 0; f < 120; f++ {
		for _, b := range all {
			b.Step()
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	for _, b := range all {
		b.Drain()
	}
	par2.Stop()
	for i, b := range all {
		if b.Snapshots == 0 {
			t.Errorf("client %d got no snapshots after the restart", i)
		}
		if b.Moved < 20 {
			t.Errorf("client %d barely moved after the restart (%.1f units)", i, b.Moved)
		}
	}
	if par2.Frames() <= rv.Frames {
		t.Errorf("restarted frame counter did not resume past the recovered frame: %d <= %d",
			par2.Frames(), rv.Frames)
	}
	t.Logf("restart served %d survivors + 1 newcomer; frames resumed %d → %d",
		len(survivors), rv.Frames, par2.Frames())
}
