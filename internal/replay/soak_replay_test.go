package replay

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/server"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// TestChaosSoakReplay records the chaos soak — 16 bots against the live
// parallel engine through a hostile link (20% loss, 10% reorder, 5%
// duplication, 1% corruption) for 2000 client frames, with a fatal
// fault injected mid-run — and then replays the captured log on a
// CLEAN link. The recording is free-running (wall-clock frames, true
// concurrency), so the log is a canonical serialization rather than a
// transcript of one interleaving; the claims proved here are:
//
//  1. The recorder survives chaos: the log validates even though the
//     link duplicated, reordered, and corrupted datagrams (the commit
//     taps only ever see accepted inputs), and the injected eviction is
//     recorded like any other departure.
//  2. Replay needs no faults: the fault-free replay of the faulty run
//     converges — every engine (sequential, parallel, DES) evolves the
//     survivor tables to the same digest, and replaying twice is
//     bit-identical.
func TestChaosSoakReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak replay is a long test")
	}
	const (
		threads = 4
		numBots = 16
		steps   = 2000
	)

	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec.Reserve(numBots*steps + steps)

	baseNet := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	fnet := transport.NewFaultNetwork(baseNet, transport.FaultConfig{
		Seed:        42,
		DropProb:    0.20,
		ReorderProb: 0.10,
		DupProb:     0.05,
		CorruptProb: 0.01,
	})
	conns := make([]transport.Conn, threads)
	for i := range conns {
		if conns[i], err = fnet.Listen(fmt.Sprintf("srv:%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var stepNo atomic.Int64
	var panicFired atomic.Bool
	cfg := server.Config{
		World:            w,
		Conns:            conns,
		Threads:          threads,
		Strategy:         locking.Optimized{},
		MaxClients:       numBots + 4,
		SelectTimeout:    2 * time.Millisecond,
		WatchdogDeadline: time.Second,
		QuarantineWedged: true,
		Record:           rec,
	}
	cfg.Hooks.PreExec = func(thread int, id uint16) {
		if stepNo.Load() >= steps/2 && panicFired.CompareAndSwap(false, true) {
			panic("soak-replay: injected fatal fault")
		}
	}
	par, err := server.NewParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par.Start()
	defer par.Stop()

	bots := make([]*botclient.Bot, numBots)
	for i := range bots {
		bc, err := fnet.Listen(fmt.Sprintf("bot:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		bots[i], err = botclient.New(botclient.Config{
			Name:   fmt.Sprintf("soak-%d", i),
			Conn:   bc,
			Server: transport.MemAddr("srv:0"),
			Map:    m,
			Seed:   int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := bots[i].Connect(); err != nil {
			t.Fatalf("bot %d connect: %v", i, err)
		}
	}

	for f := 0; f < steps; f++ {
		stepNo.Store(int64(f))
		for _, b := range bots {
			b.Step()
		}
		time.Sleep(time.Millisecond)
	}
	if !panicFired.Load() {
		t.Fatal("injected panic never fired")
	}
	par.Stop()
	lg := rec.Finish(w)

	// Claim 1: the chaos-era log is internally consistent.
	if err := lg.Validate(); err != nil {
		t.Fatalf("chaos log does not validate: %v", err)
	}
	if lg.Moves() == 0 || lg.Ticks() == 0 {
		t.Fatalf("chaos log is empty: %d moves, %d ticks", lg.Moves(), lg.Ticks())
	}
	evicted := false
	for i := range lg.Items {
		it := &lg.Items[i]
		if it.Kind == KindDisconnect && it.Reason == server.DiscReasonEvict {
			evicted = true
		}
	}
	if !evicted {
		t.Fatal("the injected eviction was not recorded")
	}
	t.Logf("recorded %d moves, %d ticks, %d clients under chaos",
		lg.Moves(), lg.Ticks(), len(lg.Clients()))

	// Claim 2: fault-free replays of the faulty run converge. The
	// recording was free-running, so identity with the original world is
	// reported, not asserted (see DESIGN.md §11); identity across
	// replays and engines IS the assertion.
	seqRes, err := ReplayLive(lg, LiveConfig{Threads: 0})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := ReplayLive(lg, LiveConfig{Threads: threads, Balance: true, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	againRes, err := ReplayLive(lg, LiveConfig{Threads: threads, Balance: true, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	desRes, err := ReplayDES(lg, LiveConfig{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.TableDigest != parRes.TableDigest {
		t.Fatalf("sequential and parallel replays diverged: %016x vs %016x",
			seqRes.TableDigest, parRes.TableDigest)
	}
	if parRes.TableDigest != againRes.TableDigest || parRes.StreamDigest != againRes.StreamDigest {
		t.Fatal("two parallel replays of the same chaos log diverged")
	}
	if desRes.TableDigest != seqRes.TableDigest {
		t.Fatalf("DES replay diverged: %016x vs %016x", desRes.TableDigest, seqRes.TableDigest)
	}
	if seqRes.StreamDigest != parRes.StreamDigest {
		t.Fatalf("reply streams diverged across engines: %016x vs %016x",
			seqRes.StreamDigest, parRes.StreamDigest)
	}
	t.Logf("converged: table %016x, stream %016x, original-end match=%v",
		seqRes.TableDigest, seqRes.StreamDigest, seqRes.EndDigestMatch)
}
