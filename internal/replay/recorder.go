package replay

import (
	"bytes"
	"sync"
	"sync/atomic"

	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/server"
	"qserve/internal/worldmap"
)

// Recorder implements server.Recorder: it accumulates the session's
// input stream in memory and serializes it on Finish. One mutex
// serializes taps from all worker threads; the per-item cost is the
// lock plus a struct store into a pre-grown slice — zero allocations in
// steady state (the overhead tests gate this), well under the cost of
// the move execution it rides on.
//
// Ordering: calls for one client are already serialized by the engine's
// per-client commit discipline, so the log preserves per-client FIFO —
// the only order the wire can observe (DESIGN.md §10). Cross-client
// interleaving is the mutex's acquisition order: one legal serialization
// of a free-running session, and the exact global order of a
// lockstep-driven one (DESIGN.md §11).
type Recorder struct {
	mu    sync.Mutex
	items []Item
	// ticks mirrors the KindTick count, readable without the mutex: the
	// replay driver polls it to learn that a pending virtual-clock
	// advance has actually been consumed by a world update.
	ticks atomic.Int64
	// lastShed dedups RecordShed: engines report the level every frame,
	// the log only carries changes.
	lastShed int32

	worldSeed int64
	mapJSON   []byte
	m         *worldmap.Map
}

var _ server.Recorder = (*Recorder)(nil)

// NewRecorder builds a recorder for a session on the given map. The map
// is serialized immediately (it is immutable) so Finish cannot fail on
// it later; worldSeed is game.Config.Seed, carried for header
// compatibility.
func NewRecorder(m *worldmap.Map, worldSeed int64) (*Recorder, error) {
	var mb bytes.Buffer
	if err := m.Save(&mb); err != nil {
		return nil, err
	}
	return &Recorder{
		items:     make([]Item, 0, 4096),
		lastShed:  -1,
		worldSeed: worldSeed,
		mapJSON:   mb.Bytes(),
		m:         m,
	}, nil
}

// Reserve pre-grows the item buffer so the next n taps are guaranteed
// allocation-free (the overhead benchmarks use it; sessions that
// outgrow it just pay the amortized slice growth).
func (r *Recorder) Reserve(n int) {
	r.mu.Lock()
	if free := cap(r.items) - len(r.items); free < n {
		grown := make([]Item, len(r.items), len(r.items)+n)
		copy(grown, r.items)
		r.items = grown
	}
	r.mu.Unlock()
}

func (r *Recorder) append(it Item) {
	r.mu.Lock()
	r.items = append(r.items, it)
	r.mu.Unlock()
}

// RecordTick implements server.Recorder.
func (r *Recorder) RecordTick(dtNs int64) {
	r.append(Item{Kind: KindTick, DtNs: dtNs})
	r.ticks.Add(1)
}

// TickCount returns how many world ticks have been recorded; the tap
// runs after RunWorldFrame returns, so a count increment proves the
// corresponding world update completed.
func (r *Recorder) TickCount() int64 { return r.ticks.Load() }

// RecordMove implements server.Recorder.
func (r *Recorder) RecordMove(clientID uint16, seq uint32, cmd *protocol.MoveCmd) {
	r.append(Item{Kind: KindMove, Client: clientID, Seq: seq, Cmd: *cmd})
}

// RecordConnect implements server.Recorder.
func (r *Recorder) RecordConnect(clientID uint16, entID int32, thread int, name string) {
	r.append(Item{Kind: KindConnect, Client: clientID, Ent: entID, Thread: uint8(thread), Name: name})
}

// RecordDisconnect implements server.Recorder.
func (r *Recorder) RecordDisconnect(clientID uint16, reason uint8) {
	r.append(Item{Kind: KindDisconnect, Client: clientID, Reason: reason})
}

// RecordMigrate implements server.Recorder.
func (r *Recorder) RecordMigrate(clientID uint16, to int) {
	r.append(Item{Kind: KindMigrate, Client: clientID, To: uint8(to)})
}

// RecordShed implements server.Recorder; only level changes are logged.
func (r *Recorder) RecordShed(level int) {
	r.mu.Lock()
	if int32(level) != r.lastShed {
		r.lastShed = int32(level)
		r.items = append(r.items, Item{Kind: KindShed, Level: uint8(level)})
	}
	r.mu.Unlock()
}

// RecordFrameEnd implements server.Recorder.
func (r *Recorder) RecordFrameEnd(frame uint64) {
	r.append(Item{Kind: KindFrame, Frame: frame})
}

// Items returns the number of records captured so far.
func (r *Recorder) Items() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Finish seals the recording into a Log. When world is non-nil its
// table digest is stamped into the end record — the fidelity target a
// replay of this log reports against. Call after the engine stopped
// (the world must be quiescent); the recorder may be reused afterwards
// only for inspection, not further recording.
func (r *Recorder) Finish(world *game.World) *Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	lg := &Log{
		WorldSeed: r.worldSeed,
		ProtoVer:  protocol.Version,
		Map:       r.m,
		mapJSON:   r.mapJSON,
		Items:     r.items,
	}
	frames := uint64(0)
	for i := len(r.items) - 1; i >= 0; i-- {
		if r.items[i].Kind == KindFrame {
			frames = r.items[i].Frame + 1
			break
		}
	}
	lg.HasEnd = true
	lg.EndFrames = frames
	if world != nil {
		lg.EndDigest = TableDigest(world)
	}
	return lg
}
