// Package costmodel converts the work counters reported by the game
// layer into virtual nanoseconds for the simulated machine. The constants
// are calibrated so the *sequential* engine reproduces the published
// sequential behaviour of the original server on the paper's testbed
// (a 1.4 GHz Xeon): saturation near 128 players on a large map, reply
// processing roughly twice the request processing time, world physics
// under 5% of the total. Everything the parallel experiments measure
// then follows from the protocol and the machine model rather than from
// fitting.
package costmodel

import "qserve/internal/game"

// Model holds per-operation virtual costs in nanoseconds.
type Model struct {
	// Request processing.
	RecvPacket int64 // receive + parse one datagram
	MoveBase   int64 // fixed per-move-command cost
	TreeNode   int64 // per areanode visited in a traversal
	TreeCheck  int64 // per object intersection test in a node list
	Candidate  int64 // per obstacle entity gathered
	CollideOp  int64 // per collide-tree node visited
	BrushTest  int64 // per brush slab test
	PhysTrace  int64 // per hull sweep (integration overhead)
	Clip       int64 // per velocity clip
	Touch      int64 // per pickup/teleport executed
	Hitscan    int64 // per entity tested along a hitscan ray
	Spawn      int64 // per entity spawned

	// Parallel-version overheads (§4.1: "locking is performed in
	// recursive procedures that traverse the areanode tree and the
	// server needs to determine which regions to lock").
	RegionCalc  int64 // per lock-region determination
	LockAcquire int64 // per lock/unlock pair, excluding queueing delay

	// Reply processing.
	SnapshotBase int64 // fixed per-reply cost
	SnapConsider int64 // per entity considered for visibility
	SnapVisible  int64 // per entity delta-encoded into the reply
	SnapEvent    int64 // per broadcast event copied into the reply
	ReplySend    int64 // sendto cost

	// Frame-coherent interest management: building the shared per-frame
	// visibility index costs a fixed setup plus a per-eligible-entity
	// encode. It is paid once per frame (instead of per client), and in
	// exchange each client's SnapConsider count shrinks to its candidate
	// set and SnapVisible prices a cache copy rather than a re-encode.
	SnapBuildBase   int64 // per-frame index setup (collect + scatter)
	SnapBuildEntity int64 // per eligible entity encoded into the cache

	// World processing. Every frame pays the preamble (frame setup plus
	// an entity-table scan); the physics tick (thinks, projectile
	// flight) is rate-limited like QuakeWorld's sv_mintic and costs
	// TickBase plus the per-entity work.
	WorldBase int64 // per-frame preamble
	TickBase  int64 // per physics tick
	Think     int64 // per entity advanced in a tick
	Scan      int64 // per entity scanned, preamble and tick alike

	// Misc.
	SelectReturn int64 // cost of returning from select with a packet
	GlobalBuffer int64 // per access to the global state buffer

	// Durable checkpointing (DESIGN.md §12): the barrier-side cost of one
	// capture — fixed setup plus per-entity-record encode plus per-output-
	// byte fold/copy. Only the serialization is charged to frame time; the
	// file write happens off-thread in the live engines and is free here.
	CheckpointBase   int64 // per capture
	CheckpointEntity int64 // per entity record serialized
	CheckpointByte   int64 // per output byte encoded and checksummed
}

// Default returns the calibrated model. See EXPERIMENTS.md §Calibration
// for the resulting sequential breakdown.
func Default() Model {
	return Model{
		RecvPacket: 6_000,
		MoveBase:   29_000,
		TreeNode:   400,
		TreeCheck:  200,
		Candidate:  600,
		CollideOp:  250,
		BrushTest:  300,
		PhysTrace:  5_000,
		Clip:       1_200,
		Touch:      8_000,
		Hitscan:    2_000,
		Spawn:      10_000,

		RegionCalc:  4_000,
		LockAcquire: 1_200,

		SnapshotBase: 12_000,
		SnapConsider: 120,
		SnapVisible:  1_850,
		SnapEvent:    500,
		ReplySend:    9_000,

		SnapBuildBase:   8_000,
		SnapBuildEntity: 400,

		WorldBase: 15_000,
		TickBase:  40_000,
		Think:     2_000,
		Scan:      80,

		SelectReturn: 3_000,
		GlobalBuffer: 900,

		CheckpointBase:   20_000,
		CheckpointEntity: 600,
		CheckpointByte:   2,
	}
}

// WorkCost prices the variable work counters of a move or sub-move; it
// is what the engine charges while a region lock is held.
func (m *Model) WorkCost(w game.Work) int64 {
	return int64(w.TreeNodes)*m.TreeNode +
		int64(w.TreeChecks)*m.TreeCheck +
		int64(w.Candidates)*m.Candidate +
		int64(w.Collide.Nodes)*m.CollideOp +
		int64(w.Collide.BrushTests)*m.BrushTest +
		int64(w.PhysTraces)*m.PhysTrace +
		int64(w.Clips)*m.Clip +
		int64(w.Touches)*m.Touch +
		int64(w.Hitscan)*m.Hitscan +
		int64(w.Spawns)*m.Spawn
}

// MoveCost returns the total execution cost of a move, excluding lock
// overheads and queueing (charged separately by the engine).
func (m *Model) MoveCost(w game.Work) int64 {
	return m.MoveBase + m.WorkCost(w)
}

// RegionOverhead returns the parallel-only cost of lock-region
// bookkeeping for a move.
func (m *Model) RegionOverhead(w game.Work) int64 {
	return int64(w.RegionCalc) * m.RegionCalc
}

// SnapshotCost returns the reply-formation cost for one client.
func (m *Model) SnapshotCost(sw game.SnapshotWork, events int) int64 {
	return m.SnapshotBase +
		int64(sw.Considered)*m.SnapConsider +
		int64(sw.Visible)*m.SnapVisible +
		int64(events)*m.SnapEvent +
		m.ReplySend
}

// FramePreamble returns the always-paid per-frame world-phase cost for a
// table with the given live-entity count (the active-ID index walks only
// live entities, never free-list holes).
func (m *Model) FramePreamble(entities int) int64 {
	return m.WorldBase + int64(entities)*m.Scan
}

// SnapshotBuildCost returns the once-per-frame cost of building the
// shared visibility index over the given eligible-entity count.
func (m *Model) SnapshotBuildCost(entities int) int64 {
	return m.SnapBuildBase + int64(entities)*m.SnapBuildEntity
}

// WorldCost returns the rate-limited physics tick's cost.
func (m *Model) WorldCost(w game.Work) int64 {
	return m.TickBase +
		int64(w.Thinks)*m.Think +
		int64(w.Scans)*m.Scan +
		int64(w.Collide.Nodes)*m.CollideOp +
		int64(w.Collide.BrushTests)*m.BrushTest +
		int64(w.PhysTraces)*m.PhysTrace +
		int64(w.TreeNodes)*m.TreeNode +
		int64(w.TreeChecks)*m.TreeCheck
}

// CheckpointCost returns the barrier-side serialization cost of one
// durable checkpoint capture over the given entity and byte counts.
func (m *Model) CheckpointCost(entities, bytes int) int64 {
	return m.CheckpointBase +
		int64(entities)*m.CheckpointEntity +
		int64(bytes)*m.CheckpointByte
}

// MachineConfig describes the simulated testbed — Table 1 of the paper,
// expressed as simulator parameters.
type MachineConfig struct {
	Name       string
	Cores      int     // physical CPUs
	SMTWays    int     // hardware threads per core
	SMTPenalty float64 // per-context slowdown when a sibling is busy
	// MemContention inflates compute by 1 + MemContention × (other busy
	// cores): the shared 400 MHz front-side bus of Table 1.
	MemContention float64
}

// PaperMachine returns the simulated analogue of the paper's server:
// 4 × Intel Xeon 1.4 GHz with 2-way hyper-threading (Table 1). The SMT
// penalty reflects the published observation that 8 hardware threads
// barely outperform 4.
func PaperMachine() MachineConfig {
	return MachineConfig{
		Name:          "4 x Intel Xeon 1.4 GHz, 2-way HT (simulated)",
		Cores:         4,
		SMTWays:       2,
		SMTPenalty:    1.6,
		MemContention: 0.28,
	}
}
