package costmodel

import (
	"testing"

	"qserve/internal/collide"
	"qserve/internal/game"
)

func TestDefaultModelPositive(t *testing.T) {
	m := Default()
	checks := map[string]int64{
		"RecvPacket": m.RecvPacket, "MoveBase": m.MoveBase, "TreeNode": m.TreeNode,
		"TreeCheck": m.TreeCheck, "Candidate": m.Candidate, "CollideOp": m.CollideOp,
		"BrushTest": m.BrushTest, "PhysTrace": m.PhysTrace, "Clip": m.Clip,
		"Touch": m.Touch, "Hitscan": m.Hitscan, "Spawn": m.Spawn,
		"RegionCalc": m.RegionCalc, "LockAcquire": m.LockAcquire,
		"SnapshotBase": m.SnapshotBase, "SnapConsider": m.SnapConsider,
		"SnapVisible": m.SnapVisible, "SnapEvent": m.SnapEvent, "ReplySend": m.ReplySend,
		"WorldBase": m.WorldBase, "TickBase": m.TickBase, "Think": m.Think, "Scan": m.Scan,
		"SelectReturn": m.SelectReturn, "GlobalBuffer": m.GlobalBuffer,
	}
	for name, v := range checks {
		if v <= 0 {
			t.Errorf("%s = %d, must be positive", name, v)
		}
	}
}

func TestMoveCostComposition(t *testing.T) {
	m := Default()
	var zero game.Work
	if got := m.MoveCost(zero); got != m.MoveBase {
		t.Errorf("zero-work move cost = %d, want base %d", got, m.MoveBase)
	}
	w := game.Work{
		TreeNodes:  3,
		TreeChecks: 5,
		Collide:    collide.Work{Nodes: 7, BrushTests: 11},
		PhysTraces: 2,
		Clips:      1,
		Touches:    1,
		Hitscan:    4,
		Spawns:     1,
	}
	want := 3*m.TreeNode + 5*m.TreeCheck + 7*m.CollideOp + 11*m.BrushTest +
		2*m.PhysTrace + 1*m.Clip + 1*m.Touch + 4*m.Hitscan + 1*m.Spawn
	if got := m.WorkCost(w); got != want {
		t.Errorf("WorkCost = %d, want %d", got, want)
	}
	if got := m.MoveCost(w); got != m.MoveBase+want {
		t.Errorf("MoveCost = %d, want %d", got, m.MoveBase+want)
	}
}

func TestWorkCostAdditive(t *testing.T) {
	m := Default()
	a := game.Work{TreeNodes: 2, PhysTraces: 3}
	b := game.Work{TreeChecks: 4, Clips: 1}
	sum := a
	sum.Add(b)
	if m.WorkCost(sum) != m.WorkCost(a)+m.WorkCost(b) {
		t.Error("WorkCost not additive over Work.Add")
	}
	// Sub inverts Add.
	diff := sum.Sub(b)
	if m.WorkCost(diff) != m.WorkCost(a) {
		t.Error("WorkCost not consistent over Work.Sub")
	}
}

func TestRegionOverhead(t *testing.T) {
	m := Default()
	w := game.Work{RegionCalc: 3}
	if got := m.RegionOverhead(w); got != 3*m.RegionCalc {
		t.Errorf("RegionOverhead = %d", got)
	}
	// Region bookkeeping must not leak into MoveCost (it is a
	// parallel-only overhead the sequential server never pays).
	if m.MoveCost(w) != m.MoveBase {
		t.Error("RegionCalc charged inside MoveCost")
	}
}

func TestSnapshotCostScalesWithVisibility(t *testing.T) {
	m := Default()
	small := m.SnapshotCost(game.SnapshotWork{Considered: 10, Visible: 2}, 0)
	big := m.SnapshotCost(game.SnapshotWork{Considered: 200, Visible: 60}, 10)
	if big <= small {
		t.Error("snapshot cost not increasing with visibility")
	}
	base := m.SnapshotCost(game.SnapshotWork{}, 0)
	if base != m.SnapshotBase+m.ReplySend {
		t.Errorf("empty snapshot cost = %d", base)
	}
}

func TestFramePreambleAndWorldCost(t *testing.T) {
	m := Default()
	if m.FramePreamble(0) != m.WorldBase {
		t.Error("empty preamble != WorldBase")
	}
	if m.FramePreamble(100)-m.FramePreamble(0) != 100*m.Scan {
		t.Error("preamble not linear in entity count")
	}
	w := game.Work{Thinks: 5, Scans: 100}
	if got := m.WorldCost(w); got != m.TickBase+5*m.Think+100*m.Scan {
		t.Errorf("WorldCost = %d", got)
	}
}

func TestPaperMachine(t *testing.T) {
	mc := PaperMachine()
	if mc.Cores != 4 || mc.SMTWays != 2 {
		t.Errorf("machine = %+v", mc)
	}
	if mc.SMTPenalty <= 1 {
		t.Error("SMT penalty must exceed 1")
	}
	if mc.MemContention <= 0 || mc.MemContention >= 1 {
		t.Errorf("memory contention %v out of plausible range", mc.MemContention)
	}
	if mc.Name == "" {
		t.Error("machine unnamed")
	}
}
