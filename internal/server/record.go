package server

import "qserve/internal/protocol"

// Recorder taps the frame pipeline at the points that fully determine
// world evolution: world-physics ticks (with their exact dt), every
// committed move command (at the commit point, so the recorded stream
// respects the deterministic per-client commit order the work-stealing
// scheduler guarantees — DESIGN.md §10), connects/disconnects (which
// allocate and free entity slots and rotate the spawn cursor), plus the
// informational migration and shed decisions. internal/replay implements
// it; engines call it only when Config.Record is non-nil.
//
// Threading: methods may be called concurrently from any worker thread.
// Calls for one client are serialized by the engine's own per-client
// commit discipline; cross-client interleaving is whatever serialization
// the recorder's internal lock observes, which is a legal execution
// order (see DESIGN.md §11 for the exact fidelity contract).
type Recorder interface {
	// RecordTick logs a world-physics step of exactly dtNs nanoseconds.
	// Called by the frame master after RunWorldFrame ran (not on frames
	// where the minimum-tick gate skipped physics).
	RecordTick(dtNs int64)
	// RecordMove logs a committed move command. Called at the commit
	// point, after the seq filter accepted the command and ExecuteMove
	// returned. cmd must be copied before returning.
	RecordMove(clientID uint16, seq uint32, cmd *protocol.MoveCmd)
	// RecordConnect logs a successful player admission (not reconnects,
	// which do not touch the world).
	RecordConnect(clientID uint16, entID int32, thread int, name string)
	// RecordDisconnect logs a player removal, client-requested or
	// server-side (stale timeout, panic eviction).
	RecordDisconnect(clientID uint16, reason uint8)
	// RecordMigrate logs an applied client→thread migration.
	RecordMigrate(clientID uint16, to int)
	// RecordShed logs the overload ladder's level after a frame.
	// Implementations should deduplicate repeats.
	RecordShed(level int)
	// RecordFrameEnd marks the end of frame processing (a span
	// delimiter for the shrinker; no world effect).
	RecordFrameEnd(frame uint64)
}

// Disconnect reasons recorded by the engines. The replayer treats them
// all as a player removal at the recorded position; the reason is kept
// for triage.
const (
	DiscReasonClient  uint8 = 0 // client sent Disconnect
	DiscReasonTimeout uint8 = 1 // stale sweep (ClientTimeout)
	DiscReasonEvict   uint8 = 2 // panic containment / watchdog eviction
)
