package server

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// --- frame controller abandonment -----------------------------------

// TestFrameCtlAbandonAtRequestBarrier: a participant stuck before its
// doneRequests is abandoned; the remaining participant's barrier opens
// without it, and the zombie's own barrier calls report abandonment.
func TestFrameCtlAbandonAtRequestBarrier(t *testing.T) {
	fc := newFrameCtl()
	if fc.join(0) != roleMaster || fc.join(1) != roleWorker {
		t.Fatal("bad roles")
	}
	fc.openRequests()

	released := make(chan bool, 1)
	go func() { released <- fc.doneRequests(0) }()
	select {
	case <-released:
		t.Fatal("request barrier released with a participant outstanding")
	case <-time.After(20 * time.Millisecond):
	}

	// Worker 1 wedges; the watchdog abandons it.
	if !fc.abandon(1) {
		t.Fatal("abandon refused a live participant")
	}
	select {
	case ok := <-released:
		if !ok {
			t.Fatal("surviving participant reported abandoned")
		}
	case <-time.After(time.Second):
		t.Fatal("request barrier never released after abandonment")
	}

	// The zombie's own barrier entries must fail.
	if fc.doneRequests(1) {
		t.Error("zombie doneRequests returned ok")
	}
	if ok, _ := fc.doneReply(1); ok {
		t.Error("zombie doneReply returned ok")
	}
	if !fc.isZombie(1) {
		t.Error("abandoned worker not marked zombie")
	}

	// The survivor (the master) finishes the frame alone.
	if ok, promoted := fc.doneReply(0); !ok || promoted {
		t.Fatalf("doneReply(0) = %v, %v", ok, promoted)
	}
	fc.waitAllReplied()
	fc.endFrame()
	if fc.frameNumber() != 1 {
		t.Errorf("frame number = %d, want 1", fc.frameNumber())
	}

	// Until it acquits, the zombie stays one; after acquitting it can
	// join the next frame.
	fc.acquit(1)
	if fc.isZombie(1) {
		t.Error("acquit did not clear the zombie mark")
	}
	if role := fc.join(1); role != roleMaster {
		t.Errorf("post-acquit join role = %v, want master", role)
	}
}

// TestFrameCtlMasterAbandonedPromotion: the master is abandoned during
// the reply phase; the last active participant to finish its replies is
// promoted to close the frame.
func TestFrameCtlMasterAbandonedPromotion(t *testing.T) {
	fc := newFrameCtl()
	fc.join(0) // master
	fc.join(1)
	fc.openRequests()
	done := make(chan bool, 1)
	go func() { done <- fc.doneRequests(0) }()
	if !fc.doneRequests(1) {
		t.Fatal("doneRequests(1) failed")
	}
	if ok := <-done; !ok {
		t.Fatal("doneRequests(0) failed")
	}

	// Master wedges mid-reply; watchdog abandons it.
	if !fc.abandon(0) {
		t.Fatal("abandon refused the master")
	}
	ok, promoted := fc.doneReply(1)
	if !ok || !promoted {
		t.Fatalf("doneReply(1) = ok=%v promoted=%v, want promotion", ok, promoted)
	}
	fc.waitAllReplied()
	fc.endFrame()
	if fc.frameNumber() != 1 {
		t.Errorf("frame number = %d, want 1", fc.frameNumber())
	}
}

// TestFrameCtlMasterAbandonedAfterAllReplied: everyone already called
// doneReply when the master is abandoned — no future doneReply can claim
// promotion, so abandon itself must close the frame.
func TestFrameCtlMasterAbandonedAfterAllReplied(t *testing.T) {
	fc := newFrameCtl()
	fc.join(0) // master
	fc.join(1)
	fc.openRequests()
	go fc.doneRequests(0)
	fc.doneRequests(1)
	if ok, promoted := fc.doneReply(1); !ok || promoted {
		t.Fatalf("doneReply(1) = %v %v", ok, promoted)
	}
	// Master wedged between its barrier exit and doneReply: its replies
	// never arrive, and worker 1 has already left the frame.
	if !fc.abandon(0) {
		t.Fatal("abandon refused")
	}
	waitFrame(t, fc, 1)
}

// TestFrameCtlMasterAbandonedInWorldPhase: requests never open, so the
// controller collapses the frame and waiting workers escape with !ok.
func TestFrameCtlMasterAbandonedInWorldPhase(t *testing.T) {
	fc := newFrameCtl()
	fc.join(0) // master, wedged in the world update
	fc.join(1)
	escaped := make(chan bool, 1)
	go func() { escaped <- fc.waitRequestsOpen(1) }()
	select {
	case <-escaped:
		t.Fatal("waitRequestsOpen returned before the world phase ended")
	case <-time.After(20 * time.Millisecond):
	}
	if !fc.abandon(0) {
		t.Fatal("abandon refused")
	}
	select {
	case ok := <-escaped:
		if ok {
			t.Fatal("worker reported a live frame after collapse")
		}
	case <-time.After(time.Second):
		t.Fatal("worker stuck in waitRequestsOpen after frame collapse")
	}
	waitFrame(t, fc, 1)
}

// TestFrameCtlAllParticipantsAbandoned: with every participant a zombie
// the controller must close the frame itself.
func TestFrameCtlAllParticipantsAbandoned(t *testing.T) {
	fc := newFrameCtl()
	fc.join(0)
	fc.openRequests()
	if !fc.abandon(0) {
		t.Fatal("abandon refused")
	}
	waitFrame(t, fc, 1)
	// Double abandon is refused.
	if fc.abandon(0) {
		t.Error("second abandon of the same worker succeeded")
	}
}

func waitFrame(t *testing.T, fc *frameCtl, want uint64) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for fc.frameNumber() < want {
		if time.Now().After(deadline) {
			t.Fatalf("frame number stuck at %d, want %d", fc.frameNumber(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// --- watchdog ---------------------------------------------------------

// TestWatchdogQuarantinesWedgedWorker injects a finite wedge (a PreExec
// hook that sleeps far past the deadline) into one worker and asserts
// the watchdog detects it while it is still stuck, quarantines the
// client it was serving, and that clients on other threads keep being
// served throughout.
func TestWatchdogQuarantinesWedgedWorker(t *testing.T) {
	const (
		deadline   = 100 * time.Millisecond
		wedgeSleep = 400 * time.Millisecond
		numBots    = 4
	)
	var wedged atomic.Bool
	var wedgedClient atomic.Int32 // id+1
	var wedgedThread atomic.Int32
	rig := newRigCfg(t, 2, numBots, locking.Optimized{}, func(cfg *Config) {
		cfg.Assign = RoundRobinAssign // split the bots across both threads
		cfg.WatchdogDeadline = deadline
		cfg.QuarantineWedged = true
		cfg.Hooks.PreExec = func(thread int, id uint16) {
			if wedged.CompareAndSwap(false, true) {
				wedgedClient.Store(int32(id) + 1)
				wedgedThread.Store(int32(thread))
				time.Sleep(wedgeSleep)
			}
		}
	})
	par := rig.engine.(*Parallel)

	// Drive through the wedge. Mid-wedge, snapshot the replies of the
	// bots on the healthy thread; they must keep growing while the other
	// thread sleeps.
	var mid1, mid2 []int64
	for step := 0; step < 300; step++ {
		for _, b := range rig.bots {
			b.Step()
		}
		switch step {
		case 80: // ~160ms in: wedge detected, still sleeping
			mid1 = replyCounts(rig.bots)
		case 160: // ~320ms in: still sleeping
			mid2 = replyCounts(rig.bots)
		}
		time.Sleep(2 * time.Millisecond)
	}

	wedges := par.Wedges()
	if len(wedges) == 0 {
		t.Fatal("watchdog recorded no wedge")
	}
	rec := wedges[0]
	if rec.Phase != wpRequest {
		t.Errorf("wedge phase = %d, want request", rec.Phase)
	}
	if rec.StuckFor < deadline || rec.StuckFor >= wedgeSleep {
		t.Errorf("detection latency %v outside [%v, %v): watchdog fired too early or after the wedge resolved",
			rec.StuckFor, deadline, wedgeSleep)
	}
	if !rec.HasClient || int32(rec.ClientID)+1 != wedgedClient.Load() {
		t.Errorf("wedge blamed client %d/%v, hook wedged on %d",
			rec.ClientID, rec.HasClient, wedgedClient.Load()-1)
	}
	if rec.Worker != int(wedgedThread.Load()) {
		t.Errorf("wedge blamed worker %d, hook ran on %d", rec.Worker, wedgedThread.Load())
	}

	// The healthy thread's clients were served during the wedge.
	if mid1 == nil || mid2 == nil {
		t.Fatal("mid-wedge snapshots missing")
	}
	healthyGrew := false
	for i := range rig.bots {
		if i%2 != int(wedgedThread.Load()) && mid2[i] > mid1[i] {
			healthyGrew = true
		}
	}
	if !healthyGrew {
		t.Error("no healthy-thread client was served while the other thread was wedged")
	}

	// After recovery: exactly the wedged client was evicted, everyone
	// else is still connected, and the engine is still framing.
	waitCond(t, 2*time.Second, func() bool {
		return par.FaultEvictions() == 1 && par.NumClients() == numBots-1
	}, "wedged client never evicted")
	framesBefore := par.Frames()
	for step := 0; step < 20; step++ {
		for _, b := range rig.bots {
			b.Step()
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitCond(t, time.Second, func() bool { return par.Frames() > framesBefore },
		"engine stopped framing after recovery")

	rig.engine.Stop()
	var wedgeCount int64
	for _, bd := range rig.engine.Breakdowns() {
		wedgeCount += bd.WedgesDetected
	}
	if wedgeCount == 0 {
		t.Error("WedgesDetected not surfaced in breakdowns")
	}
}

func replyCounts(bots []*botclient.Bot) []int64 {
	out := make([]int64, len(bots))
	for i, b := range bots {
		out[i] = b.Resp.Replies
	}
	return out
}

func waitCond(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- panic containment ------------------------------------------------

// TestPanicContainmentParallel injects one panic into a request handler
// and asserts the worker survives, the offending client is evicted, and
// the server keeps serving everyone else.
func TestPanicContainmentParallel(t *testing.T) {
	const numBots = 4
	var fired atomic.Bool
	var victim atomic.Int32 // id+1
	rig := newRigCfg(t, 2, numBots, locking.Optimized{}, func(cfg *Config) {
		cfg.Assign = RoundRobinAssign
		cfg.Hooks.PreExec = func(thread int, id uint16) {
			if fired.CompareAndSwap(false, true) {
				victim.Store(int32(id) + 1)
				panic("injected fault: corrupted request state")
			}
		}
	})
	par := rig.engine.(*Parallel)

	rig.drive(80, 2*time.Millisecond)

	waitCond(t, 2*time.Second, func() bool {
		return par.FaultEvictions() == 1 && par.NumClients() == numBots-1
	}, "panicking request's client never evicted")

	// Everyone else is still served after the panic.
	before := replyCounts(rig.bots)
	rig.drive(40, 2*time.Millisecond)
	after := replyCounts(rig.bots)
	served := 0
	for i := range rig.bots {
		if int32(i)+1 != victim.Load() && after[i] > before[i] {
			served++
		}
	}
	if served < numBots-1 {
		t.Errorf("only %d of %d surviving clients served after the panic", served, numBots-1)
	}

	rig.engine.Stop()
	var panics int64
	for _, bd := range rig.engine.Breakdowns() {
		panics += bd.PanicsRecovered
	}
	if panics != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", panics)
	}
}

// TestPanicContainmentSequential is the same fault on the sequential
// engine: the loop recovers, evicts, and keeps serving.
func TestPanicContainmentSequential(t *testing.T) {
	const numBots = 3
	var fired atomic.Bool
	rig := newRigCfg(t, 0, numBots, nil, func(cfg *Config) {
		cfg.Hooks.PreExec = func(thread int, id uint16) {
			if fired.CompareAndSwap(false, true) {
				panic("injected fault")
			}
		}
	})
	seq := rig.engine.(*Sequential)

	rig.drive(80, 2*time.Millisecond)
	waitCond(t, 2*time.Second, func() bool {
		return seq.FaultEvictions() == 1 && seq.NumClients() == numBots-1
	}, "sequential engine never evicted the panicking client")

	before := replyCounts(rig.bots)
	rig.drive(40, 2*time.Millisecond)
	after := replyCounts(rig.bots)
	served := 0
	for i := range rig.bots {
		if after[i] > before[i] {
			served++
		}
	}
	if served < numBots-1 {
		t.Errorf("only %d of %d surviving clients served after the panic", served, numBots-1)
	}

	rig.engine.Stop()
	var panics int64
	for _, bd := range rig.engine.Breakdowns() {
		panics += bd.PanicsRecovered
	}
	if panics != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", panics)
	}
}

// --- overload shedding ------------------------------------------------

// TestOverloadShedLadder drives the ladder end to end: an impossible
// frame budget trips levels 1→3 (half-rate far clients, entity caps,
// busy rejections), near clients keep at least 80% of their pre-overload
// response rate, and restoring the budget walks the ladder back down
// with hysteresis.
func TestOverloadShedLadder(t *testing.T) {
	const (
		numBots = 8
		window  = 60
	)
	rig := newRigCfg(t, 2, numBots, locking.Optimized{}, func(cfg *Config) {
		cfg.Assign = RoundRobinAssign
		cfg.OverloadEntityCap = 1 // guarantee truncation at level 2
	})
	par := rig.engine.(*Parallel)

	// Pre-overload baseline window.
	rig.drive(20, 2*time.Millisecond) // warm-up
	pre0 := replyCounts(rig.bots)
	rig.drive(window, 2*time.Millisecond)
	pre := deltas(replyCounts(rig.bots), pre0)

	// Impossible budget: every frame is over, the ladder climbs to 3.
	par.SetFrameBudget(time.Nanosecond)
	rig.drive(60, 2*time.Millisecond) // > trip*3 frames of ramp
	if lvl := par.ShedLevel(); lvl != int(shedRejectNew) {
		t.Fatalf("shed level = %d after sustained overload, want %d", lvl, shedRejectNew)
	}

	// Level 3 refuses new connections with "busy".
	bc, err := rig.net.Listen("late-joiner")
	if err != nil {
		t.Fatal(err)
	}
	late, err := botclient.New(botclient.Config{
		Name: "late", Conn: bc, Server: transport.MemAddr("srv:0"),
		Map: rig.m, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Connect(); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Errorf("overloaded server accepted a new client (err=%v), want busy rejection", err)
	}

	// Overload window: at least half the retained clients (the near
	// half) must keep >= 80% of their pre-overload response rate.
	over0 := replyCounts(rig.bots)
	rig.drive(window, 2*time.Millisecond)
	over := deltas(replyCounts(rig.bots), over0)
	kept := 0
	for i := range rig.bots {
		if pre[i] > 0 && float64(over[i]) >= 0.8*float64(pre[i]) {
			kept++
		}
	}
	if kept < numBots/2 {
		t.Errorf("only %d/%d clients kept >=80%% of their pre-overload rate (pre=%v over=%v)",
			kept, numBots, pre, over)
	}

	// Hysteresis restore: frames comfortably under budget walk the
	// ladder back to zero (clear*3 consecutive under-budget frames).
	par.SetFrameBudget(time.Hour)
	rig.drive(150, 2*time.Millisecond)
	if lvl := par.ShedLevel(); lvl != int(shedNone) {
		t.Errorf("shed level = %d after load cleared, want 0", lvl)
	}
	post0 := replyCounts(rig.bots)
	rig.drive(window, 2*time.Millisecond)
	post := deltas(replyCounts(rig.bots), post0)
	restored := 0
	for i := range rig.bots {
		if pre[i] > 0 && float64(post[i]) >= 0.8*float64(pre[i]) {
			restored++
		}
	}
	if restored < numBots-1 {
		t.Errorf("only %d/%d clients recovered full rate after restore (pre=%v post=%v)",
			restored, numBots, pre, post)
	}

	rig.engine.Stop()
	var bd metrics.Breakdown
	for _, b := range rig.engine.Breakdowns() {
		bd.RepliesShed += b.RepliesShed
		bd.EntitiesCapped += b.EntitiesCapped
		bd.BusyRejects += b.BusyRejects
	}
	if bd.RepliesShed == 0 {
		t.Error("ladder engaged but RepliesShed == 0")
	}
	if bd.EntitiesCapped == 0 {
		t.Error("ladder reached level 2 but EntitiesCapped == 0")
	}
	if bd.BusyRejects == 0 {
		t.Error("busy rejection not counted in BusyRejects")
	}
	// The shed level must also be visible in the frame log.
	maxLevel := 0
	for _, fr := range par.FrameLog().Frames {
		if fr.ShedLevel > maxLevel {
			maxLevel = fr.ShedLevel
		}
	}
	if maxLevel != int(shedRejectNew) {
		t.Errorf("FrameLog max shed level = %d, want %d", maxLevel, shedRejectNew)
	}
}

func deltas(after, before []int64) []int64 {
	out := make([]int64, len(after))
	for i := range after {
		out[i] = after[i] - before[i]
	}
	return out
}

// --- graceful shutdown ------------------------------------------------

// TestGracefulShutdown: while draining, new connections are refused with
// "server shutting down"; Shutdown sends every connected client a final
// Disconnected notice and empties the client table.
func TestGracefulShutdown(t *testing.T) {
	for _, threads := range []int{0, 2} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			m := worldmap.MustGenerate(worldmap.DefaultConfig())
			w, err := game.NewWorld(game.Config{Map: m, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 1024})
			conns := make([]transport.Conn, max(threads, 1))
			for i := range conns {
				if conns[i], err = net.Listen(fmt.Sprintf("srv:%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			cfg := Config{
				World: w, Conns: conns, Threads: threads,
				Strategy: locking.Optimized{}, MaxClients: 8,
				SelectTimeout: 2 * time.Millisecond,
			}
			var eng Engine
			var setDraining func(bool)
			if threads <= 0 {
				s, err := NewSequential(cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng, setDraining = s, func(v bool) { s.draining.Store(v) }
			} else {
				s, err := NewParallel(cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng, setDraining = s, func(v bool) { s.draining.Store(v) }
			}
			eng.Start()
			defer eng.Stop()

			cc, err := net.Listen("client")
			if err != nil {
				t.Fatal(err)
			}
			sendMsg(t, cc, "srv:0", &protocol.Connect{Name: "c", FrameMs: 33, ProtocolVer: protocol.Version})
			if _, ok := recvMsg(t, cc, time.Second).(*protocol.Accept); !ok {
				t.Fatal("client not accepted")
			}

			// Draining refuses new connections.
			setDraining(true)
			lc, err := net.Listen("late")
			if err != nil {
				t.Fatal(err)
			}
			sendMsg(t, lc, "srv:0", &protocol.Connect{Name: "late", FrameMs: 33, ProtocolVer: protocol.Version})
			rej, ok := recvMsg(t, lc, time.Second).(*protocol.Reject)
			if !ok || rej.Reason != "server shutting down" {
				t.Fatalf("draining server answered %#v, want shutdown rejection", rej)
			}
			setDraining(false)

			// Shutdown notifies the connected client.
			type shutdowner interface{ Shutdown() }
			eng.(shutdowner).Shutdown()
			deadline := time.Now().Add(2 * time.Second)
			for {
				msg := recvMsg(t, cc, time.Until(deadline))
				if msg == nil {
					t.Fatal("no Disconnected notice before shutdown completed")
				}
				if d, ok := msg.(*protocol.Disconnected); ok {
					if d.Reason != "server shutting down" {
						t.Fatalf("Disconnected reason = %q", d.Reason)
					}
					break
				}
			}
			if n := eng.NumClients(); n != 0 {
				t.Errorf("clients after shutdown = %d, want 0", n)
			}
		})
	}
}

func sendMsg(t *testing.T, c transport.Conn, to string, msg any) {
	t.Helper()
	var wr protocol.Writer
	if err := protocol.Encode(&wr, msg); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(transport.MemAddr(to), wr.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func recvMsg(t *testing.T, c transport.Conn, timeout time.Duration) any {
	t.Helper()
	buf := make([]byte, 4*transport.MaxDatagram)
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		n, _, err := c.Recv(buf, remain)
		if err != nil {
			continue
		}
		msg, err := protocol.Decode(buf[:n])
		if err != nil {
			continue
		}
		return msg
	}
}
