package server

import (
	"fmt"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// testRig wires a server engine, an in-memory network, and a set of
// connected bots.
type testRig struct {
	net    *transport.Network
	world  *game.World
	engine Engine
	bots   []*botclient.Bot
	m      *worldmap.Map
}

func newRig(t *testing.T, threads, numBots int, strat locking.Strategy) *testRig {
	t.Helper()
	return newRigCfg(t, threads, numBots, strat, nil)
}

// newRigCfg is newRig with a config mutator applied before the engine is
// built (balancing policy, timeouts, …).
func newRigCfg(t *testing.T, threads, numBots int, strat locking.Strategy, mut func(*Config)) *testRig {
	t.Helper()
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 2048})

	conns := make([]transport.Conn, max(threads, 1))
	for i := range conns {
		c, err := net.Listen(fmt.Sprintf("srv:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	cfg := Config{
		World:         w,
		Conns:         conns,
		Threads:       threads,
		Strategy:      strat,
		MaxClients:    numBots + 4,
		SelectTimeout: 2 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	var eng Engine
	if threads <= 0 {
		eng, err = NewSequential(cfg)
	} else {
		eng, err = NewParallel(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{net: net, world: w, engine: eng, m: m}
	eng.Start()
	t.Cleanup(eng.Stop)

	for i := 0; i < numBots; i++ {
		bc, err := net.Listen(fmt.Sprintf("bot:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		bot, err := botclient.New(botclient.Config{
			Name:   fmt.Sprintf("bot-%d", i),
			Conn:   bc,
			Server: transport.MemAddr("srv:0"),
			Map:    m,
			Seed:   int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := bot.Connect(); err != nil {
			t.Fatalf("bot %d: %v", i, err)
		}
		rig.bots = append(rig.bots, bot)
	}
	return rig
}

// drive steps every bot for n client frames with the given inter-frame
// pause, simulating 30fps clients at compressed time.
func (r *testRig) drive(n int, pause time.Duration) {
	for f := 0; f < n; f++ {
		for _, b := range r.bots {
			b.Step()
		}
		time.Sleep(pause)
	}
	// Final drain so reply stats settle.
	time.Sleep(20 * time.Millisecond)
	for _, b := range r.bots {
		b.Step()
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSequentialEndToEnd(t *testing.T) {
	rig := newRig(t, 0, 8, nil)
	rig.drive(60, 3*time.Millisecond)
	rig.engine.Stop() // breakdowns are only readable after Stop

	if rig.engine.Frames() == 0 {
		t.Fatal("no frames executed")
	}
	if rig.engine.Replies() == 0 {
		t.Fatal("no replies sent")
	}
	for i, b := range rig.bots {
		if b.Snapshots == 0 {
			t.Errorf("bot %d received no snapshots", i)
		}
		if b.Moved < 50 {
			t.Errorf("bot %d barely moved: %v units", i, b.Moved)
		}
	}
	bd := rig.engine.Breakdowns()[0]
	if bd.Ns[metrics.CompExec] == 0 || bd.Ns[metrics.CompReply] == 0 {
		t.Errorf("sequential breakdown empty: %s", bd.String())
	}
	if bd.Ns[metrics.CompLock] != 0 {
		t.Errorf("sequential server charged lock time: %s", bd.String())
	}
}

func TestParallelEndToEnd(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		threads := threads
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			rig := newRig(t, threads, 12, locking.Conservative{})
			rig.drive(60, 3*time.Millisecond)
			rig.engine.Stop()

			if rig.engine.Frames() == 0 {
				t.Fatal("no frames executed")
			}
			if rig.engine.Replies() == 0 {
				t.Fatal("no replies sent")
			}
			gotSnapshots := 0
			for _, b := range rig.bots {
				if b.Snapshots > 0 {
					gotSnapshots++
				}
			}
			if gotSnapshots < len(rig.bots) {
				t.Errorf("only %d of %d bots got snapshots", gotSnapshots, len(rig.bots))
			}
			var total metrics.Breakdown
			for _, bd := range rig.engine.Breakdowns() {
				total.Add(&bd)
			}
			if total.Ns[metrics.CompExec] == 0 {
				t.Error("no exec time recorded")
			}
			if total.Ns[metrics.CompLock] == 0 {
				t.Error("no lock time recorded (locking enabled)")
			}
			if total.Ns[metrics.CompWorld] == 0 {
				t.Error("no world-update time recorded")
			}
			// The areanode tree must stay consistent.
			if linked := rig.world.Tree.TotalLinked(); linked == 0 {
				t.Error("tree empty after run")
			}
			p := rig.engine.(*Parallel)
			if len(p.FrameLog().Frames) == 0 {
				t.Error("frame log empty")
			}
		})
	}
}

func TestParallelEveryRequestAnswered(t *testing.T) {
	rig := newRig(t, 2, 6, locking.Optimized{})
	rig.drive(80, 2*time.Millisecond)
	for i, b := range rig.bots {
		// Bots send ~80 requests; allowing for the final frame in
		// flight, nearly all must be answered.
		if b.Resp.Replies < 40 {
			t.Errorf("bot %d: only %d replies", i, b.Resp.Replies)
		}
	}
}

func TestConnectRejectWhenFull(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, _ := game.NewWorld(game.Config{Map: m, Seed: 1})
	net := transport.NewNetwork(transport.NetworkConfig{})
	conn, _ := net.Listen("srv:0")
	srv, err := NewSequential(Config{
		World: w, Conns: []transport.Conn{conn},
		MaxClients: 1, SelectTimeout: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	mk := func(name string) *botclient.Bot {
		bc, _ := net.Listen(name)
		b, _ := botclient.New(botclient.Config{
			Name: name, Conn: bc, Server: transport.MemAddr("srv:0"),
			Map: m, Seed: 9, ConnectTimeout: time.Second,
		})
		return b
	}
	if err := mk("bot:a").Connect(); err != nil {
		t.Fatalf("first connect: %v", err)
	}
	if err := mk("bot:b").Connect(); err == nil {
		t.Fatal("second connect accepted on a full server")
	}
	if srv.NumClients() != 1 {
		t.Errorf("clients = %d", srv.NumClients())
	}
}

func TestDuplicateConnectIsIdempotent(t *testing.T) {
	rig := newRig(t, 0, 1, nil)
	before := rig.engine.NumClients()
	if err := rig.bots[0].Connect(); err != nil {
		t.Fatalf("re-connect: %v", err)
	}
	if rig.engine.NumClients() != before {
		t.Errorf("duplicate connect changed client count: %d -> %d", before, rig.engine.NumClients())
	}
}

func TestDisconnectRemovesPlayer(t *testing.T) {
	rig := newRig(t, 2, 3, locking.Conservative{})
	rig.drive(10, 2*time.Millisecond)
	before := rig.engine.NumClients()
	if before != 3 {
		t.Fatalf("clients = %d", before)
	}
	stop := make(chan struct{})
	close(stop)
	rig.bots[0].Run(stop) // runs zero frames and sends Disconnect

	// Let the server process the disconnect: another bot drives a frame.
	deadline := time.Now().Add(2 * time.Second)
	for rig.engine.NumClients() != 2 && time.Now().Before(deadline) {
		rig.bots[1].Step()
		time.Sleep(5 * time.Millisecond)
	}
	if rig.engine.NumClients() != 2 {
		t.Errorf("clients after disconnect = %d", rig.engine.NumClients())
	}
}

func TestBlockAssign(t *testing.T) {
	// 8 clients over 4 threads with capacity 8: two per thread, in
	// contiguous blocks.
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, BlockAssign(i, 4, 8))
	}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BlockAssign = %v, want %v", got, want)
		}
	}
	// Past capacity it degrades to round-robin, still in range.
	for i := 8; i < 20; i++ {
		th := BlockAssign(i, 4, 8)
		if th < 0 || th >= 4 {
			t.Fatalf("assign out of range: %d", th)
		}
	}
	if RoundRobinAssign(7, 4, 0) != 3 {
		t.Error("round robin wrong")
	}
}

func TestFrameCtlBarrierOrdering(t *testing.T) {
	fc := newFrameCtl()
	if role := fc.join(0); role != roleMaster {
		t.Fatalf("first join role = %v", role)
	}
	if role := fc.join(1); role != roleWorker {
		t.Fatalf("second join role = %v", role)
	}
	fc.openRequests()
	if role := fc.join(2); role != roleMissed {
		t.Fatalf("late join role = %v", role)
	}

	done := make(chan int, 2)
	go func() {
		fc.doneRequests(0) // blocks until both arrive
		done <- 1
	}()
	select {
	case <-done:
		t.Fatal("barrier released with one of two participants")
	case <-time.After(20 * time.Millisecond):
	}
	if !fc.doneRequests(1) {
		t.Fatal("live participant reported abandoned at request barrier")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("barrier never released")
	}

	if ok, promoted := fc.doneReply(0); !ok || promoted {
		t.Fatalf("doneReply(0) = %v, %v; want ok, no promotion", ok, promoted)
	}
	if ok, promoted := fc.doneReply(1); !ok || promoted {
		t.Fatalf("doneReply(1) = %v, %v; want ok, no promotion", ok, promoted)
	}
	fc.waitAllReplied() // must not block now

	endSeen := make(chan struct{})
	go func() {
		fc.waitFrameEnd()
		close(endSeen)
	}()
	time.Sleep(10 * time.Millisecond)
	fc.endFrame()
	select {
	case <-endSeen:
	case <-time.After(time.Second):
		t.Fatal("frame end signal lost")
	}
	if fc.frameNumber() != 1 {
		t.Errorf("frame number = %d", fc.frameNumber())
	}
	// Next frame is joinable again.
	if role := fc.join(2); role != roleMaster {
		t.Errorf("post-frame join role = %v", role)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSequential(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, _ := game.NewWorld(game.Config{Map: m})
	if _, err := NewParallel(Config{World: w, Threads: 4}); err == nil {
		t.Error("parallel config without conns accepted")
	}
	net := transport.NewNetwork(transport.NetworkConfig{})
	c1, _ := net.Listen("")
	if _, err := NewParallel(Config{World: w, Threads: 4, Conns: []transport.Conn{c1}}); err == nil {
		t.Error("conn/thread mismatch accepted")
	}
}
