// Package server implements the live execution engines for the game
// server: the sequential baseline (the paper's Figure 1 loop) and the
// multithreaded parallel server (Figure 3) with phase barriers, frame
// master election, the global-state-buffer lock, and region locking over
// the areanode tree. "Threads" are goroutines; on a multicore host the Go
// runtime spreads them across CPUs exactly as pthreads would.
//
// The companion package simserver runs the same orchestration on a
// simulated machine with virtual time; this package is the real,
// deployable server.
package server

import (
	"sync"
	"sync/atomic"
	"time"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/transport"
)

// client is the server-side record of one connected player.
type client struct {
	id    uint16
	entID entity.ID
	name  string
	addr  transport.Addr
	// addrStr caches addr.String(): it keys the byAddr index and lets the
	// checkpoint capture record the address without allocating per frame.
	// For a client parked by restore (addr == nil until it reconnects) it
	// holds the checkpointed address, so a survivor returning from the
	// same endpoint maps straight onto its old record.
	addrStr string
	// thread is the owning server thread. Static until the load balancer
	// migrates the client: the frame master rewrites it at the rebalance
	// barrier, where no request is in flight and the frame controller's
	// mutex orders the write before any later frame's reads.
	thread int

	// loadNs is the client's decayed execute-phase cost, the balancer's
	// input. Charged by whichever thread executes the client's request —
	// the owner, or a thief under work stealing; either way the cost
	// names the serving client, so migration plans reflect who is
	// expensive, not who ran them. Read and decayed (by atomic
	// subtraction) by the master at the barrier. Atomic because a wedged
	// thread abandoned by the watchdog may still be mid-write when the
	// master reads.
	loadNs atomic.Int64

	// Request-phase state, touched only by the owning thread.
	replyPending bool
	lastSeq      uint32 // sequence of the request being answered

	// repliedFrame is the last frame this client received a reply in.
	// Written by the owning thread during the reply phase and read by
	// the master during cleanup. The frame barriers order the accesses in
	// normal operation; atomic so an abandoned (zombie) thread straggling
	// through its reply phase cannot race the master.
	repliedFrame atomic.Uint32

	// claim serializes request execution for this client under work
	// stealing: an executor CASes it from 0 to its worker id+1 before
	// running one of the client's pooled requests and stores 0 after the
	// commit. At most one request per client is ever in flight, and pool
	// scans take a client's oldest entry first, so the claim preserves
	// per-client FIFO execution — the order static assignment provided
	// for free. The CAS/store pair also gives release/acquire ordering
	// for the thief's plain writes to replyPending/lastSeq before the
	// owner's reply phase reads them (the owner observes the completion
	// counter that is decremented after the claim release). Unused (0)
	// when stealing is off.
	claim atomic.Int32

	// leafHint caches the leaf-ordinal bitmask of the client's last
	// executed move (the frameLeafMask vocabulary of Fig. 7c). The
	// stealing scheduler reads it to skip stealing requests whose region
	// probably conflicts with work other threads are executing right now.
	// Purely a heuristic: correctness comes from the region locks, and 0
	// (no information) permits stealing.
	leafHint atomic.Uint64

	// gone marks a removed client: its entity slot has been (or is about
	// to be) freed and may already be recycled as some other entity, so
	// pooled requests of this client still in flight must complete as
	// no-ops without touching it. Set while holding the client's claim
	// (claimForRemoval), so the claim-release/claim-acquire pair orders
	// the flag before any later executor's entity reads.
	gone atomic.Bool

	// quarantined marks a client whose request wedged its owning thread:
	// the watchdog sets it when it abandons the thread, every thread drops
	// the client's traffic, and the recovering thread evicts it. Also set
	// by panic containment between the recover and the eviction.
	quarantined atomic.Bool

	// quarantinedBy records which worker (id+1) quarantined the client,
	// so the recovery path evicts exactly the clients it condemned. With
	// stealing, the wedged request's client may belong to a *different*
	// thread than the executor the watchdog abandoned; keying recovery on
	// ownership alone would leave such a client quarantined forever.
	// 0 means unattributed (legacy paths); rolled back together with
	// quarantined when an abandonment attempt fails.
	quarantinedBy atomic.Int32

	// shedFar marks the client as far from the action centroid: under
	// overload (shed level >= 1) its snapshot rate is halved. Computed by
	// the master at frame cleanup, read by owning threads' reply phases.
	shedFar atomic.Bool

	// baseline is the last entity set sent, for delta compression.
	// Owned by the owning thread (reply phase); the request phase of the
	// same thread may Invalidate it (the frame barriers order the two).
	baseline Baseline

	// resetBaseline asks the owning thread's reply phase to invalidate
	// the baseline. Any thread may set it (duplicate connects can arrive
	// on any endpoint); only the owner consumes it.
	resetBaseline atomic.Bool

	// seqResync suspends the duplicate/wild seq window for the client's
	// next accepted move, which re-seeds lastSeq instead of being
	// filtered. Set on restore-parked and drain-resumed clients, whose
	// peer may have restarted its own seq space (older than lastSeq) or
	// raced far ahead of the recovered counter; consumed by the owning
	// thread at its first accepted command. Deliberately NOT set on
	// ordinary duplicate connects: a mid-session re-handshake must not
	// open a replay window for stale datagrams.
	seqResync atomic.Bool

	// awaitingResume marks a client restored from a checkpoint and parked
	// for its player to reconnect: addr is nil (nothing is sent to it), and
	// the first Connect matching its address or name rebinds it in place —
	// keeping its entity, seq state, and identity — instead of admitting a
	// new player. Aged out by the normal stale-client reaper if the player
	// never returns.
	awaitingResume atomic.Bool

	// fwdFrame, when nonzero, records frameNumber+1 of the moment a worker
	// forwarded one of this client's datagrams to the owning thread. While
	// set, the balancer must not migrate the client: a migration would
	// re-route the datagram to yet another thread, and under per-frame
	// migration the datagram can chase the assignment forever (a livelock
	// observed in the conformance suite). The owning thread clears it when
	// the command executes; the balancer also expires stale stamps, in
	// case the forwarded datagram was dropped. Atomic because any worker
	// may forward.
	fwdFrame atomic.Uint64

	// backlog holds broadcast events queued while the client was not
	// replied to. It is the per-player reply message buffer of §3.3,
	// "synchronized with locks (one per buffer)".
	backlogMu sync.Mutex
	backlog   []protocol.GameEvent

	// lastActive is the wall clock (UnixNano) of the client's last valid
	// request, for the stale-client reaper. Atomic for the same
	// zombie-straggler reason as repliedFrame.
	lastActive atomic.Int64
}

// touch stamps the client's activity clock.
func (c *client) touch(t time.Time) { c.lastActive.Store(t.UnixNano()) }

// markReplied records that the client was answered in the given frame.
func (c *client) markReplied(frame uint32) { c.repliedFrame.Store(frame) }

// queueEvents appends events to the client's backlog under its buffer
// lock.
func (c *client) queueEvents(events []protocol.GameEvent) {
	if len(events) == 0 {
		return
	}
	c.backlogMu.Lock()
	c.backlog = append(c.backlog, events...)
	if len(c.backlog) > 128 {
		// Bound memory for clients that stop requesting updates.
		c.backlog = c.backlog[len(c.backlog)-128:]
	}
	c.backlogMu.Unlock()
}

// drainBacklog appends the backlog to dst under its lock and empties it,
// keeping the backlog's capacity for reuse. dst is typically a reusable
// per-thread buffer, so the drain allocates nothing in steady state.
func (c *client) drainBacklog(dst []protocol.GameEvent) []protocol.GameEvent {
	c.backlogMu.Lock()
	defer c.backlogMu.Unlock()
	dst = append(dst, c.backlog...)
	c.backlog = c.backlog[:0]
	return dst
}

// clientTable is the server-wide registry. Connection handling mutates
// it; frame phases only read, so an RWMutex suffices.
//
// ordered mirrors byID sorted by client id. Every per-frame sweep
// (events, stale eviction, shed-far, rebalance input) iterates this
// slice instead of ranging the map: Go's randomized map iteration order
// would otherwise leak into eviction order, event-queue order, and —
// through entity-slot recycling — the world state itself, breaking
// bit-identical replay. Maintained on add/remove; adds are O(1) in the
// common case because ids are assigned in increasing order.
type clientTable struct {
	mu      sync.RWMutex
	byAddr  map[string]*client
	byID    map[uint16]*client
	ordered []*client
	nextID  uint16
	maxSize int
}

func newClientTable(maxSize int) *clientTable {
	return &clientTable{
		byAddr:  make(map[string]*client),
		byID:    make(map[uint16]*client),
		maxSize: maxSize,
	}
}

func (t *clientTable) lookup(addr transport.Addr) *client {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.byAddr[addr.String()]
}

func (t *clientTable) lookupID(id uint16) *client {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.byID[id]
}

func (t *clientTable) add(c *client) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.byID) >= t.maxSize {
		return false
	}
	c.id = t.nextID
	t.nextID++
	c.addrStr = c.addr.String()
	t.byAddr[c.addrStr] = c
	t.byID[c.id] = c
	t.insertOrdered(c)
	return true
}

// addRestored inserts a checkpointed client under its recorded id. The
// id allocator advances past it so later joins cannot collide with a
// restored identity. Restore-time only (no concurrent engine).
func (t *clientTable) addRestored(c *client) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.byID) >= t.maxSize {
		return false
	}
	if _, dup := t.byID[c.id]; dup {
		return false
	}
	if c.addrStr != "" {
		t.byAddr[c.addrStr] = c
	}
	t.byID[c.id] = c
	t.insertOrdered(c)
	if c.id >= t.nextID {
		t.nextID = c.id + 1
	}
	return true
}

// setNextID advances the id allocator to at least n (the checkpointed
// counter), so ids of clients that disconnected before the crash are not
// reissued to post-restore joiners while their player may still try to
// resume against a stale id.
func (t *clientTable) setNextID(n uint16) {
	t.mu.Lock()
	if n > t.nextID {
		t.nextID = n
	}
	t.mu.Unlock()
}

// insertOrdered adds c to the id-sorted slice; callers hold t.mu. Ids
// are normally handed out in increasing order, so this is an append.
func (t *clientTable) insertOrdered(c *client) {
	pos := len(t.ordered)
	for pos > 0 && t.ordered[pos-1].id > c.id {
		pos--
	}
	t.ordered = append(t.ordered, nil)
	copy(t.ordered[pos+1:], t.ordered[pos:])
	t.ordered[pos] = c
}

// rebind points a parked (or roaming) client at a new transport address,
// rekeying the byAddr index.
func (t *clientTable) rebind(c *client, addr transport.Addr) {
	t.mu.Lock()
	if c.addrStr != "" && t.byAddr[c.addrStr] == c {
		delete(t.byAddr, c.addrStr)
	}
	c.addr = addr
	c.addrStr = addr.String()
	t.byAddr[c.addrStr] = c
	t.mu.Unlock()
}

// lookupResume finds a parked awaiting-resume client by player name —
// the fallback match for a survivor reconnecting from a new address
// (NAT rebind across the restart). Lowest id wins on (unlikely)
// duplicate names, keeping the match deterministic.
func (t *clientTable) lookupResume(name string) *client {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range t.ordered {
		if c.awaitingResume.Load() && c.name == name {
			return c
		}
	}
	return nil
}

func (t *clientTable) remove(c *client) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byID[c.id] != c {
		return // already removed (idempotent paths race benignly)
	}
	if t.byAddr[c.addrStr] == c {
		delete(t.byAddr, c.addrStr)
	}
	delete(t.byID, c.id)
	for i, o := range t.ordered {
		if o == c {
			t.ordered = append(t.ordered[:i], t.ordered[i+1:]...)
			break
		}
	}
}

func (t *clientTable) count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byID)
}

// snapshotInto appends the current client set to buf under the read lock
// and returns the extended buffer. Callers iterate the snapshot lock-free
// (visitors may send packets). The snapshot is in client-id order — a
// determinism requirement, not a convenience (see clientTable).
func (t *clientTable) snapshotInto(buf []*client) []*client {
	t.mu.RLock()
	buf = append(buf, t.ordered...)
	t.mu.RUnlock()
	return buf
}

// forEach snapshots the client set and visits each entry without holding
// the lock. It allocates the snapshot; per-frame paths use forEachBuf /
// forThreadBuf with a reused scratch buffer instead.
func (t *clientTable) forEach(fn func(*client)) {
	for _, c := range t.snapshotInto(nil) {
		fn(c)
	}
}

// forEachBuf is forEach with a caller-owned snapshot buffer, so steady-
// state frame sweeps allocate nothing. It returns the (possibly grown)
// buffer for the caller to stash.
func (t *clientTable) forEachBuf(buf []*client, fn func(*client)) []*client {
	buf = t.snapshotInto(buf[:0])
	for _, c := range buf {
		fn(c)
	}
	return buf
}

// forThread visits the clients owned by one server thread.
func (t *clientTable) forThread(thread int, fn func(*client)) {
	t.forEach(func(c *client) {
		if c.thread == thread {
			fn(c)
		}
	})
}

// forThreadBuf is forThread with a caller-owned snapshot buffer.
func (t *clientTable) forThreadBuf(buf []*client, thread int, fn func(*client)) []*client {
	buf = t.snapshotInto(buf[:0])
	for _, c := range buf {
		if c.thread == thread {
			fn(c)
		}
	}
	return buf
}

// seqOlder reports whether sequence a is not newer than b under uint32
// wraparound arithmetic (serial number comparison).
func seqOlder(a, b uint32) bool {
	return a == b || int32(a-b) < 0
}

// maxSeqAdvance bounds how far ahead of the last executed command a
// move's sequence number may jump. Clients advance Seq by one per
// command, so even a burst flushed after a long outage stays far inside
// this window.
const maxSeqAdvance = 1 << 12

// seqWild reports whether sequence a is implausibly far ahead of b —
// the signature of a corrupted datagram that happened to decode as a
// structurally valid Move. Storing such a sequence would poison the
// duplicate filter: every legitimate future move would compare "older"
// and be dropped, permanently silencing the client off a single
// bit-flip. Callers check seqOlder first, so a-b here is a forward
// delta in [1, 2^31) and the comparison is wraparound-safe.
func seqWild(a, b uint32) bool {
	return a-b > maxSeqAdvance
}

// wireEvents converts game events to their protocol form.
func wireEvents(events []game.Event) []protocol.GameEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]protocol.GameEvent, len(events))
	for i, ev := range events {
		out[i] = ev.WireEvent()
	}
	return out
}
