package server

import (
	"time"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/protocol"
)

// This file implements the allocation-free reply pipeline. The paper's
// breakdowns show reply processing (T/Tx) costing roughly twice the
// request phase and dominating frame time at high player counts (§4,
// Fig. 4–5); paying a heap allocation per entity list, per delta
// baseline, and per datagram on every client every frame multiplies that
// dominant cost with GC pressure. Instead, each server thread owns one
// ReplyScratch whose buffers are reused across clients and frames, and
// each client retains its last-sent entity set in a Baseline that
// advances by swapping buffers with the scratch — zero steady-state
// allocations, byte-identical wire output (see golden_test.go).
//
// Ownership rules:
//
//   - ReplyScratch is owned by exactly one server thread and must not be
//     shared; the datagram FormSnapshot returns aliases the scratch and
//     is valid only until the next FormSnapshot call on the same scratch
//     (transports copy before Send returns — see transport.Conn).
//   - Baseline is owned by the reply phase of the thread that owns its
//     client. Invalidate may additionally be called from the request
//     phase of the owning thread; the frame barriers order the two
//     phases.

// Baseline is one client's retained delta-compression reference: the
// entity set most recently sent to that client. The zero value is an
// empty baseline (next snapshot sends every visible entity as DNew).
type Baseline struct {
	states []protocol.EntityState
	// tag identifies the snapshot that established this baseline: that
	// snapshot's Frame+1, or 0 for an empty baseline. It travels on the
	// wire as Snapshot.BaseFrame so the client can detect a missed
	// snapshot (its table tag won't match) instead of silently applying a
	// delta against the wrong reference.
	tag uint32
}

// Invalidate empties the baseline so the next snapshot carries full
// entity state. Called when delta continuity is lost: a reconnect (the
// client forgot its state) or a sequence gap wide enough that the client
// may have missed the snapshots the baseline assumes it holds.
func (b *Baseline) Invalidate() {
	b.states = b.states[:0]
	b.tag = 0
}

// Len returns the number of entity states in the baseline.
func (b *Baseline) Len() int { return len(b.states) }

// Tag returns the baseline's continuity tag (0 when empty).
func (b *Baseline) Tag() uint32 { return b.tag }

// States returns the retained entity states backing the baseline. The
// slice aliases internal storage: callers may only read it, and only
// while the owning thread is quiescent (the DES durability capture reads
// it at the frame barrier).
func (b *Baseline) States() []protocol.EntityState { return b.states }

// ReplyStats reports one FormSnapshot call's volume: datagram size,
// buffer growths (zero in steady state), entities truncated by the
// overload cap, the snapshot-formation work counters, and the wall time
// spent assembling the visible-entity set (SnapNs), which the engines
// aggregate into the frame breakdown's snapshot-merge sub-phase.
type ReplyStats struct {
	Bytes  int
	Allocs int
	Capped int
	SnapNs int64
	Work   game.SnapshotWork
}

// ReplyScratch is one server thread's reusable reply-phase state: the
// entity-state slice fed to BuildSnapshot's dst, the delta and event
// lists, the encoder, and the outgoing datagram buffer. The zero value
// is ready to use; buffers grow to the high-water mark and are then
// reused forever.
type ReplyScratch struct {
	states []protocol.EntityState
	deltas []protocol.EntityDelta
	events []protocol.GameEvent
	writer protocol.Writer
	snap   protocol.Snapshot // persistent, so &rs.snap never escapes to the heap
}

// FormSnapshot builds and encodes one client's snapshot reply without
// allocating in steady state. The returned datagram aliases the scratch
// and is valid only until the next call; base advances to the newly
// built entity set by buffer swap (the old baseline buffer becomes the
// next call's scratch), so callers never copy entity states.
//
// vi, when non-nil, is the frame's shared visibility index: the visible
// set is assembled by filtering the index's precomputed entity-state
// cache (byte-identical to the naive scan) instead of re-scanning and
// re-encoding the entity table per client. A nil vi keeps the naive
// path. Either way the states are copied into the scratch, so the
// baseline-swap ownership dance below never aliases the shared index.
//
// entityLimit, when positive, caps the visible-entity set (the overload
// ladder's level-2 degradation). Truncation stays delta-consistent: the
// baseline advances to the truncated set, so entities dropped by the cap
// produce DRemove deltas and reappear as DNew when the cap lifts.
//
//qvet:phase=reply
//qvet:noalloc
func (rs *ReplyScratch) FormSnapshot(
	w *game.World, vi *game.VisIndex, viewer *entity.Entity, base *Baseline,
	frame, ackSeq, serverTime uint32,
	backlog, frameEvents []protocol.GameEvent,
	entityLimit int,
) ([]byte, ReplyStats) {
	capStates := cap(rs.states)
	capDeltas := cap(rs.deltas)
	capEvents := cap(rs.events)
	capBuf := cap(rs.writer.Buf)

	snapStart := time.Now()
	var states []protocol.EntityState
	var work game.SnapshotWork
	if vi != nil {
		states, work = vi.AppendVisible(viewer, rs.states[:0])
	} else {
		states, work = w.BuildSnapshot(viewer, rs.states[:0])
	}
	snapNs := time.Since(snapStart).Nanoseconds()
	capped := 0
	if entityLimit > 0 && len(states) > entityLimit {
		capped = len(states) - entityLimit
		states = states[:entityLimit]
	}
	rs.states = states
	rs.deltas = protocol.AppendDeltaEntities(rs.deltas[:0], base.states, states)
	rs.events = append(rs.events[:0], backlog...)
	rs.events = append(rs.events, frameEvents...)

	rs.snap = protocol.Snapshot{
		Frame:      frame,
		AckSeq:     ackSeq,
		BaseFrame:  base.tag,
		ServerTime: serverTime,
		You:        game.PlayerStateOf(viewer),
		Delta:      rs.deltas,
		Events:     rs.events,
	}
	rs.writer.Reset()
	if err := protocol.Encode(&rs.writer, &rs.snap); err != nil {
		return nil, ReplyStats{SnapNs: snapNs, Work: work}
	}

	// Advance the baseline by swapping buffers: base now holds the entity
	// set just sent, and the retired baseline buffer becomes the scratch
	// for the next client. Equivalent to copying states into base, minus
	// the copy.
	base.states, rs.states = rs.states, base.states
	base.tag = frame + 1

	st := ReplyStats{Bytes: len(rs.writer.Buf), Capped: capped, SnapNs: snapNs, Work: work}
	if cap(base.states) > capStates {
		st.Allocs++
	}
	if cap(rs.deltas) > capDeltas {
		st.Allocs++
	}
	if cap(rs.events) > capEvents {
		st.Allocs++
	}
	if cap(rs.writer.Buf) > capBuf {
		st.Allocs++
	}
	return rs.writer.Buf, st
}

// ReferenceFormSnapshot is the pre-pooling reply path, kept as the
// correctness oracle: fresh allocations for every list and the encoder,
// baseline advanced by copy. The golden-stream test asserts FormSnapshot
// produces byte-identical datagrams, and BenchmarkReplyPhaseAllocs
// measures the two paths against each other. It returns the datagram,
// the new baseline slice, and the new baseline tag.
func ReferenceFormSnapshot(
	w *game.World, viewer *entity.Entity, baseline []protocol.EntityState, baseTag uint32,
	frame, ackSeq, serverTime uint32,
	backlog, frameEvents []protocol.GameEvent,
) ([]byte, []protocol.EntityState, uint32) {
	states, _ := w.BuildSnapshot(viewer, nil)
	delta := protocol.DeltaEntities(baseline, states)
	var events []protocol.GameEvent
	events = append(events, backlog...)
	events = append(events, frameEvents...)
	var wr protocol.Writer
	if err := protocol.Encode(&wr, &protocol.Snapshot{
		Frame:      frame,
		AckSeq:     ackSeq,
		BaseFrame:  baseTag,
		ServerTime: serverTime,
		You:        game.PlayerStateOf(viewer),
		Delta:      delta,
		Events:     events,
	}); err != nil {
		return nil, states, baseTag
	}
	return wr.Bytes(), states, frame + 1
}
