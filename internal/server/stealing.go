package server

import (
	"runtime"
	"sync"
	"time"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
)

// Work-stealing request execution (DESIGN.md §10).
//
// The paper's static design executes each request on the thread that owns
// the client, so at 8T/160 players the request phase is dominated by lock
// stalls and barrier idling (Fig. 5/6: 31% lock time, 9–22% inter-frame
// wait). This scheduler breaks that wall: during the request phase each
// worker appends its clients' move commands to a per-worker frame pool
// instead of executing them inline, then drains its own pool first and
// steals pending entries from other workers' pools when its own work is
// done. Execution is conflict-aware twice over: a pool scan skips entries
// whose cached leaf mask intersects regions other threads are executing
// right now, and the first region acquisition of every pooled move is a
// try-acquire — on contention the entry is parked back in its owner's
// pool (to be retried, eventually with a blocking acquire) and the worker
// takes a non-conflicting entry instead of queueing.
//
// Determinism: every entry is stamped with its commit order — the owning
// worker and the arrival index within that worker's frame — and the pool
// is a FIFO honoring that stamp. A per-client claim (client.claim)
// guarantees at most one of a client's requests is in flight at a time,
// and scans always take a client's oldest entry first, so each client's
// commands execute in exactly the arrival order static assignment gave
// them. Cross-client interleaving may differ from the static schedule,
// but it was never deterministic there either (it is a race between
// threads for region locks); per-client order is the only order the wire
// protocol — and hence the conformance suite — can observe.

// poolEntry is one pooled move command, stamped with its deterministic
// commit order (owner worker, arrival index).
type poolEntry struct {
	c     *client
	m     protocol.Move // by value: the receive buffer is reused per datagram
	owner int           // owning worker id (commit-order major key)
	idx   int           // arrival index within the owner's frame (minor key)
	hint  uint64        // leaf-ordinal mask of the client's last move, 0 = unknown
	parks uint8         // times this entry parked on a contended first acquire
}

// stealPool is one worker's per-frame request deque. The owner pushes at
// the tail during its receive drain; the owner and thieves remove entries
// head-first under the mutex. Entries parked on lock conflict re-enter
// the pool (front, or tail when deferral cannot reorder the client).
type stealPool struct {
	mu sync.Mutex
	q  []poolEntry
	// head indexes the first live entry; popping advances it instead of
	// shifting the slice, and push compacts when the pool empties, so the
	// steady-state frame loop does not allocate.
	head int

	// scanClaimHook, when non-nil, runs after a scan observes a claim
	// CAS failure. Test-only seam: the FIFO regression test uses it to
	// release the claim at exactly that point — the mid-scan completion
	// window the blocked memo exists to cover — which wall-clock timing
	// cannot force deterministically. A field rather than a package var
	// so the seam is per-instance: two engines in one process (match
	// manager, DESIGN.md §13) must not see each other's test hooks.
	// Always nil in production.
	scanClaimHook func(c *client)
}

// push appends an entry at the tail (owner only, during receive drain).
//
//qvet:noalloc
func (p *stealPool) push(e poolEntry) {
	p.mu.Lock()
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
	}
	p.q = append(p.q, e)
	p.mu.Unlock()
}

// maxStealParks is how many contended first acquisitions an entry may
// dodge (park, recompute, retry) before it falls back to a blocking
// acquire. One try is not enough under a lock wall — at 8T/160 players
// most requests hit a busy region on the first probe and a single park
// would immediately re-queue them into the same blocking wait the static
// design pays; a few retries let the contended moment pass. Bounded so a
// permanently contended region cannot livelock an entry: past the cap the
// owner executes it with a plain Acquire, which always completes.
const maxStealParks = 12

// scanBlockMax bounds the per-scan "blocked client" memo. A scan that
// skips an entry without claiming it (a blocking-mode deferral, a
// conflict-hint skip, or a failed claim CAS) must also skip every later
// entry of that client to preserve per-client FIFO order; the memo
// records those clients without allocating. Scans deeper than this
// simply stop — correctness is unaffected, the entries just wait for
// the owner.
const scanBlockMax = 16

// take removes and returns the first claimable entry, scanning head to
// tail. Per-client order is preserved two ways: an entry skipped
// without being claimed — by a scan rule or a failed claim CAS — blocks
// the client for the rest of the scan, and removal shifts the remaining
// entries so relative order never changes. The CAS failure MUST block
// the client rather than just skip the entry: claims are released
// without the pool mutex (runPoolEntry, after commit or park), so a
// claim observed held at one entry can be free by the time the same
// scan reaches the client's next entry, and claiming that one would
// commit it ahead of its predecessor.
//
// Every scan skips entries whose hint intersects avoid — regions other
// workers are executing right now. Probing such an entry's region would
// either queue on a busy lock or burn a park; deferring it until the
// conflicting execution ends costs the same wall time and touches no
// lock. This is the conflict-awareness the scheduler exists for, and it
// applies to the owner exactly as to a thief: the phase loop re-scans
// after a yield, and the conflict clears as soon as the executing worker
// publishes a zero mask (an executor always finishes, so deferral cannot
// deadlock).
//
// Both scans also defer blocking-mode entries (parked maxStealParks
// times): executing one means queueing on the very lock that parked it,
// so it should run as late as possible, when the contenders that refused
// it have drained. The owner falls back to them once nothing else in its
// pool is claimable (the second, deferBlocked=false scan); a thief never
// takes them — stalling a thief defeats the point of stealing.
//
//qvet:noalloc
func (p *stealPool) take(self *worker, asThief bool, avoid uint64) (poolEntry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.takeScan(self, true, avoid); ok {
		return e, true
	}
	if asThief {
		return poolEntry{}, false
	}
	return p.takeScan(self, false, avoid)
}

// takeScan is one pass of take, run under the pool mutex.
//
//qvet:noalloc
func (p *stealPool) takeScan(self *worker, deferBlocked bool, avoid uint64) (poolEntry, bool) {
	var blocked [scanBlockMax]*client
	nblocked := 0
scan:
	for i := p.head; i < len(p.q); i++ {
		e := &p.q[i]
		for j := 0; j < nblocked; j++ {
			if blocked[j] == e.c {
				continue scan
			}
		}
		if (deferBlocked && e.parks >= maxStealParks) ||
			(e.hint != 0 && e.hint&avoid != 0) {
			if nblocked == scanBlockMax {
				break
			}
			blocked[nblocked] = e.c
			nblocked++
			continue
		}
		if !e.c.claim.CompareAndSwap(0, int32(self.id)+1) {
			if p.scanClaimHook != nil {
				p.scanClaimHook(e.c)
			}
			// The claim is in flight elsewhere. Block the client for the
			// rest of the scan: the holder may release mid-scan (claim
			// stores don't take the pool mutex), and claiming a later
			// entry of this client after that would violate its FIFO.
			if nblocked == scanBlockMax {
				break
			}
			blocked[nblocked] = e.c
			nblocked++
			continue
		}
		out := *e
		copy(p.q[i:], p.q[i+1:])
		p.q = p.q[:len(p.q)-1]
		return out, true
	}
	return poolEntry{}, false
}

// requeue returns a parked entry to the pool. The caller still holds the
// client's claim, so no scan can take a later entry of the same client
// while we decide where to put it: at the tail when this is the client's
// only pooled entry (deferring it cannot reorder the client), else at the
// front (it must stay ahead of the client's later entries).
//
//qvet:noalloc
func (p *stealPool) requeue(e poolEntry) {
	p.mu.Lock()
	sole := true
	for i := p.head; i < len(p.q); i++ {
		if p.q[i].c == e.c {
			sole = false
			break
		}
	}
	if sole {
		if p.head == len(p.q) {
			p.q = p.q[:0]
			p.head = 0
		}
		p.q = append(p.q, e)
	} else if p.head > 0 {
		p.head--
		p.q[p.head] = e
	} else {
		p.q = append(p.q, poolEntry{})
		copy(p.q[1:], p.q)
		p.q[0] = e
	}
	p.mu.Unlock()
}

// drain empties the pool and returns how many entries it removed — the
// zombie-recovery path discarding work a dead frame will never commit.
func (p *stealPool) drain() int {
	p.mu.Lock()
	n := len(p.q) - p.head
	p.q = p.q[:0]
	p.head = 0
	p.mu.Unlock()
	return n
}

// enqueueMove stamps a move command with its commit order and adds it to
// the worker's frame pool. outstanding gates the worker's request
// barrier: it passes only when every entry it pooled this frame has been
// executed (by anyone).
//
//qvet:phase=exec
func (s *Parallel) enqueueMove(w *worker, c *client, m *protocol.Move) {
	e := poolEntry{
		c:     c,
		m:     *m,
		owner: w.id,
		idx:   w.poolIdx,
		hint:  c.leafHint.Load(),
	}
	w.poolIdx++
	w.outstanding.Add(1)
	w.pool.push(e)
}

// runStealPhase executes pooled requests until every entry this worker
// pooled has completed: its own pool head-first, then steals from the
// other workers. It is the worker's replacement for the inline execution
// of the static design, sitting between the receive drain and the
// request barrier.
//
//qvet:phase=exec
func (s *Parallel) runStealPhase(w *worker) {
	for !w.zombie.Load() && !s.stopping() {
		if e, ok := w.pool.take(w, false, s.activeRegionHints(w)); ok {
			s.runPoolEntry(w, e)
			continue
		}
		if e, ok := s.stealWork(w); ok {
			s.runPoolEntry(w, e)
			continue
		}
		if w.outstanding.Load() == 0 && s.totalOutstanding() == 0 && s.fc.allDrained() {
			// Nothing left to execute anywhere and nobody can pool more:
			// the time this worker would have idled at the request
			// barrier was spent above, executing other workers' requests.
			return
		}
		// Work remains (or may still be pooled by a participant that has
		// not finished its receive drain) but none is claimable right
		// now. Yield and re-check; if an executor truly wedges holding a
		// claim, the watchdog sees this worker's stale request-phase
		// stamp and abandons it out of the spin.
		runtime.Gosched()
	}
}

// totalOutstanding sums the live workers' uncommitted pooled entries —
// the frame-wide amount of request work still to execute. While it is
// nonzero, a worker whose own pool is drained keeps scanning for steals
// instead of parking at the request barrier (the lock wall's idle share,
// which this scheduler exists to convert into execution). Zombies are
// excluded: their leftover counts are torn down by their own recovery.
func (s *Parallel) totalOutstanding() int64 {
	var n int64
	for _, o := range s.workers {
		if !o.zombie.Load() {
			n += o.outstanding.Load()
		}
	}
	return n
}

// stealWork scans the other workers' pools for a steal candidate,
// starting after this worker's id so victims rotate. Zombie victims are
// skipped: their pools are torn down by their own recovery path.
//
//qvet:phase=exec
func (s *Parallel) stealWork(w *worker) (poolEntry, bool) {
	avoid := s.activeRegionHints(w)
	n := len(s.workers)
	for i := 1; i < n; i++ {
		v := s.workers[(w.id+i)%n]
		if v.zombie.Load() {
			continue
		}
		if e, ok := v.pool.take(w, true, avoid); ok {
			return e, true
		}
	}
	return poolEntry{}, false
}

// activeRegionHints unions the leaf masks other workers have published
// for the requests they are executing right now — the conflict-awareness
// input of every pool scan. Zombies are skipped: an abandoned worker
// wedged mid-execution never clears its published mask, and honoring it
// would make every healthy worker defer against the corpse forever.
func (s *Parallel) activeRegionHints(w *worker) uint64 {
	var m uint64
	for _, o := range s.workers {
		if o != w && !o.zombie.Load() {
			m |= o.activeHint.Load()
		}
	}
	return m
}

// claimForRemoval wrests the client's execution claim from the stealing
// scheduler before the client's entity is freed. Freeing recycles the
// entity slot, and a pooled executor reads its entity before taking any
// region lock (ExecuteMove's pre-lock bounding-box read — safe under
// static assignment, where only the owning thread ever ran the client's
// requests), so removal must not overlap an in-flight execution. Winning
// the claim excludes executors; setting gone before releasing it makes
// every later claimant complete the client's remaining pooled entries
// without touching the entity. A caller that already holds the claim —
// panic containment evicting the client whose request it was executing —
// proceeds directly; its normal completion path releases the claim after
// the eviction. Returns false without removing when the engine is
// stopping, or when the claim holder does not release within
// claimRemovalTimeout: a healthy executor holds a claim for one request
// (microseconds, or a bounded region-lock wait), so a hold that long
// means the executor is wedged — with the watchdog off
// (WatchdogDeadline=0) nothing will ever break it, and spinning on
// would just wedge this worker too. The caller skips the removal; the
// periodic paths (stale sweep) retry on later frames.
func (s *Parallel) claimForRemoval(w *worker, c *client) bool {
	if !s.stealing {
		return true
	}
	me := int32(w.id) + 1
	var deadline time.Time
	for !c.claim.CompareAndSwap(0, me) {
		if c.claim.Load() == me {
			c.gone.Store(true)
			return true
		}
		if s.stopping() {
			return false
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(claimRemovalTimeout)
		} else if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
	}
	c.gone.Store(true)
	c.claim.Store(0)
	return true
}

// claimRemovalTimeout bounds how long a removal path will wait for an
// executor to release a client's claim before giving up on the removal.
// Generous against descheduling and contended blocking acquires, tiny
// against the alternative: an executor wedged forever (watchdog
// disabled) converting the removing worker into a second stuck thread.
const claimRemovalTimeout = 100 * time.Millisecond

// runPoolEntry executes one pooled entry, handling the park protocol and
// the completion accounting. The claim is released only after the entry
// is back in a pool (parked) or fully committed, and the owner's
// outstanding count is decremented last — the release/acquire pair that
// orders a thief's client-state writes before the owner's reply phase.
//
//qvet:phase=exec
func (s *Parallel) runPoolEntry(w *worker, e poolEntry) {
	if s.safeExecPoolEntry(w, e) {
		s.parkPoolEntry(w, e)
		return
	}
	e.c.claim.Store(0)
	s.workers[e.owner].outstanding.Add(-1)
}

// parkPoolEntry returns a parked entry to its owner's pool — unless the
// owner was abandoned, in which case its recovery has drained (or is
// about to drain) that pool and a requeue would smuggle a stale
// previous-frame entry into the owner's next frame. Such entries
// complete as drops instead: claim released, outstanding settled — the
// same accounting the recovery drain applies to the entries it did find
// in the pool (a claimed entry is never pool-resident, so the two paths
// can't double-settle). The residual race — recovery finishes and
// clears the zombie flag before this check — is closed by the owner's
// frame-start leftover drain (workerLoop): the park happens-before the
// parking worker's request barrier in the dead frame, which
// happens-before the recovered owner rejoins a later frame.
//
//qvet:phase=exec
func (s *Parallel) parkPoolEntry(w *worker, e poolEntry) {
	owner := s.workers[e.owner]
	if owner.zombie.Load() {
		e.c.claim.Store(0)
		owner.outstanding.Add(-1)
		return
	}
	w.bd.StealConflicts++
	e.parks++
	owner.pool.requeue(e)
	e.c.claim.Store(0)
}

// safeExecPoolEntry contains a panic in a pooled request to the client
// that caused it, exactly like safeProcessPacket does for inline
// execution; the executing worker — thief or owner — recovers, and the
// served client is evicted. A panic counts as completed (not parked), so
// the deferred accounting in runPoolEntry still releases the claim and
// the barrier.
//
//qvet:phase=exec
func (s *Parallel) safeExecPoolEntry(w *worker, e poolEntry) (parked bool) {
	defer s.recoverWorker(w, "request")
	// A panic unwinds past execPoolEntry's own hint clear, and a stale
	// nonzero mask would keep other workers deferring against an
	// execution that no longer exists.
	defer w.activeHint.Store(0)
	return s.execPoolEntry(w, e)
}

// execPoolEntry is execMove for a pooled entry: the same sequence filter,
// baseline bookkeeping, watchdog publication, and commit, plus the
// try-first acquisition that makes stolen work park instead of block.
// Reports parked=true when the entry must be retried (no side effects
// were applied).
//
//qvet:phase=exec
func (s *Parallel) execPoolEntry(w *worker, e poolEntry) (parked bool) {
	c, m := e.c, &e.m
	// The watchdog deadline measures a single request, not the whole
	// phase: a worker that executes many stolen requests in one frame is
	// busy, not wedged, and the wedge record must name the request that
	// actually stalled.
	w.phaseStart.Store(time.Now().UnixNano())
	if c.gone.Load() || c.quarantined.Load() {
		return false
	}
	if m.Seq != 0 && (seqOlder(m.Seq, c.lastSeq) || seqWild(m.Seq, c.lastSeq)) &&
		!c.seqResync.Load() {
		return false
	}
	if m.Ack != 0 && c.repliedFrame.Load()-m.Ack > baselineGapFrames {
		c.baseline.Invalidate()
	}
	ent := s.world.Ents.Get(c.entID)
	if ent == nil {
		return false
	}
	w.serving.Store(int32(c.id) + 1)
	if s.cfg.Hooks.PreExec != nil {
		s.cfg.Hooks.PreExec(w.id, c.id)
	}
	if w.zombie.Load() {
		w.serving.Store(0)
		return false
	}
	var stats locking.AcquireStats
	var mask uint64
	w.lockCtx.Stats = &stats
	w.lockCtx.LeafMask = &mask
	w.lockCtx.TryFirst = e.parks < maxStealParks
	w.activeHint.Store(e.hint)

	lockBefore := w.bd.Ns[metrics.CompLock]
	t0 := time.Now()
	res, committed := s.executePoolMoveGuarded(w, e, ent)
	span := time.Since(t0).Nanoseconds()
	w.lockCtx.TryFirst = false
	w.activeHint.Store(0)
	lockDelta := w.bd.Ns[metrics.CompLock] - lockBefore
	w.serving.Store(0)
	if res.Parked {
		return true
	}
	if exec := span - lockDelta; exec > 0 {
		w.bd.Charge(metrics.CompExec, exec)
		w.frameExecNs += exec
		// Balance accounting names the serving client: the cost charges
		// the client whose request this was, never the thief that
		// happened to execute it.
		c.loadNs.Add(exec)
		if e.owner != w.id {
			w.bd.Steals++
			w.bd.StealsNs += exec
		}
	}
	w.bd.ExecCmds++
	if len(res.Events) > 0 {
		s.appendEvents(res.Events)
	}
	// Frame instrumentation stays with the executing worker — it records
	// what each thread did, and the thief did this work.
	w.frameReqs++
	w.frameLeafMask |= mask
	w.frameLockOps += stats.LeafLockOps
	if committed && mask != 0 {
		c.leafHint.Store(mask)
	}
	return false
}

// executePoolMoveGuarded runs the move and, when it executed (not
// parked, not dead), commits the client's reply state inside the same
// world-guard read section. Inline execution commits outside the guard —
// safe because only the owner touches those fields — but a pooled commit
// may come from a thief, and in degraded (zombie-outstanding) mode the
// owner's reply pass synchronizes with concurrent request work only
// through the world guard.
//
//qvet:phase=exec
func (s *Parallel) executePoolMoveGuarded(w *worker, e poolEntry, ent *entity.Entity) (res game.MoveResult, committed bool) {
	s.worldGuard.RLock()
	defer s.worldGuard.RUnlock()
	res = s.world.ExecuteMove(ent, &e.m.Cmd, &w.lockCtx)
	if res.Parked {
		return res, false
	}
	c := e.c
	c.replyPending = true
	c.lastSeq = e.m.Seq
	c.seqResync.Store(false)
	c.touch(time.Now())
	if r := s.cfg.Record; r != nil {
		// Tap at the commit, never on a park: parked entries re-execute
		// and would otherwise be recorded twice.
		r.RecordMove(c.id, e.m.Seq, &e.m.Cmd)
	}
	c.fwdFrame.Store(0)
	return res, true
}
