package server

import (
	"time"

	"qserve/internal/game"
	"qserve/internal/metrics"
)

// Stepped mode (DESIGN.md §13): instead of owning a goroutine that spins
// in select (Start/loop), a Sequential engine can be driven one frame at
// a time by an external scheduler — the match manager multiplexes
// thousands of engines over a GOMAXPROCS-sized worker pool this way.
// The caller guarantees mutual exclusion: at most one StepFrame runs at
// a time, and the scheduler's own synchronization (its heap mutex)
// provides the happens-before edge when consecutive frames of one match
// run on different workers.

// StartStepped prepares the engine for externally driven frames. Call it
// once instead of Start; then call StepFrame on the scheduler's cadence.
func (s *Sequential) StartStepped() {
	s.started = time.Now()
	s.last = s.cfg.timeNow()
}

// StepFrame runs exactly one frame — world physics, request drain, reply
// phase, frame bookkeeping — without ever blocking on the connection.
// It returns whether the match is active: a datagram arrived or a client
// is connected. An idle match (false) only pays the physics tick, skips
// the visibility build and reply sweep entirely, and parks its shared
// frame scratch back in the pool, so thousands of idle matches hold no
// warm buffers and coalesce onto a slow cadence.
func (s *Sequential) StepFrame() bool {
	if s.cfg.Shared != nil && s.scratch == nil {
		s.attachScratch(s.cfg.Shared.get())
	}

	// P: world physics, same rate limit and frame-logic clock as loop().
	t0 := time.Now()
	nowv := s.cfg.timeNow()
	if dt := nowv.Sub(s.last); dt >= minWorldTick {
		res := s.world.RunWorldFrame(dt.Seconds())
		s.last = nowv
		if r := s.cfg.Record; r != nil {
			r.RecordTick(dt.Nanoseconds())
		}
		s.frameEvents = append(s.frameEvents, wireEvents(res.Events)...)
	}
	s.bd.Charge(metrics.CompWorld, time.Since(t0).Nanoseconds())

	frameT0 := time.Now()

	// Rx/E: drain and execute everything queued; never block.
	sawTraffic := false
	for {
		t0 = time.Now()
		n, from, err := s.conn.Recv(s.recvBuf, 0)
		s.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
		if err != nil {
			break
		}
		s.bytesIn.Add(int64(n))
		sawTraffic = true
		s.safeProcessPacket(s.recvBuf[:n], from)
	}

	// T/Tx: form and send replies — but only when someone can receive
	// one. The empty-match skip is what makes idle ticks cheap.
	if s.clients.count() > 0 {
		t0 = time.Now()
		s.safeSendReplies()
		s.bd.Charge(metrics.CompReply, time.Since(t0).Nanoseconds())
	}

	s.endFrame(frameT0)

	active := sawTraffic || s.clients.count() > 0
	if !active && s.scratch != nil {
		s.detachScratch()
	}
	return active
}

// attachScratch adopts a pooled frame-scratch set as this engine's
// per-frame buffers.
func (s *Sequential) attachScratch(sc *frameScratch) {
	s.scratch = sc
	s.recvBuf = sc.recvBuf
	s.reply = sc.reply
	s.vis = sc.vis
	s.backlogBuf = sc.backlogBuf
	s.clientBuf = sc.clientBuf
}

// detachScratch returns the engine's per-frame buffers to the shared
// pool. Grown capacity travels with the scratch set (the next borrower
// benefits); retained pointers do not — the client sweep buffer is
// cleared and the visibility index drops its world reference, so a
// parked scratch set cannot keep another match's state reachable.
func (s *Sequential) detachScratch() {
	sc := s.scratch
	s.scratch = nil
	sc.recvBuf = s.recvBuf
	sc.reply = s.reply
	sc.vis = s.vis
	sc.vis.Detach()
	sc.backlogBuf = s.backlogBuf[:0]
	cb := s.clientBuf[:cap(s.clientBuf)]
	for i := range cb {
		cb[i] = nil
	}
	sc.clientBuf = cb[:0]
	s.recvBuf = nil
	s.reply = ReplyScratch{}
	s.vis = game.VisIndex{}
	s.backlogBuf = nil
	s.clientBuf = nil
	s.cfg.Shared.put(sc)
}
