package server

import (
	"fmt"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/checkpoint"
	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// restoredRig is an engine seeded from a synthetic RestoreState: a world
// holding live player entities and a client table of parked survivors —
// exactly what replay.Recover hands a restarting server. The reconnect
// tests drive the three resume paths (same address, name from a new
// address, bare move from the old address) against it.
type restoredRig struct {
	net    *transport.Network
	engine Engine
	world  *game.World
	m      *worldmap.Map
	rs     *RestoreState
}

func newRestoredRig(t *testing.T, threads, survivors int, mut func(*Config)) *restoredRig {
	t.Helper()
	m, err := worldmap.GenerateArena(worldmap.DefaultArenaConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := game.NewWorld(game.Config{Map: m, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]checkpoint.ClientRec, 0, survivors)
	for i := 0; i < survivors; i++ {
		e, err := w.SpawnPlayer()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, checkpoint.ClientRec{
			ID:     uint16(3 + i),
			EntID:  int32(e.ID),
			Thread: uint8(i % max(threads, 1)),
			// The poison pill: the crashed session was deep into its seq
			// space. A reconnecting client restarts at seq 1, which the
			// duplicate filter would silently discard without the one-shot
			// resync exemption.
			LastSeq:      uint32(900 + 10*i),
			RepliedFrame: 500,
			Name:         fmt.Sprintf("srv-%d", i),
			Addr:         fmt.Sprintf("old:%d", i),
		})
	}
	rs := &RestoreState{
		Frame:        500,
		JoinIdx:      survivors,
		NextClientID: 40,
		Clients:      recs,
		RecoveryNs:   123_456,
	}
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 2048})
	conns := make([]transport.Conn, max(threads, 1))
	for i := range conns {
		if conns[i], err = net.Listen(fmt.Sprintf("srv:%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{
		World:         w,
		Conns:         conns,
		Threads:       threads,
		Strategy:      locking.Optimized{},
		MaxClients:    32,
		SelectTimeout: 2 * time.Millisecond,
		Restore:       rs,
	}
	if mut != nil {
		mut(&cfg)
	}
	var eng Engine
	if threads <= 0 {
		eng, err = NewSequential(cfg)
	} else {
		eng, err = NewParallel(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)
	return &restoredRig{net: net, engine: eng, world: w, m: m, rs: rs}
}

// bot builds a client endpoint at the given transport address.
func (r *restoredRig) bot(t *testing.T, name, addr string) *botclient.Bot {
	t.Helper()
	bc, err := r.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := botclient.New(botclient.Config{
		Name:   name,
		Conn:   bc,
		Server: transport.MemAddr("srv:0"),
		Map:    r.m,
		Seed:   int64(len(addr)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func driveBots(bots []*botclient.Bot, steps int) {
	for f := 0; f < steps; f++ {
		for _, b := range bots {
			b.Step()
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	for _, b := range bots {
		b.Drain()
	}
}

// TestReconnectByName is the reconnect handshake across engines: the
// survivors come back from brand-new transport addresses (the crash took
// their NAT bindings with it), so only the account name carries the
// identity. Each must be resumed onto its restored entity — not spawned
// fresh — and its moves must be accepted even though the restored
// lastSeq is far ahead of the client's restarted counter.
func TestReconnectByName(t *testing.T) {
	for _, threads := range []int{0, 2, 4} {
		threads := threads
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			rig := newRestoredRig(t, threads, 3, nil)
			bots := make([]*botclient.Bot, len(rig.rs.Clients))
			for i, rec := range rig.rs.Clients {
				bots[i] = rig.bot(t, rec.Name, fmt.Sprintf("fresh:%d", i))
				if err := bots[i].Connect(); err != nil {
					t.Fatalf("survivor %d reconnect: %v", i, err)
				}
				if bots[i].EntityID() != rec.EntID {
					t.Fatalf("survivor %d resumed onto entity %d, its restored entity is %d",
						i, bots[i].EntityID(), rec.EntID)
				}
				if bots[i].ClientID() != rec.ID {
					t.Fatalf("survivor %d got client id %d, its restored id is %d",
						i, bots[i].ClientID(), rec.ID)
				}
			}
			driveBots(bots, 60)
			rig.engine.Stop()
			for i, b := range bots {
				if b.Snapshots == 0 {
					t.Errorf("survivor %d received no snapshots after resume", i)
				}
				if b.Moved < 20 {
					t.Errorf("survivor %d barely moved (%.1f units): its fresh seqs were likely dropped against the restored lastSeq", i, b.Moved)
				}
			}
			if rig.engine.Frames() <= rig.rs.Frame {
				t.Errorf("frame counter did not resume past the restored frame: %d <= %d",
					rig.engine.Frames(), rig.rs.Frame)
			}
			var recovered int64
			for _, bd := range rig.engine.Breakdowns() {
				recovered += bd.RecoveryNs
			}
			if recovered != rig.rs.RecoveryNs {
				t.Errorf("RecoveryNs not surfaced in the breakdown: got %d, want %d",
					recovered, rig.rs.RecoveryNs)
			}
		})
	}
}

// TestReconnectSameAddr resumes a survivor whose transport address
// survived the crash (in-memory transport; in production, a stable
// UDP 5-tuple): the connect arrives from exactly the checkpointed
// address and must resume rather than double-join.
func TestReconnectSameAddr(t *testing.T) {
	rig := newRestoredRig(t, 0, 2, nil)
	rec := rig.rs.Clients[0]
	b := rig.bot(t, rec.Name, rec.Addr)
	if err := b.Connect(); err != nil {
		t.Fatal(err)
	}
	if b.EntityID() != rec.EntID || b.ClientID() != rec.ID {
		t.Fatalf("same-addr resume gave entity %d client %d, restored %d/%d",
			b.EntityID(), b.ClientID(), rec.EntID, rec.ID)
	}
	driveBots([]*botclient.Bot{b}, 40)
	if b.Snapshots == 0 || b.Moved < 20 {
		t.Fatalf("resumed client is not being served: %d snapshots, %.1f moved", b.Snapshots, b.Moved)
	}
}

// TestReconnectBareMove covers the client that never noticed the crash:
// it keeps sending moves from its old address without re-connecting.
// The sequential engine adopts the parked identity in place on first
// contact and serves it.
func TestReconnectBareMove(t *testing.T) {
	rig := newRestoredRig(t, 0, 2, nil)
	rec := rig.rs.Clients[1]
	b := rig.bot(t, rec.Name, rec.Addr)
	// No Connect: straight to gameplay traffic.
	driveBots([]*botclient.Bot{b}, 40)
	if b.Snapshots == 0 {
		t.Fatalf("move-only survivor was never adopted: %d snapshots", b.Snapshots)
	}
}

// TestReconnectNoCollision interleaves a brand-new player with the
// reconnecting survivors: the newcomer must collide with neither a
// recycled entity slot nor a restored client id, and every survivor must
// still land on its own entity afterwards.
func TestReconnectNoCollision(t *testing.T) {
	rig := newRestoredRig(t, 2, 3, nil)

	// The newcomer joins BEFORE any survivor comes back — the window
	// where a naive id allocator would hand out a survivor's id.
	fresh := rig.bot(t, "newcomer", "fresh:9")
	if err := fresh.Connect(); err != nil {
		t.Fatal(err)
	}
	if fresh.ClientID() < rig.rs.NextClientID {
		t.Fatalf("newcomer got client id %d inside the restored id space (next %d)",
			fresh.ClientID(), rig.rs.NextClientID)
	}
	bots := []*botclient.Bot{fresh}
	seenEnts := map[int32]string{fresh.EntityID(): "newcomer"}
	seenIDs := map[uint16]string{fresh.ClientID(): "newcomer"}
	for i, rec := range rig.rs.Clients {
		b := rig.bot(t, rec.Name, fmt.Sprintf("fresh:%d", i))
		if err := b.Connect(); err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
		if b.EntityID() != rec.EntID {
			t.Fatalf("survivor %d lost its entity: got %d, restored %d", i, b.EntityID(), rec.EntID)
		}
		if who, dup := seenEnts[b.EntityID()]; dup {
			t.Fatalf("entity %d assigned to both %s and survivor %d", b.EntityID(), who, i)
		}
		if who, dup := seenIDs[b.ClientID()]; dup {
			t.Fatalf("client id %d assigned to both %s and survivor %d", b.ClientID(), who, i)
		}
		seenEnts[b.EntityID()] = rec.Name
		seenIDs[b.ClientID()] = rec.Name
		bots = append(bots, b)
	}
	driveBots(bots, 50)
	for i, b := range bots {
		if b.Snapshots == 0 {
			t.Errorf("client %d received no snapshots", i)
		}
	}
}

// TestParkedClientsReaped: survivors that never reconnect must not leak
// — the stale-client reaper ages them out and frees their entities.
func TestParkedClientsReaped(t *testing.T) {
	rig := newRestoredRig(t, 0, 2, func(cfg *Config) {
		cfg.ClientTimeout = 80 * time.Millisecond
	})
	// A live client keeps frames (and the reaper) running.
	b := rig.bot(t, "keeper", "fresh:0")
	if err := b.Connect(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		driveBots([]*botclient.Bot{b}, 10)
		gone := 0
		for _, rec := range rig.rs.Clients {
			if e := rig.world.Ents.Get(entity.ID(rec.EntID)); e == nil || !e.Active {
				gone++
			}
		}
		if gone == len(rig.rs.Clients) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("parked survivors never reaped: %d of %d entities still live",
				len(rig.rs.Clients)-gone, len(rig.rs.Clients))
		}
	}
}
