package server

import (
	"sync"
	"testing"

	"qserve/internal/game"
	"qserve/internal/worldmap"
)

// TestVisBuilderSingleBuildPerFrame spins many goroutines acquiring the
// same frame concurrently: every caller must get the same index pointer,
// the build must run exactly once (the entry set does not change if
// peers re-acquire), and a new frame must trigger a rebuild. Run under
// -race this exercises the cooperative shard protocol.
func TestVisBuilderSingleBuildPerFrame(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		if _, err := w.SpawnPlayer(); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < 10; f++ {
		w.RunWorldFrame(0.033)
	}

	vb := newVisBuilder()
	for frame := uint64(0); frame < 5; frame++ {
		const workers = 8
		ptrs := make([]*game.VisIndex, workers)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				ptrs[k] = vb.acquire(frame, w)
			}(k)
		}
		wg.Wait()
		for k := 1; k < workers; k++ {
			if ptrs[k] != ptrs[0] {
				t.Fatalf("frame %d: worker %d got a different index pointer", frame, k)
			}
		}
		if ptrs[0].Len() < 48 {
			t.Fatalf("frame %d: index holds %d entries, want at least the 48 players", frame, ptrs[0].Len())
		}

		// Re-acquiring the same frame must be a no-op reuse.
		if again := vb.acquire(frame, w); again != ptrs[0] {
			t.Fatalf("frame %d: re-acquire returned a different pointer", frame)
		}
	}
}

// TestVisBuilderLoneWorker models worldGuard degraded mode: a single
// worker acquiring alone must complete the whole build itself without
// waiting for peers.
func TestVisBuilderLoneWorker(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 70; i++ { // > 2 shards of 32
		if _, err := w.SpawnPlayer(); err != nil {
			t.Fatal(err)
		}
	}
	vb := newVisBuilder()
	vi := vb.acquire(0, w)
	if vi.Len() < 70 {
		t.Fatalf("lone build holds %d entries, want at least the 70 players", vi.Len())
	}
	viewer := w.Ents.Get(0)
	states, _ := vi.AppendVisible(viewer, nil)
	want, _ := w.BuildSnapshot(viewer, nil)
	if len(states) != len(want) {
		t.Fatalf("lone-build merge emits %d states, naive %d", len(states), len(want))
	}
}

// TestVisBuilderEmptyWorld covers the zero-shard publish path.
func TestVisBuilderEmptyWorld(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.Config{
		Name: "tiny", Seed: 1, Rows: 1, Cols: 1, RoomSize: 256, WallSize: 16,
		Height: 192, DoorWidth: 64, DoorHeight: 112, VisibilityDepth: 1,
	})
	w, err := game.NewWorld(game.Config{Map: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	vb := newVisBuilder()
	vi := vb.acquire(0, w)
	// A fresh world still contains map furniture (items, teleporters may
	// be ineligible); the point is acquire returns without hanging.
	if vi == nil {
		t.Fatal("acquire returned nil index")
	}
}
