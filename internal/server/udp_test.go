package server

import (
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// TestUDPParallelEndToEnd exercises the full stack over real loopback
// UDP sockets: parallel engine, wire protocol, bot client. It guards the
// poll semantics of transport.UDPConn (a zero-timeout drain must still
// deliver queued datagrams).
func TestUDPParallelEndToEnd(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, _ := game.NewWorld(game.Config{Map: m, Seed: 1})
	conns := make([]transport.Conn, 2)
	for i := range conns {
		c, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Skip(err)
		}
		conns[i] = c
	}
	srv, err := NewParallel(Config{World: w, Conns: conns, Threads: 2, Strategy: locking.Optimized{}, MaxClients: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	bc, _ := transport.ListenUDP("127.0.0.1:0")
	srvAddr, _ := transport.ResolveLike(bc, conns[0].LocalAddr().String())
	bot, err := botclient.New(botclient.Config{Name: "b", Conn: bc, Server: srvAddr, Map: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bot.Connect(); err != nil {
		t.Fatal(err)
	}
	t.Logf("connected, entity %d", bot.EntityID())
	for i := 0; i < 40; i++ {
		bot.Step()
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	bot.Step()
	if bot.Snapshots == 0 {
		t.Fatalf("no snapshots; server sent %d replies", srv.Replies())
	}
}
