package server

import (
	"sync"

	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/transport"
)

// SharedBufs is the cross-instance frame-scratch pool (DESIGN.md §13).
// A match manager running thousands of engines in one process sets one
// SharedBufs in every match's Config; each engine borrows a scratch set
// (receive buffer, reply scratch, visibility-index arrays, event and
// client sweep buffers) while it has work and parks it again when idle.
// The pool therefore holds roughly one warm scratch set per
// *simultaneously active* match — bounded by the scheduler's worker
// count plus the currently loaded matches — instead of one per match.
//
// Ownership rules: a scratch set belongs to exactly one engine between
// get and put, and an engine only touches it inside StepFrame, which
// the scheduler serializes per match. Per-client state (delta baselines,
// event backlogs) is NOT pooled — it must survive across frames for as
// long as the client is connected, and an idle match has no clients, so
// it holds none of it.
type SharedBufs struct {
	mu   sync.Mutex
	free []*frameScratch
	made int
}

// NewSharedBufs builds an empty pool; scratch sets are created on first
// demand.
func NewSharedBufs() *SharedBufs { return &SharedBufs{} }

// frameScratch is one engine's per-frame buffer set, pooled across
// instances.
type frameScratch struct {
	recvBuf    []byte
	reply      ReplyScratch
	vis        game.VisIndex
	backlogBuf []protocol.GameEvent
	clientBuf  []*client
}

// get borrows a scratch set, building one only when the pool is dry.
// A deliberate free list rather than sync.Pool: the GC may drop pooled
// items at any time, which would re-introduce steady-state allocations
// on the scheduler's per-frame path.
func (p *SharedBufs) get() *frameScratch {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sc := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return sc
	}
	p.made++
	p.mu.Unlock()
	return &frameScratch{recvBuf: make([]byte, transport.MaxDatagram)}
}

// put parks a scratch set for the next borrower.
func (p *SharedBufs) put(sc *frameScratch) {
	p.mu.Lock()
	p.free = append(p.free, sc)
	p.mu.Unlock()
}

// Made returns how many scratch sets the pool ever built — the
// high-water mark of simultaneously active matches (diagnostics; the
// instancing benchmark asserts it stays far below the match count).
func (p *SharedBufs) Made() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.made
}

// Free returns how many scratch sets are currently parked.
func (p *SharedBufs) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
