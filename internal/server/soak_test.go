package server

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"qserve/internal/botclient"
	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/protocol"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// TestChaosSoak is the robustness acceptance run: 16 bots against the
// live parallel engine through a hostile link (20% loss, 10% reorder, 5%
// duplication, 1% corruption) for 2000 client frames, with one fatal
// fault (a panic) injected mid-run. It must end with zero unexpected
// panics, exactly one eviction (the injected fault's victim), no
// goroutine leaks, and — after the link is healed — every surviving
// bot's delta-reconstructed entity table byte-identical to the server's
// reference snapshot for that viewer.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	const (
		threads = 4
		numBots = 16
		steps   = 2000
	)
	baseGoroutines := runtime.NumGoroutine()

	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	baseNet := transport.NewNetwork(transport.NetworkConfig{QueueLen: 4096})
	chaosCfg := transport.FaultConfig{
		Seed:        42,
		DropProb:    0.20,
		ReorderProb: 0.10,
		DupProb:     0.05,
		CorruptProb: 0.01,
	}
	fnet := transport.NewFaultNetwork(baseNet, chaosCfg)

	conns := make([]transport.Conn, threads)
	for i := range conns {
		if conns[i], err = fnet.Listen(fmt.Sprintf("srv:%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// One injected fatal fault: the first request executed after the
	// half-way point panics.
	var stepNo atomic.Int64
	var panicFired atomic.Bool
	var victim atomic.Int32 // clientID+1
	cfg := Config{
		World:            w,
		Conns:            conns,
		Threads:          threads,
		Strategy:         locking.Optimized{},
		MaxClients:       numBots + 4,
		SelectTimeout:    2 * time.Millisecond,
		WatchdogDeadline: time.Second,
		QuarantineWedged: true,
	}
	cfg.Hooks.PreExec = func(thread int, id uint16) {
		if stepNo.Load() >= steps/2 && panicFired.CompareAndSwap(false, true) {
			victim.Store(int32(id) + 1)
			panic("soak: injected fatal fault")
		}
	}
	par, err := NewParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par.Start()
	defer par.Stop()

	// Bots connect through the faulty link too; the handshake retries
	// inside Connect absorb the losses.
	bots := make([]*botclient.Bot, numBots)
	for i := range bots {
		bc, err := fnet.Listen(fmt.Sprintf("bot:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		bots[i], err = botclient.New(botclient.Config{
			Name:   fmt.Sprintf("soak-%d", i),
			Conn:   bc,
			Server: transport.MemAddr("srv:0"),
			Map:    m,
			Seed:   int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := bots[i].Connect(); err != nil {
			t.Fatalf("bot %d connect: %v", i, err)
		}
	}

	// The chaos window.
	for f := 0; f < steps; f++ {
		stepNo.Store(int64(f))
		for _, b := range bots {
			b.Step()
		}
		time.Sleep(time.Millisecond)
	}
	if !panicFired.Load() {
		t.Fatal("injected panic never fired")
	}
	victimID := int(victim.Load() - 1)
	if victimID < 0 || victimID >= numBots {
		t.Fatalf("victim client id %d out of bot range", victimID)
	}

	// The eviction count must equal the injected-fatal-fault count.
	waitCond(t, 5*time.Second, func() bool { return par.FaultEvictions() == 1 },
		"injected panic did not evict exactly its victim")
	if n := par.NumClients(); n != numBots-1 {
		t.Errorf("clients after injected fault = %d, want %d", n, numBots-1)
	}

	st := fnet.Stats()
	if st.Dropped == 0 || st.Corrupted == 0 || st.Reordered == 0 || st.Duplicated == 0 {
		t.Errorf("fault injector idle during soak: %+v", st)
	}
	var resyncs, replies int64
	for _, b := range bots {
		resyncs += b.Resyncs
		replies += b.Resp.Replies
	}
	if resyncs == 0 {
		t.Error("no bot ever detected a broken delta stream under 20% loss")
	}
	if replies < int64(numBots*steps/10) {
		t.Errorf("only %d replies across the soak — server mostly unreachable", replies)
	}

	// Heal the link and verify end-state consistency: each surviving
	// bot's reconstructed table must exactly equal the server's reference
	// snapshot for that viewer. A bot is checked while the engine is
	// frozen at a frame boundary; bots whose last move is still in flight
	// simply retry next round (verification steps only unverified bots,
	// so the in-flight set shrinks every round).
	fnet.SetConfig(transport.FaultConfig{Seed: 42})
	verified := make([]bool, numBots)
	verified[victimID] = true // deliberately killed; excluded
	remaining := numBots - 1
	for round := 0; round < 40 && remaining > 0; round++ {
		for i, b := range bots {
			if !verified[i] {
				b.Step()
			}
		}
		time.Sleep(15 * time.Millisecond)
		unfreeze := freezeAtFrameBoundary(par)
		for i, b := range bots {
			if verified[i] {
				continue
			}
			b.Drain()
			viewer := w.Ents.Get(entity.ID(b.EntityID()))
			if viewer == nil {
				t.Fatalf("bot %d: viewer entity gone", i)
			}
			want, _ := w.BuildSnapshot(viewer, nil)
			got, _ := b.EntityTable()
			if statesEqual(got, want) {
				verified[i] = true
				remaining--
			}
		}
		unfreeze()
	}
	if remaining > 0 {
		for i := range bots {
			if !verified[i] {
				got, tag := bots[i].EntityTable()
				t.Errorf("bot %d: table (%d entities, tag %d) never converged to the reference snapshot", i, len(got), tag)
			}
		}
	}

	// Shutdown: no goroutine leaks, exactly one recovered panic.
	par.Stop()
	var bd int64
	for _, b := range par.Breakdowns() {
		bd += b.PanicsRecovered
	}
	if bd != 1 {
		t.Errorf("PanicsRecovered = %d, want exactly the injected one", bd)
	}
	waitCond(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseGoroutines+2
	}, fmt.Sprintf("goroutine leak: %d at start, %d after Stop", baseGoroutines, runtime.NumGoroutine()))
}

// freezeAtFrameBoundary blocks until the engine sits between frames and
// holds it there (join blocks on fc.mu), so the world can be read
// exactly and race-free: every worker's frame writes happened-before the
// controller's state transition to idle. Returns the unfreeze func.
func freezeAtFrameBoundary(s *Parallel) func() {
	s.fc.mu.Lock()
	for s.fc.state != stIdle {
		s.fc.cond.Wait()
	}
	return s.fc.mu.Unlock
}

// statesEqual compares entity tables as sets keyed by entity ID; both
// sides carry identical wire quantization, so equality is exact.
func statesEqual(got, want []protocol.EntityState) bool {
	if len(got) != len(want) {
		return false
	}
	m := make(map[uint16]protocol.EntityState, len(want))
	for _, s := range want {
		m[s.ID] = s
	}
	for _, s := range got {
		if m[s.ID] != s {
			return false
		}
	}
	return true
}
