package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qserve/internal/balance"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/protocol"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// assignAllToZero pins every client to thread 0, so threads 1..N-1 can
// only ever execute requests by stealing them — the strongest forcing of
// the work-stealing scheduler the rig can express.
func assignAllToZero(int, int, int) int { return 0 }

// stealSum totals the steal counters across worker breakdowns.
func stealSum(par *Parallel) (steals, conflicts int64) {
	for _, b := range par.Breakdowns() {
		steals += b.Steals
		conflicts += b.StealConflicts
	}
	return
}

// TestStealingRaceStress exists to be run under -race: stealing forced
// (every client owned by thread 0, so all other threads serve purely by
// stealing), the balancer migrating every frame (ownership, routing, and
// reply baselines churn under the thieves), and a churn goroutine
// spraying connects, stale-ack moves, and disconnects at every endpoint.
// Liveness plus actually-stolen work are asserted; the race detector does
// the real checking.
func TestStealingRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		threads = 4
		numBots = 20
		frames  = 120
	)
	rig := newRigCfg(t, threads, numBots, locking.Optimized{}, func(cfg *Config) {
		cfg.Stealing = true
		cfg.Assign = assignAllToZero
		cfg.Balance = balance.Policy{Enabled: true, EveryFrame: true, MaxMigrations: 8}
		// Hold frames open so other threads' selects join them — stealing
		// needs multi-thread frames to engage at all.
		cfg.BatchDelay = 3 * time.Millisecond
		// Deschedule mid-execution so pools stay claimable while their
		// owner works. On a multi-core host the thieves run concurrently
		// anyway; on a single-CPU CI host the owner would otherwise drain
		// its whole pool in one scheduling quantum and thieves would only
		// ever see empty pools.
		cfg.Hooks.PreExec = func(int, uint16) { time.Sleep(20 * time.Microsecond) }
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := rig.net.Listen("churn-steal:0")
		if err != nil {
			return
		}
		defer conn.Close()
		var w protocol.Writer
		send := func(to string, msg any) {
			w.Reset()
			if protocol.Encode(&w, msg) == nil {
				_ = conn.Send(transport.MemAddr(to), w.Bytes())
			}
		}
		seq := uint32(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			target := fmt.Sprintf("srv:%d", i%threads)
			switch i % 5 {
			case 0:
				send(target, &protocol.Connect{Name: "churn-steal", ProtocolVer: protocol.Version})
			case 1, 2, 3:
				seq++
				send(target, &protocol.Move{
					Seq: seq, Ack: 1, // ancient ack: exercises gap invalidation off-owner
					Cmd: protocol.MoveCmd{Forward: 320, Msec: 33, Buttons: protocol.BtnFire},
				})
			case 4:
				send(target, &protocol.Disconnect{})
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	rig.drive(frames, time.Millisecond)
	close(stop)
	wg.Wait()
	rig.engine.Stop()

	if rig.engine.Frames() == 0 {
		t.Fatal("no frames executed")
	}
	if rig.engine.Replies() == 0 {
		t.Fatal("no replies sent")
	}
	par := rig.engine.(*Parallel)
	if par.Migrations() == 0 {
		t.Fatal("balancer never migrated a client during the stress run")
	}
	steals, _ := stealSum(par)
	if steals == 0 {
		t.Fatal("no request was ever stolen: the scheduler under test never engaged")
	}
	for i, b := range rig.bots {
		if b.Snapshots == 0 {
			t.Errorf("bot %d received no snapshots under stealing+migration", i)
		}
	}
}

// TestStealingPanicOnStolenRequest is the chaos arm: a request panics
// exactly when a thief executes it (PreExec reports a thread other than
// the owner, and every client is owned by thread 0). The victim client
// must be evicted, the thief must survive and keep serving, and the
// server must end the run with every other client intact.
func TestStealingPanicOnStolenRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		threads = 4
		numBots = 12
		frames  = 150
	)
	var panicFired atomic.Bool
	var victim atomic.Int32 // clientID+1
	var panicThread atomic.Int32
	rig := newRigCfg(t, threads, numBots, locking.Optimized{}, func(cfg *Config) {
		cfg.Stealing = true
		cfg.Assign = assignAllToZero
		cfg.BatchDelay = 3 * time.Millisecond
		cfg.Hooks.PreExec = func(thread int, id uint16) {
			// Deschedule so pooled entries stay claimable while thread 0
			// works (see TestStealingRaceStress); all clients are owned by
			// thread 0, so any other executing thread means the request
			// was stolen.
			time.Sleep(20 * time.Microsecond)
			if thread != 0 && panicFired.CompareAndSwap(false, true) {
				victim.Store(int32(id) + 1)
				panicThread.Store(int32(thread))
				panic("steal-test: injected fault on stolen request")
			}
		}
	})

	// Threads 1..3 own no clients (the mux routes every bot's gameplay
	// traffic to thread 0), so without unrouted traffic at their endpoints
	// they would never wake into a frame to steal. Ping them continuously.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := rig.net.Listen("pinger-steal:0")
		if err != nil {
			return
		}
		defer conn.Close()
		var w protocol.Writer
		var nonce uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 1; i < threads; i++ {
				nonce++
				w.Reset()
				if protocol.Encode(&w, &protocol.Ping{Nonce: nonce}) == nil {
					_ = conn.Send(transport.MemAddr(fmt.Sprintf("srv:%d", i)), w.Bytes())
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	rig.drive(frames, time.Millisecond)
	close(stop)
	wg.Wait()
	rig.engine.Stop()
	par := rig.engine.(*Parallel)

	if !panicFired.Load() {
		t.Fatal("no request was ever stolen: the injected fault never fired")
	}
	waitCond(t, 5*time.Second, func() bool { return par.FaultEvictions() == 1 },
		"stolen-request panic did not evict exactly its victim")
	if n := par.NumClients(); n != numBots-1 {
		t.Errorf("clients after stolen-request fault = %d, want %d", n, numBots-1)
	}
	var recovered int64
	for _, b := range par.Breakdowns() {
		recovered += b.PanicsRecovered
	}
	if recovered != 1 {
		t.Errorf("PanicsRecovered = %d, want exactly the injected one", recovered)
	}
	// The thief survived: the run kept producing frames and replies long
	// after the fault (the fault fires on the first steal, which the
	// forced assignment makes happen within the first frames).
	if rig.engine.Replies() == 0 {
		t.Fatal("no replies sent")
	}
	victimID := int(victim.Load() - 1)
	alive := 0
	for i, b := range rig.bots {
		if i == victimID {
			continue
		}
		if b.Snapshots > 0 {
			alive++
		}
	}
	if alive != numBots-1 {
		t.Errorf("only %d/%d surviving bots kept receiving snapshots", alive, numBots-1)
	}
}

// TestPoolScanBlocksClientOnFailedClaim is the deterministic regression
// for a real ordering bug: a scan whose claim CAS failed used to just
// skip that entry, assuming the client's later entries would fail the
// same CAS. But claims are released without the pool mutex, so the
// holder (a thief finishing the client's earlier request) can release
// mid-scan, and the same scan would then claim a LATER entry — the
// later move commits first, and the overtaken one is silently dropped
// by the seq filter. The test hooks exactly that window: the claim is
// released the moment the scan observes it held, and the scan must
// still refuse every later entry of the client.
func TestPoolScanBlocksClientOnFailedClaim(t *testing.T) {
	c := &client{}
	var p stealPool
	p.push(poolEntry{c: c, owner: 0, idx: 0})
	p.push(poolEntry{c: c, owner: 0, idx: 1})

	// An earlier request of this client is in flight on another worker.
	c.claim.Store(99)
	p.scanClaimHook = func(hc *client) {
		// ... and it completes immediately after the scan sees the claim.
		hc.claim.Store(0)
	}

	// A thief's take is a single scan: the failed CAS at idx 0 must
	// block the client outright, never fall through to idx 1.
	thief := &worker{id: 1}
	if e, ok := p.take(thief, true, 0); ok {
		t.Fatalf("thief scan claimed idx=%d of a client blocked at its oldest entry", e.idx)
	}

	// An owner's take retries with a fresh scan, which may legitimately
	// claim the now-released client — but only at its OLDEST entry. The
	// buggy scan claimed idx 1 here, committing it ahead of idx 0.
	c.claim.Store(99)
	w := &worker{id: 0}
	e, ok := p.take(w, false, 0)
	if !ok {
		t.Fatal("owner take found nothing despite the released claim")
	}
	if e.idx != 0 {
		t.Fatalf("scan claimed idx=%d ahead of the client's oldest entry", e.idx)
	}
	c.claim.Store(0)
	p.scanClaimHook = nil
	if e, ok := p.take(w, false, 0); !ok || e.idx != 1 {
		t.Fatalf("remaining entry = (%v, idx=%d), want idx=1", ok, e.idx)
	}
}

// TestPoolScanPreservesPerClientFIFO is the stress arm of the same
// ordering regression: two executors hammer one client's pool, holding
// each claim across a reschedule so the other's scans keep colliding
// with it, and the recorded commit order must be exactly the arrival
// order. On a multi-core host this also exercises the real wall-clock
// race the deterministic hook test above pins.
func TestPoolScanPreservesPerClientFIFO(t *testing.T) {
	const entries = 2000
	c := &client{}
	var p stealPool
	for i := 0; i < entries; i++ {
		p.push(poolEntry{c: c, owner: 0, idx: i})
	}

	var mu sync.Mutex
	var got []int
	deadline := time.Now().Add(30 * time.Second)
	run := func(w *worker) {
		for {
			e, ok := p.take(w, false, 0)
			if !ok {
				mu.Lock()
				done := len(got) == entries
				mu.Unlock()
				if done {
					return
				}
				if time.Now().After(deadline) {
					return
				}
				runtime.Gosched()
				continue
			}
			mu.Lock()
			got = append(got, e.idx)
			mu.Unlock()
			// Hold the claim across a reschedule so the other executor's
			// scans keep observing it held, then release mid-whatever scan
			// is running — the exact window the memo must cover.
			runtime.Gosched()
			c.claim.Store(0)
		}
	}
	var wg sync.WaitGroup
	for _, w := range []*worker{{id: 0}, {id: 1}} {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			run(w)
		}(w)
	}
	wg.Wait()

	if len(got) != entries {
		t.Fatalf("executed %d/%d entries before the deadline", len(got), entries)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("per-client FIFO violated: position %d committed entry %d", i, idx)
		}
	}
}

// newIdleParallel builds an unstarted Parallel for unit-testing the
// scheduler's bookkeeping paths directly (no worker goroutines run).
func newIdleParallel(t *testing.T, threads int) *Parallel {
	t.Helper()
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 64})
	conns := make([]transport.Conn, threads)
	for i := range conns {
		c, err := net.Listen(fmt.Sprintf("idle:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewParallel(Config{World: w, Conns: conns, Threads: threads, Stealing: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParkPoolEntryDropsForZombieOwner pins the park path against a
// drained pool: an entry parked while its owner is marked zombie must
// complete as a drop (claim released, outstanding settled, nothing
// requeued) — requeueing would carry a stale previous-frame entry, and
// its outstanding count, into the recovered owner's next frame.
func TestParkPoolEntryDropsForZombieOwner(t *testing.T) {
	s := newIdleParallel(t, 2)
	owner, thief := s.workers[0], s.workers[1]
	c := &client{}
	c.claim.Store(int32(thief.id) + 1)
	owner.outstanding.Store(1)
	owner.zombie.Store(true)

	s.parkPoolEntry(thief, poolEntry{c: c, owner: owner.id, idx: 0})

	if got := owner.outstanding.Load(); got != 0 {
		t.Errorf("outstanding = %d after zombie-owner park, want 0", got)
	}
	if got := c.claim.Load(); got != 0 {
		t.Errorf("claim = %d after zombie-owner park, want released", got)
	}
	if _, ok := owner.pool.take(owner, false, 0); ok {
		t.Error("zombie owner's pool received a requeued entry; park must drop instead")
	}

	// Healthy owner: the same park requeues and keeps the barrier count.
	owner.zombie.Store(false)
	owner.outstanding.Store(1)
	c.claim.Store(int32(thief.id) + 1)
	s.parkPoolEntry(thief, poolEntry{c: c, owner: owner.id, idx: 0})
	if got := owner.outstanding.Load(); got != 1 {
		t.Errorf("outstanding = %d after healthy park, want 1 (entry still pending)", got)
	}
	if got := c.claim.Load(); got != 0 {
		t.Errorf("claim = %d after healthy park, want released", got)
	}
	if e, ok := owner.pool.take(owner, false, 0); !ok {
		t.Error("healthy park did not requeue the entry")
	} else if e.parks != 1 {
		t.Errorf("requeued entry parks = %d, want 1", e.parks)
	}
	if got := thief.bd.StealConflicts; got != 1 {
		t.Errorf("StealConflicts = %d, want 1 (healthy park only)", got)
	}
}

// TestClaimForRemovalBoundedSpin pins the removal path's escape hatch:
// when a claim holder never releases (a wedged executor with the
// watchdog disabled), claimForRemoval must give up within its timeout
// and report false instead of wedging the removing worker too.
func TestClaimForRemovalBoundedSpin(t *testing.T) {
	s := newIdleParallel(t, 2)
	w := s.workers[0]

	// Unclaimed client: removal wins the claim, marks gone, releases.
	c := &client{}
	if !s.claimForRemoval(w, c) {
		t.Fatal("claimForRemoval failed on an unclaimed client")
	}
	if !c.gone.Load() || c.claim.Load() != 0 {
		t.Fatalf("after removal claim: gone=%v claim=%d, want true/0", c.gone.Load(), c.claim.Load())
	}

	// Caller already holds the claim (panic containment evicting the
	// client it was serving): proceed without touching the claim.
	c2 := &client{}
	c2.claim.Store(int32(w.id) + 1)
	if !s.claimForRemoval(w, c2) {
		t.Fatal("claimForRemoval failed for the claim holder itself")
	}
	if !c2.gone.Load() || c2.claim.Load() != int32(w.id)+1 {
		t.Fatalf("holder path must keep its claim: gone=%v claim=%d", c2.gone.Load(), c2.claim.Load())
	}

	// A claim wedged by another worker: give up within the timeout.
	c3 := &client{}
	c3.claim.Store(int32(s.workers[1].id) + 1)
	start := time.Now()
	if s.claimForRemoval(w, c3) {
		t.Fatal("claimForRemoval succeeded against a never-released claim")
	}
	if waited := time.Since(start); waited > 10*claimRemovalTimeout {
		t.Fatalf("claimForRemoval spun %v, want bounded near %v", waited, claimRemovalTimeout)
	}
	if c3.gone.Load() {
		t.Error("timed-out removal must not mark the client gone")
	}
}

// TestConfigRejectsTooManyThreads pins the frame controller's bitmask
// bound: a worker pool wider than 64 must be refused up front (worker 64
// would be invisible to reqDoneBy and the abandonment protocol).
func TestConfigRejectsTooManyThreads(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{QueueLen: 64})
	const threads = maxThreads + 1
	conns := make([]transport.Conn, threads)
	for i := range conns {
		c, err := net.Listen(fmt.Sprintf("wide:%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewParallel(Config{World: w, Conns: conns, Threads: threads})
	if err == nil {
		t.Fatalf("NewParallel accepted %d threads; reqDoneBy tracks only %d", threads, maxThreads)
	}
	// At the boundary the pool must still be accepted.
	conns64 := conns[:maxThreads]
	if _, err := NewParallel(Config{World: w, Conns: conns64, Threads: maxThreads}); err != nil {
		t.Fatalf("NewParallel rejected the documented maximum of %d threads: %v", maxThreads, err)
	}
}

// TestFwdFreezeExpired pins the forward-stamp expiry arithmetic the
// rebalance sweep relies on: fresh stamps freeze, the boundary falls
// exactly at fwdFreezeFrames, and a stamp from the future (a zombie
// straggler forwarding after the sweep snapshotted the frame counter)
// must keep the freeze instead of wrapping uint64 and expiring it.
func TestFwdFreezeExpired(t *testing.T) {
	cases := []struct {
		name         string
		stamp, frame uint64
		expired      bool
	}{
		{"fresh stamp frozen", 100, 100, false},
		{"one frame old", 100, 101, false},
		{"just inside window", 100, 100 + fwdFreezeFrames - 1, false},
		{"exactly at window", 100, 100 + fwdFreezeFrames, true},
		{"far past window", 100, 100 + 10*fwdFreezeFrames, true},
		{"future stamp stays frozen", 101, 100, false},
		{"far-future stamp stays frozen", 100 + fwdFreezeFrames, 100, false},
		{"would-wrap delta stays frozen", ^uint64(0), 1, false},
		{"early frames, inside window", 1, fwdFreezeFrames, false},
		{"early frames, at window", 1, fwdFreezeFrames + 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := fwdFreezeExpired(tc.stamp, tc.frame); got != tc.expired {
				t.Errorf("fwdFreezeExpired(%d, %d) = %v, want %v", tc.stamp, tc.frame, got, tc.expired)
			}
		})
	}
}

// TestFwdFreezeClearIsCAS pins the clear protocol around an expired
// stamp: the sweep must only clear the exact stamp it judged stale, so a
// concurrent re-stamp (a straggling zombie forwarding again) is never
// erased — the CAS fails and the client stays frozen under the fresh
// stamp.
func TestFwdFreezeClearIsCAS(t *testing.T) {
	var c client
	stale := uint64(10)
	c.fwdFrame.Store(stale)
	frame := stale + fwdFreezeFrames

	if !fwdFreezeExpired(stale, frame) {
		t.Fatalf("stamp %d at frame %d should be expired", stale, frame)
	}
	// Re-stamp lands between the staleness judgment and the clear.
	fresh := frame + 1
	c.fwdFrame.Store(fresh)
	if c.fwdFrame.CompareAndSwap(stale, 0) {
		t.Fatal("CAS cleared a re-stamped freeze: fresh stamp erased")
	}
	if got := c.fwdFrame.Load(); got != fresh {
		t.Fatalf("fwdFrame = %d, want the fresh stamp %d", got, fresh)
	}
	// Without interference the expired stamp clears.
	c.fwdFrame.Store(stale)
	if !c.fwdFrame.CompareAndSwap(stale, 0) {
		t.Fatal("CAS failed to clear an undisturbed expired stamp")
	}
}
