package server

import "sync"

// Frame phases, in the mandatory order of §3: world processing, request
// processing, reply processing (invariant ii), each separated by global
// synchronization (invariant i).
const (
	stIdle int = iota
	stWorld
	stRequest
	stReply
)

// Worker roles for one frame.
type frameRole int

const (
	roleMissed frameRole = iota // arrived too late: wait for the frame end signal
	roleMaster                  // first thread to exit select: runs the world update
	roleWorker                  // joined during the world update: participates
)

// frameCtl implements the global synchronization of Figure 3 with a
// monitor. All waits are condition-variable sleeps; callers time them and
// charge the paper's inter-/intra-frame wait components.
type frameCtl struct {
	mu   sync.Mutex
	cond *sync.Cond

	state        int
	frame        uint64
	participants []int
	reqDone      int
	repDone      int
}

func newFrameCtl() *frameCtl {
	fc := &frameCtl{}
	fc.cond = sync.NewCond(&fc.mu)
	return fc
}

// join attempts to enter the current frame. The first joiner while idle
// becomes the master; joiners during the master's world update
// participate; anyone later misses the frame ("threads that exit select
// after this point will have to wait until the next server frame").
func (fc *frameCtl) join(worker int) frameRole {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	switch fc.state {
	case stIdle:
		fc.state = stWorld
		fc.participants = fc.participants[:0]
		fc.participants = append(fc.participants, worker)
		fc.reqDone, fc.repDone = 0, 0
		return roleMaster
	case stWorld:
		fc.participants = append(fc.participants, worker)
		return roleWorker
	default:
		return roleMissed
	}
}

// waitFrameEnd blocks until the current frame completes — the "frame
// end" signal. It returns immediately if no frame is in progress.
func (fc *frameCtl) waitFrameEnd() {
	fc.mu.Lock()
	f := fc.frame
	for fc.state != stIdle && fc.frame == f {
		fc.cond.Wait()
	}
	fc.mu.Unlock()
}

// openRequests is called by the master after the world update; it admits
// the frozen participant set to the request-processing phase.
func (fc *frameCtl) openRequests() {
	fc.mu.Lock()
	fc.state = stRequest
	fc.mu.Unlock()
	fc.cond.Broadcast()
}

// waitRequestsOpen blocks a participant until the master opens the
// request phase (inter-frame wait: "for the world update phase to
// complete").
func (fc *frameCtl) waitRequestsOpen() {
	fc.mu.Lock()
	for fc.state == stWorld {
		fc.cond.Wait()
	}
	fc.mu.Unlock()
}

// doneRequests marks one participant's request queue drained and blocks
// until every participant is done (the intra-frame wait), after which the
// reply phase is open.
func (fc *frameCtl) doneRequests() {
	fc.mu.Lock()
	fc.reqDone++
	if fc.reqDone == len(fc.participants) {
		fc.state = stReply
		fc.mu.Unlock()
		fc.cond.Broadcast()
		return
	}
	for fc.state == stRequest {
		fc.cond.Wait()
	}
	fc.mu.Unlock()
}

// doneReply marks one participant's replies sent.
func (fc *frameCtl) doneReply() {
	fc.mu.Lock()
	fc.repDone++
	fc.mu.Unlock()
	fc.cond.Broadcast()
}

// waitAllReplied blocks the master until every participant has finished
// the reply phase.
func (fc *frameCtl) waitAllReplied() {
	fc.mu.Lock()
	for fc.repDone < len(fc.participants) {
		fc.cond.Wait()
	}
	fc.mu.Unlock()
}

// endFrame closes the frame and signals its end, waking threads that
// missed it. Master only.
func (fc *frameCtl) endFrame() {
	fc.mu.Lock()
	fc.state = stIdle
	fc.frame++
	fc.mu.Unlock()
	fc.cond.Broadcast()
}

// frameNumber returns the completed-frame counter.
func (fc *frameCtl) frameNumber() uint64 {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.frame
}

// currentParticipants returns a copy of the participant set (master use,
// during reply/cleanup when the set is frozen).
func (fc *frameCtl) currentParticipants() []int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return append([]int(nil), fc.participants...)
}
