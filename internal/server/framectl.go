package server

import (
	"sync"
	"sync/atomic"
)

// Frame phases, in the mandatory order of §3: world processing, request
// processing, reply processing (invariant ii), each separated by global
// synchronization (invariant i).
const (
	stIdle int = iota
	stWorld
	stRequest
	stReply
)

// maxThreads is the widest worker pool the frame controller supports:
// reqDoneBy tracks request-barrier passage as a uint64 bitmask indexed by
// worker id. Config validation rejects larger pools up front, because a
// worker beyond the mask would be invisible to the abandonment protocol's
// stalled-in-request verification.
const maxThreads = 64

// Worker roles for one frame.
type frameRole int

const (
	roleMissed frameRole = iota // arrived too late: wait for the frame end signal
	roleMaster                  // first thread to exit select: runs the world update
	roleWorker                  // joined during the world update: participates
)

// frameCtl implements the global synchronization of Figure 3 with a
// monitor. All waits are condition-variable sleeps; callers time them and
// charge the paper's inter-/intra-frame wait components.
//
// Beyond the paper's protocol, the controller supports *abandonment*: the
// frame watchdog can declare a wedged participant a zombie mid-frame
// (abandon), which removes it from the barrier arithmetic so the
// remaining threads complete the frame without it. Every barrier entry
// point returns whether the caller is still a live participant; a zombie
// must stop touching frame state, run its recovery path, acquit itself,
// and only then rejoin. The controller never blocks on a zombie:
//
//   - request barrier: opens when all *active* participants are done;
//   - reply barrier: if the master was abandoned, the last active
//     participant to finish its replies is promoted to finish the frame;
//   - if no active participant remains to close the frame (master
//     abandoned after everyone replied, or every participant abandoned),
//     the controller closes it itself inside abandon.
type frameCtl struct {
	mu   sync.Mutex
	cond *sync.Cond

	state        int
	frame        uint64
	participants []int
	reqDone      int
	repDone      int
	// reqDoneBy records which workers passed the request barrier this
	// frame (bit i = worker i). The watchdog's guarded abandonment uses it
	// to verify a worker it observed as wedged has not in fact finished
	// the phase between observation and abandonment.
	reqDoneBy uint64
	// drainDone counts participants that have completed their receive
	// drain this frame (work-stealing only). A participant that has
	// received requests but not yet pooled them is invisible to the
	// outstanding counters, so a steal scan cannot tell "no work yet"
	// from "no work ever"; once drainDone covers every active
	// participant, the frame's pooled work can only shrink and an empty
	// scan means the steal phase is truly over.
	drainDone int

	// active is the number of participants not abandoned this frame.
	active int
	// masterID is this frame's master; masterGone is set when it is
	// abandoned, arming promotion.
	masterID   int
	masterGone bool
	// finishing is set once frame completion is claimed — by promotion or
	// by the controller's own fallback — so it cannot be claimed twice.
	finishing bool
	// zombies holds abandoned workers until they acquit. Sticky across
	// frames: a worker that never recovers stays a zombie forever and can
	// never rejoin (join is only reached after acquit in the worker loop).
	zombies map[int]bool
	// nzombies mirrors len(zombies) for lock-free reads: while it is
	// non-zero the engine runs in degraded mode, where world readers take
	// the world guard exclusively because an abandoned worker may wake and
	// resume a request mid-flight at any moment.
	nzombies atomic.Int32
}

func newFrameCtl() *frameCtl {
	fc := &frameCtl{zombies: make(map[int]bool)}
	fc.cond = sync.NewCond(&fc.mu)
	return fc
}

// join attempts to enter the current frame. The first joiner while idle
// becomes the master; joiners during the master's world update
// participate; anyone later misses the frame ("threads that exit select
// after this point will have to wait until the next server frame").
// Callers must not be zombies: the worker loop acquits before rejoining.
func (fc *frameCtl) join(worker int) frameRole {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	switch fc.state {
	case stIdle:
		fc.state = stWorld
		fc.participants = fc.participants[:0]
		fc.participants = append(fc.participants, worker)
		fc.reqDone, fc.repDone = 0, 0
		fc.reqDoneBy = 0
		fc.drainDone = 0
		fc.active = 1
		fc.masterID = worker
		fc.masterGone = false
		fc.finishing = false
		return roleMaster
	case stWorld:
		fc.participants = append(fc.participants, worker)
		fc.active++
		return roleWorker
	default:
		return roleMissed
	}
}

// waitFrameEnd blocks until the current frame completes — the "frame
// end" signal. It returns immediately if no frame is in progress.
func (fc *frameCtl) waitFrameEnd() {
	fc.mu.Lock()
	f := fc.frame
	for fc.state != stIdle && fc.frame == f {
		fc.cond.Wait()
	}
	fc.mu.Unlock()
}

// openRequests is called by the master after the world update; it admits
// the frozen participant set to the request-processing phase.
func (fc *frameCtl) openRequests() {
	fc.mu.Lock()
	fc.state = stRequest
	fc.mu.Unlock()
	fc.cond.Broadcast()
}

// waitRequestsOpen blocks a participant until the master opens the
// request phase (inter-frame wait: "for the world update phase to
// complete"). Returns false if the caller was abandoned or the frame
// collapsed while waiting — the caller must bail out of the frame.
func (fc *frameCtl) waitRequestsOpen(worker int) bool {
	fc.mu.Lock()
	f := fc.frame
	for fc.state == stWorld && fc.frame == f && !fc.zombies[worker] {
		fc.cond.Wait()
	}
	ok := fc.frame == f && !fc.zombies[worker]
	fc.mu.Unlock()
	return ok
}

// doneRequests marks one participant's request queue drained and blocks
// until every active participant is done (the intra-frame wait), after
// which the reply phase is open. Returns false if the caller was
// abandoned — it must not proceed to the reply phase.
func (fc *frameCtl) doneRequests(worker int) bool {
	fc.mu.Lock()
	if fc.zombies[worker] {
		fc.mu.Unlock()
		return false
	}
	fc.reqDone++
	if worker >= 0 && worker < maxThreads {
		fc.reqDoneBy |= 1 << uint(worker)
	}
	if fc.reqDone >= fc.active && fc.state == stRequest {
		fc.state = stReply
		fc.mu.Unlock()
		fc.cond.Broadcast()
		return true
	}
	f := fc.frame
	for fc.state == stRequest && fc.frame == f && !fc.zombies[worker] {
		fc.cond.Wait()
	}
	ok := fc.frame == f && !fc.zombies[worker]
	fc.mu.Unlock()
	return ok
}

// doneReply marks one participant's replies sent. promoted reports that
// the master was abandoned this frame and the caller — the last active
// participant to finish — must take over frame completion (cleanup and
// endFrame). ok is false if the caller was abandoned.
func (fc *frameCtl) doneReply(worker int) (ok, promoted bool) {
	fc.mu.Lock()
	if fc.zombies[worker] {
		fc.mu.Unlock()
		return false, false
	}
	fc.repDone++
	if fc.state == stReply && fc.masterGone && !fc.finishing && fc.repDone >= fc.active {
		fc.finishing = true
		promoted = true
	}
	fc.mu.Unlock()
	fc.cond.Broadcast()
	return true, promoted
}

// waitAllReplied blocks the master (or a promoted worker) until every
// active participant has finished the reply phase.
func (fc *frameCtl) waitAllReplied() {
	fc.mu.Lock()
	for fc.repDone < fc.active {
		fc.cond.Wait()
	}
	fc.mu.Unlock()
}

// endFrame closes the frame and signals its end, waking threads that
// missed it. Master (or promoted worker) only.
func (fc *frameCtl) endFrame() {
	fc.mu.Lock()
	fc.finishFrameLocked()
	fc.mu.Unlock()
	fc.cond.Broadcast()
}

func (fc *frameCtl) finishFrameLocked() {
	fc.state = stIdle
	fc.frame++
}

// abandon removes a participant from the current frame's barrier
// arithmetic and marks it a zombie until it acquits. The watchdog calls
// this for a wedged worker. If the missing worker was the only thing
// holding up a barrier — or was the master and nobody is left to be
// promoted — the controller advances or closes the frame itself. Returns
// false if the worker is not an abandonable participant right now.
func (fc *frameCtl) abandon(worker int) bool {
	fc.mu.Lock()
	if fc.zombies[worker] || fc.state == stIdle || !fc.isParticipantLocked(worker) {
		fc.mu.Unlock()
		return false
	}
	fc.abandonLocked(worker)
	fc.mu.Unlock()
	fc.cond.Broadcast()
	return true
}

// abandonRequestStalled is the watchdog's entry point: it abandons the
// worker only if it is verifiably still stalled in the request phase of
// the current frame — a participant that has not passed the request
// barrier. This closes the detect-vs-abandon race: the watchdog's phase
// observation is unsynchronized, and between it and this call the worker
// may have finished the phase; abandoning a then-live participant would
// collapse the barrier under it and let its reply reads race the next
// frame's request execution. Confining quarantine to the request phase
// also guarantees zombies are only ever created while the world guard's
// degraded mode can see them: every reply phase begins after the
// stRequest→stReply transition, ordered by this mutex.
func (fc *frameCtl) abandonRequestStalled(worker int) bool {
	fc.mu.Lock()
	if fc.state != stRequest || fc.zombies[worker] || !fc.isParticipantLocked(worker) ||
		worker < 0 || worker >= maxThreads || fc.reqDoneBy&(1<<uint(worker)) != 0 {
		fc.mu.Unlock()
		return false
	}
	fc.abandonLocked(worker)
	fc.mu.Unlock()
	fc.cond.Broadcast()
	return true
}

// doneDraining marks one participant's receive drain complete: the
// worker will pool no further entries this frame. Stealing workers call
// it between the receive drain and the steal phase.
func (fc *frameCtl) doneDraining(worker int) {
	fc.mu.Lock()
	if !fc.zombies[worker] {
		fc.drainDone++
	}
	fc.mu.Unlock()
}

// allDrained reports whether every active participant has finished its
// receive drain, i.e. no new request work can be pooled this frame. An
// abandoned participant that never finished draining stops counting
// against the bound (abandon decrements active), so its zombie wedge
// cannot pin thieves in their scan loops forever.
func (fc *frameCtl) allDrained() bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.drainDone >= fc.active
}

func (fc *frameCtl) isParticipantLocked(worker int) bool {
	for _, p := range fc.participants {
		if p == worker {
			return true
		}
	}
	return false
}

func (fc *frameCtl) abandonLocked(worker int) {
	fc.zombies[worker] = true
	fc.nzombies.Store(int32(len(fc.zombies)))
	fc.active--
	if worker == fc.masterID {
		fc.masterGone = true
	}
	switch fc.state {
	case stWorld:
		// Master wedged mid-world-update: requests never open. Collapse
		// the frame so waiting participants escape. (The watchdog does not
		// monitor the world phase, so this is defensive.)
		if fc.masterGone && !fc.finishing {
			fc.finishing = true
			fc.finishFrameLocked()
		}
	case stRequest:
		if fc.reqDone >= fc.active {
			if fc.active == 0 {
				// Every participant is a zombie; nobody left to reply.
				fc.finishing = true
				fc.finishFrameLocked()
			} else {
				fc.state = stReply
			}
		}
	case stReply:
		// If all remaining actives already called doneReply, no future
		// doneReply will claim promotion — close the frame here. (With the
		// master alive it is in waitAllReplied and the broadcast after
		// unlock wakes it instead.)
		if fc.masterGone && !fc.finishing && fc.repDone >= fc.active {
			fc.finishing = true
			fc.finishFrameLocked()
		}
	}
}

// isZombie reports whether the worker is currently abandoned.
func (fc *frameCtl) isZombie(worker int) bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.zombies[worker]
}

// acquit clears a worker's zombie mark after it has run its recovery
// path; the worker may then rejoin frames.
func (fc *frameCtl) acquit(worker int) {
	fc.mu.Lock()
	delete(fc.zombies, worker)
	fc.nzombies.Store(int32(len(fc.zombies)))
	fc.mu.Unlock()
}

// hasZombies reports whether any abandoned worker has yet to acquit —
// the engine's degraded-mode flag. Lock-free: callers check it once per
// phase, and transitions are ordered by the barrier (zombies are created
// only inside stRequest, so a phase that began after the request barrier
// cannot miss one).
func (fc *frameCtl) hasZombies() bool { return fc.nzombies.Load() > 0 }

// frameNumber returns the completed-frame counter.
func (fc *frameCtl) frameNumber() uint64 {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.frame
}

// setFrame seeds the frame counter before the pool starts — restore
// resumes numbering where the recovered session left off so checkpoint
// file names and replay logs stay monotonic across the restart. Must not
// be called once workers are running.
func (fc *frameCtl) setFrame(n uint64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.frame = n
}

// currentParticipants returns a copy of the participant set excluding
// abandoned workers (master use, during reply/cleanup when the set is
// frozen).
func (fc *frameCtl) currentParticipants() []int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	out := make([]int, 0, len(fc.participants))
	for _, p := range fc.participants {
		if !fc.zombies[p] {
			out = append(out, p)
		}
	}
	return out
}
