package server

import (
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qserve/internal/areanode"
	"qserve/internal/balance"
	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/transport"
)

// Parallel is the multithreaded server of §3: a fixed pool of worker
// goroutines created at start, each owning a datagram endpoint and a
// static subset of the clients, synchronized by the frame controller's
// global barriers and by region locks over the areanode tree.
type Parallel struct {
	cfg     Config
	world   *game.World
	fc      *frameCtl
	clients *clientTable
	prov    *locking.MutexProvider
	workers []*worker
	// stealing caches Config.Stealing && Threads > 1: with one worker
	// there is nobody to steal from and the pool indirection is pure
	// overhead.
	stealing bool

	// globalMu is the single lock serializing the global state buffer
	// (§3.3: "All accesses to the global state buffer are synchronized
	// with a single lock").
	globalMu    sync.Mutex
	frameEvents []protocol.GameEvent

	frameLog *metrics.FrameLog
	replies  atomic.Int64
	joinIdx  atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	// Dynamic load balancing (nil/unused when cfg.Balance is off). The
	// mux sits between the endpoints and the workers so the master can
	// re-route a migrated client's datagrams; the balancer itself is only
	// touched from masterCleanup, which the frame controller makes
	// exclusive.
	mux        *transport.Mux
	bal        *balance.Balancer
	migrations atomic.Int64
	balClients []*client
	balLoads   []int64
	balThreads []int

	// sweepBuf is the master's scratch snapshot for the per-frame client
	// sweep in masterCleanup; kept separate from balClients so a
	// rebalance in the same cleanup pass doesn't clobber it.
	sweepBuf []*client

	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	started   time.Time
	stopped   time.Time
	lastFrame time.Time // master-only access, ordered by the frame ctl
	frameT0   time.Time // frame start stamp; master writes, cleanup reads (fc-ordered)

	// Failure-model state. shed is the overload ladder; draining refuses
	// new connections during Shutdown; wedges/panics/faultEvictions count
	// watchdog detections, contained panics, and the clients evicted by
	// either containment path. wedgeLog keeps the structured records.
	shed           shedController
	draining       atomic.Bool
	wedges         atomic.Int64
	faultEvictions atomic.Int64
	wedgeMu        sync.Mutex
	wedgeLog       []WedgeRecord

	// worldGuard makes abandonment race-free. Request-phase world
	// mutations always hold its read side (shared — they are already
	// serialized against each other by region locks, so this costs two
	// uncontended atomics per request). World readers that the barrier
	// normally protects — the reply phase, the world update, the shed-far
	// scan — take the write side, but only while a zombie is outstanding
	// (fc.hasZombies): an abandoned worker may wake from its wedge at any
	// moment and finish the request it was executing, and its read-side
	// section is the only thing those lockless readers can synchronize
	// with. In normal operation the guard is never locked exclusively and
	// readers skip it entirely.
	worldGuard sync.RWMutex

	// pendingEvict holds clients whose eviction was decided in the reply
	// phase (a reply-side panic), where removing the player would race the
	// other threads' lockless snapshot reads. masterCleanup — single
	// threaded, at the barrier — performs the actual evictions.
	pendingMu    sync.Mutex
	pendingEvict []*client

	// pendingResume holds reconnect handshakes for restore-parked clients
	// (DESIGN.md §12). A Connect may arrive on any thread's endpoint, but
	// resuming rewrites client identity state (addr, byAddr key) that the
	// owning thread and the disconnect paths read — so, like pendingEvict,
	// the application is deferred to masterCleanup where no request is in
	// flight. The Accept is sent immediately; moves sent before the resume
	// lands are dropped and retransmitted by the client's normal tick.
	resumeMu      sync.Mutex
	pendingResume []resumePending

	// ckptBuf is the master's client-snapshot scratch for the checkpoint
	// capture at the frame barrier.
	ckptBuf []*client

	// Scratch for the master's shed-far computation.
	shedClients []*client
	shedDists   []float64

	// vis coordinates the once-per-frame visibility-index build that the
	// workers partition among themselves at the reply barrier.
	vis *visBuilder
}

// resumePending is one queued reconnect: the parked client and the
// address its player is now calling from.
type resumePending struct {
	c    *client
	addr transport.Addr
}

// WedgeRecord describes one watchdog detection: which worker was stuck,
// in which phase, for how long, and — when known — the client whose
// request it was serving.
type WedgeRecord struct {
	Worker    int
	Phase     int32 // wpRequest or wpReply
	Frame     uint64
	StuckFor  time.Duration
	ClientID  uint16
	HasClient bool
}

// worker is one server thread's private state.
type worker struct {
	id   int
	conn transport.Conn
	bd   metrics.Breakdown

	locker  locking.RegionLocker
	lockCtx game.LockContext

	// Per-frame instrumentation, reset when the frame's request phase
	// begins and harvested by the master at frame end.
	frameReqs     int
	frameLeafMask uint64
	frameLockOps  int
	frameExecNs   int64

	// Work-stealing state (Config.Stealing). pool holds this worker's
	// clients' move commands for the current frame; poolIdx stamps their
	// arrival order; outstanding counts pooled entries not yet executed
	// (by anyone) — the worker's request barrier waits for it to reach
	// zero. activeHint publishes the leaf mask of the request being
	// executed right now so other workers' steal scans avoid conflicts.
	pool        stealPool
	poolIdx     int
	outstanding atomic.Int64
	activeHint  atomic.Uint64

	writer protocol.Writer
	stash  []byte
	recvBf []byte

	// Reply-phase scratch, reused across clients and frames so the reply
	// hot path allocates nothing in steady state.
	reply      ReplyScratch
	frameEv    []protocol.GameEvent
	backlogBuf []protocol.GameEvent
	clientBuf  []*client

	// Watchdog publication: the phase this worker is executing (wpIdle
	// when at a barrier or in select), when it entered it, and the client
	// whose request it is serving (id+1; 0 = none). phaseStart is written
	// before phase, so a non-idle phase always pairs with a fresh stamp.
	phase      atomic.Int32
	phaseStart atomic.Int64
	serving    atomic.Int32

	// zombie mirrors the frame controller's abandonment verdict as a
	// cheap atomic so the request drain loop can poll it per datagram
	// without taking the controller's mutex. The controller's map stays
	// authoritative; this is only the fast-path signal.
	zombie atomic.Bool
}

// Watchdog-visible worker phases.
const (
	wpIdle int32 = iota
	wpRequest
	wpReply
)

func (w *worker) beginPhase(p int32) {
	w.phaseStart.Store(time.Now().UnixNano())
	w.phase.Store(p)
}

func (w *worker) endPhase() { w.phase.Store(wpIdle) }

// timedProvider wraps the shared mutex provider, charging acquisition
// wall time to the worker's lock component, split by leaf/parent — the
// live analogue of the Pentium-counter instrumentation.
type timedProvider struct {
	inner locking.Provider
	tree  *areanode.Tree
	bd    *metrics.Breakdown
}

func (tp *timedProvider) LockNode(n int32) {
	t0 := time.Now()
	tp.inner.LockNode(n)
	tp.bd.ChargeLock(time.Since(t0).Nanoseconds(), tp.tree.Node(n).IsLeaf())
}

func (tp *timedProvider) UnlockNode(n int32) { tp.inner.UnlockNode(n) }

// NewParallel builds a parallel server. Call Start to spawn the threads.
func NewParallel(cfg Config) (*Parallel, error) {
	if err := cfg.fill(true); err != nil {
		return nil, err
	}
	s := &Parallel{
		cfg:      cfg,
		world:    cfg.World,
		fc:       newFrameCtl(),
		clients:  newClientTable(cfg.MaxClients),
		prov:     locking.NewMutexProvider(cfg.World.Tree.NumNodes()),
		frameLog: metrics.NewFrameLog(cfg.World.Tree.NumLeaves()),
		stop:     make(chan struct{}),
		vis:      newVisBuilder(),
	}
	s.stealing = cfg.Stealing && cfg.Threads > 1
	for i := 0; i < cfg.Threads; i++ {
		w := &worker{
			id:     i,
			conn:   cfg.Conns[i],
			recvBf: make([]byte, transport.MaxDatagram),
		}
		w.locker = locking.RegionLocker{
			Tree:     s.world.Tree,
			Provider: &timedProvider{inner: s.prov, tree: s.world.Tree, bd: &w.bd},
		}
		w.lockCtx = game.LockContext{
			Locker:   &w.locker,
			Strategy: cfg.Strategy,
		}
		s.workers = append(s.workers, w)
	}
	if cfg.Balance.Enabled && cfg.Threads > 1 {
		// Interpose the mux so client→thread routing can change at
		// runtime; each worker reads from its mux port instead of the raw
		// endpoint. Replies still leave through the per-thread endpoints.
		s.mux = transport.NewMux(cfg.Conns)
		for i, w := range s.workers {
			w.conn = s.mux.Port(i)
		}
		s.bal = balance.New(cfg.Balance)
	}
	if rs := cfg.Restore; rs != nil {
		// Crash recovery: resume frame numbering where the recovered
		// session left off (checkpoint file names and replay logs stay
		// monotonic), restore the allocation counters, and park the
		// surviving clients for reconnection. Routing a parked client's
		// checkpointed address up-front means a survivor calling from the
		// same endpoint reaches its owning thread immediately.
		s.fc.setFrame(rs.Frame + 1)
		s.joinIdx.Store(int64(rs.JoinIdx))
		parked := parkRestoredClients(s.clients, rs, cfg.Threads, time.Now())
		if s.mux != nil {
			for _, c := range parked {
				if c.addrStr != "" {
					s.mux.Route(transport.MemAddr(c.addrStr), c.thread)
				}
			}
		}
		s.workers[0].bd.RecoveryNs = rs.RecoveryNs
	}
	s.shed.init(&s.cfg)
	return s, nil
}

// Start launches the worker pool ("we create all threads at
// initialization time").
func (s *Parallel) Start() {
	s.started = time.Now()
	s.lastFrame = s.cfg.timeNow()
	s.frameT0 = s.started
	for _, w := range s.workers {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			s.workerLoop(w)
		}(w)
	}
	if s.cfg.WatchdogDeadline > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
}

// Stop shuts the pool down and waits for the threads to exit. Any frame
// in progress completes first. Stop is idempotent. Breakdowns and the
// frame log must only be read after Stop returns.
func (s *Parallel) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		if s.mux != nil {
			s.mux.Close()
		}
		s.stopped = time.Now()
	})
}

func (s *Parallel) stopping() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// Shutdown performs a graceful stop: new connection attempts are refused
// immediately, the frame in progress completes (Stop's semantics), and
// every connected client is sent a final Disconnected notice on its
// owning thread's endpoint before being dropped from the table.
func (s *Parallel) Shutdown() {
	s.draining.Store(true)
	s.Stop()
	var wr protocol.Writer
	s.clients.forEach(func(c *client) {
		wr.Reset()
		if c.addr != nil &&
			protocol.Encode(&wr, &protocol.Disconnected{Reason: "server shutting down"}) == nil {
			s.bytesOut.Add(int64(len(wr.Bytes())))
			_ = s.cfg.Conns[c.thread].Send(c.addr, wr.Bytes())
		}
		s.clients.remove(c)
	})
}

// SetFrameBudget adjusts the overload ladder's frame budget at runtime
// (0 disables shedding). Safe to call while the server runs.
func (s *Parallel) SetFrameBudget(d time.Duration) { s.shed.setBudget(d) }

// ShedLevel returns the overload ladder's current level.
func (s *Parallel) ShedLevel() int { return int(s.shed.current()) }

// FaultEvictions returns how many clients were evicted by the
// containment paths (panic recovery and wedge quarantine).
func (s *Parallel) FaultEvictions() int64 { return s.faultEvictions.Load() }

// Wedges returns a copy of the watchdog's detection records.
func (s *Parallel) Wedges() []WedgeRecord {
	s.wedgeMu.Lock()
	defer s.wedgeMu.Unlock()
	return append([]WedgeRecord(nil), s.wedgeLog...)
}

// workerLoop is Figure 3 for one thread.
func (s *Parallel) workerLoop(w *worker) {
	for {
		// Select: block for a request on this thread's endpoint.
		t0 := time.Now()
		n, from, err := w.conn.Recv(w.recvBf, s.cfg.SelectTimeout)
		w.bd.Charge(metrics.CompIdle, time.Since(t0).Nanoseconds())
		if s.stopping() {
			return
		}
		if err == transport.ErrTimeout {
			continue
		}
		if err != nil {
			return // endpoint closed
		}
		s.bytesIn.Add(int64(n))
		w.stash = append(w.stash[:0], w.recvBf[:n]...)

		role := s.fc.join(w.id)
		for role == roleMissed {
			// Too late for this frame: inter-frame wait for the frame
			// end signal, then retry ("they are guaranteed to be part of
			// the execution of the next server frame").
			t0 = time.Now()
			s.fc.waitFrameEnd()
			w.bd.Charge(metrics.CompInterWait, time.Since(t0).Nanoseconds())
			role = s.fc.join(w.id)
		}

		if role == roleMaster {
			if d := s.cfg.BatchDelay; d > 0 {
				// Request batching (§5.2 future work): hold the frame
				// open so more threads and requests join it. Deliberate
				// idling, not synchronization wait — as in select.
				t0 = time.Now()
				time.Sleep(d)
				w.bd.Charge(metrics.CompIdle, time.Since(t0).Nanoseconds())
			}
			s.frameT0 = time.Now()
			t0 = s.frameT0
			s.runWorldUpdate()
			w.bd.Charge(metrics.CompWorld, time.Since(t0).Nanoseconds())
			s.fc.openRequests()
		} else {
			t0 = time.Now()
			ok := s.fc.waitRequestsOpen(w.id)
			w.bd.Charge(metrics.CompInterWait, time.Since(t0).Nanoseconds())
			if !ok {
				s.zombieRecover(w)
				continue
			}
		}

		// Request phase: the stashed packet, then drain the queue. The
		// zombie poll lets an abandoned worker stop mid-drain instead of
		// racing the frame that moved on without it. With stealing on, the
		// drain only pools move commands (connection traffic is still
		// handled inline); the pooled work executes in the steal phase
		// below, overlapped with other workers still draining.
		w.frameReqs, w.frameLeafMask, w.frameLockOps, w.frameExecNs = 0, 0, 0, 0
		w.poolIdx = 0
		if s.stealing {
			// Leftover pool entries at frame start are stale by
			// construction (a healthy steal phase only ends with every
			// pool empty): a thief parked a stolen entry after this
			// worker's zombie recovery had already drained the pool and
			// cleared the flag. Drop them — their frame is dead — and
			// settle the barrier arithmetic they still hold.
			if dropped := w.pool.drain(); dropped > 0 {
				w.outstanding.Add(-int64(dropped))
			}
		}
		w.beginPhase(wpRequest)
		s.safeProcessPacket(w, w.stash, from)
		for !w.zombie.Load() {
			t0 = time.Now()
			n, from, err = w.conn.Recv(w.recvBf, 0)
			w.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
			if err != nil {
				break // queue empty
			}
			s.bytesIn.Add(int64(n))
			s.safeProcessPacket(w, w.recvBf[:n], from)
		}
		if s.stealing {
			s.fc.doneDraining(w.id)
			s.runStealPhase(w)
		}
		w.endPhase()

		// Intra-frame barrier before replies.
		t0 = time.Now()
		ok := s.fc.doneRequests(w.id)
		w.bd.Charge(metrics.CompIntraWait, time.Since(t0).Nanoseconds())
		if !ok {
			s.zombieRecover(w)
			continue
		}

		// Reply phase.
		t0 = time.Now()
		w.beginPhase(wpReply)
		s.safeSendReplies(w)
		w.endPhase()
		w.bd.Charge(metrics.CompReply, time.Since(t0).Nanoseconds())
		ok, promoted := s.fc.doneReply(w.id)
		if !ok {
			s.zombieRecover(w)
			continue
		}

		if role == roleMaster || promoted {
			// promoted: the master wedged mid-frame and this worker was the
			// last to finish replies — it inherits cleanup and frame end.
			t0 = time.Now()
			s.fc.waitAllReplied()
			s.masterCleanup(w)
			s.fc.endFrame()
			w.bd.Charge(metrics.CompInterWait, time.Since(t0).Nanoseconds())
		}
	}
}

// zombieRecover is the path a worker takes after discovering the
// watchdog abandoned it: unwind any locks a wedge left stranded, discard
// the pooled requests of the frame that moved on without it, evict the
// quarantined clients it condemned (their requests are what wedged it),
// clear the zombie mark, and return to the loop to rejoin the next
// frame. The worker evicts the clients *it quarantined* — not simply the
// ones it owns — because under stealing the request that wedged it may
// have been a stolen one; eviction runs here (not on the master) because
// it takes region locks the wedged thread itself may have been holding.
func (s *Parallel) zombieRecover(w *worker) {
	w.endPhase()
	w.serving.Store(0)
	w.activeHint.Store(0)
	released := w.locker.ReleaseAll()
	if dropped := w.pool.drain(); dropped > 0 {
		// The dropped entries were never executed; settle the barrier
		// arithmetic so next frame's outstanding count starts clean.
		// Entries of this pool claimed by live thieves are not in the
		// pool anymore: the thief either commits them normally or — on a
		// park while this worker is marked zombie — completes them as
		// drops (parkPoolEntry), settling their outstanding counts
		// itself. A park that slips in after this drain AND after the
		// zombie flag clears is swept by the frame-start leftover drain
		// in workerLoop before it could execute a frame late.
		w.outstanding.Add(-int64(dropped))
	}
	me := int32(w.id) + 1
	var evict []*client
	s.clients.forEach(func(c *client) {
		if !c.quarantined.Load() {
			return
		}
		by := c.quarantinedBy.Load()
		if by == me || (by == 0 && c.thread == w.id) {
			evict = append(evict, c)
		}
	})
	for _, c := range evict {
		s.evictClient(w, c, "request stalled the server")
	}
	w.zombie.Store(false)
	s.fc.acquit(w.id)
	log.Printf("server: thread %d recovered from abandonment (released %d locks, evicted %d quarantined clients)",
		w.id, released, len(evict))
}

// evictClient removes a client the containment paths decided is at
// fault, notifying it with a Disconnected message.
func (s *Parallel) evictClient(w *worker, c *client, reason string) {
	if !s.claimForRemoval(w, c) {
		return
	}
	s.clients.remove(c)
	s.unroute(c)
	s.removePlayerLocked(w, c.entID)
	if r := s.cfg.Record; r != nil {
		r.RecordDisconnect(c.id, DiscReasonEvict)
	}
	s.send(w, c.addr, &protocol.Disconnected{Reason: reason})
	s.faultEvictions.Add(1)
}

// unroute forgets a client's mux route, keyed by its cached address
// string so a restore-parked client (addr nil until reconnect) is handled
// uniformly.
func (s *Parallel) unroute(c *client) {
	if s.mux == nil || c.addrStr == "" {
		return
	}
	s.mux.Unroute(transport.MemAddr(c.addrStr))
}

// safeProcessPacket contains a panic in request handling to the client
// that caused it: stranded region locks are force-released, the client
// is evicted, and the worker continues its frame — a malformed or
// adversarial request must never take the server down.
func (s *Parallel) safeProcessPacket(w *worker, data []byte, from transport.Addr) {
	defer s.recoverWorker(w, "request")
	s.processPacket(w, data, from)
}

// safeSendReplies is the reply-phase analogue. A panic skips the rest of
// the thread's reply pass for this frame (those clients simply see one
// dropped snapshot) but the barrier protocol continues undisturbed.
// While a zombie is outstanding the pass holds the world guard
// exclusively: its snapshot reads are normally barrier-protected, but an
// abandoned worker waking mid-request writes outside the barrier.
func (s *Parallel) safeSendReplies(w *worker) {
	defer s.recoverWorker(w, "reply")
	if s.fc.hasZombies() {
		s.worldGuard.Lock()
		defer s.worldGuard.Unlock()
	}
	s.sendReplies(w)
}

func (s *Parallel) recoverWorker(w *worker, phase string) {
	r := recover()
	if r == nil {
		return
	}
	released := w.locker.ReleaseAll()
	w.bd.PanicsRecovered++
	var victim *client
	if cid := w.serving.Load(); cid > 0 {
		victim = s.clients.lookupID(uint16(cid - 1))
	}
	w.serving.Store(0)
	if victim != nil {
		victim.quarantined.Store(true)
		victim.quarantinedBy.Store(int32(w.id) + 1)
		if phase == "request" {
			// Request phase: world writes are lock-protected, evict inline.
			s.evictClient(w, victim, "server error handling your request")
		} else {
			// Reply phase: removing the player writes the world while the
			// other threads read it locklessly. Defer to masterCleanup,
			// which runs single-threaded at the barrier.
			s.pendingMu.Lock()
			s.pendingEvict = append(s.pendingEvict, victim)
			s.pendingMu.Unlock()
		}
	}
	log.Printf("server: thread %d recovered panic in %s phase: %v (released %d locks, evicted client: %v)",
		w.id, phase, r, released, victim != nil)
}

// watchdog is the frame-pipeline monitor: it fires when a worker sits in
// one phase past the configured deadline, records the wedge, and — when
// quarantine is enabled — abandons the worker at the frame barriers so
// the remaining threads keep serving their clients. It cannot rescue the
// wedged OS thread itself (Go offers no way to kill a goroutine), and it
// never force-releases a truly hung thread's region locks — see
// DESIGN.md §7 for the documented limitations.
func (s *Parallel) watchdog() {
	defer s.wg.Done()
	deadline := s.cfg.WatchdogDeadline
	tick := deadline / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	// One detection per wedge: keyed by the phase-start stamp, which the
	// execution paths refresh per request — so the dedup is per stalled
	// request, and a worker that wedges on a second request after
	// surviving a first is detected again.
	fired := make([]int64, len(s.workers))
	for {
		select {
		case <-s.stop:
			return
		case <-tk.C:
		}
		now := time.Now().UnixNano()
		for _, w := range s.workers {
			ph := w.phase.Load()
			if ph == wpIdle {
				continue
			}
			start := w.phaseStart.Load()
			if now-start < int64(deadline) || fired[w.id] == start {
				continue
			}
			fired[w.id] = start
			cid := w.serving.Load()
			rec := WedgeRecord{
				Worker:   w.id,
				Phase:    ph,
				Frame:    s.fc.frameNumber(),
				StuckFor: time.Duration(now - start),
			}
			if cid > 0 {
				rec.ClientID = uint16(cid - 1)
				rec.HasClient = true
			}
			s.wedges.Add(1)
			s.wedgeMu.Lock()
			s.wedgeLog = append(s.wedgeLog, rec)
			s.wedgeMu.Unlock()
			phName := "request"
			if ph == wpReply {
				phName = "reply"
			}
			log.Printf("server: watchdog: thread %d wedged in %s phase for %v (frame %d, serving client %d)",
				w.id, phName, rec.StuckFor, rec.Frame, int32(cid)-1)
			// Quarantine is confined to request-phase wedges: a reply-phase
			// zombie would resume lockless world reads that nothing can
			// retroactively synchronize with later frames' writes (the
			// request side holds the world guard; the reply side, by
			// design, holds nothing). A wedged reply pass is recorded but
			// stalls the frame — see DESIGN.md §7.
			if s.cfg.QuarantineWedged && ph == wpRequest {
				// Quarantine the suspect client and mark the worker before
				// abandoning, so a zombie that wakes immediately cannot miss
				// either flag; both are rolled back if the frame controller
				// finds the worker already past the request barrier (the
				// observation above is unsynchronized and may be stale).
				var qc *client
				if cid > 0 {
					qc = s.clients.lookupID(uint16(cid - 1))
				}
				if qc != nil {
					// Attribute the quarantine to the executing worker: with
					// stealing, the stalled request's client may belong to a
					// different thread, and recovery must evict the clients
					// this worker condemned, not the ones it owns.
					qc.quarantined.Store(true)
					qc.quarantinedBy.Store(int32(w.id) + 1)
				}
				w.zombie.Store(true)
				if !s.fc.abandonRequestStalled(w.id) {
					w.zombie.Store(false)
					if qc != nil {
						qc.quarantinedBy.Store(0)
						qc.quarantined.Store(false)
					}
				}
			}
		}
	}
}

// minWorldTick rate-limits the world-physics phase like QuakeWorld's
// sv_mintic: frames arriving faster than this skip the P stage.
const minWorldTick = 12 * time.Millisecond

// runWorldUpdate performs the master's world-physics phase. Its writes
// are lockless by the barrier; in degraded mode (outstanding zombie) it
// holds the world guard exclusively against a waking zombie's request.
//
//qvet:phase=physics
func (s *Parallel) runWorldUpdate() {
	// The dt comes from the frame-logic clock (Config.Clock when
	// replaying) — the only wall-clock input world evolution sees.
	now := s.cfg.timeNow()
	dt := now.Sub(s.lastFrame)
	if dt < minWorldTick {
		return
	}
	s.lastFrame = now
	if s.fc.hasZombies() {
		s.worldGuard.Lock()
		defer s.worldGuard.Unlock()
	}
	res := s.world.RunWorldFrame(dt.Seconds())
	if r := s.cfg.Record; r != nil {
		r.RecordTick(dt.Nanoseconds())
	}
	if len(res.Events) > 0 {
		s.appendEvents(res.Events)
	}
}

func (s *Parallel) appendEvents(events []game.Event) {
	wire := wireEvents(events)
	s.globalMu.Lock()
	s.frameEvents = append(s.frameEvents, wire...)
	s.globalMu.Unlock()
}

// snapshotFrameEvents copies the global state buffer into dst for reply
// building; dst is a reusable per-thread buffer.
func (s *Parallel) snapshotFrameEvents(dst []protocol.GameEvent) []protocol.GameEvent {
	s.globalMu.Lock()
	defer s.globalMu.Unlock()
	return append(dst, s.frameEvents...)
}

// processPacket dispatches one datagram during the request phase.
func (s *Parallel) processPacket(w *worker, data []byte, from transport.Addr) {
	t0 := time.Now()
	msg, err := protocol.Decode(data)
	if err != nil {
		w.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
		return
	}
	switch m := msg.(type) {
	case *protocol.Move:
		c := s.clients.lookup(from)
		w.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
		if c == nil || c.quarantined.Load() {
			return
		}
		if c.awaitingResume.Load() {
			// Restore-parked client: moves are dropped until the reconnect
			// handshake (a Connect) lands at the barrier. Unlike the
			// sequential engine, the parallel engine cannot adopt the
			// address in place — the owner's addr write would race the
			// disconnect paths on other threads.
			return
		}
		if c.thread != w.id {
			// A command for a client another thread owns. With the mux in
			// place this happens transiently after a migration (a datagram
			// pumped before the routing update took effect): bounce it to
			// the owner's port so the command is executed, not lost. The
			// forward stamp freezes the client's assignment until the
			// command lands, so the datagram chases at most one migration.
			// Without the mux it is a client ignoring Accept.Addr — drop,
			// as the static design always did.
			if s.mux != nil {
				c.fwdFrame.Store(s.fc.frameNumber() + 1)
				s.mux.Forward(c.thread, data, from)
			}
			return
		}
		if s.stealing {
			s.enqueueMove(w, c, m)
			return
		}
		s.execMove(w, c, m)
	case *protocol.Connect:
		w.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
		s.handleConnect(w, m, from)
	case *protocol.Disconnect:
		w.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
		s.handleDisconnect(w, from)
	case *protocol.Ping:
		w.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
		s.send(w, from, &protocol.Pong{Nonce: m.Nonce})
	default:
		w.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
	}
}

// baselineGapFrames is the widest reply-frame gap a client may fall
// behind before its delta baseline is invalidated: past it, the client
// has likely lost the snapshots the baseline assumes it holds, so the
// next reply resends full entity state. Ack 0 means "no information" and
// never invalidates.
const baselineGapFrames = 64

// execMove runs one gameplay request, separating exec time from lock
// time (the lock component accrues inside the timed provider during the
// call; the difference is pure execution).
//
//qvet:phase=exec
func (s *Parallel) execMove(w *worker, c *client, m *protocol.Move) {
	// A client's state — sequence tracking, reply flags, baseline — is
	// owned by one thread; a datagram that reaches another thread's
	// endpoint (a client ignoring the Accept.Addr redirect) must not let
	// two threads mutate that state concurrently.
	if c.thread != w.id {
		return
	}
	// Re-stamp the watchdog clock per request so the deadline measures a
	// single stalled request, not an accumulating healthy phase, and a
	// wedge record's serving client is the request that actually stalled.
	w.phaseStart.Store(time.Now().UnixNano())
	// Drop duplicates and reordered datagrams: UDP may replay an old
	// move, and executing it would rewind the player's intent. The
	// engine's netchan does the same with its sequence check. Wild
	// forward jumps are corrupted datagrams and are dropped *without*
	// advancing lastSeq, so they cannot poison the filter. A resumed
	// client's first move re-seeds lastSeq instead (seqResync): its peer's
	// seq space may have moved arbitrarily while the server was down.
	if m.Seq != 0 && (seqOlder(m.Seq, c.lastSeq) || seqWild(m.Seq, c.lastSeq)) &&
		!c.seqResync.Load() {
		return
	}
	if m.Ack != 0 && c.repliedFrame.Load()-m.Ack > baselineGapFrames {
		// The client is acknowledging a frame far behind the last reply we
		// sent it: delta continuity is lost. Invalidation here (request
		// phase) is ordered before the reply phase by the frame barrier.
		c.baseline.Invalidate()
	}
	ent := s.world.Ents.Get(c.entID)
	if ent == nil {
		return
	}
	// Publish which client this thread is serving, for the watchdog and
	// panic containment. The test seam runs here too — before any region
	// lock is taken, so an injected wedge never strands locks.
	w.serving.Store(int32(c.id) + 1)
	if s.cfg.Hooks.PreExec != nil {
		s.cfg.Hooks.PreExec(w.id, c.id)
	}
	if w.zombie.Load() {
		// The watchdog abandoned this worker while the request sat in the
		// pre-exec seam: the frame has moved on without it, and executing
		// the stale command now would write into frames that no longer
		// expect this thread. Drop it; zombieRecover owns the cleanup.
		w.serving.Store(0)
		return
	}
	// Liveness (ent.Active, Health) is checked inside ExecuteMove under
	// the region guard — checking here would race with another thread's
	// concurrent damage or removal.
	var stats locking.AcquireStats
	var mask uint64
	w.lockCtx.Stats = &stats
	w.lockCtx.LeafMask = &mask

	lockBefore := w.bd.Ns[metrics.CompLock]
	t0 := time.Now()
	res := s.executeMoveGuarded(ent, &m.Cmd, &w.lockCtx)
	span := time.Since(t0).Nanoseconds()
	lockDelta := w.bd.Ns[metrics.CompLock] - lockBefore
	if exec := span - lockDelta; exec > 0 {
		w.bd.Charge(metrics.CompExec, exec)
		w.frameExecNs += exec
		// Per-client load for the balancer: decayed at each rebalance, so
		// it tracks recent cost rather than lifetime cost. Only the owning
		// thread writes it; the master reads it at the barrier.
		c.loadNs.Add(exec)
	}
	w.bd.ExecCmds++
	w.serving.Store(0)

	if len(res.Events) > 0 {
		s.appendEvents(res.Events)
	}
	w.frameReqs++
	w.frameLeafMask |= mask
	w.frameLockOps += stats.LeafLockOps

	c.replyPending = true
	c.lastSeq = m.Seq
	c.seqResync.Store(false)
	c.touch(time.Now())
	if r := s.cfg.Record; r != nil {
		r.RecordMove(c.id, m.Seq, &m.Cmd)
	}
	// The client's forwarded datagram (if this was one) has landed; lift
	// the migration freeze.
	c.fwdFrame.Store(0)
}

// executeMoveGuarded wraps move execution in the world guard's read side
// (see worldGuard). The deferred unlock keeps the guard panic-safe: a
// panic in game code unwinds through here before recoverWorker runs.
//
//qvet:phase=exec
func (s *Parallel) executeMoveGuarded(ent *entity.Entity, cmd *protocol.MoveCmd, lc *game.LockContext) game.MoveResult {
	s.worldGuard.RLock()
	defer s.worldGuard.RUnlock()
	return s.world.ExecuteMove(ent, cmd, lc)
}

// handleConnect admits a new player. Connection requests "are associated
// with the connection or disconnection protocols ... or other facilities
// that do not affect gameplay", so they are processed inline; the spawn
// itself takes a region lock over the spawn area.
func (s *Parallel) handleConnect(w *worker, m *protocol.Connect, from transport.Addr) {
	if s.draining.Load() {
		s.send(w, from, &protocol.Reject{Reason: "server shutting down"})
		return
	}
	if existing := s.clients.lookup(from); existing != nil {
		if existing.quarantined.Load() {
			return // pending eviction; don't resurrect
		}
		if existing.awaitingResume.Load() {
			// Restore-parked survivor calling back from its checkpointed
			// address: queue the resume for the barrier (see pendingResume)
			// and accept immediately — the Accept's contents are all stable.
			s.queueResume(existing, from)
			s.send(w, from, &protocol.Accept{
				ClientID: existing.id,
				EntityID: int32(existing.entID),
				MapName:  s.world.Map.Name,
				Addr:     s.cfg.Conns[existing.thread].LocalAddr().String(),
			})
			return
		}
		// Duplicate connect (retransmit or client restart): re-accept
		// idempotently, and flag the delta baseline for reset — a
		// restarted client has no memory of the entity states the baseline
		// assumes. The flag (not a direct Invalidate) keeps the baseline
		// single-owner: connects may arrive on any thread's endpoint, and
		// the owning thread consumes the flag in its reply phase.
		existing.resetBaseline.Store(true)
		s.send(w, from, &protocol.Accept{
			ClientID: existing.id,
			EntityID: int32(existing.entID),
			MapName:  s.world.Map.Name,
			Addr:     s.cfg.Conns[existing.thread].LocalAddr().String(),
		})
		return
	}
	if resume := s.clients.lookupResume(m.Name); resume != nil {
		// Survivor reconnecting from a new address (NAT rebind across the
		// restart): matched by name. Resumes at the barrier like the
		// same-address path; no new client slot is consumed.
		s.queueResume(resume, from)
		s.send(w, from, &protocol.Accept{
			ClientID: resume.id,
			EntityID: int32(resume.entID),
			MapName:  s.world.Map.Name,
			Addr:     s.cfg.Conns[resume.thread].LocalAddr().String(),
		})
		return
	}
	if s.shed.current() >= shedRejectNew {
		// Overload ladder level 3: protect the clients already connected.
		w.bd.BusyRejects++
		s.send(w, from, &protocol.Reject{Reason: "busy"})
		return
	}
	if s.clients.count() >= s.cfg.MaxClients {
		s.send(w, from, &protocol.Reject{Reason: "server full"})
		return
	}
	ent, err := s.spawnPlayerLocked(w)
	if err != nil {
		s.send(w, from, &protocol.Reject{Reason: "no entity slots"})
		return
	}
	idx := int(s.joinIdx.Add(1) - 1)
	c := &client{
		entID:  ent.ID,
		name:   m.Name,
		addr:   from,
		thread: s.cfg.Assign(idx, s.cfg.Threads, s.cfg.MaxClients),
	}
	c.touch(time.Now())
	if !s.clients.add(c) {
		s.removePlayerLocked(w, ent.ID)
		s.send(w, from, &protocol.Reject{Reason: "server full"})
		return
	}
	if s.mux != nil {
		// Pin the client's datagrams to its owning thread regardless of
		// which endpoint they arrive at; migrations re-route later.
		s.mux.Route(from, c.thread)
	}
	if r := s.cfg.Record; r != nil {
		r.RecordConnect(c.id, int32(ent.ID), c.thread, m.Name)
	}
	s.send(w, from, &protocol.Accept{
		ClientID: c.id,
		EntityID: int32(ent.ID),
		MapName:  s.world.Map.Name,
		Addr:     s.cfg.Conns[c.thread].LocalAddr().String(),
	})
}

// spawnPlayerLocked spawns a player under a region lock covering the
// spawn location, keeping the tree mutation safe against concurrent
// request processing.
func (s *Parallel) spawnPlayerLocked(w *worker) (*entity.Entity, error) {
	s.worldGuard.RLock()
	defer s.worldGuard.RUnlock()
	guard := w.locker.Acquire(s.world.Map.Bounds, nil)
	defer guard.Release()
	return s.world.SpawnPlayer()
}

func (s *Parallel) removePlayerLocked(w *worker, id entity.ID) {
	s.worldGuard.RLock()
	defer s.worldGuard.RUnlock()
	guard := w.locker.Acquire(s.world.Map.Bounds, nil)
	defer guard.Release()
	s.world.RemovePlayer(id)
}

func (s *Parallel) handleDisconnect(w *worker, from transport.Addr) {
	c := s.clients.lookup(from)
	if c == nil || c.quarantined.Load() {
		return // quarantined: the recovering thread owns the removal
	}
	if !s.claimForRemoval(w, c) {
		return
	}
	s.clients.remove(c)
	s.unroute(c)
	s.removePlayerLocked(w, c.entID)
	if r := s.cfg.Record; r != nil {
		r.RecordDisconnect(c.id, DiscReasonClient)
	}
	s.send(w, from, &protocol.Disconnected{Reason: "bye"})
}

// sendReplies forms and transmits the snapshots for this worker's
// clients that requested during the frame — reply processing "involves
// reading global state but writing only private (per-client) reply
// messages".
//
//qvet:phase=reply
//qvet:noalloc
func (s *Parallel) sendReplies(w *worker) {
	// Build (or help build) the frame's shared visibility index first.
	// Every worker passes through here after the request barrier, so the
	// encode shards are split across all threads; acquire wall time is
	// the worker's share of the cache build (idle waiting included).
	buildT0 := time.Now()
	vi := s.vis.acquire(s.fc.frameNumber(), s.world)
	w.bd.SnapBuildNs += time.Since(buildT0).Nanoseconds()

	w.frameEv = s.snapshotFrameEvents(w.frameEv[:0])
	frame := uint32(s.fc.frameNumber())
	serverTime := uint32(s.world.Time * 1000)
	level := s.shed.current()
	entityLimit := 0
	if level >= shedEntityCap {
		entityLimit = s.cfg.OverloadEntityCap
	}
	w.clientBuf = s.clients.forThreadBuf(w.clientBuf, w.id, func(c *client) {
		if !c.replyPending || c.quarantined.Load() {
			return
		}
		if level >= shedFarHalf && c.shedFar.Load() && frame&1 == 1 {
			// Overload ladder level 1: clients far from the action get
			// every other snapshot. replyPending stays set, so the reply
			// goes out next frame; the skipped snapshot is invisible to
			// delta continuity (the baseline only advances on sends).
			w.bd.RepliesShed++
			return
		}
		c.replyPending = false
		ent := s.world.Ents.Get(c.entID)
		if ent == nil || !ent.Active {
			return
		}
		if c.resetBaseline.Swap(false) {
			c.baseline.Invalidate()
		}
		w.serving.Store(int32(c.id) + 1)
		w.backlogBuf = c.drainBacklog(w.backlogBuf[:0])
		data, st := w.reply.FormSnapshot(s.world, vi, ent, &c.baseline,
			frame, c.lastSeq, serverTime, w.backlogBuf, w.frameEv, entityLimit)
		w.serving.Store(0)
		w.bd.SnapMergeNs += st.SnapNs
		if data == nil {
			return
		}
		s.bytesOut.Add(int64(len(data)))
		_ = w.conn.Send(c.addr, data)
		w.bd.ReplyBytes += int64(st.Bytes)
		w.bd.ReplyDatagrams++
		w.bd.ReplyAllocs += int64(st.Allocs)
		w.bd.EntitiesCapped += int64(st.Capped)
		c.markReplied(frame)
		s.replies.Add(1)
	})
}

// masterCleanup runs after all replies: it distributes the frame's
// events to clients that were not replied to, evicts dead clients,
// records the frame, and clears the global state buffer ("the master
// thread clears this global state buffer before signaling the end of the
// current frame").
func (s *Parallel) masterCleanup(w *worker) {
	frame := uint32(s.fc.frameNumber())
	s.globalMu.Lock()
	events := s.frameEvents
	// Truncate in place: events stays valid because it is consumed below,
	// before endFrame lets any thread append to the buffer again.
	s.frameEvents = s.frameEvents[:0]
	s.globalMu.Unlock()

	now := time.Now()
	var stale []*client
	s.sweepBuf = s.clients.forEachBuf(s.sweepBuf, func(c *client) {
		if c.repliedFrame.Load() != frame {
			c.queueEvents(events)
		}
		// Quarantined clients belong to their recovering thread; clients
		// on a zombie thread are skipped because eviction takes region
		// locks the wedged thread may hold.
		if c.quarantined.Load() || s.workers[c.thread].zombie.Load() {
			return
		}
		if now.UnixNano()-c.lastActive.Load() > int64(s.cfg.ClientTimeout) {
			stale = append(stale, c)
		}
	})
	for _, c := range stale {
		if !s.claimForRemoval(w, c) {
			continue
		}
		s.clients.remove(c)
		s.unroute(c)
		s.removePlayerLocked(w, c.entID)
		if r := s.cfg.Record; r != nil {
			r.RecordDisconnect(c.id, DiscReasonTimeout)
		}
	}

	// Evictions decided during the reply phase (reply-side panics) were
	// deferred to this point, where no thread is reading the world.
	s.pendingMu.Lock()
	pending := s.pendingEvict
	s.pendingEvict = nil
	s.pendingMu.Unlock()
	for _, c := range pending {
		s.evictClient(w, c, "server error handling your request")
	}

	// Overload ladder: feed the frame's duration, then refresh the
	// shed-far flags while a shed level is active.
	level := s.shed.observe(time.Since(s.frameT0).Nanoseconds())
	if level >= shedFarHalf {
		s.computeShedFar()
	}

	rec := metrics.FrameRecord{
		Frame:             s.fc.frameNumber(),
		RequestsByThread:  make([]int, len(s.workers)),
		LeafLocksByThread: make([]uint64, len(s.workers)),
		ExecNsByThread:    make([]int64, len(s.workers)),
		ShedLevel:         int(level),
	}
	parts := s.fc.currentParticipants()
	rec.Participants = len(parts)
	for _, wid := range parts {
		ww := s.workers[wid]
		rec.RequestsByThread[wid] = ww.frameReqs
		rec.LeafLocksByThread[wid] = ww.frameLeafMask
		rec.LeafLockOps += ww.frameLockOps
		rec.ExecNsByThread[wid] = ww.frameExecNs
	}
	if s.bal != nil {
		rec.Migrations = s.rebalance()
	}
	s.applyResumes()
	s.frameLog.Append(rec)
	if r := s.cfg.Record; r != nil {
		r.RecordShed(int(level))
		r.RecordFrameEnd(s.fc.frameNumber())
	}

	// Durable checkpoint capture (DESIGN.md §12): after every reply
	// committed and after the frame's record taps ran, so the redo-log cut
	// names exactly the state the snapshot contains. The entity table is
	// read-only here by the barrier; in degraded mode the world guard
	// excludes a waking zombie's writes, like every other barrier-side
	// reader.
	if wr := s.cfg.Checkpoint; wr != nil {
		if frame := s.fc.frameNumber(); wr.Due(frame) {
			if s.fc.hasZombies() {
				s.worldGuard.Lock()
				s.ckptBuf = captureCheckpoint(wr, s.world, s.clients, s.ckptBuf,
					s.cfg.Record, frame, int(s.joinIdx.Load()), &w.bd)
				s.worldGuard.Unlock()
			} else {
				s.ckptBuf = captureCheckpoint(wr, s.world, s.clients, s.ckptBuf,
					s.cfg.Record, frame, int(s.joinIdx.Load()), &w.bd)
			}
		}
	}
}

// queueResume enqueues a parked client's reconnect for the barrier.
func (s *Parallel) queueResume(c *client, from transport.Addr) {
	s.resumeMu.Lock()
	s.pendingResume = append(s.pendingResume, resumePending{c: c, addr: from})
	s.resumeMu.Unlock()
}

// applyResumes completes queued reconnect handshakes at the frame
// barrier: rebind the client to its new address, invalidate the delta
// baseline, re-route the mux, and lift the parked state. Single-threaded
// by masterCleanup's position in the frame protocol.
func (s *Parallel) applyResumes() {
	s.resumeMu.Lock()
	pending := s.pendingResume
	s.pendingResume = nil
	s.resumeMu.Unlock()
	if len(pending) == 0 {
		return
	}
	now := time.Now()
	for _, pr := range pending {
		c := pr.c
		// Retransmitted Connects queue duplicates; the first application
		// clears awaitingResume and the rest fall through here. A client
		// reaped or quarantined while queued stays untouched.
		if !c.awaitingResume.Load() || c.quarantined.Load() || s.clients.lookupID(c.id) != c {
			continue
		}
		old := c.addrStr
		resumeClient(s.clients, c, pr.addr, now)
		if s.mux != nil {
			if old != "" && old != c.addrStr {
				s.mux.Unroute(transport.MemAddr(old))
			}
			s.mux.Route(pr.addr, c.thread)
		}
	}
}

// computeShedFar refreshes the shed-far flags for this engine's clients.
// Master only, at the frame barrier. It reads entity positions, so in
// degraded mode it excludes a waking zombie's writes like the reply pass.
func (s *Parallel) computeShedFar() {
	if s.fc.hasZombies() {
		s.worldGuard.Lock()
		defer s.worldGuard.Unlock()
	}
	s.shedClients, s.shedDists = markShedFar(s.world, s.clients, s.shedClients, s.shedDists)
}

// rebalance runs at the frame barrier, the only point where no region
// lock is held and no command is in flight: every participant has passed
// doneReply, non-participants are blocked in Recv or waitFrameEnd, and
// the frame controller's mutex orders this frame's c.thread writes
// before any later frame's reads. Migrating a client is therefore three
// plain assignments: the thread field, the mux route, and nothing else —
// the reply baseline, sequence state, and backlog travel with the client
// struct and must NOT be reset (a migration is invisible on the wire).
func (s *Parallel) rebalance() int {
	cs := s.balClients[:0]
	s.clients.forEach(func(c *client) { cs = append(cs, c) })
	sort.Slice(cs, func(i, j int) bool { return cs[i].id < cs[j].id })
	s.balClients = cs

	loads, threads := s.balLoads[:0], s.balThreads[:0]
	for _, c := range cs {
		loads = append(loads, c.loadNs.Load())
		threads = append(threads, c.thread)
	}
	s.balLoads, s.balThreads = loads, threads

	migs := s.bal.Plan(loads, threads, len(s.workers))
	frame := s.fc.frameNumber() + 1
	applied := 0
	for _, mg := range migs {
		c := cs[mg.Client]
		// Clients owned by an abandoned (zombie) thread are frozen: the
		// wedged thread may still be straggling through its request phase,
		// and migrating its client under it would put two threads on one
		// client's state. Quarantined clients are pending eviction.
		// Restore-parked clients are frozen too: their load figure is
		// pre-crash history and their mux route must keep pointing at the
		// checkpointed thread until the reconnect handshake lands.
		if s.workers[c.thread].zombie.Load() || c.quarantined.Load() ||
			c.awaitingResume.Load() {
			continue
		}
		// A client with a forwarded datagram in flight is frozen: migrating
		// it now would re-route the datagram again and let it chase the
		// assignment across barriers indefinitely. Stamps far older than
		// any plausible delivery mean the datagram was dropped — expire
		// them so the client does not stay pinned forever. The clear must
		// CAS against the stamp we judged stale: in degraded mode a
		// straggling zombie can forward (and re-stamp) concurrently with
		// this sweep, and a plain store would erase its fresh freeze.
		if f := c.fwdFrame.Load(); f != 0 {
			if !fwdFreezeExpired(f, frame) {
				continue
			}
			if !c.fwdFrame.CompareAndSwap(f, 0) {
				continue // re-stamped under us: freshly frozen again
			}
		}
		c.thread = mg.To
		if s.mux != nil {
			s.mux.Route(c.addr, mg.To)
		}
		if r := s.cfg.Record; r != nil {
			r.RecordMigrate(c.id, mg.To)
		}
		applied++
	}
	// Decay the load window so the balancer tracks recent cost: halving
	// gives an exponential moving sum with a few-frame horizon. Decay by
	// atomic subtraction, not store: a straggling zombie — or, with
	// stealing, a thief finishing a stolen request — may Add concurrently,
	// and a load-store pair would silently drop its charge and starve the
	// client's migration priority.
	for _, c := range cs {
		v := c.loadNs.Load()
		c.loadNs.Add(v>>1 - v)
	}
	s.migrations.Add(int64(applied))
	return applied
}

// fwdFreezeFrames bounds the migration freeze of a client whose
// forwarded datagram never arrived (dropped on queue overflow): after
// this many frames the stamp is considered stale and expires.
const fwdFreezeFrames = 64

// fwdFreezeExpired reports whether a forward stamp is stale at the given
// rebalance frame (both in the stamp's frameNumber+1 coordinates). A
// stamp from the future — possible when a zombie straggler forwards just
// after endFrame advanced the counter past the sweep's snapshot — keeps
// the freeze: unsigned frame-f would otherwise wrap to a huge value and
// expire a freshly frozen client. Frame counters are uint64, so
// legitimate stamps never wrap within a server's lifetime.
func fwdFreezeExpired(stamp, frame uint64) bool {
	if stamp > frame {
		return false
	}
	return frame-stamp >= fwdFreezeFrames
}

func (s *Parallel) send(w *worker, to transport.Addr, msg any) {
	if to == nil {
		return // restore-parked client: no transport address yet
	}
	w.writer.Reset()
	if err := protocol.Encode(&w.writer, msg); err != nil {
		return
	}
	s.bytesOut.Add(int64(len(w.writer.Bytes())))
	_ = w.conn.Send(to, w.writer.Bytes())
}

// Breakdowns returns a copy of each thread's execution-time breakdown.
// Engine-level robustness counters (watchdog detections, mux queue
// drops) are folded into thread 0's copy so MergeThreads reports see
// them.
func (s *Parallel) Breakdowns() []metrics.Breakdown {
	out := make([]metrics.Breakdown, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.bd
	}
	out[0].WedgesDetected += s.wedges.Load()
	if s.mux != nil {
		out[0].MuxDrops += s.mux.Drops()
	}
	return out
}

// FrameLog returns the per-frame activity log.
func (s *Parallel) FrameLog() *metrics.FrameLog { return s.frameLog }

// Replies returns the number of replies sent — the numerator of the
// server response rate.
func (s *Parallel) Replies() int64 { return s.replies.Load() }

// Migrations returns how many client→thread migrations the balancer
// performed.
func (s *Parallel) Migrations() int64 { return s.migrations.Load() }

// Frames returns the number of completed server frames.
func (s *Parallel) Frames() uint64 { return s.fc.frameNumber() }

// NumClients returns the connected-client count.
func (s *Parallel) NumClients() int { return s.clients.count() }

// BytesIn returns total payload bytes received.
func (s *Parallel) BytesIn() int64 { return s.bytesIn.Load() }

// BytesOut returns total payload bytes sent — with delta compression this
// stays well within a 100 Mbit budget at maximum player counts, matching
// the paper's observation that server bandwidth is not a bottleneck.
func (s *Parallel) BytesOut() int64 { return s.bytesOut.Load() }

// Duration returns the run's wall-clock duration (zero until stopped).
func (s *Parallel) Duration() time.Duration {
	if s.stopped.IsZero() {
		return time.Since(s.started)
	}
	return s.stopped.Sub(s.started)
}
