package server

import (
	"sync"

	"qserve/internal/game"
)

// visBuilder coordinates the once-per-frame visibility-index build across
// the parallel engine's worker threads. Workers hit the reply phase at
// slightly different times; whichever arrives first starts the build and
// every arrival — initiator or not — helps encode state shards until none
// remain, then waits for the last finisher to publish the index. The
// expensive pass (wire-state encoding) is thereby partitioned across
// however many workers have reached the barrier, exactly the paper's
// prescription of splitting phase work among threads rather than electing
// one thread to do it while the rest idle.
//
// Correctness relies on two properties of the surrounding engine:
//
//   - Every worker that calls acquire for frame f has passed the
//     request->reply barrier for f, so all concurrent acquirers agree on
//     the frame number and the world state is frozen read-only.
//   - Under worldGuard degraded mode the reply phase may run with a
//     single worker holding the world exclusively; the protocol never
//     waits for absent peers (a lone acquirer claims and encodes every
//     shard itself), so it cannot deadlock when only one thread shows up.
type visBuilder struct {
	mu   sync.Mutex
	cond *sync.Cond

	index game.VisIndex

	// stamp is frame+1 of the build the fields below describe (0: none).
	stamp uint64
	// phase: 0 idle/collecting, 1 encoding, 2 published.
	phase int
	// next is the first unclaimed shard; done counts completed shards;
	// shards is the total for this build.
	next, done, shards int
}

func newVisBuilder() *visBuilder {
	vb := &visBuilder{}
	vb.cond = sync.NewCond(&vb.mu)
	return vb
}

// acquire returns the visibility index for the given frame, building it
// cooperatively if this is the frame's first acquisition. Safe to call
// from any number of workers concurrently; every caller blocks until the
// index is published and all callers return the same pointer.
//
//qvet:phase=reply
//qvet:noalloc
func (vb *visBuilder) acquire(frame uint64, w *game.World) *game.VisIndex {
	want := frame + 1
	vb.mu.Lock()
	defer vb.mu.Unlock()
	if vb.stamp != want {
		// First arrival for this frame: run the serial collect pass and
		// open shard claiming. Holding mu keeps late arrivals parked in
		// the branches below until the entry arrays exist.
		vb.stamp = want
		vb.phase = 1
		vb.index.Begin(w)
		vb.next, vb.done, vb.shards = 0, 0, vb.index.Shards()
	}
	for vb.phase == 1 {
		if vb.next < vb.shards {
			vb.encodeOne(vb.next)
			continue
		}
		if vb.done == vb.shards {
			// No shards at all (empty world): the claimer loop never ran,
			// publish directly.
			vb.phase = 2
			vb.cond.Broadcast()
			break
		}
		// All shards claimed but some still encoding on other workers:
		// wait for the last finisher to publish.
		vb.cond.Wait()
	}
	return &vb.index
}

// encodeOne claims and encodes shard s, dropping mu around the encode.
// Completion bookkeeping runs in a defer so that even a panicking encode
// (contained by the caller's reply-phase recovery) cannot strand peers
// waiting for a shard that will never finish.
//
//qvet:phase=reply
//qvet:noalloc
func (vb *visBuilder) encodeOne(s int) {
	vb.next++
	vb.mu.Unlock()
	defer func() {
		vb.mu.Lock()
		vb.done++
		if vb.done == vb.shards {
			vb.phase = 2
			vb.cond.Broadcast()
		}
	}()
	vb.index.EncodeShard(s)
}
