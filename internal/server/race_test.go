package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qserve/internal/locking"
	"qserve/internal/protocol"
	"qserve/internal/transport"
)

// TestParallelRaceStress exists to be run under -race: a 4-thread server
// with a bot population dense enough to force combat (corpse spawns,
// rail damage, rocket links), item pickups, and cross-plane relinks,
// while a churn goroutine connects, re-connects, moves, and disconnects
// extra sessions against every endpoint concurrently. It asserts only
// liveness — the detector does the real checking.
func TestParallelRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		threads = 4
		numBots = 20
		frames  = 120
	)
	rig := newRig(t, threads, numBots, locking.Optimized{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churn goroutine: duplicate connects (baseline-reset flag from a
	// foreign thread), moves with stale acks (gap invalidation), and
	// disconnects (full-bounds removal racing movers). All sends are
	// error-tolerant: this goroutine must not call t.Fatal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := rig.net.Listen("churn:0")
		if err != nil {
			return
		}
		defer conn.Close()
		var w protocol.Writer
		send := func(to string, msg any) {
			w.Reset()
			if protocol.Encode(&w, msg) == nil {
				_ = conn.Send(transport.MemAddr(to), w.Bytes())
			}
		}
		seq := uint32(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			target := fmt.Sprintf("srv:%d", i%threads)
			switch i % 5 {
			case 0, 1:
				send(target, &protocol.Connect{Name: "churn", ProtocolVer: protocol.Version})
			case 2, 3:
				seq++
				send(target, &protocol.Move{
					Seq: seq, Ack: 1, // ancient ack: exercises gap invalidation
					Cmd: protocol.MoveCmd{Forward: 320, Msec: 33, Buttons: protocol.BtnFire},
				})
			case 4:
				send(target, &protocol.Disconnect{})
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	rig.drive(frames, time.Millisecond)
	close(stop)
	wg.Wait()
	rig.engine.Stop()

	if rig.engine.Frames() == 0 {
		t.Fatal("no frames executed")
	}
	if rig.engine.Replies() == 0 {
		t.Fatal("no replies sent")
	}
}
