package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qserve/internal/balance"
	"qserve/internal/locking"
	"qserve/internal/protocol"
	"qserve/internal/transport"
)

// TestParallelRaceStress exists to be run under -race: a 4-thread server
// with a bot population dense enough to force combat (corpse spawns,
// rail damage, rocket links), item pickups, and cross-plane relinks,
// while a churn goroutine connects, re-connects, moves, and disconnects
// extra sessions against every endpoint concurrently. It asserts only
// liveness — the detector does the real checking.
func TestParallelRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		threads = 4
		numBots = 20
		frames  = 120
	)
	rig := newRig(t, threads, numBots, locking.Optimized{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churn goroutine: duplicate connects (baseline-reset flag from a
	// foreign thread), moves with stale acks (gap invalidation), and
	// disconnects (full-bounds removal racing movers). All sends are
	// error-tolerant: this goroutine must not call t.Fatal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := rig.net.Listen("churn:0")
		if err != nil {
			return
		}
		defer conn.Close()
		var w protocol.Writer
		send := func(to string, msg any) {
			w.Reset()
			if protocol.Encode(&w, msg) == nil {
				_ = conn.Send(transport.MemAddr(to), w.Bytes())
			}
		}
		seq := uint32(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			target := fmt.Sprintf("srv:%d", i%threads)
			switch i % 5 {
			case 0, 1:
				send(target, &protocol.Connect{Name: "churn", ProtocolVer: protocol.Version})
			case 2, 3:
				seq++
				send(target, &protocol.Move{
					Seq: seq, Ack: 1, // ancient ack: exercises gap invalidation
					Cmd: protocol.MoveCmd{Forward: 320, Msec: 33, Buttons: protocol.BtnFire},
				})
			case 4:
				send(target, &protocol.Disconnect{})
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	rig.drive(frames, time.Millisecond)
	close(stop)
	wg.Wait()
	rig.engine.Stop()

	if rig.engine.Frames() == 0 {
		t.Fatal("no frames executed")
	}
	if rig.engine.Replies() == 0 {
		t.Fatal("no replies sent")
	}
}

// TestMigrationRaceStress is TestParallelRaceStress with the load
// balancer forced to migrate on every frame: client→thread ownership,
// mux routing, reply baselines, and the forward path for in-flight
// datagrams all churn while connects, moves with stale acks, and
// disconnects hammer every endpoint. Run under -race; the test itself
// asserts only liveness and that migrations actually happened.
func TestMigrationRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		threads = 4
		numBots = 20
		frames  = 120
	)
	rig := newRigCfg(t, threads, numBots, locking.Optimized{}, func(cfg *Config) {
		cfg.Balance = balance.Policy{Enabled: true, EveryFrame: true, MaxMigrations: 8}
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := rig.net.Listen("churn-mig:0")
		if err != nil {
			return
		}
		defer conn.Close()
		var w protocol.Writer
		send := func(to string, msg any) {
			w.Reset()
			if protocol.Encode(&w, msg) == nil {
				_ = conn.Send(transport.MemAddr(to), w.Bytes())
			}
		}
		seq := uint32(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Spray every endpoint: after migrations most of these arrive at
			// a non-owning thread, exercising the mux forward path under
			// contention.
			target := fmt.Sprintf("srv:%d", i%threads)
			switch i % 5 {
			case 0:
				send(target, &protocol.Connect{Name: "churn-mig", ProtocolVer: protocol.Version})
			case 1, 2, 3:
				seq++
				send(target, &protocol.Move{
					Seq: seq, Ack: 1,
					Cmd: protocol.MoveCmd{Forward: 320, Msec: 33, Buttons: protocol.BtnFire},
				})
			case 4:
				send(target, &protocol.Disconnect{})
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	rig.drive(frames, time.Millisecond)
	close(stop)
	wg.Wait()
	rig.engine.Stop()

	if rig.engine.Frames() == 0 {
		t.Fatal("no frames executed")
	}
	if rig.engine.Replies() == 0 {
		t.Fatal("no replies sent")
	}
	par, ok := rig.engine.(*Parallel)
	if !ok {
		t.Fatal("rig did not build a parallel engine")
	}
	if par.Migrations() == 0 {
		t.Fatal("balancer never migrated a client during the stress run")
	}
	for i, b := range rig.bots {
		if b.Snapshots == 0 {
			t.Errorf("bot %d received no snapshots across migrations", i)
		}
	}
}
