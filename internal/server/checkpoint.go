package server

import (
	"time"

	"qserve/internal/checkpoint"
	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/metrics"
	"qserve/internal/transport"
)

// This file is the engine side of durable world state (DESIGN.md §12):
// the capture glue both live engines call at the reply barrier, and the
// restore seeding that parks a recovered session's clients for
// reconnection. The DES has its own copy of the capture call so it can
// charge the cost model.

// RestoreState seeds an engine from a recovered session (see
// replay.Recover). Config.World already holds the restored entity table;
// this carries everything that lives beside the world: the frame to
// resume numbering from, the join/client-id allocation counters, and the
// surviving clients to park for reconnection.
type RestoreState struct {
	// Frame is the last recovered frame; the engine resumes at Frame+1 so
	// checkpoint file names and replay logs stay monotonic across the
	// restart.
	Frame uint64
	// JoinIdx and NextClientID resume the assignment and id allocators.
	JoinIdx      int
	NextClientID uint16
	// Clients are the survivors: parked with no transport address until
	// their player reconnects, aged out by the stale reaper otherwise.
	Clients []checkpoint.ClientRec
	// RecoveryNs is the measured restore + redo-tail time, surfaced in
	// the metrics breakdown.
	RecoveryNs int64
}

// recorderItems reports the replay-log cut point for a checkpoint: how
// many items the session recorder has committed. Both replay.Recorder
// and replay.StreamRecorder implement it; a session without one (or with
// a custom Recorder that doesn't) checkpoints with cut 0, meaning
// "replay the whole log" — correct, just slower to recover.
type recorderItems interface{ Items() int }

// captureCheckpoint runs one Begin/AddClient/Commit cycle against the
// frame-stable world. Called by the frame master after every reply
// committed and after the frame's record taps ran, so the redo-log cut
// point (RecItems) names exactly the items whose effects the snapshot
// contains. buf is the caller's reused client-snapshot scratch; the
// return value is the (possibly grown) buffer to stash back.
//
// The walk is read-only over the entity table and allocation-free in
// steady state — the same discipline as the reply phase it runs behind.
//
//qvet:phase=reply
//qvet:noalloc
func captureCheckpoint(wr *checkpoint.Writer, world *game.World, clients *clientTable,
	buf []*client, rec Recorder, frame uint64, joinIdx int, bd *metrics.Breakdown) []*client {
	t0 := time.Now()
	items := 0
	if ri, ok := rec.(recorderItems); ok {
		items = ri.Items()
	}
	meta := checkpoint.Meta{
		Frame:        frame,
		RecItems:     uint64(items),
		JoinIdx:      joinIdx,
		NextClientID: clients.nextIDSnapshot(),
	}
	if !wr.Begin(world, meta) {
		bd.CheckpointSkips++
		return buf
	}
	buf = clients.snapshotInto(buf[:0])
	for _, c := range buf {
		wr.AddClient(checkpoint.ClientRec{
			ID:           c.id,
			EntID:        int32(c.entID),
			Thread:       uint8(c.thread),
			LastSeq:      c.lastSeq,
			RepliedFrame: c.repliedFrame.Load(),
			LoadNs:       c.loadNs.Load(),
			Name:         c.name,
			Addr:         c.addrStr,
			BaselineTag:  c.baseline.tag,
			Baseline:     c.baseline.states,
		})
	}
	st := wr.Commit()
	bd.Checkpoints++
	bd.CheckpointNs += time.Since(t0).Nanoseconds()
	bd.CheckpointBytes += int64(st.Bytes)
	if st.Full {
		bd.CheckpointFullBytes += int64(st.Bytes)
	} else {
		bd.CheckpointDeltaBytes += int64(st.Bytes)
	}
	return buf
}

// nextIDSnapshot reads the id allocator for the checkpoint meta record.
func (t *clientTable) nextIDSnapshot() uint16 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nextID
}

// parkRestoredClients installs a recovered session's survivors into the
// client table: each keeps its checkpointed identity (id, entity, seq
// state, thread assignment clamped to the restarted server's width) but
// has no transport address until its player reconnects. seqResync covers
// a peer whose own seq space moved while the server was down; the
// baseline starts invalid — the resumed client explicitly cannot rely on
// delta continuity across a restart. Returns the parked clients for
// engine-specific post-processing (mux routing).
func parkRestoredClients(clients *clientTable, rs *RestoreState, threads int, now time.Time) []*client {
	parked := make([]*client, 0, len(rs.Clients))
	for i := range rs.Clients {
		rec := &rs.Clients[i]
		c := &client{
			id:      rec.ID,
			entID:   entity.ID(rec.EntID),
			name:    rec.Name,
			addrStr: rec.Addr,
			thread:  int(rec.Thread),
		}
		if threads > 0 {
			c.thread %= threads
		} else {
			c.thread = 0
		}
		c.lastSeq = rec.LastSeq
		c.repliedFrame.Store(rec.RepliedFrame)
		c.loadNs.Store(rec.LoadNs)
		c.seqResync.Store(true)
		c.awaitingResume.Store(true)
		c.touch(now)
		if clients.addRestored(c) {
			parked = append(parked, c)
		}
	}
	clients.setNextID(rs.NextClientID)
	return parked
}

// resumeClient completes a parked client's reconnect handshake: rebind
// to the (possibly new) address, invalidate the baseline, and lift the
// parked state. The seqResync flag set at park time stays set until the
// owner accepts the first move.
func resumeClient(clients *clientTable, c *client, from transport.Addr, now time.Time) {
	clients.rebind(c, from)
	c.resetBaseline.Store(true)
	c.awaitingResume.Store(false)
	c.touch(now)
}
