package server

import (
	"testing"
	"time"

	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/protocol"
	"qserve/internal/transport"
	"qserve/internal/worldmap"
)

// rawClient speaks the protocol directly, for tests that need control
// below the bot layer.
type rawClient struct {
	conn transport.Conn
	srv  transport.Addr
	buf  []byte
	w    protocol.Writer
}

func newRawClient(t *testing.T, net *transport.Network, srv string) *rawClient {
	t.Helper()
	conn, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	return &rawClient{
		conn: conn,
		srv:  transport.MemAddr(srv),
		buf:  make([]byte, 8192),
	}
}

func (c *rawClient) send(t *testing.T, msg any) {
	t.Helper()
	c.w.Reset()
	if err := protocol.Encode(&c.w, msg); err != nil {
		t.Fatal(err)
	}
	if err := c.conn.Send(c.srv, c.w.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func (c *rawClient) recv(t *testing.T, timeout time.Duration) any {
	t.Helper()
	n, _, err := c.conn.Recv(c.buf, timeout)
	if err != nil {
		return nil
	}
	msg, err := protocol.Decode(c.buf[:n])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return msg
}

func startSeq(t *testing.T, clientTimeout time.Duration) (*Sequential, *transport.Network) {
	t.Helper()
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(transport.NetworkConfig{})
	conn, _ := net.Listen("srv:0")
	srv, err := NewSequential(Config{
		World: w, Conns: []transport.Conn{conn},
		SelectTimeout: 2 * time.Millisecond,
		ClientTimeout: clientTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, net
}

func TestPingPong(t *testing.T) {
	_, net := startSeq(t, 0)
	c := newRawClient(t, net, "srv:0")
	c.send(t, &protocol.Ping{Nonce: 0xFEEDFACE})
	msg := c.recv(t, 2*time.Second)
	pong, ok := msg.(*protocol.Pong)
	if !ok {
		t.Fatalf("got %T, want Pong", msg)
	}
	if pong.Nonce != 0xFEEDFACE {
		t.Errorf("nonce = %#x", pong.Nonce)
	}
}

func TestMoveFromUnknownClientIgnored(t *testing.T) {
	srv, net := startSeq(t, 0)
	c := newRawClient(t, net, "srv:0")
	c.send(t, &protocol.Move{Seq: 1, Cmd: protocol.MoveCmd{Msec: 30}})
	if msg := c.recv(t, 100*time.Millisecond); msg != nil {
		t.Errorf("unknown client's move answered with %T", msg)
	}
	if srv.NumClients() != 0 {
		t.Error("phantom client registered")
	}
}

func TestStaleClientEvicted(t *testing.T) {
	srv, net := startSeq(t, 150*time.Millisecond)
	c := newRawClient(t, net, "srv:0")
	c.send(t, &protocol.Connect{Name: "ghost", FrameMs: 33})
	if _, ok := c.recv(t, 2*time.Second).(*protocol.Accept); !ok {
		t.Fatal("no accept")
	}
	// Another client keeps the server's frame loop alive while the
	// first goes silent.
	keeper := newRawClient(t, net, "srv:0")
	keeper.send(t, &protocol.Connect{Name: "keeper", FrameMs: 33})
	if _, ok := keeper.recv(t, 2*time.Second).(*protocol.Accept); !ok {
		t.Fatal("keeper not accepted")
	}

	deadline := time.Now().Add(5 * time.Second)
	seq := uint32(0)
	for srv.NumClients() != 1 && time.Now().Before(deadline) {
		seq++
		keeper.send(t, &protocol.Move{Seq: seq, Cmd: protocol.MoveCmd{Msec: 33}})
		keeper.recv(t, 10*time.Millisecond)
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.NumClients(); got != 1 {
		t.Errorf("clients after timeout = %d, want 1 (ghost evicted)", got)
	}
}

// TestEventsReachSilentClients verifies the global-state-buffer protocol:
// broadcast events produced while a client is not requesting are queued
// in its per-player buffer and delivered with its next reply.
func TestEventsReachSilentClients(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, _ := game.NewWorld(game.Config{Map: m, Seed: 2})
	net := transport.NewNetwork(transport.NetworkConfig{})
	conn, _ := net.Listen("srv:0")
	srv, err := NewSequential(Config{
		World: w, Conns: []transport.Conn{conn},
		SelectTimeout: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	// Two clients; the first will idle, the second will fight.
	idle := newRawClient(t, net, "srv:0")
	idle.send(t, &protocol.Connect{Name: "idle", FrameMs: 33})
	acc, ok := idle.recv(t, 2*time.Second).(*protocol.Accept)
	if !ok {
		t.Fatal("idle not accepted")
	}
	_ = acc
	active := newRawClient(t, net, "srv:0")
	active.send(t, &protocol.Connect{Name: "active", FrameMs: 33})
	if _, ok := active.recv(t, 2*time.Second).(*protocol.Accept); !ok {
		t.Fatal("active not accepted")
	}

	// The active client fires rockets for a while (events are generated:
	// at least projectile spawns).
	for i := uint32(1); i <= 40; i++ {
		active.send(t, &protocol.Move{Seq: i, Cmd: protocol.MoveCmd{
			Msec: 33, Buttons: protocol.BtnFire,
		}})
		active.recv(t, 5*time.Millisecond)
		time.Sleep(3 * time.Millisecond)
	}

	// Now the idle client sends one move; its reply must carry queued
	// events from the frames it missed.
	idle.send(t, &protocol.Move{Seq: 1, Cmd: protocol.MoveCmd{Msec: 33}})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		msg := idle.recv(t, 100*time.Millisecond)
		if snap, ok := msg.(*protocol.Snapshot); ok {
			if len(snap.Events) == 0 {
				t.Fatal("idle client's snapshot carried no backlog events")
			}
			return
		}
	}
	t.Fatal("idle client never got a snapshot")
}

func TestParallelOptimizedStrategyEndToEnd(t *testing.T) {
	rig := newRig(t, 4, 16, locking.Optimized{})
	rig.drive(50, 3*time.Millisecond)
	rig.engine.Stop()
	if rig.engine.Replies() == 0 {
		t.Fatal("no replies under optimized locking")
	}
	var lockNs int64
	for _, bd := range rig.engine.Breakdowns() {
		lockNs += bd.LeafLockNs + bd.ParentLockNs
	}
	if lockNs == 0 {
		t.Error("optimized locking recorded no lock activity at all")
	}
}

// TestDeltaCompressionBoundsBandwidth drives a session and checks the
// paper's premise that "a single 100 MBit Ethernet, commodity network
// interface can support large numbers of players": per-client downstream
// bandwidth must be a few KB/s, not MB/s, thanks to interest filtering
// and delta compression.
func TestDeltaCompressionBoundsBandwidth(t *testing.T) {
	rig := newRig(t, 2, 12, locking.Optimized{})
	rig.drive(80, 2*time.Millisecond)
	rig.engine.Stop()

	replies := rig.engine.Replies()
	bytesOut := rig.engine.BytesOut()
	if replies == 0 || bytesOut == 0 {
		t.Fatalf("replies=%d bytes=%d", replies, bytesOut)
	}
	perReply := float64(bytesOut) / float64(replies)
	// A full uncompressed world state would be hundreds of entities x
	// ~10 bytes; steady-state deltas must average far below that.
	if perReply > 600 {
		t.Errorf("average reply size %.0f bytes — delta compression ineffective", perReply)
	}
	if rig.engine.BytesIn() == 0 {
		t.Error("no inbound bytes counted")
	}
	t.Logf("avg reply %.0f bytes, %d replies, in=%d out=%d",
		perReply, replies, rig.engine.BytesIn(), bytesOut)
}

func TestDuplicateAndReorderedMovesDropped(t *testing.T) {
	srv, net := startSeq(t, 0)
	c := newRawClient(t, net, "srv:0")
	c.send(t, &protocol.Connect{Name: "d", FrameMs: 33})
	if _, ok := c.recv(t, 2*time.Second).(*protocol.Accept); !ok {
		t.Fatal("no accept")
	}
	mv := func(seq uint32) {
		c.send(t, &protocol.Move{Seq: seq, Cmd: protocol.MoveCmd{Msec: 33, Forward: 320}})
		time.Sleep(5 * time.Millisecond)
	}
	mv(5)
	mv(6)
	mv(6) // duplicate
	mv(4) // reordered stale datagram
	mv(7)
	// Drain replies; the highest acked sequence must be 7 and no reply
	// may ack 4 after 6 was seen.
	deadline := time.Now().Add(2 * time.Second)
	var acks []uint32
	for time.Now().Before(deadline) {
		msg := c.recv(t, 50*time.Millisecond)
		if msg == nil {
			break
		}
		if snap, ok := msg.(*protocol.Snapshot); ok {
			acks = append(acks, snap.AckSeq)
		}
	}
	if len(acks) == 0 {
		t.Fatal("no snapshots")
	}
	seen6 := false
	for _, a := range acks {
		if a == 6 {
			seen6 = true
		}
		if seen6 && (a == 4 || a == 5) {
			t.Fatalf("stale sequence %d acked after 6: %v", a, acks)
		}
	}
	if last := acks[len(acks)-1]; last != 7 {
		t.Errorf("final ack = %d, want 7 (acks %v)", last, acks)
	}
	_ = srv
}

func TestSeqOlderWraparound(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{5, 5, true},
		{4, 5, true},
		{6, 5, false},
		{0xFFFFFFFF, 2, true}, // wrapped: 2 is newer
		{2, 0xFFFFFFFF, false},
	}
	for _, c := range cases {
		if got := seqOlder(c.a, c.b); got != c.want {
			t.Errorf("seqOlder(%d,%d) = %v", c.a, c.b, got)
		}
	}
}
