package server

import (
	"log"
	"sync"
	"sync/atomic"
	"time"

	"qserve/internal/game"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/transport"
)

// Sequential is the unmodified single-threaded server of Figure 1: spin
// in select, then per frame run world physics, drain and execute the
// request queue, and reply to every requester. It performs no locking at
// all — the baseline the parallel engine's single-thread overhead is
// measured against (§4.1).
type Sequential struct {
	cfg     Config
	world   *game.World
	conn    transport.Conn
	clients *clientTable

	bd          metrics.Breakdown
	frameEvents []protocol.GameEvent
	frames      uint64
	replies     atomic.Int64
	joinIdx     int
	bytesIn     atomic.Int64
	bytesOut    atomic.Int64

	writer  protocol.Writer
	recvBuf []byte
	stash   []byte

	// Reply-phase scratch, reused across clients and frames (see
	// reply.go for the ownership rules). vis is the per-frame visibility
	// index, rebuilt serially at the top of each reply phase.
	reply      ReplyScratch
	backlogBuf []protocol.GameEvent
	vis        game.VisIndex
	// clientBuf is the reused snapshot scratch for per-frame client
	// sweeps (sendReplies, event flush); single-threaded, never nested.
	clientBuf []*client
	// scratch, in stepped mode with Config.Shared set, is the pooled
	// buffer set currently backing the fields above; nil while idle.
	scratch *frameScratch

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  time.Time
	stopped  time.Time
	last     time.Time

	// Failure-model state: overload ladder, shutdown drain flag, the
	// client being served (for panic containment), and fault-eviction
	// count. Single-threaded, so serving needs no atomicity.
	shed           shedController
	draining       atomic.Bool
	serving        *client
	faultEvictions atomic.Int64
	shedClients    []*client
	shedDists      []float64
}

// NewSequential builds the sequential engine over the first endpoint.
func NewSequential(cfg Config) (*Sequential, error) {
	if err := cfg.fill(false); err != nil {
		return nil, err
	}
	s := &Sequential{
		cfg:     cfg,
		world:   cfg.World,
		conn:    cfg.Conns[0],
		clients: newClientTable(cfg.MaxClients),
		stop:    make(chan struct{}),
	}
	if cfg.Shared == nil {
		// Classic mode owns its buffers for life; stepped mode with a
		// shared pool borrows them per activity burst (step.go).
		s.recvBuf = make([]byte, transport.MaxDatagram)
	}
	s.shed.init(&s.cfg)
	if rs := cfg.Restore; rs != nil {
		// Resume a recovered session: frame numbering continues past the
		// recovered frame (keeping checkpoint names monotonic), allocation
		// counters pick up where the crashed server left off, and the
		// survivors are parked for reconnection.
		s.frames = rs.Frame + 1
		s.joinIdx = rs.JoinIdx
		parkRestoredClients(s.clients, rs, 1, time.Now())
		s.bd.RecoveryNs = rs.RecoveryNs
	}
	return s, nil
}

// Start launches the server loop goroutine.
func (s *Sequential) Start() {
	s.started = time.Now()
	s.last = s.cfg.timeNow()
	if s.cfg.Shared != nil && s.scratch == nil {
		// The threaded loop blocks in Recv and can't park buffers at idle
		// points; borrow a scratch set once and keep it for the run.
		s.attachScratch(s.cfg.Shared.get())
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.loop()
	}()
}

// Stop shuts the loop down after the current frame. Stop is idempotent.
// Breakdowns must only be read after Stop returns.
func (s *Sequential) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		s.stopped = time.Now()
	})
}

func (s *Sequential) stopping() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// Shutdown performs a graceful stop: new connection attempts are refused
// immediately, the frame in progress completes, and every connected
// client is sent a final Disconnected notice before being dropped.
func (s *Sequential) Shutdown() {
	s.draining.Store(true)
	s.Stop()
	var wr protocol.Writer
	s.clients.forEach(func(c *client) {
		if c.addr != nil {
			wr.Reset()
			if protocol.Encode(&wr, &protocol.Disconnected{Reason: "server shutting down"}) == nil {
				s.bytesOut.Add(int64(len(wr.Bytes())))
				_ = s.conn.Send(c.addr, wr.Bytes())
			}
		}
		s.clients.remove(c)
	})
}

// SetFrameBudget adjusts the overload ladder's frame budget at runtime
// (0 disables shedding).
func (s *Sequential) SetFrameBudget(d time.Duration) { s.shed.setBudget(d) }

// ShedLevel returns the overload ladder's current level.
func (s *Sequential) ShedLevel() int { return int(s.shed.current()) }

// FaultEvictions returns how many clients were evicted by panic
// containment.
func (s *Sequential) FaultEvictions() int64 { return s.faultEvictions.Load() }

func (s *Sequential) loop() {
	for {
		// S: select.
		t0 := time.Now()
		n, from, err := s.conn.Recv(s.recvBuf, s.cfg.SelectTimeout)
		s.bd.Charge(metrics.CompIdle, time.Since(t0).Nanoseconds())
		if s.stopping() {
			return
		}
		if err == transport.ErrTimeout {
			continue
		}
		if err != nil {
			return
		}
		s.bytesIn.Add(int64(n))
		s.stash = append(s.stash[:0], s.recvBuf[:n]...)

		// P: world physics, rate-limited like QuakeWorld's sv_mintic.
		// The dt comes from the frame-logic clock (Config.Clock when
		// replaying) — the only wall-clock input world evolution sees.
		t0 = time.Now()
		nowv := s.cfg.timeNow()
		if dt := nowv.Sub(s.last); dt >= minWorldTick {
			res := s.world.RunWorldFrame(dt.Seconds())
			s.last = nowv
			if r := s.cfg.Record; r != nil {
				r.RecordTick(dt.Nanoseconds())
			}
			s.frameEvents = append(s.frameEvents, wireEvents(res.Events)...)
		}
		s.bd.Charge(metrics.CompWorld, time.Since(t0).Nanoseconds())

		frameT0 := time.Now()

		// Rx/E: receive and process requests until the queue is empty.
		s.safeProcessPacket(s.stash, from)
		for {
			t0 = time.Now()
			n, from, err = s.conn.Recv(s.recvBuf, 0)
			s.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
			if err != nil {
				break
			}
			s.bytesIn.Add(int64(n))
			s.safeProcessPacket(s.recvBuf[:n], from)
		}

		// T/Tx: form and send replies.
		t0 = time.Now()
		s.safeSendReplies()
		s.bd.Charge(metrics.CompReply, time.Since(t0).Nanoseconds())

		s.endFrame(frameT0)
	}
}

// safeProcessPacket contains a panic in request handling to the client
// that caused it (see the parallel engine's identical policy): the
// client is evicted and the loop continues — a malformed or adversarial
// request must never take the server down.
func (s *Sequential) safeProcessPacket(data []byte, from transport.Addr) {
	defer s.recoverLoop("request")
	s.processPacket(data, from)
}

func (s *Sequential) safeSendReplies() {
	defer s.recoverLoop("reply")
	s.sendReplies()
}

func (s *Sequential) recoverLoop(phase string) {
	r := recover()
	if r == nil {
		return
	}
	s.bd.PanicsRecovered++
	victim := s.serving
	s.serving = nil
	if victim != nil {
		s.clients.remove(victim)
		s.world.RemovePlayer(victim.entID)
		if rec := s.cfg.Record; rec != nil {
			rec.RecordDisconnect(victim.id, DiscReasonEvict)
		}
		s.send(victim.addr, &protocol.Disconnected{Reason: "server error handling your request"})
		s.faultEvictions.Add(1)
	}
	log.Printf("server: recovered panic in %s phase: %v (evicted client: %v)", phase, r, victim != nil)
}

func (s *Sequential) processPacket(data []byte, from transport.Addr) {
	t0 := time.Now()
	msg, err := protocol.Decode(data)
	s.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *protocol.Move:
		c := s.clients.lookup(from)
		if c == nil {
			return
		}
		if m.Seq != 0 && (seqOlder(m.Seq, c.lastSeq) || seqWild(m.Seq, c.lastSeq)) &&
			!c.seqResync.Load() {
			// Duplicate, reordered, or corrupted-sequence datagram. A
			// client resuming across a server restart (seqResync) is exempt
			// once: its peer's seq space may have restarted below — or run
			// ahead of — the recovered counter.
			return
		}
		if c.addr == nil {
			// Parked survivor whose first datagram arrived from its old
			// address before any Connect: adopt the address (it matched the
			// byAddr index to get here) and lift the parked state.
			c.addr = from
			c.awaitingResume.Store(false)
		}
		if m.Ack != 0 && c.repliedFrame.Load()-m.Ack > baselineGapFrames {
			c.baseline.Invalidate() // delta continuity lost; resend full state
		}
		ent := s.world.Ents.Get(c.entID)
		if ent == nil || !ent.Active {
			return
		}
		s.serving = c
		if s.cfg.Hooks.PreExec != nil {
			s.cfg.Hooks.PreExec(0, c.id)
		}
		t0 = time.Now()
		// No locking at all: nil Locker short-circuits every lock path.
		res := s.world.ExecuteMove(ent, &m.Cmd, &game.LockContext{})
		s.bd.Charge(metrics.CompExec, time.Since(t0).Nanoseconds())
		s.serving = nil
		s.frameEvents = append(s.frameEvents, wireEvents(res.Events)...)
		c.replyPending = true
		c.lastSeq = m.Seq
		c.seqResync.Store(false)
		c.touch(time.Now())
		if r := s.cfg.Record; r != nil {
			r.RecordMove(c.id, m.Seq, &m.Cmd)
		}
	case *protocol.Connect:
		s.handleConnect(m, from)
	case *protocol.Disconnect:
		if c := s.clients.lookup(from); c != nil {
			s.clients.remove(c)
			s.world.RemovePlayer(c.entID)
			if r := s.cfg.Record; r != nil {
				r.RecordDisconnect(c.id, DiscReasonClient)
			}
			s.send(from, &protocol.Disconnected{Reason: "bye"})
		}
	case *protocol.Ping:
		s.send(from, &protocol.Pong{Nonce: m.Nonce})
	}
}

func (s *Sequential) handleConnect(m *protocol.Connect, from transport.Addr) {
	if s.draining.Load() {
		s.send(from, &protocol.Reject{Reason: "server shutting down"})
		return
	}
	if s.shed.current() >= shedRejectNew {
		s.bd.BusyRejects++
		s.send(from, &protocol.Reject{Reason: "busy"})
		return
	}
	if existing := s.clients.lookup(from); existing != nil {
		if existing.awaitingResume.Load() {
			// Survivor of a restart reconnecting from its old address:
			// resume the parked identity instead of admitting a new player.
			resumeClient(s.clients, existing, from, time.Now())
		}
		// Reconnect: the client has no memory of the baseline's states.
		existing.baseline.Invalidate()
		s.send(from, &protocol.Accept{
			ClientID: existing.id,
			EntityID: int32(existing.entID),
			MapName:  s.world.Map.Name,
			Addr:     s.conn.LocalAddr().String(),
		})
		return
	}
	if resume := s.clients.lookupResume(m.Name); resume != nil {
		// Survivor reconnecting from a new address (NAT rebind across the
		// restart): match by name, rebind in place.
		resumeClient(s.clients, resume, from, time.Now())
		resume.baseline.Invalidate()
		s.send(from, &protocol.Accept{
			ClientID: resume.id,
			EntityID: int32(resume.entID),
			MapName:  s.world.Map.Name,
			Addr:     s.conn.LocalAddr().String(),
		})
		return
	}
	if s.clients.count() >= s.cfg.MaxClients {
		s.send(from, &protocol.Reject{Reason: "server full"})
		return
	}
	ent, err := s.world.SpawnPlayer()
	if err != nil {
		s.send(from, &protocol.Reject{Reason: "no entity slots"})
		return
	}
	c := &client{
		entID:  ent.ID,
		name:   m.Name,
		addr:   from,
		thread: 0,
	}
	c.touch(time.Now())
	s.joinIdx++
	if !s.clients.add(c) {
		s.world.RemovePlayer(ent.ID)
		s.send(from, &protocol.Reject{Reason: "server full"})
		return
	}
	if r := s.cfg.Record; r != nil {
		r.RecordConnect(c.id, int32(ent.ID), 0, m.Name)
	}
	s.send(from, &protocol.Accept{
		ClientID: c.id,
		EntityID: int32(ent.ID),
		MapName:  s.world.Map.Name,
		Addr:     s.conn.LocalAddr().String(),
	})
}

// sendReplies forms and transmits the frame's snapshots. It is the
// single-threaded analogue of the parallel engine's reply phase and is
// held to the same static discipline: read-only over the entity table,
// allocation-free in steady state.
//
//qvet:phase=reply
//qvet:noalloc
func (s *Sequential) sendReplies() {
	// Build the frame's visibility index once; every client's snapshot
	// below is a merge over it instead of a fresh table scan.
	buildT0 := time.Now()
	s.vis.Build(s.world)
	s.bd.SnapBuildNs += time.Since(buildT0).Nanoseconds()

	frame := uint32(s.frames)
	serverTime := uint32(s.world.Time * 1000)
	level := s.shed.current()
	entityLimit := 0
	if level >= shedEntityCap {
		entityLimit = s.cfg.OverloadEntityCap
	}
	s.clientBuf = s.clients.forEachBuf(s.clientBuf, func(c *client) {
		if !c.replyPending {
			return
		}
		if level >= shedFarHalf && c.shedFar.Load() && frame&1 == 1 {
			// Overload ladder level 1: far clients get every other
			// snapshot; replyPending stays set so the reply goes out next
			// frame.
			s.bd.RepliesShed++
			return
		}
		c.replyPending = false
		ent := s.world.Ents.Get(c.entID)
		if ent == nil || !ent.Active {
			return
		}
		if c.resetBaseline.Swap(false) {
			c.baseline.Invalidate()
		}
		s.serving = c
		s.backlogBuf = c.drainBacklog(s.backlogBuf[:0])
		data, st := s.reply.FormSnapshot(s.world, &s.vis, ent, &c.baseline,
			frame, c.lastSeq, serverTime, s.backlogBuf, s.frameEvents, entityLimit)
		s.serving = nil
		s.bd.SnapMergeNs += st.SnapNs
		if data == nil {
			return
		}
		s.bytesOut.Add(int64(len(data)))
		_ = s.conn.Send(c.addr, data)
		s.bd.ReplyBytes += int64(st.Bytes)
		s.bd.ReplyDatagrams++
		s.bd.ReplyAllocs += int64(st.Allocs)
		s.bd.EntitiesCapped += int64(st.Capped)
		c.markReplied(frame)
		s.replies.Add(1)
	})
}

func (s *Sequential) endFrame(frameT0 time.Time) {
	frame := uint32(s.frames)
	events := s.frameEvents
	// Truncate in place: events is consumed below, before the next frame
	// appends to the buffer again.
	s.frameEvents = s.frameEvents[:0]
	now := time.Now()
	var stale []*client
	s.clientBuf = s.clients.forEachBuf(s.clientBuf, func(c *client) {
		if c.repliedFrame.Load() != frame {
			c.queueEvents(events)
		}
		if now.UnixNano()-c.lastActive.Load() > int64(s.cfg.ClientTimeout) {
			stale = append(stale, c)
		}
	})
	for _, c := range stale {
		s.clients.remove(c)
		s.world.RemovePlayer(c.entID)
		if r := s.cfg.Record; r != nil {
			r.RecordDisconnect(c.id, DiscReasonTimeout)
		}
	}
	if level := s.shed.observe(time.Since(frameT0).Nanoseconds()); level >= shedFarHalf {
		s.shedClients, s.shedDists = markShedFar(s.world, s.clients, s.shedClients, s.shedDists)
	}
	if r := s.cfg.Record; r != nil {
		r.RecordShed(int(s.shed.current()))
		r.RecordFrameEnd(s.frames)
	}
	if wr := s.cfg.Checkpoint; wr != nil && wr.Due(s.frames) {
		// Reply barrier: every reply for this frame has been sent and no
		// request is in flight, so the world is frame-stable. Runs after
		// the record taps so the checkpoint's redo-log cut covers them.
		s.clientBuf = captureCheckpoint(wr, s.world, s.clients, s.clientBuf,
			s.cfg.Record, s.frames, s.joinIdx, &s.bd)
	}
	s.frames++
}

func (s *Sequential) send(to transport.Addr, msg any) {
	if to == nil {
		return // parked restored client: no peer to notify yet
	}
	s.writer.Reset()
	if err := protocol.Encode(&s.writer, msg); err != nil {
		return
	}
	s.bytesOut.Add(int64(len(s.writer.Bytes())))
	_ = s.conn.Send(to, s.writer.Bytes())
}

// Breakdowns returns the single thread's execution-time breakdown.
func (s *Sequential) Breakdowns() []metrics.Breakdown {
	return []metrics.Breakdown{s.bd}
}

// Replies returns the number of replies sent.
func (s *Sequential) Replies() int64 { return s.replies.Load() }

// Frames returns the number of completed frames.
func (s *Sequential) Frames() uint64 { return s.frames }

// NumClients returns the connected-client count.
func (s *Sequential) NumClients() int { return s.clients.count() }

// BytesIn returns total payload bytes received.
func (s *Sequential) BytesIn() int64 { return s.bytesIn.Load() }

// BytesOut returns total payload bytes sent.
func (s *Sequential) BytesOut() int64 { return s.bytesOut.Load() }

// Duration returns the run's wall-clock duration.
func (s *Sequential) Duration() time.Duration {
	if s.stopped.IsZero() {
		return time.Since(s.started)
	}
	return s.stopped.Sub(s.started)
}

// Engine is the interface both live servers satisfy, letting tests,
// examples, and the harness treat them uniformly.
type Engine interface {
	Start()
	Stop()
	Breakdowns() []metrics.Breakdown
	Replies() int64
	Frames() uint64
	NumClients() int
	Duration() time.Duration
	BytesIn() int64
	BytesOut() int64
}

var (
	_ Engine = (*Sequential)(nil)
	_ Engine = (*Parallel)(nil)
)
