package server

import (
	"sync"
	"sync/atomic"
	"time"

	"qserve/internal/game"
	"qserve/internal/metrics"
	"qserve/internal/protocol"
	"qserve/internal/transport"
)

// Sequential is the unmodified single-threaded server of Figure 1: spin
// in select, then per frame run world physics, drain and execute the
// request queue, and reply to every requester. It performs no locking at
// all — the baseline the parallel engine's single-thread overhead is
// measured against (§4.1).
type Sequential struct {
	cfg     Config
	world   *game.World
	conn    transport.Conn
	clients *clientTable

	bd          metrics.Breakdown
	frameEvents []protocol.GameEvent
	frames      uint64
	replies     atomic.Int64
	joinIdx     int
	bytesIn     atomic.Int64
	bytesOut    atomic.Int64

	writer  protocol.Writer
	recvBuf []byte
	stash   []byte

	// Reply-phase scratch, reused across clients and frames (see
	// reply.go for the ownership rules).
	reply      ReplyScratch
	backlogBuf []protocol.GameEvent

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  time.Time
	stopped  time.Time
	last     time.Time
}

// NewSequential builds the sequential engine over the first endpoint.
func NewSequential(cfg Config) (*Sequential, error) {
	if err := cfg.fill(false); err != nil {
		return nil, err
	}
	return &Sequential{
		cfg:     cfg,
		world:   cfg.World,
		conn:    cfg.Conns[0],
		clients: newClientTable(cfg.MaxClients),
		recvBuf: make([]byte, transport.MaxDatagram),
		stop:    make(chan struct{}),
	}, nil
}

// Start launches the server loop goroutine.
func (s *Sequential) Start() {
	s.started = time.Now()
	s.last = s.started
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.loop()
	}()
}

// Stop shuts the loop down after the current frame. Stop is idempotent.
// Breakdowns must only be read after Stop returns.
func (s *Sequential) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		s.stopped = time.Now()
	})
}

func (s *Sequential) stopping() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

func (s *Sequential) loop() {
	for {
		// S: select.
		t0 := time.Now()
		n, from, err := s.conn.Recv(s.recvBuf, s.cfg.SelectTimeout)
		s.bd.Charge(metrics.CompIdle, time.Since(t0).Nanoseconds())
		if s.stopping() {
			return
		}
		if err == transport.ErrTimeout {
			continue
		}
		if err != nil {
			return
		}
		s.bytesIn.Add(int64(n))
		s.stash = append(s.stash[:0], s.recvBuf[:n]...)

		// P: world physics, rate-limited like QuakeWorld's sv_mintic.
		t0 = time.Now()
		if dt := t0.Sub(s.last); dt >= minWorldTick {
			res := s.world.RunWorldFrame(dt.Seconds())
			s.last = t0
			s.frameEvents = append(s.frameEvents, wireEvents(res.Events)...)
		}
		s.bd.Charge(metrics.CompWorld, time.Since(t0).Nanoseconds())

		// Rx/E: receive and process requests until the queue is empty.
		s.processPacket(s.stash, from)
		for {
			t0 = time.Now()
			n, from, err = s.conn.Recv(s.recvBuf, 0)
			s.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
			if err != nil {
				break
			}
			s.bytesIn.Add(int64(n))
			s.processPacket(s.recvBuf[:n], from)
		}

		// T/Tx: form and send replies.
		t0 = time.Now()
		s.sendReplies()
		s.bd.Charge(metrics.CompReply, time.Since(t0).Nanoseconds())

		s.endFrame()
	}
}

func (s *Sequential) processPacket(data []byte, from transport.Addr) {
	t0 := time.Now()
	msg, err := protocol.Decode(data)
	s.bd.Charge(metrics.CompRecv, time.Since(t0).Nanoseconds())
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *protocol.Move:
		c := s.clients.lookup(from)
		if c == nil {
			return
		}
		if m.Seq != 0 && seqOlder(m.Seq, c.lastSeq) {
			return // duplicate or reordered datagram
		}
		if m.Ack != 0 && c.repliedFrame-m.Ack > baselineGapFrames {
			c.baseline.Invalidate() // delta continuity lost; resend full state
		}
		ent := s.world.Ents.Get(c.entID)
		if ent == nil || !ent.Active {
			return
		}
		t0 = time.Now()
		// No locking at all: nil Locker short-circuits every lock path.
		res := s.world.ExecuteMove(ent, &m.Cmd, &game.LockContext{})
		s.bd.Charge(metrics.CompExec, time.Since(t0).Nanoseconds())
		s.frameEvents = append(s.frameEvents, wireEvents(res.Events)...)
		c.replyPending = true
		c.lastSeq = m.Seq
		c.lastActive = time.Now()
	case *protocol.Connect:
		s.handleConnect(m, from)
	case *protocol.Disconnect:
		if c := s.clients.lookup(from); c != nil {
			s.clients.remove(c)
			s.world.RemovePlayer(c.entID)
			s.send(from, &protocol.Disconnected{Reason: "bye"})
		}
	case *protocol.Ping:
		s.send(from, &protocol.Pong{Nonce: m.Nonce})
	}
}

func (s *Sequential) handleConnect(m *protocol.Connect, from transport.Addr) {
	if existing := s.clients.lookup(from); existing != nil {
		// Reconnect: the client has no memory of the baseline's states.
		existing.baseline.Invalidate()
		s.send(from, &protocol.Accept{
			ClientID: existing.id,
			EntityID: int32(existing.entID),
			MapName:  s.world.Map.Name,
			Addr:     s.conn.LocalAddr().String(),
		})
		return
	}
	if s.clients.count() >= s.cfg.MaxClients {
		s.send(from, &protocol.Reject{Reason: "server full"})
		return
	}
	ent, err := s.world.SpawnPlayer()
	if err != nil {
		s.send(from, &protocol.Reject{Reason: "no entity slots"})
		return
	}
	c := &client{
		entID:      ent.ID,
		name:       m.Name,
		addr:       from,
		thread:     0,
		lastActive: time.Now(),
	}
	s.joinIdx++
	if !s.clients.add(c) {
		s.world.RemovePlayer(ent.ID)
		s.send(from, &protocol.Reject{Reason: "server full"})
		return
	}
	s.send(from, &protocol.Accept{
		ClientID: c.id,
		EntityID: int32(ent.ID),
		MapName:  s.world.Map.Name,
		Addr:     s.conn.LocalAddr().String(),
	})
}

func (s *Sequential) sendReplies() {
	frame := uint32(s.frames)
	serverTime := uint32(s.world.Time * 1000)
	s.clients.forEach(func(c *client) {
		if !c.replyPending {
			return
		}
		c.replyPending = false
		ent := s.world.Ents.Get(c.entID)
		if ent == nil || !ent.Active {
			return
		}
		if c.resetBaseline.Swap(false) {
			c.baseline.Invalidate()
		}
		s.backlogBuf = c.drainBacklog(s.backlogBuf[:0])
		data, st := s.reply.FormSnapshot(s.world, ent, &c.baseline,
			frame, c.lastSeq, serverTime, s.backlogBuf, s.frameEvents)
		if data == nil {
			return
		}
		s.bytesOut.Add(int64(len(data)))
		_ = s.conn.Send(c.addr, data)
		s.bd.ReplyBytes += int64(st.Bytes)
		s.bd.ReplyDatagrams++
		s.bd.ReplyAllocs += int64(st.Allocs)
		c.markReplied(frame)
		s.replies.Add(1)
	})
}

func (s *Sequential) endFrame() {
	frame := uint32(s.frames)
	events := s.frameEvents
	// Truncate in place: events is consumed below, before the next frame
	// appends to the buffer again.
	s.frameEvents = s.frameEvents[:0]
	now := time.Now()
	var stale []*client
	s.clients.forEach(func(c *client) {
		if c.repliedFrame != frame {
			c.queueEvents(events)
		}
		if now.Sub(c.lastActive) > s.cfg.ClientTimeout {
			stale = append(stale, c)
		}
	})
	for _, c := range stale {
		s.clients.remove(c)
		s.world.RemovePlayer(c.entID)
	}
	s.frames++
}

func (s *Sequential) send(to transport.Addr, msg any) {
	s.writer.Reset()
	if err := protocol.Encode(&s.writer, msg); err != nil {
		return
	}
	s.bytesOut.Add(int64(len(s.writer.Bytes())))
	_ = s.conn.Send(to, s.writer.Bytes())
}

// Breakdowns returns the single thread's execution-time breakdown.
func (s *Sequential) Breakdowns() []metrics.Breakdown {
	return []metrics.Breakdown{s.bd}
}

// Replies returns the number of replies sent.
func (s *Sequential) Replies() int64 { return s.replies.Load() }

// Frames returns the number of completed frames.
func (s *Sequential) Frames() uint64 { return s.frames }

// NumClients returns the connected-client count.
func (s *Sequential) NumClients() int { return s.clients.count() }

// BytesIn returns total payload bytes received.
func (s *Sequential) BytesIn() int64 { return s.bytesIn.Load() }

// BytesOut returns total payload bytes sent.
func (s *Sequential) BytesOut() int64 { return s.bytesOut.Load() }

// Duration returns the run's wall-clock duration.
func (s *Sequential) Duration() time.Duration {
	if s.stopped.IsZero() {
		return time.Since(s.started)
	}
	return s.stopped.Sub(s.started)
}

// Engine is the interface both live servers satisfy, letting tests,
// examples, and the harness treat them uniformly.
type Engine interface {
	Start()
	Stop()
	Breakdowns() []metrics.Breakdown
	Replies() int64
	Frames() uint64
	NumClients() int
	Duration() time.Duration
	BytesIn() int64
	BytesOut() int64
}

var (
	_ Engine = (*Sequential)(nil)
	_ Engine = (*Parallel)(nil)
)
