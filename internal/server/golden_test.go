package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"qserve/internal/entity"
	"qserve/internal/game"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// TestGoldenReplyStream is the byte-identity proof for the reply
// pipeline: a seeded 16-player world driven for ~120 frames, with every
// client's snapshot formed three ways — the allocating reference path,
// the pooled naive path, and the pooled path over the frame's shared
// visibility index — must produce identical datagrams frame by frame,
// including frames with combat events, backlogs, pickups, and deaths.
func TestGoldenReplyStream(t *testing.T) {
	const (
		numPlayers = 16
		numFrames  = 120
	)
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	players := make([]*entity.Entity, numPlayers)
	for i := range players {
		players[i], err = w.SpawnPlayer()
		if err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(99))
	var scratch, idxScratch ReplyScratch
	var vis game.VisIndex
	pooled := make([]Baseline, numPlayers)
	indexed := make([]Baseline, numPlayers)
	reference := make([][]protocol.EntityState, numPlayers)
	refTags := make([]uint32, numPlayers)

	var backlog []protocol.GameEvent
	for frame := uint32(1); frame <= numFrames; frame++ {
		// Drive the world deterministically: every player moves and
		// sometimes fires, producing pickups, kills, and corpses.
		var frameEvents []protocol.GameEvent
		for i, e := range players {
			cmd := protocol.MoveCmd{
				Forward: 320,
				Yaw:     protocol.AngleToWire(float64((int(frame)*23 + i*91) % 360)),
				Msec:    33,
			}
			if rng.Float64() < 0.2 {
				cmd.Buttons |= protocol.BtnFire
			}
			if rng.Float64() < 0.1 {
				cmd.Impulse = uint8(1 + rng.Intn(2))
			}
			res := w.ExecuteMove(e, &cmd, &game.LockContext{})
			for _, ev := range res.Events {
				frameEvents = append(frameEvents, ev.WireEvent())
			}
		}
		wres := w.RunWorldFrame(0.033)
		for _, ev := range wres.Events {
			frameEvents = append(frameEvents, ev.WireEvent())
		}
		// Alternate frames carry a synthetic backlog, exercising the
		// backlog-then-frame-events ordering.
		if frame%3 == 0 {
			backlog = append(backlog[:0], protocol.GameEvent{Kind: 9, Actor: uint16(frame)})
		} else {
			backlog = backlog[:0]
		}

		serverTime := uint32(w.Time * 1000)
		vis.Build(w)
		for i, e := range players {
			if !e.Active {
				continue
			}
			ackSeq := frame*100 + uint32(i)
			want, newBase, newTag := ReferenceFormSnapshot(w, e, reference[i], refTags[i],
				frame, ackSeq, serverTime, backlog, frameEvents)
			reference[i], refTags[i] = newBase, newTag
			got, st := scratch.FormSnapshot(w, nil, e, &pooled[i],
				frame, ackSeq, serverTime, backlog, frameEvents, 0)
			if !bytes.Equal(want, got) {
				t.Fatalf("frame %d player %d: pooled datagram differs from reference\nreference: %x\npooled:    %x",
					frame, i, want, got)
			}
			if st.Bytes != len(got) {
				t.Errorf("frame %d player %d: ReplyStats.Bytes=%d, datagram is %d bytes",
					frame, i, st.Bytes, len(got))
			}
			gotIdx, stIdx := idxScratch.FormSnapshot(w, &vis, e, &indexed[i],
				frame, ackSeq, serverTime, backlog, frameEvents, 0)
			if !bytes.Equal(want, gotIdx) {
				t.Fatalf("frame %d player %d: indexed datagram differs from reference\nreference: %x\nindexed:   %x",
					frame, i, want, gotIdx)
			}
			if st.Work.Visible != stIdx.Work.Visible {
				t.Errorf("frame %d player %d: indexed Visible=%d, naive Visible=%d",
					frame, i, stIdx.Work.Visible, st.Work.Visible)
			}
		}
	}

	// Invalidation mid-stream must resend full state and stay identical
	// to a reference client whose baseline is likewise cleared.
	pooled[0].Invalidate()
	indexed[0].Invalidate()
	reference[0] = nil
	want, _, _ := ReferenceFormSnapshot(w, players[0], reference[0], 0, 999, 1, 0, nil, nil)
	got, _ := scratch.FormSnapshot(w, nil, players[0], &pooled[0], 999, 1, 0, nil, nil, 0)
	if !bytes.Equal(want, got) {
		t.Fatalf("post-invalidation datagram differs from reference")
	}
	gotIdx, _ := idxScratch.FormSnapshot(w, &vis, players[0], &indexed[0], 999, 1, 0, nil, nil, 0)
	if !bytes.Equal(want, gotIdx) {
		t.Fatalf("post-invalidation indexed datagram differs from reference")
	}
}

// TestFormSnapshotSteadyStateAllocFree asserts the pooled path reports
// zero buffer growths once warmed up, and that Go's allocation counter
// agrees.
func TestFormSnapshotSteadyStateAllocFree(t *testing.T) {
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	players := make([]*entity.Entity, 8)
	for i := range players {
		if players[i], err = w.SpawnPlayer(); err != nil {
			t.Fatal(err)
		}
	}
	var scratch ReplyScratch
	baselines := make([]Baseline, len(players))
	events := []protocol.GameEvent{{Kind: 1, Actor: 2}}
	form := func() int {
		allocs := 0
		for i, e := range players {
			_, st := scratch.FormSnapshot(w, nil, e, &baselines[i], 1, 1, 1, events, events, 0)
			allocs += st.Allocs
		}
		return allocs
	}
	// Warm-up: the scratch and the 8 baselines circulate 9 distinct
	// buffers, and each must individually reach the high-water mark, so
	// convergence takes a few rounds — but it must happen.
	converged := false
	for round := 0; round < 20; round++ {
		if form() == 0 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("FormSnapshot buffer growth never converged to zero")
	}
	if got := form(); got != 0 {
		t.Errorf("steady-state FormSnapshot reported %d buffer growths, want 0", got)
	}
	avg := testing.AllocsPerRun(50, func() { form() })
	if avg != 0 {
		t.Errorf("steady-state FormSnapshot allocates %.1f objects/round, want 0", avg)
	}
}

// TestBaselineSurvivesMigration is the regression test for the balancer
// handoff: a migration moves a client to another thread's ReplyScratch,
// but the client's Baseline must travel untouched — the delta stream
// stays byte-identical to a never-migrated reference, and the B/reply
// alloc counters reconverge to zero instead of restarting from a cold
// baseline. (The bug this guards against: resetting the baseline or its
// growth accounting during handoff, which silently inflates qbench's
// B/reply column and resends full state after every migration.)
func TestBaselineSurvivesMigration(t *testing.T) {
	const (
		numPlayers   = 8
		numFrames    = 60
		migrateFrame = 21
	)
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := game.NewWorld(game.Config{Map: m, Seed: 4321})
	if err != nil {
		t.Fatal(err)
	}
	players := make([]*entity.Entity, numPlayers)
	for i := range players {
		if players[i], err = w.SpawnPlayer(); err != nil {
			t.Fatal(err)
		}
	}

	// Two per-thread scratches; every client starts on thread 0 and all
	// migrate to thread 1 at migrateFrame. The reference path never
	// migrates (it has no thread affinity at all).
	var threadScratch [2]ReplyScratch
	pooled := make([]Baseline, numPlayers)
	reference := make([][]protocol.EntityState, numPlayers)
	refTags := make([]uint32, numPlayers)
	postMigrationAllocs := -1

	for frame := uint32(1); frame <= numFrames; frame++ {
		for i, e := range players {
			cmd := protocol.MoveCmd{
				Forward: 320,
				Yaw:     protocol.AngleToWire(float64((int(frame)*37 + i*71) % 360)),
				Msec:    33,
			}
			w.ExecuteMove(e, &cmd, &game.LockContext{})
		}
		w.RunWorldFrame(0.033)

		thread := 0
		if frame >= migrateFrame {
			thread = 1
		}
		serverTime := uint32(w.Time * 1000)
		frameAllocs := 0
		for i, e := range players {
			if !e.Active {
				continue
			}
			ackSeq := frame*100 + uint32(i)
			want, newBase, newTag := ReferenceFormSnapshot(w, e, reference[i], refTags[i],
				frame, ackSeq, serverTime, nil, nil)
			reference[i], refTags[i] = newBase, newTag
			got, st := threadScratch[thread].FormSnapshot(w, nil, e, &pooled[i],
				frame, ackSeq, serverTime, nil, nil, 0)
			if !bytes.Equal(want, got) {
				t.Fatalf("frame %d player %d (thread %d): datagram differs across migration\nreference: %x\nmigrated:  %x",
					frame, i, thread, want, got)
			}
			frameAllocs += st.Allocs
		}
		if frame > migrateFrame+5 {
			if postMigrationAllocs < 0 || frameAllocs < postMigrationAllocs {
				postMigrationAllocs = frameAllocs
			}
		}
	}
	// The new thread's scratch pays a one-time warm-up after the handoff,
	// but steady state must return to zero growths: the baseline kept its
	// buffers, so growth cannot recur every frame.
	if postMigrationAllocs != 0 {
		t.Errorf("reply path never reconverged to 0 buffer growths after migration (best frame: %d)",
			postMigrationAllocs)
	}
}

// TestBaselineGapInvalidation drives the live sequential engine's ack
// rule directly: a Move acknowledging a frame far behind the client's
// last reply must clear the baseline; a current ack must not.
func TestBaselineGapInvalidation(t *testing.T) {
	c := &client{}
	c.baseline.states = append(c.baseline.states, protocol.EntityState{ID: 1})
	c.repliedFrame.Store(1000)

	cases := []struct {
		ack        uint32
		invalidate bool
	}{
		{0, false},                        // no information: never invalidate
		{999, false},                      // current
		{1000 - baselineGapFrames, false}, // at the edge
		{1000 - baselineGapFrames - 1, true},
		{1, true}, // ancient
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("ack=%d", tc.ack), func(t *testing.T) {
			c.baseline.states = c.baseline.states[:0]
			c.baseline.states = append(c.baseline.states, protocol.EntityState{ID: 1})
			if tc.ack != 0 && c.repliedFrame.Load()-tc.ack > baselineGapFrames {
				c.baseline.Invalidate()
			}
			gotInvalidated := c.baseline.Len() == 0
			if gotInvalidated != tc.invalidate {
				t.Errorf("ack %d: invalidated=%v, want %v", tc.ack, gotInvalidated, tc.invalidate)
			}
		})
	}
}
