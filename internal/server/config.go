package server

import (
	"fmt"
	"time"

	"qserve/internal/balance"
	"qserve/internal/checkpoint"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/transport"
)

// Config parameterizes either live engine.
type Config struct {
	// World is the game state; required.
	World *game.World
	// Conns are the server's datagram endpoints, one per thread. The
	// parallel engine requires exactly Threads entries; the sequential
	// engine uses the first. Connection requests may arrive at any of
	// them; gameplay traffic arrives at the owning thread's endpoint.
	Conns []transport.Conn
	// Threads is the worker count for the parallel engine.
	Threads int
	// Strategy selects the region-lock scheme; Conservative by default.
	Strategy locking.Strategy
	// MaxClients bounds the session size. Default 256.
	MaxClients int
	// SelectTimeout is how long a thread blocks in its select before
	// re-checking for shutdown. Default 5ms.
	SelectTimeout time.Duration
	// ClientTimeout evicts clients silent for this long. Default 15s.
	ClientTimeout time.Duration
	// Assign maps a new client's join index to an owning thread. The
	// default emulates the paper's static block assignment for clients
	// that connect up-front: index i goes to thread i*Threads/MaxClients.
	Assign func(joinIdx, threads, maxClients int) int
	// Balance configures dynamic client→thread rebalancing (parallel
	// engine only). Off by default, preserving the paper's static
	// assignment.
	Balance balance.Policy

	// BatchDelay, when positive, has the frame master hold the frame
	// open for this long before the world update, so other threads'
	// selects can return and join the frame — the live counterpart of
	// simserver's BatchDelayNs (the paper's §5.2 "wait for a period of
	// time before starting the frame" suggestion). Zero by default:
	// frames form exactly as the published server's do. Multi-thread
	// frames are a precondition for work stealing to engage, so the
	// stealing stress tests and the lockwall live arm set it.
	BatchDelay time.Duration

	// Stealing enables conflict-aware work-stealing request execution
	// (parallel engine only): workers place their clients' move commands
	// in per-worker frame pools, drain their own pool first, then steal
	// pending requests from other workers instead of idling at the
	// request barrier. A request whose region is contended is parked and
	// retried, so stolen work rarely blocks on region locks. Off by
	// default: the paper's figures model static assignment, and stealing
	// is the ablation arm (`qbench -exp lockwall`). Per-client request
	// order — the only order the wire protocol can observe — is
	// preserved; see DESIGN.md §10.
	Stealing bool

	// WatchdogDeadline arms the frame watchdog (parallel engine only): a
	// worker stuck in its request or reply phase longer than this is
	// reported as wedged. Zero disables the watchdog.
	WatchdogDeadline time.Duration
	// QuarantineWedged lets the watchdog act on a wedge: the client being
	// served is quarantined, the wedged worker is abandoned at the frame
	// barriers so the remaining threads keep serving, and the worker
	// evicts the quarantined client when (if) it comes back. With it off
	// the watchdog only detects and counts.
	QuarantineWedged bool

	// FrameBudget is the overload ladder's target frame duration: frames
	// over budget for OverloadTripFrames consecutive frames raise the shed
	// level, frames under budget for OverloadClearFrames lower it. Zero
	// disables overload shedding. Adjustable at runtime via
	// SetFrameBudget.
	FrameBudget time.Duration
	// OverloadTripFrames is how many consecutive over-budget frames raise
	// the shed level one step. Default 8.
	OverloadTripFrames int
	// OverloadClearFrames is how many consecutive under-budget frames
	// lower the shed level one step (hysteresis). Default 16.
	OverloadClearFrames int
	// OverloadEntityCap is the per-snapshot visible-entity cap applied at
	// shed level 2+. Default 16.
	OverloadEntityCap int

	// Record, when non-nil, receives the session's deterministic input
	// stream — ticks, committed moves, connects/disconnects, migrations
	// and shed decisions — for later bit-identical replay (see
	// internal/replay and DESIGN.md §11). Nil in production unless
	// recording was requested; the taps are branch-predictable nil
	// checks when off.
	Record Recorder

	// Checkpoint, when non-nil, captures durable world checkpoints at the
	// reply barrier every Writer-configured interval (DESIGN.md §12). The
	// capture runs on the frame master after all replies committed — the
	// phase where the entity table is read-only — so the snapshot is
	// race-free by construction and allocation-free in steady state. The
	// engine drives Begin/AddClient/Commit; the writer flushes off-thread.
	Checkpoint *checkpoint.Writer

	// Restore, when non-nil, seeds the engine from a recovered session
	// (replay.Recover): World already holds the restored entity table;
	// Restore carries the client identities to park for reconnection and
	// the allocation counters to resume from.
	Restore *RestoreState

	// Clock, when non-nil, replaces time.Now for the world-physics dt
	// computation only (the single wall-clock input that reaches frame
	// logic). The replayer injects a virtual clock here and advances it
	// by recorded tick dts, reproducing the original World.Time
	// evolution exactly. Metrics, timeouts, and select deadlines keep
	// using the real clock.
	Clock func() time.Time

	// Shared, when non-nil, is the cross-instance frame-scratch pool
	// (DESIGN.md §13): the engine borrows its per-frame buffers (receive
	// buffer, reply scratch, visibility index, sweep buffers) from the
	// pool while active and parks them when idle, so a process running
	// thousands of mostly idle matches holds warm buffers only for the
	// active ones. Nil keeps the classic behavior: the engine owns its
	// buffers for life.
	Shared *SharedBufs

	// Hooks are test seams; nil in production.
	Hooks Hooks
}

// timeNow is the frame-logic clock: Config.Clock when set, else
// time.Now. Only the world-physics dt may consult it — everything else
// (metrics, staleness, select timeouts) stays on the real clock so a
// frozen virtual clock cannot stall the server.
func (c *Config) timeNow() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// Hooks exposes fault-injection seams for the chaos tests. All fields
// optional.
type Hooks struct {
	// PreExec runs on the owning thread right before a move command
	// executes. The wedge/panic tests use it to stall or crash a thread at
	// a precisely known point (before any region lock is taken).
	PreExec func(thread int, clientID uint16)
}

func (c *Config) fill(needThreads bool) error {
	if c.World == nil {
		return fmt.Errorf("server: config has no world")
	}
	if len(c.Conns) == 0 {
		return fmt.Errorf("server: config has no connections")
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if needThreads && len(c.Conns) != c.Threads {
		return fmt.Errorf("server: %d conns for %d threads", len(c.Conns), c.Threads)
	}
	if needThreads && c.Threads > maxThreads {
		// The frame controller tracks request-barrier passage in a uint64
		// bitmask (frameCtl.reqDoneBy); a worker id past 63 would silently
		// fall outside it and disable the abandonment protocol for that
		// thread. Refuse loudly instead.
		return fmt.Errorf("server: %d threads exceeds the supported maximum of %d (frame-control bitmask width)", c.Threads, maxThreads)
	}
	if c.Strategy == nil {
		c.Strategy = locking.Conservative{}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 256
	}
	if c.SelectTimeout <= 0 {
		c.SelectTimeout = 5 * time.Millisecond
	}
	if c.ClientTimeout <= 0 {
		c.ClientTimeout = 15 * time.Second
	}
	if c.Assign == nil {
		c.Assign = BlockAssign
	}
	if c.OverloadTripFrames <= 0 {
		c.OverloadTripFrames = 8
	}
	if c.OverloadClearFrames <= 0 {
		c.OverloadClearFrames = 16
	}
	if c.OverloadEntityCap <= 0 {
		c.OverloadEntityCap = 16
	}
	return nil
}

// BlockAssign implements the paper's §3.1 policy: "We assign players to
// threads in a block fashion." Join index i lands in the block-sized
// bucket for thread i*threads/maxClients.
func BlockAssign(joinIdx, threads, maxClients int) int {
	if threads <= 1 {
		return 0
	}
	if joinIdx >= maxClients {
		return joinIdx % threads
	}
	return joinIdx * threads / maxClients
}

// RoundRobinAssign is the alternative interleaved policy.
func RoundRobinAssign(joinIdx, threads, _ int) int {
	if threads <= 0 {
		return 0
	}
	return joinIdx % threads
}
