package server

import (
	"fmt"
	"time"

	"qserve/internal/balance"
	"qserve/internal/game"
	"qserve/internal/locking"
	"qserve/internal/transport"
)

// Config parameterizes either live engine.
type Config struct {
	// World is the game state; required.
	World *game.World
	// Conns are the server's datagram endpoints, one per thread. The
	// parallel engine requires exactly Threads entries; the sequential
	// engine uses the first. Connection requests may arrive at any of
	// them; gameplay traffic arrives at the owning thread's endpoint.
	Conns []transport.Conn
	// Threads is the worker count for the parallel engine.
	Threads int
	// Strategy selects the region-lock scheme; Conservative by default.
	Strategy locking.Strategy
	// MaxClients bounds the session size. Default 256.
	MaxClients int
	// SelectTimeout is how long a thread blocks in its select before
	// re-checking for shutdown. Default 5ms.
	SelectTimeout time.Duration
	// ClientTimeout evicts clients silent for this long. Default 15s.
	ClientTimeout time.Duration
	// Assign maps a new client's join index to an owning thread. The
	// default emulates the paper's static block assignment for clients
	// that connect up-front: index i goes to thread i*Threads/MaxClients.
	Assign func(joinIdx, threads, maxClients int) int
	// Balance configures dynamic client→thread rebalancing (parallel
	// engine only). Off by default, preserving the paper's static
	// assignment.
	Balance balance.Policy
}

func (c *Config) fill(needThreads bool) error {
	if c.World == nil {
		return fmt.Errorf("server: config has no world")
	}
	if len(c.Conns) == 0 {
		return fmt.Errorf("server: config has no connections")
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if needThreads && len(c.Conns) != c.Threads {
		return fmt.Errorf("server: %d conns for %d threads", len(c.Conns), c.Threads)
	}
	if c.Strategy == nil {
		c.Strategy = locking.Conservative{}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 256
	}
	if c.SelectTimeout <= 0 {
		c.SelectTimeout = 5 * time.Millisecond
	}
	if c.ClientTimeout <= 0 {
		c.ClientTimeout = 15 * time.Second
	}
	if c.Assign == nil {
		c.Assign = BlockAssign
	}
	return nil
}

// BlockAssign implements the paper's §3.1 policy: "We assign players to
// threads in a block fashion." Join index i lands in the block-sized
// bucket for thread i*threads/maxClients.
func BlockAssign(joinIdx, threads, maxClients int) int {
	if threads <= 1 {
		return 0
	}
	if joinIdx >= maxClients {
		return joinIdx % threads
	}
	return joinIdx * threads / maxClients
}

// RoundRobinAssign is the alternative interleaved policy.
func RoundRobinAssign(joinIdx, threads, _ int) int {
	if threads <= 0 {
		return 0
	}
	return joinIdx % threads
}
