package server

import (
	"sort"
	"sync/atomic"
	"time"

	"qserve/internal/game"
	"qserve/internal/geom"
)

// Shed ladder levels. Each level includes the degradations of the levels
// below it.
const (
	// shedNone: full service.
	shedNone int32 = iota
	// shedFarHalf: clients far from the action centroid get snapshots at
	// half rate (every other frame).
	shedFarHalf
	// shedEntityCap: snapshots additionally cap their visible-entity set.
	shedEntityCap
	// shedRejectNew: new connection attempts are additionally refused
	// with "busy".
	shedRejectNew

	shedMaxLevel = shedRejectNew
)

// shedController implements graceful overload degradation: when the
// frame time stays over budget for a run of consecutive frames the
// server sheds load one ladder step at a time instead of letting latency
// grow without bound, and restores service with hysteresis once frames
// come back under budget. One instance per engine; observe is called by
// the frame master only, everything else is read concurrently.
type shedController struct {
	budgetNs atomic.Int64
	level    atomic.Int32

	trip  int // consecutive over-budget frames to raise the level
	clear int // consecutive under-budget frames to lower it

	// Master-only run counters.
	over, under int
}

func (sc *shedController) init(cfg *Config) {
	sc.budgetNs.Store(int64(cfg.FrameBudget))
	sc.trip = cfg.OverloadTripFrames
	sc.clear = cfg.OverloadClearFrames
}

// setBudget adjusts the frame budget at runtime (0 disables shedding and
// resets the ladder).
func (sc *shedController) setBudget(d time.Duration) {
	sc.budgetNs.Store(int64(d))
}

// observe feeds one frame's duration to the ladder and returns the level
// now in effect. Master thread only.
func (sc *shedController) observe(frameNs int64) int32 {
	budget := sc.budgetNs.Load()
	if budget <= 0 {
		if sc.level.Load() != shedNone {
			sc.level.Store(shedNone)
			sc.over, sc.under = 0, 0
		}
		return shedNone
	}
	lvl := sc.level.Load()
	if frameNs > budget {
		sc.over++
		sc.under = 0
		if sc.over >= sc.trip && lvl < shedMaxLevel {
			lvl++
			sc.level.Store(lvl)
			sc.over = 0
		}
	} else {
		sc.under++
		sc.over = 0
		if sc.under >= sc.clear && lvl > shedNone {
			lvl--
			sc.level.Store(lvl)
			sc.under = 0
		}
	}
	return lvl
}

// current returns the level without observing a frame.
func (sc *shedController) current() int32 { return sc.level.Load() }

// markShedFar marks the half of the clients farthest from the action
// centroid as shed-far; under overload (level >= shedFarHalf) those
// clients' snapshot rates are halved — distance from the action is the
// cheapest notion of "who can tolerate a stale view". cs and dists are
// reusable scratch slices, returned for the caller to retain. Called at
// the frame barrier only.
func markShedFar(world *game.World, ct *clientTable, cs []*client, dists []float64) ([]*client, []float64) {
	cs = cs[:0]
	dists = dists[:0]
	var centroid geom.Vec3
	ct.forEach(func(c *client) {
		ent := world.Ents.Get(c.entID)
		if ent == nil || !ent.Active {
			return
		}
		cs = append(cs, c)
		dists = append(dists, 0)
		centroid = centroid.Add(ent.Origin)
	})
	if len(cs) < 2 {
		for _, c := range cs {
			c.shedFar.Store(false)
		}
		return cs, dists
	}
	centroid = centroid.Scale(1 / float64(len(cs)))
	for i, c := range cs {
		if ent := world.Ents.Get(c.entID); ent != nil {
			dists[i] = ent.Origin.Sub(centroid).Len()
		}
	}
	// Split at the median of a sorted copy: strictly-beyond-median gets
	// shed, so at least half the clients keep full rate.
	tmp := append([]float64(nil), dists...)
	sort.Float64s(tmp)
	median := tmp[len(tmp)/2]
	for i, c := range cs {
		c.shedFar.Store(dists[i] > median)
	}
	return cs, dists
}
