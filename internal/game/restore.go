package game

import (
	"fmt"

	"qserve/internal/entity"
)

// This file is the world side of checkpoint recovery (internal/checkpoint,
// DESIGN.md §12): primitives that rebuild a world's mutable state —
// entity table, areanode links, clock, spawn rotation — exactly as a
// checkpoint recorded it. The static state (collision tree, visibility
// tables) is derived from the map by NewWorld as usual.

// SpawnCursor returns the spawn-point rotation cursor.
func (w *World) SpawnCursor() int { return w.spawnCursor }

// SetSpawnCursor restores the spawn-point rotation cursor, so players
// spawning after recovery land where they would have without the crash.
func (w *World) SetSpawnCursor(n int) { w.spawnCursor = n }

// ResetEntities unlinks every entity and clears the table, preparing a
// freshly built world to be repopulated from a checkpoint. Restore-only:
// it must not run while any engine thread can touch the world.
func (w *World) ResetEntities() {
	w.Ents.ForEach(func(e *entity.Entity) {
		if e.Link.Linked() {
			w.Tree.Unlink(&e.Link)
		}
	})
	w.Ents.Reset()
}

// RestoreEntity materializes entity id, fills its fields via fill, and —
// when linked is set — links it into the areanode tree. Unlike the spawn
// paths it does not refresh RoomID or SnapEligible after linking: fill
// installs the checkpointed values verbatim, so a restored world is
// bit-identical to the captured one even where the derived values had
// drifted from what a fresh derivation would produce.
func (w *World) RestoreEntity(id entity.ID, linked bool, fill func(*entity.Entity)) error {
	e := w.Ents.Materialize(id)
	if e == nil {
		return fmt.Errorf("game: cannot materialize entity %d (out of range or already active)", id)
	}
	fill(e)
	if linked {
		e.Link.ID = int32(e.ID)
		e.Link.Owner = e
		w.Tree.Link(&e.Link, e.AbsBox())
	}
	return nil
}
