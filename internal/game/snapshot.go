package game

import (
	"qserve/internal/entity"
	"qserve/internal/protocol"
)

// SnapshotWork counts reply-phase effort for one client: how many
// entities were considered for visibility and how many were serialized.
// Reply processing cost scales with visibility — the paper observes that
// "maps exhibiting higher visibility incur higher reply processing
// times".
type SnapshotWork struct {
	Considered int
	Visible    int
}

// visCutoff includes nearby entities regardless of the room-visibility
// matrix (sounds carry through walls).
const visCutoff = 320.0

// BuildSnapshot assembles the viewer's visible entity set, appending wire
// states to dst (which is returned, grown). States are emitted in entity
// ID order, the order DeltaEntities requires. Reply processing "involves
// reading global state but writing only private (per-client) reply
// messages", so this function takes no locks in any engine.
//
// Aliasing contract: the returned slice shares dst's backing array
// whenever capacity allows, so a caller reusing one scratch slice across
// calls (the allocation-free reply pipeline) must never retain the
// returned slice past the next BuildSnapshot into the same scratch —
// copy it out (or swap ownership of whole buffers, as
// server.ReplyScratch does with its baseline) before reusing dst.
//
//qvet:phase=reply
//qvet:noalloc
func (w *World) BuildSnapshot(viewer *entity.Entity, dst []protocol.EntityState) ([]protocol.EntityState, SnapshotWork) {
	var work SnapshotWork
	viewerRoom := viewer.RoomID
	high := w.Ents.HighWater()
	for i := 0; i < high; i++ {
		e := w.Ents.Get(entity.ID(i))
		if e == nil || !e.Active || e == viewer {
			continue
		}
		// Unlinked items (taken, awaiting respawn) are invisible.
		if e.Class == entity.ClassItem && !e.Link.Linked() {
			continue
		}
		if e.Class == entity.ClassTeleporter {
			continue // static triggers are part of the map, not snapshots
		}
		work.Considered++
		if !w.entityVisible(viewerRoom, viewer, e) {
			continue
		}
		dst = append(dst, captureState(e))
		work.Visible++
	}
	return dst, work
}

// entityVisible implements the paper's interest filtering: "the server
// determines which entities are of interest to each client ... it will
// notify a client only of entities that are visible to it or that may
// soon become visible and sounds that are audible."
func (w *World) entityVisible(viewerRoom int, viewer, e *entity.Entity) bool {
	if e.RoomID >= 0 && viewerRoom >= 0 {
		if w.Map.Visible(viewerRoom, e.RoomID) {
			return true
		}
	} else {
		// Unknown room (inside a doorway band): fall through to range.
	}
	return viewer.Origin.DistSq(e.Origin) <= visCutoff*visCutoff
}

// captureState encodes one entity's wire state. Both the naive scan and
// the VisIndex cache build go through this single encoder, so the two
// reply paths emit identical bytes by construction.
func captureState(e *entity.Entity) protocol.EntityState {
	var s protocol.EntityState
	s.ID = uint16(e.ID)
	s.Class = uint8(e.Class)
	s.SetOrigin(e.Origin)
	s.SetYaw(e.Angles.Y)
	s.Frame = e.ModelFrame
	s.Effects = entityEffects(e)
	return s
}

func entityEffects(e *entity.Entity) uint8 {
	var fx uint8
	if e.HasPowerup {
		fx |= 1
	}
	if e.Health <= 0 && e.Class == entity.ClassPlayer {
		fx |= 2
	}
	return fx
}

// PlayerStateOf converts a player entity to its wire self-state.
func PlayerStateOf(e *entity.Entity) protocol.PlayerState {
	var ps protocol.PlayerState
	ps.Origin = e.Origin
	ps.Velocity = e.Velocity
	ps.Health = int16(e.Health)
	ps.Armor = int16(e.Armor)
	ps.Ammo = int16(e.Ammo)
	ps.Weapon = e.Weapon
	ps.Frags = int16(e.Frags)
	if e.OnGround {
		ps.Flags |= protocol.PFOnGround
	}
	if e.Health <= 0 {
		ps.Flags |= protocol.PFDead
	}
	if e.HasPowerup {
		ps.Flags |= protocol.PFPowerup
	}
	return ps
}
