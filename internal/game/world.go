// Package game implements the rules of the first-person action game the
// server hosts: the move-command execution pipeline of the paper's §2.3
// (motion bounding boxes, areanode traversal, short- and long-range
// interactions), the world-physics phase, combat, pickups, respawns, and
// per-client snapshot construction with visibility filtering.
//
// The package is engine-neutral. It performs no timing and no real
// locking of its own: an engine passes a LockContext whose provider is a
// mutex array (live server), a virtual-time lock set (simulated machine),
// or a no-op (sequential server). Every operation reports work counters
// from which the simulated machine charges virtual time.
package game

import (
	"fmt"
	"sync"

	"qserve/internal/areanode"
	"qserve/internal/collide"
	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/locking"
	"qserve/internal/physics"
	"qserve/internal/worldmap"
)

// Config parameterizes a game world.
type Config struct {
	Map           *worldmap.Map
	AreanodeDepth int // leaf depth; areanode.DefaultDepth when zero
	MaxEntities   int // entity table capacity; derived when zero
	Physics       physics.Params
	// Seed is accepted for configuration compatibility but currently
	// unused: gameplay is deterministic by design (see World.Time's
	// determinism note) and seeds only the map generator upstream.
	Seed int64
}

// World owns all mutable game state: the entity table, the areanode tree,
// and the clock. The static map and collision tree are shared and
// immutable.
type World struct {
	Map     *worldmap.Map
	Collide *collide.Tree
	Tree    *areanode.Tree
	Ents    *entity.Table
	Phys    physics.Params

	// Time is the server clock in seconds, advanced by the world-physics
	// phase at the start of each frame.
	//
	// Determinism note: gameplay is rule-driven and uses no randomness —
	// the world's evolution is a pure function of the map, the spawn/
	// connect/disconnect sequence, the committed move commands, and the
	// tick dts. internal/replay depends on this (DESIGN.md §11), and the
	// detcheck test in that package enforces it (no math/rand, no
	// time.Now in frame logic).
	Time float64

	// spawnCursor rotates through spawn points.
	spawnCursor int

	// entMu serializes entity-table allocation when request-processing
	// threads spawn projectiles concurrently. All other table mutation
	// happens in single-threaded phases (connection handling, world
	// physics) and under the phase barriers.
	entMu sync.Mutex

	// Static per-map tables for the frame-coherent visibility index
	// (visindex.go), derived once from the room layout. visRoomBounds[r]
	// is room r's bounds widened exactly as Map.RoomAt accepts points
	// (wall-band expansion, Z extended to the world top), so RoomID==r
	// with Origin inside visRoomBounds[r] is the "fresh room" invariant.
	// visClass[v][r] classifies room r for a viewer in room v: take
	// (room-visible, no range check), check (outside the visibility
	// matrix but close enough that the audible-range fallback could
	// still include an entity there), or skip (provably out of range).
	// Each row carries two extra tail slots so the index's overflow
	// (room unknown: always range-checked) and stale (cached room
	// disagrees with origin: full naive predicate) buckets resolve
	// through the same one-load lookup as real rooms.
	visRoomBounds []geom.AABB
	visClass      [][]uint8

	// frameIDs is RunWorldFrame's scratch copy of the active-ID index:
	// thinks free and allocate entities mid-walk, so the phase iterates a
	// snapshot of the index taken at frame start.
	frameIDs []entity.ID
}

// Viewer-room classification of a room's entity span during snapshot
// merging (see visClass above).
const (
	visSkip uint8 = iota
	visCheck
	visTake
	visStale
)

// NewWorld builds a world over the map: collision tree, areanode tree,
// and the initial entity population (items and teleporter triggers).
func NewWorld(cfg Config) (*World, error) {
	if cfg.Map == nil {
		return nil, fmt.Errorf("game: config has no map")
	}
	depth := cfg.AreanodeDepth
	if depth == 0 {
		depth = areanode.DefaultDepth
	}
	maxEnts := cfg.MaxEntities
	if maxEnts == 0 {
		maxEnts = 2048
	}
	if cfg.Physics == (physics.Params{}) {
		cfg.Physics = physics.DefaultParams()
	}

	boxes := make([]geom.AABB, len(cfg.Map.Brushes))
	for i, b := range cfg.Map.Brushes {
		boxes[i] = b.Box
	}
	w := &World{
		Map:     cfg.Map,
		Collide: collide.NewTree(boxes, cfg.Map.Bounds),
		Tree:    areanode.NewTree(cfg.Map.Bounds, depth),
		Ents:    entity.NewTable(maxEnts),
		Phys:    cfg.Physics,
	}

	for i, it := range cfg.Map.Items {
		e := w.Ents.Alloc(entity.ClassItem)
		if e == nil {
			return nil, fmt.Errorf("game: entity table too small for map items")
		}
		e.Origin = it.Pos
		e.Mins, e.Maxs = entity.ItemMins, entity.ItemMaxs
		e.ItemClass = it.Class
		e.ItemSpawn = i
		e.RoomID = it.RoomID
		w.link(e)
	}
	for i := range cfg.Map.Doors {
		if err := w.spawnDoor(i); err != nil {
			return nil, err
		}
	}
	for _, tp := range cfg.Map.Teleporters {
		e := w.Ents.Alloc(entity.ClassTeleporter)
		if e == nil {
			return nil, fmt.Errorf("game: entity table too small for teleporters")
		}
		c := tp.Trigger.Center()
		e.Origin = c
		e.Mins = tp.Trigger.Min.Sub(c)
		e.Maxs = tp.Trigger.Max.Sub(c)
		e.RoomID = cfg.Map.RoomAt(c)
		// Destination is recovered through the map by trigger identity;
		// store the teleporter index in ItemSpawn for O(1) lookup.
		e.ItemSpawn = teleIndex(cfg.Map, tp)
		w.link(e)
	}
	w.buildVisTables()
	return w, nil
}

// buildVisTables derives the static room tables the visibility index
// merges with. A room pair is "check" rather than "skip" whenever any
// viewer position accepted into room v could be within visCutoff of any
// entity position accepted into room r — the box-distance lower bound
// guarantees a skipped room can never hide an entity the naive range
// check would have included.
func (w *World) buildVisTables() {
	m := w.Map
	n := len(m.Rooms)
	if n == 0 {
		return
	}
	w.visRoomBounds = make([]geom.AABB, n)
	for r := range m.Rooms {
		b := m.Rooms[r].Bounds
		b.Max.Z = m.Bounds.Max.Z
		w.visRoomBounds[r] = b.Expand(m.WallSize)
	}
	w.visClass = make([][]uint8, n)
	stride := n + 2
	flat := make([]uint8, n*stride)
	for v := 0; v < n; v++ {
		row := flat[v*stride : (v+1)*stride]
		for r := 0; r < n; r++ {
			switch {
			case m.Visible(v, r):
				row[r] = visTake
			case boxMinDistSq(w.visRoomBounds[v], w.visRoomBounds[r]) <= visCutoff*visCutoff:
				row[r] = visCheck
			}
		}
		row[n] = visCheck   // overflow bucket: room unknown, range check
		row[n+1] = visStale // stale bucket: full naive predicate
		w.visClass[v] = row
	}
}

// boxMinDistSq returns the squared distance between the closest pair of
// points of two boxes (0 when they intersect).
func boxMinDistSq(a, b geom.AABB) float64 {
	gap := func(amin, amax, bmin, bmax float64) float64 {
		if d := bmin - amax; d > 0 {
			return d
		}
		if d := amin - bmax; d > 0 {
			return d
		}
		return 0
	}
	dx := gap(a.Min.X, a.Max.X, b.Min.X, b.Max.X)
	dy := gap(a.Min.Y, a.Max.Y, b.Min.Y, b.Max.Y)
	dz := gap(a.Min.Z, a.Max.Z, b.Min.Z, b.Max.Z)
	return dx*dx + dy*dy + dz*dz
}

func teleIndex(m *worldmap.Map, tp worldmap.Teleporter) int {
	for i := range m.Teleporters {
		if m.Teleporters[i].Trigger == tp.Trigger {
			return i
		}
	}
	return -1
}

// link (re)links an entity into the areanode tree and refreshes its room.
// Safe only in single-threaded phases (world physics, connection
// handling under a whole-bounds region lock): an entity may link at an
// interior node, whose list no region lock covers. Concurrent request
// processing must use linkGuarded.
func (w *World) link(e *entity.Entity) {
	e.Link.ID = int32(e.ID)
	e.Link.Owner = e
	w.Tree.Link(&e.Link, e.AbsBox())
	if room := w.Map.RoomAt(e.Origin); room >= 0 {
		e.RoomID = room
	}
	if e.Class == entity.ClassItem {
		e.SnapEligible = true // a linked item is in play and visible
	}
}

// unlink removes an entity from the areanode tree. Same phase
// restrictions as link; concurrent request processing uses
// unlinkGuarded.
func (w *World) unlink(e *entity.Entity) {
	w.Tree.Unlink(&e.Link)
	if e.Class == entity.ClassItem {
		e.SnapEligible = false // a taken item awaits respawn, invisible
	}
}

// linkGuarded is link for concurrent request processing: the held region
// lock covers leaf lists, but an entity crossing a division plane links
// at an interior node, whose list is shared with every mover under that
// subtree — the intrusive-list splice there must take the transient
// parent lock (the same guard CollectBox scans with).
func (w *World) linkGuarded(e *entity.Entity, lc *LockContext) {
	e.Link.ID = int32(e.ID)
	e.Link.Owner = e
	w.Tree.LinkGuarded(&e.Link, e.AbsBox(), lc.parentGuard())
	if room := w.Map.RoomAt(e.Origin); room >= 0 {
		e.RoomID = room
	}
	if e.Class == entity.ClassItem {
		e.SnapEligible = true
	}
}

// unlinkGuarded is unlink for concurrent request processing (see
// linkGuarded).
func (w *World) unlinkGuarded(e *entity.Entity, lc *LockContext) {
	w.Tree.UnlinkGuarded(&e.Link, lc.parentGuard())
	if e.Class == entity.ClassItem {
		e.SnapEligible = false
	}
}

// SpawnPlayer creates a player entity at the next spawn point. It is
// called during connection handling, which both engines serialize.
func (w *World) SpawnPlayer() (*entity.Entity, error) {
	e := w.Ents.Alloc(entity.ClassPlayer)
	if e == nil {
		return nil, fmt.Errorf("game: entity table full")
	}
	w.placeAtSpawn(e)
	return e, nil
}

// placeAtSpawn (re)initializes a player at a spawn point, cycling through
// the map's spawns to spread players out.
func (w *World) placeAtSpawn(e *entity.Entity) {
	sp := w.Map.Spawns[w.spawnCursor%len(w.Map.Spawns)]
	w.spawnCursor++
	if e.Link.Linked() {
		w.unlink(e)
	}
	e.Origin = geom.V(sp.Pos.X, sp.Pos.Y, sp.Pos.Z+24) // origin is 24 above feet
	e.Velocity = geom.Vec3{}
	e.Angles = geom.V(0, sp.Yaw, 0)
	e.Mins, e.Maxs = entity.PlayerMins, entity.PlayerMaxs
	e.Health = 100
	e.Armor = 0
	e.Weapon = WeaponRocket
	e.Weapons = 1<<WeaponRocket | 1<<WeaponRail
	e.Ammo = 100
	e.OnGround = false
	e.RespawnTime = 0
	e.RefireAt = 0
	e.HasPowerup = false
	e.RoomID = sp.RoomID
	w.link(e)
}

// RemovePlayer unlinks and frees a player entity (disconnect).
func (w *World) RemovePlayer(id entity.ID) {
	e := w.Ents.Get(id)
	if e == nil || !e.Active {
		return
	}
	w.unlink(e)
	w.Ents.Free(id)
}

// LockContext carries the engine's synchronization machinery into move
// execution. A zero-value context (nil Locker) runs lock-free, which is
// the sequential server's mode.
type LockContext struct {
	// Locker acquires region locks over the areanode tree; nil disables
	// locking entirely.
	Locker *locking.RegionLocker
	// Strategy sizes lock regions (conservative or optimized).
	Strategy locking.Strategy
	// Stats accumulates lock-protocol counts for this request.
	Stats *locking.AcquireStats
	// LeafMask, when non-nil, accumulates the leaf *ordinals* locked
	// during this request as a bitmask — the Fig. 7(c) instrumentation.
	LeafMask *uint64
	// OnWork, when non-nil, is invoked with the work performed inside a
	// held region just before that region is released. The simulated
	// machine uses it to advance virtual time while locks are held, so
	// lock hold durations reflect execution cost; the live engine leaves
	// it nil because real time passes on its own.
	OnWork func(Work)
	// TryFirst makes the *first* region acquisition of the move — the
	// short-range lock, taken before any entity state is mutated —
	// non-blocking: if the region is contended, ExecuteMove returns with
	// MoveResult.Parked set and zero side effects, so a work-stealing
	// scheduler can shelve the request and execute a non-conflicting one
	// instead of queueing. Later acquisitions (weapon fire) still block:
	// by then the move has mutated the world and must run to completion.
	TryFirst bool
}

// chargeHeld reports held-region work to the engine, if it listens.
func (lc *LockContext) chargeHeld(delta Work) {
	if lc.OnWork != nil {
		lc.OnWork(delta)
	}
}

func (lc *LockContext) strategy() locking.Strategy {
	if lc.Strategy != nil {
		return lc.Strategy
	}
	return locking.Conservative{}
}

// acquire locks the strategy's region for (req, kind) and returns the
// guard; it returns an empty guard when locking is disabled.
func (lc *LockContext) acquire(w *World, req locking.Request, kind locking.Kind) locking.Guard {
	if lc.Locker == nil {
		return locking.Guard{}
	}
	region := lc.strategy().Region(w.Map.Bounds, req, kind)
	g := lc.Locker.Acquire(region, lc.Stats)
	lc.noteLeaves(w, &g)
	return g
}

// tryAcquire is acquire without blocking; ok is false when the region is
// contended (nothing held). With locking disabled it always succeeds.
func (lc *LockContext) tryAcquire(w *World, req locking.Request, kind locking.Kind) (locking.Guard, bool) {
	if lc.Locker == nil {
		return locking.Guard{}, true
	}
	region := lc.strategy().Region(w.Map.Bounds, req, kind)
	g, ok := lc.Locker.TryAcquire(region, lc.Stats)
	if !ok {
		return locking.Guard{}, false
	}
	lc.noteLeaves(w, &g)
	return g, true
}

func (lc *LockContext) noteLeaves(w *World, g *locking.Guard) {
	if lc.LeafMask == nil {
		return
	}
	for _, ni := range g.Leaves() {
		if ord := w.Tree.Node(ni).LeafOrdinal; ord >= 0 && ord < 64 {
			*lc.LeafMask |= 1 << uint(ord)
		}
	}
}

// parentGuard returns the transient interior-node guard, or nil when
// locking is disabled. Nil-receiver safe: single-threaded phases pass a
// nil context through damage/spawnCorpse and run guard-free.
func (lc *LockContext) parentGuard() areanode.NodeGuard {
	if lc == nil || lc.Locker == nil {
		return nil
	}
	return lc.Locker.ParentGuard(lc.Stats)
}
