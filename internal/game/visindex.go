package game

import (
	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/protocol"
)

// This file implements frame-coherent interest management for the reply
// phase. The naive path (BuildSnapshot) makes every client re-scan the
// whole entity table and re-encode every visible entity's wire state,
// O(clients × entities) per frame, even though the emitted
// protocol.EntityState is viewer-independent. A VisIndex inverts that
// loop: once per frame it encodes every snapshot-eligible entity exactly
// once into a pooled state cache — entries in ascending entity-ID order —
// and tags each entry with its room bucket. Each client's snapshot is
// then a single pass over the cached entries that resolves every entry
// through the viewer's precomputed room-classification row (take the
// span outright, range-check it, or skip it without touching the entity)
// and copies the precomputed states of the included ones — no per-client
// re-encoding, no entity-table walk, and ID order falls out of the entry
// order for free.
//
// The build is read-only over world state and is split into two passes
// so the parallel engine can partition the expensive one across its
// worker threads at the reply barrier:
//
//	Begin       serial: collect eligible entries + bucket assignment
//	EncodeShard parallel: encode wire states for one shard of entries
//
// Build runs both sequentially (the sequential and DES engines).
//
// Correctness bar: AppendVisible is byte-identical to BuildSnapshot for
// every viewer (golden_test.go in internal/server, visindex_test.go
// here). The key soundness argument is the skip classification: room r
// is skipped for viewer room v only when the boxes that RoomAt accepts
// points into for v and r are further apart than visCutoff, so no
// accepted viewer/entity position pair can pass the range fallback.
// Entities whose cached RoomID disagrees with their origin (a stale
// room after a move RoomAt could not classify) go to a stale bucket that
// every viewer re-checks with the full naive predicate, and room-unknown
// entities (doorway bands) to an overflow bucket that always takes the
// range check.

// visShardSize is the entry count per EncodeShard unit of work.
const visShardSize = 32

// VisIndex is the per-frame visibility index + entity-state cache. All
// backing storage is pooled: after warm-up a steady-state rebuild
// performs no allocations. A VisIndex is built single-threaded or via
// the Begin/EncodeShard protocol, then read concurrently by any number
// of reply threads; it must not be rebuilt while readers are active (the
// frame barriers order build and use).
type VisIndex struct {
	w *World

	// Entry arrays, parallel, in ascending entity-ID order.
	ids     []entity.ID            // eligible entity IDs
	rooms   []int32                // claimed RoomID (naive semantics), -1 unknown
	buckets []int32                // classification bucket (see Begin)
	origins []geom.Vec3            // exact origins for range checks
	states  []protocol.EntityState // encoded wire states (EncodeShard fills)
}

// Len returns the number of cached (snapshot-eligible) entities.
func (vi *VisIndex) Len() int { return len(vi.ids) }

// Detach drops the index's world reference. A pooled index shared
// across match instances (DESIGN.md §13) is detached when parked so it
// cannot keep an evicted match's world reachable.
func (vi *VisIndex) Detach() { vi.w = nil }

// Begin runs the serial collect pass: it snapshots the eligible entity
// set from the table's active-ID index and assigns each entry a bucket —
// the entity's room for fresh rooms, nRooms for room-unknown entries,
// nRooms+1 for entries whose cached room no longer contains the origin.
// The buckets line up with the two extra tail slots of each visClass
// row, so the merge resolves any entry with one table lookup. Must be
// called before EncodeShard; single-threaded.
//
//qvet:phase=reply
//qvet:noalloc
func (vi *VisIndex) Begin(w *World) {
	vi.w = w
	nRooms := len(w.Map.Rooms)
	vi.ids = vi.ids[:0]
	vi.rooms = vi.rooms[:0]
	vi.buckets = vi.buckets[:0]
	for _, id := range w.Ents.ActiveIDs() {
		e := w.Ents.Get(id)
		if !e.SnapEligible {
			continue
		}
		room := int32(e.RoomID)
		b := int32(nRooms) // overflow: room unknown, always range-checked
		if e.RoomID >= 0 {
			if e.RoomID < nRooms && w.visRoomBounds != nil && w.visRoomBounds[e.RoomID].Contains(e.Origin) {
				b = room
			} else {
				// The cached room no longer contains the origin: the entry
				// keeps naive semantics (room-visibility against the stale
				// room OR range) via the stale bucket.
				b = int32(nRooms + 1)
			}
		}
		vi.ids = append(vi.ids, id)
		vi.rooms = append(vi.rooms, room)
		vi.buckets = append(vi.buckets, b)
	}
	n := len(vi.ids)
	if cap(vi.states) < n {
		// Entry-array growth is amortized: both arrays are reused across
		// frames and only regrow when the eligible population does.
		//qvet:allow=noalloc amortized entry-array growth
		vi.states = make([]protocol.EntityState, n)
		//qvet:allow=noalloc amortized entry-array growth
		vi.origins = make([]geom.Vec3, n)
	}
	vi.states = vi.states[:n]
	vi.origins = vi.origins[:n]
}

// Shards returns how many EncodeShard units the current entry set
// divides into.
func (vi *VisIndex) Shards() int {
	return (len(vi.ids) + visShardSize - 1) / visShardSize
}

// EncodeShard encodes the wire states and captures the origins for one
// shard of entries. Distinct shards may run on distinct threads
// concurrently: each writes a disjoint range of the entry arrays and
// only reads world state, which the reply barrier freezes. Once every
// shard has run the index is complete.
//
//qvet:phase=reply
//qvet:noalloc
func (vi *VisIndex) EncodeShard(s int) {
	lo := s * visShardSize
	hi := lo + visShardSize
	if hi > len(vi.ids) {
		hi = len(vi.ids)
	}
	ents := vi.w.Ents
	for i := lo; i < hi; i++ {
		e := ents.Get(vi.ids[i])
		vi.states[i] = captureState(e)
		vi.origins[i] = e.Origin
	}
}

// Build runs the full pipeline on the calling thread — the sequential
// fallback used by the sequential and DES engines, tests, and
// benchmarks.
//
//qvet:phase=reply
//qvet:noalloc
func (vi *VisIndex) Build(w *World) {
	vi.Begin(w)
	for s, n := 0, vi.Shards(); s < n; s++ {
		vi.EncodeShard(s)
	}
}

// AppendVisible assembles the viewer's visible entity set from the
// index, appending the cached wire states to dst (returned, grown) in
// ascending entity-ID order — byte-identical to what BuildSnapshot
// would emit for the same world state. The work counters report the
// entities actually examined, which for a room-known viewer excludes
// everything in skip-classified rooms — the index's whole point.
//
// Aliasing contract: identical to BuildSnapshot — the returned slice
// shares dst's backing array; the cached states are copied into it, so
// dst never aliases the shared index.
//
//qvet:phase=reply
//qvet:noalloc
func (vi *VisIndex) AppendVisible(viewer *entity.Entity, dst []protocol.EntityState) ([]protocol.EntityState, SnapshotWork) {
	var work SnapshotWork
	w := vi.w
	nRooms := len(w.Map.Rooms)
	vRoom := viewer.RoomID
	viewerID := viewer.ID
	vo := viewer.Origin
	const cut2 = visCutoff * visCutoff

	// Fast path precondition: the viewer's cached room really contains
	// its origin, so the precomputed room classification's skip verdicts
	// are sound for this viewer. Doorway-band viewers (unknown room) and
	// stale-room viewers fall back to a straight scan of the cache with
	// the naive per-entity predicate — still no re-encoding.
	if vRoom < 0 || vRoom >= nRooms || len(w.visClass) == 0 ||
		!w.visRoomBounds[vRoom].Contains(vo) {
		for i := range vi.ids {
			if vi.ids[i] == viewerID {
				continue
			}
			work.Considered++
			if !vi.entryVisible(vRoom, vo, i, cut2) {
				continue
			}
			dst = append(dst, vi.states[i])
			work.Visible++
		}
		return dst, work
	}

	// One classification-driven pass over the ID-ordered entries: cls has
	// a slot per room plus the overflow and stale tail slots, so each
	// entry resolves with a single byte load. Skipped entries cost two
	// array reads and never touch the entity or its cached state.
	cls := w.visClass[vRoom]
	for i, b := range vi.buckets {
		c := cls[b]
		if c == visSkip {
			continue
		}
		if vi.ids[i] == viewerID {
			continue
		}
		work.Considered++
		switch c {
		case visTake:
			// Room-visible from the viewer's room: included outright.
		case visCheck:
			if vo.DistSq(vi.origins[i]) > cut2 {
				continue
			}
		default: // visStale
			if !vi.entryVisible(vRoom, vo, i, cut2) {
				continue
			}
		}
		dst = append(dst, vi.states[i])
		work.Visible++
	}
	return dst, work
}

// entryVisible is the naive entityVisible predicate over a cached entry:
// room-visibility against the entry's claimed room, falling back to the
// audible-range check (the same DistSq the naive path computes, so the
// two paths agree bit-for-bit at the cutoff boundary).
func (vi *VisIndex) entryVisible(vRoom int, vo geom.Vec3, i int, cut2 float64) bool {
	if r := vi.rooms[i]; r >= 0 && vRoom >= 0 && vi.w.Map.Visible(vRoom, int(r)) {
		return true
	}
	return vo.DistSq(vi.origins[i]) <= cut2
}
