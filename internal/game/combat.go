package game

import (
	"qserve/internal/areanode"
	"qserve/internal/collide"
	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/locking"
)

// fireRocket spawns a projectile entity in front of the shooter. The
// projectile is "partly simulated during request processing and then
// [its] trajectory ... completed during the world physics processing
// phase", so the lock region is the expanded bounding box covering its
// maximum in-request interaction range (§4.3, first object type).
func (w *World) fireRocket(e *entity.Entity, req locking.Request, lc *LockContext, res *MoveResult) {
	res.Work.RegionCalc++
	guard := lc.acquire(w, req, locking.KindLongRangeDeferred)
	before := res.Work
	defer func() {
		lc.chargeHeld(res.Work.Sub(before))
		guard.Release()
	}()

	dir := geom.Forward(e.Angles)
	muzzle := e.Origin.Add(geom.V(0, 0, 8))
	spawnPos := muzzle.MA(rocketSpawnAhead, dir)

	// Don't spawn inside or beyond a wall (firing point pressed against
	// geometry): the rocket fizzles instead.
	tr := w.Collide.TraceSegment(muzzle, spawnPos, &res.Work.Collide)
	if tr.Hit || w.Collide.PointSolid(spawnPos, &res.Work.Collide) ||
		!w.Map.Bounds.Contains(spawnPos) {
		e.RefireAt = w.Time + rocketRefire
		return
	}

	w.entMu.Lock()
	p := w.Ents.Alloc(entity.ClassProjectile)
	w.entMu.Unlock()
	if p == nil {
		return // table full: drop the shot
	}
	p.Origin = spawnPos
	p.Velocity = dir.Scale(rocketSpeed)
	p.Mins, p.Maxs = entity.ProjectileMins, entity.ProjectileMaxs
	p.Owner = e.ID
	p.Damage = rocketDamage
	p.DieAt = w.Time + rocketLife
	p.NextThink = w.Time // thinks every world frame
	// Guarded: the spawn position can cross a division plane, linking the
	// projectile at an interior node outside the held region's leaves.
	w.linkGuarded(p, lc)

	e.Ammo--
	e.RefireAt = w.Time + rocketRefire
	res.Work.Spawns++
	res.Events = append(res.Events, Event{Kind: EvProjectile, Actor: e.ID, Pos: spawnPos})
}

// fireRail performs a hitscan shot: the interaction is "fully simulated
// during request processing", so the §4.3 directional bounding-box lock
// covers every region the ray can affect before tracing it.
func (w *World) fireRail(e *entity.Entity, req locking.Request, lc *LockContext, res *MoveResult) {
	res.Work.RegionCalc++
	guard := lc.acquire(w, req, locking.KindLongRangeImmediate)
	before := res.Work
	defer func() {
		lc.chargeHeld(res.Work.Sub(before))
		guard.Release()
	}()

	dir := geom.Forward(e.Angles)
	eye := e.Origin.Add(geom.V(0, 0, 20))

	// World geometry bounds the ray.
	far := eye.MA(1e5, dir)
	wallTr := w.Collide.TraceSegment(eye, far, &res.Work.Collide)
	end := wallTr.End

	// Find the first player hit along the segment via the areanode tree.
	rayBox := geom.Box(eye, end).Expand(16)
	var best *entity.Entity
	bestT := 1.0
	var st areanode.TraversalStats
	w.Tree.CollectBox(rayBox, lc.parentGuard(), func(it *areanode.Item) bool {
		other := it.Owner.(*entity.Entity)
		if other == e || other.Class != entity.ClassPlayer || other.Health <= 0 {
			return true
		}
		res.Work.Hitscan++
		tr := collide.TraceBoxAgainst(other.AbsBox(), eye, end, geom.Vec3{})
		if tr.Hit && tr.Fraction < bestT {
			bestT = tr.Fraction
			best = other
		}
		return true
	}, &st)
	res.Work.TreeNodes += st.NodesVisited
	res.Work.TreeChecks += st.ItemsChecked

	if best != nil {
		w.damage(best, e, railDamage, lc, res)
	}
	e.Ammo--
	e.RefireAt = w.Time + railRefire
}

// weaponFrame is the long-range component present in every move command
// even when the player does not fire: the engine's per-command weapon
// logic (aim tracking, charge/cool-down simulation, target checks). It is
// cheap to execute but, under the baseline strategy, synchronizes
// "highly conservatively": the §3.3 protocol locks the entire map for
// long-range interactions regardless of what the component ends up
// touching, because its reach is not known before it runs. This is
// precisely the cost §4.3's optimized locking attacks.
func (w *World) weaponFrame(e *entity.Entity, req locking.Request, lc *LockContext, res *MoveResult) {
	res.Work.RegionCalc++
	kind := locking.KindLongRangeDeferred
	if e.Weapon == WeaponRail {
		kind = locking.KindLongRangeImmediate
	}
	guard := lc.acquire(w, req, kind)
	before := res.Work
	// Aim maintenance: trace the view ray so the weapon logic knows what
	// the player is pointing at.
	dir := geom.Forward(e.Angles)
	eye := e.Origin.Add(geom.V(0, 0, 20))
	w.Collide.TraceSegment(eye, eye.MA(2048, dir), &res.Work.Collide)
	lc.chargeHeld(res.Work.Sub(before))
	guard.Release()
}

// damage applies damage to a player, handling armor absorption and death.
// The caller holds a region lock covering the victim (hitscan's
// directional region or a splash radius region); lc carries the guard
// for the corpse link on death and is nil in single-threaded phases.
func (w *World) damage(victim, attacker *entity.Entity, amount int, lc *LockContext, res *MoveResult) {
	if victim.Health <= 0 {
		return
	}
	if attacker != nil && attacker.HasPowerup {
		amount *= 2
	}
	absorbed := amount / 3
	if absorbed > victim.Armor {
		absorbed = victim.Armor
	}
	victim.Armor -= absorbed
	victim.Health -= amount - absorbed
	if victim.Health <= 0 {
		victim.Health = 0
		victim.Deaths++
		victim.RespawnTime = w.Time + 1.5
		if attacker != nil && attacker != victim {
			attacker.Frags++
		} else if attacker == victim {
			victim.Frags--
		}
		var aid entity.ID = entity.None
		if attacker != nil {
			aid = attacker.ID
		}
		res.Events = append(res.Events, Event{
			Kind: EvKill, Actor: aid, Subject: victim.ID, Pos: victim.Origin,
		})
		w.spawnCorpse(victim, lc, res)
	}
}

// corpseLinger is how long a corpse stays in the world before the world
// phase removes it.
const corpseLinger = 3.0

// spawnCorpse drops a corpse entity where a player died. The caller
// holds a region lock covering the victim, which also covers the corpse
// (same location), so linking here is safe in the parallel engine.
// Corpses are decorative but load-bearing for the study: they churn the
// entity table and add snapshot traffic around fights, as in the engine.
func (w *World) spawnCorpse(victim *entity.Entity, lc *LockContext, res *MoveResult) {
	w.entMu.Lock()
	c := w.Ents.Alloc(entity.ClassCorpse)
	w.entMu.Unlock()
	if c == nil {
		return
	}
	c.Origin = victim.Origin
	c.Angles = victim.Angles
	// A corpse lies down: wide and flat.
	c.Mins = geom.V(-16, -16, -24)
	c.Maxs = geom.V(16, 16, -8)
	c.DieAt = w.Time + corpseLinger
	c.RoomID = victim.RoomID
	w.linkGuarded(c, lc)
	res.Work.Spawns++
}

// explodeProjectile applies splash damage around an impact and removes
// the projectile. Runs during the world-physics phase (master thread,
// no locks needed — the phase is exclusive by the frame barriers).
func (w *World) explodeProjectile(p *entity.Entity, res *MoveResult) {
	splashBox := geom.BoxAt(p.Origin, geom.V(rocketSplash, rocketSplash, rocketSplash))
	attacker := w.Ents.Get(p.Owner)
	if attacker != nil && (!attacker.Active || attacker.Class != entity.ClassPlayer) {
		attacker = nil
	}
	var st areanode.TraversalStats
	w.Tree.CollectBox(splashBox, nil, func(it *areanode.Item) bool {
		other := it.Owner.(*entity.Entity)
		if other.Class != entity.ClassPlayer || other.Health <= 0 {
			return true
		}
		d := other.Origin.Dist(p.Origin)
		if d > rocketSplash {
			return true
		}
		dmg := int(float64(p.Damage) * (1 - d/rocketSplash))
		if dmg > 0 {
			w.damage(other, attacker, dmg, nil, res)
		}
		return true
	}, &st)
	res.Work.TreeNodes += st.NodesVisited
	res.Work.TreeChecks += st.ItemsChecked

	w.unlink(p)
	w.entMu.Lock()
	w.Ents.Free(p.ID)
	w.entMu.Unlock()
}
