package game

import (
	"qserve/internal/areanode"
	"qserve/internal/entity"
)

// Door behaviour: a solid panel that slides upward when a player is near
// and back down when the area clears — the engine's func_door. Doors are
// simulated entirely in the world-physics phase (the master thread's
// exclusive stage), so they need no region locking of their own; players
// collide with them through the ordinary areanode candidate collection.

const (
	doorSpeed = 240.0 // units/s of vertical travel
)

// doorState is packed into the entity's Damage field (unused for doors):
// 0 closed, 1 opening, 2 open, 3 closing.
const (
	doorClosed = iota
	doorOpening
	doorOpen
	doorClosing
)

// spawnDoor creates the entity for one map door spec. ItemSpawn holds the
// spec index; Origin starts at the closed panel's center.
func (w *World) spawnDoor(idx int) error {
	spec := w.Map.Doors[idx]
	e := w.Ents.Alloc(entity.ClassDoor)
	if e == nil {
		return errTableFull
	}
	c := spec.Panel.Center()
	e.Origin = c
	e.Mins = spec.Panel.Min.Sub(c)
	e.Maxs = spec.Panel.Max.Sub(c)
	e.ItemSpawn = idx
	e.RoomID = spec.RoomID
	e.Damage = doorClosed
	w.link(e)
	return nil
}

// thinkDoor advances one door: trigger detection, then motion.
func (w *World) thinkDoor(e *entity.Entity, dt float64, res *MoveResult) bool {
	spec := w.Map.Doors[e.ItemSpawn]
	closedZ := spec.Panel.Center().Z
	openZ := closedZ + spec.Travel

	// Is a live player near the doorway?
	trigger := spec.Panel.Expand(spec.TriggerRadius)
	playerNear := false
	var st areanode.TraversalStats
	w.Tree.CollectBox(trigger, nil, func(it *areanode.Item) bool {
		other := it.Owner.(*entity.Entity)
		if other.Class == entity.ClassPlayer && other.Health > 0 {
			playerNear = true
			return false
		}
		return true
	}, &st)
	res.Work.TreeNodes += st.NodesVisited
	res.Work.TreeChecks += st.ItemsChecked

	target := closedZ
	if playerNear {
		target = openZ
	}
	if e.Origin.Z == target {
		if playerNear {
			e.Damage = doorOpen
		} else {
			e.Damage = doorClosed
		}
		return false // at rest: nothing simulated this tick
	}

	step := doorSpeed * dt
	if e.Origin.Z < target {
		e.Damage = doorOpening
		e.Origin.Z += step
		if e.Origin.Z >= target {
			e.Origin.Z = target
			e.Damage = doorOpen
		}
	} else {
		e.Damage = doorClosing
		e.Origin.Z -= step
		if e.Origin.Z <= target {
			e.Origin.Z = target
			e.Damage = doorClosed
		}
		// Don't crush: if a player overlaps the panel while closing,
		// reopen instead (the engine's door blocker behaviour).
		if w.doorBlocked(e) {
			e.Origin.Z += step
			e.Damage = doorOpening
		}
	}
	w.link(e)
	e.ModelFrame++
	return true
}

// doorBlocked reports whether a live player overlaps the door panel.
func (w *World) doorBlocked(e *entity.Entity) bool {
	blocked := false
	w.Tree.CollectBox(e.AbsBox(), nil, func(it *areanode.Item) bool {
		other := it.Owner.(*entity.Entity)
		if other.Class == entity.ClassPlayer && other.Health > 0 &&
			other.AbsBox().IntersectsStrict(e.AbsBox()) {
			blocked = true
			return false
		}
		return true
	}, nil)
	return blocked
}

// errTableFull is returned when the entity table cannot hold the map's
// static population.
var errTableFull error = &tableFullError{}

type tableFullError struct{}

func (*tableFullError) Error() string { return "game: entity table full" }
