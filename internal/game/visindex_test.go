package game

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"qserve/internal/entity"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// buildTestWorld generates a random world and drives it with scripted
// movement and fire so it holds players, items (some taken), corpses,
// and projectiles when the snapshot comparison runs.
func buildTestWorld(t testing.TB, rng *rand.Rand, rows, cols, players, frames int) (*World, []*entity.Entity) {
	t.Helper()
	mc := worldmap.DefaultConfig()
	mc.Rows, mc.Cols = rows, cols
	mc.Seed = rng.Int63()
	mc.ExtraDoorProb = rng.Float64()
	mc.VisibilityDepth = 1 + rng.Intn(4)
	m, err := worldmap.Generate(mc)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{Map: m, Seed: rng.Int63()})
	if err != nil {
		t.Fatal(err)
	}
	ents := make([]*entity.Entity, players)
	for i := range ents {
		if ents[i], err = w.SpawnPlayer(); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < frames; f++ {
		for i, e := range ents {
			cmd := protocol.MoveCmd{
				Forward: 320, Msec: 33,
				Yaw: protocol.AngleToWire(float64((f*29 + i*83) % 360)),
			}
			if rng.Float64() < 0.25 {
				cmd.Buttons = protocol.BtnFire
			}
			w.ExecuteMove(e, &cmd, &LockContext{})
		}
		w.RunWorldFrame(0.033)
	}
	return w, ents
}

// assertSameSnapshot compares the indexed merge against the naive scan
// for one viewer: identical state bytes (order included) and identical
// Visible counts.
func assertSameSnapshot(t *testing.T, w *World, vi *VisIndex, viewer *entity.Entity, label string) {
	t.Helper()
	wantStates, wantWork := w.BuildSnapshot(viewer, nil)
	gotStates, gotWork := vi.AppendVisible(viewer, nil)
	if len(wantStates) != len(gotStates) {
		t.Fatalf("%s: naive emits %d states, indexed %d", label, len(wantStates), len(gotStates))
	}
	for i := range wantStates {
		if wantStates[i] != gotStates[i] {
			t.Fatalf("%s: state %d differs\nnaive:   %+v\nindexed: %+v",
				label, i, wantStates[i], gotStates[i])
		}
	}
	if wantWork.Visible != gotWork.Visible {
		t.Fatalf("%s: naive Visible=%d, indexed Visible=%d", label, wantWork.Visible, gotWork.Visible)
	}
}

// TestVisIndexEquivalenceRandomized is the property test for the
// frame-coherent visibility index: across random worlds (map shapes,
// connectivity, visibility depth, population mix), the indexed merge
// must emit byte-identical entity states to the naive per-client scan
// for every viewer — including viewers whose cached room is unknown
// (doorway band) or stale, and worlds where entities' cached rooms have
// gone stale.
func TestVisIndexEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 12; trial++ {
		rows, cols := 2+rng.Intn(5), 2+rng.Intn(5)
		players := 8 + rng.Intn(25)
		w, ents := buildTestWorld(t, rng, rows, cols, players, 20+rng.Intn(30))

		// Corrupt some cached rooms to exercise the stale and overflow
		// buckets: the index must fall back to naive semantics for them.
		nRooms := len(w.Map.Rooms)
		w.Ents.ForEach(func(e *entity.Entity) {
			switch rng.Intn(10) {
			case 0:
				e.RoomID = -1 // doorway band: room unknown
			case 1:
				e.RoomID = rng.Intn(nRooms) // possibly stale
			}
		})

		var vi VisIndex
		vi.Build(w)
		for i, e := range ents {
			if !e.Active {
				continue
			}
			assertSameSnapshot(t, w, &vi, e, fmt.Sprintf("trial %d viewer %d (room %d)", trial, i, e.RoomID))
		}
	}
}

// TestVisIndexEquivalenceTinyMap covers the degenerate 1x1 map (a single
// room: no doorways, trivially full visibility).
func TestVisIndexEquivalenceTinyMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, ents := buildTestWorld(t, rng, 1, 1, 6, 10)
	var vi VisIndex
	vi.Build(w)
	for i, e := range ents {
		if !e.Active {
			continue
		}
		assertSameSnapshot(t, w, &vi, e, fmt.Sprintf("viewer %d", i))
	}
}

// TestVisIndexConcurrentBuildAndMerge drives the cooperative build
// protocol the way the parallel engine does — several goroutines
// claiming encode shards, then merging concurrently with private merge
// scratches — and checks equivalence. Run under -race this doubles as
// the data-race proof for the shared index.
func TestVisIndexConcurrentBuildAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w, ents := buildTestWorld(t, rng, 4, 4, 24, 40)

	const workers = 4
	var vi VisIndex
	vi.Begin(w)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				s := next
				next++
				mu.Unlock()
				if s >= vi.Shards() {
					return
				}
				vi.EncodeShard(s)
			}
		}()
	}
	wg.Wait()

	// Concurrent merges over the shared index.
	errs := make(chan error, workers)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i, e := range ents {
				if i%workers != k || !e.Active {
					continue
				}
				want, wantWork := w.BuildSnapshot(e, nil)
				got, gotWork := vi.AppendVisible(e, nil)
				if len(want) != len(got) || wantWork.Visible != gotWork.Visible {
					errs <- fmt.Errorf("viewer %d: naive %d states, indexed %d", i, len(want), len(got))
					return
				}
				for j := range want {
					if want[j] != got[j] {
						errs <- fmt.Errorf("viewer %d state %d differs", i, j)
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestVisIndexSteadyStateAllocFree asserts that rebuilding the index
// over an unchanged world allocates nothing once warmed up.
func TestVisIndexSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w, _ := buildTestWorld(t, rng, 4, 4, 32, 30)
	var vi VisIndex
	vi.Build(w)
	avg := testing.AllocsPerRun(50, func() { vi.Build(w) })
	if avg != 0 {
		t.Errorf("steady-state VisIndex.Build allocates %.1f objects/run, want 0", avg)
	}
}
