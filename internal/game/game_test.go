package game

import (
	"math"
	"testing"

	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/locking"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

func newTestWorld(t testing.TB) *World {
	t.Helper()
	m := worldmap.MustGenerate(worldmap.DefaultConfig())
	w, err := NewWorld(Config{Map: m, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// lockCtx builds a LockContext with a real region locker over a no-op
// provider, so lock bookkeeping paths execute in tests.
func lockCtx(w *World, strat locking.Strategy) (*LockContext, *locking.AcquireStats) {
	stats := &locking.AcquireStats{}
	return &LockContext{
		Locker:   &locking.RegionLocker{Tree: w.Tree, Provider: locking.NopProvider{}},
		Strategy: strat,
		Stats:    stats,
	}, stats
}

func moveCmd(yawDeg float64, fwd int16, buttons uint8, msec uint8) protocol.MoveCmd {
	return protocol.MoveCmd{
		Yaw:     protocol.AngleToWire(yawDeg),
		Forward: fwd,
		Buttons: buttons,
		Msec:    msec,
	}
}

func TestNewWorldPopulation(t *testing.T) {
	w := newTestWorld(t)
	if got, want := w.Ents.CountClass(entity.ClassItem), len(w.Map.Items); got != want {
		t.Errorf("items = %d, want %d", got, want)
	}
	if got, want := w.Ents.CountClass(entity.ClassTeleporter), len(w.Map.Teleporters); got != want {
		t.Errorf("teleporters = %d, want %d", got, want)
	}
	if w.Tree.TotalLinked() != w.Ents.Active() {
		t.Errorf("linked %d of %d entities", w.Tree.TotalLinked(), w.Ents.Active())
	}
	if _, err := NewWorld(Config{}); err == nil {
		t.Error("nil map accepted")
	}
}

func TestSpawnPlayer(t *testing.T) {
	w := newTestWorld(t)
	p1, err := w.SpawnPlayer()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := w.SpawnPlayer()
	if p1.Origin == p2.Origin {
		t.Error("consecutive spawns at the same point")
	}
	if p1.Health != 100 || !p1.Link.Linked() || p1.RoomID < 0 {
		t.Errorf("spawned player state: %+v", p1)
	}
	if w.Collide.BoxSolid(p1.AbsBox().Expand(-0.5), nil) {
		t.Error("player spawned inside geometry")
	}
	w.RemovePlayer(p1.ID)
	if w.Ents.Get(p1.ID).Active {
		t.Error("removed player still active")
	}
	w.RemovePlayer(p1.ID) // idempotent
}

func TestExecuteMoveWalksForward(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	lc, _ := lockCtx(w, locking.Conservative{})
	start := p.Origin
	// Walk east for a second of game time.
	for i := 0; i < 33; i++ {
		cmd := moveCmd(0, 320, 0, 30)
		res := w.ExecuteMove(p, &cmd, lc)
		if res.Work.PhysTraces == 0 {
			t.Fatal("move performed no traces")
		}
	}
	moved := p.Origin.Sub(start).Len()
	if moved < 50 {
		t.Errorf("player moved only %v units", moved)
	}
	if !p.Link.Linked() {
		t.Error("player unlinked after move")
	}
	if p.Link.Box != p.AbsBox() {
		t.Error("areanode link box stale after move")
	}
}

func TestExecuteMoveLockStats(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	lc, stats := lockCtx(w, locking.Conservative{})
	var mask uint64
	lc.LeafMask = &mask
	cmd := moveCmd(90, 320, 0, 30)
	w.ExecuteMove(p, &cmd, lc)
	if stats.LeafLockOps == 0 {
		t.Error("no leaf locks acquired")
	}
	if mask == 0 {
		t.Error("leaf mask not populated")
	}
	// Firing a rocket with conservative locking locks the whole map.
	w.Time = 10
	stats2 := &locking.AcquireStats{}
	lc.Stats = stats2
	cmd = moveCmd(90, 0, protocol.BtnFire, 30)
	w.ExecuteMove(p, &cmd, lc)
	if stats2.LeafLockOps < w.Tree.NumLeaves() {
		t.Errorf("conservative long-range locked %d leaves, want all %d",
			stats2.LeafLockOps, w.Tree.NumLeaves())
	}
}

func TestDeadPlayerDoesNotMove(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	p.Health = 0
	lc, _ := lockCtx(w, locking.Conservative{})
	start := p.Origin
	cmd := moveCmd(0, 320, protocol.BtnFire, 30)
	res := w.ExecuteMove(p, &cmd, lc)
	if p.Origin != start || len(res.Events) != 0 {
		t.Error("dead player moved or acted")
	}
}

func TestPickupHealth(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	// Find a health item and stand on it.
	var item *entity.Entity
	w.Ents.ForEachClass(entity.ClassItem, func(e *entity.Entity) {
		if item == nil && e.ItemClass == worldmap.ItemHealth {
			item = e
		}
	})
	if item == nil {
		t.Skip("map generated no health items")
	}
	w.unlink(p)
	p.Origin = item.Origin.Add(geom.V(0, 0, 24))
	p.Health = 50
	w.link(p)

	lc, _ := lockCtx(w, locking.Conservative{})
	cmd := moveCmd(0, 0, 0, 30)
	res := w.ExecuteMove(p, &cmd, lc)

	if p.Health != 75 {
		t.Errorf("health after pickup = %d", p.Health)
	}
	if item.Link.Linked() {
		t.Error("picked-up item still linked")
	}
	if item.RespawnAt <= w.Time {
		t.Error("no respawn scheduled")
	}
	foundPickup := false
	for _, ev := range res.Events {
		if ev.Kind == EvPickup && ev.Actor == p.ID && ev.Subject == item.ID {
			foundPickup = true
		}
	}
	if !foundPickup {
		t.Errorf("no pickup event: %+v", res.Events)
	}

	// Item respawns after its delay via world frames.
	w.Time = item.RespawnAt - 0.001
	w.RunWorldFrame(0.05)
	if !item.Link.Linked() {
		t.Error("item did not respawn")
	}
}

func TestFullHealthLeavesItem(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	var item *entity.Entity
	w.Ents.ForEachClass(entity.ClassItem, func(e *entity.Entity) {
		if item == nil && e.ItemClass == worldmap.ItemHealth {
			item = e
		}
	})
	if item == nil {
		t.Skip("no health item")
	}
	w.unlink(p)
	p.Origin = item.Origin.Add(geom.V(0, 0, 24))
	w.link(p)
	lc, _ := lockCtx(w, locking.Conservative{})
	cmd := moveCmd(0, 0, 0, 30)
	w.ExecuteMove(p, &cmd, lc)
	if !item.Link.Linked() {
		t.Error("item consumed by full-health player")
	}
}

func TestRocketFiresFliesAndExplodes(t *testing.T) {
	w := newTestWorld(t)
	shooter, _ := w.SpawnPlayer()
	victim, _ := w.SpawnPlayer()

	// Stand them apart in the same room, shooter aiming at victim.
	room := w.Map.Rooms[0].Bounds
	w.unlink(shooter)
	shooter.Origin = room.Center().Add(geom.V(-80, 0, -room.Size().Z/2+49))
	w.link(shooter)
	w.unlink(victim)
	victim.Origin = room.Center().Add(geom.V(80, 0, -room.Size().Z/2+49))
	w.link(victim)

	lc, _ := lockCtx(w, locking.Optimized{})
	w.Time = 1
	cmd := moveCmd(0, 0, protocol.BtnFire, 30)
	res := w.ExecuteMove(shooter, &cmd, lc)
	if w.Ents.CountClass(entity.ClassProjectile) != 1 {
		t.Fatalf("projectiles = %d", w.Ents.CountClass(entity.ClassProjectile))
	}
	if res.Work.Spawns != 1 {
		t.Error("spawn not counted")
	}
	if shooter.RefireAt <= w.Time {
		t.Error("refire not set")
	}

	// Immediate refire is suppressed.
	res2 := w.ExecuteMove(shooter, &cmd, lc)
	if res2.Work.Spawns != 0 {
		t.Error("refire limit ignored")
	}

	// Fly it via world frames until it hits the victim or wall.
	hpBefore := victim.Health
	var killed bool
	for i := 0; i < 60 && w.Ents.CountClass(entity.ClassProjectile) > 0; i++ {
		fres := w.RunWorldFrame(0.03)
		for _, ev := range fres.Events {
			if ev.Kind == EvKill {
				killed = true
			}
		}
	}
	if w.Ents.CountClass(entity.ClassProjectile) != 0 {
		t.Fatal("projectile never detonated")
	}
	if victim.Health >= hpBefore && !killed {
		t.Errorf("victim undamaged: %d -> %d", hpBefore, victim.Health)
	}
}

func TestRailHitsFirstTarget(t *testing.T) {
	w := newTestWorld(t)
	shooter, _ := w.SpawnPlayer()
	near, _ := w.SpawnPlayer()
	farther, _ := w.SpawnPlayer()

	room := w.Map.Rooms[0].Bounds
	base := room.Center()
	base.Z = 49
	place := func(e *entity.Entity, dx float64) {
		w.unlink(e)
		e.Origin = base.Add(geom.V(dx, 0, 0))
		w.link(e)
	}
	place(shooter, -100)
	place(near, 0)
	place(farther, 90)

	shooter.Weapon = WeaponRail
	w.Time = 1
	lc, stats := lockCtx(w, locking.Optimized{})
	cmd := moveCmd(0, 0, protocol.BtnFire, 30)
	res := w.ExecuteMove(shooter, &cmd, lc)

	if near.Health >= 100 {
		t.Errorf("near target undamaged (health %d)", near.Health)
	}
	if farther.Health != 100 {
		t.Errorf("rail overpenetrated to farther target (health %d)", farther.Health)
	}
	if res.Work.Hitscan == 0 {
		t.Error("hitscan work not counted")
	}
	if stats.LeafLockOps == 0 {
		t.Error("directional lock acquired no leaves")
	}
}

func TestKillAndRespawn(t *testing.T) {
	w := newTestWorld(t)
	attacker, _ := w.SpawnPlayer()
	victim, _ := w.SpawnPlayer()
	w.Time = 5

	var res MoveResult
	victim.Armor = 30
	w.damage(victim, attacker, 200, nil, &res)
	if victim.Health != 0 {
		t.Errorf("victim health = %d", victim.Health)
	}
	if attacker.Frags != 1 || victim.Deaths != 1 {
		t.Errorf("frags=%d deaths=%d", attacker.Frags, victim.Deaths)
	}
	if len(res.Events) != 1 || res.Events[0].Kind != EvKill {
		t.Errorf("events = %+v", res.Events)
	}

	// Double kill is a no-op.
	w.damage(victim, attacker, 50, nil, &res)
	if attacker.Frags != 1 {
		t.Error("dead victim fragged twice")
	}

	// Respawn via world frame after the delay.
	w.Time = victim.RespawnTime
	w.RunWorldFrame(0.03)
	if victim.Health != 100 {
		t.Errorf("victim not respawned: health=%d", victim.Health)
	}
	// Suicide decrements frags.
	w.damage(victim, victim, 500, nil, &res)
	if victim.Frags != -1 {
		t.Errorf("suicide frags = %d", victim.Frags)
	}
}

func TestTeleporterRelocates(t *testing.T) {
	w := newTestWorld(t)
	if len(w.Map.Teleporters) == 0 {
		t.Skip("no teleporters")
	}
	p, _ := w.SpawnPlayer()
	tp := w.Map.Teleporters[0]
	w.unlink(p)
	p.Origin = tp.Trigger.Center()
	p.Origin.Z = tp.Trigger.Min.Z + 24
	w.link(p)

	lc, _ := lockCtx(w, locking.Conservative{})
	cmd := moveCmd(0, 0, 0, 30)
	res := w.ExecuteMove(p, &cmd, lc)

	wantOrigin := geom.V(tp.Dest.X, tp.Dest.Y, tp.Dest.Z+24)
	if p.Origin.Dist(wantOrigin) > 1 {
		t.Errorf("player at %v, want %v", p.Origin, wantOrigin)
	}
	if !p.Link.Linked() {
		t.Error("player unlinked after teleport")
	}
	found := false
	for _, ev := range res.Events {
		if ev.Kind == EvTeleport {
			found = true
		}
	}
	if !found {
		t.Error("no teleport event")
	}
}

func TestSnapshotVisibility(t *testing.T) {
	w := newTestWorld(t)
	viewer, _ := w.SpawnPlayer()

	states, work := w.BuildSnapshot(viewer, nil)
	if work.Considered == 0 {
		t.Fatal("snapshot considered nothing")
	}
	if len(states) != work.Visible {
		t.Errorf("states=%d visible=%d", len(states), work.Visible)
	}
	// Everything visible must be in a room the viewer can see or nearby.
	for _, s := range states {
		e := w.Ents.Get(entity.ID(s.ID))
		if e == nil || !e.Active {
			t.Fatalf("snapshot contains dead entity %d", s.ID)
		}
		visible := w.Map.Visible(viewer.RoomID, e.RoomID) ||
			viewer.Origin.Dist(e.Origin) <= visCutoff+1
		if !visible {
			t.Errorf("entity %d in room %d not visible from room %d", s.ID, e.RoomID, viewer.RoomID)
		}
	}
	// ID ordering for delta encoding.
	for i := 1; i < len(states); i++ {
		if states[i].ID <= states[i-1].ID {
			t.Fatal("snapshot not ID-ordered")
		}
	}
	// A far player in an unconnected room is filtered out.
	other, _ := w.SpawnPlayer()
	farRoom := -1
	for r := range w.Map.Rooms {
		if !w.Map.Visible(viewer.RoomID, r) {
			farRoom = r
			break
		}
	}
	if farRoom >= 0 {
		w.unlink(other)
		other.Origin = w.Map.Rooms[farRoom].Bounds.Center()
		w.link(other)
		states, _ = w.BuildSnapshot(viewer, nil)
		for _, s := range states {
			if entity.ID(s.ID) == other.ID {
				t.Error("invisible player included in snapshot")
			}
		}
	}
}

func TestSnapshotExcludesTakenItems(t *testing.T) {
	w := newTestWorld(t)
	viewer, _ := w.SpawnPlayer()
	var taken *entity.Entity
	w.Ents.ForEachClass(entity.ClassItem, func(e *entity.Entity) {
		if taken == nil && w.Map.Visible(viewer.RoomID, e.RoomID) {
			taken = e
		}
	})
	if taken == nil {
		t.Skip("no visible item")
	}
	w.unlink(taken)
	taken.RespawnAt = w.Time + 10
	states, _ := w.BuildSnapshot(viewer, nil)
	for _, s := range states {
		if entity.ID(s.ID) == taken.ID {
			t.Error("taken item still in snapshot")
		}
	}
}

func TestPlayerStateOf(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	p.OnGround = true
	p.HasPowerup = true
	ps := PlayerStateOf(p)
	if ps.Health != 100 || ps.Flags&protocol.PFOnGround == 0 || ps.Flags&protocol.PFPowerup == 0 {
		t.Errorf("player state = %+v", ps)
	}
	p.Health = 0
	ps = PlayerStateOf(p)
	if ps.Flags&protocol.PFDead == 0 {
		t.Error("dead flag missing")
	}
}

func TestWorldFrameAdvancesClock(t *testing.T) {
	w := newTestWorld(t)
	before := w.Time
	res := w.RunWorldFrame(0.05)
	if math.Abs(w.Time-before-0.05) > 1e-9 {
		t.Errorf("time advanced by %v", w.Time-before)
	}
	if res.Work.Scans == 0 {
		t.Error("world frame scanned nothing")
	}
	// Clamping.
	w.RunWorldFrame(10)
	if w.Time > before+0.05+0.25+1e-9 {
		t.Error("dt not clamped")
	}
}

func TestMoveDeterminism(t *testing.T) {
	run := func() geom.Vec3 {
		m := worldmap.MustGenerate(worldmap.DefaultConfig())
		w, _ := NewWorld(Config{Map: m, Seed: 7})
		p, _ := w.SpawnPlayer()
		lc, _ := lockCtx(w, locking.Optimized{})
		for i := 0; i < 50; i++ {
			cmd := moveCmd(float64(i*13%360), 320, map[bool]uint8{true: protocol.BtnFire, false: 0}[i%7 == 0], 30)
			w.ExecuteMove(p, &cmd, lc)
			w.RunWorldFrame(0.03)
		}
		return p.Origin
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs diverged: %v vs %v", a, b)
	}
}

func BenchmarkExecuteMove(b *testing.B) {
	w := newTestWorld(b)
	players := make([]*entity.Entity, 32)
	for i := range players {
		players[i], _ = w.SpawnPlayer()
	}
	lc, _ := lockCtx(w, locking.Conservative{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := players[i%len(players)]
		cmd := moveCmd(float64(i*31%360), 320, 0, 30)
		w.ExecuteMove(p, &cmd, lc)
	}
}

func BenchmarkBuildSnapshot(b *testing.B) {
	w := newTestWorld(b)
	players := make([]*entity.Entity, 64)
	for i := range players {
		players[i], _ = w.SpawnPlayer()
	}
	var buf []protocol.EntityState
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = w.BuildSnapshot(players[i%len(players)], buf[:0])
	}
}

func BenchmarkWorldFrame(b *testing.B) {
	w := newTestWorld(b)
	for i := 0; i < 64; i++ {
		w.SpawnPlayer()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunWorldFrame(0.03)
	}
}
