package game

import (
	"qserve/internal/areanode"
	"qserve/internal/collide"
	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/physics"
)

// RunWorldFrame executes the world-physics phase (the "P" stage of
// Figure 1): advances the clock, flies projectiles, respawns items and
// players, and expires corpses. It runs on a single thread — the frame
// master — with the phase barriers guaranteeing exclusive world access,
// so it takes no locks (§3.3: "there is no need for intra-phase
// synchronization in the first stage").
//
//qvet:phase=physics
//qvet:det
func (w *World) RunWorldFrame(dt float64) MoveResult {
	var res MoveResult
	if dt <= 0 {
		dt = 0.001
	}
	if dt > 0.25 {
		dt = 0.25
	}
	w.Time += dt

	// Snapshot the active-ID index first: explosions free entities and
	// respawns re-link them, and we must visit each exactly once. The
	// copy walks only live entities (no free-list holes); entities
	// allocated mid-frame (corpses from explosions) are not in the
	// snapshot and think no earlier than next frame, which matches the
	// old high-water scan for every reachable case. Only entities with
	// due work "think" — inert items and live players are skipped after
	// a cheap scan, as in the engine's SV_RunThinks.
	w.frameIDs = append(w.frameIDs[:0], w.Ents.ActiveIDs()...)
	for _, id := range w.frameIDs {
		e := w.Ents.Get(id)
		res.Work.Scans++
		if e == nil || !e.Active {
			continue
		}
		thought := false
		switch e.Class {
		case entity.ClassProjectile:
			w.thinkProjectile(e, dt, &res)
			thought = true
		case entity.ClassItem:
			thought = w.thinkItem(e, &res)
		case entity.ClassPlayer:
			thought = w.thinkPlayer(e, &res)
		case entity.ClassCorpse:
			if w.Time >= e.DieAt {
				w.unlink(e)
				w.Ents.Free(e.ID)
				thought = true
			}
		case entity.ClassDoor:
			thought = w.thinkDoor(e, dt, &res)
		}
		if thought {
			res.Work.Thinks++
		}
	}
	return res
}

func (w *World) thinkProjectile(p *entity.Entity, dt float64, res *MoveResult) {
	if w.Time >= p.DieAt {
		w.unlink(p)
		w.entMu.Lock()
		w.Ents.Free(p.ID)
		w.entMu.Unlock()
		return
	}
	he := p.HalfExtents()
	trace := func(a, b geom.Vec3) collide.Trace {
		var cw collide.Work
		tr := w.Collide.TraceBox(a, b, he, &cw)
		res.Work.Collide.Add(cw)
		return tr
	}
	st := physics.State{Origin: p.Origin, Velocity: p.Velocity}
	fr := physics.ProjectileMove(0, trace, &st, dt)
	res.Work.PhysTraces += fr.Traces
	p.Origin = st.Origin
	p.Velocity = st.Velocity

	// Direct hits: check players overlapping the projectile's new box.
	hitPlayer := w.firstPlayerTouching(p)
	if fr.Trace.Hit || hitPlayer != nil {
		if hitPlayer != nil {
			w.damage(hitPlayer, w.projOwner(p), p.Damage, nil, res)
		}
		w.explodeProjectile(p, res)
		return
	}
	w.link(p)
}

func (w *World) projOwner(p *entity.Entity) *entity.Entity {
	o := w.Ents.Get(p.Owner)
	if o == nil || !o.Active || o.Class != entity.ClassPlayer {
		return nil
	}
	return o
}

func (w *World) firstPlayerTouching(p *entity.Entity) *entity.Entity {
	box := p.AbsBox()
	var hit *entity.Entity
	w.Tree.CollectBox(box, nil, func(it *areanode.Item) bool {
		other := it.Owner.(*entity.Entity)
		if other.Class == entity.ClassPlayer && other.Health > 0 && other.ID != p.Owner {
			hit = other
			return false
		}
		return true
	}, nil)
	return hit
}

func (w *World) thinkItem(e *entity.Entity, res *MoveResult) bool {
	if e.Link.Linked() || e.RespawnAt == 0 || w.Time < e.RespawnAt {
		return false
	}
	e.RespawnAt = 0
	w.link(e)
	res.Events = append(res.Events, Event{Kind: EvRespawn, Subject: e.ID, Pos: e.Origin})
	return true
}

func (w *World) thinkPlayer(e *entity.Entity, res *MoveResult) bool {
	// Powerups wear off.
	if e.HasPowerup && w.Time >= e.PowerupUntil {
		e.HasPowerup = false
	}
	if e.Health > 0 || e.RespawnTime == 0 || w.Time < e.RespawnTime {
		return false
	}
	w.placeAtSpawn(e)
	res.Events = append(res.Events, Event{Kind: EvRespawn, Actor: e.ID, Pos: e.Origin})
	return true
}
