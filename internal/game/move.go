package game

import (
	"math"

	"qserve/internal/areanode"
	"qserve/internal/collide"
	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/locking"
	"qserve/internal/physics"
	"qserve/internal/protocol"
	"qserve/internal/worldmap"
)

// Weapon indices.
const (
	// WeaponRocket fires a projectile that is spawned during request
	// processing and completes its flight during the world-physics phase
	// — the paper's first long-range object type (expanded locking).
	WeaponRocket uint8 = 1
	// WeaponRail is a hitscan weapon fully simulated during request
	// processing — the second type (directional locking).
	WeaponRail uint8 = 2
)

// powerupDuration is how long the quad-style powerup lasts.
const powerupDuration = 20.0

// fallDamageSpeed is the downward speed above which a landing hurts.
const fallDamageSpeed = 580.0

// Weapon tuning.
const (
	rocketSpeed       = 900.0
	rocketDamage      = 60
	rocketSplash      = 120.0
	rocketLife        = 3.0
	rocketRefire      = 0.8
	railDamage        = 45
	railRefire        = 1.2
	rocketSpawnAhead  = 40.0 // spawn distance in front of the shooter
	deferredLockRange = 160.0
)

// Work counts the computational effort of one operation, the currency of
// the simulated machine's cost model.
type Work struct {
	TreeNodes  int // areanode nodes scanned
	TreeChecks int // per-item intersection tests in areanode lists
	Collide    collide.Work
	PhysTraces int // hull sweeps
	Clips      int // velocity clips
	Candidates int // obstacle entities gathered for the move
	Touches    int // pickups/teleports executed
	Hitscan    int // entities tested along hitscan rays
	Spawns     int // entities spawned
	Thinks     int // entities advanced during world physics
	Scans      int // entities scanned (but not advanced) in the world phase
	RegionCalc int // lock-region determinations (parallel overhead)
}

// Sub returns w - o, component-wise. Engines use it to isolate the work
// performed while a particular region lock was held.
func (w Work) Sub(o Work) Work {
	return Work{
		TreeNodes:  w.TreeNodes - o.TreeNodes,
		TreeChecks: w.TreeChecks - o.TreeChecks,
		Collide: collide.Work{
			Nodes:      w.Collide.Nodes - o.Collide.Nodes,
			BrushTests: w.Collide.BrushTests - o.Collide.BrushTests,
		},
		PhysTraces: w.PhysTraces - o.PhysTraces,
		Clips:      w.Clips - o.Clips,
		Candidates: w.Candidates - o.Candidates,
		Touches:    w.Touches - o.Touches,
		Hitscan:    w.Hitscan - o.Hitscan,
		Spawns:     w.Spawns - o.Spawns,
		Thinks:     w.Thinks - o.Thinks,
		Scans:      w.Scans - o.Scans,
		RegionCalc: w.RegionCalc - o.RegionCalc,
	}
}

// Add accumulates o into w.
func (w *Work) Add(o Work) {
	w.TreeNodes += o.TreeNodes
	w.TreeChecks += o.TreeChecks
	w.Collide.Add(o.Collide)
	w.PhysTraces += o.PhysTraces
	w.Clips += o.Clips
	w.Candidates += o.Candidates
	w.Touches += o.Touches
	w.Hitscan += o.Hitscan
	w.Spawns += o.Spawns
	w.Thinks += o.Thinks
	w.Scans += o.Scans
	w.RegionCalc += o.RegionCalc
}

// Event kinds carried in the global state buffer.
const (
	EvKill uint8 = iota + 1
	EvPickup
	EvTeleport
	EvRespawn
	EvProjectile
)

// Event is one broadcast game occurrence.
type Event struct {
	Kind    uint8
	Actor   entity.ID
	Subject entity.ID
	Pos     geom.Vec3
}

// WireEvent converts to the protocol representation.
func (e Event) WireEvent() protocol.GameEvent {
	x, y, z := protocol.QuantizeVec(e.Pos)
	return protocol.GameEvent{
		Kind: e.Kind, Actor: uint16(e.Actor), Subject: uint16(e.Subject),
		X: x, Y: y, Z: z,
	}
}

// MoveResult reports one executed move command.
type MoveResult struct {
	Work   Work
	Events []Event
	// Parked is set when LockContext.TryFirst was requested and the
	// short-range region was contended: the move executed no side effects
	// (only the region calculation in Work was spent) and must be retried.
	Parked bool
}

// maxCandidates bounds the per-move obstacle scratch list.
const maxCandidates = 128

// ExecuteMove runs one client move command against the world — the
// paper's §2.3 pipeline under the §3.3 locking protocol:
//
//  1. bound the motion (start position + maximum travel distance);
//  2. lock the short-range region and collect candidate objects from the
//     areanode tree (leaf locks held for the whole component, parent
//     locks transient);
//  3. simulate player motion against world and object geometry;
//  4. execute short-range interactions (pickups, teleporter touches);
//  5. relink the player, release the region;
//  6. execute long-range interactions (weapon fire) under their own
//     expanded/directional/whole-map region locks.
//
//qvet:phase=exec
//qvet:det
func (w *World) ExecuteMove(e *entity.Entity, cmd *protocol.MoveCmd, lc *LockContext) MoveResult {
	var res MoveResult
	if e == nil {
		return res
	}
	dt := float64(cmd.Msec) / 1000
	if dt <= 0 {
		dt = 0.001
	}
	if dt > 0.1 {
		dt = 0.1
	}
	viewAngles := cmd.ViewAngles()

	// Step 1: the move's bounding box. Origin/Mins/Maxs are safe to read
	// before locking: they are written only by this entity's owning thread
	// (this very call) or by barrier-ordered phases. Every other entity
	// field — Active, Health, Angles, Weapon — is deferred to the locked
	// section below, where the region lock over e's position excludes the
	// concurrent attackers and removers that write them.
	maxDist := physics.MaxMoveDistance(w.Phys, float64(cmd.Msec))
	moveBox := e.AbsBox().Expand(maxDist)
	req := locking.Request{
		Start:   e.Origin,
		MoveBox: moveBox,
		AimDir:  geom.Forward(viewAngles),
		Range:   deferredLockRange,
	}
	res.Work.RegionCalc++

	// Step 2: lock the short-range region and gather candidates. This is
	// the first acquisition and precedes every entity mutation, so a
	// TryFirst refusal is a clean abort point: the caller may park the
	// request and re-execute it later from scratch.
	var guard locking.Guard
	if lc.TryFirst {
		var ok bool
		guard, ok = lc.tryAcquire(w, req, locking.KindShortRange)
		if !ok {
			res.Parked = true
			return res
		}
	} else {
		guard = lc.acquire(w, req, locking.KindShortRange)
	}
	workAtAcquire := res.Work
	if !e.Active || e.Class != entity.ClassPlayer {
		// Removed (disconnect) between dispatch and lock acquisition.
		lc.chargeHeld(res.Work.Sub(workAtAcquire))
		guard.Release()
		return res
	}
	e.Angles = viewAngles
	if cmd.Impulse == 1 || cmd.Impulse == 2 {
		e.Weapon = cmd.Impulse
	}
	if e.Health <= 0 {
		// Dead players do not move; they wait for the world phase to
		// respawn them, but the server still replies. (They still turn
		// their view and switch weapons, above.)
		lc.chargeHeld(res.Work.Sub(workAtAcquire))
		guard.Release()
		return res
	}
	var st areanode.TraversalStats
	var solids [maxCandidates]*entity.Entity
	var touchables [maxCandidates]*entity.Entity
	nSolid, nTouch := 0, 0
	w.Tree.CollectBox(moveBox, lc.parentGuard(), func(it *areanode.Item) bool {
		other := it.Owner.(*entity.Entity)
		if other == e {
			return true
		}
		switch {
		case other.IsSolidToMovement():
			if nSolid < maxCandidates {
				solids[nSolid] = other
				nSolid++
			}
		case other.Class == entity.ClassItem || other.Class == entity.ClassTeleporter:
			if nTouch < maxCandidates {
				touchables[nTouch] = other
				nTouch++
			}
		}
		return true
	}, &st)
	res.Work.TreeNodes += st.NodesVisited
	res.Work.TreeChecks += st.ItemsChecked
	res.Work.Candidates += nSolid + nTouch

	// Step 3: simulate the motion.
	trace := w.hullTrace(e, solids[:nSolid], &res.Work)
	state := physics.State{Origin: e.Origin, Velocity: e.Velocity, OnGround: e.OnGround}
	pcmd := physics.Cmd{
		WishDir:   wishDir(e.Angles, cmd),
		WishSpeed: wishSpeed(cmd),
		Jump:      cmd.Buttons&protocol.BtnJump != 0,
	}
	fallSpeed := -e.Velocity.Z
	pres := physics.PlayerMove(w.Phys, trace, &state, pcmd, dt)
	res.Work.PhysTraces += pres.Traces
	res.Work.Clips += pres.ClipPlanes
	landed := !e.OnGround && state.OnGround
	e.Origin, e.Velocity, e.OnGround = state.Origin, state.Velocity, state.OnGround
	e.ModelFrame++

	// Falling damage: a hard landing hurts, as in the engine.
	if landed && fallSpeed > fallDamageSpeed {
		dmg := int((fallSpeed - fallDamageSpeed) / 20)
		if dmg > 0 {
			w.damage(e, nil, dmg, lc, &res)
		}
	}

	// Step 4: short-range interactions — touch items and teleporters
	// overlapping the post-move hull.
	newBox := e.AbsBox()
	teleportIdx := -1
	for i := 0; i < nTouch; i++ {
		other := touchables[i]
		if !other.Active || !other.AbsBox().Intersects(newBox) {
			continue
		}
		switch other.Class {
		case entity.ClassItem:
			w.pickupItem(e, other, lc, &res)
		case entity.ClassTeleporter:
			if other.ItemSpawn >= 0 && other.ItemSpawn < len(w.Map.Teleporters) {
				teleportIdx = other.ItemSpawn
			}
		}
	}

	// Step 5: relink at the new position (still inside the locked
	// short-range region, since motion is bounded by moveBox; the guarded
	// variant protects the interior-node list if the new box crosses a
	// division plane).
	w.linkGuarded(e, lc)
	lc.chargeHeld(res.Work.Sub(workAtAcquire))
	guard.Release()

	// Teleporting relinks the player far away, outside the released
	// region, so it takes its own lock over the destination.
	if teleportIdx >= 0 {
		w.executeTeleport(e, w.Map.Teleporters[teleportIdx], lc, &res)
	}

	// Step 6: long-range interactions. Weapon logic runs on every command
	// (the engine's per-move weapon frame); an actual shot replaces the
	// idle weapon frame.
	if cmd.Buttons&protocol.BtnFire != 0 && w.Time >= e.RefireAt && e.Ammo > 0 {
		switch e.Weapon {
		case WeaponRail:
			w.fireRail(e, req, lc, &res)
		default:
			w.fireRocket(e, req, lc, &res)
		}
	} else {
		w.weaponFrame(e, req, lc, &res)
	}
	return res
}

// hullTrace builds the combined world+entities trace function for e's
// hull, accumulating work counters.
func (w *World) hullTrace(e *entity.Entity, solids []*entity.Entity, work *Work) physics.TraceFunc {
	he := e.HalfExtents()
	off := e.CenterOffset()
	return func(a, b geom.Vec3) collide.Trace {
		var cw collide.Work
		best := w.Collide.TraceBox(a.Add(off), b.Add(off), he, &cw)
		work.Collide.Add(cw)
		best.End = best.End.Sub(off)
		for _, other := range solids {
			if !other.Active {
				continue
			}
			tr := collide.TraceBoxAgainst(other.AbsBox(), a.Add(off), b.Add(off), he)
			if tr.Hit && (tr.StartSolid || tr.Fraction < best.Fraction || !best.Hit) {
				if !best.Hit || tr.Fraction < best.Fraction || tr.StartSolid {
					tr.End = tr.End.Sub(off)
					best = tr
				}
			}
		}
		return best
	}
}

// wishDir derives the world-space wish direction from view angles and the
// move command's forward/side indicators.
func wishDir(angles geom.Vec3, cmd *protocol.MoveCmd) geom.Vec3 {
	fwd, right, _ := geom.AngleVectors(geom.V(0, angles.Y, 0))
	dir := fwd.Scale(float64(cmd.Forward)).Add(right.Scale(float64(cmd.Side)))
	return dir.Norm()
}

// wishSpeed derives the commanded speed from the larger of the motion
// indicators.
func wishSpeed(cmd *protocol.MoveCmd) float64 {
	sp := math.Max(math.Abs(float64(cmd.Forward)), math.Abs(float64(cmd.Side)))
	return sp
}

// pickupItem applies an item's effect and removes it from the world
// until respawn. The caller holds the region lock covering the item.
func (w *World) pickupItem(player, item *entity.Entity, lc *LockContext, res *MoveResult) {
	switch item.ItemClass {
	case worldmap.ItemHealth:
		if player.Health >= 100 {
			return // leave the item for someone who needs it
		}
		player.Health += 25
		if player.Health > 100 {
			player.Health = 100
		}
	case worldmap.ItemArmor:
		if player.Armor >= 100 {
			return
		}
		player.Armor += 50
		if player.Armor > 100 {
			player.Armor = 100
		}
	case worldmap.ItemWeapon:
		player.Weapons |= 1 << WeaponRail
		player.Ammo += 10
	case worldmap.ItemAmmo:
		player.Ammo += 20
	case worldmap.ItemPowerup:
		player.HasPowerup = true
		player.PowerupUntil = w.Time + powerupDuration
	}
	// Guarded: an item overlapping a division plane is linked at an
	// interior node the held region lock does not cover.
	w.unlinkGuarded(item, lc)
	item.RespawnAt = w.Time + w.Map.Items[item.ItemSpawn].RespawnSec
	res.Work.Touches++
	res.Events = append(res.Events, Event{
		Kind: EvPickup, Actor: player.ID, Subject: item.ID, Pos: item.Origin,
	})
}

// executeTeleport relocates the player to the teleporter destination,
// locking the destination region for the relink — the move that "may
// sometimes be in far locations in the game world".
func (w *World) executeTeleport(e *entity.Entity, tp worldmap.Teleporter, lc *LockContext, res *MoveResult) {
	destOrigin := geom.V(tp.Dest.X, tp.Dest.Y, tp.Dest.Z+24)
	destBox := geom.BoxHull(destOrigin, e.Mins, e.Maxs)
	// The region must span the destination AND the player's current
	// position: the unlink below splices the old position's node list,
	// which a lock over only the destination would leave unprotected
	// against movers near the departure point.
	req := locking.Request{Start: destOrigin, MoveBox: destBox.Union(e.AbsBox())}
	res.Work.RegionCalc++
	guard := lc.acquire(w, req, locking.KindShortRange)
	before := res.Work
	w.unlinkGuarded(e, lc)
	e.Origin = destOrigin
	e.Velocity = geom.Vec3{}
	e.Angles = geom.V(0, tp.DestYaw, 0)
	w.linkGuarded(e, lc)
	res.Work.Touches++
	lc.chargeHeld(res.Work.Sub(before))
	guard.Release()
	res.Events = append(res.Events, Event{Kind: EvTeleport, Actor: e.ID, Pos: destOrigin})
}
