package game

import (
	"testing"

	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/locking"
	"qserve/internal/protocol"
)

func TestCorpseSpawnsOnKillAndExpires(t *testing.T) {
	w := newTestWorld(t)
	attacker, _ := w.SpawnPlayer()
	victim, _ := w.SpawnPlayer()
	w.Time = 2

	var res MoveResult
	w.damage(victim, attacker, 500, nil, &res)
	if got := w.Ents.CountClass(entity.ClassCorpse); got != 1 {
		t.Fatalf("corpses after kill = %d", got)
	}
	var corpse *entity.Entity
	w.Ents.ForEachClass(entity.ClassCorpse, func(e *entity.Entity) { corpse = e })
	if corpse.Origin != victim.Origin {
		t.Errorf("corpse at %v, victim died at %v", corpse.Origin, victim.Origin)
	}
	if !corpse.Link.Linked() {
		t.Error("corpse not linked into the areanode tree")
	}
	if res.Work.Spawns == 0 {
		t.Error("corpse spawn not counted as work")
	}

	// The corpse expires after its linger time via world frames.
	w.Time = corpse.DieAt - 0.001
	w.RunWorldFrame(0.05)
	if w.Ents.CountClass(entity.ClassCorpse) != 0 {
		t.Error("corpse did not decay")
	}
}

func TestCorpseVisibleInSnapshots(t *testing.T) {
	w := newTestWorld(t)
	viewer, _ := w.SpawnPlayer()
	victim, _ := w.SpawnPlayer()
	// Kill the victim right next to the viewer.
	w.unlink(victim)
	victim.Origin = viewer.Origin.Add(geom.V(60, 0, 0))
	w.link(victim)
	var res MoveResult
	w.damage(victim, viewer, 500, nil, &res)

	states, _ := w.BuildSnapshot(viewer, nil)
	foundCorpse := false
	for _, s := range states {
		if s.Class == uint8(entity.ClassCorpse) {
			foundCorpse = true
		}
	}
	if !foundCorpse {
		t.Error("corpse missing from snapshot")
	}
}

func TestPowerupDoublesDamage(t *testing.T) {
	w := newTestWorld(t)
	attacker, _ := w.SpawnPlayer()
	v1, _ := w.SpawnPlayer()
	v2, _ := w.SpawnPlayer()
	var res MoveResult

	w.damage(v1, attacker, 30, nil, &res)
	plain := 100 - v1.Health

	attacker.HasPowerup = true
	w.damage(v2, attacker, 30, nil, &res)
	boosted := 100 - v2.Health

	if boosted != 2*plain {
		t.Errorf("powerup damage %d, plain %d", boosted, plain)
	}
}

func TestArmorAbsorbsAThird(t *testing.T) {
	w := newTestWorld(t)
	_, _ = w.SpawnPlayer()
	victim, _ := w.SpawnPlayer()
	victim.Armor = 100
	var res MoveResult
	w.damage(victim, nil, 30, nil, &res)
	if victim.Armor != 90 {
		t.Errorf("armor = %d, want 90", victim.Armor)
	}
	if victim.Health != 100-20 {
		t.Errorf("health = %d, want 80", victim.Health)
	}
}

func TestAmmoExhaustionStopsFiring(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	p.Ammo = 1
	w.Time = 5
	lc, _ := lockCtx(w, locking.Optimized{})
	cmd := moveCmd(0, 0, protocol.BtnFire, 30)

	res := w.ExecuteMove(p, &cmd, lc)
	if res.Work.Spawns != 1 || p.Ammo != 0 {
		t.Fatalf("first shot: spawns=%d ammo=%d", res.Work.Spawns, p.Ammo)
	}
	w.Time += 10 // well past refire
	res = w.ExecuteMove(p, &cmd, lc)
	if res.Work.Spawns != 0 {
		t.Error("fired with no ammo")
	}
}

func TestWeaponSwitchViaImpulse(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	lc, _ := lockCtx(w, locking.Conservative{})
	cmd := moveCmd(0, 0, 0, 30)
	cmd.Impulse = 2
	w.ExecuteMove(p, &cmd, lc)
	if p.Weapon != WeaponRail {
		t.Errorf("weapon = %d after impulse 2", p.Weapon)
	}
	cmd.Impulse = 1
	w.ExecuteMove(p, &cmd, lc)
	if p.Weapon != WeaponRocket {
		t.Errorf("weapon = %d after impulse 1", p.Weapon)
	}
	cmd.Impulse = 9 // invalid: ignored
	w.ExecuteMove(p, &cmd, lc)
	if p.Weapon != WeaponRocket {
		t.Error("invalid impulse changed weapon")
	}
}

func TestWeaponFrameRunsOnIdleMoves(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	lc, stats := lockCtx(w, locking.Conservative{})
	cmd := moveCmd(0, 0, 0, 30) // no fire button
	res := w.ExecuteMove(p, &cmd, lc)
	// The per-command weapon logic must have acquired its long-range
	// region: under conservative locking that is the whole map, so the
	// request locked at least leaves(short) + all leaves(long).
	if stats.LeafLockOps < w.Tree.NumLeaves() {
		t.Errorf("idle move locked only %d leaves; weapon frame missing", stats.LeafLockOps)
	}
	if res.Work.RegionCalc < 2 {
		t.Errorf("region calcs = %d, want short+long", res.Work.RegionCalc)
	}
}

func TestRocketAgainstWallIsSuppressed(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	// Press the player's face against the west outer wall and fire into it.
	w.unlink(p)
	p.Origin = geom.V(17, 128, 49) // hull min.x = 1, wall at x<=0
	p.Angles = geom.V(0, 180, 0)   // facing -x
	w.link(p)
	w.Time = 3
	lc, _ := lockCtx(w, locking.Optimized{})
	cmd := moveCmd(180, 0, protocol.BtnFire, 30)
	res := w.ExecuteMove(p, &cmd, lc)
	if res.Work.Spawns != 0 {
		t.Error("rocket spawned inside the wall")
	}
	if p.RefireAt <= w.Time {
		t.Error("suppressed shot should still consume the trigger (refire set)")
	}
	if w.Ents.CountClass(entity.ClassProjectile) != 0 {
		t.Error("projectile exists after suppressed shot")
	}
}

func TestSplashDamageFallsOffWithDistance(t *testing.T) {
	w := newTestWorld(t)
	shooter, _ := w.SpawnPlayer()
	near, _ := w.SpawnPlayer()
	far, _ := w.SpawnPlayer()

	room := w.Map.Rooms[5].Bounds
	base := room.Center()
	base.Z = 49
	place := func(e *entity.Entity, d geom.Vec3) {
		w.unlink(e)
		e.Origin = base.Add(d)
		w.link(e)
	}
	place(near, geom.V(40, 0, 0))
	place(far, geom.V(100, 0, 0))

	// Synthesize a projectile detonating at base.
	proj := w.Ents.Alloc(entity.ClassProjectile)
	proj.Origin = base
	proj.Mins, proj.Maxs = entity.ProjectileMins, entity.ProjectileMaxs
	proj.Owner = shooter.ID
	proj.Damage = 60
	w.link(proj)

	var res MoveResult
	w.explodeProjectile(proj, &res)
	nearDmg := 100 - near.Health
	farDmg := 100 - far.Health
	if nearDmg <= 0 {
		t.Fatal("near player undamaged by splash")
	}
	if farDmg >= nearDmg {
		t.Errorf("splash did not fall off: near %d, far %d", nearDmg, farDmg)
	}
	if !proj.Active == false && w.Ents.Get(proj.ID).Active {
		t.Error("projectile not freed after explosion")
	}
}

func TestProjectileExpiresByLifetime(t *testing.T) {
	w := newTestWorld(t)
	shooter, _ := w.SpawnPlayer()
	// Fire into open space along the room diagonal; clamp life.
	w.Time = 1
	lc, _ := lockCtx(w, locking.Optimized{})
	cmd := moveCmd(45, 0, protocol.BtnFire, 30)
	w.ExecuteMove(shooter, &cmd, lc)
	if w.Ents.CountClass(entity.ClassProjectile) == 0 {
		t.Skip("shot suppressed by geometry")
	}
	// Jump time past the lifetime; the world frame reaps it even if it
	// never hit anything.
	w.Time += rocketLife + 1
	w.RunWorldFrame(0.03)
	if w.Ents.CountClass(entity.ClassProjectile) != 0 {
		t.Error("projectile survived its lifetime")
	}
}

func TestPowerupExpires(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	p.HasPowerup = true
	p.PowerupUntil = w.Time + 5
	w.RunWorldFrame(0.03)
	if !p.HasPowerup {
		t.Fatal("powerup expired early")
	}
	w.Time = p.PowerupUntil
	w.RunWorldFrame(0.03)
	if p.HasPowerup {
		t.Error("powerup did not expire")
	}
}

func TestFallingDamage(t *testing.T) {
	w := newTestWorld(t)
	p, _ := w.SpawnPlayer()
	lc, _ := lockCtx(w, locking.Conservative{})

	// Drop the player from high up with a big downward velocity, as if
	// at the end of a long fall, just above the floor.
	w.unlink(p)
	p.Origin = geom.V(p.Origin.X, p.Origin.Y, 40)
	p.Velocity = geom.V(0, 0, -900)
	p.OnGround = false
	w.link(p)

	cmd := moveCmd(0, 0, 0, 50)
	w.ExecuteMove(p, &cmd, lc)
	if !p.OnGround {
		t.Skip("did not land this tick")
	}
	if p.Health >= 100 {
		t.Errorf("hard landing dealt no damage (health %d)", p.Health)
	}

	// A gentle landing is free.
	q, _ := w.SpawnPlayer()
	w.unlink(q)
	q.Origin = geom.V(q.Origin.X, q.Origin.Y, 40)
	q.Velocity = geom.V(0, 0, -200)
	q.OnGround = false
	w.link(q)
	w.ExecuteMove(q, &cmd, lc)
	if q.OnGround && q.Health != 100 {
		t.Errorf("soft landing dealt damage (health %d)", q.Health)
	}
}
