package game

import (
	"testing"

	"qserve/internal/entity"
	"qserve/internal/geom"
	"qserve/internal/locking"
	"qserve/internal/worldmap"
)

func dooredWorld(t *testing.T) *World {
	t.Helper()
	cfg := worldmap.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.DoorProb = 1.0 // every doorway gets a door
	m, err := worldmap.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Doors) == 0 {
		t.Fatal("no doors generated at probability 1")
	}
	w, err := NewWorld(Config{Map: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDoorsSpawnClosed(t *testing.T) {
	w := dooredWorld(t)
	if got := w.Ents.CountClass(entity.ClassDoor); got != len(w.Map.Doors) {
		t.Fatalf("door entities = %d, want %d", got, len(w.Map.Doors))
	}
	w.Ents.ForEachClass(entity.ClassDoor, func(e *entity.Entity) {
		spec := w.Map.Doors[e.ItemSpawn]
		if !e.AbsBox().Intersects(spec.Panel) {
			t.Errorf("door %d not at its closed panel", e.ItemSpawn)
		}
		if !e.Link.Linked() {
			t.Errorf("door %d not linked", e.ItemSpawn)
		}
		if !e.IsSolidToMovement() {
			t.Errorf("door %d not solid", e.ItemSpawn)
		}
	})
}

func TestDoorOpensForNearbyPlayerAndCloses(t *testing.T) {
	w := dooredWorld(t)
	var door *entity.Entity
	w.Ents.ForEachClass(entity.ClassDoor, func(e *entity.Entity) {
		if door == nil {
			door = e
		}
	})
	spec := w.Map.Doors[door.ItemSpawn]
	closedZ := spec.Panel.Center().Z

	// Park a player near the doorway.
	p, _ := w.SpawnPlayer()
	w.unlink(p)
	pos := spec.Panel.Center()
	pos.Z = 49
	pos.X -= spec.TriggerRadius * 0.5
	p.Origin = pos
	w.link(p)

	for i := 0; i < 200 && door.Origin.Z < closedZ+spec.Travel; i++ {
		w.RunWorldFrame(0.03)
	}
	if door.Origin.Z != closedZ+spec.Travel {
		t.Fatalf("door never opened: z=%v", door.Origin.Z)
	}
	if door.Damage != doorOpen {
		t.Errorf("door state = %d, want open", door.Damage)
	}

	// Remove the player: the door closes again.
	w.RemovePlayer(p.ID)
	for i := 0; i < 200 && door.Origin.Z > closedZ; i++ {
		w.RunWorldFrame(0.03)
	}
	if door.Origin.Z != closedZ {
		t.Fatalf("door never closed: z=%v", door.Origin.Z)
	}
}

func TestClosedDoorBlocksMovement(t *testing.T) {
	w := dooredWorld(t)
	var door *entity.Entity
	w.Ents.ForEachClass(entity.ClassDoor, func(e *entity.Entity) {
		if door == nil {
			door = e
		}
	})
	spec := w.Map.Doors[door.ItemSpawn]

	// Put a player right in front of the closed panel, outside the
	// trigger radius logic (we do not run world frames, so the door
	// stays shut), and march them into it.
	p, _ := w.SpawnPlayer()
	w.unlink(p)
	horiz := spec.Panel.Size()
	start := spec.Panel.Center()
	start.Z = 49
	var dir geom.Vec3
	if horiz.X < horiz.Y {
		dir = geom.V(1, 0, 0) // door faces east/west
	} else {
		dir = geom.V(0, 1, 0)
	}
	p.Origin = start.Sub(dir.Scale(60))
	w.link(p)

	lc, _ := lockCtx(w, locking.Conservative{})
	yaw := geom.VecToAngles(dir).Y
	for i := 0; i < 40; i++ {
		cmd := moveCmd(yaw, 320, 0, 30)
		w.ExecuteMove(p, &cmd, lc)
	}
	// The player's hull must not have crossed the panel plane.
	panelCoord := spec.Panel.Center().Dot(dir)
	playerLead := p.Origin.Dot(dir) + 16
	if playerLead > panelCoord+8 {
		t.Errorf("player passed through a closed door: lead %.1f vs panel %.1f",
			playerLead, panelCoord)
	}
}

func TestDoorDoesNotCrushPlayer(t *testing.T) {
	w := dooredWorld(t)
	var door *entity.Entity
	w.Ents.ForEachClass(entity.ClassDoor, func(e *entity.Entity) {
		if door == nil {
			door = e
		}
	})
	spec := w.Map.Doors[door.ItemSpawn]

	// Open the door fully by hand, then stand a player in the doorway
	// and take away their trigger presence by health trickery is not
	// possible — instead we let the door try to close on a player
	// standing *in* the panel volume but dead-center, with no other
	// players near. Dead players do not hold doors open, so kill them:
	// the door should close (corpses are not solid and not crushable).
	p, _ := w.SpawnPlayer()
	w.unlink(p)
	c := spec.Panel.Center()
	c.Z = 49
	p.Origin = c
	w.link(p)

	// Door opens for the live player.
	for i := 0; i < 200 && door.Damage != doorOpen; i++ {
		w.RunWorldFrame(0.03)
	}
	if door.Damage != doorOpen {
		t.Fatal("door did not open for player in doorway")
	}
	// While the player stands in the panel volume alive, the door must
	// never descend into them: run frames and check for overlap.
	for i := 0; i < 100; i++ {
		w.RunWorldFrame(0.03)
		if door.AbsBox().IntersectsStrict(p.AbsBox()) {
			t.Fatalf("door crushed the player at frame %d", i)
		}
	}
}
