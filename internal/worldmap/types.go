// Package worldmap defines the static game world: solid geometry, rooms,
// portals (doorways), spawn points, item placements, teleporters, and the
// waypoint graph automatic players navigate with.
//
// The paper runs its experiments on gmdm10.bsp, "one of the largest maps we
// could find, designed to support 16-32 players". That asset is proprietary
// Quake content, so this package substitutes a procedural generator
// (Generate) that produces maze-like multi-room maps with controlled size,
// connectivity, and item density. The properties the paper's results depend
// on — a detailed 3-D maze, many interactable objects, and player
// interaction density that rises superlinearly with the player count — are
// functions of these parameters, not of the original art.
package worldmap

import (
	"fmt"

	"qserve/internal/geom"
)

// Brush is a solid convex block of world geometry. All world collision in
// qserve is against brushes; the collide package builds its query tree
// over them.
type Brush struct {
	Box geom.AABB
}

// Room is an open rectangular cell of the maze. Rooms carry gameplay
// annotations (spawns, items) and drive the visibility computation used by
// reply processing.
type Room struct {
	ID     int
	Bounds geom.AABB // interior open volume
	Row    int
	Col    int
}

// Portal is a doorway connecting two adjacent rooms. Portals define the
// room adjacency graph from which potential visibility is derived.
type Portal struct {
	ID     int
	RoomA  int
	RoomB  int
	Bounds geom.AABB // the open doorway volume
}

// SpawnPoint is a location where player entities (re)spawn.
type SpawnPoint struct {
	Pos    geom.Vec3
	Yaw    float64
	RoomID int
}

// ItemClass enumerates the pickup types scattered through the world. They
// mirror the standard deathmatch inventory and give move execution its
// short-range interactions.
type ItemClass uint8

const (
	ItemHealth ItemClass = iota
	ItemArmor
	ItemWeapon
	ItemAmmo
	ItemPowerup
	numItemClasses
)

// String implements fmt.Stringer.
func (c ItemClass) String() string {
	switch c {
	case ItemHealth:
		return "health"
	case ItemArmor:
		return "armor"
	case ItemWeapon:
		return "weapon"
	case ItemAmmo:
		return "ammo"
	case ItemPowerup:
		return "powerup"
	default:
		return fmt.Sprintf("item(%d)", uint8(c))
	}
}

// ItemSpawn places a pickup in the world. RespawnSec is how long the item
// stays absent after being taken, as in deathmatch rules.
type ItemSpawn struct {
	Pos        geom.Vec3
	Class      ItemClass
	RoomID     int
	RespawnSec float64
}

// Teleporter is a trigger volume that relocates any player touching it to
// Dest. Teleporters are the paper's example of a move that relinks an
// entity "in far locations in the game world".
type Teleporter struct {
	Trigger geom.AABB
	Dest    geom.Vec3
	DestYaw float64
}

// DoorSpec places an animated sliding door in a doorway. The door is a
// solid, moving entity: closed it fills Panel; open it has risen by
// Travel. It opens when a player comes within TriggerRadius and closes
// after they leave.
type DoorSpec struct {
	Panel         geom.AABB
	Travel        float64
	TriggerRadius float64
	RoomID        int
}

// Waypoint is a node of the bot navigation graph.
type Waypoint struct {
	ID     int
	Pos    geom.Vec3
	RoomID int
	Links  []int // indices of connected waypoints
}

// Map is the complete static description of a game world.
type Map struct {
	Name        string
	Bounds      geom.AABB // full world volume, including wall shells
	Interior    geom.AABB // playable volume
	Brushes     []Brush
	Rooms       []Room
	Portals     []Portal
	Spawns      []SpawnPoint
	Items       []ItemSpawn
	Teleporters []Teleporter
	Doors       []DoorSpec
	Waypoints   []Waypoint

	// Grid parameters recorded by the generator so room lookup is O(1).
	Rows, Cols         int
	CellSize, WallSize float64

	vis [][]bool // vis[a][b]: room b potentially visible from room a
}

// RoomAt returns the room containing the given position, or -1 when the
// point is inside a wall or outside the playable area. Lookup is O(1)
// grid arithmetic with a containment check.
func (m *Map) RoomAt(p geom.Vec3) int {
	if m.Rows == 0 || m.Cols == 0 {
		return -1
	}
	col := int((p.X - m.Interior.Min.X) / m.CellSize)
	row := int((p.Y - m.Interior.Min.Y) / m.CellSize)
	if row < 0 || row >= m.Rows || col < 0 || col >= m.Cols {
		return -1
	}
	id := row*m.Cols + col
	if id >= len(m.Rooms) {
		return -1
	}
	// The point may be in the wall band between cells.
	r := &m.Rooms[id]
	b := r.Bounds
	// Accept points slightly above the room volume (jumping players) and
	// inside doorway bands at the room edge.
	b.Max.Z = m.Bounds.Max.Z
	b = b.Expand(m.WallSize)
	if !b.Contains(p) {
		return -1
	}
	return id
}

// Visible reports whether room b is potentially visible from room a. The
// relation is reflexive and symmetric. It is the PVS analogue the server
// uses to decide which entities each client must be told about.
func (m *Map) Visible(a, b int) bool {
	if a < 0 || b < 0 || a >= len(m.vis) || b >= len(m.vis) {
		return false
	}
	return m.vis[a][b]
}

// VisibleRooms returns the set of room IDs potentially visible from room a,
// including a itself.
func (m *Map) VisibleRooms(a int) []int {
	if a < 0 || a >= len(m.vis) {
		return nil
	}
	var out []int
	for b, v := range m.vis[a] {
		if v {
			out = append(out, b)
		}
	}
	return out
}

// Neighbors returns the rooms connected to room a by a portal.
func (m *Map) Neighbors(a int) []int {
	var out []int
	for _, p := range m.Portals {
		switch a {
		case p.RoomA:
			out = append(out, p.RoomB)
		case p.RoomB:
			out = append(out, p.RoomA)
		}
	}
	return out
}

// computeVisibility fills the potential-visibility matrix: a room sees
// itself, its portal neighbors, and rooms up to depth hops away in the
// portal graph. Depth 2 approximates line-of-sight through aligned
// doorways; larger maps with long sight lines can raise it.
func (m *Map) computeVisibility(depth int) {
	n := len(m.Rooms)
	adj := make([][]int, n)
	for _, p := range m.Portals {
		adj[p.RoomA] = append(adj[p.RoomA], p.RoomB)
		adj[p.RoomB] = append(adj[p.RoomB], p.RoomA)
	}
	m.vis = make([][]bool, n)
	for a := 0; a < n; a++ {
		m.vis[a] = make([]bool, n)
		// BFS to the configured depth.
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[a] = 0
		queue := []int{a}
		m.vis[a][a] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if dist[cur] >= depth {
				continue
			}
			for _, nb := range adj[cur] {
				if dist[nb] < 0 {
					dist[nb] = dist[cur] + 1
					m.vis[a][nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
}

// Validate checks structural invariants and returns a descriptive error
// for the first violation found. Generated maps always validate; loaded
// maps are validated before use.
func (m *Map) Validate() error {
	if len(m.Rooms) == 0 {
		return fmt.Errorf("map %q has no rooms", m.Name)
	}
	if len(m.Spawns) == 0 {
		return fmt.Errorf("map %q has no spawn points", m.Name)
	}
	if !m.Bounds.IsValid() || !m.Interior.IsValid() {
		return fmt.Errorf("map %q has invalid bounds", m.Name)
	}
	for i, r := range m.Rooms {
		if r.ID != i {
			return fmt.Errorf("room %d has ID %d", i, r.ID)
		}
		if !m.Bounds.ContainsBox(r.Bounds) {
			return fmt.Errorf("room %d extends outside world bounds", i)
		}
	}
	for _, p := range m.Portals {
		if p.RoomA < 0 || p.RoomA >= len(m.Rooms) || p.RoomB < 0 || p.RoomB >= len(m.Rooms) {
			return fmt.Errorf("portal %d references invalid room", p.ID)
		}
	}
	for i, s := range m.Spawns {
		if m.RoomAt(s.Pos) < 0 {
			return fmt.Errorf("spawn %d at %v is not inside a room", i, s.Pos)
		}
	}
	for i, w := range m.Waypoints {
		if w.ID != i {
			return fmt.Errorf("waypoint %d has ID %d", i, w.ID)
		}
		for _, l := range w.Links {
			if l < 0 || l >= len(m.Waypoints) {
				return fmt.Errorf("waypoint %d links to invalid waypoint %d", i, l)
			}
		}
	}
	if err := m.checkWaypointConnectivity(); err != nil {
		return err
	}
	return nil
}

func (m *Map) checkWaypointConnectivity() error {
	if len(m.Waypoints) == 0 {
		return fmt.Errorf("map %q has no waypoints", m.Name)
	}
	seen := make([]bool, len(m.Waypoints))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range m.Waypoints[cur].Links {
			if !seen[l] {
				seen[l] = true
				count++
				stack = append(stack, l)
			}
		}
	}
	if count != len(m.Waypoints) {
		return fmt.Errorf("waypoint graph disconnected: reached %d of %d", count, len(m.Waypoints))
	}
	return nil
}
