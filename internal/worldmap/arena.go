package worldmap

import (
	"fmt"
	"math/rand"

	"qserve/internal/geom"
)

// ArenaConfig parameterizes the open-arena generator: a single large
// room broken up by pillars. Arenas maximize mutual visibility — every
// player potentially sees every other — which is the high-interaction
// extreme of the paper's map-choice trade-off ("player interactions
// increase in small maps, whereas only large maps can contain many
// objects"). The maze generator (Generate) covers the other extreme.
type ArenaConfig struct {
	Name string
	Seed int64

	// Size is the arena's square side length in world units.
	Size float64
	// Height is the interior ceiling height.
	Height float64
	// WallSize is the shell thickness.
	WallSize float64
	// PillarGrid places PillarGrid × PillarGrid pillars in a regular
	// pattern (0 disables pillars).
	PillarGrid int
	// PillarSize is each pillar's square footprint side.
	PillarSize float64
	// Items is the total number of pickups scattered in the arena.
	Items int
	// Spawns is the number of spawn points placed around the floor.
	Spawns int
	// WaypointGrid is the navigation grid resolution per side.
	WaypointGrid int
}

// DefaultArenaConfig returns an arena comparable in floor area to the
// default 16-room maze.
func DefaultArenaConfig() ArenaConfig {
	return ArenaConfig{
		Name:         "gen-arena",
		Seed:         1,
		Size:         1088,
		Height:       256,
		WallSize:     16,
		PillarGrid:   3,
		PillarSize:   64,
		Items:        48,
		Spawns:       16,
		WaypointGrid: 6,
	}
}

// Validate checks the configuration.
func (c ArenaConfig) Validate() error {
	switch {
	case c.Size <= 0 || c.Height <= 0 || c.WallSize <= 0:
		return fmt.Errorf("arena dimensions must be positive")
	case c.PillarGrid < 0:
		return fmt.Errorf("pillar grid must be non-negative")
	case c.PillarGrid > 0 && (c.PillarSize <= 0 || float64(c.PillarGrid)*c.PillarSize >= c.Size):
		return fmt.Errorf("pillars do not fit the arena")
	case c.Items < 0 || c.Spawns < 1:
		return fmt.Errorf("need non-negative items and at least one spawn")
	case c.WaypointGrid < 2:
		return fmt.Errorf("waypoint grid must be at least 2")
	}
	return nil
}

// GenerateArena builds a single-room arena map.
func GenerateArena(cfg ArenaConfig) (*Map, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("worldmap: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, h := cfg.WallSize, cfg.Height

	m := &Map{
		Name:     cfg.Name,
		Rows:     1,
		Cols:     1,
		CellSize: cfg.Size,
		WallSize: w,
		Interior: geom.Box(geom.V(0, 0, 0), geom.V(cfg.Size, cfg.Size, h)),
		Bounds:   geom.Box(geom.V(-w, -w, -w), geom.V(cfg.Size+w, cfg.Size+w, h+w)),
	}
	m.Rooms = []Room{{ID: 0, Bounds: m.Interior}}

	// Shell.
	b, in := m.Bounds, m.Interior
	add := func(box geom.AABB) { m.Brushes = append(m.Brushes, Brush{Box: box}) }
	add(geom.Box(geom.V(b.Min.X, b.Min.Y, b.Min.Z), geom.V(b.Max.X, b.Max.Y, in.Min.Z)))
	add(geom.Box(geom.V(b.Min.X, b.Min.Y, in.Max.Z), geom.V(b.Max.X, b.Max.Y, b.Max.Z)))
	add(geom.Box(geom.V(b.Min.X, b.Min.Y, in.Min.Z), geom.V(in.Min.X, b.Max.Y, in.Max.Z)))
	add(geom.Box(geom.V(in.Max.X, b.Min.Y, in.Min.Z), geom.V(b.Max.X, b.Max.Y, in.Max.Z)))
	add(geom.Box(geom.V(in.Min.X, b.Min.Y, in.Min.Z), geom.V(in.Max.X, in.Min.Y, in.Max.Z)))
	add(geom.Box(geom.V(in.Min.X, in.Max.Y, in.Min.Z), geom.V(in.Max.X, b.Max.Y, in.Max.Z)))

	// Pillars on a regular grid.
	var pillars []geom.AABB
	if cfg.PillarGrid > 0 {
		step := cfg.Size / float64(cfg.PillarGrid+1)
		for i := 1; i <= cfg.PillarGrid; i++ {
			for j := 1; j <= cfg.PillarGrid; j++ {
				c := geom.V(float64(i)*step, float64(j)*step, 0)
				p := geom.Box(
					geom.V(c.X-cfg.PillarSize/2, c.Y-cfg.PillarSize/2, 0),
					geom.V(c.X+cfg.PillarSize/2, c.Y+cfg.PillarSize/2, h),
				)
				pillars = append(pillars, p)
				add(p)
			}
		}
	}
	inPillar := func(p geom.Vec3, margin float64) bool {
		for _, pl := range pillars {
			if pl.Expand(margin).Contains(geom.V(p.X, p.Y, pl.Min.Z+1)) {
				return true
			}
		}
		return false
	}
	randomOpen := func(margin float64) geom.Vec3 {
		for tries := 0; ; tries++ {
			p := geom.V(
				margin+rng.Float64()*(cfg.Size-2*margin),
				margin+rng.Float64()*(cfg.Size-2*margin),
				0,
			)
			if !inPillar(p, margin) || tries > 200 {
				return p
			}
		}
	}

	// Spawns ring plus random fill.
	for i := 0; i < cfg.Spawns; i++ {
		p := randomOpen(64)
		p.Z = 25
		m.Spawns = append(m.Spawns, SpawnPoint{Pos: p, Yaw: float64(rng.Intn(8)) * 45, RoomID: 0})
	}
	// Items.
	for i := 0; i < cfg.Items; i++ {
		p := randomOpen(48)
		p.Z = 16
		m.Items = append(m.Items, ItemSpawn{
			Pos: p, Class: ItemClass(rng.Intn(int(numItemClasses))),
			RoomID: 0, RespawnSec: 20,
		})
	}

	// Waypoint grid, linked 4-neighborly, skipping nodes inside pillars
	// and links crossing them.
	grid := cfg.WaypointGrid
	step := cfg.Size / float64(grid+1)
	idx := make([][]int, grid)
	for i := range idx {
		idx[i] = make([]int, grid)
		for j := range idx[i] {
			idx[i][j] = -1
			p := geom.V(float64(i+1)*step, float64(j+1)*step, 25)
			if inPillar(p, 40) {
				continue
			}
			idx[i][j] = len(m.Waypoints)
			m.Waypoints = append(m.Waypoints, Waypoint{ID: len(m.Waypoints), Pos: p, RoomID: 0})
		}
	}
	link := func(a, b int) {
		m.Waypoints[a].Links = append(m.Waypoints[a].Links, b)
		m.Waypoints[b].Links = append(m.Waypoints[b].Links, a)
	}
	crossesPillar := func(a, b geom.Vec3) bool {
		for _, pl := range pillars {
			if hit, _, _ := pl.Expand(24).IntersectSegment(a, b); hit {
				return true
			}
		}
		return false
	}
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			if idx[i][j] < 0 {
				continue
			}
			if i+1 < grid && idx[i+1][j] >= 0 &&
				!crossesPillar(m.Waypoints[idx[i][j]].Pos, m.Waypoints[idx[i+1][j]].Pos) {
				link(idx[i][j], idx[i+1][j])
			}
			if j+1 < grid && idx[i][j+1] >= 0 &&
				!crossesPillar(m.Waypoints[idx[i][j]].Pos, m.Waypoints[idx[i][j+1]].Pos) {
				link(idx[i][j], idx[i][j+1])
			}
		}
	}
	m.pruneToLargestComponent()

	// Fallback for pathological pillar layouts that swallow the whole
	// grid: navigate between spawn points instead (they are always in
	// open space).
	if len(m.Waypoints) == 0 {
		for i, s := range m.Spawns {
			m.Waypoints = append(m.Waypoints, Waypoint{ID: i, Pos: s.Pos, RoomID: 0})
			if i > 0 {
				link(i-1, i)
			}
		}
	}

	m.computeVisibility(1)
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("worldmap: generated arena failed validation: %w", err)
	}
	return m, nil
}

// pruneToLargestComponent drops waypoints not in the largest connected
// component (dense pillar layouts can isolate grid nodes) and renumbers
// the survivors.
func (m *Map) pruneToLargestComponent() {
	n := len(m.Waypoints)
	if n == 0 {
		return
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	sizes := []int{}
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(sizes)
		size := 0
		stack := []int{start}
		comp[start] = id
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, l := range m.Waypoints[cur].Links {
				if comp[l] < 0 {
					comp[l] = id
					stack = append(stack, l)
				}
			}
		}
		sizes = append(sizes, size)
	}
	best := 0
	for id, s := range sizes {
		if s > sizes[best] {
			best = id
		}
	}
	remap := make([]int, n)
	var kept []Waypoint
	for i, w := range m.Waypoints {
		if comp[i] == best {
			remap[i] = len(kept)
			kept = append(kept, w)
		} else {
			remap[i] = -1
		}
	}
	for i := range kept {
		kept[i].ID = i
		var links []int
		for _, l := range kept[i].Links {
			if remap[l] >= 0 {
				links = append(links, remap[l])
			}
		}
		kept[i].Links = links
	}
	m.Waypoints = kept
}
