package worldmap

import (
	"bytes"
	"math/rand"
	"testing"

	"qserve/internal/geom"
)

func TestGenerateDefault(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	if got := len(m.Rooms); got != 36 {
		t.Errorf("rooms = %d, want 36", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(m.Portals) < 35 {
		t.Errorf("portals = %d, want at least rooms-1 for connectivity", len(m.Portals))
	}
	if len(m.Spawns) != len(m.Rooms) {
		t.Errorf("spawns = %d, want one per room", len(m.Spawns))
	}
	if len(m.Items) == 0 {
		t.Error("no items generated")
	}
	if len(m.Teleporters) != 2 {
		t.Errorf("teleporters = %d, want 2", len(m.Teleporters))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DefaultConfig())
	b := MustGenerate(DefaultConfig())
	if len(a.Brushes) != len(b.Brushes) || len(a.Items) != len(b.Items) ||
		len(a.Portals) != len(b.Portals) {
		t.Fatal("same seed produced structurally different maps")
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, a.Items[i], b.Items[i])
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c := MustGenerate(cfg)
	same := len(a.Portals) == len(c.Portals)
	if same {
		for i := range a.Portals {
			if a.Portals[i].Bounds != c.Portals[i].Bounds {
				same = false
				break
			}
		}
	}
	if same && len(a.Items) == len(c.Items) {
		identicalItems := true
		for i := range a.Items {
			if a.Items[i] != c.Items[i] {
				identicalItems = false
				break
			}
		}
		if identicalItems {
			t.Error("different seeds produced identical maps")
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.RoomSize = -1 },
		func(c *Config) { c.DoorWidth = 0 },
		func(c *Config) { c.DoorWidth = c.RoomSize },
		func(c *Config) { c.DoorHeight = c.Height + 1 },
		func(c *Config) { c.ExtraDoorProb = 1.5 },
		func(c *Config) { c.ItemsPerRoom = -2 },
		func(c *Config) { c.TeleporterPairs = -1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRoomAt(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	for _, r := range m.Rooms {
		c := r.Bounds.Center()
		if got := m.RoomAt(c); got != r.ID {
			t.Errorf("RoomAt(center of %d) = %d", r.ID, got)
		}
	}
	if got := m.RoomAt(geom.V(-500, -500, 0)); got != -1 {
		t.Errorf("RoomAt far outside = %d", got)
	}
	if got := m.RoomAt(geom.V(m.Bounds.Max.X+100, 0, 0)); got != -1 {
		t.Errorf("RoomAt beyond max = %d", got)
	}
}

func TestSpawnsInsideRooms(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	for i, s := range m.Spawns {
		id := m.RoomAt(s.Pos)
		if id != s.RoomID {
			t.Errorf("spawn %d: RoomAt=%d recorded RoomID=%d", i, id, s.RoomID)
		}
		if !m.Rooms[s.RoomID].Bounds.Contains(s.Pos) {
			t.Errorf("spawn %d at %v outside its room bounds", i, s.Pos)
		}
	}
}

func TestItemsInsideRooms(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	for i, it := range m.Items {
		b := m.Rooms[it.RoomID].Bounds
		if !b.Contains(it.Pos) {
			t.Errorf("item %d at %v outside room %d %v", i, it.Pos, it.RoomID, b)
		}
		if it.RespawnSec <= 0 {
			t.Errorf("item %d has no respawn time", i)
		}
	}
}

func TestBrushesDoNotOverlapRoomCenters(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	for _, r := range m.Rooms {
		c := r.Bounds.Center()
		for bi, br := range m.Brushes {
			if br.Box.ContainsStrict(c) {
				t.Errorf("brush %d %v covers center of room %d", bi, br.Box, r.ID)
			}
		}
	}
}

func TestPortalsConnectAdjacentRooms(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	for _, p := range m.Portals {
		ra, rb := m.Rooms[p.RoomA], m.Rooms[p.RoomB]
		dr := ra.Row - rb.Row
		dc := ra.Col - rb.Col
		if dr*dr+dc*dc != 1 {
			t.Errorf("portal %d connects non-adjacent rooms %d and %d", p.ID, p.RoomA, p.RoomB)
		}
		// The doorway must touch both rooms.
		if !p.Bounds.Intersects(ra.Bounds.Expand(m.WallSize)) ||
			!p.Bounds.Intersects(rb.Bounds.Expand(m.WallSize)) {
			t.Errorf("portal %d does not touch its rooms", p.ID)
		}
	}
}

// TestRoomConnectivity verifies every room is reachable from room 0 via
// portals — the spanning-tree guarantee.
func TestRoomConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.ExtraDoorProb = 0 // pure spanning tree: minimum connectivity
		m := MustGenerate(cfg)
		if len(m.Portals) != len(m.Rooms)-1 {
			t.Errorf("seed %d: %d portals for pure tree over %d rooms", seed, len(m.Portals), len(m.Rooms))
		}
		seen := make(map[int]bool)
		var visit func(int)
		visit = func(r int) {
			if seen[r] {
				return
			}
			seen[r] = true
			for _, nb := range m.Neighbors(r) {
				visit(nb)
			}
		}
		visit(0)
		if len(seen) != len(m.Rooms) {
			t.Errorf("seed %d: only %d of %d rooms reachable", seed, len(seen), len(m.Rooms))
		}
	}
}

func TestVisibility(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	for a := range m.Rooms {
		if !m.Visible(a, a) {
			t.Errorf("room %d not visible to itself", a)
		}
		for _, nb := range m.Neighbors(a) {
			if !m.Visible(a, nb) {
				t.Errorf("room %d cannot see neighbor %d", a, nb)
			}
			if !m.Visible(nb, a) {
				t.Errorf("visibility not symmetric between %d and %d", a, nb)
			}
		}
	}
	if m.Visible(-1, 0) || m.Visible(0, len(m.Rooms)) {
		t.Error("out-of-range visibility should be false")
	}
	vis := m.VisibleRooms(0)
	if len(vis) < 2 {
		t.Errorf("room 0 sees only %d rooms", len(vis))
	}
}

func TestWaypointGraph(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	if len(m.Waypoints) != len(m.Rooms)+len(m.Portals) {
		t.Errorf("waypoints = %d, want rooms+portals = %d",
			len(m.Waypoints), len(m.Rooms)+len(m.Portals))
	}
	for _, w := range m.Waypoints {
		for _, l := range w.Links {
			found := false
			for _, back := range m.Waypoints[l].Links {
				if back == w.ID {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("waypoint link %d->%d not symmetric", w.ID, l)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m2.Name != m.Name || len(m2.Brushes) != len(m.Brushes) ||
		len(m2.Rooms) != len(m.Rooms) || len(m2.Items) != len(m.Items) ||
		len(m2.Waypoints) != len(m.Waypoints) {
		t.Fatal("round trip lost structure")
	}
	for i := range m.Brushes {
		if m.Brushes[i] != m2.Brushes[i] {
			t.Fatalf("brush %d differs", i)
		}
	}
	// Visibility must be recomputed identically.
	for a := range m.Rooms {
		for b := range m.Rooms {
			if m.Visible(a, b) != m2.Visible(a, b) {
				t.Fatalf("visibility(%d,%d) differs after reload", a, b)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1}`)); err == nil {
		t.Error("empty map accepted (no rooms)")
	}
}

func TestRenderASCII(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	out := m.RenderASCII()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	// Rough sanity: one header plus 2 lines per row plus bottom border.
	lines := bytes.Count([]byte(out), []byte("\n"))
	if want := 1 + 2*m.Rows + 1; lines != want {
		t.Errorf("render has %d lines, want %d:\n%s", lines, want, out)
	}
}

func TestComputeStats(t *testing.T) {
	m := MustGenerate(DefaultConfig())
	s := m.ComputeStats()
	if s.Rooms != 36 || s.Portals != len(m.Portals) || s.Brushes != len(m.Brushes) {
		t.Errorf("stats mismatch: %+v", s)
	}
	if s.AvgVisibleRooms < 1 {
		t.Errorf("avg visible rooms = %v", s.AvgVisibleRooms)
	}
	if s.InteriorVolume <= 0 || s.WorldVolume <= s.InteriorVolume {
		t.Errorf("volumes: interior=%v world=%v", s.InteriorVolume, s.WorldVolume)
	}
	if s.WaypointLinks < s.Portals*2 {
		t.Errorf("waypoint links = %d, want >= %d", s.WaypointLinks, s.Portals*2)
	}
}

func TestGenerateSmallAndLargeGrids(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 5}, {3, 2}, {8, 8}} {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = dims[0], dims[1]
		cfg.TeleporterPairs = 0
		if dims[0]*dims[1] < 2 {
			cfg.TeleporterPairs = 0
		}
		m, err := Generate(cfg)
		if err != nil {
			t.Fatalf("grid %v: %v", dims, err)
		}
		if len(m.Rooms) != dims[0]*dims[1] {
			t.Errorf("grid %v: rooms = %d", dims, len(m.Rooms))
		}
	}
}

func TestItemClassString(t *testing.T) {
	for c := ItemClass(0); c < numItemClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty string", c)
		}
	}
	if ItemClass(200).String() != "item(200)" {
		t.Errorf("unknown class string = %q", ItemClass(200).String())
	}
}

func TestRandomPointMargin(t *testing.T) {
	g := &generator{cfg: DefaultConfig(), rng: rand.New(rand.NewSource(5))}
	b := geom.Box(geom.V(0, 0, 0), geom.V(256, 256, 192))
	for i := 0; i < 1000; i++ {
		p := g.randomPointIn(b, 40)
		if p.X < 40 || p.X > 216 || p.Y < 40 || p.Y > 216 {
			t.Fatalf("point %v violates margin", p)
		}
	}
}
