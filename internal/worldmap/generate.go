package worldmap

import (
	"fmt"
	"math/rand"

	"qserve/internal/geom"
)

// Config parameterizes the procedural map generator. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	Name string
	Seed int64

	// Rows and Cols give the room grid dimensions; the room count is their
	// product.
	Rows, Cols int

	// RoomSize is the side length of each square room's open interior, in
	// world units. WallSize is the thickness of walls, floors, and
	// ceilings. Height is the interior ceiling height.
	RoomSize, WallSize, Height float64

	// DoorWidth and DoorHeight size the portal openings between rooms.
	DoorWidth, DoorHeight float64

	// ExtraDoorProb is the probability that an interior wall beyond the
	// spanning tree also receives a door, creating loops in the maze.
	ExtraDoorProb float64

	// ItemsPerRoom is the mean number of pickups placed in each room.
	ItemsPerRoom float64

	// TeleporterPairs is the number of teleporter trigger/destination
	// pairs scattered through the map.
	TeleporterPairs int

	// VisibilityDepth is how many portal hops count as potentially
	// visible when building the PVS matrix.
	VisibilityDepth int

	// DoorProb is the probability that a doorway receives an animated
	// sliding door (a solid moving entity that opens for approaching
	// players). Zero keeps all doorways open, which is the paper-fidelity
	// default.
	DoorProb float64
}

// DefaultConfig returns the parameters used throughout the reproduction:
// a 36-room map comparable in scale to the paper's "one of the largest
// maps we could find", with loops, pickups in every room, and a pair of
// teleporters providing long-distance relinks.
func DefaultConfig() Config {
	return Config{
		Name:            "gen-dm36",
		Seed:            1,
		Rows:            6,
		Cols:            6,
		RoomSize:        256,
		WallSize:        16,
		Height:          192,
		DoorWidth:       64,
		DoorHeight:      112,
		ExtraDoorProb:   0.35,
		ItemsPerRoom:    3,
		TeleporterPairs: 2,
		VisibilityDepth: 2,
	}
}

// Validate checks that the configuration is generatable.
func (c Config) Validate() error {
	switch {
	case c.Rows < 1 || c.Cols < 1:
		return fmt.Errorf("grid %dx%d must be at least 1x1", c.Rows, c.Cols)
	case c.RoomSize <= 0 || c.WallSize <= 0 || c.Height <= 0:
		return fmt.Errorf("room dimensions must be positive")
	case c.DoorWidth <= 0 || c.DoorWidth >= c.RoomSize:
		return fmt.Errorf("door width %v must be in (0, room size)", c.DoorWidth)
	case c.DoorHeight <= 0 || c.DoorHeight > c.Height:
		return fmt.Errorf("door height %v must be in (0, height]", c.DoorHeight)
	case c.ExtraDoorProb < 0 || c.ExtraDoorProb > 1:
		return fmt.Errorf("extra door probability %v out of range", c.ExtraDoorProb)
	case c.ItemsPerRoom < 0:
		return fmt.Errorf("items per room must be non-negative")
	case c.TeleporterPairs < 0:
		return fmt.Errorf("teleporter pairs must be non-negative")
	case c.VisibilityDepth < 0:
		return fmt.Errorf("visibility depth must be non-negative")
	case c.DoorProb < 0 || c.DoorProb > 1:
		return fmt.Errorf("door probability %v out of range", c.DoorProb)
	}
	return nil
}

// Generate builds a complete map from the configuration. Generation is
// deterministic in the seed.
func Generate(cfg Config) (*Map, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("worldmap: %w", err)
	}
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	return g.build()
}

// MustGenerate is Generate for callers with known-good configurations,
// such as tests and benchmarks.
func MustGenerate(cfg Config) *Map {
	m, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

type generator struct {
	cfg Config
	rng *rand.Rand
	m   *Map
}

// wallEdge identifies the wall between two adjacent grid cells.
type wallEdge struct {
	roomA, roomB int
	horizontal   bool // true when the wall runs along x (rooms stacked in y)
}

func (g *generator) build() (*Map, error) {
	cfg := g.cfg
	cell := cfg.RoomSize + cfg.WallSize
	w, h := cfg.WallSize, cfg.Height
	spanX := float64(cfg.Cols)*cell - w
	spanY := float64(cfg.Rows)*cell - w

	m := &Map{
		Name:     cfg.Name,
		Rows:     cfg.Rows,
		Cols:     cfg.Cols,
		CellSize: cell,
		WallSize: w,
		Interior: geom.Box(geom.V(0, 0, 0), geom.V(spanX, spanY, h)),
		Bounds:   geom.Box(geom.V(-w, -w, -w), geom.V(spanX+w, spanY+w, h+w)),
	}
	g.m = m

	g.buildRooms()
	doors := g.chooseDoors()
	g.buildShell()
	g.buildInteriorWalls(doors)
	g.placeSpawns()
	g.placeItems()
	g.placeTeleporters()
	g.placeDoors()
	g.buildWaypoints()
	m.computeVisibility(cfg.VisibilityDepth)

	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("worldmap: generated map failed validation: %w", err)
	}
	return m, nil
}

func (g *generator) roomOrigin(row, col int) geom.Vec3 {
	return geom.V(float64(col)*g.m.CellSize, float64(row)*g.m.CellSize, 0)
}

func (g *generator) buildRooms() {
	cfg := g.cfg
	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			o := g.roomOrigin(row, col)
			g.m.Rooms = append(g.m.Rooms, Room{
				ID:     row*cfg.Cols + col,
				Row:    row,
				Col:    col,
				Bounds: geom.Box(o, o.Add(geom.V(cfg.RoomSize, cfg.RoomSize, cfg.Height))),
			})
		}
	}
}

// chooseDoors picks which interior walls receive doorways: a random
// spanning tree guarantees full connectivity, then ExtraDoorProb adds
// loops. The return value maps each doored wall edge to true.
func (g *generator) chooseDoors() map[wallEdge]bool {
	cfg := g.cfg
	var edges []wallEdge
	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			id := row*cfg.Cols + col
			if col+1 < cfg.Cols {
				edges = append(edges, wallEdge{id, id + 1, false})
			}
			if row+1 < cfg.Rows {
				edges = append(edges, wallEdge{id, id + cfg.Cols, true})
			}
		}
	}
	g.rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	parent := make([]int, len(g.m.Rooms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	doors := make(map[wallEdge]bool)
	for _, e := range edges {
		ra, rb := find(e.roomA), find(e.roomB)
		if ra != rb {
			parent[ra] = rb
			doors[e] = true
		} else if g.rng.Float64() < cfg.ExtraDoorProb {
			doors[e] = true
		}
	}
	return doors
}

// buildShell adds the floor, ceiling, and four outer walls.
func (g *generator) buildShell() {
	b := g.m.Bounds
	in := g.m.Interior
	add := func(box geom.AABB) { g.m.Brushes = append(g.m.Brushes, Brush{Box: box}) }

	// Floor and ceiling span the full footprint.
	add(geom.Box(geom.V(b.Min.X, b.Min.Y, b.Min.Z), geom.V(b.Max.X, b.Max.Y, in.Min.Z)))
	add(geom.Box(geom.V(b.Min.X, b.Min.Y, in.Max.Z), geom.V(b.Max.X, b.Max.Y, b.Max.Z)))
	// Outer walls.
	add(geom.Box(geom.V(b.Min.X, b.Min.Y, in.Min.Z), geom.V(in.Min.X, b.Max.Y, in.Max.Z)))
	add(geom.Box(geom.V(in.Max.X, b.Min.Y, in.Min.Z), geom.V(b.Max.X, b.Max.Y, in.Max.Z)))
	add(geom.Box(geom.V(in.Min.X, b.Min.Y, in.Min.Z), geom.V(in.Max.X, in.Min.Y, in.Max.Z)))
	add(geom.Box(geom.V(in.Min.X, in.Max.Y, in.Min.Z), geom.V(in.Max.X, b.Max.Y, in.Max.Z)))
}

// buildInteriorWalls emits wall brushes between adjacent rooms, splitting
// walls with doors into side segments plus a lintel, and registers the
// doorway volumes as portals. It also adds the corner posts at interior
// grid intersections.
func (g *generator) buildInteriorWalls(doors map[wallEdge]bool) {
	cfg := g.cfg
	w, h := cfg.WallSize, cfg.Height
	add := func(box geom.AABB) {
		if box.IsValid() && box.Volume() > 0 {
			g.m.Brushes = append(g.m.Brushes, Brush{Box: box})
		}
	}

	for row := 0; row < cfg.Rows; row++ {
		for col := 0; col < cfg.Cols; col++ {
			id := row*cfg.Cols + col
			o := g.roomOrigin(row, col)

			// Vertical wall band east of this room.
			if col+1 < cfg.Cols {
				x0 := o.X + cfg.RoomSize
				x1 := x0 + w
				e := wallEdge{id, id + 1, false}
				if doors[e] {
					cy := o.Y + cfg.RoomSize/2
					y0, y1 := cy-cfg.DoorWidth/2, cy+cfg.DoorWidth/2
					add(geom.Box(geom.V(x0, o.Y, 0), geom.V(x1, y0, h)))
					add(geom.Box(geom.V(x0, y1, 0), geom.V(x1, o.Y+cfg.RoomSize, h)))
					add(geom.Box(geom.V(x0, y0, cfg.DoorHeight), geom.V(x1, y1, h)))
					g.m.Portals = append(g.m.Portals, Portal{
						ID: len(g.m.Portals), RoomA: id, RoomB: id + 1,
						Bounds: geom.Box(geom.V(x0, y0, 0), geom.V(x1, y1, cfg.DoorHeight)),
					})
				} else {
					add(geom.Box(geom.V(x0, o.Y, 0), geom.V(x1, o.Y+cfg.RoomSize, h)))
				}
			}

			// Horizontal wall band north of this room.
			if row+1 < cfg.Rows {
				y0 := o.Y + cfg.RoomSize
				y1 := y0 + w
				e := wallEdge{id, id + cfg.Cols, true}
				if doors[e] {
					cx := o.X + cfg.RoomSize/2
					x0, x1 := cx-cfg.DoorWidth/2, cx+cfg.DoorWidth/2
					add(geom.Box(geom.V(o.X, y0, 0), geom.V(x0, y1, h)))
					add(geom.Box(geom.V(x1, y0, 0), geom.V(o.X+cfg.RoomSize, y1, h)))
					add(geom.Box(geom.V(x0, y0, cfg.DoorHeight), geom.V(x1, y1, h)))
					g.m.Portals = append(g.m.Portals, Portal{
						ID: len(g.m.Portals), RoomA: id, RoomB: id + cfg.Cols,
						Bounds: geom.Box(geom.V(x0, y0, 0), geom.V(x1, y1, cfg.DoorHeight)),
					})
				} else {
					add(geom.Box(geom.V(o.X, y0, 0), geom.V(o.X+cfg.RoomSize, y1, h)))
				}
			}

			// Corner post at the interior intersection northeast of the room.
			if col+1 < cfg.Cols && row+1 < cfg.Rows {
				x0 := o.X + cfg.RoomSize
				y0 := o.Y + cfg.RoomSize
				add(geom.Box(geom.V(x0, y0, 0), geom.V(x0+w, y0+w, h)))
			}
		}
	}
}

func (g *generator) placeSpawns() {
	const margin = 48.0
	for _, r := range g.m.Rooms {
		p := g.randomPointIn(r.Bounds, margin)
		p.Z = 25 // just above the floor for a 24-unit-deep player hull
		g.m.Spawns = append(g.m.Spawns, SpawnPoint{
			Pos:    p,
			Yaw:    float64(g.rng.Intn(8)) * 45,
			RoomID: r.ID,
		})
	}
}

func (g *generator) placeItems() {
	cfg := g.cfg
	for _, r := range g.m.Rooms {
		n := int(cfg.ItemsPerRoom)
		if frac := cfg.ItemsPerRoom - float64(n); g.rng.Float64() < frac {
			n++
		}
		for i := 0; i < n; i++ {
			p := g.randomPointIn(r.Bounds, 40)
			p.Z = 16
			class := ItemClass(g.rng.Intn(int(numItemClasses)))
			respawn := 20.0
			if class == ItemPowerup {
				respawn = 60
			}
			g.m.Items = append(g.m.Items, ItemSpawn{
				Pos: p, Class: class, RoomID: r.ID, RespawnSec: respawn,
			})
		}
	}
}

func (g *generator) placeTeleporters() {
	cfg := g.cfg
	if len(g.m.Rooms) < 2 {
		return
	}
	for i := 0; i < cfg.TeleporterPairs; i++ {
		src := g.rng.Intn(len(g.m.Rooms))
		dst := g.rng.Intn(len(g.m.Rooms))
		for dst == src {
			dst = g.rng.Intn(len(g.m.Rooms))
		}
		// Trigger pad in a corner of the source room.
		rb := g.m.Rooms[src].Bounds
		pad := geom.Box(
			rb.Min.Add(geom.V(24, 24, 0)),
			rb.Min.Add(geom.V(88, 88, 64)),
		)
		dest := g.m.Rooms[dst].Bounds.Center()
		dest.Z = 25
		g.m.Teleporters = append(g.m.Teleporters, Teleporter{
			Trigger: pad,
			Dest:    dest,
			DestYaw: float64(g.rng.Intn(8)) * 45,
		})
	}
}

// placeDoors gives a random subset of doorways an animated door panel
// that fills the portal volume when closed.
func (g *generator) placeDoors() {
	if g.cfg.DoorProb <= 0 {
		return
	}
	for _, p := range g.m.Portals {
		if g.rng.Float64() >= g.cfg.DoorProb {
			continue
		}
		g.m.Doors = append(g.m.Doors, DoorSpec{
			Panel:         p.Bounds,
			Travel:        p.Bounds.Size().Z - 8,
			TriggerRadius: 120,
			RoomID:        p.RoomA,
		})
	}
}

// buildWaypoints creates one waypoint per room center and one per portal,
// linking each portal waypoint to the centers of the two rooms it joins.
// Because doors follow a spanning tree the graph is always connected.
func (g *generator) buildWaypoints() {
	m := g.m
	roomWp := make([]int, len(m.Rooms))
	for i, r := range m.Rooms {
		c := r.Bounds.Center()
		c.Z = 25
		roomWp[i] = len(m.Waypoints)
		m.Waypoints = append(m.Waypoints, Waypoint{ID: len(m.Waypoints), Pos: c, RoomID: r.ID})
	}
	link := func(a, b int) {
		m.Waypoints[a].Links = append(m.Waypoints[a].Links, b)
		m.Waypoints[b].Links = append(m.Waypoints[b].Links, a)
	}
	for _, p := range m.Portals {
		c := p.Bounds.Center()
		c.Z = 25
		id := len(m.Waypoints)
		m.Waypoints = append(m.Waypoints, Waypoint{ID: id, Pos: c, RoomID: p.RoomA})
		link(id, roomWp[p.RoomA])
		link(id, roomWp[p.RoomB])
	}
}

// randomPointIn picks a uniformly random point in the box footprint at
// least margin units from its x/y faces.
func (g *generator) randomPointIn(b geom.AABB, margin float64) geom.Vec3 {
	mn, mx := b.Min, b.Max
	x := mn.X + margin + g.rng.Float64()*(mx.X-mn.X-2*margin)
	y := mn.Y + margin + g.rng.Float64()*(mx.Y-mn.Y-2*margin)
	return geom.V(x, y, 0)
}
